#include "src/cfs/cfs_sched.h"

#include <algorithm>
#include <cassert>

#include "src/cfs/timeline.h"

namespace schedbattle {

CfsScheduler::CfsScheduler(CfsTunables tunables) : tun_(tunables) {}

CfsScheduler::~CfsScheduler() {
  // The engine may outlive this scheduler (Machine members are destroyed
  // before external objects); cancel the periodic-balance events, which
  // capture `this`.
  if (machine_ != nullptr) {
    for (auto& cs : cores_) {
      machine_->engine().Cancel(cs.balance_event);
    }
  }
}

void CfsScheduler::Attach(Machine* machine) {
  machine_ = machine;
  const int n = machine->num_cores();
  root_ = MakeTaskGroup(kRootGroup, n, nullptr, kNice0Load);
  cores_.resize(n);
}

void CfsScheduler::Start() {
  // Stagger the periodic balancer across cores, as the kernel's softirq
  // timing effectively does.
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    ArmBalance(c, tun_.balance_interval + (tun_.balance_interval * c) / machine_->num_cores());
  }
}

void CfsScheduler::DeclareGroup(GroupId id, GroupId parent) {
  group_parent_[id] = parent;
}

TaskGroup* CfsScheduler::GroupFor(GroupId id) {
  if (id == kRootGroup || !tun_.group_scheduling) {
    return root_.get();
  }
  auto it = groups_.find(id);
  if (it == groups_.end()) {
    auto pit = group_parent_.find(id);
    TaskGroup* parent =
        pit == group_parent_.end() ? root_.get() : GroupFor(pit->second);
    it = groups_
             .emplace(id, MakeTaskGroup(id, machine_->num_cores(), parent, kNice0Load))
             .first;
  }
  return it->second.get();
}

void CfsScheduler::TaskNew(SimThread* thread, SimThread* /*parent*/) {
  auto data = std::make_unique<CfsTaskData>();
  SchedEntity& se = data->se;
  se.thread = thread;
  se.weight = CfsWeightOf(thread->nice());
  se.seq = next_seq_++;
  // New tasks start with a full load contribution so placement immediately
  // accounts for them (kernel: init_entity_runnable_average).
  se.avg.last_update_time = machine_->now();
  se.avg.load_sum = kLoadAvgMax;
  se.avg.load_avg = se.weight;
  se.avg.util_sum = static_cast<uint64_t>(kLoadAvgMax) << 10;
  se.avg.util_avg = 1024;
  thread->set_sched_data(std::move(data));
}

void CfsScheduler::ReniceTask(SimThread* thread) {
  SchedEntity* se = SeOf(thread);
  const uint64_t new_weight = CfsWeightOf(thread->nice());
  if (new_weight == se->weight) {
    return;
  }
  // kernel: reweight_entity — adjust the queued weight accounting in place.
  CfsRq* rq = se->cfs_rq;
  if (se->on_rq && rq != nullptr) {
    CfsUpdateCurr(rq, machine_->now());
    rq->load_weight -= se->weight;
    rq->load_weight += new_weight;
    if (rq->tg != nullptr && !rq->tg->is_root()) {
      rq->tg->load_sum -= std::min(rq->tg->load_sum, se->weight);
      rq->tg->load_sum += new_weight;
    }
  }
  se->weight = new_weight;
  UpdateGroupWeight(se->parent);
}

void CfsScheduler::TaskExit(SimThread* thread) {
  // The exiting thread was running, so (kernel convention) it is still
  // on_rq: run the full hierarchical dequeue.
  DequeueTaskInternal(thread->cpu(), thread, /*sleep=*/true, /*migrating=*/false,
                      /*from_running=*/true);
}

void CfsScheduler::UpdateTaskLoad(SimThread* t, bool running) const {
  SchedEntity* se = SeOf(t);
  const bool runnable = t->state() == ThreadState::kRunnable || running;
  se->avg.Update(machine_->now(), se->weight, runnable, running);
}

void CfsScheduler::UpdateGroupWeight(SchedEntity* gse) {
  if (gse == nullptr || gse->my_q == nullptr) {
    return;
  }
  const uint64_t new_weight = CalcGroupWeight(gse->my_q->tg, gse->my_q->cpu);
  if (new_weight == gse->weight) {
    return;
  }
  CfsRq* prq = gse->cfs_rq;
  if (gse->on_rq) {
    prq->load_weight -= gse->weight;
    prq->load_weight += new_weight;
    if (prq->tg != nullptr && !prq->tg->is_root()) {
      prq->tg->load_sum -= std::min(prq->tg->load_sum, gse->weight);
      prq->tg->load_sum += new_weight;
    }
  }
  gse->weight = new_weight;
}

void CfsScheduler::EnqueueTaskInternal(CoreId core, SimThread* t, EnqueueKind kind) {
  const SimTime now = machine_->now();
  TaskGroup* tg = GroupFor(t->group());
  SchedEntity* se = SeOf(t);

  // Wire the task's entity onto this CPU's hierarchy.
  CfsRq* target = tg->rqs[core].get();
  se->parent = tg->is_root() ? nullptr : tg->ses[core].get();
  se->depth = (se->parent == nullptr) ? 0 : se->parent->depth + 1;

  // vruntime renormalization across runqueues.
  switch (kind) {
    case EnqueueKind::kFork:
      se->vruntime = target->min_vruntime;
      CfsPlaceEntity(tun_, target, se, /*initial=*/true);
      break;
    case EnqueueKind::kWakeup:
      if (se->cfs_rq != nullptr && se->cfs_rq != target) {
        se->vruntime -= se->cfs_rq->min_vruntime;
        se->vruntime += target->min_vruntime;
      }
      break;
    case EnqueueKind::kMigrate:
    case EnqueueKind::kRequeue:
      // kMigrate arrives rq-relative (dequeue normalized it).
      if (kind == EnqueueKind::kMigrate) {
        se->vruntime += target->min_vruntime;
      }
      break;
  }
  UpdateTaskLoad(t, /*running=*/false);

  bool enq_wakeup = kind == EnqueueKind::kWakeup;
  for (SchedEntity* it = se; it != nullptr; it = it->parent) {
    if (it->on_rq) {
      break;
    }
    CfsRq* rq = (it == se) ? target : it->cfs_rq;
    CfsEnqueueEntity(tun_, rq, it, enq_wakeup, now);
    UpdateGroupWeight(it->parent);
    enq_wakeup = true;  // parents get sleeper placement as in the kernel
  }
  // Hierarchical task count along the whole chain.
  for (CfsRq* rq = target; rq != nullptr;
       rq = rq->tg->is_root() ? nullptr : rq->tg->parent->rqs[core].get()) {
    rq->h_nr_running += 1;
  }
  cores_[core].attached.push_back(t);
}

void CfsScheduler::DequeueTaskInternal(CoreId core, SimThread* t, bool sleep, bool migrating,
                                       bool from_running) {
  const SimTime now = machine_->now();
  SchedEntity* se = SeOf(t);
  CfsRq* target = se->cfs_rq;
  assert(target != nullptr && target->cpu == core);
  UpdateTaskLoad(t, /*running=*/from_running);

  // Phase 1: dequeue the task entity, then cascade upward, dequeueing each
  // group entity whose queue became empty.
  SchedEntity* it = se;
  bool task_level = true;
  while (it != nullptr) {
    CfsDequeueEntity(tun_, it->cfs_rq, it, sleep && task_level, migrating && task_level, now);
    UpdateGroupWeight(it->parent);
    SchedEntity* parent = it->parent;
    task_level = false;
    if (parent == nullptr) {
      it = nullptr;
      break;
    }
    if (parent->my_q->nr_running > 0) {
      it = parent;  // parent stays queued; stop the cascade here
      break;
    }
    it = parent;
  }
  // Phase 2 (only when the departing task was the one running): the
  // remaining queued ancestors formed its curr chain and must be put back
  // into their trees, since the machine will pick a fresh chain next.
  if (from_running) {
    for (; it != nullptr; it = it->parent) {
      if (it->cfs_rq->curr == it) {
        CfsPutPrevEntity(it->cfs_rq, it, now);
      }
    }
  }
  for (CfsRq* rq = target; rq != nullptr;
       rq = rq->tg->is_root() ? nullptr : rq->tg->parent->rqs[core].get()) {
    rq->h_nr_running -= 1;
    assert(rq->h_nr_running >= 0);
  }
  auto& attached = cores_[core].attached;
  attached.erase(std::remove(attached.begin(), attached.end(), t), attached.end());
}

void CfsScheduler::EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) {
  EnqueueTaskInternal(core, thread, kind);
}

void CfsScheduler::DequeueTask(CoreId core, SimThread* thread) {
  DequeueTaskInternal(core, thread, /*sleep=*/false, /*migrating=*/true, /*from_running=*/false);
}

SimThread* CfsScheduler::PickNextTask(CoreId core) {
  const SimTime now = machine_->now();
  CfsRq* rq = RootRq(core);
  if (rq->nr_running == 0) {
    return nullptr;
  }
  SchedEntity* se = nullptr;
  while (true) {
    se = TimelineFirst(rq);
    if (se == nullptr) {
      return nullptr;  // accounting breakage guard; should not happen
    }
    CfsSetNextEntity(rq, se, now);
    if (se->my_q != nullptr) {
      assert(se->my_q->nr_running > 0);
      rq = se->my_q;
      continue;
    }
    break;
  }
  return se->thread;
}

void CfsScheduler::PutPrevTask(CoreId core, SimThread* thread) {
  (void)core;
  const SimTime now = machine_->now();
  UpdateTaskLoad(thread, /*running=*/true);
  for (SchedEntity* se = SeOf(thread); se != nullptr; se = se->parent) {
    CfsPutPrevEntity(se->cfs_rq, se, now);
  }
}

void CfsScheduler::OnTaskBlock(CoreId core, SimThread* thread, bool /*voluntary*/) {
  DequeueTaskInternal(core, thread, /*sleep=*/true, /*migrating=*/false, /*from_running=*/true);
}

void CfsScheduler::YieldTask(CoreId core, SimThread* thread) {
  // sched_yield under CFS: update accounting and go back in the tree; with
  // the updated vruntime the thread naturally sorts behind equal peers.
  PutPrevTask(core, thread);
}

void CfsScheduler::UpdateCurrChain(CoreId core) {
  SimThread* curr = machine_->CurrentOn(core);
  if (curr == nullptr) {
    return;
  }
  const SimTime now = machine_->now();
  for (SchedEntity* se = SeOf(curr); se != nullptr; se = se->parent) {
    CfsUpdateCurr(se->cfs_rq, now);
  }
}

void CfsScheduler::TaskTick(CoreId core, SimThread* current) {
  if (current == nullptr) {
    return;
  }
  const SimTime now = machine_->now();
  UpdateTaskLoad(current, /*running=*/true);
  bool resched = false;
  for (SchedEntity* se = SeOf(current); se != nullptr; se = se->parent) {
    // Keep group-entity weights in sync with the group's load distribution
    // (kernel: entity_tick -> update_cfs_group).
    UpdateGroupWeight(se->parent);
    if (CfsCheckPreemptTick(tun_, se->cfs_rq, now)) {
      resched = true;
    }
  }
  if (resched) {
    ++machine_->counters().tick_preemptions;
    machine_->SetNeedResched(core);
  }
}

SimTime CfsScheduler::TickBoundary(CoreId core, const SimThread* current,
                                   SimTime next_tick) const {
  (void)core;
  if (current == nullptr) {
    // Idle CFS ticks do nothing at all (see TaskTick); wake placement and
    // SetNeedResched restart activity, never the tick.
    return kTickNever;
  }
  // A tick mutates only through CfsCheckPreemptTick. With `current` provably
  // solo at every hierarchy level — curr chain, one on_rq entity, an empty
  // timeline and load_weight equal to its weight — the check's only true
  // branch is slice expiry (the lag branch needs a queued competitor), and
  // the ideal slice is exactly sched_latency (weight / load_weight cancels,
  // so concurrent group-weight updates cannot move it). delta_exec advances
  // 1:1 with wall time while the thread runs, giving a closed-form expiry
  // instant per level. Read-only: CfsCheckPreemptTick itself calls
  // CfsUpdateCurr, so it must not be used here.
  SimTime boundary = kTickNever;
  for (const SchedEntity* se = &CfsOf(current).se; se != nullptr; se = se->parent) {
    const CfsRq* rq = se->cfs_rq;
    if (rq == nullptr || rq->curr != se || !se->on_rq || rq->nr_running != 1 ||
        rq->load_weight != se->weight || TimelineFirst(rq) != nullptr) {
      return next_tick;  // not provably solo: keep every tick armed
    }
    const int64_t ran =
        static_cast<int64_t>(se->sum_exec_runtime - se->prev_sum_exec_runtime);
    const SimTime b = se->exec_start + (tun_.sched_latency - ran);
    boundary = std::min(boundary, b);
  }
  // A tick exactly at the expiry instant sees delta_exec == ideal, which is
  // not strictly greater: still side-effect free, so the machine arms the
  // first grid point strictly after the boundary.
  return std::max(boundary, next_tick);
}

void CfsScheduler::CheckPreemptWakeup(CoreId core, SimThread* woken) {
  SimThread* curr = machine_->CurrentOn(core);
  if (curr == nullptr || curr == woken) {
    return;
  }
  UpdateCurrChain(core);
  // Find comparable entities on a common runqueue (kernel: find_matching_se).
  SchedEntity* se_curr = SeOf(curr);
  SchedEntity* se_woken = SeOf(woken);
  while (se_curr->cfs_rq != se_woken->cfs_rq) {
    if (se_curr->depth >= se_woken->depth) {
      se_curr = se_curr->parent;
    } else {
      se_woken = se_woken->parent;
    }
    if (se_curr == nullptr || se_woken == nullptr) {
      return;
    }
  }
  const bool fired = CfsWakeupPreemptEntity(tun_, se_curr, se_woken);
  if (machine_->observing_decisions()) {
    PreemptDecision d;
    d.preemptor = woken->id();
    d.victim = curr->id();
    d.core = core;
    d.fired = fired;
    d.margin = CfsWakeupPreemptMargin(tun_, se_curr, se_woken);
    machine_->EmitPreempt(d);
  }
  if (fired) {
    ++machine_->counters().wakeup_preemptions;
    machine_->SetNeedResched(core);
  }
}

double CfsScheduler::TaskHLoad(const SimThread* thread) const {
  const SchedEntity* se = &CfsOf(thread).se;
  double load = static_cast<double>(se->avg.load_avg);
  // Scale through group levels: fraction of the parent's weight this level
  // contributes (kernel: task_h_load).
  for (const SchedEntity* g = se->parent; g != nullptr; g = g->parent) {
    const uint64_t q_load = g->my_q->load_weight;
    if (q_load > 0) {
      load = load * static_cast<double>(g->weight) / static_cast<double>(q_load);
    }
  }
  return load;
}

double CfsScheduler::CoreLoad(CoreId core) const {
  // Settle pending elided ticks first: this read pins every attached task's
  // PELT average to now(), and a later replay of an older tick must never
  // find last_update_time in its future.
  machine_->CatchUpTicks();
  double sum = 0.0;
  for (SimThread* t : cores_[core].attached) {
    UpdateTaskLoad(t, /*running=*/t == machine_->CurrentOn(core));
    sum += TaskHLoad(t);
  }
  return sum;
}

double CfsScheduler::LoadOf(CoreId core) const { return CoreLoad(core); }

int CfsScheduler::RunnableCountOf(CoreId core) const {
  return static_cast<int>(cores_[core].attached.size());
}

}  // namespace schedbattle
