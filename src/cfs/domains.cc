// Scheduling-domain helpers: per-level imbalance thresholds and the
// designated-balancer rule.
//
// Paper, Section 2.1: "This load balancing takes into account the topology
// of the machine: cores try to steal work more frequently from cores that
// are 'close' to them than from cores that are 'remote'. ... If the load
// difference between the nodes is small (less than 25% in practice), then no
// load balancing is performed. The greater the distance between two cores,
// the higher the imbalance has to be."
#include "src/cfs/cfs_sched.h"

namespace schedbattle {

double CfsScheduler::ImbalancePct(TopoLevel level) const {
  switch (level) {
    case TopoLevel::kSmt:
      return tun_.imbalance_pct_smt;
    case TopoLevel::kLlc:
      return tun_.imbalance_pct_llc;
    default:
      return tun_.imbalance_pct_numa;
  }
}

bool CfsScheduler::ShouldBalanceAtLevel(CoreId core, TopoLevel level) const {
  // kernel: should_we_balance(). At each domain level, the balancing core
  // must be the first idle core of its *local group* (the child group it
  // pulls toward), or failing that the local group's first core. At the
  // lowest level the local group is the core itself, so every core balances
  // within its own LLC.
  TopoLevel child;
  switch (level) {
    case TopoLevel::kMachine:
      child = TopoLevel::kNode;
      break;
    case TopoLevel::kNode:
      child = TopoLevel::kLlc;
      break;
    case TopoLevel::kLlc:
      child = TopoLevel::kSmt;
      break;
    default:
      child = TopoLevel::kCore;
      break;
  }
  const auto& group = machine_->topology().GroupOf(core, child);
  for (CoreId c : group) {
    if (machine_->core(c).idle()) {
      return c == core;
    }
  }
  return group.front() == core;
}

double CfsScheduler::GroupLoadAt(const std::vector<CoreId>& cores) const {
  double sum = 0.0;
  for (CoreId c : cores) {
    sum += CoreLoad(c);
  }
  return sum;
}

}  // namespace schedbattle
