#include "src/cfs/rbtree.h"

#include <cassert>

namespace schedbattle {

RbTree::RbTree(LessFn less) : less_(less) {
  nil_.red = false;
  nil_.parent = nil_.left = nil_.right = &nil_;
  root_ = &nil_;
  leftmost_ = &nil_;
}

void RbTree::RotateLeft(RbNode* x) {
  RbNode* y = x->right;
  x->right = y->left;
  if (y->left != &nil_) {
    y->left->parent = x;
  }
  y->parent = x->parent;
  if (x->parent == &nil_) {
    root_ = y;
  } else if (x == x->parent->left) {
    x->parent->left = y;
  } else {
    x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void RbTree::RotateRight(RbNode* x) {
  RbNode* y = x->left;
  x->left = y->right;
  if (y->right != &nil_) {
    y->right->parent = x;
  }
  y->parent = x->parent;
  if (x->parent == &nil_) {
    root_ = y;
  } else if (x == x->parent->right) {
    x->parent->right = y;
  } else {
    x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

void RbTree::Insert(RbNode* z) {
  assert(!z->linked && "node already in a tree");
  RbNode* y = &nil_;
  RbNode* x = root_;
  bool went_left_everywhere = true;
  while (x != &nil_) {
    y = x;
    if (less_(z, x)) {
      x = x->left;
    } else {
      x = x->right;
      went_left_everywhere = false;
    }
  }
  z->parent = y;
  if (y == &nil_) {
    root_ = z;
  } else if (less_(z, y)) {
    y->left = z;
  } else {
    y->right = z;
  }
  z->left = &nil_;
  z->right = &nil_;
  z->red = true;
  z->linked = true;
  ++size_;
  if (went_left_everywhere) {
    leftmost_ = z;
  }
  InsertFixup(z);
}

void RbTree::InsertFixup(RbNode* z) {
  while (z->parent->red) {
    if (z->parent == z->parent->parent->left) {
      RbNode* y = z->parent->parent->right;
      if (y->red) {
        z->parent->red = false;
        y->red = false;
        z->parent->parent->red = true;
        z = z->parent->parent;
      } else {
        if (z == z->parent->right) {
          z = z->parent;
          RotateLeft(z);
        }
        z->parent->red = false;
        z->parent->parent->red = true;
        RotateRight(z->parent->parent);
      }
    } else {
      RbNode* y = z->parent->parent->left;
      if (y->red) {
        z->parent->red = false;
        y->red = false;
        z->parent->parent->red = true;
        z = z->parent->parent;
      } else {
        if (z == z->parent->left) {
          z = z->parent;
          RotateRight(z);
        }
        z->parent->red = false;
        z->parent->parent->red = true;
        RotateLeft(z->parent->parent);
      }
    }
  }
  root_->red = false;
}

void RbTree::Transplant(RbNode* u, RbNode* v) {
  if (u->parent == &nil_) {
    root_ = v;
  } else if (u == u->parent->left) {
    u->parent->left = v;
  } else {
    u->parent->right = v;
  }
  v->parent = u->parent;
}

RbNode* RbTree::Minimum(RbNode* n) const {
  while (n->left != &nil_) {
    n = n->left;
  }
  return n;
}

void RbTree::Erase(RbNode* z) {
  assert(z->linked && "erasing node not in tree");
  if (z == leftmost_) {
    leftmost_ = Next(z);
    if (leftmost_ == nullptr) {
      leftmost_ = &nil_;
    }
  }

  RbNode* y = z;
  bool y_original_red = y->red;
  RbNode* x = nullptr;
  if (z->left == &nil_) {
    x = z->right;
    Transplant(z, z->right);
  } else if (z->right == &nil_) {
    x = z->left;
    Transplant(z, z->left);
  } else {
    y = Minimum(z->right);
    y_original_red = y->red;
    x = y->right;
    if (y->parent == z) {
      x->parent = y;  // x may be nil_; fixup needs its parent
    } else {
      Transplant(y, y->right);
      y->right = z->right;
      y->right->parent = y;
    }
    Transplant(z, y);
    y->left = z->left;
    y->left->parent = y;
    y->red = z->red;
  }
  if (!y_original_red) {
    EraseFixup(x);
  }
  z->parent = z->left = z->right = nullptr;
  z->linked = false;
  --size_;
}

void RbTree::EraseFixup(RbNode* x) {
  while (x != root_ && !x->red) {
    if (x == x->parent->left) {
      RbNode* w = x->parent->right;
      if (w->red) {
        w->red = false;
        x->parent->red = true;
        RotateLeft(x->parent);
        w = x->parent->right;
      }
      if (!w->left->red && !w->right->red) {
        w->red = true;
        x = x->parent;
      } else {
        if (!w->right->red) {
          w->left->red = false;
          w->red = true;
          RotateRight(w);
          w = x->parent->right;
        }
        w->red = x->parent->red;
        x->parent->red = false;
        w->right->red = false;
        RotateLeft(x->parent);
        x = root_;
      }
    } else {
      RbNode* w = x->parent->left;
      if (w->red) {
        w->red = false;
        x->parent->red = true;
        RotateRight(x->parent);
        w = x->parent->left;
      }
      if (!w->right->red && !w->left->red) {
        w->red = true;
        x = x->parent;
      } else {
        if (!w->left->red) {
          w->right->red = false;
          w->red = true;
          RotateLeft(w);
          w = x->parent->left;
        }
        w->red = x->parent->red;
        x->parent->red = false;
        w->left->red = false;
        RotateRight(x->parent);
        x = root_;
      }
    }
  }
  x->red = false;
}

RbNode* RbTree::Last() const {
  if (root_ == &nil_) {
    return nullptr;
  }
  RbNode* n = root_;
  while (n->right != &nil_) {
    n = n->right;
  }
  return n;
}

RbNode* RbTree::Next(RbNode* node) const {
  if (node->right != &nil_) {
    RbNode* n = node->right;
    while (n->left != &nil_) {
      n = n->left;
    }
    return n;
  }
  RbNode* p = node->parent;
  while (p != &nil_ && node == p->right) {
    node = p;
    p = p->parent;
  }
  return p == &nil_ ? nullptr : p;
}

int RbTree::CheckSubtree(const RbNode* n, bool* ok) const {
  if (n == &nil_) {
    return 1;
  }
  if (n->red && (n->left->red || n->right->red)) {
    *ok = false;  // red node with red child
  }
  if (n->left != &nil_ && less_(n, n->left)) {
    *ok = false;  // ordering violation
  }
  if (n->right != &nil_ && less_(n->right, n)) {
    *ok = false;
  }
  const int lh = CheckSubtree(n->left, ok);
  const int rh = CheckSubtree(n->right, ok);
  if (lh != rh) {
    *ok = false;
  }
  return lh + (n->red ? 0 : 1);
}

int RbTree::CheckInvariants() const {
  if (root_ == &nil_) {
    return 0;
  }
  bool ok = !root_->red;
  // Leftmost cache must match the actual minimum.
  const RbNode* min = root_;
  while (min->left != &nil_) {
    min = min->left;
  }
  if (min != leftmost_) {
    ok = false;
  }
  const int h = CheckSubtree(root_, &ok);
  return ok ? h : -1;
}

}  // namespace schedbattle
