// CfsScheduler: the Completely Fair Scheduler (Linux 4.9 semantics, as
// described in Section 2.1 of the paper).
//
//  - Per-core scheduling: weighted fair queueing on vruntime, with a
//    48ms/6ms*n scheduling period, 1ms wakeup preemption granularity,
//    sleeper credit, START_DEBIT for new threads, and hierarchical task
//    groups (one per application by default) for application-level fairness.
//  - Load: per-entity PELT decaying averages — "a thread that never sleeps
//    has a higher load than one that sleeps a lot".
//  - Load balancing: periodic every 4ms per core, hierarchical over the
//    topology with level-dependent imbalance thresholds (25% between NUMA
//    nodes), pulling up to 32 threads, plus idle (newidle) balancing, and
//    wake placement with wake_affine / wake_wide / idle-sibling search.
#ifndef SRC_CFS_CFS_SCHED_H_
#define SRC_CFS_CFS_SCHED_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cfs/cfs_rq.h"
#include "src/cfs/group.h"
#include "src/sched/machine.h"
#include "src/sched/sched_class.h"

namespace schedbattle {

class CfsScheduler : public Scheduler {
 public:
  explicit CfsScheduler(CfsTunables tunables = {});
  ~CfsScheduler() override;

  std::string_view name() const override { return "cfs"; }
  void Attach(Machine* machine) override;
  void Start() override;

  void DeclareGroup(GroupId id, GroupId parent) override;
  void TaskNew(SimThread* thread, SimThread* parent) override;
  void TaskExit(SimThread* thread) override;
  void ReniceTask(SimThread* thread) override;
  CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) override;
  void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) override;
  void DequeueTask(CoreId core, SimThread* thread) override;
  SimThread* PickNextTask(CoreId core) override;
  void PutPrevTask(CoreId core, SimThread* thread) override;
  void OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) override;
  void YieldTask(CoreId core, SimThread* thread) override;
  void TaskTick(CoreId core, SimThread* current) override;
  void CheckPreemptWakeup(CoreId core, SimThread* woken) override;
  void OnCoreIdle(CoreId core) override;
  SimDuration TickPeriod() const override { return tun_.tick; }
  // Our CFS tick is a strict no-op on idle cores (TaskTick returns
  // immediately; the NOHZ kick lives on the wakeup path), so elided idle
  // ticks can be fast-forwarded without replay.
  bool IdleTickIsNoOp() const override { return true; }
  SimTime TickBoundary(CoreId core, const SimThread* current,
                       SimTime next_tick) const override;

  // Busy-core ticks are core-local (PELT + preempt check against the core's
  // own rq), *except* that group-weight maintenance walks shared TaskGroup
  // load sums — so parallel windows are only safe with no group hierarchy.
  bool ShardParallelSafe() const override {
    return !tun_.group_scheduling || groups_.empty();
  }
  // CFS ticks never touch another core: the idle tick is a no-op and the
  // balancer runs off its own (global-lane) timer events, not the tick.
  bool TickMayCross(CoreId /*core*/) const override { return false; }

  double LoadOf(CoreId core) const override;
  int RunnableCountOf(CoreId core) const override;
  int64_t MinVruntimeOf(CoreId core) const override {
    machine_->CatchUpTicks();  // pending solo ticks ratchet min_vruntime
    return root_->rqs[core]->min_vruntime;
  }

  const CfsTunables& tunables() const { return tun_; }
  CfsRq* RootRq(CoreId core) { return root_->rqs[core].get(); }

  // Hierarchy-aware load of one task (kernel: task_h_load), based on its
  // PELT average scaled by its group's per-CPU weight fraction.
  double TaskHLoad(const SimThread* thread) const;

  // Sum of TaskHLoad over the tasks attached to the core (the balancing
  // metric). Public for tests and metrics.
  double CoreLoad(CoreId core) const;

 private:
  struct CoreState {
    std::vector<SimThread*> attached;  // runnable + running tasks on this core
    int nr_balance_failed = 0;
    EventHandle balance_event;
    // Next time each domain level may be balanced by this core (busy_factor).
    SimTime next_balance[5] = {0, 0, 0, 0, 0};
  };

  TaskGroup* GroupFor(GroupId id);
  SchedEntity* SeOf(SimThread* t) const { return &CfsOf(t).se; }

  // Full hierarchical enqueue/dequeue of a task on a core.
  void EnqueueTaskInternal(CoreId core, SimThread* t, EnqueueKind kind);
  void DequeueTaskInternal(CoreId core, SimThread* t, bool sleep, bool migrating,
                           bool from_running);

  // Recomputes a group entity's weight from its group's load split.
  void UpdateGroupWeight(SchedEntity* gse);

  // Updates vruntime accounting for the whole curr chain on a core.
  void UpdateCurrChain(CoreId core);

  // Refreshes a task's PELT average to now.
  void UpdateTaskLoad(SimThread* t, bool running) const;

  // ---- wake placement (wake_placement.cc) ----
  void RecordWakee(SimThread* waker, SimThread* wakee);
  bool WakeWide(SimThread* waker, SimThread* wakee, CoreId cpu) const;
  // `reason` carries the caller's rationale for `target` in and the final
  // placement rationale out (OnPickCpu provenance).
  CoreId SelectIdleSibling(SimThread* t, CoreId target, PickReason* reason);
  CoreId FindIdlestCore(SimThread* t, CoreId origin);
  CoreId SelectTaskRqImpl(SimThread* thread, CoreId origin, EnqueueKind kind,
                          PickReason* reason);

  // ---- load balancing (load_balance.cc) ----
  void PeriodicBalance(CoreId core);
  void ArmBalance(CoreId core, SimDuration delay);
  bool ShouldBalanceAtLevel(CoreId core, TopoLevel level) const;
  double GroupLoadAt(const std::vector<CoreId>& cores) const;
  // One balance pass pulling toward `dst` at `level`; returns #migrated.
  int BalanceAtLevel(CoreId dst, TopoLevel level, bool idle_pull);
  // Pulls tasks; sets *all_hot when candidates existed but were all
  // cache-hot (kernel: LBF_ALL_PINNED/hot accounting feeding
  // nr_balance_failed).
  int PullTasks(CoreId src, CoreId dst, double target_load, int max_tasks, bool* all_hot);
  bool CanMigrate(SimThread* t, CoreId src, CoreId dst) const;
  double ImbalancePct(TopoLevel level) const;

  Machine* machine_ = nullptr;
  CfsTunables tun_;
  std::unique_ptr<TaskGroup> root_;
  std::unordered_map<GroupId, std::unique_ptr<TaskGroup>> groups_;
  std::unordered_map<GroupId, GroupId> group_parent_;
  std::vector<CoreState> cores_;
  uint64_t next_seq_ = 1;
};

}  // namespace schedbattle

#endif  // SRC_CFS_CFS_SCHED_H_
