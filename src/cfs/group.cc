#include "src/cfs/group.h"

#include <algorithm>
#include <cassert>

namespace schedbattle {

std::unique_ptr<TaskGroup> MakeTaskGroup(GroupId id, int num_cpus, TaskGroup* parent,
                                         uint64_t shares) {
  auto tg = std::make_unique<TaskGroup>();
  tg->id = id;
  tg->shares = shares;
  tg->parent = parent;
  tg->rqs.reserve(num_cpus);
  for (CoreId c = 0; c < num_cpus; ++c) {
    auto rq = std::make_unique<CfsRq>();
    rq->cpu = c;
    rq->tg = tg.get();
    tg->rqs.push_back(std::move(rq));
  }
  if (parent != nullptr) {
    tg->ses.reserve(num_cpus);
    for (CoreId c = 0; c < num_cpus; ++c) {
      auto se = std::make_unique<SchedEntity>();
      se->my_q = tg->rqs[c].get();
      se->cfs_rq = parent->rqs[c].get();
      se->weight = shares;
      se->depth = (parent->ses.empty() ? 0 : parent->ses[c]->depth) + 1;
      se->parent = parent->ses.empty() ? nullptr : parent->ses[c].get();
      tg->ses.push_back(std::move(se));
    }
  }
  return tg;
}

uint64_t CalcGroupWeight(const TaskGroup* tg, CoreId cpu) {
  assert(!tg->is_root());
  const uint64_t local = tg->rqs[cpu]->load_weight;
  const uint64_t total = std::max<uint64_t>(tg->load_sum, local);
  if (total == 0) {
    return tg->shares;  // empty group: full shares (matters only pre-enqueue)
  }
  const uint64_t w =
      static_cast<uint64_t>(static_cast<unsigned __int128>(tg->shares) * local / total);
  return std::clamp<uint64_t>(w, 2, tg->shares);
}

}  // namespace schedbattle
