// CFS load balancing (kernel: load_balance / rebalance_domains).
//
// Paper, Section 2.1: "Load balancing also happens periodically. Every 4ms
// every core tries to steal work from other cores. ... it tries to even out
// the load between the two cores by stealing as many as 32 threads. Cores
// also immediately call the periodic load balancer when they become idle.
// On large NUMA machines, CFS ... balances the load in a hierarchical way."
#include <algorithm>
#include <bit>
#include <cassert>

#include "src/cfs/cfs_sched.h"

namespace schedbattle {

namespace {

// The child level whose groups are compared when balancing at `level`.
TopoLevel ChildLevelOf(TopoLevel level) {
  switch (level) {
    case TopoLevel::kMachine:
      return TopoLevel::kNode;
    case TopoLevel::kNode:
      return TopoLevel::kLlc;
    case TopoLevel::kLlc:
      return TopoLevel::kSmt;
    default:
      return TopoLevel::kCore;
  }
}

}  // namespace

void CfsScheduler::ArmBalance(CoreId core, SimDuration delay) {
  cores_[core].balance_event =
      machine_->engine().After(delay, [this, core] { PeriodicBalance(core); });
}

void CfsScheduler::PeriodicBalance(CoreId core) {
  machine_->CatchUpTicks();  // balance decisions must see settled tick state
  ++machine_->counters().balance_invocations;
  // NOHZ: a tickless idle core does not run its own periodic balance; it is
  // balanced on demand when an overloaded core kicks it (nohz_balancer_kick).
  if (!machine_->core(core).idle()) {
    const SimTime now = machine_->now();
    for (TopoLevel level : {TopoLevel::kLlc, TopoLevel::kNode, TopoLevel::kMachine}) {
      const auto& enclosing = machine_->topology().GroupOf(core, level);
      const auto& child = machine_->topology().GroupOf(core, ChildLevelOf(level));
      if (enclosing.size() == child.size()) {
        continue;  // degenerate level (e.g. one LLC per node)
      }
      // Busy cores balance each domain level only every
      // interval * busy_factor (wider domains less often).
      const int li = static_cast<int>(level);
      if (now < cores_[core].next_balance[li]) {
        continue;
      }
      const SimDuration level_scale = 1 + (li - static_cast<int>(TopoLevel::kLlc));
      const SimDuration interval = std::min(
          tun_.balance_interval * level_scale * tun_.busy_factor, tun_.max_balance_interval);
      cores_[core].next_balance[li] = now + interval;
      if (!ShouldBalanceAtLevel(core, level)) {
        continue;
      }
      BalanceAtLevel(core, level, /*idle_pull=*/false);
    }
    // Overloaded with idle cores elsewhere: kick the first idle core; it
    // runs an idle-balance pass on its own domains.
    if (RunnableCountOf(core) > 1) {
      if (tun_.placement_fast_path) {
        const int idle = machine_->idle_mask().FirstSet();
        if (idle >= 0) {
          OnCoreIdle(static_cast<CoreId>(idle));
        }
      } else {
        for (CoreId c = 0; c < machine_->num_cores(); ++c) {
          if (machine_->core(c).idle()) {
            OnCoreIdle(c);
            break;
          }
        }
      }
    }
  }
  ArmBalance(core, tun_.balance_interval);
}

void CfsScheduler::OnCoreIdle(CoreId core) {
  // A core that tends to idle only momentarily skips newidle balancing
  // entirely — pulling work it cannot amortize just bounces tasks around
  // (kernel: this_rq->avg_idle < sysctl_sched_migration_cost).
  if (machine_->core(core).avg_idle < tun_.migration_cost) {
    return;
  }
  // newidle balance: climb the domain hierarchy until something is pulled.
  for (TopoLevel level : {TopoLevel::kLlc, TopoLevel::kNode, TopoLevel::kMachine}) {
    const auto& enclosing = machine_->topology().GroupOf(core, level);
    const auto& child = machine_->topology().GroupOf(core, ChildLevelOf(level));
    if (enclosing.size() == child.size()) {
      continue;
    }
    if (BalanceAtLevel(core, level, /*idle_pull=*/true) > 0) {
      return;
    }
  }
}

int CfsScheduler::BalanceAtLevel(CoreId dst, TopoLevel level, bool idle_pull) {
  const CpuTopology& topo = machine_->topology();
  const TopoLevel child_level = ChildLevelOf(level);
  const auto& enclosing = topo.GroupOf(dst, level);
  const auto& local_cores = topo.GroupOf(dst, child_level);

  // Enumerate sibling child groups inside the enclosing group.
  const double local_load = GroupLoadAt(local_cores);
  double busiest_load = -1.0;
  const std::vector<CoreId>* busiest_group = nullptr;
  int scanned = 0;
  for (const auto& group : topo.GroupsAt(child_level)) {
    // Same enclosing group, different child group.
    if (topo.GroupOf(group.front(), level).front() != enclosing.front()) {
      continue;
    }
    if (group.front() == local_cores.front()) {
      continue;
    }
    scanned += static_cast<int>(group.size());
    const double load = GroupLoadAt(group);
    if (load > busiest_load) {
      busiest_load = load;
      busiest_group = &group;
    }
  }
  machine_->ChargeOverhead(dst, scanned * tun_.balance_cost_per_core, OverheadKind::kLoadBalance);
  if (busiest_group == nullptr) {
    return 0;
  }

  // Level-dependent imbalance threshold; "the greater the distance, the
  // higher the imbalance has to be".
  const double pct = ImbalancePct(level);
  if (busiest_load <= local_load * pct + 1e-9) {
    cores_[dst].nr_balance_failed = 0;
    return 0;
  }
  // Normalize group loads to per-core averages so differently sized groups
  // compare sensibly, then pull toward the mean.
  const double local_avg = local_load / static_cast<double>(local_cores.size());
  const double busiest_avg = busiest_load / static_cast<double>(busiest_group->size());
  if (busiest_avg <= local_avg * pct + 1e-9) {
    return 0;
  }
  const double imbalance = (busiest_avg - local_avg) / 2.0 * local_cores.size();

  // Busiest core inside the busiest group with something pullable.
  CoreId src = kInvalidCore;
  double src_load = -1.0;
  for (CoreId c : *busiest_group) {
    if (RunnableCountOf(c) < 2 && !machine_->core(c).idle()) {
      continue;  // only a running thread; nothing to detach
    }
    if (RunnableCountOf(c) < 1) {
      continue;
    }
    const double load = CoreLoad(c);
    if (load > src_load) {
      src_load = load;
      src = c;
    }
  }
  if (src == kInvalidCore || src == dst) {
    return 0;
  }
  bool all_hot = false;
  const bool probe = machine_->observing_decisions();
  const double src_load_before = probe ? CoreLoad(src) : 0.0;
  const double dst_load_before = probe ? CoreLoad(dst) : 0.0;
  const int moved = PullTasks(src, dst, imbalance, tun_.max_migrate, &all_hot);
  if (probe) {
    BalancePassRecord rec;
    rec.kind =
        idle_pull ? BalancePassRecord::Kind::kIdlePull : BalancePassRecord::Kind::kPeriodic;
    rec.level = static_cast<int>(level);
    rec.src = src;
    rec.dst = dst;
    rec.src_load = src_load_before;
    rec.dst_load = dst_load_before;
    rec.imbalance_pct =
        busiest_avg > 1e-9 ? 100.0 * (busiest_avg - local_avg) / busiest_avg : 0.0;
    rec.threads_moved = moved;
    machine_->EmitBalancePass(rec);
  }
  if (moved == 0) {
    // Only a pull blocked purely by cache hotness counts as a failure
    // (repeated failures eventually override hotness); an empty source is
    // not a failure, otherwise transient load ripples would permanently
    // disable the hot-task protection.
    if (all_hot) {
      ++cores_[dst].nr_balance_failed;
    }
  } else {
    cores_[dst].nr_balance_failed = 0;
  }
  return moved;
}

bool CfsScheduler::CanMigrate(SimThread* t, CoreId src, CoreId dst) const {
  if (t->state() != ThreadState::kRunnable) {
    return false;  // running (or blocked) threads are not migratable
  }
  if (machine_->CurrentOn(src) == t) {
    return false;
  }
  if (!t->CanRunOn(dst)) {
    return false;
  }
  // Cache hotness (kernel: task_hot / sched_migration_cost), overridden when
  // balancing keeps failing.
  const bool hot = t->last_descheduled > 0 &&
                   machine_->now() - t->last_descheduled < tun_.migration_cost;
  if (hot && cores_[dst].nr_balance_failed <= tun_.max_balance_failed) {
    return false;
  }
  return true;
}

int CfsScheduler::PullTasks(CoreId src, CoreId dst, double target_load, int max_tasks,
                            bool* all_hot) {
  // Snapshot: DequeueTask mutates the attached list.
  std::vector<SimThread*> candidates = cores_[src].attached;
  machine_->ChargeOverhead(dst, candidates.size() * tun_.balance_cost_per_core,
                           OverheadKind::kLoadBalance);
  int moved = 0;
  int hot_skips = 0;
  double moved_load = 0.0;
  for (SimThread* t : candidates) {
    if (moved >= max_tasks || moved_load >= target_load) {
      break;
    }
    if (!CanMigrate(t, src, dst)) {
      if (t->state() == ThreadState::kRunnable && machine_->CurrentOn(src) != t &&
          t->CanRunOn(dst)) {
        ++hot_skips;  // blocked only by cache hotness
      }
      continue;
    }
    const double h_load = std::max(TaskHLoad(t), 1.0);
    DequeueTaskInternal(src, t, /*sleep=*/false, /*migrating=*/true, /*from_running=*/false);
    EnqueueTaskInternal(dst, t, EnqueueKind::kMigrate);
    machine_->NoteMigration(t, src, dst);
    ++moved;
    moved_load += h_load;
  }
  *all_hot = moved == 0 && hot_skips > 0;
  return moved;
}

}  // namespace schedbattle
