#include "src/cfs/timeline.h"

namespace schedbattle {

bool TimelineLess(const RbNode* a, const RbNode* b) {
  const SchedEntity* ea = static_cast<const SchedEntity*>(a->owner);
  const SchedEntity* eb = static_cast<const SchedEntity*>(b->owner);
  if (ea->vruntime != eb->vruntime) {
    return ea->vruntime < eb->vruntime;
  }
  return ea->seq < eb->seq;
}

CfsRq::CfsRq() : timeline(TimelineLess) {}

void TimelineEnqueue(CfsRq* rq, SchedEntity* se) {
  se->rb.owner = se;
  rq->timeline.Insert(&se->rb);
}

void TimelineDequeue(CfsRq* rq, SchedEntity* se) { rq->timeline.Erase(&se->rb); }

SchedEntity* TimelineFirst(const CfsRq* rq) {
  RbNode* n = rq->timeline.First();
  return n == nullptr ? nullptr : EntityOwner(n);
}

SchedEntity* TimelineNext(const CfsRq* rq, SchedEntity* se) {
  RbNode* n = rq->timeline.Next(&se->rb);
  return n == nullptr ? nullptr : EntityOwner(n);
}

}  // namespace schedbattle
