// Per-runqueue CFS mechanics: vruntime accounting, entity enqueue/dequeue,
// sleeper placement, slice computation and tick preemption.
//
// These functions operate on a single CfsRq level; the scheduler walks the
// group hierarchy and calls them per level (kernel: fair.c entity layer).
#ifndef SRC_CFS_CFS_RQ_H_
#define SRC_CFS_CFS_RQ_H_

#include "src/cfs/entity.h"
#include "src/sim/time.h"

namespace schedbattle {

struct CfsTunables {
  // Scheduling period for up to nr_latency runnable threads (paper: 48ms).
  SimDuration sched_latency = Milliseconds(48);
  // Minimum per-thread slice; period grows to nr * this beyond nr_latency
  // (paper: 6ms, "chosen to avoid preempting threads too frequently").
  SimDuration min_granularity = Milliseconds(6);
  // Wakeup preemption granularity (paper: 1ms vruntime difference).
  SimDuration wakeup_granularity = Milliseconds(1);
  int nr_latency = 8;

  bool gentle_fair_sleepers = true;  // sleeper credit capped at latency/2
  // Sleeper credit at all: when off, woken threads are placed at
  // min_vruntime exactly (no bonus). Ablation knob.
  bool sleeper_credit = true;
  bool start_debit = true;           // new entities start one vslice ahead

  // Group scheduling (one cgroup per application, autogroup-style). The
  // ablation_cgroups bench disables this to show per-thread fairness.
  bool group_scheduling = true;

  // ---- load balancing ----
  SimDuration balance_interval = Milliseconds(4);  // paper: every 4ms
  // A busy core balances its domains far less often than an idle one
  // (kernel: busy_factor = 32); idle cores are balanced at the base rate via
  // newidle balancing and NOHZ kicks.
  int busy_factor = 32;
  SimDuration max_balance_interval = Milliseconds(128);
  SimDuration migration_cost = Microseconds(500);  // cache-hot threshold
  int max_migrate = 32;                            // paper: up to 32 threads per pull
  double imbalance_pct_smt = 1.10;
  double imbalance_pct_llc = 1.17;
  double imbalance_pct_numa = 1.25;  // paper: 25% between NUMA nodes
  int max_balance_failed = 4;        // ignore cache hotness after this many failures

  // ---- simulated overhead model ----
  SimDuration wake_scan_cost_per_core = Nanoseconds(80);
  SimDuration balance_cost_per_core = Nanoseconds(150);

  // Use the machine's idle-core bitmask for wake placement instead of
  // per-core scans. Pure implementation accelerator: decisions and modeled
  // scan costs are identical either way (the determinism tests assert it);
  // off switches back to the literal scan loops for differential checking.
  bool placement_fast_path = true;

  SimDuration tick = Milliseconds(1);  // HZ=1000
};

// The scheduling period: nr <= nr_latency ? sched_latency : nr * min_gran.
SimDuration CfsSchedPeriod(const CfsTunables& tun, int nr_running);

// This entity's slice of the period, weighted by its (hierarchical) weight.
SimDuration CfsSchedSlice(const CfsTunables& tun, const CfsRq* rq, const SchedEntity* se);

// Advances rq->curr's vruntime/exec stats to `now` and ratchets min_vruntime.
void CfsUpdateCurr(CfsRq* rq, SimTime now);

void CfsUpdateMinVruntime(CfsRq* rq);

// Places a new (initial=true) or waking (initial=false) entity relative to
// min_vruntime (paper: new threads start at the max/queued vruntime, woken
// threads at least at the min; the kernel's actual rules are START_DEBIT and
// GENTLE_FAIR_SLEEPERS, implemented here).
void CfsPlaceEntity(const CfsTunables& tun, CfsRq* rq, SchedEntity* se, bool initial);

// Adds/removes the entity's weight and counts (does not touch the tree).
void CfsAccountEnqueue(CfsRq* rq, SchedEntity* se);
void CfsAccountDequeue(CfsRq* rq, SchedEntity* se);

// Full entity enqueue: update curr, place if waking, account, insert in tree.
void CfsEnqueueEntity(const CfsTunables& tun, CfsRq* rq, SchedEntity* se, bool wakeup,
                      SimTime now);

// Full entity dequeue. `sleep` distinguishes a blocking dequeue from a
// migration dequeue; migration renormalizes vruntime to be rq-relative.
void CfsDequeueEntity(const CfsTunables& tun, CfsRq* rq, SchedEntity* se, bool sleep,
                      bool migrating, SimTime now);

// Marks `se` as the running entity: removes it from the tree, snapshots its
// runtime for slice accounting.
void CfsSetNextEntity(CfsRq* rq, SchedEntity* se, SimTime now);

// The running entity stops: re-inserts it in the tree if still on_rq.
void CfsPutPrevEntity(CfsRq* rq, SchedEntity* se, SimTime now);

// Tick preemption check for rq->curr: true if it should be preempted
// (exhausted its slice, or a leftmost entity is too far behind).
bool CfsCheckPreemptTick(const CfsTunables& tun, CfsRq* rq, SimTime now);

// Wakeup preemption test between two entities on the same rq: should `se`
// preempt `curr`? (vruntime difference above the weighted wakeup granularity.)
bool CfsWakeupPreemptEntity(const CfsTunables& tun, const SchedEntity* curr,
                            const SchedEntity* se);

// Decision margin of the wakeup-preemption test: `curr`'s vruntime lead over
// `se` minus the weighted wakeup granularity. Positive iff the check fires
// (CfsWakeupPreemptEntity == true); exported as OnPreempt provenance.
int64_t CfsWakeupPreemptMargin(const CfsTunables& tun, const SchedEntity* curr,
                               const SchedEntity* se);

}  // namespace schedbattle

#endif  // SRC_CFS_CFS_RQ_H_
