// Task groups (cgroups) for CFS group scheduling.
//
// Since Linux 2.6.38 CFS is fair between *groups* of threads, not individual
// threads (paper Section 2.1). A TaskGroup owns one runqueue and one group
// entity per CPU; the group entity is enqueued on its parent's runqueue and
// its weight is the group's shares scaled by how much of the group's load
// lives on that CPU.
#ifndef SRC_CFS_GROUP_H_
#define SRC_CFS_GROUP_H_

#include <memory>
#include <vector>

#include "src/cfs/entity.h"
#include "src/sched/types.h"

namespace schedbattle {

struct TaskGroup {
  GroupId id = kRootGroup;
  uint64_t shares = kNice0Load;  // weight of the whole group at nice-0 scale
  TaskGroup* parent = nullptr;

  // Per-CPU runqueues; rqs[c]->tg == this.
  std::vector<std::unique_ptr<CfsRq>> rqs;
  // Per-CPU group entities (empty for the root group).
  std::vector<std::unique_ptr<SchedEntity>> ses;

  // Sum of rqs[c]->load_weight across CPUs, maintained incrementally; the
  // denominator of the per-CPU shares split (kernel: tg->load_avg, here
  // weight-based for simplicity and determinism).
  uint64_t load_sum = 0;

  bool is_root() const { return parent == nullptr; }
};

// Creates a group with per-CPU runqueues (and group entities if non-root),
// wired into `parent`'s runqueues.
std::unique_ptr<TaskGroup> MakeTaskGroup(GroupId id, int num_cpus, TaskGroup* parent,
                                         uint64_t shares);

// Recomputes the weight of `tg`'s entity on cpu from the group's local load
// fraction: shares * local_load / total_load, clamped to [2, shares].
// (kernel: calc_group_shares). Returns the new weight.
uint64_t CalcGroupWeight(const TaskGroup* tg, CoreId cpu);

}  // namespace schedbattle

#endif  // SRC_CFS_GROUP_H_
