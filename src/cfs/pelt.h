// PELT: Per-Entity Load Tracking.
//
// CFS's load metric (paper Section 2.1, "Load balancing") is not a runnable
// count but a decaying average of each thread's CPU utilization, weighted by
// priority: "a thread that never sleeps has a higher load than one that
// sleeps a lot". This implements the kernel's PELT scheme: time is divided
// into 1024us periods and contributions decay geometrically with
// y^32 = 1/2, so roughly the last 350ms of behaviour dominates.
//
// The arithmetic (decay table, segment accumulation, LOAD_AVG_MAX) follows
// kernel/sched/pelt.c.
#ifndef SRC_CFS_PELT_H_
#define SRC_CFS_PELT_H_

#include <cstdint>

#include "src/sim/time.h"

namespace schedbattle {

// One PELT period: 1024us (in ns).
inline constexpr SimDuration kPeltPeriod = 1024 * 1024;

// Maximum value of the geometric series sum: sum_{n>=0} 1024 * y^n.
inline constexpr uint32_t kLoadAvgMax = 47742;

// Decays `val` by n periods (val * y^n).
uint64_t PeltDecayLoad(uint64_t val, uint64_t n);

struct PeltAvg {
  SimTime last_update_time = 0;
  // Sub-period remainder carried between updates (ns within current period).
  uint32_t period_contrib = 0;
  // Geometric sums, scaled: load counts time runnable, util counts time running.
  uint64_t load_sum = 0;
  uint64_t util_sum = 0;
  // Averages: load_avg is weight-scaled (kNice0Load for a 100%-runnable
  // nice-0 thread), util_avg in [0, 1024].
  uint64_t load_avg = 0;
  uint64_t util_avg = 0;

  // Advances the average to `now`. While `runnable`, the entity accrues load
  // (scaled by `weight`); while `running`, it accrues utilization.
  // Returns true if a full period boundary was crossed (averages changed).
  bool Update(SimTime now, uint64_t weight, bool runnable, bool running);

  // Decay-only update (entity blocked): Update with runnable=running=false.
  bool Decay(SimTime now) { return Update(now, 0, false, false); }
};

}  // namespace schedbattle

#endif  // SRC_CFS_PELT_H_
