// CFS scheduling entities and runqueues.
//
// A SchedEntity is either a task (thread == non-null) or a group entity
// representing a task group's presence on one CPU (my_q == the group's
// per-CPU runqueue). Group entities give CFS its fairness *between
// applications* (paper Section 2.1: cgroups); the experiment harness assigns
// one group per application, mirroring systemd/autogroup.
#ifndef SRC_CFS_ENTITY_H_
#define SRC_CFS_ENTITY_H_

#include <cstdint>

#include "src/cfs/pelt.h"
#include "src/cfs/rbtree.h"
#include "src/cfs/weights.h"
#include "src/sched/thread.h"
#include "src/sched/types.h"
#include "src/sim/time.h"

namespace schedbattle {

struct CfsRq;
struct TaskGroup;

struct SchedEntity {
  // Timeline ordering. vruntime is signed so that relative placement
  // arithmetic (migration renormalization, sleeper credit) cannot underflow.
  int64_t vruntime = 0;
  uint64_t seq = 0;  // tie-break for deterministic timeline order
  RbNode rb;

  uint64_t weight = kNice0Load;
  PeltAvg avg;

  SimTime exec_start = 0;
  uint64_t sum_exec_runtime = 0;
  uint64_t prev_sum_exec_runtime = 0;  // snapshot at set_next (slice accounting)
  bool on_rq = false;
  int depth = 0;

  SimThread* thread = nullptr;  // null for group entities
  CfsRq* cfs_rq = nullptr;      // the runqueue this entity is (or was) queued on
  CfsRq* my_q = nullptr;        // group entity: the runqueue it represents
  SchedEntity* parent = nullptr;

  bool is_task() const { return thread != nullptr; }
};

struct CfsRq {
  CoreId cpu = 0;
  TaskGroup* tg = nullptr;  // owning group (root group for the root runqueue)

  // Timeline of *queued* entities, excluding curr (kernel convention: the
  // running entity is removed from the tree by set_next_entity).
  RbTree timeline;
  int64_t min_vruntime = 0;

  uint64_t load_weight = 0;  // sum of weights of on_rq entities (incl. curr)
  int nr_running = 0;        // on_rq entities (incl. curr)
  int h_nr_running = 0;      // hierarchical count of on_rq *tasks*
  SchedEntity* curr = nullptr;

  CfsRq();
};

// Per-thread CFS state (the task's sched_entity plus wakeup-pattern stats
// used by the wake_wide heuristic).
struct CfsTaskData : ThreadSchedData {
  SchedEntity se;
  // wake_wide bookkeeping (kernel: record_wakee).
  ThreadId last_wakee = kInvalidThread;
  uint64_t wakee_flips = 0;
  SimTime wakee_flip_decay_ts = 0;
};

inline CfsTaskData& CfsOf(SimThread* t) { return t->sched<CfsTaskData>(); }
inline const CfsTaskData& CfsOf(const SimThread* t) {
  return *static_cast<const CfsTaskData*>(t->sched_data());
}

inline SchedEntity* EntityOwner(RbNode* node) { return static_cast<SchedEntity*>(node->owner); }

}  // namespace schedbattle

#endif  // SRC_CFS_ENTITY_H_
