// Intrusive red-black tree with cached leftmost node.
//
// CFS keeps each runqueue's entities in a red-black tree ordered by vruntime,
// with the leftmost (smallest-vruntime) node cached so picking the next
// thread is O(1). This is a from-scratch implementation of that substrate
// (the kernel's lib/rbtree.c equivalent), written against the classic CLRS
// algorithms with a per-tree nil sentinel.
//
// Nodes carry an `owner` pointer back to their containing object; ordering is
// supplied by the tree's comparator over owners. Duplicate keys are allowed
// (the comparator should break ties deterministically if stable order
// matters, as the CFS timeline does with a sequence number).
#ifndef SRC_CFS_RBTREE_H_
#define SRC_CFS_RBTREE_H_

#include <cstddef>

namespace schedbattle {

struct RbNode {
  RbNode* parent = nullptr;
  RbNode* left = nullptr;
  RbNode* right = nullptr;
  bool red = false;
  void* owner = nullptr;
  bool linked = false;  // membership flag, for assertions
};

class RbTree {
 public:
  // less(a, b): strict weak ordering over node owners.
  using LessFn = bool (*)(const RbNode* a, const RbNode* b);

  explicit RbTree(LessFn less);
  RbTree(const RbTree&) = delete;
  RbTree& operator=(const RbTree&) = delete;

  bool empty() const { return root_ == &nil_; }
  size_t size() const { return size_; }

  void Insert(RbNode* node);
  void Erase(RbNode* node);

  // Smallest node, or nullptr if empty. O(1) (cached).
  RbNode* First() const { return leftmost_ == &nil_ ? nullptr : leftmost_; }
  // Largest node, or nullptr if empty. O(log n).
  RbNode* Last() const;
  // In-order successor, or nullptr.
  RbNode* Next(RbNode* node) const;

  bool Contains(const RbNode* node) const { return node->linked; }

  // Validates red-black invariants (test helper); returns black height or -1.
  int CheckInvariants() const;

 private:
  void RotateLeft(RbNode* x);
  void RotateRight(RbNode* x);
  void InsertFixup(RbNode* z);
  void Transplant(RbNode* u, RbNode* v);
  void EraseFixup(RbNode* x);
  RbNode* Minimum(RbNode* n) const;
  int CheckSubtree(const RbNode* n, bool* ok) const;

  LessFn less_;
  mutable RbNode nil_;  // sentinel; nil_.red == false always
  RbNode* root_;
  RbNode* leftmost_;
  size_t size_ = 0;
};

}  // namespace schedbattle

#endif  // SRC_CFS_RBTREE_H_
