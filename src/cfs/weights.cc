#include "src/cfs/weights.h"

#include <cassert>

namespace schedbattle {

namespace {
// Linux kernel sched_prio_to_weight[], index 0 = nice -20.
constexpr uint64_t kNiceToWeight[40] = {
    88761, 71755, 56483, 46273, 36291,  // -20 .. -16
    29154, 23254, 18705, 14949, 11916,  // -15 .. -11
    9548,  7620,  6100,  4904,  3906,   // -10 .. -6
    3121,  2501,  1991,  1586,  1277,   //  -5 .. -1
    1024,  820,   655,   526,   423,    //   0 ..  4
    335,   272,   215,   172,   137,    //   5 ..  9
    110,   87,    70,    56,    45,     //  10 .. 14
    36,    29,    23,    18,    15,     //  15 .. 19
};
}  // namespace

uint64_t CfsWeightOf(Nice nice) {
  assert(nice >= kNiceMin && nice <= kNiceMax);
  return kNiceToWeight[nice - kNiceMin];
}

uint64_t CalcDeltaFair(uint64_t delta, uint64_t weight) {
  if (weight == kNice0Load) {
    return delta;
  }
  assert(weight > 0);
  // The kernel uses a fixed-point inverse (wmult); 128-bit division is
  // simpler and exact, and this is a simulator, not a kernel fast path.
  return static_cast<uint64_t>(static_cast<unsigned __int128>(delta) * kNice0Load / weight);
}

}  // namespace schedbattle
