// Timeline helpers: the vruntime-ordered tree operations on a CfsRq.
#ifndef SRC_CFS_TIMELINE_H_
#define SRC_CFS_TIMELINE_H_

#include "src/cfs/entity.h"

namespace schedbattle {

// Strict ordering for the timeline: by vruntime, ties by insertion sequence.
bool TimelineLess(const RbNode* a, const RbNode* b);

void TimelineEnqueue(CfsRq* rq, SchedEntity* se);
void TimelineDequeue(CfsRq* rq, SchedEntity* se);

// Entity with the smallest vruntime, or nullptr.
SchedEntity* TimelineFirst(const CfsRq* rq);

// Second-smallest entity (used by yield-to and some preemption checks).
SchedEntity* TimelineNext(const CfsRq* rq, SchedEntity* se);

}  // namespace schedbattle

#endif  // SRC_CFS_TIMELINE_H_
