// CFS thread placement on wakeup/fork (kernel: select_task_rq_fair).
//
// Paper, Section 2.1: "The scheduler first decides which cores are suitable
// to host the thread. ... if CFS detects a 1-to-many producer-consumer
// pattern, then it spreads out the consumer threads as much as possible on
// the machine ... In a 1-to-1 communication pattern, CFS restricts the list
// of suitable cores to cores sharing a cache with the thread that initiated
// the wakeup. Then, among all suitable cores, CFS chooses the core with the
// lowest load."
#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

#include "src/cfs/cfs_sched.h"

namespace schedbattle {

void CfsScheduler::RecordWakee(SimThread* waker, SimThread* wakee) {
  CfsTaskData& wd = CfsOf(waker);
  const SimTime now = machine_->now();
  if (now - wd.wakee_flip_decay_ts > Seconds(1)) {
    wd.wakee_flips >>= 1;
    wd.wakee_flip_decay_ts = now;
  }
  if (wd.last_wakee != wakee->id()) {
    wd.last_wakee = wakee->id();
    ++wd.wakee_flips;
  }
}

bool CfsScheduler::WakeWide(SimThread* waker, SimThread* wakee, CoreId cpu) const {
  // kernel: wake_wide(). Heavy wakee-switching relative to the LLC fan-out
  // indicates a 1-to-N pattern; spread instead of packing near the waker.
  const uint64_t factor = static_cast<uint64_t>(machine_->topology().LlcSize(cpu));
  uint64_t master = CfsOf(waker).wakee_flips;
  uint64_t slave = CfsOf(wakee).wakee_flips;
  if (master < slave) {
    std::swap(master, slave);
  }
  if (slave < factor || master < slave * factor) {
    return false;
  }
  return true;
}

CoreId CfsScheduler::SelectIdleSibling(SimThread* t, CoreId target, PickReason* reason) {
  // `*reason` arrives as the caller's rationale for `target` and is only
  // overwritten when the search settles somewhere else.
  const CpuTopology& topo = machine_->topology();
  if (t->CanRunOn(target) && machine_->core(target).idle()) {
    return target;
  }
  // Scan the LLC of `target` for an idle core (kernel: select_idle_sibling /
  // select_idle_cpu). The scan consumes cycles on the waking core.
  const auto& llc = topo.GroupOf(target, TopoLevel::kLlc);
  int scanned = 0;
  CoreId found = kInvalidCore;
  if (tun_.placement_fast_path) {
    // O(1) equivalent of the scan below: the first set bit of
    // idle & in-LLC & allowed & not-target is exactly the core the ascending
    // scan would stop at. `scanned` still counts every LLC core the scan
    // would have visited (all cores up to and including `found`, or the
    // whole LLC on a miss) so the modeled overhead charge is unchanged.
    const CpuSet cand = (machine_->idle_mask() & topo.GroupMask(target, TopoLevel::kLlc) &
                         t->affinity())
                            .Without(target);
    const int first = cand.FirstSet();
    if (first >= 0) {
      found = static_cast<CoreId>(first);
      scanned = topo.GroupMask(target, TopoLevel::kLlc).CountThrough(found);
    } else {
      scanned = static_cast<int>(llc.size());
    }
  } else {
    for (CoreId c : llc) {
      ++scanned;
      if (c != target && t->CanRunOn(c) && machine_->core(c).idle()) {
        found = c;
        break;
      }
    }
  }
  machine_->counters().pickcpu_scans += scanned;
  machine_->ChargeOverhead(target, scanned * tun_.wake_scan_cost_per_core,
                           OverheadKind::kWakePlacement);
  if (found != kInvalidCore) {
    *reason = PickReason::kIdleSibling;
    return found;
  }
  if (t->CanRunOn(target)) {
    return target;
  }
  // Affinity excludes the whole neighbourhood; fall back to the least loaded
  // allowed core.
  *reason = PickReason::kIdlest;
  return FindIdlestCore(t, target);
}

CoreId CfsScheduler::FindIdlestCore(SimThread* t, CoreId origin) {
  // Slow path (kernel: find_idlest_group / find_idlest_cpu): descend the
  // domain hierarchy greedily, at each level choosing the child group with
  // the lowest *average* load, then pick the least loaded allowed core of
  // the final group. The greedy average-chasing is what occasionally picks
  // a group whose individual cores are all busier than an idle core
  // elsewhere — one source of the paper's CFS placement mistakes.
  const CpuTopology& topo = machine_->topology();
  int scanned = 0;
  // Per-call memo: the descent below reads some cores' loads up to three
  // times (two hierarchy levels plus the final cohort), and CoreLoad is
  // idempotent within one call — the first read refreshes every attached
  // thread's PELT average to `now`, so a repeat read returns the same value.
  // `scanned` still counts each examination for the modeled cost.
  std::vector<double> load_memo(machine_->num_cores());
  CpuSet load_memo_valid;
  auto core_load = [&](CoreId c) {
    if (!load_memo_valid.Test(c)) {
      load_memo[c] = CoreLoad(c);
      load_memo_valid.Set(c);
    }
    return load_memo[c];
  };
  auto group_avg = [&](const std::vector<CoreId>& cores) {
    double sum = 0;
    int allowed = 0;
    for (CoreId c : cores) {
      ++scanned;
      sum += core_load(c);
      if (t->CanRunOn(c)) {
        ++allowed;
      }
    }
    if (allowed == 0) {
      return std::numeric_limits<double>::max();
    }
    return sum / static_cast<double>(cores.size());
  };

  // Pick the idlest group at each level, narrowing to its cores.
  std::vector<CoreId> cohort = topo.GroupOf(0, TopoLevel::kMachine);
  for (TopoLevel level : {TopoLevel::kNode, TopoLevel::kLlc}) {
    const std::vector<CoreId>* best_group = nullptr;
    double best_avg = std::numeric_limits<double>::max();
    for (const auto& group : topo.GroupsAt(level)) {
      if (std::find(cohort.begin(), cohort.end(), group.front()) == cohort.end()) {
        continue;  // outside the chosen parent group
      }
      const double avg = group_avg(group);
      if (avg < best_avg) {
        best_avg = avg;
        best_group = &group;
      }
    }
    if (best_group == nullptr) {
      break;
    }
    cohort = *best_group;
  }

  CoreId best = kInvalidCore;
  double best_load = std::numeric_limits<double>::max();
  int best_nr = std::numeric_limits<int>::max();
  for (CoreId c : cohort) {
    if (!t->CanRunOn(c)) {
      continue;
    }
    const double load = core_load(c);
    const int nr = RunnableCountOf(c);
    if (load < best_load - 1e-9 || (std::abs(load - best_load) <= 1e-9 && nr < best_nr)) {
      best = c;
      best_load = load;
      best_nr = nr;
    }
  }
  if (best == kInvalidCore) {
    // Affinity excludes the chosen cohort entirely: fall back to any allowed.
    if (tun_.placement_fast_path) {
      for (int c = t->affinity().FirstSet(); c >= 0; c = t->affinity().NextSet(c)) {
        if (best == kInvalidCore || core_load(c) < best_load) {
          best = c;
          best_load = core_load(c);
        }
      }
    } else {
      for (CoreId c = 0; c < machine_->num_cores(); ++c) {
        if (t->CanRunOn(c) && (best == kInvalidCore || core_load(c) < best_load)) {
          best = c;
          best_load = core_load(c);
        }
      }
    }
  }
  machine_->counters().pickcpu_scans += scanned;
  if (origin != kInvalidCore) {
    machine_->ChargeOverhead(origin, scanned * tun_.wake_scan_cost_per_core,
                             OverheadKind::kWakePlacement);
  }
  assert(best != kInvalidCore);
  return best;
}

CoreId CfsScheduler::SelectTaskRqImpl(SimThread* thread, CoreId origin, EnqueueKind kind,
                                      PickReason* reason) {
  if (thread->affinity().Count() == 1) {
    if (tun_.placement_fast_path) {
      *reason = PickReason::kPinned;
      return static_cast<CoreId>(thread->affinity().FirstSet());
    }
    for (CoreId c = 0; c < machine_->num_cores(); ++c) {
      if (thread->CanRunOn(c)) {
        *reason = PickReason::kPinned;
        return c;
      }
    }
  }
  switch (kind) {
    case EnqueueKind::kFork:
    case EnqueueKind::kMigrate:
      *reason = PickReason::kIdlest;
      return FindIdlestCore(thread, origin);
    case EnqueueKind::kRequeue:
      if (thread->CanRunOn(origin)) {
        *reason = PickReason::kPrevAffine;
        return origin;
      }
      *reason = PickReason::kIdlest;
      return FindIdlestCore(thread, origin);
    case EnqueueKind::kWakeup:
      break;
  }

  CoreId prev = thread->last_ran_cpu() != kInvalidCore ? thread->last_ran_cpu() : origin;
  if (!thread->CanRunOn(prev)) {
    prev = kInvalidCore;
  }
  SimThread* waker = origin != kInvalidCore ? machine_->CurrentOn(origin) : nullptr;

  bool want_affine = true;
  if (waker != nullptr) {
    RecordWakee(waker, thread);
    want_affine = !WakeWide(waker, thread, origin);
  }
  if (!want_affine) {
    *reason = PickReason::kWakeWideSpread;
    return FindIdlestCore(thread, origin);
  }

  // wake_affine: choose between the waker's core and the previous core by
  // load, then look for an idle sibling in that core's LLC.
  CoreId target;
  if (prev == kInvalidCore) {
    if (thread->CanRunOn(origin)) {
      target = origin;
      *reason = PickReason::kWakerPull;
    } else {
      *reason = PickReason::kIdlest;
      return FindIdlestCore(thread, origin);
    }
  } else if (waker != nullptr && origin != prev && thread->CanRunOn(origin)) {
    if (CoreLoad(origin) < CoreLoad(prev)) {
      target = origin;
      *reason = PickReason::kWakerPull;
    } else {
      target = prev;
      *reason = PickReason::kPrevAffine;
    }
  } else {
    target = prev;
    *reason = PickReason::kPrevAffine;
  }
  return SelectIdleSibling(thread, target, reason);
}

CoreId CfsScheduler::SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) {
  PickCpuDecision d;
  d.thread = thread->id();
  d.origin = origin;
  d.prev = thread->last_ran_cpu();
  d.kind = kind;
  const uint64_t scans_before = machine_->counters().pickcpu_scans;
  const CoreId chosen = SelectTaskRqImpl(thread, origin, kind, &d.reason);
  d.chosen = chosen;
  d.cores_scanned = static_cast<int>(machine_->counters().pickcpu_scans - scans_before);
  d.affine_hit = d.prev != kInvalidCore && chosen == d.prev;
  if (machine_->observing_decisions()) {
    // Feature snapshot for the decision-record dataset; skipped entirely on
    // the detached hot path.
    d.chosen_rq = chosen != kInvalidCore ? RunnableCountOf(chosen) : -1;
    d.prev_rq = d.prev != kInvalidCore ? RunnableCountOf(d.prev) : -1;
    if (thread->sched_data() != nullptr) {
      d.sched_key = SeOf(thread)->vruntime;
    }
    d.idle_mask = machine_->idle_mask().low64();
  }
  machine_->EmitPickCpu(d);
  return chosen;
}

}  // namespace schedbattle
