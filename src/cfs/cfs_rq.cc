#include "src/cfs/cfs_rq.h"

#include <algorithm>
#include <cassert>

#include "src/cfs/group.h"
#include "src/cfs/timeline.h"

namespace schedbattle {

SimDuration CfsSchedPeriod(const CfsTunables& tun, int nr_running) {
  if (nr_running > tun.nr_latency) {
    return nr_running * tun.min_granularity;
  }
  return tun.sched_latency;
}

SimDuration CfsSchedSlice(const CfsTunables& tun, const CfsRq* rq, const SchedEntity* se) {
  // Weighted share of the period at this rq level; ancestors are accounted by
  // the caller checking each level (kernel folds the hierarchy in similarly).
  const int nr = rq->nr_running + (se->on_rq ? 0 : 1);
  const SimDuration period = CfsSchedPeriod(tun, nr);
  uint64_t total_weight = rq->load_weight;
  if (!se->on_rq) {
    total_weight += se->weight;
  }
  if (total_weight == 0) {
    return period;
  }
  return static_cast<SimDuration>(static_cast<unsigned __int128>(period) * se->weight /
                                  total_weight);
}

void CfsUpdateMinVruntime(CfsRq* rq) {
  int64_t vruntime;
  const SchedEntity* left = TimelineFirst(rq);
  if (rq->curr != nullptr && rq->curr->on_rq) {
    vruntime = rq->curr->vruntime;
    if (left != nullptr) {
      vruntime = std::min(vruntime, left->vruntime);
    }
  } else if (left != nullptr) {
    vruntime = left->vruntime;
  } else {
    return;
  }
  // Monotonic ratchet.
  rq->min_vruntime = std::max(rq->min_vruntime, vruntime);
}

void CfsUpdateCurr(CfsRq* rq, SimTime now) {
  SchedEntity* curr = rq->curr;
  if (curr == nullptr) {
    return;
  }
  const SimDuration delta = now - curr->exec_start;
  if (delta <= 0) {
    return;
  }
  curr->exec_start = now;
  curr->sum_exec_runtime += delta;
  curr->vruntime += static_cast<int64_t>(CalcDeltaFair(delta, curr->weight));
  CfsUpdateMinVruntime(rq);
}

void CfsPlaceEntity(const CfsTunables& tun, CfsRq* rq, SchedEntity* se, bool initial) {
  int64_t vruntime = rq->min_vruntime;
  if (initial) {
    if (tun.start_debit) {
      // New threads start one slice "in debt" so they cannot immediately
      // starve the queue (paper: "starts with a vruntime equal to the
      // maximum vruntime of the threads waiting in the runqueue").
      const SimDuration slice = CfsSchedSlice(tun, rq, se);
      vruntime += static_cast<int64_t>(CalcDeltaFair(slice, se->weight));
    }
    se->vruntime = std::max(se->vruntime, vruntime);
    return;
  }
  // Waking entity: give sleeper credit so threads that sleep a lot run first
  // (paper: low latency for interactive applications).
  SimDuration thresh = tun.sleeper_credit ? tun.sched_latency : 0;
  if (tun.gentle_fair_sleepers) {
    thresh >>= 1;
  }
  vruntime -= thresh;
  se->vruntime = std::max(se->vruntime, vruntime);
}

void CfsAccountEnqueue(CfsRq* rq, SchedEntity* se) {
  rq->load_weight += se->weight;
  rq->nr_running += 1;
  if (rq->tg != nullptr && !rq->tg->is_root()) {
    rq->tg->load_sum += se->weight;
  }
}

void CfsAccountDequeue(CfsRq* rq, SchedEntity* se) {
  assert(rq->load_weight >= se->weight);
  rq->load_weight -= se->weight;
  rq->nr_running -= 1;
  assert(rq->nr_running >= 0);
  if (rq->tg != nullptr && !rq->tg->is_root()) {
    rq->tg->load_sum -= std::min(rq->tg->load_sum, static_cast<uint64_t>(se->weight));
  }
}

void CfsEnqueueEntity(const CfsTunables& tun, CfsRq* rq, SchedEntity* se, bool wakeup,
                      SimTime now) {
  assert(!se->on_rq);
  CfsUpdateCurr(rq, now);
  if (wakeup) {
    CfsPlaceEntity(tun, rq, se, /*initial=*/false);
  }
  CfsAccountEnqueue(rq, se);
  se->cfs_rq = rq;
  se->on_rq = true;
  if (se != rq->curr) {
    TimelineEnqueue(rq, se);
  }
}

void CfsDequeueEntity(const CfsTunables& tun, CfsRq* rq, SchedEntity* se, bool sleep,
                      bool migrating, SimTime now) {
  (void)tun;
  assert(se->on_rq);
  CfsUpdateCurr(rq, now);
  if (se != rq->curr && rq->timeline.Contains(&se->rb)) {
    TimelineDequeue(rq, se);
  }
  CfsAccountDequeue(rq, se);
  se->on_rq = false;
  if (se == rq->curr) {
    rq->curr = nullptr;
  }
  if (!sleep && migrating) {
    // Renormalize: vruntime becomes rq-relative so the destination rq can
    // add its own min_vruntime (kernel: migrate_task_rq_fair).
    se->vruntime -= rq->min_vruntime;
  }
  CfsUpdateMinVruntime(rq);
}

void CfsSetNextEntity(CfsRq* rq, SchedEntity* se, SimTime now) {
  if (se->on_rq && rq->timeline.Contains(&se->rb)) {
    TimelineDequeue(rq, se);
  }
  se->exec_start = now;
  se->prev_sum_exec_runtime = se->sum_exec_runtime;
  rq->curr = se;
}

void CfsPutPrevEntity(CfsRq* rq, SchedEntity* se, SimTime now) {
  assert(rq->curr == se);
  CfsUpdateCurr(rq, now);
  if (se->on_rq) {
    TimelineEnqueue(rq, se);
  }
  rq->curr = nullptr;
}

bool CfsCheckPreemptTick(const CfsTunables& tun, CfsRq* rq, SimTime now) {
  SchedEntity* curr = rq->curr;
  if (curr == nullptr) {
    return false;
  }
  CfsUpdateCurr(rq, now);
  const SimDuration ideal = CfsSchedSlice(tun, rq, curr);
  const SimDuration delta_exec =
      static_cast<SimDuration>(curr->sum_exec_runtime - curr->prev_sum_exec_runtime);
  if (delta_exec > ideal) {
    return true;
  }
  if (delta_exec < tun.min_granularity) {
    return false;
  }
  const SchedEntity* left = TimelineFirst(rq);
  if (left == nullptr) {
    return false;
  }
  return curr->vruntime - left->vruntime > ideal;
}

int64_t CfsWakeupPreemptMargin(const CfsTunables& tun, const SchedEntity* curr,
                               const SchedEntity* se) {
  const int64_t vdiff = curr->vruntime - se->vruntime;
  const int64_t gran =
      static_cast<int64_t>(CalcDeltaFair(tun.wakeup_granularity, se->weight));
  if (vdiff <= 0) {
    // No lead at all: report the (non-positive) shortfall against the
    // granularity so the margin stays monotone in vdiff.
    return vdiff - gran < 0 ? vdiff - gran : -1;
  }
  return vdiff - gran;
}

bool CfsWakeupPreemptEntity(const CfsTunables& tun, const SchedEntity* curr,
                            const SchedEntity* se) {
  const int64_t vdiff = curr->vruntime - se->vruntime;
  if (vdiff <= 0) {
    return false;
  }
  return CfsWakeupPreemptMargin(tun, curr, se) > 0;
}

}  // namespace schedbattle
