#include "src/cfs/pelt.h"

#include <cassert>

#include "src/cfs/weights.h"

namespace schedbattle {

namespace {

// Precomputed y^n * 2^32 for n in [0, 31], y^32 = 0.5 (kernel table).
constexpr uint32_t kRunnableAvgYnInv[32] = {
    0xffffffff, 0xfa83b2da, 0xf5257d14, 0xefe4b99a, 0xeac0c6e6, 0xe5b906e6, 0xe0ccdeeb, 0xdbfbb796,
    0xd744fcc9, 0xd2a81d91, 0xce248c14, 0xc9b9bd85, 0xc5672a10, 0xc12c4cc9, 0xbd08a39e, 0xb8fbaf46,
    0xb504f333, 0xb123f581, 0xad583ee9, 0xa9a15ab4, 0xa5fed6a9, 0xa2704302, 0x9ef5325f, 0x9b8d39b9,
    0x9837f050, 0x94f4efa8, 0x91c3d373, 0x8ea4398a, 0x8b95c1e3, 0x88980e80, 0x85aac367, 0x82cd8698,
};

// Sum of the full geometric series for n periods: 1024 * (y + y^2 + ... + y^n).
uint32_t AccumulateSegments(uint64_t periods, uint32_t d1, uint32_t d3) {
  // c1 = d1 decayed over all `periods`; c2 = 1024 * sum_{i=1..periods-1} y^i
  //    = (kLoadAvgMax - kLoadAvgMax*y^periods) - 1024; c3 = d3 (current period).
  const uint32_t c1 = static_cast<uint32_t>(PeltDecayLoad(d1, periods));
  const uint32_t c2 =
      kLoadAvgMax - static_cast<uint32_t>(PeltDecayLoad(kLoadAvgMax, periods)) - 1024;
  return c1 + c2 + d3;
}

}  // namespace

uint64_t PeltDecayLoad(uint64_t val, uint64_t n) {
  if (n == 0) {
    return val;
  }
  // After 63 half-lives (2016 periods) everything has decayed to zero.
  if (n > 63 * 32) {
    return 0;
  }
  // y^n = 1/2^(n/32) * y^(n%32)
  val >>= n / 32;
  n %= 32;
  return (val * kRunnableAvgYnInv[n]) >> 32;
}

bool PeltAvg::Update(SimTime now, uint64_t weight, bool runnable, bool running) {
  if (now <= last_update_time) {
    return false;
  }
  uint64_t delta = static_cast<uint64_t>(now - last_update_time);

  // Work in microseconds, as the kernel does (1 PELT unit = 1us). Advance
  // last_update_time only by the whole microseconds consumed, so the sub-us
  // remainder (delta & 1023 ns) carries over to the next update instead of
  // being dropped — under frequent small updates the truncated slivers would
  // otherwise add up to a permanently understated load/util signal.
  delta >>= 10;
  if (delta == 0) {
    return false;
  }
  last_update_time += static_cast<SimDuration>(delta) << 10;

  uint64_t periods = (delta + period_contrib) / 1024;
  const uint32_t d3 = static_cast<uint32_t>((delta + period_contrib) % 1024);

  uint32_t contrib = static_cast<uint32_t>(delta);
  if (periods > 0) {
    load_sum = PeltDecayLoad(load_sum, periods);
    util_sum = PeltDecayLoad(util_sum, periods);
    const uint32_t d1 = 1024 - period_contrib;
    contrib = AccumulateSegments(periods, d1, d3);
  }
  period_contrib = periods > 0 ? d3 : period_contrib + static_cast<uint32_t>(delta);

  if (runnable) {
    load_sum += contrib;
  }
  if (running) {
    util_sum += static_cast<uint64_t>(contrib) << 10;  // util scaled like kernel
  }

  if (periods > 0) {
    const uint32_t divider = kLoadAvgMax - 1024 + period_contrib;
    load_avg = weight * load_sum / divider;
    util_avg = util_sum / divider;
    return true;
  }
  return false;
}

}  // namespace schedbattle
