// CFS nice-to-weight mapping.
//
// CFS divides CPU cycles between threads weighted by priority (Section 2.1 of
// the paper). The weights form a geometric series: each nice step changes a
// thread's share by ~25%. These are the exact values from the Linux kernel's
// sched_prio_to_weight[] table.
#ifndef SRC_CFS_WEIGHTS_H_
#define SRC_CFS_WEIGHTS_H_

#include <cstdint>

#include "src/sched/types.h"

namespace schedbattle {

// Weight of a nice-0 thread; vruntime advances at wall speed at this weight.
inline constexpr uint64_t kNice0Load = 1024;

// Weight for a nice value in [-20, 19].
uint64_t CfsWeightOf(Nice nice);

// delta_exec scaled by (kNice0Load / weight): how much vruntime a thread of
// `weight` accrues for `delta` of execution.
uint64_t CalcDeltaFair(uint64_t delta, uint64_t weight);

}  // namespace schedbattle

#endif  // SRC_CFS_WEIGHTS_H_
