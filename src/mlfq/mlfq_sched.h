// MlfqScheduler: a classic multi-level feedback queue, per the CS140-notes
// rules (SNIPPETS.md):
//
//   1. If Priority(A) > Priority(B), A runs.
//   2. If Priority(A) == Priority(B), A and B run round-robin with the
//      level's time quantum.
//   3. A new job enters at the topmost (highest-priority) level.
//   4. (a) A job that uses up its allotment at a level is demoted one level.
//      (b) A job that gives up the CPU (sleep, yield) before the allotment is
//          up stays at its level; its allotment is reset.
//   5. Every boost period S, all jobs in the system move to the topmost level
//      (the starvation / gaming repair).
//
// Priorities are *learned from behaviour*, not declared: CPU hogs sink to the
// deep levels (long quanta, batch service), interactive sleepers stay on top.
// This is the same classification goal ULE reaches through its interactivity
// penalty — expressed as queue position instead of a score, which is why the
// class has neither a fairness clock (MinVruntimeOf: sentinel) nor a
// 0..100 penalty (InteractivityPenaltyOf: -1); nice values are ignored, as in
// the textbook algorithm. Per-core queues with idle stealing and an
// idle-first wake placement keep it work-conserving on multicore.
#ifndef SRC_MLFQ_MLFQ_SCHED_H_
#define SRC_MLFQ_MLFQ_SCHED_H_

#include <deque>
#include <vector>

#include "src/sched/machine.h"
#include "src/sched/sched_class.h"

namespace schedbattle {

struct MlfqTunables {
  // Number of priority levels; level 0 is the topmost. Max 64.
  int num_levels = 8;
  // Tick period; quanta and allotments are accounted in whole ticks.
  SimDuration tick = Milliseconds(10);
  // Round-robin quantum at level 0, in ticks; doubles per level (deeper
  // levels run longer, classic MLFQ batch amortization).
  int quantum_ticks = 1;
  // Allotment per level, in quanta: a thread may consume this many full
  // quanta at a level before rule 4(a) demotes it.
  int allotment_quanta = 2;
  // Rule 5: every boost period, every thread moves back to level 0.
  SimDuration boost_period = Seconds(1);
  bool boost_enabled = true;

  // Rule 1 enforced on wakeups: a woken thread with a strictly better level
  // preempts the running one.
  bool wakeup_preemption = true;

  // Idle cores steal one queued thread from the most loaded core.
  bool steal_enabled = true;
  int steal_thresh = 2;  // minimum donor load
  // Modeled cost per core examined by the steal scan / wake placement scan.
  SimDuration steal_cost_per_core = Nanoseconds(150);
  SimDuration pickcpu_scan_cost = Nanoseconds(90);
};

// Per-thread MLFQ state.
struct MlfqTaskData : ThreadSchedData {
  int level = 0;          // current queue level (0 = topmost)
  int quantum_left = 0;   // remaining ticks of the current quantum
  int allot_left = 0;     // remaining ticks of the level allotment
  bool queued = false;
  CoreId rq_cpu = kInvalidCore;
};

inline MlfqTaskData& MlfqOf(SimThread* t) { return t->sched<MlfqTaskData>(); }
inline const MlfqTaskData& MlfqOf(const SimThread* t) {
  return *static_cast<const MlfqTaskData*>(t->sched_data());
}

// Per-core queue array.
struct MlfqRq {
  std::vector<std::deque<SimThread*>> levels;
  int load = 0;    // runnable thread count, including the running thread
  int queued = 0;  // threads sitting in the level queues

  int queued_count() const { return queued; }
  int transferable() const { return queued; }
};

class MlfqScheduler : public Scheduler {
 public:
  explicit MlfqScheduler(MlfqTunables tunables = {});
  ~MlfqScheduler() override;

  std::string_view name() const override { return "mlfq"; }
  void Attach(Machine* machine) override;
  void Start() override;

  void TaskNew(SimThread* thread, SimThread* parent) override;
  void TaskExit(SimThread* thread) override;
  void ReniceTask(SimThread* thread) override;
  CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) override;
  void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) override;
  void DequeueTask(CoreId core, SimThread* thread) override;
  SimThread* PickNextTask(CoreId core) override;
  void PutPrevTask(CoreId core, SimThread* thread) override;
  void OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) override;
  void YieldTask(CoreId core, SimThread* thread) override;
  void TaskTick(CoreId core, SimThread* current) override;
  void CheckPreemptWakeup(CoreId core, SimThread* woken) override;
  void OnCoreIdle(CoreId core) override;
  SimDuration TickPeriod() const override { return tun_.tick; }

  // Idle ticks poll the steal path (and charge its modeled scan cost), so
  // they are only inert — and elidable — while no steal source exists; busy
  // ticks can only act (rotate / demote-and-preempt) with a queued
  // competitor. Mirrors ULE's boundary discipline; the masks below re-arm
  // elided ticks when a bit appears.
  SimTime TickBoundary(CoreId core, const SimThread* current,
                       SimTime next_tick) const override;
  bool TickMayCross(CoreId core) const override;
  // Busy-core hooks touch only the core's own queue array and the running
  // thread; every cross-core path (wake placement, idle steal, the boost
  // event) runs in the engine's global lane.
  bool ShardParallelSafe() const override { return true; }

  double LoadOf(CoreId core) const override { return rqs_[core].load; }
  int RunnableCountOf(CoreId core) const override { return rqs_[core].load; }

  const MlfqTunables& tunables() const { return tun_; }
  const MlfqRq& rq(CoreId core) const { return rqs_[core]; }

 private:
  int QuantumTicks(int level) const;
  int AllotTicks(int level) const { return tun_.allotment_quanta * QuantumTicks(level); }
  void ResetBudget(SimThread* t) const;
  // Topmost non-empty level of core's queues, or -1.
  int BestLevel(CoreId core) const;

  // Rule 5: move every thread (queued and running) back to level 0.
  void Boost();
  void ArmBoost();

  SimThread* StealOne(CoreId src, CoreId dst);
  bool TryIdleSteal(CoreId core);

  // Re-derives core's bits in the queued/steal-source masks after any queue
  // or load mutation; a bit appearing re-arms elided ticks (a busy core has
  // a new rotate competitor, an idle core a new steal candidate).
  void SyncMasks(CoreId core);

  Machine* machine_ = nullptr;
  MlfqTunables tun_;
  std::vector<MlfqRq> rqs_;
  CpuSet queued_mask_;
  CpuSet steal_source_mask_;
  EventHandle boost_event_;
};

}  // namespace schedbattle

#endif  // SRC_MLFQ_MLFQ_SCHED_H_
