#include "src/mlfq/mlfq_sched.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace schedbattle {

MlfqScheduler::MlfqScheduler(MlfqTunables tunables) : tun_(tunables) {
  tun_.num_levels = std::clamp(tun_.num_levels, 1, 64);
  tun_.quantum_ticks = std::max(1, tun_.quantum_ticks);
  tun_.allotment_quanta = std::max(1, tun_.allotment_quanta);
}

MlfqScheduler::~MlfqScheduler() {
  // The engine may outlive this scheduler; a queued boost event would
  // otherwise fire into a destroyed object.
  if (machine_ != nullptr) {
    machine_->engine().Cancel(boost_event_);
  }
}

void MlfqScheduler::Attach(Machine* machine) {
  machine_ = machine;
  rqs_.resize(machine->num_cores());
  for (auto& rq : rqs_) {
    rq.levels.resize(tun_.num_levels);
  }
  for (CoreId c = 0; c < machine->num_cores(); ++c) {
    SyncMasks(c);
  }
}

void MlfqScheduler::Start() {
  if (tun_.boost_enabled) {
    ArmBoost();
  }
}

int MlfqScheduler::QuantumTicks(int level) const {
  // Doubling per level, capped so the shift stays defined for 64 levels.
  const int shift = std::min(level, 20);
  return tun_.quantum_ticks << shift;
}

void MlfqScheduler::ResetBudget(SimThread* t) const {
  MlfqTaskData& d = MlfqOf(t);
  d.quantum_left = QuantumTicks(d.level);
  d.allot_left = AllotTicks(d.level);
}

int MlfqScheduler::BestLevel(CoreId core) const {
  const MlfqRq& rq = rqs_[core];
  for (int l = 0; l < tun_.num_levels; ++l) {
    if (!rq.levels[l].empty()) {
      return l;
    }
  }
  return -1;
}

void MlfqScheduler::SyncMasks(CoreId core) {
  const MlfqRq& rq = rqs_[core];
  const bool had_queued = queued_mask_.Test(core);
  const bool has_queued = rq.queued > 0;
  if (has_queued) {
    queued_mask_.Set(core);
  } else {
    queued_mask_.Clear(core);
  }
  const bool was_source = steal_source_mask_.Test(core);
  const bool is_source = rq.load >= tun_.steal_thresh && rq.queued > 0;
  if (is_source) {
    steal_source_mask_.Set(core);
  } else {
    steal_source_mask_.Clear(core);
  }
  if (machine_ != nullptr &&
      ((is_source && !was_source) || (has_queued && !had_queued))) {
    machine_->RearmElidedTicks();
  }
}

void MlfqScheduler::TaskNew(SimThread* thread, SimThread* /*parent*/) {
  // Rule 3: every job — forked or external — starts at the topmost level.
  // Nothing is inherited: MLFQ learns behaviour from scratch.
  auto data = std::make_unique<MlfqTaskData>();
  data->level = 0;
  thread->set_sched_data(std::move(data));
  ResetBudget(thread);
}

void MlfqScheduler::TaskExit(SimThread* thread) {
  MlfqRq& rq = rqs_[thread->cpu()];
  rq.load -= 1;
  assert(rq.load >= 0);
  SyncMasks(thread->cpu());
}

void MlfqScheduler::ReniceTask(SimThread* /*thread*/) {
  // Textbook MLFQ has no nice values: priority is the queue level, learned
  // purely from CPU-burst behaviour. Renice is accepted and ignored.
}

CoreId MlfqScheduler::SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) {
  PickCpuDecision d;
  d.thread = thread->id();
  d.origin = origin;
  d.prev = thread->last_ran_cpu();
  d.kind = kind;
  const uint64_t scans_before = machine_->counters().pickcpu_scans;

  CoreId chosen = kInvalidCore;
  if (thread->affinity().Count() == 1) {
    d.reason = PickReason::kPinned;
    chosen = static_cast<CoreId>(thread->affinity().FirstSet());
  } else {
    // Idle-first placement: a previously used core that is now idle wins
    // (warm caches), then any idle allowed core, then the least-loaded
    // allowed core. The whole allowed set is examined, so the modeled scan
    // cost is one visit per allowed core.
    const CpuSet idle_allowed = machine_->idle_mask() & thread->affinity();
    int scanned = 0;
    const CoreId prev = thread->last_ran_cpu();
    if (prev != kInvalidCore && idle_allowed.Test(prev)) {
      d.reason = PickReason::kPrevAffine;
      chosen = prev;
      scanned = 1;
    } else {
      const int first_idle = idle_allowed.FirstSet();
      if (first_idle >= 0) {
        d.reason = PickReason::kIdleSibling;
        chosen = static_cast<CoreId>(first_idle);
        scanned = first_idle + 1;
      } else {
        int min_load = std::numeric_limits<int>::max();
        for (CoreId c = 0; c < machine_->num_cores(); ++c) {
          if (!thread->CanRunOn(c)) {
            continue;
          }
          ++scanned;
          if (rqs_[c].load < min_load) {
            min_load = rqs_[c].load;
            chosen = c;
          }
        }
        d.reason = PickReason::kLowestLoad;
      }
    }
    machine_->counters().pickcpu_scans += scanned;
    const CoreId charge_to = origin != kInvalidCore ? origin : chosen;
    machine_->ChargeOverhead(charge_to, scanned * tun_.pickcpu_scan_cost,
                             OverheadKind::kPickCpuScan);
  }
  assert(chosen != kInvalidCore);

  d.chosen = chosen;
  d.cores_scanned = static_cast<int>(machine_->counters().pickcpu_scans - scans_before);
  d.affine_hit = d.prev != kInvalidCore && chosen == d.prev;
  if (machine_->observing_decisions()) {
    d.chosen_rq = RunnableCountOf(chosen);
    d.prev_rq = d.prev != kInvalidCore ? RunnableCountOf(d.prev) : -1;
    if (thread->sched_data() != nullptr) {
      d.sched_key = MlfqOf(thread).level;
    }
    d.idle_mask = machine_->idle_mask().low64();
  }
  machine_->EmitPickCpu(d);
  return chosen;
}

void MlfqScheduler::EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) {
  MlfqTaskData& d = MlfqOf(thread);
  if (kind == EnqueueKind::kFork) {
    d.level = 0;  // rule 3
    ResetBudget(thread);
  } else if (kind == EnqueueKind::kWakeup) {
    // Rule 4(b): the thread gave up the CPU before its allotment was up, so
    // it keeps its level and its allotment is reset.
    ResetBudget(thread);
  }
  MlfqRq& rq = rqs_[core];
  rq.levels[d.level].push_back(thread);
  rq.queued += 1;
  rq.load += 1;
  d.queued = true;
  d.rq_cpu = core;
  SyncMasks(core);
}

void MlfqScheduler::DequeueTask(CoreId core, SimThread* thread) {
  MlfqTaskData& d = MlfqOf(thread);
  MlfqRq& rq = rqs_[core];
  auto& level = rq.levels[d.level];
  auto it = std::find(level.begin(), level.end(), thread);
  assert(it != level.end());
  level.erase(it);
  rq.queued -= 1;
  rq.load -= 1;
  assert(rq.load >= 0);
  d.queued = false;
  SyncMasks(core);
}

SimThread* MlfqScheduler::PickNextTask(CoreId core) {
  const int best = BestLevel(core);
  if (best < 0) {
    return nullptr;
  }
  MlfqRq& rq = rqs_[core];
  SimThread* t = rq.levels[best].front();
  rq.levels[best].pop_front();
  rq.queued -= 1;
  MlfqTaskData& d = MlfqOf(t);
  d.queued = false;
  if (d.quantum_left <= 0) {
    d.quantum_left = QuantumTicks(d.level);
  }
  if (d.allot_left <= 0) {
    d.allot_left = AllotTicks(d.level);
  }
  SyncMasks(core);
  return t;
}

void MlfqScheduler::PutPrevTask(CoreId core, SimThread* thread) {
  MlfqTaskData& d = MlfqOf(thread);
  MlfqRq& rq = rqs_[core];
  rq.levels[d.level].push_back(thread);
  rq.queued += 1;
  // load unchanged: the thread was already counted while running.
  d.queued = true;
  d.rq_cpu = core;
  SyncMasks(core);
}

void MlfqScheduler::OnTaskBlock(CoreId core, SimThread* /*thread*/, bool /*voluntary*/) {
  MlfqRq& rq = rqs_[core];
  rq.load -= 1;
  assert(rq.load >= 0);
  SyncMasks(core);
}

void MlfqScheduler::YieldTask(CoreId core, SimThread* thread) {
  // Rule 4(b): yielding relinquishes the CPU before the allotment is up, so
  // the level is kept and the budgets reset; back to the level's tail.
  ResetBudget(thread);
  PutPrevTask(core, thread);
}

void MlfqScheduler::TaskTick(CoreId core, SimThread* current) {
  if (current == nullptr) {
    // The idle loop keeps polling for stealable work, like ULE's sched_idletd.
    if (tun_.steal_enabled) {
      TryIdleSteal(core);
    }
    return;
  }
  MlfqTaskData& d = MlfqOf(current);
  d.quantum_left -= 1;
  d.allot_left -= 1;
  bool quantum_end = false;
  if (d.allot_left <= 0) {
    // Rule 4(a): allotment used up at this level — demote (bottom level
    // absorbs) and start the next level's budget.
    if (d.level < tun_.num_levels - 1) {
      d.level += 1;
    }
    ResetBudget(current);
    quantum_end = true;
  } else if (d.quantum_left <= 0) {
    quantum_end = true;
    d.quantum_left = QuantumTicks(d.level);
  }
  const int best = BestLevel(core);
  if (best < 0) {
    return;
  }
  // Rule 1 at tick granularity: a strictly better queued thread preempts
  // immediately (it got here by boost or by the current thread's demotion —
  // wakeups are handled by CheckPreemptWakeup). Rule 2: an equal-level
  // thread only rotates in at a quantum edge.
  if (best < d.level || (quantum_end && best == d.level)) {
    ++machine_->counters().tick_preemptions;
    machine_->SetNeedResched(core);
  }
}

void MlfqScheduler::CheckPreemptWakeup(CoreId core, SimThread* woken) {
  SimThread* curr = machine_->CurrentOn(core);
  if (curr == nullptr || curr == woken) {
    return;
  }
  // Margin: how many levels better the woken thread is than the running one.
  const int64_t margin = MlfqOf(curr).level - MlfqOf(woken).level;
  const bool fired = tun_.wakeup_preemption && margin > 0;
  if (machine_->observing_decisions()) {
    PreemptDecision d;
    d.preemptor = woken->id();
    d.victim = curr->id();
    d.core = core;
    d.fired = fired;
    d.margin = margin;
    machine_->EmitPreempt(d);
  }
  if (fired) {
    ++machine_->counters().wakeup_preemptions;
    machine_->SetNeedResched(core);
  }
}

void MlfqScheduler::OnCoreIdle(CoreId core) {
  if (tun_.steal_enabled) {
    TryIdleSteal(core);
  }
}

SimTime MlfqScheduler::TickBoundary(CoreId core, const SimThread* current,
                                    SimTime next_tick) const {
  if (current == nullptr) {
    // Idle ticks only poll the steal path. With stealing off, or no core
    // currently a steal source, the poll cannot move a thread — it only
    // charges the modeled scan cost, which catch-up replay reproduces.
    if (!tun_.steal_enabled || steal_source_mask_.Without(core).Empty()) {
      return kTickNever;
    }
    return next_tick;
  }
  // A busy tick can act (rotate / preempt) only against a queued competitor.
  // Budget decrements and rule-4(a) demotion are pure replayable state.
  return rqs_[core].queued_count() == 0 ? kTickNever : next_tick;
}

bool MlfqScheduler::TickMayCross(CoreId core) const {
  // Only idle ticks leave the core (the steal poll); busy ticks act purely
  // on the core's own queue array and running thread.
  return machine_->CurrentOn(core) == nullptr && tun_.steal_enabled;
}

void MlfqScheduler::ArmBoost() {
  boost_event_ = machine_->engine().After(tun_.boost_period, [this] { Boost(); });
}

void MlfqScheduler::Boost() {
  machine_->CatchUpTicks();  // settle elided budget accounting first
  ++machine_->counters().balance_invocations;
  // Rule 5: move every job to the topmost level. Queued threads concatenate
  // level by level onto queue 0 (FIFO order within a level is preserved);
  // running threads just get their level and budgets reset.
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    MlfqRq& rq = rqs_[c];
    for (int l = 1; l < tun_.num_levels; ++l) {
      while (!rq.levels[l].empty()) {
        SimThread* t = rq.levels[l].front();
        rq.levels[l].pop_front();
        MlfqTaskData& d = MlfqOf(t);
        d.level = 0;
        ResetBudget(t);
        rq.levels[0].push_back(t);
      }
    }
    SimThread* curr = machine_->CurrentOn(c);
    if (curr != nullptr && curr->sched_data() != nullptr) {
      MlfqTaskData& d = MlfqOf(curr);
      d.level = 0;
      ResetBudget(curr);
    }
  }
  ArmBoost();
}

SimThread* MlfqScheduler::StealOne(CoreId src, CoreId dst) {
  MlfqRq& rq = rqs_[src];
  // Steal the lowest-priority (deepest-level) movable thread: batch work
  // migrates, interactive work keeps its warm cache.
  for (int l = tun_.num_levels - 1; l >= 0; --l) {
    for (SimThread* t : rq.levels[l]) {
      if (t->CanRunOn(dst)) {
        DequeueTask(src, t);
        EnqueueTask(dst, t, EnqueueKind::kMigrate);
        machine_->NoteMigration(t, src, dst);
        return t;
      }
    }
  }
  return nullptr;
}

bool MlfqScheduler::TryIdleSteal(CoreId core) {
  const int n = machine_->num_cores();
  // Flat scan (no topology climb): charge one visit per peer core whether or
  // not the mask short-circuits the loop, so the modeled cost is identical
  // either way.
  machine_->ChargeOverhead(core, n * tun_.steal_cost_per_core,
                           OverheadKind::kLoadBalance);
  if (steal_source_mask_.Without(core).Empty()) {
    return false;
  }
  CoreId busiest = kInvalidCore;
  int max_load = tun_.steal_thresh - 1;
  for (CoreId c = 0; c < n; ++c) {
    if (c == core) {
      continue;
    }
    if (rqs_[c].load > max_load && rqs_[c].queued > 0) {
      max_load = rqs_[c].load;
      busiest = c;
    }
  }
  if (busiest == kInvalidCore) {
    return false;
  }
  const int src_load = rqs_[busiest].load;
  const int dst_load = rqs_[core].load;
  const bool moved = StealOne(busiest, core) != nullptr;
  if (machine_->observing_decisions()) {
    BalancePassRecord rec;
    rec.kind = BalancePassRecord::Kind::kIdleSteal;
    rec.level = -1;  // flat scan, no topology level
    rec.src = busiest;
    rec.dst = core;
    rec.src_load = src_load;
    rec.dst_load = dst_load;
    rec.imbalance_pct = src_load > 0 ? 100.0 * (src_load - dst_load) / src_load : 0.0;
    rec.threads_moved = moved ? 1 : 0;
    machine_->EmitBalancePass(rec);
  }
  return moved;
}

}  // namespace schedbattle
