// Registry of the applications evaluated in the paper's Figures 5 and 8.
#ifndef SRC_APPS_REGISTRY_H_
#define SRC_APPS_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/archetypes.h"
#include "src/workload/app.h"

namespace schedbattle {

struct AppEntry {
  std::string name;  // the label used on the figure's x axis
  MetricKind metric;
  // factory(threads_hint, seed, scale): threads_hint is the core count for
  // apps that size themselves to the machine.
  std::function<std::unique_ptr<Application>(int, uint64_t, double)> make;
};

// The benchmark suite in figure order: Phoronix (8), scimark2 x6, john x3,
// apache, NAS x10, sysbench, rocksdb, PARSEC x12.
const std::vector<AppEntry>& BenchmarkSuite();

// Looks up an entry by name; nullptr if unknown.
const AppEntry* FindApp(const std::string& name);

}  // namespace schedbattle

#endif  // SRC_APPS_REGISTRY_H_
