// Apache model: httpd with 100 worker threads plus `ab`, a single-threaded
// closed-loop load injector (paper Section 5.3).
//
// ab keeps a window of in-flight requests: it sends a batch, then waits for
// the responses. Under CFS every request wakes an httpd thread whose
// vruntime is far behind, so ab is preempted once per request (the paper
// counts 2 million preemptions); under ULE ab is never preempted and sends
// its whole window back-to-back — the source of apache's +40% on ULE.
#ifndef SRC_APPS_APACHE_H_
#define SRC_APPS_APACHE_H_

#include <memory>

#include "src/workload/app.h"

namespace schedbattle {

struct ApacheParams {
  int httpd_threads = 100;
  int window = 100;                       // ab's in-flight request window
  int64_t total_requests = 500000;
  SimDuration send_cost = Microseconds(6);     // ab per-request CPU
  SimDuration service_cost = Microseconds(22); // httpd per-request CPU
  uint64_t seed = 1;
};

std::unique_ptr<Application> MakeApache(ApacheParams p = {});

}  // namespace schedbattle

#endif  // SRC_APPS_APACHE_H_
