#include "src/apps/archetypes.h"

#include <cassert>

namespace schedbattle {

std::unique_ptr<Application> MakeComputeBound(ComputeBoundParams p) {
  auto app = std::make_unique<ScriptedApp>(p.name, p.seed);
  const SimDuration per_thread = p.total_work / p.threads;
  const int chunks = std::max<int>(1, static_cast<int>(per_thread / p.chunk));
  ScriptBuilder b;
  b.Loop(chunks);
  b.Compute(p.chunk);
  if (p.io_sleep > 0) {
    // Sleep only every io_every chunks: model with a chunk counter hook is
    // overkill; approximate by scaling the sleep down.
    b.Sleep(p.io_sleep / std::max(1, p.io_every));
  }
  b.EndLoop();
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "worker";
  tmpl.script = b.Build();
  tmpl.count = p.threads;
  tmpl.parent_runtime_hint = p.parent_runtime_hint;
  tmpl.parent_sleep_hint = p.parent_sleep_hint;
  app->AddThreads(std::move(tmpl));
  return app;
}

std::unique_ptr<Application> MakeBarrierParallel(BarrierParallelParams p) {
  auto app = std::make_unique<ScriptedApp>(p.name, p.seed);
  auto barrier = std::make_shared<SimSpinBarrier>(p.threads);
  app->KeepAlive(barrier);
  const SimDuration jitter_ns = static_cast<SimDuration>(p.work_per_iter * p.jitter);
  ScriptBuilder b;
  b.Loop(p.iterations);
  b.ComputeFn([work = p.work_per_iter, jitter_ns](ScriptEnv& env) {
    return work + (jitter_ns > 0 ? env.rng.NextInRange(-jitter_ns, jitter_ns) : 0);
  });
  b.SpinBarrier(barrier.get(), p.spin_poll, p.spin_limit);
  b.EndLoop();
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "worker";
  tmpl.script = b.Build();
  tmpl.count = p.threads;
  tmpl.parent_runtime_hint = p.parent_runtime_hint;
  tmpl.parent_sleep_hint = p.parent_sleep_hint;
  app->AddThreads(std::move(tmpl));
  return app;
}

std::unique_ptr<Application> MakePipeline(PipelineParams p) {
  assert(!p.stages.empty());
  auto app = std::make_unique<ScriptedApp>(p.name, p.seed);
  // Queues between stages; queue[0] is pre-filled with all items by stage 0
  // being a generator (it has no input queue).
  std::vector<std::shared_ptr<SimPipe>> queues;
  for (size_t i = 0; i + 1 < p.stages.size(); ++i) {
    auto pipe = std::make_shared<SimPipe>();
    app->KeepAlive(pipe);
    queues.push_back(std::move(pipe));
  }
  // Exact per-thread quotas so every message produced is consumed (a stage's
  // input is exactly the previous stage's output).
  int stage_in = p.items;
  for (size_t s = 0; s < p.stages.size(); ++s) {
    const auto [threads, cost] = p.stages[s];
    const int nthreads = std::max(1, threads);
    const int total = s == 0 ? p.items : stage_in;
    int assigned = 0;
    for (int i = 0; i < nthreads; ++i) {
      int quota = total / nthreads + (i < total % nthreads ? 1 : 0);
      ScriptBuilder b;
      if (s == 0 && p.source_batch > 1) {
        // Batched source: one disk read produces source_batch items.
        const int batches = std::max(1, quota / p.source_batch);
        quota = batches * p.source_batch;
        b.Loop(batches);
        if (p.source_io > 0) {
          b.SleepFn([io = p.source_io * p.source_batch](ScriptEnv& env) {
            return std::max<SimDuration>(Microseconds(10),
                                         static_cast<SimDuration>(env.rng.NextExponential(
                                             static_cast<double>(io))));
          });
        }
        b.Loop(p.source_batch);
        b.ComputeFn([cost = cost](ScriptEnv& env) {
          return std::max<SimDuration>(1000, static_cast<SimDuration>(env.rng.NextExponential(
                                                 static_cast<double>(cost))));
        });
        b.PipeWrite(queues[s].get());
        b.EndLoop();
        b.EndLoop();
        assigned += quota;
      } else {
        assigned += quota;
        b.Loop(quota);
        if (s > 0) {
          b.PipeRead(queues[s - 1].get());
        } else if (p.source_io > 0) {
          b.SleepFn([io = p.source_io](ScriptEnv& env) {
            return std::max<SimDuration>(Microseconds(10),
                                         static_cast<SimDuration>(env.rng.NextExponential(
                                             static_cast<double>(io))));
          });
        }
        b.ComputeFn([cost = cost](ScriptEnv& env) {
          return std::max<SimDuration>(
              1000, static_cast<SimDuration>(env.rng.NextExponential(static_cast<double>(cost))));
        });
        if (s + 1 < p.stages.size()) {
          b.PipeWrite(queues[s].get());
        }
        b.EndLoop();
      }
      ScriptedApp::ThreadTemplate tmpl;
      tmpl.name = "stage" + std::to_string(s) + "-" + std::to_string(i);
      tmpl.script = b.Build();
      tmpl.count = 1;
      app->AddThreads(std::move(tmpl));
    }
    stage_in = assigned;
  }
  return app;
}

namespace {

// Build driver: spawns `jobs` compile jobs, `parallelism` at a time, through
// a semaphore acting as the jobserver.
class BuildApp : public Application {
 public:
  explicit BuildApp(BuildParams p) : Application(p.name), p_(std::move(p)) {}

  void Launch(Machine& machine) override {
    auto slots = std::make_shared<SimSemaphore>(p_.parallelism);
    auto job_script = ScriptBuilder()
                          .ComputeFn([work = p_.job_work](ScriptEnv& env) {
                            return static_cast<SimDuration>(
                                env.rng.NextExponential(static_cast<double>(work)));
                          })
                          .SleepFn([io = p_.job_io](ScriptEnv& env) {
                            return static_cast<SimDuration>(
                                env.rng.NextExponential(static_cast<double>(io)));
                          })
                          .ComputeFn([work = p_.job_work](ScriptEnv& env) {
                            return static_cast<SimDuration>(
                                env.rng.NextExponential(static_cast<double>(work) / 3));
                          })
                          .Call([slots](ScriptEnv& env) {
                            slots->Post(env.ctx.machine(), &env.ctx.thread());
                          })
                          .Build();
    Application* self = this;
    Rng rng(p_.seed);
    auto driver =
        ScriptBuilder()
            .Loop(p_.jobs)
            .SemWait(slots.get())
            .Compute(Microseconds(200))  // make parsing/forking work
            .Call([self, job_script, seed = p_.seed](ScriptEnv& env) mutable {
              ThreadSpec spec;
              spec.name = self->name() + "/cc";
              spec.body = MakeScriptBody(job_script, env.rng.Split());
              self->SpawnThread(env.ctx.machine(), std::move(spec), &env.ctx.thread());
            })
            .EndLoop()
            .Build();
    ThreadSpec spec;
    spec.name = name() + "/make";
    spec.body = MakeScriptBody(driver, rng.Split());
    spec.parent_sleep_hint = Seconds(4);  // launched from an interactive shell
    SpawnThread(machine, std::move(spec), nullptr);
    MarkLaunched();
  }

 private:
  BuildParams p_;
};

}  // namespace

std::unique_ptr<Application> MakeBuild(BuildParams p) {
  return std::make_unique<BuildApp>(std::move(p));
}

std::unique_ptr<Application> MakeSystemNoise(SystemNoiseParams p) {
  auto app = std::make_unique<ScriptedApp>(p.name, p.seed);
  auto make_script = [&p] {
    return ScriptBuilder()
        .Loop(-1)
        .SleepFn([mean = p.mean_sleep](ScriptEnv& env) {
          return std::max<SimDuration>(Microseconds(100),
                                       static_cast<SimDuration>(env.rng.NextExponential(
                                           static_cast<double>(mean))));
        })
        .ComputeFn([mean = p.mean_work](ScriptEnv& env) {
          return std::max<SimDuration>(1000, static_cast<SimDuration>(env.rng.NextExponential(
                                                 static_cast<double>(mean))));
        })
        .EndLoop()
        .Build();
  };
  for (int c = 0; c < p.num_cores; ++c) {
    ScriptedApp::ThreadTemplate tmpl;
    tmpl.name = "ktimer" + std::to_string(c);
    tmpl.script = make_script();
    tmpl.count = p.threads_per_core;
    tmpl.affinity = CpuMask::Single(c);
    app->AddThreads(std::move(tmpl));
  }
  if (p.heavy_threads > 0) {
    ScriptedApp::ThreadTemplate heavy;
    heavy.name = "kworker";
    heavy.count = p.heavy_threads;
    heavy.script = ScriptBuilder()
                       .Loop(-1)
                       .SleepFn([mean = p.heavy_sleep](ScriptEnv& env) {
                         return std::max<SimDuration>(
                             Milliseconds(1), static_cast<SimDuration>(env.rng.NextExponential(
                                                  static_cast<double>(mean))));
                       })
                       .ComputeFn([mean = p.heavy_work](ScriptEnv& env) {
                         return std::max<SimDuration>(
                             Microseconds(100), static_cast<SimDuration>(env.rng.NextExponential(
                                                    static_cast<double>(mean))));
                       })
                       .EndLoop()
                       .Build();
    app->AddThreads(std::move(heavy));
  }
  return app;
}

}  // namespace schedbattle
