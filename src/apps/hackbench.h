// Hackbench: the Linux community's scheduler stress test (paper Section 4.2).
//
// N groups; each group has `fan` senders and `fan` receivers. Every sender
// writes `messages` messages to each receiver's pipe. Threads run for a
// short time and exchange data constantly — the workload is pure scheduler
// churn (the paper's 32,000-thread configuration measures scheduler
// overhead: ULE 1% vs CFS 0.3%).
#ifndef SRC_APPS_HACKBENCH_H_
#define SRC_APPS_HACKBENCH_H_

#include <memory>

#include "src/workload/app.h"

namespace schedbattle {

struct HackbenchParams {
  std::string name = "hackbench";
  int groups = 10;
  int fan = 20;       // senders and receivers per group
  int messages = 20;  // messages from each sender to each receiver
  SimDuration per_message_work = Microseconds(3);
  uint64_t seed = 1;
};

std::unique_ptr<Application> MakeHackbench(HackbenchParams p = {});

}  // namespace schedbattle

#endif  // SRC_APPS_HACKBENCH_H_
