#include "src/apps/apache.h"

#include "src/workload/script.h"

namespace schedbattle {

namespace {

class ApacheApp : public Application {
 public:
  explicit ApacheApp(ApacheParams p) : Application("apache"), p_(std::move(p)) {}

  // The benchmark is done when ab exits; httpd workers stay parked on the
  // request pipe, like a real server.
  bool finished() const override { return launched() && ab_exited_; }

  void NoteThreadExited(SimThread* thread, SimTime now) override {
    if (thread == ab_thread_) {
      ab_exited_ = true;
    }
    Application::NoteThreadExited(thread, now);
  }

  void Launch(Machine& machine) override {
    auto requests = std::make_shared<SimPipe>();
    auto responses = std::make_shared<SimPipe>();
    KeepAlive(requests);
    KeepAlive(responses);
    AppStats* stats = &this->stats();
    const ApacheParams p = p_;

    // httpd worker: serve forever.
    auto worker_script = ScriptBuilder()
                             .Loop(-1)
                             .PipeRead(requests.get())
                             .ComputeFn([p](ScriptEnv& env) {
                               return std::max<SimDuration>(
                                   Microseconds(2),
                                   static_cast<SimDuration>(env.rng.NextExponential(
                                       static_cast<double>(p.service_cost))));
                             })
                             .PipeWrite(responses.get())
                             .EndLoop()
                             .Build();
    for (int i = 0; i < p.httpd_threads; ++i) {
      ThreadSpec spec;
      spec.name = "httpd-" + std::to_string(i);
      spec.body = MakeScriptBody(worker_script, Rng(p.seed * 1000 + i));
      spec.parent_sleep_hint = Seconds(4);
      SpawnThread(machine, std::move(spec), nullptr);
    }

    // ab: batches of `window` requests.
    const int batches = static_cast<int>(p.total_requests / p.window);
    auto batch_start = std::make_shared<SimTime>(0);
    auto ab_script =
        ScriptBuilder()
            .Loop(batches)
            .Call([batch_start](ScriptEnv& env) { *batch_start = env.ctx.now(); })
            .Loop(p.window)
            .Compute(p.send_cost)
            .PipeWrite(requests.get())
            .EndLoop()
            .Loop(p.window)
            .PipeRead(responses.get())
            .EndLoop()
            .Call([stats, batch_start, p](ScriptEnv& env) {
              // One latency sample per request in the batch.
              for (int i = 0; i < p.window; ++i) {
                stats->RecordOp(*batch_start, env.ctx.now());
              }
            })
            .EndLoop()
            .Build();
    ThreadSpec ab;
    ab.name = "ab";
    ab.body = MakeScriptBody(ab_script, Rng(p.seed));
    ab.parent_sleep_hint = Seconds(4);
    ab_thread_ = SpawnThread(machine, std::move(ab), nullptr);
    MarkLaunched();
  }

 private:
  ApacheParams p_;
  SimThread* ab_thread_ = nullptr;
  bool ab_exited_ = false;
};

}  // namespace

std::unique_ptr<Application> MakeApache(ApacheParams p) {
  return std::make_unique<ApacheApp>(std::move(p));
}

}  // namespace schedbattle
