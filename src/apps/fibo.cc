#include "src/apps/fibo.h"

#include "src/apps/archetypes.h"

namespace schedbattle {

std::unique_ptr<Application> MakeFibo(FiboParams p) {
  ComputeBoundParams cb;
  cb.name = "fibo";
  cb.threads = 1;
  cb.total_work = p.total_work;
  cb.chunk = p.chunk;
  cb.io_sleep = 0;  // never sleeps
  cb.seed = p.seed;
  return MakeComputeBound(std::move(cb));
}

}  // namespace schedbattle
