// Workload archetypes: the recurring thread-behaviour structures of the
// paper's 37 applications.
//
// Each application model in this directory instantiates one of these shapes
// with parameters calibrated to the scheduling-relevant behaviour the paper
// describes for that application (compute/sleep ratios, thread counts,
// synchronization pattern). Absolute work sizes are scaled so single-core
// runs complete in tens of simulated seconds.
#ifndef SRC_APPS_ARCHETYPES_H_
#define SRC_APPS_ARCHETYPES_H_

#include <memory>
#include <string>

#include "src/workload/app.h"

namespace schedbattle {

// How an application's "performance" is measured (paper Section 5.3: ops/s
// for databases and NAS, 1/execution-time for the rest).
enum class MetricKind { kInvTime, kOpsPerSec };

// Pure computation split over `threads` workers, each burning
// total_work/threads in `chunk`-sized bursts, optionally with a short I/O
// sleep between bursts (compilers/compressors reading input).
struct ComputeBoundParams {
  std::string name;
  int threads = 1;
  SimDuration total_work = Seconds(30);
  SimDuration chunk = Milliseconds(20);
  SimDuration io_sleep = 0;        // sleep between chunks (0 = never sleeps)
  int io_every = 1;                // chunks per sleep
  // ULE fork-inheritance hints for the launching process (a long-idle shell
  // by default; HPC launcher scripts pass batch-like histories).
  SimDuration parent_runtime_hint = 0;
  SimDuration parent_sleep_hint = Seconds(4);
  uint64_t seed = 1;
};
std::unique_ptr<Application> MakeComputeBound(ComputeBoundParams p);

// Bulk-synchronous parallel: `threads` workers iterate (compute ± jitter,
// spin-barrier). The barrier spins for up to `spin_limit` before sleeping
// (the paper's MG "waits on a spin-barrier for 100ms and then sleeps").
// Well-placed threads never sleep at all; one doubled-up core delays every
// other thread by a whole extra compute phase (paper Section 6.3).
struct BarrierParallelParams {
  std::string name;
  int threads = 32;
  int iterations = 200;
  SimDuration work_per_iter = Milliseconds(20);
  double jitter = 0.05;                        // relative compute jitter per iteration
  SimDuration spin_poll = Microseconds(500);   // busy-wait burst between barrier polls
  SimDuration spin_limit = Milliseconds(100);  // spin budget before sleeping
  SimDuration parent_runtime_hint = 0;
  SimDuration parent_sleep_hint = Seconds(4);
  uint64_t seed = 1;
};
std::unique_ptr<Application> MakeBarrierParallel(BarrierParallelParams p);

// Software pipeline (PARSEC ferret/x264): stages connected by queues, stage
// i threads read from queue i, compute, write to queue i+1.
struct PipelineParams {
  std::string name;
  int items = 2000;
  std::vector<std::pair<int, SimDuration>> stages;  // (threads, cost per item)
  // I/O sleep of the source stage per item (reading inputs from disk); this
  // keeps the source interactive under ULE and caps the pipeline's demand.
  SimDuration source_io = 0;
  // Items produced per disk read (readahead); large batches amortize the
  // source's scheduling waits.
  int source_batch = 1;
  uint64_t seed = 1;
};
std::unique_ptr<Application> MakePipeline(PipelineParams p);

// Fork-heavy build (build-apache/build-php): a make-like driver spawning
// batches of short-lived compile jobs, `parallelism` at a time.
struct BuildParams {
  std::string name;
  int jobs = 150;
  int parallelism = 1;             // make -jN
  SimDuration job_work = Milliseconds(150);
  SimDuration job_io = Milliseconds(4);
  uint64_t seed = 1;
};
std::unique_ptr<Application> MakeBuild(BuildParams p);

// Per-core background "kernel threads": short frequent wakeups that create
// the micro load changes the paper blames for CFS's MG placement mistakes
// (Section 6.3). Runs forever (bounded by the experiment horizon).
struct SystemNoiseParams {
  std::string name = "kthreads";
  // Per-core pinned kthreads with short frequent wakeups (timers, RCU).
  int threads_per_core = 1;
  int num_cores = 32;
  SimDuration mean_sleep = Milliseconds(25);
  SimDuration mean_work = Microseconds(250);
  // Unbound kworkers with occasional multi-millisecond bursts (writeback,
  // events): these are the "micro changes in the load of cores" that make
  // CFS's balancer move application threads (paper Section 6.3).
  int heavy_threads = 8;
  SimDuration heavy_sleep = Milliseconds(120);
  SimDuration heavy_work = Milliseconds(4);
  uint64_t seed = 1;
};
std::unique_ptr<Application> MakeSystemNoise(SystemNoiseParams p);

}  // namespace schedbattle

#endif  // SRC_APPS_ARCHETYPES_H_
