// SciMark2 model: a single-threaded Java benchmark (paper Section 5.3).
//
// "It launches one compute thread, and the Java runtime executes other Java
// system threads in the background (for the garbage collector, I/O, etc.).
// When the application is executed with ULE, the compute thread can be
// delayed, because Java system threads are considered interactive and get
// priority over the computation thread."
//
// Six variants (the six SciMark kernels); the allocation-heavy variant
// drives enough GC activity that the JVM background threads' combined demand
// exceeds their CFS fair share — under ULE they take it all (absolute
// priority), under CFS they are capped at 1/(n+1).
#ifndef SRC_APPS_SCIMARK_H_
#define SRC_APPS_SCIMARK_H_

#include <memory>

#include "src/workload/app.h"

namespace schedbattle {

// variant in [1, 6]. Variant 2 (the allocation-heavy kernel) is the paper's
// -36% outlier; other variants have light GC activity.
std::unique_ptr<Application> MakeScimark(int variant, uint64_t seed);

}  // namespace schedbattle

#endif  // SRC_APPS_SCIMARK_H_
