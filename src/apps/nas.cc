#include "src/apps/nas.h"

#include <cassert>

#include "src/apps/archetypes.h"

namespace schedbattle {

std::unique_ptr<Application> MakeNas(const std::string& kernel, int threads, uint64_t seed,
                                     double scale) {
  // EP is embarrassingly parallel: no synchronization at all.
  if (kernel == "EP") {
    ComputeBoundParams p;
    p.name = "EP";
    p.threads = threads;
    // Launched from a busy job script: inherits a batch-like history.
    p.parent_runtime_hint = Seconds(3);
    p.parent_sleep_hint = Seconds(1);
    p.total_work = SecondsF(20.0 * scale) * threads;
    p.chunk = Milliseconds(25);
    p.seed = seed;
    return MakeComputeBound(std::move(p));
  }
  // DC (data cube) is I/O-bound: compute with regular disk sleeps.
  if (kernel == "DC") {
    ComputeBoundParams p;
    p.name = "DC";
    p.threads = threads;
    p.total_work = SecondsF(12.0 * scale) * threads;
    p.chunk = Milliseconds(8);
    p.io_sleep = Milliseconds(2);
    p.seed = seed;
    return MakeComputeBound(std::move(p));
  }

  BarrierParallelParams p;
  p.name = kernel;
  p.threads = threads;
  p.parent_runtime_hint = Seconds(3);
  p.parent_sleep_hint = Seconds(1);
  p.seed = seed;

  // Iteration structure per kernel: MG/IS/CG have short, barrier-heavy
  // iterations; BT/SP/LU/FT/UA have longer compute phases.
  if (kernel == "MG") {
    p.iterations = static_cast<int>(1500 * scale);
    p.work_per_iter = Milliseconds(10);
    p.jitter = 0.04;
  } else if (kernel == "CG") {
    p.iterations = static_cast<int>(500 * scale);
    p.work_per_iter = Milliseconds(30);
    p.jitter = 0.05;
  } else if (kernel == "IS") {
    p.iterations = static_cast<int>(400 * scale);
    p.work_per_iter = Milliseconds(20);
    p.jitter = 0.06;
  } else if (kernel == "FT") {
    p.iterations = static_cast<int>(250 * scale);
    p.work_per_iter = Milliseconds(60);
    p.jitter = 0.04;
  } else if (kernel == "UA") {
    p.iterations = static_cast<int>(300 * scale);
    p.work_per_iter = Milliseconds(45);
    p.jitter = 0.05;
  } else if (kernel == "BT" || kernel == "SP") {
    p.iterations = static_cast<int>(150 * scale);
    p.work_per_iter = Milliseconds(120);
    p.jitter = 0.03;
  } else if (kernel == "LU") {
    p.iterations = static_cast<int>(180 * scale);
    p.work_per_iter = Milliseconds(90);
    p.jitter = 0.03;
  } else {
    assert(false && "unknown NAS kernel");
  }
  return MakeBarrierParallel(std::move(p));
}

}  // namespace schedbattle
