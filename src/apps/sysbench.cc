#include "src/apps/sysbench.h"

#include <unordered_map>
#include <vector>

#include "src/workload/script.h"

namespace schedbattle {

namespace {

class SysbenchApp : public Application {
 public:
  explicit SysbenchApp(SysbenchParams p) : Application(p.name), p_(std::move(p)) {}

  void Launch(Machine& machine) override {
    auto shared = std::make_shared<Shared>();
    shared->remaining = p_.total_transactions;
    for (int i = 0; i < p_.num_locks; ++i) {
      shared->locks.push_back(std::make_unique<SimMutex>());
    }
    Application* self = this;
    AppStats* stats = &this->stats();
    const SysbenchParams p = p_;

    // Workers wait on a start gate: sysbench forks all threads during
    // "prepare" and releases them together for the "run" phase (this is why
    // the paper's Figure 3 shows only the master running for the first
    // seconds). The script VM has no branching, so lock contention is
    // modelled by dedicating a `lock_probability` fraction of the workers as
    // writers that take a shared lock every transaction.
    auto gate = std::make_shared<SimSemaphore>(0);
    auto make_worker = [shared, stats, gate, p](int worker_idx) {
      const bool is_writer = !shared->locks.empty() &&
                             worker_idx < static_cast<int>(p.lock_probability * p.workers);
      SimMutex* lock =
          is_writer ? shared->locks[worker_idx % shared->locks.size()].get() : nullptr;
      ScriptBuilder b;
      b.SemWait(gate.get());
      b.LoopWhile([shared](ScriptEnv&) { return shared->remaining > 0; });
      b.Call([shared](ScriptEnv& env) {
        shared->txn_start[env.ctx.thread().id()] = env.ctx.now();
      });
      b.SleepFn([p](ScriptEnv& env) {
        return std::max<SimDuration>(Microseconds(50),
                                     static_cast<SimDuration>(env.rng.NextExponential(
                                         static_cast<double>(p.txn_disk))));
      });
      b.ComputeFn([p](ScriptEnv& env) {
        return std::max<SimDuration>(Microseconds(20),
                                     static_cast<SimDuration>(env.rng.NextExponential(
                                         static_cast<double>(p.txn_compute))));
      });
      if (lock != nullptr) {
        b.Lock(lock);
        b.Compute(p.lock_hold);
        b.Unlock(lock);
      }
      b.Call([shared, stats](ScriptEnv& env) {
        if (shared->remaining > 0) {
          --shared->remaining;
          stats->RecordOp(shared->txn_start[env.ctx.thread().id()], env.ctx.now());
        }
      });
      b.EndLoop();
      return b.Build();
    };

    // Master: init compute, then fork workers one at a time, then wait (the
    // real master sleeps until the run ends; model as exit after spawning —
    // its interactivity history has already been passed to the children).
    ScriptBuilder mb;
    mb.Compute(p.init_work);
    for (int i = 0; i < p.workers; ++i) {
      mb.Compute(p.per_fork_work);
      mb.Call([self, make_worker, i](ScriptEnv& env) {
        ThreadSpec spec;
        spec.name = self->name() + "/worker-" + std::to_string(i);
        spec.body = MakeScriptBody(make_worker(i), env.rng.Split());
        self->SpawnThread(env.ctx.machine(), std::move(spec), &env.ctx.thread());
      });
    }
    mb.Call([gate, n = p.workers](ScriptEnv& env) {
      for (int i = 0; i < n; ++i) {
        gate->Post(env.ctx.machine(), &env.ctx.thread());
      }
    });
    auto master_script = mb.Build();

    ThreadSpec master;
    master.name = name() + "/master";
    master.body = MakeScriptBody(master_script, Rng(p.seed));
    // Forked from bash: an interactive parent that mostly sleeps.
    master.parent_runtime_hint = Milliseconds(100);
    master.parent_sleep_hint = Seconds(4);
    SpawnThread(machine, std::move(master), nullptr);
    MarkLaunched();
  }

 private:
  struct Shared {
    int64_t remaining = 0;
    std::vector<std::unique_ptr<SimMutex>> locks;
    std::unordered_map<ThreadId, SimTime> txn_start;
  };
  SysbenchParams p_;
};

}  // namespace

SysbenchParams SysbenchTable2() {
  SysbenchParams p;
  p.workers = 80;
  p.total_transactions = 76000;
  return p;
}

SysbenchParams SysbenchFig3() {
  SysbenchParams p;
  p.workers = 128;
  p.total_transactions = 70000;
  return p;
}

SysbenchParams SysbenchMulticore() {
  SysbenchParams p;
  p.workers = 512;
  p.total_transactions = 400000;
  // The prepare phase is irrelevant for the multicore experiments; keep it
  // short so throughput reflects the run phase.
  p.init_work = Milliseconds(200);
  p.per_fork_work = Milliseconds(1);
  p.txn_compute = Microseconds(300);
  p.txn_disk = Microseconds(3000);
  p.lock_probability = 0.30;
  p.lock_hold = Microseconds(120);
  p.num_locks = 8;
  return p;
}

std::unique_ptr<Application> MakeSysbench(SysbenchParams p) {
  return std::make_unique<SysbenchApp>(std::move(p));
}

}  // namespace schedbattle
