// sysbench/MySQL OLTP model (paper Sections 5.1, 5.2, 6.3).
//
// Structure mirrors the behaviours the paper's results hinge on:
//  - the master thread is forked from an interactive shell (bash), runs a
//    CPU-heavy initialization phase, and forks workers one by one; its
//    interactivity penalty rises through ULE's threshold partway through, so
//    early workers inherit an interactive score and late workers a batch
//    score (Figures 3 and 4);
//  - workers are mostly sleeping request handlers: per transaction they
//    sleep on "disk", compute, and optionally take a short critical section
//    on one of a few shared locks (the lock convoys behind the paper's
//    fibo+sysbench multicore result);
//  - the workload is a fixed number of transactions shared by all workers
//    (whoever runs completes them).
#ifndef SRC_APPS_SYSBENCH_H_
#define SRC_APPS_SYSBENCH_H_

#include <memory>

#include "src/workload/app.h"

namespace schedbattle {

struct SysbenchParams {
  std::string name = "sysbench";
  int workers = 80;
  int64_t total_transactions = 76000;
  // Master initialization: fixed setup plus per-worker fork cost. With the
  // default bash inheritance (sleep hint 4s) the master's penalty crosses
  // ULE's threshold ~2.4s into its runtime.
  SimDuration init_work = Milliseconds(400);
  SimDuration per_fork_work = Milliseconds(25);
  // Per transaction: compute (exponential mean) and disk sleep. The ratio
  // fixes the workers' equilibrium interactivity score (~50 * compute/disk),
  // calibrated just under ULE's threshold as for real MySQL workers.
  SimDuration txn_compute = Microseconds(1880);
  SimDuration txn_disk = Microseconds(3300);
  // Lock contention: fraction of transactions taking a shared lock, and the
  // critical-section length. 0 disables locking.
  double lock_probability = 0.0;
  SimDuration lock_hold = Microseconds(150);
  int num_locks = 4;
  uint64_t seed = 1;
};

// Preset matching Table 2 / Figure 1 (80 workers, single core, co-run with fibo).
SysbenchParams SysbenchTable2();
// Preset matching Figures 3/4 (128 workers, single core, run alone).
SysbenchParams SysbenchFig3();
// Preset for the 32-core runs (many short queries -> high wakeup rate, which
// drives ULE's pickcpu scanning overhead; lock contention for fibo+sysbench).
SysbenchParams SysbenchMulticore();

std::unique_ptr<Application> MakeSysbench(SysbenchParams p = {});

}  // namespace schedbattle

#endif  // SRC_APPS_SYSBENCH_H_
