#include "src/apps/registry.h"

#include "src/apps/apache.h"
#include "src/apps/nas.h"
#include "src/apps/parsec.h"
#include "src/apps/phoronix.h"
#include "src/apps/rocksdb.h"
#include "src/apps/scimark.h"
#include "src/apps/sysbench.h"

namespace schedbattle {

namespace {

std::vector<AppEntry> BuildSuite() {
  std::vector<AppEntry> suite;
  auto add = [&suite](std::string name, MetricKind metric,
                      std::function<std::unique_ptr<Application>(int, uint64_t, double)> make) {
    suite.push_back({std::move(name), metric, std::move(make)});
  };

  for (const char* name : {"build-apache", "build-php", "7zip", "gzip", "c-ray", "dcraw",
                           "himeno", "hmmer"}) {
    add(name, MetricKind::kInvTime, [name = std::string(name)](int threads, uint64_t seed,
                                                               double scale) {
      return MakePhoronix(name, threads, seed, scale);
    });
  }
  for (int v = 1; v <= 6; ++v) {
    add("scimark2-(" + std::to_string(v) + ")", MetricKind::kInvTime,
        [v](int, uint64_t seed, double) { return MakeScimark(v, seed); });
  }
  for (int v = 1; v <= 3; ++v) {
    add("john-(" + std::to_string(v) + ")", MetricKind::kInvTime,
        [v](int threads, uint64_t seed, double scale) {
          return MakePhoronix("john-" + std::to_string(v), threads, seed, scale);
        });
  }
  add("apache", MetricKind::kOpsPerSec, [](int, uint64_t seed, double scale) {
    ApacheParams p;
    p.seed = seed;
    p.total_requests = static_cast<int64_t>(500000 * scale);
    return MakeApache(p);
  });
  // NAS reports ops/s in the paper; with fixed total work 1/time is the same
  // ordering, and our models report completion time.
  for (const char* kernel : {"BT", "CG", "DC", "EP", "FT", "IS", "LU", "MG", "SP", "UA"}) {
    add(kernel, MetricKind::kInvTime,
        [kernel = std::string(kernel)](int threads, uint64_t seed, double scale) {
          return MakeNas(kernel, threads, seed, scale);
        });
  }
  add("sysbench", MetricKind::kOpsPerSec, [](int threads, uint64_t seed, double scale) {
    SysbenchParams p = threads > 1 ? SysbenchMulticore() : SysbenchTable2();
    p.seed = seed;
    p.total_transactions = static_cast<int64_t>(p.total_transactions * scale);
    return MakeSysbench(p);
  });
  add("rocksdb", MetricKind::kOpsPerSec, [](int threads, uint64_t seed, double scale) {
    RocksdbParams p;
    if (threads <= 1) {
      p.readers = 12;
      p.writers = 4;
      p.total_ops = 30000;
    }
    p.seed = seed;
    p.total_ops = static_cast<int64_t>(p.total_ops * scale);
    return MakeRocksdb(p);
  });
  for (const char* name : {"blackscholes", "bodytrack", "canneal", "facesim", "ferret",
                           "fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
                           "vips", "x264"}) {
    add(name, MetricKind::kInvTime,
        [name = std::string(name)](int threads, uint64_t seed, double scale) {
          return MakeParsec(name, threads, seed, scale);
        });
  }
  return suite;
}

}  // namespace

const std::vector<AppEntry>& BenchmarkSuite() {
  static const std::vector<AppEntry>* suite = new std::vector<AppEntry>(BuildSuite());
  return *suite;
}

const AppEntry* FindApp(const std::string& name) {
  for (const AppEntry& e : BenchmarkSuite()) {
    if (e.name == name) {
      return &e;
    }
  }
  return nullptr;
}

}  // namespace schedbattle
