#include "src/apps/scimark.h"

#include <cassert>

#include "src/workload/script.h"

namespace schedbattle {

namespace {

struct ScimarkConfig {
  SimDuration compute_total;
  int gc_threads;
  SimDuration gc_work;   // per GC/JIT burst
  SimDuration gc_sleep;  // between bursts
};

// Per-variant JVM background activity. The allocation-heavy variant runs six
// GC/JIT threads at a ~28% duty cycle: their per-cycle run:sleep ratio keeps
// the interactivity score ~19 (< ULE's threshold) no matter how long they
// wait for the CPU, so under ULE the interactive queue is almost never empty
// and the batch compute thread only runs in the rare gaps — while CFS caps
// every thread at its 1/7 fair share, leaving compute a steady ~14%. The
// light variants' threads demand ~3% and both schedulers behave alike.
ScimarkConfig ConfigFor(int variant) {
  ScimarkConfig cfg;
  cfg.compute_total = Seconds(18) + Seconds(variant);
  if (variant == 2) {
    cfg.gc_threads = 6;
    cfg.gc_work = Milliseconds(28);
    cfg.gc_sleep = Milliseconds(74);
  } else {
    cfg.gc_threads = 2;
    cfg.gc_work = Milliseconds(1);
    cfg.gc_sleep = Milliseconds(25 + 5 * variant);
  }
  return cfg;
}

class ScimarkApp : public Application {
 public:
  ScimarkApp(int variant, uint64_t seed)
      : Application("scimark2-(" + std::to_string(variant) + ")"),
        cfg_(ConfigFor(variant)),
        seed_(seed) {}

  // GC threads run as long as the JVM lives; the benchmark is the compute
  // thread's completion.
  bool finished() const override { return launched() && compute_done_; }

  void NoteThreadExited(SimThread* thread, SimTime now) override {
    if (thread == compute_thread_) {
      compute_done_ = true;
    }
    Application::NoteThreadExited(thread, now);
  }

  void Launch(Machine& machine) override {
    const int chunks = static_cast<int>(cfg_.compute_total / Milliseconds(10));
    auto compute_script =
        ScriptBuilder().Loop(chunks).Compute(Milliseconds(10)).EndLoop().Build();
    ThreadSpec compute;
    compute.name = name() + "/main";
    compute.body = MakeScriptBody(compute_script, Rng(seed_));
    compute.parent_sleep_hint = Seconds(4);
    compute_thread_ = SpawnThread(machine, std::move(compute), nullptr);

    auto gc_script = ScriptBuilder()
                         .Loop(-1)
                         .SleepFn([s = cfg_.gc_sleep](ScriptEnv& env) {
                           return std::max<SimDuration>(
                               Microseconds(100), static_cast<SimDuration>(env.rng.NextExponential(
                                                      static_cast<double>(s))));
                         })
                         .ComputeFn([w = cfg_.gc_work](ScriptEnv& env) {
                           return std::max<SimDuration>(
                               Microseconds(20), static_cast<SimDuration>(env.rng.NextExponential(
                                                     static_cast<double>(w))));
                         })
                         .EndLoop()
                         .Build();
    for (int i = 0; i < cfg_.gc_threads; ++i) {
      ThreadSpec gc;
      gc.name = name() + "/jvm-" + std::to_string(i);
      gc.body = MakeScriptBody(gc_script, Rng(seed_ * 977 + i + 1));
      gc.parent_sleep_hint = Seconds(4);
      SpawnThread(machine, std::move(gc), nullptr);
    }
    MarkLaunched();
  }

 private:
  ScimarkConfig cfg_;
  uint64_t seed_;
  SimThread* compute_thread_ = nullptr;
  bool compute_done_ = false;
};

}  // namespace

std::unique_ptr<Application> MakeScimark(int variant, uint64_t seed) {
  assert(variant >= 1 && variant <= 6);
  return std::make_unique<ScimarkApp>(variant, seed);
}

}  // namespace schedbattle
