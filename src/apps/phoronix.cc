#include "src/apps/phoronix.h"

#include <cassert>
#include <vector>

#include "src/apps/archetypes.h"
#include "src/workload/script.h"

namespace schedbattle {

namespace {

// c-ray: the master creates `threads` render threads one by one (so they
// inherit its rising interactivity penalty, as in sysbench), then the
// threads start through a cascading barrier: thread 0 wakes 1, 1 wakes 2,
// and so on, before rendering (paper Section 6.2).
class CrayApp : public Application {
 public:
  explicit CrayApp(CrayParams p) : Application("c-ray"), p_(std::move(p)) {}

  void Launch(Machine& machine) override {
    auto sems = std::make_shared<std::vector<std::unique_ptr<SimSemaphore>>>();
    for (int i = 0; i < p_.threads; ++i) {
      sems->push_back(std::make_unique<SimSemaphore>(i == 0 ? 1 : 0));
    }
    Application* self = this;
    const CrayParams p = p_;

    auto make_render = [sems, p](int idx) {
      ScriptBuilder b;
      b.SemWait((*sems)[idx].get());
      if (idx + 1 < p.threads) {
        b.SemPost((*sems)[idx + 1].get());
      }
      const int chunks = std::max<int>(1, static_cast<int>(p.work_per_thread / Milliseconds(10)));
      b.Loop(chunks);
      b.Compute(p.work_per_thread / chunks);
      b.EndLoop();
      b.Call([sems](ScriptEnv&) {});  // keep semaphores alive
      return b.Build();
    };

    ScriptBuilder mb;
    for (int i = 0; i < p.threads; ++i) {
      mb.Compute(p.per_create_work);
      mb.Sleep(p.per_create_io);
      mb.Call([self, make_render, i](ScriptEnv& env) {
        ThreadSpec spec;
        spec.name = "c-ray/render-" + std::to_string(i);
        spec.body = MakeScriptBody(make_render(i), env.rng.Split());
        self->SpawnThread(env.ctx.machine(), std::move(spec), &env.ctx.thread());
      });
    }
    auto master_script = mb.Build();
    ThreadSpec master;
    master.name = "c-ray/main";
    master.body = MakeScriptBody(master_script, Rng(p.seed));
    // Launched through the phoronix wrapper scripts: a freshly started shell
    // with little banked history, so the master's interactivity penalty
    // crosses ULE's threshold partway through thread creation.
    master.parent_runtime_hint = Milliseconds(100);
    master.parent_sleep_hint = Milliseconds(1500);
    SpawnThread(machine, std::move(master), nullptr);
    MarkLaunched();
  }

 private:
  CrayParams p_;
};

}  // namespace

std::unique_ptr<Application> MakeCray(CrayParams p) { return std::make_unique<CrayApp>(p); }

std::unique_ptr<Application> MakePhoronix(const std::string& app, int threads, uint64_t seed,
                                          double scale) {
  auto compute = [&](const std::string& name, int nthreads, double seconds_per_thread,
                     SimDuration chunk, SimDuration io) {
    ComputeBoundParams p;
    p.name = name;
    p.threads = nthreads;
    p.total_work = SecondsF(seconds_per_thread * scale) * nthreads;
    p.chunk = chunk;
    p.io_sleep = io;
    p.seed = seed;
    return MakeComputeBound(std::move(p));
  };

  if (app == "build-apache") {
    BuildParams p;
    p.name = app;
    p.jobs = static_cast<int>(140 * scale);
    p.parallelism = threads;
    p.job_work = Milliseconds(140);
    p.job_io = Milliseconds(4);
    p.seed = seed;
    return MakeBuild(std::move(p));
  }
  if (app == "build-php") {
    BuildParams p;
    p.name = app;
    p.jobs = static_cast<int>(220 * scale);
    p.parallelism = threads;
    p.job_work = Milliseconds(120);
    p.job_io = Milliseconds(3);
    p.seed = seed;
    return MakeBuild(std::move(p));
  }
  if (app == "7zip") {
    return compute(app, threads, 14.0, Milliseconds(6), Microseconds(300));
  }
  if (app == "gzip") {
    return compute(app, 1, 18.0, Milliseconds(4), Microseconds(500));
  }
  if (app == "c-ray") {
    CrayParams p;
    p.seed = seed;
    p.work_per_thread =
        static_cast<SimDuration>(p.work_per_thread * scale * (threads >= 32 ? 1.0 : 0.05));
    return MakeCray(p);
  }
  if (app == "dcraw") {
    return compute(app, 1, 16.0, Milliseconds(10), Microseconds(800));
  }
  if (app == "himeno") {
    return compute(app, 1, 20.0, Milliseconds(15), 0);
  }
  if (app == "hmmer") {
    return compute(app, 1, 17.0, Milliseconds(12), 0);
  }
  if (app == "john-1" || app == "john-2" || app == "john-3") {
    const double work = app == "john-1" ? 12.0 : (app == "john-2" ? 15.0 : 18.0);
    return compute(app, threads, work, Milliseconds(8), 0);
  }
  assert(false && "unknown phoronix app");
  return nullptr;
}

}  // namespace schedbattle
