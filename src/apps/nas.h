// NAS Parallel Benchmarks model (paper Section 4.2, Figures 5 and 8).
//
// HPC kernels: one thread per core, bulk-synchronous iteration with
// spin-then-sleep barriers. MG is the paper's headline case (+73% on ULE):
// short iterations make it maximally sensitive to a single mis-placed thread
// delaying every barrier.
#ifndef SRC_APPS_NAS_H_
#define SRC_APPS_NAS_H_

#include <memory>
#include <string>

#include "src/workload/app.h"

namespace schedbattle {

// kernel in {BT, CG, DC, EP, FT, IS, LU, MG, SP, UA}; threads is normally
// the core count; scale shrinks total work for quick runs.
std::unique_ptr<Application> MakeNas(const std::string& kernel, int threads, uint64_t seed,
                                     double scale = 1.0);

}  // namespace schedbattle

#endif  // SRC_APPS_NAS_H_
