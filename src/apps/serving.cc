#include "src/apps/serving.h"

#include <algorithm>

#include "src/workload/script.h"
#include "src/workload/sync.h"

namespace schedbattle {

const char* ServiceModelName(ServiceModel model) {
  switch (model) {
    case ServiceModel::kApache:
      return "apache";
    case ServiceModel::kSysbench:
      return "sysbench";
    case ServiceModel::kRocksdb:
      return "rocksdb";
  }
  return "unknown";
}

ServingParams ApacheServeDefaults() {
  ServingParams p;
  p.name = "apache-serve";
  p.model = ServiceModel::kApache;
  p.service_compute = Milliseconds(4);
  return p;
}

ServingParams SysbenchServeDefaults() {
  ServingParams p;
  p.name = "sysbench-serve";
  p.model = ServiceModel::kSysbench;
  p.service_compute = Milliseconds(2);
  p.service_stall = Milliseconds(3);
  p.stall_probability = 1.0;
  return p;
}

ServingParams RocksdbServeDefaults() {
  ServingParams p;
  p.name = "rocksdb-serve";
  p.model = ServiceModel::kRocksdb;
  p.service_compute = Microseconds(500);
  p.service_stall = Microseconds(250);
  p.stall_probability = 0.25;
  p.write_fraction = 0.25;
  p.write_compute = Microseconds(300);
  p.write_stall = Microseconds(2500);
  return p;
}

namespace {

// Fill zero-valued service knobs from the model defaults, so scenarios can
// override just the fields they care about.
ServingParams WithModelDefaults(ServingParams p) {
  ServingParams d;
  switch (p.model) {
    case ServiceModel::kApache:
      d = ApacheServeDefaults();
      break;
    case ServiceModel::kSysbench:
      d = SysbenchServeDefaults();
      break;
    case ServiceModel::kRocksdb:
      d = RocksdbServeDefaults();
      break;
  }
  if (p.service_compute == 0) {
    p.service_compute = d.service_compute;
  }
  if (p.service_stall == 0) {
    p.service_stall = d.service_stall;
  }
  if (p.stall_probability == 0) {
    p.stall_probability = d.stall_probability;
  }
  if (p.write_fraction == 0) {
    p.write_fraction = d.write_fraction;
  }
  if (p.write_compute == 0) {
    p.write_compute = d.write_compute;
  }
  if (p.write_stall == 0) {
    p.write_stall = d.write_stall;
  }
  return p;
}

}  // namespace

ServingApp::ServingApp(ServingParams p)
    : Application(p.name),
      p_(WithModelDefaults(std::move(p))),
      arrivals_(p_.arrivals),
      tail_(p_.tail_window) {}

SimDuration ServingApp::DrawService(Rng& rng, Inflight* request) {
  const bool is_write = p_.write_fraction > 0.0 && rng.NextBool(p_.write_fraction);
  SimDuration compute_mean;
  if (is_write) {
    compute_mean = p_.write_compute;
    request->stall = p_.write_stall;
  } else {
    compute_mean = p_.service_compute;
    request->stall =
        (p_.stall_probability > 0.0 && rng.NextBool(p_.stall_probability)) ? p_.service_stall : 0;
  }
  return std::max<SimDuration>(
      Microseconds(2),
      static_cast<SimDuration>(rng.NextExponential(static_cast<double>(compute_mean))));
}

void ServingApp::Complete(SimTime start, SimTime end) {
  ++completed_;
  stats().RecordOp(start, end);
  const SimDuration latency = end - start;
  if (latency <= p_.deadline) {
    ++good_;
  }
  tail_.Record(end, latency);
  if (arrivals_done_ && completed_ == admitted_) {
    stats().finished = end;
  }
}

void ServingApp::Admit(Machine& machine, SimTime now) {
  ++admitted_;
  queue_.push_back(now);
  // Timer-style wake: the arrival is an engine event, not a thread, so the
  // pipe wakes the reader exactly like a device interrupt would.
  requests_->Write(machine, /*writer=*/nullptr, 1);
}

void ServingApp::ScheduleArrival(Machine& machine, SimTime at) {
  Machine* m = &machine;
  m->engine().PostAt(at, [this, m, at] {
    Admit(*m, at);
    if (p_.max_requests > 0 && admitted_ >= p_.max_requests) {
      arrivals_done_ = true;
    } else {
      const SimTime next = arrivals_.Next(at);
      if (next <= p_.arrivals_until) {
        ScheduleArrival(*m, next);
        return;
      }
      arrivals_done_ = true;
    }
    if (completed_ == admitted_) {
      stats().finished = at;
    }
  });
}

void ServingApp::Launch(Machine& machine) {
  auto requests = std::make_shared<SimPipe>();
  requests_ = KeepAlive(requests);

  // Worker: park on the request pipe, serve, repeat — forever, like httpd.
  // The pop in ComputeFn pairs FIFO with the pipe's FIFO read grants, so the
  // k-th successful read always serves the k-th arrival.
  auto script =
      ScriptBuilder()
          .Loop(-1)
          .PipeRead(requests.get())
          .ComputeFn([this](ScriptEnv& env) {
            Inflight request;
            request.start = queue_.front();
            queue_.pop_front();
            const SimDuration compute = DrawService(env.rng, &request);
            inflight_[&env.ctx.thread()] = request;
            return compute;
          })
          .SleepFn([this](ScriptEnv& env) { return inflight_[&env.ctx.thread()].stall; })
          .Call([this](ScriptEnv& env) {
            Complete(inflight_[&env.ctx.thread()].start, env.ctx.now());
          })
          .EndLoop()
          .Build();
  for (int i = 0; i < p_.workers; ++i) {
    ThreadSpec spec;
    spec.name = p_.name + "/worker-" + std::to_string(i);
    spec.body = MakeScriptBody(script, Rng(p_.seed * 7919 + static_cast<uint64_t>(i)));
    spec.parent_sleep_hint = Seconds(4);
    SpawnThread(machine, std::move(spec), nullptr);
  }

  const SimTime first = arrivals_.Next(machine.now());
  if (first <= p_.arrivals_until && p_.max_requests >= 0) {
    ScheduleArrival(machine, first);
  } else {
    arrivals_done_ = true;
  }
  MarkLaunched();
}

std::unique_ptr<Application> MakeServing(ServingParams p) {
  return std::make_unique<ServingApp>(std::move(p));
}

}  // namespace schedbattle
