// Open-loop serving adapters for the apache/sysbench/rocksdb app models.
//
// A ServingApp is a worker pool fed by an ArrivalProcess instead of a
// closed-loop load injector: each arrival is an engine event (global lane,
// identically ordered by both shard regimes) that timestamps the request,
// enqueues it on the request pipe and wakes one parked worker through the
// scheduler's full wake path. The worker serves the request with the model's
// service-time distribution (compute burst, optional disk/WAL stall) and
// records the arrival-to-completion latency — queueing delay included, which
// is where the schedulers diverge — into the app's histogram and a
// WindowedTailSeries.
//
// Serving apps are horizon-bounded: workers park forever on the request pipe
// (like httpd), arrivals stop at `arrivals_until` (or after `max_requests`),
// and finished() reports whether every admitted request completed. Goodput
// counts requests that completed within `deadline`.
#ifndef SRC_APPS_SERVING_H_
#define SRC_APPS_SERVING_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/metrics/slo.h"
#include "src/workload/app.h"
#include "src/workload/arrivals.h"

namespace schedbattle {

// Which app model's service-time shape each request draws from.
enum class ServiceModel : uint8_t {
  kApache,    // pure compute burst (httpd request handling)
  kSysbench,  // compute + a disk wait per transaction (MySQL OLTP)
  kRocksdb,   // read/write mix: cached reads vs. WAL/compaction stalls
};
const char* ServiceModelName(ServiceModel model);

struct ServingParams {
  std::string name = "serve";
  ServiceModel model = ServiceModel::kApache;
  int workers = 64;

  ArrivalSpec arrivals;
  SimTime arrivals_until = Seconds(2);  // stop admitting past this time
  int64_t max_requests = 0;             // 0 = bounded by arrivals_until only

  // Goodput deadline: a request completed within `deadline` of its arrival
  // counts as good.
  SimDuration deadline = Milliseconds(50);
  // Window of the per-run tail-latency series.
  SimDuration tail_window = Milliseconds(100);

  // Service-time knobs (exponential means). Zero-valued fields are filled
  // from the model's defaults by MakeServing.
  SimDuration service_compute = 0;  // per-request CPU (read-class for rocksdb)
  SimDuration service_stall = 0;    // blocking wait (0 probability = never)
  double stall_probability = 0.0;
  // kRocksdb only: fraction of write-class requests and their shape.
  double write_fraction = 0.0;
  SimDuration write_compute = 0;
  SimDuration write_stall = 0;

  uint64_t seed = 1;
};

// Model-default parameter sets (service shapes scaled to serving-fleet
// request sizes; arrival rate/topology are chosen by the scenario).
ServingParams ApacheServeDefaults();
ServingParams SysbenchServeDefaults();
ServingParams RocksdbServeDefaults();

class ServingApp : public Application {
 public:
  explicit ServingApp(ServingParams p);

  void Launch(Machine& machine) override;
  // All admitted requests served and no more arrivals coming. Workers never
  // exit, so the run is ended by the horizon, not by thread-exit tracking.
  bool finished() const override {
    return launched() && arrivals_done_ && completed_ == admitted_;
  }

  const ServingParams& params() const { return p_; }
  int64_t admitted() const { return admitted_; }
  int64_t completed() const { return completed_; }
  int64_t good() const { return good_; }
  // Fraction of admitted requests that completed within the deadline
  // (unserved requests count against goodput).
  double GoodputFraction() const {
    return admitted_ > 0 ? static_cast<double>(good_) / static_cast<double>(admitted_) : 0.0;
  }
  const WindowedTailSeries& tail() const { return tail_; }

 private:
  struct Inflight {
    SimTime start = 0;
    SimDuration stall = 0;
  };

  void ScheduleArrival(Machine& machine, SimTime at);
  void Admit(Machine& machine, SimTime now);
  SimDuration DrawService(Rng& rng, Inflight* request);
  void Complete(SimTime start, SimTime end);

  ServingParams p_;
  ArrivalProcess arrivals_;
  SimPipe* requests_ = nullptr;  // KeepAlive-anchored
  std::deque<SimTime> queue_;    // arrival timestamps, FIFO with pipe grants
  std::unordered_map<const SimThread*, Inflight> inflight_;
  WindowedTailSeries tail_;
  int64_t admitted_ = 0;
  int64_t completed_ = 0;
  int64_t good_ = 0;
  bool arrivals_done_ = false;
};

std::unique_ptr<Application> MakeServing(ServingParams p = {});

}  // namespace schedbattle

#endif  // SRC_APPS_SERVING_H_
