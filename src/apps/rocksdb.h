// RocksDB read-write workload model (paper Section 4.2): a key-value store
// with mixed thread behaviour — reader threads that mostly hit the block
// cache (compute-heavy) and writer threads that stall on compaction/WAL
// (sleep-heavy), so the scheduler sees heterogeneous threads within one app.
#ifndef SRC_APPS_ROCKSDB_H_
#define SRC_APPS_ROCKSDB_H_

#include <memory>

#include "src/workload/app.h"

namespace schedbattle {

struct RocksdbParams {
  int readers = 24;
  int writers = 8;
  int64_t total_ops = 120000;
  SimDuration read_compute = Microseconds(500);
  SimDuration read_stall = Microseconds(250);   // occasional cache miss
  SimDuration write_compute = Microseconds(300);
  SimDuration write_stall = Microseconds(2500);  // WAL/compaction waits
  uint64_t seed = 1;
};

std::unique_ptr<Application> MakeRocksdb(RocksdbParams p = {});

}  // namespace schedbattle

#endif  // SRC_APPS_ROCKSDB_H_
