// fibo: the paper's synthetic CPU hog — a single thread computing Fibonacci
// numbers, never sleeping. Under ULE it is quickly classified batch and can
// be starved unboundedly by interactive threads (Section 5.1).
#ifndef SRC_APPS_FIBO_H_
#define SRC_APPS_FIBO_H_

#include <memory>

#include "src/workload/app.h"

namespace schedbattle {

struct FiboParams {
  // Total CPU time to burn (calibrated to Table 2's ~160s standalone run).
  SimDuration total_work = Seconds(160);
  SimDuration chunk = Milliseconds(10);
  uint64_t seed = 1;
};

std::unique_ptr<Application> MakeFibo(FiboParams p = {});

}  // namespace schedbattle

#endif  // SRC_APPS_FIBO_H_
