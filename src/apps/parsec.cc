#include "src/apps/parsec.h"

#include <algorithm>
#include <cassert>

#include "src/apps/archetypes.h"

namespace schedbattle {

std::unique_ptr<Application> MakeParsec(const std::string& app, int threads, uint64_t seed,
                                        double scale) {
  auto barrier = [&](int iters, SimDuration work, double jitter) {
    BarrierParallelParams p;
    p.name = app;
    p.threads = threads;
    p.iterations = std::max(1, static_cast<int>(iters * scale));
    p.work_per_iter = work;
    p.jitter = jitter;
    // pthread barriers give up the CPU quickly, unlike NAS's 100ms spin.
    p.spin_poll = Microseconds(100);
    p.spin_limit = Milliseconds(1);
    p.seed = seed;
    return MakeBarrierParallel(std::move(p));
  };
  auto compute = [&](double seconds_per_thread, SimDuration chunk, SimDuration io) {
    ComputeBoundParams p;
    p.name = app;
    p.threads = threads;
    p.total_work = SecondsF(seconds_per_thread * scale) * threads;
    p.chunk = chunk;
    p.io_sleep = io;
    p.seed = seed;
    return MakeComputeBound(std::move(p));
  };
  auto pipeline = [&](std::vector<std::pair<int, SimDuration>> stages, int items,
                      SimDuration source_io = 0, int source_batch = 1) {
    PipelineParams p;
    p.name = app;
    p.items = std::max(threads, static_cast<int>(items * scale));
    p.stages = std::move(stages);
    p.source_io = source_io;
    p.source_batch = source_batch;
    p.seed = seed;
    return MakePipeline(std::move(p));
  };

  if (app == "blackscholes") {
    return barrier(200, Milliseconds(60), 0.03);
  }
  if (app == "bodytrack") {
    return barrier(260, Milliseconds(35), 0.10);
  }
  if (app == "canneal") {
    return compute(15.0, Milliseconds(5), Microseconds(200));
  }
  if (app == "facesim") {
    return barrier(120, Milliseconds(110), 0.08);
  }
  if (app == "ferret") {
    // 6-stage pipeline: load -> segment -> extract -> index -> rank -> output.
    // The single-threaded load stage caps throughput, so the worker stages
    // run below saturation — they sleep on their queues often enough to stay
    // interactive under ULE (the Figure 9 blackscholes+ferret behaviour).
    const int mid = std::max(1, 3 * threads / 4);
    return pipeline({{1, Microseconds(60)},
                     {mid, Microseconds(900)},
                     {mid, Microseconds(1200)},
                     {mid, Microseconds(800)},
                     {mid, Microseconds(1300)},
                     {1, Microseconds(200)}},
                    30000, /*source_io=*/Microseconds(108), /*source_batch=*/512);
  }
  if (app == "fluidanimate") {
    return barrier(300, Milliseconds(40), 0.05);
  }
  if (app == "freqmine") {
    return compute(18.0, Milliseconds(12), 0);
  }
  if (app == "raytrace") {
    return compute(16.0, Milliseconds(8), 0);
  }
  if (app == "streamcluster") {
    return barrier(700, Milliseconds(12), 0.06);
  }
  if (app == "swaptions") {
    return compute(17.0, Milliseconds(20), 0);
  }
  if (app == "vips") {
    const int mid = std::max(1, threads / 2);
    return pipeline({{1, Microseconds(100)}, {mid, Microseconds(700)}, {1, Microseconds(150)}},
                    25000);
  }
  if (app == "x264") {
    const int mid = std::max(1, threads - 2);
    return pipeline({{1, Microseconds(300)}, {mid, Microseconds(2500)}, {1, Microseconds(250)}},
                    12000);
  }
  assert(false && "unknown PARSEC app");
  return nullptr;
}

}  // namespace schedbattle
