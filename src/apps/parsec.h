// PARSEC benchmark suite models (paper Section 4.2).
//
// Each application uses the parallelization structure of the real benchmark:
// data-parallel with barriers (blackscholes, fluidanimate, streamcluster,
// facesim, bodytrack), pure task parallelism (swaptions, freqmine, raytrace,
// canneal), or software pipelines (ferret, x264, vips).
#ifndef SRC_APPS_PARSEC_H_
#define SRC_APPS_PARSEC_H_

#include <memory>
#include <string>

#include "src/workload/app.h"

namespace schedbattle {

std::unique_ptr<Application> MakeParsec(const std::string& app, int threads, uint64_t seed,
                                        double scale = 1.0);

}  // namespace schedbattle

#endif  // SRC_APPS_PARSEC_H_
