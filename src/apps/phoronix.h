// Phoronix test suite models (paper Section 4.2): compilation, compression,
// image processing, scientific and cryptography benchmarks, including the
// c-ray renderer whose cascading-barrier startup exposes ULE's
// within-application starvation (Figure 7).
#ifndef SRC_APPS_PHORONIX_H_
#define SRC_APPS_PHORONIX_H_

#include <memory>
#include <string>

#include "src/workload/app.h"

namespace schedbattle {

// app in {build-apache, build-php, 7zip, gzip, c-ray, dcraw, himeno, hmmer,
// john-1, john-2, john-3}.
std::unique_ptr<Application> MakePhoronix(const std::string& app, int threads, uint64_t seed,
                                          double scale = 1.0);

struct CrayParams {
  int threads = 512;
  SimDuration work_per_thread = Milliseconds(1500);
  SimDuration per_create_work = Microseconds(1200);
  SimDuration per_create_io = Microseconds(800);  // scene/alloc I/O between creates
  uint64_t seed = 1;
};
// c-ray with explicit parameters (used directly by the Figure 7 bench).
std::unique_ptr<Application> MakeCray(CrayParams p);

}  // namespace schedbattle

#endif  // SRC_APPS_PHORONIX_H_
