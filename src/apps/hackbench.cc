#include "src/apps/hackbench.h"

#include <vector>

#include "src/workload/script.h"

namespace schedbattle {

namespace {

class HackbenchApp : public Application {
 public:
  explicit HackbenchApp(HackbenchParams p) : Application(p.name), p_(std::move(p)) {}

  void Launch(Machine& machine) override {
    Rng rng(p_.seed);
    for (int g = 0; g < p_.groups; ++g) {
      // One pipe per receiver in the group.
      auto pipes = std::make_shared<std::vector<std::unique_ptr<SimPipe>>>();
      for (int r = 0; r < p_.fan; ++r) {
        pipes->push_back(std::make_unique<SimPipe>());
      }
      // Sender: round-robin one message to each receiver, `messages` rounds.
      ScriptBuilder sb;
      sb.Loop(p_.messages);
      for (int r = 0; r < p_.fan; ++r) {
        sb.Compute(p_.per_message_work);
        sb.PipeWrite((*pipes)[r].get());
      }
      sb.EndLoop();
      sb.Call([pipes](ScriptEnv&) {});  // keep pipes alive
      auto sender_script = sb.Build();

      for (int s = 0; s < p_.fan; ++s) {
        ThreadSpec spec;
        spec.name = name() + "/g" + std::to_string(g) + "-send" + std::to_string(s);
        spec.body = MakeScriptBody(sender_script, rng.Split());
        SpawnThread(machine, std::move(spec), nullptr);
      }
      // Receiver r: read fan*messages messages from its pipe.
      for (int r = 0; r < p_.fan; ++r) {
        auto receiver_script = ScriptBuilder()
                                   .Loop(p_.fan * p_.messages)
                                   .PipeRead((*pipes)[r].get())
                                   .Compute(p_.per_message_work)
                                   .EndLoop()
                                   .Call([pipes](ScriptEnv&) {})
                                   .Build();
        ThreadSpec spec;
        spec.name = name() + "/g" + std::to_string(g) + "-recv" + std::to_string(r);
        spec.body = MakeScriptBody(receiver_script, rng.Split());
        SpawnThread(machine, std::move(spec), nullptr);
      }
    }
    MarkLaunched();
  }

 private:
  HackbenchParams p_;
};

}  // namespace

std::unique_ptr<Application> MakeHackbench(HackbenchParams p) {
  return std::make_unique<HackbenchApp>(std::move(p));
}

}  // namespace schedbattle
