#include "src/apps/rocksdb.h"

#include "src/workload/script.h"

namespace schedbattle {

namespace {

class RocksdbApp : public Application {
 public:
  explicit RocksdbApp(RocksdbParams p) : Application("rocksdb"), p_(std::move(p)) {}

  void Launch(Machine& machine) override {
    auto remaining = std::make_shared<int64_t>(p_.total_ops);
    AppStats* stats = &this->stats();
    auto wal_lock = std::make_shared<SimMutex>();
    KeepAlive(wal_lock);
    const RocksdbParams p = p_;

    auto make_worker = [remaining, stats, wal_lock, p](bool writer) {
      const SimDuration compute = writer ? p.write_compute : p.read_compute;
      const SimDuration stall = writer ? p.write_stall : p.read_stall;
      ScriptBuilder b;
      b.LoopWhile([remaining](ScriptEnv&) { return *remaining > 0; });
      auto op_start = std::make_shared<SimTime>(0);
      b.Call([op_start](ScriptEnv& env) { *op_start = env.ctx.now(); });
      b.ComputeFn([compute](ScriptEnv& env) {
        return std::max<SimDuration>(Microseconds(20),
                                     static_cast<SimDuration>(env.rng.NextExponential(
                                         static_cast<double>(compute))));
      });
      if (writer) {
        b.Lock(wal_lock.get());
        b.Compute(Microseconds(40));
        b.Unlock(wal_lock.get());
      }
      b.SleepFn([stall](ScriptEnv& env) {
        return std::max<SimDuration>(Microseconds(10),
                                     static_cast<SimDuration>(env.rng.NextExponential(
                                         static_cast<double>(stall))));
      });
      b.Call([remaining, stats, op_start](ScriptEnv& env) {
        if (*remaining > 0) {
          --*remaining;
          stats->RecordOp(*op_start, env.ctx.now());
        }
      });
      b.EndLoop();
      return b.Build();
    };

    Rng rng(p.seed);
    for (int i = 0; i < p.readers; ++i) {
      ThreadSpec spec;
      spec.name = "rocksdb/reader-" + std::to_string(i);
      spec.body = MakeScriptBody(make_worker(false), rng.Split());
      spec.parent_sleep_hint = Seconds(4);
      SpawnThread(machine, std::move(spec), nullptr);
    }
    for (int i = 0; i < p.writers; ++i) {
      ThreadSpec spec;
      spec.name = "rocksdb/writer-" + std::to_string(i);
      spec.body = MakeScriptBody(make_worker(true), rng.Split());
      spec.parent_sleep_hint = Seconds(4);
      SpawnThread(machine, std::move(spec), nullptr);
    }
    MarkLaunched();
  }

 private:
  RocksdbParams p_;
};

}  // namespace

std::unique_ptr<Application> MakeRocksdb(RocksdbParams p) {
  return std::make_unique<RocksdbApp>(std::move(p));
}

}  // namespace schedbattle
