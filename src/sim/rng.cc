#include "src/sim/rng.h"

#include <cmath>

namespace schedbattle {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
  // Avoid the all-zero state (astronomically unlikely, but cheap to guard).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation, without the rejection
  // refinement: the bias for our bounds (<< 2^64) is negligible for workload
  // modelling purposes.
  const unsigned __int128 m = static_cast<unsigned __int128>(Next()) * bound;
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian(double mean, double stddev) {
  // Box-Muller; we regenerate each call rather than caching the second value
  // so that copies of the generator stay in lock-step with call counts.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::Split() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace schedbattle
