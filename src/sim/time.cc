#include "src/sim/time.h"

#include <cstdio>

namespace schedbattle {

std::string FormatTime(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fs", ToSeconds(t));
  return std::string(buf);
}

}  // namespace schedbattle
