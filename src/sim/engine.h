// SimEngine: the discrete-event simulation driver.
//
// Owns the virtual clock and the event queue, and advances time by executing
// events in (time, insertion) order. All higher layers (Machine, workloads,
// metrics samplers) schedule work through this engine; nothing in the
// simulator ever consults real time.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <cstdint>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace schedbattle {

class SimEngine {
 public:
  SimEngine() = default;
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  SimTime now() const { return now_; }
  uint64_t events_executed() const { return events_executed_; }

  // Schedules a callback at absolute time `when` (clamped to now()).
  EventHandle At(SimTime when, EventCallback cb);

  // Schedules a callback `delay` from now (delay clamped to >= 0).
  EventHandle After(SimDuration delay, EventCallback cb);

  // Fire-and-forget variants: no cancellation handle, no control-block
  // allocation (see EventQueue::Post). Prefer these when the handle would be
  // discarded — they are on the simulator's hottest path.
  void PostAt(SimTime when, EventCallback cb);
  void PostAfter(SimDuration delay, EventCallback cb);

  bool Cancel(EventHandle& handle) { return queue_.Cancel(handle); }

  // Runs events until the queue is empty or the next event is after
  // `deadline`; the clock then rests at min(deadline, last event time...).
  // Returns the number of events executed. On return now() == deadline if the
  // run reached it, otherwise the time of the last executed event.
  uint64_t RunUntil(SimTime deadline);

  // Runs until the event queue drains completely.
  uint64_t RunToCompletion();

  // Executes a single event if one is pending; returns false if empty.
  bool Step();

  // Requests that RunUntil/RunToCompletion return after the current event.
  void RequestStop() { stop_requested_ = true; }

 private:
  SimTime now_ = 0;
  EventQueue queue_;
  uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace schedbattle

#endif  // SRC_SIM_ENGINE_H_
