// SimEngine: the discrete-event simulation driver.
//
// Owns the virtual clock and the event queues, and advances time by executing
// events in (time, insertion) order. All higher layers (Machine, workloads,
// metrics samplers) schedule work through this engine; nothing in the
// simulator ever consults real time.
//
// ---- Sharding ----
//
// The engine can be partitioned into N shards (ConfigureShards), each owning
// the event queue of one contiguous core group, plus a global lane for every
// event that is not certified core-local (balancer passes, wakeups, workload
// arrivals, samplers). Core-local events are posted through AtCore/PostAtCore
// with the owning core; everything else uses the classic At/After/Post API
// and lands in the global lane.
//
// Two execution regimes, chosen window by window:
//
//  * Serialized k-way merge. All lanes draw sequence numbers from one shared
//    counter, so popping the lane whose head has the smallest (time, seq)
//    reproduces *exactly* the order a single queue would have produced —
//    sharded runs are byte-identical to serial runs by construction,
//    including every observer callback and decision-log record. This is the
//    only regime used while observers or a decision sink are attached, and
//    on plans that are not word-aligned.
//
//  * Parallel windows (conservative time-window synchronization). When the
//    installed gate certifies that in-flight events are core-local and
//    commute across shards (no observers, no idle cores, scheduler reports
//    ShardParallelSafe), the engine picks the window end W = the global
//    lane's next event time (the minimum cross-shard latency: next balancer
//    pass, wakeup, arrival — the lookahead is derived, not configured) and
//    lets every shard drain its own lane up to W concurrently. Cross-shard
//    work discovered mid-window is pushed through per-shard staging channels
//    and committed into the global lane at the window barrier in (shard,
//    post-order) — i.e. deterministic — order; a shard that stages stops its
//    drain for the window so no lane ever runs past an uncommitted cross
//    event. Events posted inside a window get seqs from a per-window block
//    (seq = base + k * num_lanes + lane), deterministic and disjoint from the
//    shared counter, so parallel runs are exactly reproducible run-to-run.
//
// The parallel regime trades the total event order for wall-clock speed only
// where the gate proves order does not matter; its results are identical to
// the serialized regime except for cross-lane ties at the same nanosecond
// between a window-born event and a foreign-lane event, which are resolved
// by block order instead of true insertion order. The engine counts those
// ties (window_stats().cross_lane_ties) so differential tests can assert the
// guarantee held exactly.
#ifndef SRC_SIM_ENGINE_H_
#define SRC_SIM_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/shard.h"
#include "src/sim/time.h"

namespace schedbattle {

class SimEngine;

namespace engine_internal {
// Which shard (if any) the current OS thread is draining, and for which
// engine. Shard handlers observe it through SimEngine::current_shard() and
// SimEngine::now(); everything outside a parallel window sees {nullptr, -1}.
// In the header (not an engine.cc detail) so the two accessors inline into
// the simulator's hottest paths.
struct ExecCtx {
  const SimEngine* engine = nullptr;
  int shard = -1;
};
// inline + constinit: the definition lives here in the header with a
// guaranteed-constant initializer, so every TU reads the TLS slot directly —
// no lazy-init wrapper call, which would both slow the hot path and trip
// GCC UBSan's spurious null-reference check for extern thread_locals.
inline constinit thread_local ExecCtx g_exec_ctx;
}  // namespace engine_internal

class SimEngine {
 public:
  SimEngine();
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // Partitions the engine into the plan's shards (plus the global lane).
  // Must be called before any event is scheduled. A single-shard plan keeps
  // the engine on the classic one-queue fast path.
  void ConfigureShards(ShardPlan plan);
  const ShardPlan& shard_plan() const { return plan_; }
  int num_shards() const { return plan_.num_shards() == 0 ? 1 : plan_.num_shards(); }

  // Selects the event-queue backend (heap or timing wheel) for every lane.
  // Must be called before any event is scheduled; composes with sharding in
  // either order (ConfigureShards recreates its lanes with this kind, and
  // this call recreates any lanes that already exist). kDefault defers to
  // the process default (SCHEDBATTLE_QUEUE / SetDefaultQueueKind), resolved
  // when each lane is constructed.
  void SetQueueKind(QueueKind kind);
  QueueKind queue_kind() const { return queue_kind_; }

  // Shard this thread is currently draining for, or -1 outside parallel
  // windows (the serial context). Machine state slabs index off this.
  int current_shard() const {
    const engine_internal::ExecCtx& ctx = engine_internal::g_exec_ctx;
    return ctx.engine == this ? ctx.shard : -1;
  }

  SimTime now() const {
    const int s = current_shard();
    return s < 0 ? now_ : slots_[s].now;
  }
  uint64_t events_executed() const { return events_executed_; }

  // Schedules a callback at absolute time `when` (clamped to now()).
  EventHandle At(SimTime when, EventCallback cb);

  // Schedules a callback `delay` from now (delay clamped to >= 0).
  EventHandle After(SimDuration delay, EventCallback cb);

  // Fire-and-forget variants: no cancellation handle, no control-block
  // allocation (see EventQueue::Post). Prefer these when the handle would be
  // discarded — they are on the simulator's hottest path.
  void PostAt(SimTime when, EventCallback cb);
  void PostAfter(SimDuration delay, EventCallback cb);

  // Core-local variants: the event lives in the owning core's shard lane and
  // may be drained inside a parallel window. Callers certify that the
  // callback only touches state owned by `core`'s shard (see machine.cc for
  // the certification rules per event kind).
  EventHandle AtCore(int core, SimTime when, EventCallback cb);
  void PostAtCore(int core, SimTime when, EventCallback cb);

  bool Cancel(EventHandle& handle) { return EventQueue::CancelVia(handle); }

  // Stages a cross-shard post from inside a parallel window: the callback is
  // committed into the global lane at the window barrier (in deterministic
  // shard/post order), and the staging shard stops draining for the rest of
  // the window. `out`, when non-null, receives the materialized handle at
  // commit time — the caller must guarantee the pointed-to slot stays valid
  // and unread until the window barrier (Machine's per-core completion slots
  // qualify: the core's shard is stopped, so nothing touches the slot).
  // Only callable from a shard context.
  void StageCrossAt(SimTime when, EventCallback cb, EventHandle* out);

  // Runs events until the queue is empty or the next event is after
  // `deadline`; the clock then rests at min(deadline, last event time...).
  // Returns the number of events executed. On return now() == deadline if the
  // run reached it, otherwise the time of the last executed event.
  uint64_t RunUntil(SimTime deadline);

  // Runs until the event queue drains completely.
  uint64_t RunToCompletion();

  // Executes a single event if one is pending; returns false if empty.
  bool Step();

  // Requests that RunUntil/RunToCompletion return after the current event
  // (after the current window, if one is mid-drain).
  void RequestStop() { stop_requested_.store(true, std::memory_order_relaxed); }

  // ---- parallel-window control surface (installed by the harness) ----

  // Gate consulted before each candidate window; returning true certifies
  // that every event currently in the shard lanes is core-local and commutes
  // across shards. No gate installed = never parallel.
  void SetParallelGate(std::function<bool()> gate) { gate_ = std::move(gate); }

  // Invoked in the serial context after every parallel window, so the owner
  // can fold per-shard state slabs back into its master copy.
  void SetWindowEndHook(std::function<void()> hook) { window_end_hook_ = std::move(hook); }

  // Whether parallel windows use OS worker threads (one per shard) or drain
  // shards sequentially on the calling thread. Sequential drains produce
  // bit-identical results to threaded ones (shard state is disjoint and seq
  // assignment is deterministic); threads only buy wall-clock on multi-core
  // hosts. Default: threaded iff the host has more than one CPU, overridable
  // with SCHEDBATTLE_SHARD_THREADS=on/off.
  void SetShardThreads(bool on) { threads_requested_ = on; }

  struct WindowStats {
    uint64_t windows = 0;          // parallel windows executed
    uint64_t window_events = 0;    // events drained inside parallel windows
    uint64_t serial_events = 0;    // events executed on the merge path
    uint64_t staged_posts = 0;     // cross posts staged out of windows
    uint64_t drain_stops = 0;      // shards that stopped a window early
    uint64_t cross_lane_ties = 0;  // same-time ties involving a window-born seq
  };
  const WindowStats& window_stats() const { return window_stats_; }

 private:
  struct alignas(64) ShardSlot {
    SimTime now = 0;          // shard-local clock while draining a window
    uint64_t executed = 0;    // events drained this window
    uint64_t next_k = 0;      // per-window post counter (seq block index)
    bool stopped = false;     // staged a cross post; drain halted
    // Cross posts staged during the window, committed at the barrier.
    struct StagedPost {
      SimTime when;
      EventCallback cb;
      EventHandle* out;  // where to materialize the handle (may be null)
    };
    std::vector<StagedPost> staged;
  };

  struct Pool;  // worker threads + window barrier (engine.cc)

  int LaneOfCore(int core) const {
    return lanes_.size() == 1 ? 0 : 1 + plan_.shard_of[core];
  }
  uint64_t NextSeq();  // serial-context or window-block seq, by context

  uint64_t RunMerged(SimTime deadline, bool to_completion);
  // Picks the lane with the smallest (when, seq) head. Returns -1 if all
  // lanes are empty or (when !to_completion) every head is past `deadline`.
  int PickLane(SimTime* when, uint64_t* seq);
  bool TotalEmpty();

  // Runs one parallel window ending at `window_end`; returns events drained.
  uint64_t RunParallelWindow(SimTime window_end);
  void DrainShard(int shard, SimTime window_end);  // worker body
  uint64_t CommitWindow();  // staging + seq bookkeeping; returns events drained
  bool ThreadsEnabled();

  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t events_executed_ = 0;
  std::atomic<bool> stop_requested_{false};

  ShardPlan plan_;
  QueueKind queue_kind_ = QueueKind::kDefault;
  // lanes_[0] is the global lane; lanes_[1 + s] belongs to shard s. A
  // default-constructed engine has exactly one lane, which doubles as both.
  std::vector<std::unique_ptr<EventQueue>> lanes_;
  std::vector<ShardSlot> slots_;  // one per shard (parallel-window state)

  std::function<bool()> gate_;
  std::function<void()> window_end_hook_;
  bool parallel_capable_ = false;  // multi-shard && word-aligned plan
  int threads_requested_ = -1;     // -1 auto, 0 off, 1 on
  std::unique_ptr<Pool> pool_;

  // Seq ranges handed out as per-window blocks, for cross-lane tie
  // accounting (sorted, disjoint, grow-only).
  std::vector<std::pair<uint64_t, uint64_t>> window_seq_ranges_;
  bool InWindowBlock(uint64_t seq) const;
  uint64_t window_base_ = 0;  // current window's seq block base

  WindowStats window_stats_;
};

}  // namespace schedbattle

#endif  // SRC_SIM_ENGINE_H_
