#include "src/sim/timing_wheel.h"

#include <bit>
#include <cassert>
#include <cstdint>
#include <utility>

namespace schedbattle {

namespace {

bool OverflowLess(SimTime aw, uint64_t as, SimTime bw, uint64_t bs) {
  if (aw != bw) {
    return aw < bw;
  }
  return as < bs;
}

}  // namespace

TimingWheel::~TimingWheel() = default;

int TimingWheel::LevelFor(SimTime t) const {
  const uint64_t diff = static_cast<uint64_t>(t) ^ static_cast<uint64_t>(cur_);
  if ((diff >> (kLevelBits * kLevels)) != 0) {
    return kOverflowLevel;
  }
  if (diff == 0) {
    return 0;
  }
  return (std::bit_width(diff) - 1) / kLevelBits;
}

int TimingWheel::NextOccupied(int level, int from) const {
  if (from >= kSlotsPerLevel) {
    return -1;
  }
  int word = from >> 6;
  uint64_t bits = occupied_[level][word] & (~uint64_t{0} << (from & 63));
  for (;;) {
    if (bits != 0) {
      return (word << 6) + std::countr_zero(bits);
    }
    if (++word >= kBitmapWords) {
      return -1;
    }
    bits = occupied_[level][word];
  }
}

void TimingWheel::Insert(Node* node) {
  // The queue contract forbids scheduling before the last popped time, and
  // the clock never advances past a pending (or freshly popped) time.
  assert(node->when >= cur_);
  int level = LevelFor(node->when);
  int slot_idx = 0;
  if (level >= kLevels) {
    level = kOverflowLevel;
    OverflowPush(OverflowEntry{node->when, node->seq, node});
  } else {
    PlaceInWheel(node, level);
    slot_idx = SlotIndex(node->when, level);
  }
  if (cache_valid_) {
    if (node->when < cache_when_ ||
        (node->when == cache_when_ && node->seq < cache_seq_)) {
      cache_when_ = node->when;
      cache_seq_ = node->seq;
      cache_node_ = node;
      cache_level_ = level;
      cache_slot_ = slot_idx;
    }
  } else if (owner_->live_count_ == 0) {
    // The queue was empty (the owner bumps live_count_ after Insert), so the
    // new event is trivially the minimum. An invalid cache over a non-empty
    // queue stays invalid until the next peek/pop rescans.
    cache_when_ = node->when;
    cache_seq_ = node->seq;
    cache_node_ = node;
    cache_level_ = level;
    cache_slot_ = slot_idx;
    cache_valid_ = true;
  }
}

void TimingWheel::PlaceInWheel(Node* node, int level) {
  assert(level >= 0 && level < kLevels);
  if (level < 0 || level >= kLevels) {
    // Every caller checks the range (overflow times never reach here); the
    // hint keeps GCC's -Warray-bounds from flagging the slots_ access.
    __builtin_unreachable();
  }
  const int idx = SlotIndex(node->when, level);
  Slot& slot = slots_[level][idx];
  node->next_free = nullptr;
  if (slot.head == nullptr) {
    slot.head = slot.tail = node;
    MarkOccupied(level, idx);
    return;
  }
  if (level > 0) {
    // Unsorted: the cascade re-sorts on the way down to level 0.
    slot.tail->next_free = node;
    slot.tail = node;
    return;
  }
  // Level 0: the slot's pending entries all share one absolute time (every
  // index byte is pinned), and the list is kept sorted by seq so the head is
  // the slot's minimum. Per-lane seqs are handed out monotonically, so the
  // tail append dominates; the scan path also recycles tombstones left over
  // from earlier laps of the wheel.
  if (slot.tail->state == Node::kPending && slot.tail->seq <= node->seq) {
    slot.tail->next_free = node;
    slot.tail = node;
    return;
  }
  Node** link = &slot.head;
  while (*link != nullptr) {
    Node* n = *link;
    if (n->state != Node::kPending) {
      *link = n->next_free;
      owner_->Recycle(n, Node::kCancelled);
      continue;
    }
    if (n->seq >= node->seq) {
      break;
    }
    link = &n->next_free;
  }
  node->next_free = *link;
  *link = node;
  if (node->next_free == nullptr) {
    slot.tail = node;
  }
}

void TimingWheel::OnCancel(Node* node) {
  if (cache_valid_ && node == cache_node_) {
    cache_valid_ = false;
  }
}

bool TimingWheel::PeekKey(SimTime* when, uint64_t* seq) {
  if (!FindMin()) {
    return false;
  }
  *when = cache_when_;
  *seq = cache_seq_;
  return true;
}

bool TimingWheel::FindMin() {
  if (cache_valid_) {
    return true;
  }
  // Level 0 first: pending entries all live in the clock's current 256-block,
  // so only slots at or above the clock's low byte can hold one. Occupied
  // slots below that hold only tombstones; they are skipped here and
  // recycled when their slot is next reused or cascaded over.
  for (int idx = NextOccupied(0, SlotIndex(cur_, 0)); idx >= 0;
       idx = NextOccupied(0, idx + 1)) {
    Slot& slot = slots_[0][idx];
    while (slot.head != nullptr && slot.head->state != Node::kPending) {
      Node* tomb = slot.head;
      slot.head = tomb->next_free;
      owner_->Recycle(tomb, Node::kCancelled);
    }
    if (slot.head == nullptr) {
      slot.tail = nullptr;
      ClearOccupied(0, idx);
      continue;
    }
    // Sorted list: the first pending node is the slot minimum, and the
    // lowest pending level-0 slot holds the wheel-wide minimum.
    cache_when_ = slot.head->when;
    cache_seq_ = slot.head->seq;
    cache_node_ = slot.head;
    cache_level_ = 0;
    cache_slot_ = idx;
    cache_valid_ = true;
    return true;
  }
  // Higher levels: pending entries have their level byte strictly above the
  // clock's, and a lower level always beats a higher one (its entries agree
  // with the clock on every byte the higher level differs in).
  for (int level = 1; level < kLevels; ++level) {
    for (int idx = NextOccupied(level, SlotIndex(cur_, level) + 1); idx >= 0;
         idx = NextOccupied(level, idx + 1)) {
      Slot& slot = slots_[level][idx];
      Node* best = nullptr;
      Node* last = nullptr;
      Node** link = &slot.head;
      while (*link != nullptr) {
        Node* n = *link;
        if (n->state != Node::kPending) {
          *link = n->next_free;
          owner_->Recycle(n, Node::kCancelled);
          continue;
        }
        if (best == nullptr || n->when < best->when ||
            (n->when == best->when && n->seq < best->seq)) {
          best = n;
        }
        last = n;
        link = &n->next_free;
      }
      slot.tail = last;
      if (slot.head == nullptr) {
        ClearOccupied(level, idx);
        continue;
      }
      cache_when_ = best->when;
      cache_seq_ = best->seq;
      cache_node_ = best;
      cache_level_ = level;
      cache_slot_ = idx;
      cache_valid_ = true;
      return true;
    }
  }
  // Wheel empty: the overflow root (if any) is the minimum — overflow times
  // sit in a later 2^32 epoch than everything the wheel can hold.
  OverflowSkim();
  if (!overflow_.empty()) {
    cache_when_ = overflow_.front().when;
    cache_seq_ = overflow_.front().seq;
    cache_node_ = overflow_.front().node;
    cache_level_ = kOverflowLevel;
    cache_slot_ = 0;
    cache_valid_ = true;
    return true;
  }
  return false;
}

TimingWheel::Node* TimingWheel::PopMin() {
  if (!FindMin()) {
    return nullptr;
  }
  if (cache_level_ == kOverflowLevel) {
    // The wheel proper is empty (it always beats overflow): jump the clock
    // to the popped time and promote the newly reachable epoch. The cache may
    // have been set by Insert's queue-empty fast path, so cancelled entries
    // with smaller keys can still sit at the heap root — skim them first.
    OverflowSkim();
    OverflowEntry entry = OverflowPop();
    assert(entry.node == cache_node_);
    cur_ = entry.when;
    for (;;) {
      OverflowSkim();
      if (overflow_.empty()) {
        break;
      }
      const int level = LevelFor(overflow_.front().when);
      if (level >= kLevels) {
        break;
      }
      OverflowEntry promoted = OverflowPop();
      PlaceInWheel(promoted.node, level);
    }
    cache_valid_ = false;
    return entry.node;
  }
  // Cascade the minimum down to level 0. Each iteration advances the clock
  // to the holding slot's base time — which is <= the minimum pending time,
  // so no pending event is ever left behind the clock — and redistributes
  // that slot one or more levels down.
  while (cache_level_ > 0) {
    const int level = cache_level_;
    const int idx = cache_slot_;
    const uint64_t keep = ~((uint64_t{1} << (kLevelBits * (level + 1))) - 1);
    cur_ = static_cast<SimTime>(
        (static_cast<uint64_t>(cur_) & keep) |
        (static_cast<uint64_t>(idx) << (kLevelBits * level)));
    CascadeSlot(level, idx);
    cache_level_ = LevelFor(cache_when_);
    cache_slot_ = SlotIndex(cache_when_, cache_level_);
    assert(cache_level_ < level);
  }
  Slot& slot = slots_[0][cache_slot_];
  while (slot.head != nullptr && slot.head->state != Node::kPending) {
    Node* tomb = slot.head;
    slot.head = tomb->next_free;
    owner_->Recycle(tomb, Node::kCancelled);
  }
  Node* node = slot.head;
  assert(node == cache_node_);
  slot.head = node->next_free;
  if (slot.head == nullptr) {
    slot.tail = nullptr;
    ClearOccupied(0, cache_slot_);
  }
  cur_ = node->when;
  cache_valid_ = false;
  return node;
}

void TimingWheel::CascadeSlot(int level, int idx) {
  Slot& slot = slots_[level][idx];
  Node* n = slot.head;
  slot.head = slot.tail = nullptr;
  ClearOccupied(level, idx);
  while (n != nullptr) {
    Node* next = n->next_free;
    if (n->state != Node::kPending) {
      owner_->Recycle(n, Node::kCancelled);
    } else {
      const int new_level = LevelFor(n->when);
      assert(new_level < level);
      PlaceInWheel(n, new_level);
    }
    n = next;
  }
}

void TimingWheel::OverflowPush(OverflowEntry e) {
  overflow_.push_back(e);
  size_t i = overflow_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!OverflowLess(overflow_[i].when, overflow_[i].seq,
                      overflow_[parent].when, overflow_[parent].seq)) {
      break;
    }
    std::swap(overflow_[i], overflow_[parent]);
    i = parent;
  }
}

TimingWheel::OverflowEntry TimingWheel::OverflowPop() {
  assert(!overflow_.empty());
  const OverflowEntry root = overflow_.front();
  overflow_.front() = overflow_.back();
  overflow_.pop_back();
  const size_t n = overflow_.size();
  size_t i = 0;
  for (;;) {
    size_t best = i;
    const size_t l = 2 * i + 1;
    const size_t r = 2 * i + 2;
    if (l < n && OverflowLess(overflow_[l].when, overflow_[l].seq,
                              overflow_[best].when, overflow_[best].seq)) {
      best = l;
    }
    if (r < n && OverflowLess(overflow_[r].when, overflow_[r].seq,
                              overflow_[best].when, overflow_[best].seq)) {
      best = r;
    }
    if (best == i) {
      break;
    }
    std::swap(overflow_[i], overflow_[best]);
    i = best;
  }
  return root;
}

void TimingWheel::OverflowSkim() {
  // Tombstones inside the heap sift like live entries and get dropped when
  // they surface, exactly like the heap backend's lazy discard.
  while (!overflow_.empty() &&
         overflow_.front().node->state != Node::kPending) {
    Node* tomb = overflow_.front().node;
    OverflowPop();
    owner_->Recycle(tomb, Node::kCancelled);
  }
}

void TimingWheel::Clear() {
  for (int level = 0; level < kLevels; ++level) {
    for (int idx = 0; idx < kSlotsPerLevel; ++idx) {
      Node* n = slots_[level][idx].head;
      slots_[level][idx] = Slot{};
      while (n != nullptr) {
        Node* next = n->next_free;
        if (n->state == Node::kPending) {
          n->cb = SmallFn();
        }
        owner_->Recycle(n, Node::kCancelled);
        n = next;
      }
    }
    for (int word = 0; word < kBitmapWords; ++word) {
      occupied_[level][word] = 0;
    }
  }
  for (OverflowEntry& e : overflow_) {
    if (e.node->state == Node::kPending) {
      e.node->cb = SmallFn();
    }
    owner_->Recycle(e.node, Node::kCancelled);
  }
  overflow_.clear();
  cache_valid_ = false;
}

}  // namespace schedbattle
