// Hierarchical timing wheel — the O(1) event-queue backend.
//
// Layout ("digital clock" with absolute indexing):
//
//     level 3:  [256 slots]   each spans 2^24 ns  (~16.8 ms)   bits 24..31
//     level 2:  [256 slots]   each spans 2^16 ns  (~65.5 us)   bits 16..23
//     level 1:  [256 slots]   each spans 2^8  ns  (256 ns)     bits  8..15
//     level 0:  [256 slots]   each spans 1 ns                  bits  0..7
//     overflow: binary min-heap on (when, seq) for events >= 2^32 ns
//               (~4.29 s) past the wheel clock
//
// The wheel keeps a clock `cur_` (<= every pending event's time). An event at
// absolute time `t` lives at the level of the highest byte in which `t`
// differs from `cur_`, in the slot indexed by that byte of `t`; events whose
// difference reaches above bit 31 go to the overflow heap. Each slot is an
// intrusive singly-linked list of the queue's pooled nodes (the node's
// freelist link is reused as the slot link), so the wheel allocates nothing
// beyond the pool the heap backend already uses.
//
// Popping finds the lowest occupied slot via 256-bit occupancy bitmaps. If
// that slot is at level 0 it holds exactly one absolute time (all 8 index
// bytes pinned), list kept sorted by seq — pop the head. Otherwise the clock
// advances to the slot's base time and the slot's list cascades down to lower
// levels (each entry re-indexed against the new clock); cascade work is O(1)
// amortized because each event moves down at most kLevels times over its
// lifetime. When the wheel is empty the overflow root pops directly, the
// clock jumps to its time, and every overflow event now within the horizon is
// promoted into the wheel.
//
// Cancellation is deferred: Cancel marks the node and destroys its callback,
// but the node stays linked in its slot (or the overflow heap) as a tombstone
// until a pop, cascade, or slot-reuse walk recycles it — the same lazy
// strategy the heap backend uses, giving O(1) cancel without list backlinks.
//
// Peeks never advance the clock. RunUntil can reach a deadline without
// popping and then schedule at exactly that deadline, so a peek that cascaded
// (advancing `cur_` past the deadline) would corrupt the wheel; instead the
// minimum key is cached (maintained across inserts, invalidated by pops and
// by cancelling the cached event), which also makes the sharded engine's
// per-event lane peeks O(1).
//
// Pop order is byte-identical to the heap backend by construction — both
// realize the same strict (when, seq) total order — which
// tests/timing_wheel_test.cc and schedfuzz's wheel-vs-heap differential leg
// enforce.
#ifndef SRC_SIM_TIMING_WHEEL_H_
#define SRC_SIM_TIMING_WHEEL_H_

#include <cstdint>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace schedbattle {

class TimingWheel {
 public:
  using Node = EventHandle::Node;

  explicit TimingWheel(EventQueue* owner) : owner_(owner) {}
  TimingWheel(const TimingWheel&) = delete;
  TimingWheel& operator=(const TimingWheel&) = delete;
  ~TimingWheel();

  // Links a node whose (when, seq, state=kPending, cb) fields are already
  // set. `when` must not be before the last popped event's time.
  void Insert(Node* node);

  // Called after the owner marks `node` cancelled (deferred recycle): only
  // drops the cached minimum if it pointed at this node.
  void OnCancel(Node* node);

  // Key of the earliest pending event; false if none. Never advances the
  // clock (may skim tombstones and fill the min cache).
  bool PeekKey(SimTime* when, uint64_t* seq);

  // Unlinks and returns the earliest pending node (cb still owned by the
  // node); nullptr if empty. Advances the clock to the popped time.
  Node* PopMin();

  // Recycles every linked node, pending or tombstone.
  void Clear();

 private:
  static constexpr int kLevels = 4;
  static constexpr int kLevelBits = 8;
  static constexpr int kSlotsPerLevel = 1 << kLevelBits;  // 256
  static constexpr int kBitmapWords = kSlotsPerLevel / 64;
  // Pseudo-level used in the min cache when the minimum sits in overflow_.
  static constexpr int kOverflowLevel = kLevels;

  struct Slot {
    Node* head = nullptr;
    Node* tail = nullptr;
  };

  // (when, seq) copied out of the node so heap sifts stay in one array.
  struct OverflowEntry {
    SimTime when;
    uint64_t seq;
    Node* node;
  };

  static int SlotIndex(SimTime t, int level) {
    return static_cast<int>(
        (static_cast<uint64_t>(t) >> (kLevelBits * level)) & (kSlotsPerLevel - 1));
  }
  // Level an event at `t` occupies relative to the current clock: the index
  // of the highest differing byte. Returns kOverflowLevel when t and the
  // clock differ at or above bit 32.
  int LevelFor(SimTime t) const;

  void MarkOccupied(int level, int idx) {
    occupied_[level][idx >> 6] |= uint64_t{1} << (idx & 63);
  }
  void ClearOccupied(int level, int idx) {
    occupied_[level][idx >> 6] &= ~(uint64_t{1} << (idx & 63));
  }
  // Lowest occupied slot index >= from at `level`, or -1.
  int NextOccupied(int level, int from) const;

  // Links `node` into its slot at `level` (< kLevels). Level 0 keeps each
  // slot's list sorted by seq (tail-append in the common monotone-seq case);
  // higher levels append, since the cascade re-sorts on the way down.
  void PlaceInWheel(Node* node, int level);

  // Redistributes every entry of slots_[level][idx] against the (already
  // advanced) clock, recycling tombstones.
  void CascadeSlot(int level, int idx);

  void OverflowPush(OverflowEntry e);
  OverflowEntry OverflowPop();
  // Drops cancelled entries at the overflow root.
  void OverflowSkim();

  // Ensures the min cache holds the earliest pending key (and its location).
  // Returns false if no event is pending. Skims tombstones encountered on
  // the way but never advances the clock.
  bool FindMin();

  EventQueue* owner_;
  // The wheel clock: <= every pending event's time; advances only in
  // PopMin (to the popped time, or to a cascaded slot's base time, which is
  // itself <= the minimum pending time).
  SimTime cur_ = 0;
  Slot slots_[kLevels][kSlotsPerLevel];
  uint64_t occupied_[kLevels][kBitmapWords] = {};
  std::vector<OverflowEntry> overflow_;

  // Cached minimum. Inserts of a smaller key update it in place; pops
  // invalidate it; cancelling the cached node invalidates it. While valid,
  // cache_level_/cache_slot_ locate the node (kOverflowLevel = overflow
  // root), letting PopMin skip the bitmap scan.
  bool cache_valid_ = false;
  SimTime cache_when_ = 0;
  uint64_t cache_seq_ = 0;
  Node* cache_node_ = nullptr;
  int cache_level_ = 0;
  int cache_slot_ = 0;
};

}  // namespace schedbattle

#endif  // SRC_SIM_TIMING_WHEEL_H_
