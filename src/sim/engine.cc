#include "src/sim/engine.h"

#include <utility>

namespace schedbattle {

EventHandle SimEngine::At(SimTime when, EventCallback cb) {
  if (when < now_) {
    when = now_;
  }
  return queue_.Schedule(when, std::move(cb));
}

EventHandle SimEngine::After(SimDuration delay, EventCallback cb) {
  if (delay < 0) {
    delay = 0;
  }
  return queue_.Schedule(now_ + delay, std::move(cb));
}

void SimEngine::PostAt(SimTime when, EventCallback cb) {
  if (when < now_) {
    when = now_;
  }
  queue_.Post(when, std::move(cb));
}

void SimEngine::PostAfter(SimDuration delay, EventCallback cb) {
  if (delay < 0) {
    delay = 0;
  }
  queue_.Post(now_ + delay, std::move(cb));
}

uint64_t SimEngine::RunUntil(SimTime deadline) {
  uint64_t executed = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.NextTime() > deadline) {
      break;
    }
    SimTime when = 0;
    EventCallback cb = queue_.PopNext(&when);
    now_ = when;
    cb();
    ++executed;
    ++events_executed_;
  }
  // Advance the clock to the deadline only when the run genuinely reached it.
  // After RequestStop the clock must rest at the last executed event — the
  // content of the residual queue (e.g. how many future ticks are still
  // armed) must not influence the reported time.
  if (!stop_requested_ && now_ < deadline && queue_.NextTime() > deadline) {
    now_ = deadline;
  }
  return executed;
}

uint64_t SimEngine::RunToCompletion() {
  uint64_t executed = 0;
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    SimTime when = 0;
    EventCallback cb = queue_.PopNext(&when);
    now_ = when;
    cb();
    ++executed;
    ++events_executed_;
  }
  return executed;
}

bool SimEngine::Step() {
  if (queue_.empty()) {
    return false;
  }
  SimTime when = 0;
  EventCallback cb = queue_.PopNext(&when);
  now_ = when;
  cb();
  ++events_executed_;
  return true;
}

}  // namespace schedbattle
