#include "src/sim/engine.h"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>

namespace schedbattle {

namespace {

using engine_internal::ExecCtx;
using engine_internal::g_exec_ctx;

// Process-wide worker-thread override (SCHEDBATTLE_SHARD_THREADS=on/off).
// -1 = unset, defer to hardware_concurrency.
int ShardThreadsEnv() {
  static const int v = [] {
    const char* e = std::getenv("SCHEDBATTLE_SHARD_THREADS");
    if (e == nullptr) {
      return -1;
    }
    const std::string_view s(e);
    if (s == "off" || s == "0" || s == "false") {
      return 0;
    }
    return 1;
  }();
  return v;
}

}  // namespace

// Worker pool for threaded window drains. One thread per shard beyond shard
// 0 (the engine's calling thread drains shard 0 itself). Windows are handed
// out through a generation counter under a mutex; the mutex acquire/release
// pair at the window boundary doubles as the memory barrier that publishes
// every shard's state back to the serial context.
struct SimEngine::Pool {
  std::vector<std::thread> workers;
  std::mutex mu;
  std::condition_variable cv_work;
  std::condition_variable cv_done;
  uint64_t gen = 0;
  int pending = 0;
  SimTime window_end = 0;
  bool exiting = false;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lock(mu);
      exiting = true;
    }
    cv_work.notify_all();
    for (auto& t : workers) {
      t.join();
    }
  }
};

SimEngine::SimEngine() {
  lanes_.push_back(std::make_unique<EventQueue>(queue_kind_));
  slots_.resize(1);
}

SimEngine::~SimEngine() = default;

void SimEngine::SetQueueKind(QueueKind kind) {
  assert(TotalEmpty() && events_executed_ == 0 &&
         "SetQueueKind must run before any event is scheduled");
  queue_kind_ = kind;
  for (auto& lane : lanes_) {
    lane = std::make_unique<EventQueue>(queue_kind_);
  }
}

void SimEngine::ConfigureShards(ShardPlan plan) {
  assert(TotalEmpty() && events_executed_ == 0 &&
         "ConfigureShards must run before any event is scheduled");
  assert(plan.num_shards() >= 1);
  plan_ = std::move(plan);
  pool_.reset();
  lanes_.clear();
  const int shards = plan_.num_shards();
  // Single-shard plans keep one lane that doubles as global + shard 0, which
  // preserves the classic one-queue fast path (and its exact event order).
  const int lane_count = shards == 1 ? 1 : 1 + shards;
  for (int i = 0; i < lane_count; ++i) {
    lanes_.push_back(std::make_unique<EventQueue>(queue_kind_));
  }
  slots_.clear();
  slots_.resize(std::max(shards, 1));
  parallel_capable_ = shards > 1 && plan_.word_aligned();
}

uint64_t SimEngine::NextSeq() {
  const int s = current_shard();
  if (s < 0) {
    return next_seq_++;
  }
  // Window-born events draw from this window's block: base + k*L + lane.
  // Deterministic (depends only on the shard's own post order) and disjoint
  // across lanes, so parallel drains never contend on the shared counter.
  ShardSlot& slot = slots_[s];
  const uint64_t lane = static_cast<uint64_t>(1 + s);
  const uint64_t seq =
      window_base_ + slot.next_k * static_cast<uint64_t>(lanes_.size()) + lane;
  ++slot.next_k;
  return seq;
}

EventHandle SimEngine::At(SimTime when, EventCallback cb) {
  const int s = current_shard();
  if (s >= 0) {
    // Cross-shard scheduling from inside a window: stage fire-and-forget
    // (the handle cannot be returned by value before the barrier commits).
    // Callers that need the handle use Machine's staged-completion path.
    assert(false && "handle-returning cross post from shard context");
    StageCrossAt(when, std::move(cb), nullptr);
    return EventHandle();
  }
  if (when < now_) {
    when = now_;
  }
  return lanes_[0]->ScheduleWithSeq(when, next_seq_++, std::move(cb));
}

EventHandle SimEngine::After(SimDuration delay, EventCallback cb) {
  if (delay < 0) {
    delay = 0;
  }
  return At(now() + delay, std::move(cb));
}

void SimEngine::PostAt(SimTime when, EventCallback cb) {
  const int s = current_shard();
  if (s >= 0) {
    StageCrossAt(when, std::move(cb), nullptr);
    return;
  }
  if (when < now_) {
    when = now_;
  }
  lanes_[0]->PostWithSeq(when, next_seq_++, std::move(cb));
}

void SimEngine::PostAfter(SimDuration delay, EventCallback cb) {
  if (delay < 0) {
    delay = 0;
  }
  PostAt(now() + delay, std::move(cb));
}

EventHandle SimEngine::AtCore(int core, SimTime when, EventCallback cb) {
  const int lane = LaneOfCore(core);
  const int s = current_shard();
  if (s >= 0) {
    if (lane != 1 + s) {
      // A shard may only schedule into its own lane; anything else is a
      // certification bug. Fall back to the (safe, serialized) staging path.
      assert(false && "cross-lane AtCore from shard context");
      StageCrossAt(when, std::move(cb), nullptr);
      return EventHandle();
    }
    SimTime t = std::max(when, slots_[s].now);
    return lanes_[lane]->ScheduleWithSeq(t, NextSeq(), std::move(cb));
  }
  if (when < now_) {
    when = now_;
  }
  return lanes_[lane]->ScheduleWithSeq(when, next_seq_++, std::move(cb));
}

void SimEngine::PostAtCore(int core, SimTime when, EventCallback cb) {
  const int lane = LaneOfCore(core);
  const int s = current_shard();
  if (s >= 0) {
    if (lane != 1 + s) {
      assert(false && "cross-lane PostAtCore from shard context");
      StageCrossAt(when, std::move(cb), nullptr);
      return;
    }
    SimTime t = std::max(when, slots_[s].now);
    lanes_[lane]->PostWithSeq(t, NextSeq(), std::move(cb));
    return;
  }
  if (when < now_) {
    when = now_;
  }
  lanes_[lane]->PostWithSeq(when, next_seq_++, std::move(cb));
}

void SimEngine::StageCrossAt(SimTime when, EventCallback cb, EventHandle* out) {
  const int s = current_shard();
  assert(s >= 0 && "StageCrossAt is only meaningful inside a parallel window");
  ShardSlot& slot = slots_[s];
  slot.staged.push_back(ShardSlot::StagedPost{when, std::move(cb), out});
  // Stop this shard's drain: no event of this lane may run past a cross
  // event that is not yet visible to the other lanes.
  slot.stopped = true;
}

bool SimEngine::TotalEmpty() {
  for (auto& lane : lanes_) {
    if (!lane->empty()) {
      return false;
    }
  }
  return true;
}

int SimEngine::PickLane(SimTime* when, uint64_t* seq) {
  int best = -1;
  SimTime best_when = 0;
  uint64_t best_seq = 0;
  for (int i = 0; i < static_cast<int>(lanes_.size()); ++i) {
    SimTime w;
    uint64_t s;
    if (!lanes_[i]->PeekKey(&w, &s)) {
      continue;
    }
    if (best < 0 || w < best_when || (w == best_when && s < best_seq)) {
      if (best >= 0 && w == best_when &&
          (InWindowBlock(s) || InWindowBlock(best_seq))) {
        ++window_stats_.cross_lane_ties;
      }
      best = i;
      best_when = w;
      best_seq = s;
    } else if (w == best_when && (InWindowBlock(s) || InWindowBlock(best_seq))) {
      ++window_stats_.cross_lane_ties;
    }
  }
  if (best >= 0) {
    *when = best_when;
    *seq = best_seq;
  }
  return best;
}

bool SimEngine::InWindowBlock(uint64_t seq) const {
  if (window_seq_ranges_.empty()) {
    return false;
  }
  auto it = std::upper_bound(
      window_seq_ranges_.begin(), window_seq_ranges_.end(),
      std::make_pair(seq, UINT64_MAX));
  if (it == window_seq_ranges_.begin()) {
    return false;
  }
  --it;
  return seq >= it->first && seq < it->second;
}

bool SimEngine::ThreadsEnabled() {
  if (threads_requested_ < 0) {
    const int env = ShardThreadsEnv();
    threads_requested_ =
        env >= 0 ? env : (std::thread::hardware_concurrency() > 1 ? 1 : 0);
  }
  return threads_requested_ != 0;
}

void SimEngine::DrainShard(int shard, SimTime window_end) {
  ExecCtx saved = g_exec_ctx;
  g_exec_ctx = ExecCtx{this, shard};
  ShardSlot& slot = slots_[shard];
  EventQueue& lane = *lanes_[1 + shard];
  SimTime when = 0;
  EventCallback cb;
  while (!slot.stopped && !stop_requested_.load(std::memory_order_relaxed)) {
    if (!lane.PopNextBefore(window_end, &when, &cb)) {
      break;
    }
    slot.now = when;
    cb();
    ++slot.executed;
  }
  g_exec_ctx = saved;
}

uint64_t SimEngine::RunParallelWindow(SimTime window_end) {
  const int shards = num_shards();
  window_base_ = next_seq_;
  for (int s = 0; s < shards; ++s) {
    ShardSlot& slot = slots_[s];
    slot.now = now_;
    slot.executed = 0;
    slot.next_k = 0;
    slot.stopped = false;
    slot.staged.clear();
  }
  ++window_stats_.windows;

  if (ThreadsEnabled()) {
    if (pool_ == nullptr) {
      pool_ = std::make_unique<Pool>();
      pool_->workers.reserve(shards - 1);
      for (int s = 1; s < shards; ++s) {
        pool_->workers.emplace_back([this, s] {
          uint64_t seen = 0;
          std::unique_lock<std::mutex> lock(pool_->mu);
          for (;;) {
            pool_->cv_work.wait(
                lock, [&] { return pool_->exiting || pool_->gen != seen; });
            if (pool_->exiting) {
              return;
            }
            seen = pool_->gen;
            const SimTime w = pool_->window_end;
            lock.unlock();
            DrainShard(s, w);
            lock.lock();
            if (--pool_->pending == 0) {
              pool_->cv_done.notify_one();
            }
          }
        });
      }
    }
    {
      std::lock_guard<std::mutex> lock(pool_->mu);
      ++pool_->gen;
      pool_->pending = shards - 1;
      pool_->window_end = window_end;
    }
    pool_->cv_work.notify_all();
    DrainShard(0, window_end);
    {
      std::unique_lock<std::mutex> lock(pool_->mu);
      pool_->cv_done.wait(lock, [&] { return pool_->pending == 0; });
    }
  } else {
    for (int s = 0; s < shards; ++s) {
      DrainShard(s, window_end);
    }
  }

  return CommitWindow();
}

uint64_t SimEngine::CommitWindow() {
  const int shards = num_shards();
  uint64_t drained = 0;
  uint64_t max_k = 0;
  SimTime last = now_;
  for (int s = 0; s < shards; ++s) {
    ShardSlot& slot = slots_[s];
    drained += slot.executed;
    max_k = std::max(max_k, slot.next_k);
    if (slot.executed > 0) {
      last = std::max(last, slot.now);
    }
    if (slot.stopped) {
      ++window_stats_.drain_stops;
    }
  }
  if (max_k > 0) {
    next_seq_ = window_base_ + (max_k + 1) * static_cast<uint64_t>(lanes_.size());
  }
  // Commit staged cross posts in (shard, post-order) order — deterministic —
  // into the global lane with fresh serial seqs.
  for (int s = 0; s < shards; ++s) {
    for (auto& p : slots_[s].staged) {
      ++window_stats_.staged_posts;
      if (p.out != nullptr) {
        *p.out = lanes_[0]->ScheduleWithSeq(p.when, next_seq_++, std::move(p.cb));
      } else {
        lanes_[0]->PostWithSeq(p.when, next_seq_++, std::move(p.cb));
      }
    }
    slots_[s].staged.clear();
  }
  // Everything born this window — in-window block seqs AND staged commits —
  // is tie-tracked: a same-time tie between any of these and a pre-window
  // event resolves by block/commit order, not true serial insertion order.
  if (next_seq_ > window_base_) {
    window_seq_ranges_.emplace_back(window_base_, next_seq_);
  }
  now_ = last;
  events_executed_ += drained;
  window_stats_.window_events += drained;
  if (window_end_hook_) {
    window_end_hook_();
  }
  return drained;
}

uint64_t SimEngine::RunMerged(SimTime deadline, bool to_completion) {
  uint64_t executed = 0;
  for (;;) {
    if (stop_requested_.load(std::memory_order_relaxed)) {
      break;
    }
    SimTime when;
    uint64_t seq;
    const int lane = PickLane(&when, &seq);
    if (lane < 0) {
      break;
    }
    if (!to_completion && when > deadline) {
      break;
    }
    if (parallel_capable_ && lane > 0 && gate_) {
      // Candidate window: the global lane's next event bounds how far shard
      // lanes may drain unsupervised (the derived cross-shard lookahead).
      SimTime window_end = lanes_[0]->NextTime();
      if (!to_completion && deadline < kTimeNever - 1) {
        window_end = std::min(window_end, deadline + 1);
      }
      if (window_end > when && gate_()) {
        executed += RunParallelWindow(window_end);
        continue;
      }
    }
    EventCallback cb = lanes_[lane]->PopNext(&when);
    now_ = when;
    cb();
    ++executed;
    ++events_executed_;
    ++window_stats_.serial_events;
  }
  return executed;
}

uint64_t SimEngine::RunUntil(SimTime deadline) {
  stop_requested_.store(false, std::memory_order_relaxed);
  uint64_t executed = 0;
  if (lanes_.size() == 1) {
    EventQueue& queue = *lanes_[0];
    while (!queue.empty() && !stop_requested_.load(std::memory_order_relaxed)) {
      if (queue.NextTime() > deadline) {
        break;
      }
      SimTime when = 0;
      EventCallback cb = queue.PopNext(&when);
      now_ = when;
      cb();
      ++executed;
      ++events_executed_;
    }
    // Advance the clock to the deadline only when the run genuinely reached
    // it. After RequestStop the clock must rest at the last executed event —
    // the content of the residual queue (e.g. how many future ticks are
    // still armed) must not influence the reported time.
    if (!stop_requested_.load(std::memory_order_relaxed) && now_ < deadline &&
        queue.NextTime() > deadline) {
      now_ = deadline;
    }
    return executed;
  }
  executed = RunMerged(deadline, /*to_completion=*/false);
  if (!stop_requested_.load(std::memory_order_relaxed) && now_ < deadline) {
    SimTime when;
    uint64_t seq;
    const int lane = PickLane(&when, &seq);
    if (lane < 0 || when > deadline) {
      now_ = deadline;
    }
  }
  return executed;
}

uint64_t SimEngine::RunToCompletion() {
  stop_requested_.store(false, std::memory_order_relaxed);
  if (lanes_.size() == 1) {
    uint64_t executed = 0;
    EventQueue& queue = *lanes_[0];
    while (!queue.empty() && !stop_requested_.load(std::memory_order_relaxed)) {
      SimTime when = 0;
      EventCallback cb = queue.PopNext(&when);
      now_ = when;
      cb();
      ++executed;
      ++events_executed_;
    }
    return executed;
  }
  return RunMerged(kTimeNever, /*to_completion=*/true);
}

bool SimEngine::Step() {
  SimTime when;
  uint64_t seq;
  const int lane = PickLane(&when, &seq);
  if (lane < 0) {
    return false;
  }
  EventCallback cb = lanes_[lane]->PopNext(&when);
  now_ = when;
  cb();
  ++events_executed_;
  return true;
}

}  // namespace schedbattle
