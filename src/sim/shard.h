// ShardPlan: the static partition of a machine's cores into engine shards.
//
// The sharded SimEngine gives each shard its own event queue (lane) holding
// the per-core event streams (ticks, reschedules, compute completions) of the
// cores it owns, plus one extra global lane for everything that is not
// certified core-local (balancer passes, wakeups, workload arrivals, monitor
// samplers). The plan is pure data: core -> shard, plus the contiguous core
// range of each shard.
//
// Word alignment: parallel window drains let different shards write their own
// cores' bits of shared CpuSet masks (Machine::idle_mask_, ULE's load masks)
// concurrently. That is only race-free when no two shards share a 64-bit
// mask word, so Contiguous() rounds shard boundaries to multiples of 64
// whenever the machine is large enough; word_aligned() reports whether it
// succeeded. Plans that are not word-aligned are still valid — the engine
// simply keeps every event on the serialized k-way-merge path (which is what
// the byte-identity tests exercise on small topologies).
#ifndef SRC_SIM_SHARD_H_
#define SRC_SIM_SHARD_H_

#include <algorithm>
#include <vector>

namespace schedbattle {

struct ShardPlan {
  int num_cores = 0;
  std::vector<int> shard_of;  // core -> shard index
  std::vector<int> begin;     // shard -> first owned core
  std::vector<int> end;       // shard -> one past last owned core

  int num_shards() const { return static_cast<int>(begin.size()); }

  bool word_aligned() const {
    for (int s = 0; s < num_shards(); ++s) {
      if (begin[s] % 64 != 0) {
        return false;
      }
    }
    return true;
  }

  // One shard owning every core: the serial plan.
  static ShardPlan Single(int num_cores) { return Contiguous(num_cores, 1); }

  // `shards` contiguous shards over `num_cores` cores. When every shard can
  // own at least one full 64-core mask word, boundaries are word-aligned;
  // otherwise cores are split as evenly as possible (and the plan reports
  // !word_aligned(), disabling parallel drains but not the sharded queues).
  static ShardPlan Contiguous(int num_cores, int shards) {
    ShardPlan plan;
    plan.num_cores = num_cores;
    if (shards < 1) {
      shards = 1;
    }
    if (shards > num_cores) {
      shards = num_cores;
    }
    const int words = (num_cores + 63) / 64;
    plan.shard_of.resize(num_cores);
    int next = 0;
    for (int s = 0; s < shards; ++s) {
      int take;
      if (words >= shards) {
        // Distribute whole words; shard s gets words [s*w/shards, (s+1)*w/shards).
        const int w_begin = (s * words) / shards;
        const int w_end = ((s + 1) * words) / shards;
        take = (w_end - w_begin) * 64;
      } else {
        take = ((s + 1) * num_cores) / shards - (s * num_cores) / shards;
      }
      const int b = next;
      const int e = std::min(num_cores, b + take);
      plan.begin.push_back(b);
      plan.end.push_back(s + 1 == shards ? num_cores : e);
      next = plan.end.back();
    }
    for (int s = 0; s < plan.num_shards(); ++s) {
      for (int c = plan.begin[s]; c < plan.end[s]; ++c) {
        plan.shard_of[c] = s;
      }
    }
    return plan;
  }
};

}  // namespace schedbattle

#endif  // SRC_SIM_SHARD_H_
