// Virtual time for the discrete-event simulator.
//
// All simulated time is expressed as int64_t nanoseconds since simulation
// start. Helper constants/functions keep call sites readable without the
// overhead (and template noise) of std::chrono in hot simulator paths.
#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace schedbattle {

// A point in simulated time, in nanoseconds since simulation start.
using SimTime = int64_t;
// A span of simulated time, in nanoseconds.
using SimDuration = int64_t;

inline constexpr SimDuration kNanosecond = 1;
inline constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;

inline constexpr SimTime kTimeNever = INT64_MAX;

constexpr SimDuration Nanoseconds(int64_t n) { return n; }
constexpr SimDuration Microseconds(int64_t n) { return n * kMicrosecond; }
constexpr SimDuration Milliseconds(int64_t n) { return n * kMillisecond; }
constexpr SimDuration Seconds(int64_t n) { return n * kSecond; }
constexpr SimDuration SecondsF(double s) { return static_cast<SimDuration>(s * kSecond); }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / kSecond; }
constexpr double ToMilliseconds(SimDuration d) { return static_cast<double>(d) / kMillisecond; }

// Formats a time as seconds with millisecond precision, e.g. "12.345s".
std::string FormatTime(SimTime t);

}  // namespace schedbattle

#endif  // SRC_SIM_TIME_H_
