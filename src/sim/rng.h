// Deterministic pseudo-random number generation for the simulator.
//
// The simulator never consults wall-clock entropy: every experiment takes an
// explicit seed, and identical seeds reproduce identical traces. We use
// xoshiro256** (public domain, Blackman & Vigna) seeded through splitmix64,
// which is both fast and statistically strong enough for workload modelling.
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace schedbattle {

// splitmix64 step; used for seeding and as a cheap hash.
uint64_t SplitMix64(uint64_t& state);

// xoshiro256** PRNG. Copyable; copies diverge independently.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Uniform random 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Normally distributed (Box-Muller); mean/stddev in caller's units.
  double NextGaussian(double mean, double stddev);

  // Creates an independent child generator (for per-thread streams).
  Rng Split();

 private:
  uint64_t s_[4];
};

}  // namespace schedbattle

#endif  // SRC_SIM_RNG_H_
