// Cancellable discrete-event queue.
//
// The queue orders events by (time, sequence number): ties in simulated time
// fire in insertion order, which makes every simulation fully deterministic.
// Events can be cancelled in O(1) through the handle returned at scheduling
// time; cancelled entries are lazily discarded when they surface (the usual
// "tombstone" technique, which keeps Cancel cheap even with hundreds of
// thousands of pending timers).
//
// Two backends share this interface, selected per queue by QueueKind:
//
//   kHeap  — a 4-ary min-heap over 32-byte POD keys. O(log n) post/pop, the
//            best structure for shallow queues (a few hundred pending).
//   kWheel — a hierarchical timing wheel (src/sim/timing_wheel.h): 4 levels
//            x 256 slots of intrusive node lists plus a far-future overflow
//            heap. O(1) amortized post/cancel/pop, which is what deep
//            serving queues (tens of thousands of pending events) want.
//
// Both backends produce the exact same (time, seq) total order — pop
// sequences are byte-identical by contract, proven by tests/timing_wheel_test
// and the schedfuzz wheel-vs-heap differential leg — so the backend is a pure
// performance knob, never a behavior change.
//
// Hot-path design (this queue is the simulator's innermost loop):
//   - Callbacks are stored in a move-only small-buffer type (SmallFn) with 48
//     bytes of inline storage, so the machine's dispatch/tick/completion
//     lambdas never touch the heap (std::function spills anything over 16
//     bytes).
//   - Every event's callback + cancellation state lives in a pooled node
//     recycled through a freelist; handles carry a generation number instead
//     of a shared_ptr, so handles are trivially copyable, scheduling
//     allocates nothing in steady state, and a copied handle can never
//     misreport a fired event as pending.
//   - The heap holds only 32-byte POD keys {when, seq, node, gen}; sift
//     moves never touch the callback buffers, which stay put in their nodes
//     until popped. The wheel links the nodes themselves into per-slot
//     lists, so it allocates nothing beyond the same node pool.
//   - The heap is 4-ary: ~half the depth of a binary heap, and the four
//     children share a cache line worth of (when, seq) keys.
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/time.h"

namespace schedbattle {

// Event-queue backend selector. kDefault resolves to the process-wide
// default at queue construction (see SetDefaultQueueKind below); the other
// two pin a backend regardless of environment.
enum class QueueKind : uint8_t {
  kDefault,
  kHeap,
  kWheel,
};

// Process-wide default backend, initialized from the SCHEDBATTLE_QUEUE
// environment variable ("wheel" selects the timing wheel; "heap", anything
// else, or the variable being unset keeps the heap). Bench binaries and the
// CLI override it from --queue; a spec that sets ExperimentSpec::queue
// explicitly wins over both. Queues resolve the default once, at
// construction — the same contract as SetTicklessEnabled.
void SetDefaultQueueKind(QueueKind kind);
QueueKind DefaultQueueKind();  // never returns kDefault

// kDefault -> DefaultQueueKind(); kHeap/kWheel pass through.
QueueKind ResolveQueueKind(QueueKind kind);

// "heap" / "wheel". Returns false (out untouched) for anything else.
bool ParseQueueKind(std::string_view name, QueueKind* out);
const char* QueueKindName(QueueKind kind);

// Move-only void() callable with inline storage for captures up to
// kInlineSize bytes; larger callables fall back to one heap allocation.
class SmallFn {
 public:
  static constexpr size_t kInlineSize = 48;

  SmallFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, SmallFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    if constexpr (sizeof(D) <= kInlineSize && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Destroy();
      MoveFrom(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { Destroy(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *dst from *src and destroys *src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { std::launder(reinterpret_cast<D*>(p))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (**reinterpret_cast<D**>(p))(); },
      [](void* dst, void* src) { *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src); },
      [](void* p) { delete *reinterpret_cast<D**>(p); },
  };

  void MoveFrom(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }
  void Destroy() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
};

using EventCallback = SmallFn;

class EventQueue;
class TimingWheel;

// Opaque handle to a scheduled event. Default-constructed handles are null.
// Trivially copyable: the (node, generation) pair identifies one scheduling,
// so copies all agree on whether the event is still pending — the queue
// tracks fired/cancelled state explicitly instead of inferring it from
// reference counts.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return node_ != nullptr; }

  // Forgets the referenced event without cancelling it.
  void Reset() { node_ = nullptr; }

 private:
  friend class EventQueue;
  friend class TimingWheel;
  struct Node;
  EventHandle(Node* node, uint64_t gen) : node_(node), gen_(gen) {}
  Node* node_ = nullptr;
  uint64_t gen_ = 0;
};

// Pooled event node: owns the callback from scheduling until the event fires
// (or is cancelled), plus the cancellation state. Lives in pool chunks owned
// by the queue; `gen` is bumped every time the node is handed out for a new
// event, so handles from an earlier life of the node fail the generation
// check. Defined here (not in event_queue.cc) because the timing wheel links
// nodes directly into its slot lists.
struct EventHandle::Node {
  enum State : uint8_t { kPending, kFired, kCancelled };
  SmallFn cb;
  uint64_t gen = 0;
  // Freelist link while pooled; intrusive slot-list link while the node sits
  // in a timing-wheel slot. A node is in exactly one of those places at a
  // time (the heap backend keeps its keys in a separate Entry array and uses
  // this only as the freelist link).
  Node* next_free = nullptr;
  EventQueue* owner = nullptr;  // the queue whose pool this node lives in
  // The (time, seq) key. The heap never reads these; the wheel's slot lists
  // are the nodes themselves, so the key must travel with the node.
  SimTime when = 0;
  uint64_t seq = 0;
  uint8_t state = kFired;
};

class EventQueue {
 public:
  // kDefault resolves against the process-wide default (SCHEDBATTLE_QUEUE /
  // SetDefaultQueueKind) once, here.
  explicit EventQueue(QueueKind kind = QueueKind::kDefault);
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // The resolved backend (kHeap or kWheel, never kDefault).
  QueueKind kind() const { return kind_; }

  // Schedules `cb` to run at absolute time `when`. `when` must not be in the
  // past relative to the last popped event.
  EventHandle Schedule(SimTime when, EventCallback cb);

  // Like Schedule, but returns no handle and takes no cancellation node —
  // the fast path for fire-and-forget events (reschedule requests, sleep
  // wakeups, one-shot experiment triggers), which dominate the event stream.
  // Posted events cannot be cancelled.
  void Post(SimTime when, EventCallback cb);

  // Variants with a caller-supplied sequence number. The sharded engine owns
  // one global (time, seq) order across all of its per-shard queues; it hands
  // every queue seqs from a single counter so a k-way merge of the queues
  // reproduces exactly the order one big queue would have produced.
  EventHandle ScheduleWithSeq(SimTime when, uint64_t seq, EventCallback cb);
  void PostWithSeq(SimTime when, uint64_t seq, EventCallback cb);

  // Cancels a previously scheduled event. Safe to call with a null handle or
  // after the event has fired (both are no-ops, including through handle
  // copies). Returns true if the event was pending and is now cancelled.
  bool Cancel(EventHandle& handle);

  // Handle-routed cancel: resolves the owning queue through the handle's
  // node, so callers holding events from several queues (the sharded engine)
  // need not remember which queue scheduled what. Null/stale handles are
  // no-ops, exactly as with Cancel.
  static bool CancelVia(EventHandle& handle);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event, or kTimeNever if empty.
  SimTime NextTime();

  // Key of the earliest pending event, for k-way merges across queues.
  // Returns false if the queue is empty.
  bool PeekKey(SimTime* when, uint64_t* seq);

  // Pops and returns the earliest pending event's callback, setting `when` to
  // its scheduled time. Requires !empty().
  EventCallback PopNext(SimTime* when);

  // Pops the earliest pending event only if its time is strictly before
  // `bound`; used by window-bounded shard drains. Returns false (and pops
  // nothing) otherwise.
  bool PopNextBefore(SimTime bound, SimTime* when, EventCallback* cb);

  // Drops all pending events.
  void Clear();

 private:
  friend class TimingWheel;  // recycles skimmed tombstones into the pool

  using Node = EventHandle::Node;

  // Heap key. Trivially copyable and 32 bytes, so sift moves are cheap; the
  // callback lives in *node and is only touched once, when the event pops.
  struct Entry {
    SimTime when;
    uint64_t seq;
    Node* node;
    uint64_t node_gen;  // generation the node had when this entry was made
  };

  static bool Before(const Entry& a, const Entry& b) {
    if (a.when != b.when) {
      return a.when < b.when;
    }
    return a.seq < b.seq;
  }

  // A tombstone: its node was cancelled (or already recycled for a newer
  // event, which implies this scheduling is long finished).
  bool Stale(const Entry& e) const;

  Node* AllocNode(EventCallback cb);
  void Recycle(Node* node, uint8_t state);

  void Push(Entry entry);
  Entry PopRoot();

  // Discards cancelled entries at the top of the heap.
  void SkimCancelled();

  QueueKind kind_;
  std::vector<Entry> heap_;  // 4-ary min-heap on (when, seq); kHeap only
  std::unique_ptr<TimingWheel> wheel_;  // kWheel only
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;

  // Event-node pool: chunk-allocated, recycled through a freelist.
  std::vector<std::unique_ptr<Node[]>> node_chunks_;
  Node* free_nodes_ = nullptr;
};

}  // namespace schedbattle

#endif  // SRC_SIM_EVENT_QUEUE_H_
