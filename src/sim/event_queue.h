// Cancellable discrete-event queue.
//
// The queue orders events by (time, sequence number): ties in simulated time
// fire in insertion order, which makes every simulation fully deterministic.
// Events can be cancelled in O(1) through the handle returned at scheduling
// time; cancelled entries are lazily discarded when they reach the top of the
// heap (the usual "tombstone" technique, which keeps Cancel cheap even with
// hundreds of thousands of pending timers).
#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/sim/time.h"

namespace schedbattle {

using EventCallback = std::function<void()>;

// Opaque handle to a scheduled event. Default-constructed handles are null.
class EventHandle {
 public:
  EventHandle() = default;

  bool valid() const { return node_ != nullptr; }

  // Forgets the referenced event without cancelling it.
  void Reset() { node_.reset(); }

 private:
  friend class EventQueue;
  struct Node {
    bool cancelled = false;
  };
  explicit EventHandle(std::shared_ptr<Node> node) : node_(std::move(node)) {}
  std::shared_ptr<Node> node_;
};

class EventQueue {
 public:
  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `cb` to run at absolute time `when`. `when` must not be in the
  // past relative to the last popped event.
  EventHandle Schedule(SimTime when, EventCallback cb);

  // Like Schedule, but returns no handle and allocates no cancellation
  // control block — the fast path for fire-and-forget events (reschedule
  // requests, sleep wakeups, one-shot experiment triggers), which dominate
  // the event stream. Posted events cannot be cancelled.
  void Post(SimTime when, EventCallback cb);

  // Cancels a previously scheduled event. Safe to call with a null handle or
  // after the event has fired (both are no-ops). Returns true if the event
  // was pending and is now cancelled.
  bool Cancel(EventHandle& handle);

  bool empty() const { return live_count_ == 0; }
  size_t size() const { return live_count_; }

  // Time of the earliest pending event, or kTimeNever if empty.
  SimTime NextTime();

  // Pops and returns the earliest pending event's callback, setting `when` to
  // its scheduled time. Requires !empty().
  EventCallback PopNext(SimTime* when);

  // Drops all pending events.
  void Clear();

 private:
  struct Entry {
    SimTime when;
    uint64_t seq;
    EventCallback cb;
    std::shared_ptr<EventHandle::Node> node;  // null for Post()ed events
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  // Discards cancelled entries at the top of the heap.
  void SkimCancelled();

  std::vector<Entry> heap_;
  uint64_t next_seq_ = 0;
  size_t live_count_ = 0;
};

}  // namespace schedbattle

#endif  // SRC_SIM_EVENT_QUEUE_H_
