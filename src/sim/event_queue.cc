#include "src/sim/event_queue.h"

#include <cassert>

namespace schedbattle {

// Pooled event node: owns the callback from scheduling until the event fires
// (or is cancelled), plus the cancellation state. Lives in pool chunks owned
// by the queue; `gen` is bumped every time the node is handed out for a new
// event, so handles from an earlier life of the node fail the generation
// check.
struct EventHandle::Node {
  enum State : uint8_t { kPending, kFired, kCancelled };
  SmallFn cb;
  uint64_t gen = 0;
  Node* next_free = nullptr;
  EventQueue* owner = nullptr;  // the queue whose pool this node lives in
  uint8_t state = kFired;
};

namespace {
constexpr size_t kNodesPerChunk = 256;
constexpr size_t kHeapArity = 4;
}  // namespace

EventQueue::EventQueue() = default;

EventQueue::~EventQueue() = default;

EventQueue::Node* EventQueue::AllocNode(EventCallback cb) {
  if (free_nodes_ == nullptr) {
    node_chunks_.push_back(std::make_unique<Node[]>(kNodesPerChunk));
    Node* chunk = node_chunks_.back().get();
    for (size_t i = 0; i < kNodesPerChunk; ++i) {
      chunk[i].owner = this;
      chunk[i].next_free = free_nodes_;
      free_nodes_ = &chunk[i];
    }
  }
  Node* node = free_nodes_;
  free_nodes_ = node->next_free;
  ++node->gen;
  node->state = Node::kPending;
  node->cb = std::move(cb);
  return node;
}

void EventQueue::Recycle(Node* node, uint8_t state) {
  node->state = state;
  node->next_free = free_nodes_;
  free_nodes_ = node;
}

bool EventQueue::Stale(const Entry& e) const {
  return e.node->gen != e.node_gen || e.node->state != Node::kPending;
}

void EventQueue::Push(Entry entry) {
  heap_.push_back(entry);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) / kHeapArity;
    if (!Before(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

EventQueue::Entry EventQueue::PopRoot() {
  assert(!heap_.empty());
  const Entry out = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the hole at the root down, then drop `last` into it.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      size_t first_child = i * kHeapArity + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      size_t end = first_child + kHeapArity < n ? first_child + kHeapArity : n;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!Before(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return out;
}

EventHandle EventQueue::Schedule(SimTime when, EventCallback cb) {
  return ScheduleWithSeq(when, next_seq_++, std::move(cb));
}

void EventQueue::Post(SimTime when, EventCallback cb) {
  PostWithSeq(when, next_seq_++, std::move(cb));
}

EventHandle EventQueue::ScheduleWithSeq(SimTime when, uint64_t seq, EventCallback cb) {
  Node* node = AllocNode(std::move(cb));
  Push(Entry{when, seq, node, node->gen});
  ++live_count_;
  return EventHandle(node, node->gen);
}

void EventQueue::PostWithSeq(SimTime when, uint64_t seq, EventCallback cb) {
  // Same path as Schedule minus the handle: a posted event's node simply has
  // no handle referencing it, so it can never be cancelled.
  Node* node = AllocNode(std::move(cb));
  Push(Entry{when, seq, node, node->gen});
  ++live_count_;
}

bool EventQueue::Cancel(EventHandle& handle) {
  Node* node = handle.node_;
  if (node == nullptr) {
    return false;
  }
  const bool pending =
      node->gen == handle.gen_ && node->state == Node::kPending;
  handle.Reset();
  if (!pending) {
    return false;
  }
  assert(live_count_ > 0);
  --live_count_;
  // Destroy the callback eagerly (it may own resources) and recycle. The
  // heap entry stays behind as a tombstone; that is safe because Stale()
  // then sees kCancelled (or a newer generation after reuse).
  node->cb = SmallFn();
  Recycle(node, Node::kCancelled);
  return true;
}

bool EventQueue::CancelVia(EventHandle& handle) {
  Node* node = handle.node_;
  if (node == nullptr) {
    return false;
  }
  // The owner pointer is set once when the node's pool chunk is created and
  // stays valid for the queue's whole lifetime, so even stale handles (fired,
  // cancelled, or recycled nodes) route to a live queue.
  return node->owner->Cancel(handle);
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && Stale(heap_.front())) {
    PopRoot();
  }
}

SimTime EventQueue::NextTime() {
  SkimCancelled();
  return heap_.empty() ? kTimeNever : heap_.front().when;
}

bool EventQueue::PeekKey(SimTime* when, uint64_t* seq) {
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  *when = heap_.front().when;
  *seq = heap_.front().seq;
  return true;
}

bool EventQueue::PopNextBefore(SimTime bound, SimTime* when, EventCallback* cb) {
  SkimCancelled();
  if (heap_.empty() || heap_.front().when >= bound) {
    return false;
  }
  const Entry entry = PopRoot();
  *cb = std::move(entry.node->cb);
  Recycle(entry.node, Node::kFired);
  assert(live_count_ > 0);
  --live_count_;
  *when = entry.when;
  return true;
}

EventCallback EventQueue::PopNext(SimTime* when) {
  SkimCancelled();
  assert(!heap_.empty());
  const Entry entry = PopRoot();
  EventCallback cb = std::move(entry.node->cb);
  Recycle(entry.node, Node::kFired);
  assert(live_count_ > 0);
  --live_count_;
  *when = entry.when;
  return cb;
}

void EventQueue::Clear() {
  for (const Entry& e : heap_) {
    if (!Stale(e)) {
      e.node->cb = SmallFn();
      Recycle(e.node, Node::kCancelled);
    }
  }
  heap_.clear();
  live_count_ = 0;
}

}  // namespace schedbattle
