#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>

namespace schedbattle {

EventHandle EventQueue::Schedule(SimTime when, EventCallback cb) {
  auto node = std::make_shared<EventHandle::Node>();
  heap_.push_back(Entry{when, next_seq_++, std::move(cb), node});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
  return EventHandle(std::move(node));
}

void EventQueue::Post(SimTime when, EventCallback cb) {
  heap_.push_back(Entry{when, next_seq_++, std::move(cb), nullptr});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  ++live_count_;
}

bool EventQueue::Cancel(EventHandle& handle) {
  if (!handle.node_ || handle.node_->cancelled) {
    handle.Reset();
    return false;
  }
  // If the node is only referenced by the handle, the event already fired
  // (PopNext drops the queue's reference when delivering).
  const bool pending = handle.node_.use_count() > 1;
  if (pending) {
    handle.node_->cancelled = true;
    assert(live_count_ > 0);
    --live_count_;
  }
  handle.Reset();
  return pending;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && heap_.front().node != nullptr && heap_.front().node->cancelled) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

SimTime EventQueue::NextTime() {
  SkimCancelled();
  return heap_.empty() ? kTimeNever : heap_.front().when;
}

EventCallback EventQueue::PopNext(SimTime* when) {
  SkimCancelled();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  *when = entry.when;
  assert(live_count_ > 0);
  --live_count_;
  return std::move(entry.cb);
}

void EventQueue::Clear() {
  heap_.clear();
  live_count_ = 0;
}

}  // namespace schedbattle
