#include "src/sim/event_queue.h"

#include <cassert>
#include <cstdlib>

#include "src/sim/timing_wheel.h"

namespace schedbattle {

namespace {
constexpr size_t kNodesPerChunk = 256;
constexpr size_t kHeapArity = 4;

QueueKind InitQueueKindFromEnv() {
  const char* value = std::getenv("SCHEDBATTLE_QUEUE");
  if (value != nullptr && std::string_view(value) == "wheel") {
    return QueueKind::kWheel;
  }
  return QueueKind::kHeap;
}

QueueKind& QueueKindFlag() {
  // Lazily initialized from the environment on first use, so a test or a
  // bench main() can override it before any queue is constructed.
  static QueueKind kind = InitQueueKindFromEnv();
  return kind;
}
}  // namespace

void SetDefaultQueueKind(QueueKind kind) {
  QueueKindFlag() = kind == QueueKind::kDefault ? InitQueueKindFromEnv() : kind;
}

QueueKind DefaultQueueKind() { return QueueKindFlag(); }

QueueKind ResolveQueueKind(QueueKind kind) {
  return kind == QueueKind::kDefault ? DefaultQueueKind() : kind;
}

bool ParseQueueKind(std::string_view name, QueueKind* out) {
  if (name == "heap") {
    *out = QueueKind::kHeap;
    return true;
  }
  if (name == "wheel") {
    *out = QueueKind::kWheel;
    return true;
  }
  return false;
}

const char* QueueKindName(QueueKind kind) {
  switch (kind) {
    case QueueKind::kDefault:
      return "default";
    case QueueKind::kHeap:
      return "heap";
    case QueueKind::kWheel:
      return "wheel";
  }
  return "?";
}

EventQueue::EventQueue(QueueKind kind) : kind_(ResolveQueueKind(kind)) {
  if (kind_ == QueueKind::kWheel) {
    wheel_ = std::make_unique<TimingWheel>(this);
  }
}

EventQueue::~EventQueue() = default;

EventQueue::Node* EventQueue::AllocNode(EventCallback cb) {
  if (free_nodes_ == nullptr) {
    node_chunks_.push_back(std::make_unique<Node[]>(kNodesPerChunk));
    Node* chunk = node_chunks_.back().get();
    for (size_t i = 0; i < kNodesPerChunk; ++i) {
      chunk[i].owner = this;
      chunk[i].next_free = free_nodes_;
      free_nodes_ = &chunk[i];
    }
  }
  Node* node = free_nodes_;
  free_nodes_ = node->next_free;
  ++node->gen;
  node->state = Node::kPending;
  node->cb = std::move(cb);
  return node;
}

void EventQueue::Recycle(Node* node, uint8_t state) {
  node->state = state;
  node->next_free = free_nodes_;
  free_nodes_ = node;
}

bool EventQueue::Stale(const Entry& e) const {
  return e.node->gen != e.node_gen || e.node->state != Node::kPending;
}

void EventQueue::Push(Entry entry) {
  heap_.push_back(entry);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    size_t parent = (i - 1) / kHeapArity;
    if (!Before(entry, heap_[parent])) {
      break;
    }
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

EventQueue::Entry EventQueue::PopRoot() {
  assert(!heap_.empty());
  const Entry out = heap_.front();
  const Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    // Sift the hole at the root down, then drop `last` into it.
    size_t i = 0;
    const size_t n = heap_.size();
    for (;;) {
      size_t first_child = i * kHeapArity + 1;
      if (first_child >= n) {
        break;
      }
      size_t best = first_child;
      size_t end = first_child + kHeapArity < n ? first_child + kHeapArity : n;
      for (size_t c = first_child + 1; c < end; ++c) {
        if (Before(heap_[c], heap_[best])) {
          best = c;
        }
      }
      if (!Before(heap_[best], last)) {
        break;
      }
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = last;
  }
  return out;
}

EventHandle EventQueue::Schedule(SimTime when, EventCallback cb) {
  return ScheduleWithSeq(when, next_seq_++, std::move(cb));
}

void EventQueue::Post(SimTime when, EventCallback cb) {
  PostWithSeq(when, next_seq_++, std::move(cb));
}

EventHandle EventQueue::ScheduleWithSeq(SimTime when, uint64_t seq, EventCallback cb) {
  Node* node = AllocNode(std::move(cb));
  if (wheel_ != nullptr) {
    node->when = when;
    node->seq = seq;
    wheel_->Insert(node);
  } else {
    Push(Entry{when, seq, node, node->gen});
  }
  ++live_count_;
  return EventHandle(node, node->gen);
}

void EventQueue::PostWithSeq(SimTime when, uint64_t seq, EventCallback cb) {
  // Same path as Schedule minus the handle: a posted event's node simply has
  // no handle referencing it, so it can never be cancelled.
  Node* node = AllocNode(std::move(cb));
  if (wheel_ != nullptr) {
    node->when = when;
    node->seq = seq;
    wheel_->Insert(node);
  } else {
    Push(Entry{when, seq, node, node->gen});
  }
  ++live_count_;
}

bool EventQueue::Cancel(EventHandle& handle) {
  Node* node = handle.node_;
  if (node == nullptr) {
    return false;
  }
  const bool pending =
      node->gen == handle.gen_ && node->state == Node::kPending;
  handle.Reset();
  if (!pending) {
    return false;
  }
  assert(live_count_ > 0);
  --live_count_;
  // Destroy the callback eagerly (it may own resources) and tombstone. The
  // heap recycles the node immediately — its Entry carries the generation,
  // so a stale entry is detected even after the node is reused. The wheel's
  // slot lists ARE the nodes, so there the node stays linked (and out of the
  // freelist) until a pop, cascade, or slot-reuse walk recycles it.
  node->cb = SmallFn();
  if (wheel_ != nullptr) {
    node->state = Node::kCancelled;
    wheel_->OnCancel(node);
  } else {
    Recycle(node, Node::kCancelled);
  }
  return true;
}

bool EventQueue::CancelVia(EventHandle& handle) {
  Node* node = handle.node_;
  if (node == nullptr) {
    return false;
  }
  // The owner pointer is set once when the node's pool chunk is created and
  // stays valid for the queue's whole lifetime, so even stale handles (fired,
  // cancelled, or recycled nodes) route to a live queue.
  return node->owner->Cancel(handle);
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && Stale(heap_.front())) {
    PopRoot();
  }
}

SimTime EventQueue::NextTime() {
  if (wheel_ != nullptr) {
    SimTime when;
    uint64_t seq;
    return wheel_->PeekKey(&when, &seq) ? when : kTimeNever;
  }
  SkimCancelled();
  return heap_.empty() ? kTimeNever : heap_.front().when;
}

bool EventQueue::PeekKey(SimTime* when, uint64_t* seq) {
  if (wheel_ != nullptr) {
    return wheel_->PeekKey(when, seq);
  }
  SkimCancelled();
  if (heap_.empty()) {
    return false;
  }
  *when = heap_.front().when;
  *seq = heap_.front().seq;
  return true;
}

bool EventQueue::PopNextBefore(SimTime bound, SimTime* when, EventCallback* cb) {
  if (wheel_ != nullptr) {
    SimTime next;
    uint64_t seq;
    if (!wheel_->PeekKey(&next, &seq) || next >= bound) {
      return false;
    }
    Node* node = wheel_->PopMin();
    *when = node->when;
    *cb = std::move(node->cb);
    Recycle(node, Node::kFired);
    assert(live_count_ > 0);
    --live_count_;
    return true;
  }
  SkimCancelled();
  if (heap_.empty() || heap_.front().when >= bound) {
    return false;
  }
  const Entry entry = PopRoot();
  *cb = std::move(entry.node->cb);
  Recycle(entry.node, Node::kFired);
  assert(live_count_ > 0);
  --live_count_;
  *when = entry.when;
  return true;
}

EventCallback EventQueue::PopNext(SimTime* when) {
  if (wheel_ != nullptr) {
    Node* node = wheel_->PopMin();
    assert(node != nullptr);
    *when = node->when;
    EventCallback cb = std::move(node->cb);
    Recycle(node, Node::kFired);
    assert(live_count_ > 0);
    --live_count_;
    return cb;
  }
  SkimCancelled();
  assert(!heap_.empty());
  const Entry entry = PopRoot();
  EventCallback cb = std::move(entry.node->cb);
  Recycle(entry.node, Node::kFired);
  assert(live_count_ > 0);
  --live_count_;
  *when = entry.when;
  return cb;
}

void EventQueue::Clear() {
  if (wheel_ != nullptr) {
    wheel_->Clear();
    live_count_ = 0;
    return;
  }
  for (const Entry& e : heap_) {
    if (!Stale(e)) {
      e.node->cb = SmallFn();
      Recycle(e.node, Node::kCancelled);
    }
  }
  heap_.clear();
  live_count_ = 0;
}

}  // namespace schedbattle
