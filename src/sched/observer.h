// Scheduling-event observer interface and the observer bus.
//
// The simulator's observability layer: a Machine broadcasts every scheduling
// event — lifecycle events (dispatch, deschedule, wake, migrate, fork) and
// *decision probes* that carry the provenance of a scheduling decision (why
// a core was picked, what a balance pass saw and moved, whether a wakeup
// preemption check fired). Multiple observers (trace, stats registry,
// visualization) attach simultaneously through the ObserverBus.
//
// All callbacks are invoked synchronously at the simulated instant the event
// happens; observers must not mutate machine state from a callback.
#ifndef SRC_SCHED_OBSERVER_H_
#define SRC_SCHED_OBSERVER_H_

#include <cstdint>
#include <vector>

#include "src/sched/types.h"
#include "src/sim/time.h"

namespace schedbattle {

class SimThread;

// Why a placement decision (SelectTaskRq) chose the core it chose.
enum class PickReason : uint8_t {
  kPinned,          // affinity mask names a single core
  kPrevAffine,      // cache-affine: kept on the previous core
  kWakerPull,       // placed on (or chosen relative to) the waker's core
  kIdleSibling,     // idle core found in the target's LLC
  kWakeWideSpread,  // CFS wake_wide detected 1-to-N; spread to idlest
  kIdlest,          // slow path: idlest-group descent over the hierarchy
  kPriorityFit,     // ULE: lowest-load core where the thread runs immediately
  kLowestLoad,      // fallback: least-loaded allowed core
};
inline constexpr int kNumPickReasons = 8;
const char* PickReasonName(PickReason reason);

// Provenance of one SelectTaskRq decision.
//
// The feature block (chosen_rq .. idle_mask) is the per-decision machine
// state snapshot schedscope exports as a training-ready dataset: the inputs
// a learned placement policy would see. It is filled only when something is
// consuming decisions (Machine::observing_decisions()), so the detached hot
// path pays nothing for it.
struct PickCpuDecision {
  ThreadId thread = kInvalidThread;
  CoreId origin = kInvalidCore;  // waker/forker core (or last core)
  CoreId prev = kInvalidCore;    // thread's last_ran_cpu at decision time
  CoreId chosen = kInvalidCore;
  EnqueueKind kind = EnqueueKind::kWakeup;
  PickReason reason = PickReason::kLowestLoad;
  int cores_scanned = 0;  // cores examined while deciding
  bool affine_hit = false;  // chosen == prev (cache-warm placement)

  // ---- feature vector (observer-attached runs only) ----
  int chosen_rq = -1;  // runnable count on the chosen core, post-decision
  int prev_rq = -1;    // runnable count on the previous core (-1: no prev)
  // Scheduler-specific placement key: CFS = the entity's vruntime (ns-scale
  // weighted runtime), ULE = the interactivity penalty (0..100). -1 when the
  // scheduler has no key for the thread yet (first fork).
  int64_t sched_key = -1;
  uint64_t idle_mask = 0;  // machine idle-core bitmask at decision time
};

// One load-balancing pass: a periodic rebalance, a newidle pull, or an idle
// steal. Emitted per pull attempt (a selected source core), including
// attempts that moved nothing (steal failure provenance).
struct BalancePassRecord {
  enum class Kind : uint8_t { kPeriodic, kIdlePull, kIdleSteal };
  Kind kind = Kind::kPeriodic;
  // TopoLevel index of the balanced domain (CFS); -1 for ULE's flat global
  // periodic balance.
  int level = -1;
  CoreId src = kInvalidCore;  // busiest / donor core
  CoreId dst = kInvalidCore;  // pulling / receiver core
  double src_load = 0.0;      // scheduler's load metric at attempt time
  double dst_load = 0.0;
  // Gap between the compared loads as a percentage of the busier side.
  double imbalance_pct = 0.0;
  int threads_moved = 0;
};
const char* BalanceKindName(BalancePassRecord::Kind kind);

// One wakeup-preemption check (granularity / priority test) on a busy core.
struct PreemptDecision {
  ThreadId preemptor = kInvalidThread;  // the woken thread
  ThreadId victim = kInvalidThread;     // the core's current thread
  CoreId core = kInvalidCore;
  bool fired = false;  // the check requested a reschedule
  // Decision margin, positive when the check fires: for CFS the woken
  // entity's vruntime lead minus the weighted wakeup granularity (ns-scale
  // vruntime units); for ULE the priority delta curr - woken.
  int64_t margin = 0;
};

// Observer for scheduling events (tracing, stats, visualization).
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;

  // ---- lifecycle events ----
  virtual void OnDispatch(SimTime /*now*/, CoreId /*core*/, const SimThread& /*thread*/) {}
  // reason: 'P' preempted, 'B' blocked, 'X' exited, 'Y' yielded.
  virtual void OnDeschedule(SimTime /*now*/, CoreId /*core*/, const SimThread& /*thread*/,
                            char /*reason*/) {}
  virtual void OnWake(SimTime /*now*/, const SimThread& /*thread*/, CoreId /*target*/) {}
  virtual void OnMigrate(SimTime /*now*/, const SimThread& /*thread*/, CoreId /*from*/,
                         CoreId /*to*/) {}
  virtual void OnFork(SimTime /*now*/, const SimThread& /*thread*/, CoreId /*target*/) {}

  // ---- decision probes ----
  virtual void OnPickCpu(SimTime /*now*/, const PickCpuDecision& /*decision*/) {}
  virtual void OnBalancePass(SimTime /*now*/, const BalancePassRecord& /*pass*/) {}
  virtual void OnPreempt(SimTime /*now*/, const PreemptDecision& /*decision*/) {}
};

// Fan-out multiplexer: forwards every event to all attached observers, in
// attach order. Replaces the Machine's former single-observer slot — a
// second attach is additive, not a silent overwrite. Attaching the same
// observer twice is idempotent (events are never delivered twice).
class ObserverBus final : public MachineObserver {
 public:
  void Add(MachineObserver* observer);
  // No-op if the observer is not attached.
  void Remove(MachineObserver* observer);
  bool Contains(const MachineObserver* observer) const;
  bool empty() const { return observers_.empty(); }
  int size() const { return static_cast<int>(observers_.size()); }
  // Attached observers in attach order (metrics iterate these to find
  // sibling observers, e.g. SchedStats pulling invariant-monitor counts).
  const std::vector<MachineObserver*>& items() const { return observers_; }

  // The fan-out loops live in the header so a Machine's emission sites
  // compile down to the bare per-observer indirect calls (the bus sits on
  // every scheduling event's hot path).
  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override {
    for (MachineObserver* o : observers_) {
      o->OnDispatch(now, core, thread);
    }
  }
  void OnDeschedule(SimTime now, CoreId core, const SimThread& thread, char reason) override {
    for (MachineObserver* o : observers_) {
      o->OnDeschedule(now, core, thread, reason);
    }
  }
  void OnWake(SimTime now, const SimThread& thread, CoreId target) override {
    for (MachineObserver* o : observers_) {
      o->OnWake(now, thread, target);
    }
  }
  void OnMigrate(SimTime now, const SimThread& thread, CoreId from, CoreId to) override {
    for (MachineObserver* o : observers_) {
      o->OnMigrate(now, thread, from, to);
    }
  }
  void OnFork(SimTime now, const SimThread& thread, CoreId target) override {
    for (MachineObserver* o : observers_) {
      o->OnFork(now, thread, target);
    }
  }
  void OnPickCpu(SimTime now, const PickCpuDecision& decision) override {
    for (MachineObserver* o : observers_) {
      o->OnPickCpu(now, decision);
    }
  }
  void OnBalancePass(SimTime now, const BalancePassRecord& pass) override {
    for (MachineObserver* o : observers_) {
      o->OnBalancePass(now, pass);
    }
  }
  void OnPreempt(SimTime now, const PreemptDecision& decision) override {
    for (MachineObserver* o : observers_) {
      o->OnPreempt(now, decision);
    }
  }

 private:
  std::vector<MachineObserver*> observers_;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_OBSERVER_H_
