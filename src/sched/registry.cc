#include "src/sched/registry.h"

#include <cassert>

#include "src/cfs/cfs_sched.h"
#include "src/core/experiment.h"
#include "src/eevdf/eevdf_sched.h"
#include "src/mlfq/mlfq_sched.h"
#include "src/ule/ule_sched.h"

namespace schedbattle {

std::string_view SchedName(SchedKind kind) {
  switch (kind) {
    case SchedKind::kCfs:
      return "CFS";
    case SchedKind::kUle:
      return "ULE";
    case SchedKind::kMlfq:
      return "MLFQ";
    case SchedKind::kEevdf:
      return "EEVDF";
  }
  return "?";
}

std::string_view SchedId(SchedKind kind) {
  switch (kind) {
    case SchedKind::kCfs:
      return "cfs";
    case SchedKind::kUle:
      return "ule";
    case SchedKind::kMlfq:
      return "mlfq";
    case SchedKind::kEevdf:
      return "eevdf";
  }
  return "?";
}

bool ParseSchedKind(std::string_view id, SchedKind* out) {
  for (const SchedulerClass& sc : SchedulerRegistry::Instance().classes()) {
    if (id == sc.id) {
      *out = sc.kind;
      return true;
    }
  }
  return false;
}

const SchedulerRegistry& SchedulerRegistry::Instance() {
  // Explicit construction (no static self-registration): immune to linker
  // dead-stripping and initialization-order surprises.
  static const SchedulerRegistry registry;
  return registry;
}

const SchedulerClass* SchedulerRegistry::Find(std::string_view id) const {
  for (const SchedulerClass& sc : classes_) {
    if (id == sc.id) {
      return &sc;
    }
  }
  return nullptr;
}

const SchedulerClass& SchedulerRegistry::Of(SchedKind kind) const {
  for (const SchedulerClass& sc : classes_) {
    if (sc.kind == kind) {
      return sc;
    }
  }
  assert(false && "unregistered SchedKind");
  return classes_.front();
}

std::vector<SchedKind> SchedulerRegistry::AllKinds() const {
  std::vector<SchedKind> kinds;
  kinds.reserve(classes_.size());
  for (const SchedulerClass& sc : classes_) {
    kinds.push_back(sc.kind);
  }
  return kinds;
}

std::string SchedulerRegistry::IdList() const {
  std::string ids;
  for (const SchedulerClass& sc : classes_) {
    if (!ids.empty()) {
      ids += ", ";
    }
    ids += sc.id;
  }
  return ids;
}

SchedulerRegistry::SchedulerRegistry() {
  {
    SchedulerClass sc;
    sc.kind = SchedKind::kCfs;
    sc.id = "cfs";
    sc.display = "CFS";
    sc.summary =
        "Linux Completely Fair Scheduler: weighted fair queuing by vruntime, "
        "hierarchical load balancing, cgroup group scheduling";
    sc.tunables = {
        {"sched_latency", "24ms", "target period for running every queued thread once"},
        {"min_granularity", "3ms", "floor on a thread's slice within the period"},
        {"wakeup_granularity", "4ms", "vruntime deficit required to preempt on wakeup"},
        {"balance_period", "4ms", "periodic hierarchical load-balance cadence"},
        {"start_debit", "true", "fork starts one slice behind (no instant starvation)"},
        {"sleeper_credit", "true", "waking threads get up to sched_latency/2 credit"},
        {"group_sched", "true", "cgroup-style hierarchical shares"},
    };
    sc.has_vruntime = true;
    sc.make = [](const ExperimentConfig& cfg) -> std::unique_ptr<Scheduler> {
      return std::make_unique<CfsScheduler>(cfg.cfs);
    };
    classes_.push_back(std::move(sc));
  }
  {
    SchedulerClass sc;
    sc.kind = SchedKind::kUle;
    sc.id = "ule";
    sc.display = "ULE";
    sc.summary =
        "FreeBSD ULE: interactivity scoring with absolute interactive "
        "priority, per-core runqueues, periodic + idle-steal balancing";
    sc.tunables = {
        {"slice_ticks", "10", "timeslice in stathz ticks, divided by core load"},
        {"tick", "1/127s", "stathz accounting tick"},
        {"balance_min/max", "500ms/1500ms", "periodic balancer period bounds (core 0)"},
        {"steal_thresh", "2", "minimum donor load for idle stealing"},
        {"affinity_window", "1ms", "per-topology-level cache-affinity window"},
        {"wakeup_preemption", "false", "full preemption (off in stock ULE)"},
    };
    sc.has_interactivity = true;
    sc.make = [](const ExperimentConfig& cfg) -> std::unique_ptr<Scheduler> {
      return std::make_unique<UleScheduler>(cfg.ule);
    };
    classes_.push_back(std::move(sc));
  }
  {
    SchedulerClass sc;
    sc.kind = SchedKind::kMlfq;
    sc.id = "mlfq";
    sc.display = "MLFQ";
    sc.summary =
        "Multi-level feedback queue: behaviour-learned priorities, per-level "
        "allotments with demotion, periodic boost; nice values ignored";
    sc.tunables = {
        {"num_levels", "8", "priority levels (0 = topmost)"},
        {"tick", "10ms", "accounting tick; quanta measured in ticks"},
        {"quantum_ticks", "1", "level-0 round-robin quantum, doubling per level"},
        {"allotment_quanta", "2", "quanta at a level before rule-4(a) demotion"},
        {"boost_period", "1s", "rule-5 move-everyone-to-top cadence"},
        {"wakeup_preemption", "true", "strictly better level preempts on wakeup"},
        {"steal_thresh", "2", "minimum donor load for idle stealing"},
    };
    sc.make = [](const ExperimentConfig& cfg) -> std::unique_ptr<Scheduler> {
      return std::make_unique<MlfqScheduler>(cfg.mlfq);
    };
    classes_.push_back(std::move(sc));
  }
  {
    SchedulerClass sc;
    sc.kind = SchedKind::kEevdf;
    sc.id = "eevdf";
    sc.display = "EEVDF";
    sc.summary =
        "Earliest eligible virtual deadline first (CFS's Linux 6.6 "
        "successor): lag-bounded fairness, deadline-bounded latency";
    sc.tunables = {
        {"tick", "1ms", "accounting tick (HZ=1000)"},
        {"base_slice", "3ms", "request size setting the virtual deadline"},
        {"wakeup_preemption", "true", "eligible earlier-deadline wakeup preempts"},
        {"steal_thresh", "2", "minimum donor load for idle stealing"},
    };
    sc.has_vruntime = true;
    sc.make = [](const ExperimentConfig& cfg) -> std::unique_ptr<Scheduler> {
      return std::make_unique<EevdfScheduler>(cfg.eevdf);
    };
    classes_.push_back(std::move(sc));
  }
}

}  // namespace schedbattle
