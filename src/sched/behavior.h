// Thread behaviour interface.
//
// A thread's workload is modelled by a ThreadBody. Whenever the thread is
// able to make progress (first dispatch, a compute segment finished, or it
// was woken after blocking), the Machine calls OnRun(), which performs any
// instantaneous bookkeeping (releasing a lock, writing to a pipe, recording a
// latency sample) and returns the next Step:
//
//   kCompute  - burn `duration` of CPU; OnRun is called again when done.
//               The segment may be preempted and resumed transparently.
//   kBlock    - the thread blocks voluntarily. The body (or a sync primitive
//               it used) is responsible for arranging a future Machine::Wake.
//   kYield    - give the CPU back to the scheduler, stay runnable.
//   kExit     - the thread terminates.
//
// All blocking synchronization (sleep, locks, pipes, barriers) is built on
// kBlock + Machine::Wake in src/workload/sync.h.
#ifndef SRC_SCHED_BEHAVIOR_H_
#define SRC_SCHED_BEHAVIOR_H_

#include "src/sim/time.h"

namespace schedbattle {

class Machine;
class SimThread;

struct Step {
  enum class Kind { kCompute, kBlock, kYield, kExit };

  Kind kind;
  SimDuration duration = 0;  // only for kCompute

  static Step Compute(SimDuration d) { return Step{Kind::kCompute, d}; }
  static Step Block() { return Step{Kind::kBlock, 0}; }
  static Step Yield() { return Step{Kind::kYield, 0}; }
  static Step Exit() { return Step{Kind::kExit, 0}; }
};

// Execution context handed to ThreadBody::OnRun.
class ThreadContext {
 public:
  ThreadContext(Machine* machine, SimThread* thread) : machine_(machine), thread_(thread) {}

  Machine& machine() const { return *machine_; }
  SimThread& thread() const { return *thread_; }
  SimTime now() const;

 private:
  Machine* machine_;
  SimThread* thread_;
};

class ThreadBody {
 public:
  virtual ~ThreadBody() = default;

  // Called each time the thread can make progress; returns the next step.
  virtual Step OnRun(ThreadContext& ctx) = 0;

  // True iff the next OnRun call is certain to return kCompute with a
  // positive *literal* duration, touching nothing outside this body's own
  // program state — no RNG draws, no sync primitives, no posts, no hooks.
  // The sharded engine uses this to decide whether a compute-completion
  // event is core-local (may fire inside a parallel window) or must go to
  // the global lane. Must be side-effect free, and conservative: the default
  // (false) is always correct, it only costs window parallelism.
  virtual bool NextStepIsPureCompute() const { return false; }
};

}  // namespace schedbattle

#endif  // SRC_SCHED_BEHAVIOR_H_
