#include "src/sched/core.h"

namespace schedbattle {
// Core is currently header-only; this file anchors the target in the build.
}  // namespace schedbattle
