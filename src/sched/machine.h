// Machine: the simulated multicore computer.
//
// The Machine owns the cores, the threads and the active scheduler, and
// implements everything the kernel does *around* the scheduler: dispatching,
// context switches, the periodic tick, thread fork/exit, voluntary blocking
// and wakeups, and the charging of simulated scheduler overhead to cores.
//
// Exactly one scheduler is active per machine — the experiment harness builds
// two identical machines (one with CFS, one with ULE) and runs the same
// workload on both, which is the simulator analogue of the paper's
// methodology (same kernel, swap the scheduler).
#ifndef SRC_SCHED_MACHINE_H_
#define SRC_SCHED_MACHINE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sched/core.h"
#include "src/sched/observer.h"
#include "src/sched/sched_class.h"
#include "src/sched/thread.h"
#include "src/sched/types.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"
#include "src/topo/topology.h"

namespace schedbattle {

struct MachineParams {
  // Cost of a context switch (charged to the incoming thread's core).
  SimDuration context_switch_cost = Microseconds(3);
  // Cache-refill cost a thread pays after being involuntarily preempted
  // mid-computation (the paper's motivation for CFS's wakeup-preemption
  // granularity: "frequent thread preemption ... may negatively impact
  // caches"). Added to the preempted thread's remaining work.
  SimDuration preemption_cache_penalty = Microseconds(8);
  // Deterministic seed for everything random inside the machine (ULE's
  // balancer period, workload RNG streams are split from this).
  uint64_t seed = 42;
};

// Categories of simulated scheduler overhead, for the paper's Section 6.3
// accounting ("13% of all CPU cycles spent on scanning cores").
enum class OverheadKind {
  kContextSwitch,
  kPickCpuScan,
  kLoadBalance,
  kWakePlacement,
};

struct MachineCounters {
  uint64_t context_switches = 0;
  uint64_t wakeup_preemptions = 0;  // preemptions caused by a wakeup
  uint64_t tick_preemptions = 0;    // timeslice-expiry preemptions
  uint64_t migrations = 0;          // balancer-driven thread migrations
  uint64_t wakeups = 0;
  uint64_t forks = 0;
  uint64_t exits = 0;
  uint64_t pickcpu_scans = 0;       // cores examined by wake placement
  uint64_t balance_invocations = 0;
  SimDuration overhead_ns[4] = {0, 0, 0, 0};

  SimDuration total_overhead() const {
    return overhead_ns[0] + overhead_ns[1] + overhead_ns[2] + overhead_ns[3];
  }
};

class Machine {
 public:
  Machine(SimEngine* engine, CpuTopology topology, std::unique_ptr<Scheduler> scheduler,
          MachineParams params = {});
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  SimEngine& engine() { return *engine_; }
  SimTime now() const { return engine_->now(); }
  const CpuTopology& topology() const { return topology_; }
  int num_cores() const { return topology_.num_cores(); }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const MachineParams& params() const { return params_; }
  Rng& rng() { return rng_; }
  MachineCounters& counters() { return counters_; }
  const MachineCounters& counters() const { return counters_; }

  Core& core(CoreId id) { return *cores_[id]; }
  const Core& core(CoreId id) const { return *cores_[id]; }

  // Bitmask of idle cores (bit c set iff core c runs no thread), maintained
  // incrementally on every dispatch/deschedule transition. Schedulers AND
  // this with topology group masks and affinity masks so wake placement and
  // steal-candidate selection are popcount/ctz instead of per-core scans.
  // Purely an implementation accelerator: the *modeled* scan costs charged to
  // cores are computed as if the scan had happened.
  uint64_t idle_mask() const { return idle_mask_; }

  // Starts per-core ticks and the scheduler's periodic machinery. Call once,
  // before (or at) the first thread start.
  void Boot();
  bool booted() const { return booted_; }

  // ---- thread lifecycle ----

  // Creates a thread (state kCreated). The machine owns it for its lifetime.
  SimThread* CreateThread(ThreadSpec spec);

  // Starts a thread: runs the fork path (TaskNew, SelectTaskRq, EnqueueTask,
  // preemption check). `parent` is the simulated forking thread or nullptr.
  void StartThread(SimThread* thread, SimThread* parent);

  // Convenience: CreateThread + StartThread.
  SimThread* Spawn(ThreadSpec spec, SimThread* parent);

  // Wakes a blocked thread. `waker_core` is the core performing the wakeup
  // (kInvalidCore for timer wakeups, which use the thread's last core).
  // Returns false (no-op) if the thread was not blocked.
  bool Wake(SimThread* thread, CoreId waker_core);

  // Changes a thread's affinity mask. If the thread is queued on a core it
  // can no longer run on, it is moved immediately (sched_setaffinity).
  void SetAffinity(SimThread* thread, const CpuMask& mask);

  // Changes a thread's nice value (setpriority): the scheduler reweights it
  // and a reschedule is requested where relevant.
  void SetNice(SimThread* thread, Nice nice);

  // ---- scheduler services ----

  // Requests a reschedule of `core` at the current time (after the current
  // event finishes). Idempotent.
  void SetNeedResched(CoreId core);

  // Charges `d` of simulated scheduler-work time to `core`: it is accounted
  // as overhead and, if a thread is running there, steals that much CPU from
  // it by pushing its completion later.
  void ChargeOverhead(CoreId core, SimDuration d, OverheadKind kind);

  // Accounting hook for balancers; updates thread->cpu and counters. The
  // caller has already moved the thread between its own queue structures.
  void NoteMigration(SimThread* thread, CoreId from, CoreId to);

  // ---- queries ----
  SimThread* CurrentOn(CoreId core) const { return cores_[core]->current(); }
  const std::vector<std::unique_ptr<SimThread>>& threads() const { return threads_; }
  SimThread* FindThread(ThreadId id) const;
  int alive_threads() const { return alive_threads_; }

  // Total busy (non-idle) CPU time accumulated across all cores.
  SimDuration TotalBusyTime() const;

  // Fraction of busy time spent in simulated scheduler work.
  double OverheadFraction() const;

  // Like OverheadFraction but excluding raw context-switch cost — the
  // "time spent in the scheduler" figure the paper reports (Section 6.3).
  double SchedulerWorkFraction() const;

  // Hook invoked whenever any thread exits (used by App completion logic).
  std::function<void(SimThread*)> on_thread_exit;

  // Scheduling-event observers (tracing, stats, viz); not owned. Attaching
  // is additive — any number of observers receive every event. Attaching the
  // same observer twice is idempotent (see ObserverBus).
  void AddObserver(MachineObserver* observer) { observers_.Add(observer); }
  void RemoveObserver(MachineObserver* observer) { observers_.Remove(observer); }
  const ObserverBus& observers() const { return observers_; }
  bool has_observers() const { return !observers_.empty(); }

  // ---- decision probes (called by schedulers; no-ops with no observers) ----
  void EmitPickCpu(const PickCpuDecision& d) {
    if (!observers_.empty()) {
      observers_.OnPickCpu(now(), d);
    }
  }
  void EmitBalancePass(const BalancePassRecord& r) {
    if (!observers_.empty()) {
      observers_.OnBalancePass(now(), r);
    }
  }
  void EmitPreempt(const PreemptDecision& d) {
    if (!observers_.empty()) {
      observers_.OnPreempt(now(), d);
    }
  }

 private:
  // Reschedule core: deschedule current (if any), pick next, dispatch.
  void ReschedCore(CoreId core);

  // Stops accounting for the core's current thread without re-enqueueing it;
  // returns the thread. Cancels its completion event and updates runtime.
  SimThread* StopCurrent(CoreId core);

  void Dispatch(CoreId core, SimThread* thread, bool switched);

  // Runs the thread's body until it produces a non-instantaneous step.
  void RunBody(CoreId core, SimThread* thread);

  // A compute segment finished on `core`.
  void OnComputeDone(CoreId core, SimThread* thread);

  void BlockCurrent(CoreId core, SimThread* thread);
  void ExitCurrent(CoreId core, SimThread* thread);

  void TickCore(CoreId core);
  void ArmTick(CoreId core);

  SimEngine* engine_;
  CpuTopology topology_;
  std::unique_ptr<Scheduler> scheduler_;
  MachineParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  ThreadId next_thread_id_ = 1;
  int alive_threads_ = 0;
  MachineCounters counters_;
  ObserverBus observers_;
  uint64_t idle_mask_ = 0;
  bool booted_ = false;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_MACHINE_H_
