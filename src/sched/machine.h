// Machine: the simulated multicore computer.
//
// The Machine owns the cores, the threads and the active scheduler, and
// implements everything the kernel does *around* the scheduler: dispatching,
// context switches, the periodic tick, thread fork/exit, voluntary blocking
// and wakeups, and the charging of simulated scheduler overhead to cores.
//
// Exactly one scheduler is active per machine — the experiment harness builds
// two identical machines (one with CFS, one with ULE) and runs the same
// workload on both, which is the simulator analogue of the paper's
// methodology (same kernel, swap the scheduler).
#ifndef SRC_SCHED_MACHINE_H_
#define SRC_SCHED_MACHINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sched/core.h"
#include "src/sched/decision_sink.h"
#include "src/sched/observer.h"
#include "src/sched/sched_class.h"
#include "src/sched/thread.h"
#include "src/sched/types.h"
#include "src/sim/engine.h"
#include "src/sim/rng.h"
#include "src/sim/time.h"
#include "src/topo/topology.h"

namespace schedbattle {

struct MachineParams {
  // Cost of a context switch (charged to the incoming thread's core).
  SimDuration context_switch_cost = Microseconds(3);
  // Cache-refill cost a thread pays after being involuntarily preempted
  // mid-computation (the paper's motivation for CFS's wakeup-preemption
  // granularity: "frequent thread preemption ... may negatively impact
  // caches"). Added to the preempted thread's remaining work.
  SimDuration preemption_cache_penalty = Microseconds(8);
  // Deterministic seed for everything random inside the machine (ULE's
  // balancer period, workload RNG streams are split from this).
  uint64_t seed = 42;
  // NOHZ-style tick elision: skip arming periodic tick events that provably
  // cannot change a scheduling decision and replay their accounting lazily
  // (see Machine::CatchUpTicks). Observationally identical to the always-
  // ticking mode — TicklessEquivalenceTest proves byte-identical schedstats.
  // The effective mode is this AND the process-wide TicklessEnabled() switch.
  bool tickless = true;
};

// Process-wide tickless kill switch, initialized from the SCHEDBATTLE_TICKLESS
// environment variable ("off"/"0"/"false" disable it; anything else, or the
// variable being unset, leaves it on). Bench binaries override it from
// --tickless. Machines read it once, at construction.
void SetTicklessEnabled(bool enabled);
bool TicklessEnabled();

// Categories of simulated scheduler overhead, for the paper's Section 6.3
// accounting ("13% of all CPU cycles spent on scanning cores").
enum class OverheadKind {
  kContextSwitch,
  kPickCpuScan,
  kLoadBalance,
  kWakePlacement,
};

struct MachineCounters {
  uint64_t context_switches = 0;
  uint64_t wakeup_preemptions = 0;  // preemptions caused by a wakeup
  uint64_t tick_preemptions = 0;    // timeslice-expiry preemptions
  uint64_t migrations = 0;          // balancer-driven thread migrations
  uint64_t wakeups = 0;
  uint64_t forks = 0;
  uint64_t exits = 0;
  uint64_t pickcpu_scans = 0;       // cores examined by wake placement
  uint64_t balance_invocations = 0;
  SimDuration overhead_ns[4] = {0, 0, 0, 0};

  SimDuration total_overhead() const {
    return overhead_ns[0] + overhead_ns[1] + overhead_ns[2] + overhead_ns[3];
  }

  // Folds a shard slab into this (master) copy; used at window barriers.
  void Accumulate(const MachineCounters& o) {
    context_switches += o.context_switches;
    wakeup_preemptions += o.wakeup_preemptions;
    tick_preemptions += o.tick_preemptions;
    migrations += o.migrations;
    wakeups += o.wakeups;
    forks += o.forks;
    exits += o.exits;
    pickcpu_scans += o.pickcpu_scans;
    balance_invocations += o.balance_invocations;
    for (int i = 0; i < 4; ++i) {
      overhead_ns[i] += o.overhead_ns[i];
    }
  }
};

// Tick-elision bookkeeping. Kept separate from MachineCounters because those
// are part of the modeled machine state (and must be identical with tickless
// on and off), while these describe how the *simulator* delivered the ticks.
// Invariant: ticks_fired(on) + ticks_elided(on) == ticks_fired(off).
struct TickElisionCounters {
  uint64_t ticks_fired = 0;    // tick effects applied by an armed tick event
  uint64_t ticks_elided = 0;   // tick effects applied with no event (replayed)
  uint64_t batch_updates = 0;  // CatchUpTicks calls that replayed >=1 elided tick

  void Accumulate(const TickElisionCounters& o) {
    ticks_fired += o.ticks_fired;
    ticks_elided += o.ticks_elided;
    batch_updates += o.batch_updates;
  }
};

class Machine {
 public:
  Machine(SimEngine* engine, CpuTopology topology, std::unique_ptr<Scheduler> scheduler,
          MachineParams params = {});
  ~Machine();
  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  SimEngine& engine() { return *engine_; }
  // The machine's clock. While CatchUpTicks replays an elided tick this is
  // the replayed tick's time, so scheduler accounting written against now()
  // is byte-identical to what the armed tick event would have produced.
  // Context-routed: inside a parallel window, each shard has its own replay
  // state and reads its own lane clock through the engine.
  SimTime now() const {
    const SimTime rn = replay_[1 + engine_->current_shard()].replay_now;
    return rn >= 0 ? rn : engine_->now();
  }
  const CpuTopology& topology() const { return topology_; }
  int num_cores() const { return topology_.num_cores(); }
  Scheduler& scheduler() { return *scheduler_; }
  const Scheduler& scheduler() const { return *scheduler_; }
  const MachineParams& params() const { return params_; }
  Rng& rng() { return rng_; }
  // Machine counters are sharded: slab 0 is the master (serial-context) copy,
  // slabs 1..N collect each shard's bumps inside parallel windows and are
  // folded into slab 0 at every window barrier — so in the serial context
  // (where all readers live) slab 0 always holds exact totals.
  MachineCounters& counters() { return counter_slabs_[1 + engine_->current_shard()]; }
  const MachineCounters& counters() const { return counter_slabs_[0]; }

  Core& core(CoreId id) { return *cores_[id]; }
  const Core& core(CoreId id) const { return *cores_[id]; }

  // Bitmask of idle cores (bit c set iff core c runs no thread), maintained
  // incrementally on every dispatch/deschedule transition. Schedulers AND
  // this with topology group masks and affinity masks so wake placement and
  // steal-candidate selection are popcount/ctz instead of per-core scans.
  // Purely an implementation accelerator: the *modeled* scan costs charged to
  // cores are computed as if the scan had happened.
  const CpuSet& idle_mask() const { return idle_mask_; }

  // ---- tickless tick delivery ----

  // True iff this machine elides tick events (params.tickless AND the
  // process-wide switch, sampled at construction).
  bool tickless() const { return tickless_; }
  const TickElisionCounters& tick_elision() const { return elision_slabs_[0]; }

  // Applies every not-yet-applied tick with grid time <= engine-now, in
  // global time order, each under a replay clock equal to its grid time.
  // Called at the top of every machine mutation entry point (and before any
  // tick-dependent read), so the window of pending ticks never spans a state
  // change: a replayed tick sees exactly the state the armed tick event
  // would have seen. Cheap no-op (one compare) when nothing is pending.
  void CatchUpTicks();

  // Re-derives whether/when core's next tick event must be armed, from the
  // scheduler's TickBoundary. Cancel-before-arm: a core can never have two
  // live tick events. Called after any state change that can move a core's
  // boundary; calling it redundantly is cheap and always safe.
  void ReevaluateTick(CoreId core);

  // Re-arms every core whose ticks were elided under a certification that an
  // external state change just invalidated (e.g. a ULE steal source
  // appearing). Over-arming is always safe; this exists so becoming-eligible
  // notifications are never missed.
  void RearmElidedTicks();

  // Starts per-core ticks and the scheduler's periodic machinery. Call once,
  // before (or at) the first thread start.
  void Boot();
  bool booted() const { return booted_; }

  // ---- thread lifecycle ----

  // Creates a thread (state kCreated). The machine owns it for its lifetime.
  SimThread* CreateThread(ThreadSpec spec);

  // Starts a thread: runs the fork path (TaskNew, SelectTaskRq, EnqueueTask,
  // preemption check). `parent` is the simulated forking thread or nullptr.
  void StartThread(SimThread* thread, SimThread* parent);

  // Convenience: CreateThread + StartThread.
  SimThread* Spawn(ThreadSpec spec, SimThread* parent);

  // Wakes a blocked thread. `waker_core` is the core performing the wakeup
  // (kInvalidCore for timer wakeups, which use the thread's last core).
  // Returns false (no-op) if the thread was not blocked.
  bool Wake(SimThread* thread, CoreId waker_core);

  // Changes a thread's affinity mask. If the thread is queued on a core it
  // can no longer run on, it is moved immediately (sched_setaffinity).
  void SetAffinity(SimThread* thread, const CpuMask& mask);

  // Changes a thread's nice value (setpriority): the scheduler reweights it
  // and a reschedule is requested where relevant.
  void SetNice(SimThread* thread, Nice nice);

  // ---- scheduler services ----

  // Requests a reschedule of `core` at the current time (after the current
  // event finishes). Idempotent.
  void SetNeedResched(CoreId core);

  // Charges `d` of simulated scheduler-work time to `core`: it is accounted
  // as overhead and, if a thread is running there, steals that much CPU from
  // it by pushing its completion later.
  void ChargeOverhead(CoreId core, SimDuration d, OverheadKind kind);

  // Accounting hook for balancers; updates thread->cpu and counters. The
  // caller has already moved the thread between its own queue structures.
  void NoteMigration(SimThread* thread, CoreId from, CoreId to);

  // ---- queries ----
  SimThread* CurrentOn(CoreId core) const { return cores_[core]->current(); }
  const std::vector<std::unique_ptr<SimThread>>& threads() const { return threads_; }
  SimThread* FindThread(ThreadId id) const;
  int alive_threads() const { return alive_threads_; }

  // Total busy (non-idle) CPU time accumulated across all cores.
  SimDuration TotalBusyTime() const;

  // Fraction of busy time spent in simulated scheduler work.
  double OverheadFraction() const;

  // Like OverheadFraction but excluding raw context-switch cost — the
  // "time spent in the scheduler" figure the paper reports (Section 6.3).
  double SchedulerWorkFraction() const;

  // Hook invoked whenever any thread exits (used by App completion logic).
  std::function<void(SimThread*)> on_thread_exit;

  // Scheduling-event observers (tracing, stats, viz); not owned. Attaching
  // is additive — any number of observers receive every event. Attaching the
  // same observer twice is idempotent (see ObserverBus).
  void AddObserver(MachineObserver* observer) { observers_.Add(observer); }
  void RemoveObserver(MachineObserver* observer) { observers_.Remove(observer); }
  const ObserverBus& observers() const { return observers_; }
  bool has_observers() const { return !observers_.empty(); }

  // The decision sink is a dedicated slot beside the bus: the schedscope
  // decision log consumes every event, and routing it through virtual
  // observer dispatch would alone eat most of its < 5% overhead budget (see
  // decision_sink.h). One sink at a time; attaching is idempotent for the
  // same sink.
  void AttachDecisionSink(DecisionSink* sink) {
    assert(sink_ == nullptr || sink_ == sink);
    sink_ = sink;
  }
  void DetachDecisionSink(DecisionSink* sink) {
    if (sink_ == sink) {
      sink_ = nullptr;
    }
  }
  // True when decision provenance is being consumed — the schedulers gate
  // per-decision feature-vector assembly on this, so the detached hot path
  // pays nothing for it.
  bool observing_decisions() const { return sink_ != nullptr || !observers_.empty(); }

  // ---- decision probes (called by schedulers; no-ops when detached) ----
  void EmitPickCpu(const PickCpuDecision& d) {
    if (sink_ != nullptr) {
      sink_->Pick(now(), d);
    }
    if (!observers_.empty()) {
      observers_.OnPickCpu(now(), d);
    }
  }
  void EmitBalancePass(const BalancePassRecord& r) {
    if (sink_ != nullptr) {
      sink_->Balance(now(), r);
    }
    if (!observers_.empty()) {
      observers_.OnBalancePass(now(), r);
    }
  }
  void EmitPreempt(const PreemptDecision& d) {
    if (sink_ != nullptr) {
      sink_->Preempt(now(), d);
    }
    if (!observers_.empty()) {
      observers_.OnPreempt(now(), d);
    }
  }

  // True when the engine may run the next parallel window: the machine is
  // booted, no decision consumers are attached (they need the exact total
  // event order the serialized merge provides), every core is busy (idle
  // cores are the cross-shard actors: ULE steal targets, wake destinations),
  // and the scheduler certifies its core-local hooks as shard-safe.
  // Installed as the engine's parallel gate at Boot.
  bool ParallelWindowAllowed() const;

 private:
  // Per-execution-context tick-replay state: one for the serial context plus
  // one per shard, so concurrent shard drains can each replay their own
  // cores' elided ticks. Padded out of each other's cache lines.
  struct alignas(64) TickReplayCtx {
    SimTime replay_now = -1;      // >= 0 while replaying an elided tick
    bool in_catchup = false;      // CatchUpTicks re-entry guard
    bool rearm_deferred = false;  // ReevaluateTick requested during catch-up
    CpuSet catchup_dirty;         // cores whose grid advanced this catch-up
  };

  // Folds shard counter/elision slabs into the master copies and refreshes
  // the global min-next-tick from the per-shard buckets. Installed as the
  // engine's window-end hook at Boot; runs in the serial context.
  void FoldShardSlabs();

  // [first, one-past-last) core range this context owns: the current shard's
  // range inside a window, every core otherwise.
  std::pair<CoreId, CoreId> ContextCoreRange() const;

  TickElisionCounters& elision() { return elision_slabs_[1 + engine_->current_shard()]; }

  // Arms (or re-arms) core's compute-completion event for its current
  // thread, choosing the lane by body certification: a certified-pure-compute
  // next step keeps the completion in the core's shard lane; anything else
  // goes to the global lane (staged, if called inside a window).
  void ArmCompletion(CoreId core, SimThread* thread);

  // Reschedule core: deschedule current (if any), pick next, dispatch.
  void ReschedCore(CoreId core);

  // Stops accounting for the core's current thread without re-enqueueing it;
  // returns the thread. Cancels its completion event and updates runtime.
  SimThread* StopCurrent(CoreId core);

  void Dispatch(CoreId core, SimThread* thread, bool switched);

  // Runs the thread's body until it produces a non-instantaneous step.
  void RunBody(CoreId core, SimThread* thread);

  // A compute segment finished on `core`. `epoch` is the completion epoch
  // captured at arm time; a stale epoch means the completion was logically
  // cancelled (see Core::completion_epoch) and the event is a no-op.
  void OnComputeDone(CoreId core, SimThread* thread, uint64_t epoch);

  void BlockCurrent(CoreId core, SimThread* thread);
  void ExitCurrent(CoreId core, SimThread* thread);

  void TickCore(CoreId core);

  // Applies core's earliest pending tick under the replay clock.
  void ReplayTick(CoreId core, TickReplayCtx& rc);
  // Refreshes this context's min-next-tick bucket(s): the current shard's
  // bucket inside a window, all buckets plus the global scalar otherwise.
  void RecomputeMinNextTick();

  SimEngine* engine_;
  CpuTopology topology_;
  std::unique_ptr<Scheduler> scheduler_;
  MachineParams params_;
  Rng rng_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<std::unique_ptr<SimThread>> threads_;
  ThreadId next_thread_id_ = 1;
  int alive_threads_ = 0;
  // Slab [0] = master/serial copy; [1 + s] = shard s's window-local slab.
  std::vector<MachineCounters> counter_slabs_;
  std::vector<TickElisionCounters> elision_slabs_;
  ObserverBus observers_;
  DecisionSink* sink_ = nullptr;  // not owned; see AttachDecisionSink
  CpuSet idle_mask_;
  bool booted_ = false;
  // ---- tickless state ----
  bool tickless_ = true;           // effective mode (params AND global switch)
  SimDuration tick_period_ = 0;    // cached at Boot
  // Replay context per execution context: [0] serial, [1 + s] shard s.
  std::vector<TickReplayCtx> replay_;
  SimTime min_next_tick_ = INT64_MAX;  // min over cores of Core::next_tick
  // Per-shard min-next-tick buckets, so a shard's CatchUpTicks fast path
  // reads only its own bucket; the global scalar is refreshed from these at
  // window barriers (FoldShardSlabs).
  std::vector<SimTime> shard_min_next_tick_;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_MACHINE_H_
