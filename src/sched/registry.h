// The scheduler registry: every scheduling class the simulator can run,
// as data.
//
// The paper stages a two-way battle (CFS vs. ULE), but the harness around it
// — ObserverBus, invariant monitors, the differential fuzzer, campaigns,
// tickless elision, the sharded engine — is scheduler-generic. The registry
// makes that genericity first-class: each class registers a canonical id, a
// display name, a factory and its tunables *as data* (name / default /
// description), and every consumer (ExperimentSpec, the CLI's --sched flags,
// schedfuzz, bench binaries) resolves schedulers through it instead of
// hardcoding the CFS/ULE pair. Adding a fifth class means adding one entry
// here and implementing the Scheduler interface — nothing else changes.
#ifndef SRC_SCHED_REGISTRY_H_
#define SRC_SCHED_REGISTRY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace schedbattle {

class Scheduler;
struct ExperimentConfig;

// The registered scheduling classes. The enum stays the compact spec/wire
// representation; the registry carries everything else about a class.
enum class SchedKind { kCfs, kUle, kMlfq, kEevdf };
inline constexpr int kNumSchedKinds = 4;

// Display name ("CFS", "ULE", "MLFQ", "EEVDF") — figure labels, tables.
std::string_view SchedName(SchedKind kind);
// Canonical lowercase id ("cfs", "ule", "mlfq", "eevdf") — CLI flags, spec
// JSON, campaign label tags.
std::string_view SchedId(SchedKind kind);
// Resolves a canonical id to its kind; false (out untouched) for unknown
// names. Callers wanting a helpful error message append
// SchedulerRegistry::Instance().IdList().
bool ParseSchedKind(std::string_view id, SchedKind* out);

// One tunable, as data: its field name, its compiled-in default rendered as
// a string, and what it does. `list-schedulers` prints these.
struct SchedTunableDesc {
  std::string name;
  std::string def;
  std::string what;
};

// One registered scheduling class.
struct SchedulerClass {
  SchedKind kind = SchedKind::kCfs;
  std::string id;       // canonical lowercase id ("cfs")
  std::string display;  // display name ("CFS")
  std::string summary;  // one-line description for list-schedulers
  std::vector<SchedTunableDesc> tunables;

  // Capability flags: which introspection hooks are meaningful. They gate
  // both the monitors (vruntime_monotonic / ule_score_range activate on the
  // corresponding sentinel) and FaultySched fault applicability — a fault
  // that corrupts a clock the class does not keep cannot fire any monitor.
  bool has_vruntime = false;        // MinVruntimeOf != kNoMinVruntime
  bool has_interactivity = false;   // InteractivityPenaltyOf >= 0

  // Builds the scheduler from the experiment's tunables (each factory reads
  // its own member of the config: cfg.cfs, cfg.ule, cfg.mlfq, cfg.eevdf).
  std::function<std::unique_ptr<Scheduler>(const ExperimentConfig&)> make;
};

class SchedulerRegistry {
 public:
  // The process-wide registry of built-in classes, in SchedKind order.
  static const SchedulerRegistry& Instance();

  const std::vector<SchedulerClass>& classes() const { return classes_; }
  // Lookup by canonical id; nullptr for unknown names.
  const SchedulerClass* Find(std::string_view id) const;
  const SchedulerClass& Of(SchedKind kind) const;
  // Every registered kind, in registration order.
  std::vector<SchedKind> AllKinds() const;
  // "cfs, ule, mlfq, eevdf" — for unknown-scheduler error messages.
  std::string IdList() const;

 private:
  SchedulerRegistry();
  std::vector<SchedulerClass> classes_;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_REGISTRY_H_
