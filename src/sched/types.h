// Shared scheduler-framework types: ids, nice values, CPU masks, enqueue kinds.
#ifndef SRC_SCHED_TYPES_H_
#define SRC_SCHED_TYPES_H_

#include <cassert>
#include <cstdint>

#include "src/topo/cpuset.h"
#include "src/topo/topology.h"

namespace schedbattle {

using ThreadId = int64_t;
inline constexpr ThreadId kInvalidThread = -1;

// UNIX nice value: -20 (highest priority) .. 19 (lowest priority).
using Nice = int;
inline constexpr Nice kNiceMin = -20;
inline constexpr Nice kNiceMax = 19;

// Task-group (cgroup) identifier. Group 0 is the root group. The experiment
// harness assigns one group per application by default (autogroup semantics),
// which is what makes CFS fair *between applications* as in the paper.
using GroupId = int32_t;
inline constexpr GroupId kRootGroup = 0;

// CPU affinity mask. Historically a bare uint64_t capped at 64 cores; now an
// alias of the fixed-size CpuSet (src/topo/cpuset.h), which supports the
// datacenter-scale topologies (up to CpuSet::kMaxCpus cores).
using CpuMask = CpuSet;

// Why a thread is being enqueued; mirrors the distinction the paper draws
// between FreeBSD's sched_add (new threads) and sched_wakeup (woken threads),
// which Linux folds into one enqueue_task with a flag.
enum class EnqueueKind {
  kFork,     // newly created thread
  kWakeup,   // thread waking from voluntary sleep
  kRequeue,  // preempted / timeslice expired / yield: put back runnable
  kMigrate,  // moved between cores by a load balancer
};

// Thread lifecycle states.
enum class ThreadState {
  kCreated,   // allocated, not yet started
  kRunnable,  // waiting in a runqueue
  kRunning,   // currently on a core
  kBlocked,   // voluntarily sleeping / waiting on a resource
  kDead,      // exited
};

}  // namespace schedbattle

#endif  // SRC_SCHED_TYPES_H_
