// Shared scheduler-framework types: ids, nice values, CPU masks, enqueue kinds.
#ifndef SRC_SCHED_TYPES_H_
#define SRC_SCHED_TYPES_H_

#include <cassert>
#include <cstdint>

#include "src/topo/topology.h"

namespace schedbattle {

using ThreadId = int64_t;
inline constexpr ThreadId kInvalidThread = -1;

// UNIX nice value: -20 (highest priority) .. 19 (lowest priority).
using Nice = int;
inline constexpr Nice kNiceMin = -20;
inline constexpr Nice kNiceMax = 19;

// Task-group (cgroup) identifier. Group 0 is the root group. The experiment
// harness assigns one group per application by default (autogroup semantics),
// which is what makes CFS fair *between applications* as in the paper.
using GroupId = int32_t;
inline constexpr GroupId kRootGroup = 0;

// CPU affinity mask; supports machines of up to 64 logical cores (the paper's
// machines have 32 and 8).
class CpuMask {
 public:
  constexpr CpuMask() : bits_(0) {}
  explicit constexpr CpuMask(uint64_t bits) : bits_(bits) {}

  static constexpr CpuMask AllOf(int num_cores) {
    return CpuMask(num_cores >= 64 ? ~0ULL : ((1ULL << num_cores) - 1));
  }
  static constexpr CpuMask Single(CoreId core) { return CpuMask(1ULL << core); }

  constexpr bool Test(CoreId core) const { return (bits_ >> core) & 1; }
  void Set(CoreId core) { bits_ |= (1ULL << core); }
  void Clear(CoreId core) { bits_ &= ~(1ULL << core); }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr int Count() const { return __builtin_popcountll(bits_); }
  constexpr uint64_t bits() const { return bits_; }

  constexpr bool operator==(const CpuMask& other) const = default;

 private:
  uint64_t bits_;
};

// Why a thread is being enqueued; mirrors the distinction the paper draws
// between FreeBSD's sched_add (new threads) and sched_wakeup (woken threads),
// which Linux folds into one enqueue_task with a flag.
enum class EnqueueKind {
  kFork,     // newly created thread
  kWakeup,   // thread waking from voluntary sleep
  kRequeue,  // preempted / timeslice expired / yield: put back runnable
  kMigrate,  // moved between cores by a load balancer
};

// Thread lifecycle states.
enum class ThreadState {
  kCreated,   // allocated, not yet started
  kRunnable,  // waiting in a runqueue
  kRunning,   // currently on a core
  kBlocked,   // voluntarily sleeping / waiting on a resource
  kDead,      // exited
};

}  // namespace schedbattle

#endif  // SRC_SCHED_TYPES_H_
