// The scheduling-class API both schedulers implement.
//
// This interface mirrors Table 1 of the paper — the Linux scheduling-class
// hooks and their FreeBSD equivalents — and is the simulator's analogue of
// the authors' port surface:
//
//   Linux hook        FreeBSD equivalent            Here
//   ----------------- ----------------------------- -------------------------
//   enqueue_task      sched_add / sched_wakeup      EnqueueTask (EnqueueKind)
//   dequeue_task      sched_rem                     DequeueTask
//   yield_task        sched_relinquish              YieldTask
//   pick_next_task    sched_choose                  PickNextTask
//   put_prev_task     sched_switch                  PutPrevTask
//   select_task_rq    sched_pickcpu                 SelectTaskRq
//   task_tick         sched_clock                   TaskTick
//   task_fork         sched_fork                    TaskNew
//   task_dead         sched_exit                    TaskExit
//   check_preempt     sched_shouldpreempt           CheckPreemptWakeup
//
// Convention (following the authors' port, Section 3): while a thread runs on
// a core it is *not* present in the scheduler's queue structures —
// PickNextTask removes it and PutPrevTask re-inserts it. This is how both
// real schedulers manage their current thread internally
// (set_next_entity/put_prev_entity in CFS, tdq removal in ULE).
#ifndef SRC_SCHED_SCHED_CLASS_H_
#define SRC_SCHED_SCHED_CLASS_H_

#include <cstdint>
#include <string_view>

#include "src/sched/thread.h"
#include "src/sched/types.h"
#include "src/sim/time.h"

namespace schedbattle {

class Machine;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual std::string_view name() const = 0;

  // Binds the scheduler to a machine: allocate per-core runqueues, build
  // domain/topology structures. Called once before any other hook.
  virtual void Attach(Machine* machine) = 0;

  // Installs periodic activity (load-balancer timers). Called after Attach,
  // when the simulation is about to start.
  virtual void Start() {}

  // Declares a task-group hierarchy edge (cgroup nesting; paper Section 2.1:
  // systemd nests per-user groups above per-application groups). Schedulers
  // without group support ignore this (ULE: "considers each thread as an
  // independent entity").
  virtual void DeclareGroup(GroupId /*id*/, GroupId /*parent*/) {}

  // Thread lifecycle. TaskNew initializes per-thread scheduler state;
  // `parent` is the forking thread, or nullptr for threads launched from
  // outside the simulation (the spec's parent hints apply then).
  virtual void TaskNew(SimThread* thread, SimThread* parent) = 0;
  virtual void TaskExit(SimThread* thread) = 0;

  // Chooses the core for a newly created (kFork) or woken (kWakeup) thread.
  // `origin` is the core the waker/forker is running on (or the thread's
  // last core for external wakes). Must honour thread->affinity().
  virtual CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) = 0;

  // Adds `thread` to core's runqueue. For kWakeup, thread->last_sleep_duration
  // holds the length of the sleep that just ended.
  virtual void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) = 0;

  // Removes a queued (not running) thread from core's runqueue.
  virtual void DequeueTask(CoreId core, SimThread* thread) = 0;

  // Selects the next thread to run on `core`, removing it from the queue
  // structures. Returns nullptr if nothing is runnable.
  virtual SimThread* PickNextTask(CoreId core) = 0;

  // The previously running thread stops running and returns to the runqueue
  // (preemption, timeslice expiry). Updates its accounting and re-inserts it.
  virtual void PutPrevTask(CoreId core, SimThread* thread) = 0;

  // The running thread blocks voluntarily (sleep/lock/pipe); update its
  // accounting. It is not re-inserted.
  virtual void OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) = 0;

  // The running thread yields but stays runnable.
  virtual void YieldTask(CoreId core, SimThread* thread) = 0;

  // Periodic tick while `current` runs on `core` (current may be nullptr if
  // the core is idle). May request preemption via Machine::SetNeedResched.
  virtual void TaskTick(CoreId core, SimThread* current) = 0;

  // The thread's nice value changed (sched_setnice). The scheduler must
  // refresh its weight/priority and, if the thread is queued, reposition it.
  virtual void ReniceTask(SimThread* thread) = 0;

  // A thread was just enqueued on `core` after waking: decide whether it
  // should preempt the core's current thread. CFS preempts on a large enough
  // vruntime deficit; ULE has full preemption disabled and never does for
  // timesharing threads.
  virtual void CheckPreemptWakeup(CoreId core, SimThread* woken) = 0;

  // `core` found nothing to run; the scheduler may steal work from other
  // cores (ULE tdq_idled, CFS idle balance). After this returns, the machine
  // retries PickNextTask once.
  virtual void OnCoreIdle(CoreId core) = 0;

  // Scheduler tick period (CFS: 1ms at HZ=1000; ULE: 1/127s stathz ticks).
  virtual SimDuration TickPeriod() const = 0;

  // ---- tickless (NOHZ-style tick elision) support ----

  // Earliest time >= next_tick at which a tick on `core` could do anything
  // beyond pure per-tick accounting (request a reschedule, steal work, emit
  // an observer event). `current` is the core's running thread (nullptr when
  // idle); `next_tick` is the core's next grid-aligned tick time. Returning
  // next_tick keeps every tick armed (the default — always correct);
  // returning kTickNever means no tick can have a side effect until some
  // external state change (an enqueue, a renice, a steal source appearing)
  // re-arms the core. Any intermediate ticks in (next_tick, boundary) are
  // replayed lazily by Machine::CatchUpTicks with byte-identical accounting,
  // so implementations must only certify *side-effect freedom*, not skip
  // accounting. Must be side-effect free itself.
  virtual SimTime TickBoundary(CoreId /*core*/, const SimThread* /*current*/,
                               SimTime next_tick) const {
    return next_tick;
  }

  // True iff TaskTick(core, nullptr) is a complete no-op for this scheduler
  // (CFS: yes, its tick returns immediately with no current; ULE: no, idle
  // ticks run the steal path and charge modeled costs). When true, elided
  // idle-core ticks are fast-forwarded arithmetically instead of replayed.
  virtual bool IdleTickIsNoOp() const { return false; }

  // ---- sharded-engine certification (parallel windows) ----

  // True iff this scheduler's core-local hooks (TaskTick on a busy core,
  // PickNextTask/PutPrevTask/EnqueueTask on one core) touch only state owned
  // by that core (its runqueue, the running thread, per-core masks' own
  // bits), so shards may drain different cores' events concurrently inside a
  // parallel window. Must be conservative: the default says no, which keeps
  // unknown schedulers (and fault-injection decorators) on the exact
  // serialized path.
  virtual bool ShardParallelSafe() const { return false; }

  // True iff a tick on `core`, in its *current* state, may read or write
  // another core's state (ULE's idle tick runs the steal path). Such ticks
  // are armed in the engine's global lane, so they never fire inside a
  // parallel window. Consulted at arm time; the machine re-arms whenever the
  // answer can change (current-thread transitions re-run ReevaluateTick).
  virtual bool TickMayCross(CoreId /*core*/) const { return true; }

  // ---- introspection for metrics / experiments ----

  // The scheduler's own notion of a core's load (ULE: runnable thread count;
  // CFS: runqueue load). Used by heatmap metrics.
  virtual double LoadOf(CoreId core) const = 0;

  // Number of runnable-or-running threads associated with the core.
  virtual int RunnableCountOf(CoreId core) const = 0;

  // ULE interactivity penalty of a thread (0..100), or -1 if not applicable.
  virtual int InteractivityPenaltyOf(const SimThread* thread) const;

  // CFS min_vruntime of the core's root runqueue, or kNoMinVruntime if the
  // scheduler has no such clock (ULE). Virtual (rather than a dynamic_cast in
  // the caller) so decorators like FaultySched can forward — or corrupt — it.
  virtual int64_t MinVruntimeOf(CoreId core) const;
};

// Sentinel for MinVruntimeOf: "this scheduler has no fairness clock".
inline constexpr int64_t kNoMinVruntime = INT64_MIN;

// Sentinel for TickBoundary: "no tick on this core can have a side effect
// until an external state change re-arms it".
inline constexpr SimTime kTickNever = INT64_MAX;

}  // namespace schedbattle

#endif  // SRC_SCHED_SCHED_CLASS_H_
