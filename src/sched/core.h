// Core: a logical CPU in the simulated machine.
#ifndef SRC_SCHED_CORE_H_
#define SRC_SCHED_CORE_H_

#include <cstdint>

#include "src/sched/thread.h"
#include "src/sched/types.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace schedbattle {

class Core {
 public:
  explicit Core(CoreId id) : id_(id) {}
  Core(const Core&) = delete;
  Core& operator=(const Core&) = delete;

  CoreId id() const { return id_; }

  SimThread* current() const { return current_; }
  void set_current(SimThread* t) { current_ = t; }
  bool idle() const { return current_ == nullptr; }

  // ---- state managed by Machine ----
  bool resched_pending = false;       // a reschedule event is queued
  EventHandle completion_event;       // pending compute-segment completion
  EventHandle resched_event;          // pending ReschedCore event
  // Logical-cancellation epoch for the completion event: each arm captures
  // the post-increment value and a firing with a stale epoch is ignored.
  // StopCurrent inside a parallel window may not physically cancel a
  // completion living in the engine's *global* lane (cross-lane Cancel from
  // a shard thread would race on the lane's node pool), so it only bumps the
  // epoch and lets the orphaned event fire as a no-op.
  uint64_t completion_epoch = 0;
  bool completion_local = false;      // completion lives in the core's shard lane
  // Tickless bookkeeping. `next_tick` is the core's next grid-aligned tick
  // time — the time of the earliest tick whose effects have NOT yet been
  // applied. `tick_event`/`armed_at` describe the armed event (if any): the
  // core is armed iff armed_at >= 0, and the event fires at `armed_at`,
  // which is >= next_tick when intermediate ticks are being elided.
  EventHandle tick_event;             // retained handle (cancelled on teardown)
  SimTime next_tick = 0;
  SimTime armed_at = -1;
  SimTime idle_since = 0;
  SimDuration idle_ns = 0;            // cumulative idle time
  // Exponential average of recent idle-period lengths (kernel: rq->avg_idle;
  // newidle balancing is skipped when this is very small).
  SimDuration avg_idle = Seconds(1);
  SimDuration sched_overhead_ns = 0;  // cumulative simulated scheduler cycles
  uint64_t context_switches = 0;
  uint64_t preemptions = 0;           // involuntary deschedules on this core

 private:
  CoreId id_;
  SimThread* current_ = nullptr;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_CORE_H_
