#include "src/sched/machine.h"

#include <cassert>
#include <utility>

namespace schedbattle {

SimTime ThreadContext::now() const { return machine_->now(); }

Machine::Machine(SimEngine* engine, CpuTopology topology, std::unique_ptr<Scheduler> scheduler,
                 MachineParams params)
    : engine_(engine),
      topology_(std::move(topology)),
      scheduler_(std::move(scheduler)),
      params_(params),
      rng_(params.seed) {
  assert(topology_.num_cores() <= 64 && "CpuMask supports at most 64 cores");
  cores_.reserve(topology_.num_cores());
  for (CoreId c = 0; c < topology_.num_cores(); ++c) {
    cores_.push_back(std::make_unique<Core>(c));
    cores_.back()->idle_since = 0;
    idle_mask_ |= uint64_t{1} << c;
  }
  scheduler_->Attach(this);
}

Machine::~Machine() = default;

void Machine::Boot() {
  assert(!booted_);
  booted_ = true;
  const SimDuration period = scheduler_->TickPeriod();
  for (CoreId c = 0; c < num_cores(); ++c) {
    // Stagger first ticks across cores so the simulation does not create an
    // artificial global tick synchrony real hardware does not have.
    const SimDuration offset = (period * c) / num_cores();
    Core* core = cores_[c].get();
    engine_->PostAfter(offset + period, [this, c] { TickCore(c); });
  }
  scheduler_->Start();
}

SimThread* Machine::CreateThread(ThreadSpec spec) {
  assert(spec.body != nullptr && "threads need a body");
  if (spec.affinity.Empty()) {
    spec.affinity = CpuMask::AllOf(num_cores());
  }
  threads_.push_back(std::make_unique<SimThread>(next_thread_id_++, std::move(spec)));
  return threads_.back().get();
}

void Machine::StartThread(SimThread* thread, SimThread* parent) {
  assert(booted_ && "Boot() the machine before starting threads");
  assert(thread->state() == ThreadState::kCreated);
  ++counters_.forks;
  ++alive_threads_;
  scheduler_->TaskNew(thread, parent);
  const CoreId origin =
      (parent != nullptr && parent->cpu() != kInvalidCore) ? parent->cpu() : CoreId{0};
  const CoreId cpu = scheduler_->SelectTaskRq(thread, origin, EnqueueKind::kFork);
  assert(thread->CanRunOn(cpu));
  thread->set_cpu(cpu);
  thread->set_state(ThreadState::kRunnable);
  thread->runnable_since = now();
  scheduler_->EnqueueTask(cpu, thread, EnqueueKind::kFork);
  scheduler_->CheckPreemptWakeup(cpu, thread);
  if (!observers_.empty()) {
    observers_.OnFork(now(), *thread, cpu);
  }
  if (cores_[cpu]->idle()) {
    SetNeedResched(cpu);
  }
}

SimThread* Machine::Spawn(ThreadSpec spec, SimThread* parent) {
  SimThread* t = CreateThread(std::move(spec));
  StartThread(t, parent);
  return t;
}

bool Machine::Wake(SimThread* thread, CoreId waker_core) {
  if (thread->state() != ThreadState::kBlocked) {
    return false;
  }
  ++counters_.wakeups;
  thread->last_sleep_duration = now() - thread->block_start;
  thread->total_sleep += thread->last_sleep_duration;
  CoreId origin = waker_core;
  if (origin == kInvalidCore) {
    origin = thread->last_ran_cpu() != kInvalidCore ? thread->last_ran_cpu() : CoreId{0};
  }
  const CoreId cpu = scheduler_->SelectTaskRq(thread, origin, EnqueueKind::kWakeup);
  assert(thread->CanRunOn(cpu));
  thread->set_cpu(cpu);
  thread->set_state(ThreadState::kRunnable);
  thread->runnable_since = now();
  scheduler_->EnqueueTask(cpu, thread, EnqueueKind::kWakeup);
  scheduler_->CheckPreemptWakeup(cpu, thread);
  if (!observers_.empty()) {
    observers_.OnWake(now(), *thread, cpu);
  }
  if (cores_[cpu]->idle()) {
    SetNeedResched(cpu);
  }
  return true;
}

void Machine::SetAffinity(SimThread* thread, const CpuMask& mask) {
  assert(!mask.Empty());
  thread->set_affinity(mask);
  switch (thread->state()) {
    case ThreadState::kRunnable: {
      const CoreId cur = thread->cpu();
      if (!mask.Test(cur)) {
        scheduler_->DequeueTask(cur, thread);
        const CoreId cpu = scheduler_->SelectTaskRq(thread, cur, EnqueueKind::kMigrate);
        scheduler_->EnqueueTask(cpu, thread, EnqueueKind::kMigrate);
        NoteMigration(thread, cur, cpu);
      }
      break;
    }
    case ThreadState::kRunning:
      // ReschedCore migrates it after put_prev if the core is now disallowed.
      SetNeedResched(thread->cpu());
      break;
    default:
      break;  // blocked/created threads are placed at their next wake/start
  }
}

void Machine::SetNice(SimThread* thread, Nice nice) {
  assert(nice >= kNiceMin && nice <= kNiceMax);
  if (thread->nice() == nice) {
    return;
  }
  thread->set_nice(nice);
  if (thread->state() == ThreadState::kDead || thread->state() == ThreadState::kCreated) {
    return;
  }
  scheduler_->ReniceTask(thread);
  if (thread->state() == ThreadState::kRunning || thread->state() == ThreadState::kRunnable) {
    SetNeedResched(thread->cpu());
  }
}

void Machine::SetNeedResched(CoreId core) {
  Core* c = cores_[core].get();
  if (c->resched_pending) {
    return;
  }
  c->resched_pending = true;
  engine_->PostAt(now(), [this, core] { ReschedCore(core); });
}

void Machine::ChargeOverhead(CoreId core, SimDuration d, OverheadKind kind) {
  if (d <= 0) {
    return;
  }
  counters_.overhead_ns[static_cast<int>(kind)] += d;
  Core* c = cores_[core].get();
  c->sched_overhead_ns += d;
  SimThread* cur = c->current();
  if (cur != nullptr) {
    cur->work_started += d;
    if (c->completion_event.valid()) {
      engine_->Cancel(c->completion_event);
      c->completion_event =
          engine_->At(cur->work_started + cur->remaining_work,
                      [this, core, cur] { OnComputeDone(core, cur); });
    }
  }
}

void Machine::NoteMigration(SimThread* thread, CoreId from, CoreId to) {
  if (from == to) {
    return;
  }
  ++counters_.migrations;
  ++thread->migrations;
  thread->set_cpu(to);
  if (!observers_.empty()) {
    observers_.OnMigrate(now(), *thread, from, to);
  }
  if (cores_[to]->idle()) {
    SetNeedResched(to);
  }
}

SimThread* Machine::FindThread(ThreadId id) const {
  for (const auto& t : threads_) {
    if (t->id() == id) {
      return t.get();
    }
  }
  return nullptr;
}

SimDuration Machine::TotalBusyTime() const {
  SimDuration busy = 0;
  const SimTime t = now();
  for (const auto& core : cores_) {
    SimDuration idle = core->idle_ns;
    if (core->idle() && core->idle_since >= 0) {
      idle += t - core->idle_since;
    }
    busy += t - idle;
  }
  return busy;
}

double Machine::OverheadFraction() const {
  const SimDuration busy = TotalBusyTime();
  if (busy <= 0) {
    return 0.0;
  }
  return static_cast<double>(counters_.total_overhead()) / static_cast<double>(busy);
}

double Machine::SchedulerWorkFraction() const {
  const SimDuration busy = TotalBusyTime();
  if (busy <= 0) {
    return 0.0;
  }
  const SimDuration work =
      counters_.total_overhead() -
      counters_.overhead_ns[static_cast<int>(OverheadKind::kContextSwitch)];
  return static_cast<double>(work) / static_cast<double>(busy);
}

// ---- internal dispatch machinery ----

SimThread* Machine::StopCurrent(CoreId core) {
  Core* c = cores_[core].get();
  SimThread* t = c->current();
  if (t == nullptr) {
    return nullptr;
  }
  engine_->Cancel(c->completion_event);
  const SimTime t_now = now();
  t->total_runtime += t_now - t->last_dispatch;
  const SimDuration useful = t_now - t->work_started;
  if (useful > 0) {
    t->remaining_work = std::max<SimDuration>(0, t->remaining_work - useful);
  }
  t->set_last_ran_cpu(core);
  t->last_descheduled = t_now;
  c->set_current(nullptr);
  idle_mask_ |= uint64_t{1} << core;
  return t;
}

void Machine::ReschedCore(CoreId core) {
  Core* c = cores_[core].get();
  c->resched_pending = false;
  SimThread* prev = StopCurrent(core);
  if (prev != nullptr) {
    prev->set_state(ThreadState::kRunnable);
    prev->runnable_since = now();
    ++prev->preemptions;
    ++c->preemptions;
    if (!observers_.empty()) {
      observers_.OnDeschedule(now(), core, *prev, 'P');
    }
    scheduler_->PutPrevTask(core, prev);
    if (!prev->CanRunOn(core)) {
      scheduler_->DequeueTask(core, prev);
      const CoreId cpu = scheduler_->SelectTaskRq(prev, core, EnqueueKind::kMigrate);
      scheduler_->EnqueueTask(cpu, prev, EnqueueKind::kMigrate);
      NoteMigration(prev, core, cpu);
    }
  }

  SimThread* next = scheduler_->PickNextTask(core);
  if (next == nullptr) {
    scheduler_->OnCoreIdle(core);
    next = scheduler_->PickNextTask(core);
  }
  if (next == nullptr) {
    if (c->idle_since < 0) {
      c->idle_since = now();
    }
    return;
  }
  if (prev != nullptr && next != prev && prev->remaining_work > 0) {
    // Involuntary preemption mid-computation: the preempted thread will have
    // to refill its working set when it resumes.
    prev->remaining_work += params_.preemption_cache_penalty;
  }
  Dispatch(core, next, /*switched=*/next != prev);
}

void Machine::Dispatch(CoreId core, SimThread* thread, bool switched) {
  Core* c = cores_[core].get();
  assert(c->current() == nullptr);
  if (c->idle_since >= 0) {
    const SimDuration idled = now() - c->idle_since;
    c->idle_ns += idled;
    c->avg_idle += (idled - c->avg_idle) / 8;  // kernel: update_avg()
    c->idle_since = -1;
  }
  thread->set_state(ThreadState::kRunning);
  thread->set_cpu(core);
  thread->total_wait += now() - thread->runnable_since;
  thread->last_dispatch = now();
  ++thread->dispatches;
  if (thread->first_dispatch < 0) {
    thread->first_dispatch = now();
  }
  SimDuration cost = 0;
  if (switched) {
    cost = params_.context_switch_cost;
    ++counters_.context_switches;
    ++c->context_switches;
    counters_.overhead_ns[static_cast<int>(OverheadKind::kContextSwitch)] += cost;
    c->sched_overhead_ns += cost;
  }
  thread->work_started = now() + cost;
  c->set_current(thread);
  idle_mask_ &= ~(uint64_t{1} << core);
  if (!observers_.empty()) {
    observers_.OnDispatch(now(), core, *thread);
  }
  if (thread->remaining_work > 0) {
    c->completion_event = engine_->At(thread->work_started + thread->remaining_work,
                                      [this, core, thread] { OnComputeDone(core, thread); });
  } else {
    RunBody(core, thread);
  }
}

void Machine::OnComputeDone(CoreId core, SimThread* thread) {
  Core* c = cores_[core].get();
  assert(c->current() == thread);
  c->completion_event.Reset();
  thread->remaining_work = 0;
  thread->work_started = now();
  RunBody(core, thread);
}

void Machine::RunBody(CoreId core, SimThread* thread) {
  Core* c = cores_[core].get();
  ThreadContext ctx(this, thread);
  // A body may perform many instantaneous operations (lock handoffs, pipe
  // writes) before its next compute/block; cap the loop to catch bodies that
  // never consume time.
  for (int spins = 0; spins < 100000; ++spins) {
    const Step step = thread->body()->OnRun(ctx);
    switch (step.kind) {
      case Step::Kind::kCompute: {
        if (step.duration <= 0) {
          continue;
        }
        thread->remaining_work = step.duration;
        c->completion_event = engine_->At(thread->work_started + thread->remaining_work,
                                          [this, core, thread] { OnComputeDone(core, thread); });
        return;
      }
      case Step::Kind::kBlock:
        BlockCurrent(core, thread);
        return;
      case Step::Kind::kYield: {
        StopCurrent(core);
        thread->set_state(ThreadState::kRunnable);
        thread->runnable_since = now();
        if (!observers_.empty()) {
          observers_.OnDeschedule(now(), core, *thread, 'Y');
        }
        scheduler_->YieldTask(core, thread);
        SimThread* next = scheduler_->PickNextTask(core);
        if (next == nullptr) {
          scheduler_->OnCoreIdle(core);
          next = scheduler_->PickNextTask(core);
        }
        if (next == nullptr) {
          if (c->idle_since < 0) {
            c->idle_since = now();
          }
          return;
        }
        Dispatch(core, next, /*switched=*/next != thread);
        return;
      }
      case Step::Kind::kExit:
        ExitCurrent(core, thread);
        return;
    }
  }
  assert(false && "thread body made 100000 instantaneous steps without consuming time");
}

void Machine::BlockCurrent(CoreId core, SimThread* thread) {
  StopCurrent(core);
  thread->set_state(ThreadState::kBlocked);
  thread->block_start = now();
  if (!observers_.empty()) {
    observers_.OnDeschedule(now(), core, *thread, 'B');
  }
  scheduler_->OnTaskBlock(core, thread, /*voluntary=*/true);

  SimThread* next = scheduler_->PickNextTask(core);
  if (next == nullptr) {
    scheduler_->OnCoreIdle(core);
    next = scheduler_->PickNextTask(core);
  }
  if (next == nullptr) {
    Core* c = cores_[core].get();
    if (c->idle_since < 0) {
      c->idle_since = now();
    }
    return;
  }
  Dispatch(core, next, /*switched=*/true);
}

void Machine::ExitCurrent(CoreId core, SimThread* thread) {
  StopCurrent(core);
  thread->set_state(ThreadState::kDead);
  thread->exit_time = now();
  if (!observers_.empty()) {
    observers_.OnDeschedule(now(), core, *thread, 'X');
  }
  --alive_threads_;
  ++counters_.exits;
  scheduler_->TaskExit(thread);
  if (on_thread_exit) {
    on_thread_exit(thread);
  }

  SimThread* next = scheduler_->PickNextTask(core);
  if (next == nullptr) {
    scheduler_->OnCoreIdle(core);
    next = scheduler_->PickNextTask(core);
  }
  if (next == nullptr) {
    Core* c = cores_[core].get();
    if (c->idle_since < 0) {
      c->idle_since = now();
    }
    return;
  }
  Dispatch(core, next, /*switched=*/true);
}

void Machine::TickCore(CoreId core) {
  Core* c = cores_[core].get();
  scheduler_->TaskTick(core, c->current());
  ArmTick(core);
}

void Machine::ArmTick(CoreId core) {
  engine_->PostAfter(scheduler_->TickPeriod(), [this, core] { TickCore(core); });
}

}  // namespace schedbattle
