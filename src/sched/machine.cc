#include "src/sched/machine.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <string_view>
#include <utility>

namespace schedbattle {

namespace {
bool InitTicklessFromEnv() {
  const char* v = std::getenv("SCHEDBATTLE_TICKLESS");
  if (v == nullptr) {
    return true;
  }
  const std::string_view s(v);
  return !(s == "off" || s == "0" || s == "false");
}

bool& TicklessFlag() {
  static bool enabled = InitTicklessFromEnv();
  return enabled;
}
}  // namespace

void SetTicklessEnabled(bool enabled) { TicklessFlag() = enabled; }
bool TicklessEnabled() { return TicklessFlag(); }

SimTime ThreadContext::now() const { return machine_->now(); }

Machine::Machine(SimEngine* engine, CpuTopology topology, std::unique_ptr<Scheduler> scheduler,
                 MachineParams params)
    : engine_(engine),
      topology_(std::move(topology)),
      scheduler_(std::move(scheduler)),
      params_(params),
      rng_(params.seed),
      tickless_(params.tickless && TicklessEnabled()) {
  assert(topology_.num_cores() <= CpuSet::kMaxCpus && "topology exceeds CpuSet::kMaxCpus");
  const int shards = engine_->num_shards();
  counter_slabs_.resize(1 + shards);
  elision_slabs_.resize(1 + shards);
  replay_.resize(1 + shards);
  shard_min_next_tick_.assign(shards, INT64_MAX);
  cores_.reserve(topology_.num_cores());
  for (CoreId c = 0; c < topology_.num_cores(); ++c) {
    cores_.push_back(std::make_unique<Core>(c));
    cores_.back()->idle_since = 0;
    idle_mask_.Set(c);
  }
  scheduler_->Attach(this);
}

Machine::~Machine() {
  // A Machine may die while its engine (and queued events) live on; every
  // event the machine armed holds a raw `this`, so cancel them all.
  for (auto& core : cores_) {
    engine_->Cancel(core->tick_event);
    engine_->Cancel(core->completion_event);
    engine_->Cancel(core->resched_event);
  }
}

void Machine::Boot() {
  assert(!booted_);
  booted_ = true;
  if (engine_->num_shards() > 1) {
    // Wire this machine into the sharded engine: the gate decides when
    // parallel windows are sound, the hook folds shard slabs at barriers.
    engine_->SetParallelGate([this] { return ParallelWindowAllowed(); });
    engine_->SetWindowEndHook([this] { FoldShardSlabs(); });
  }
  tick_period_ = scheduler_->TickPeriod();
  for (CoreId c = 0; c < num_cores(); ++c) {
    // Stagger first ticks across cores so the simulation does not create an
    // artificial global tick synchrony real hardware does not have. The
    // per-core offsets are distinct, so no two cores ever share a tick
    // instant — CatchUpTicks relies on this for its replay ordering.
    const SimDuration offset = (tick_period_ * c) / num_cores();
    cores_[c]->next_tick = engine_->now() + offset + tick_period_;
    ReevaluateTick(c);
  }
  RecomputeMinNextTick();
  scheduler_->Start();
}

// ---- tickless tick delivery ----

void Machine::TickCore(CoreId /*core*/) {
  // The armed tick event for some core just fired: its grid point is at
  // engine-now, so CatchUpTicks replays it (counted as fired — it was armed
  // here) along with any earlier pending points of other cores, then its
  // final sweep re-arms every core from its new boundary.
  CatchUpTicks();
}

void Machine::ReplayTick(CoreId core, TickReplayCtx& rc) {
  Core* c = cores_[core].get();
  rc.catchup_dirty.Set(core);
  const SimTime when = c->next_tick;
  c->next_tick = when + tick_period_;
  TickElisionCounters& el = elision();
  if (c->armed_at == when) {
    ++el.ticks_fired;
  } else {
    ++el.ticks_elided;
  }
  rc.replay_now = when;
  scheduler_->TaskTick(core, c->current());
  rc.replay_now = -1;
}

std::pair<CoreId, CoreId> Machine::ContextCoreRange() const {
  const int shard = engine_->current_shard();
  const ShardPlan& plan = engine_->shard_plan();
  if (shard < 0 || plan.num_shards() <= 1) {
    return {0, num_cores()};
  }
  return {plan.begin[shard], std::min(plan.end[shard], num_cores())};
}

void Machine::CatchUpTicks() {
  // Context-scoped: in the serial context this covers every core; inside a
  // parallel window each shard catches up only its own cores (their grids,
  // their replay clock, its own elision slab), which is sound because the
  // window gate guarantees no core's tick can read outside its shard.
  const int shard = engine_->current_shard();
  TickReplayCtx& rc = replay_[1 + shard];
  if (rc.in_catchup || !booted_) {
    return;
  }
  const SimTime t = engine_->now();
  if ((shard >= 0 ? shard_min_next_tick_[shard] : min_next_tick_) > t) {
    return;  // fast path: no tick is due anywhere in this context
  }
  const auto [lo, hi] = ContextCoreRange();
  rc.in_catchup = true;
  TickElisionCounters& el = elision();
  const uint64_t elided_before = el.ticks_elided;
  // Idle cores whose ticks are literal no-ops (CFS: TaskTick returns
  // immediately with no current) are fast-forwarded arithmetically — but
  // only when unarmed-or-armed-later, so a due armed tick still replays
  // below and is counted as fired.
  if (scheduler_->IdleTickIsNoOp()) {
    for (CoreId c = lo; c < hi; ++c) {
      Core* core = cores_[c].get();
      if (!core->idle() || core->next_tick > t ||
          (core->armed_at >= 0 && core->armed_at <= t)) {
        continue;
      }
      const uint64_t skipped =
          static_cast<uint64_t>((t - core->next_tick) / tick_period_) + 1;
      el.ticks_elided += skipped;
      core->next_tick += static_cast<SimDuration>(skipped) * tick_period_;
      rc.catchup_dirty.Set(c);
    }
  }
  // Replay the rest in global time order (grid instants are pairwise
  // distinct across cores). Every point strictly before `t` is inside a
  // certified side-effect-free window; a point at exactly `t` — at most one,
  // and necessarily last — may mutate (reschedule, steal), which is exact
  // because its replay clock equals engine-now.
  while (true) {
    CoreId best = kInvalidCore;
    SimTime best_time = INT64_MAX;
    for (CoreId c = lo; c < hi; ++c) {
      const SimTime nt = cores_[c]->next_tick;
      if (nt <= t && nt < best_time) {
        best_time = nt;
        best = c;
      }
    }
    if (best == kInvalidCore) {
      break;
    }
    ReplayTick(best, rc);
  }
  if (el.ticks_elided != elided_before) {
    ++el.batch_updates;
  }
  rc.in_catchup = false;
  // Re-arm only the cores whose grid advanced — unless a mutating replay
  // touched other state (rearm_deferred), in which case sweep the context.
  if (rc.rearm_deferred) {
    rc.rearm_deferred = false;
    rc.catchup_dirty = CpuSet();
    for (CoreId c = lo; c < hi; ++c) {
      ReevaluateTick(c);
    }
  } else {
    const CpuSet dirty = rc.catchup_dirty;
    rc.catchup_dirty = CpuSet();
    for (int c = dirty.FirstSet(); c >= 0; c = dirty.NextSet(c)) {
      ReevaluateTick(static_cast<CoreId>(c));
    }
  }
  RecomputeMinNextTick();
}

void Machine::ReevaluateTick(CoreId core) {
  if (!booted_) {
    return;
  }
  TickReplayCtx& rc = replay_[1 + engine_->current_shard()];
  if (rc.in_catchup) {
    // State is mid-replay; the sweep at the end of CatchUpTicks re-derives
    // every affected core's arming from the settled state.
    rc.rearm_deferred = true;
    return;
  }
  Core* c = cores_[core].get();
  SimTime arm_at = c->next_tick;
  if (tickless_) {
    const SimTime b = scheduler_->TickBoundary(core, c->current(), c->next_tick);
    if (b == kTickNever) {
      arm_at = -1;
    } else if (b > c->next_tick) {
      // First grid point strictly after the boundary: a tick exactly at the
      // boundary is still side-effect free.
      arm_at = c->next_tick + ((b - c->next_tick) / tick_period_ + 1) * tick_period_;
    }
  }
  if (arm_at == c->armed_at) {
    return;  // already armed there (or unarmed), and the event is live
  }
  // Cancel-before-arm: with retained generation-checked handles this is a
  // structural guarantee that a core never accumulates two live tick events.
  engine_->Cancel(c->tick_event);
  c->tick_event.Reset();
  c->armed_at = arm_at;
  if (arm_at >= 0) {
    // Lane by certification: a tick that may act across cores (ULE's idle
    // steal poll) lives in the global lane so it can never fire inside a
    // parallel window; everything else is core-local and shardable. Cores
    // reaching this point from a shard context are busy (the window gate
    // excludes idle cores), and busy-core ticks never cross.
    if (scheduler_->TickMayCross(core)) {
      assert(engine_->current_shard() < 0 && "cross-capable tick armed from a shard context");
      c->tick_event = engine_->At(arm_at, [this, core] { TickCore(core); });
    } else {
      c->tick_event = engine_->AtCore(core, arm_at, [this, core] { TickCore(core); });
    }
  }
}

void Machine::RearmElidedTicks() {
  if (!booted_) {
    return;
  }
  TickReplayCtx& rc = replay_[1 + engine_->current_shard()];
  if (rc.in_catchup) {
    rc.rearm_deferred = true;
    return;
  }
  const auto [lo, hi] = ContextCoreRange();
  for (CoreId c = lo; c < hi; ++c) {
    ReevaluateTick(c);
  }
}

void Machine::RecomputeMinNextTick() {
  const int shard = engine_->current_shard();
  if (shard >= 0) {
    const auto [lo, hi] = ContextCoreRange();
    SimTime m = INT64_MAX;
    for (CoreId c = lo; c < hi; ++c) {
      m = std::min(m, cores_[c]->next_tick);
    }
    shard_min_next_tick_[shard] = m;
    return;
  }
  const ShardPlan& plan = engine_->shard_plan();
  SimTime g = INT64_MAX;
  if (plan.num_shards() <= 1) {
    for (const auto& core : cores_) {
      g = std::min(g, core->next_tick);
    }
    if (!shard_min_next_tick_.empty()) {
      shard_min_next_tick_[0] = g;
    }
  } else {
    for (int s = 0; s < plan.num_shards(); ++s) {
      SimTime m = INT64_MAX;
      const CoreId hi = std::min(plan.end[s], num_cores());
      for (CoreId c = plan.begin[s]; c < hi; ++c) {
        m = std::min(m, cores_[c]->next_tick);
      }
      shard_min_next_tick_[s] = m;
      g = std::min(g, m);
    }
  }
  min_next_tick_ = g;
}

bool Machine::ParallelWindowAllowed() const {
  return booted_ && sink_ == nullptr && observers_.empty() && idle_mask_.Empty() &&
         scheduler_->ShardParallelSafe();
}

void Machine::FoldShardSlabs() {
  const int shards = engine_->num_shards();
  for (int s = 1; s <= shards; ++s) {
    counter_slabs_[0].Accumulate(counter_slabs_[s]);
    counter_slabs_[s] = MachineCounters{};
    elision_slabs_[0].Accumulate(elision_slabs_[s]);
    elision_slabs_[s] = TickElisionCounters{};
    assert(replay_[s].replay_now < 0 && !replay_[s].in_catchup);
  }
  // Shard buckets stay exact across the window (every next_tick mutation
  // ends in a scoped RecomputeMinNextTick), so their min is the global min.
  SimTime g = INT64_MAX;
  for (const SimTime m : shard_min_next_tick_) {
    g = std::min(g, m);
  }
  min_next_tick_ = g;
}

SimThread* Machine::CreateThread(ThreadSpec spec) {
  assert(spec.body != nullptr && "threads need a body");
  if (spec.affinity.Empty()) {
    spec.affinity = CpuMask::AllOf(num_cores());
  }
  threads_.push_back(std::make_unique<SimThread>(next_thread_id_++, std::move(spec)));
  return threads_.back().get();
}

void Machine::StartThread(SimThread* thread, SimThread* parent) {
  assert(booted_ && "Boot() the machine before starting threads");
  assert(thread->state() == ThreadState::kCreated);
  CatchUpTicks();
  ++counters().forks;
  ++alive_threads_;
  scheduler_->TaskNew(thread, parent);
  const CoreId origin =
      (parent != nullptr && parent->cpu() != kInvalidCore) ? parent->cpu() : CoreId{0};
  const CoreId cpu = scheduler_->SelectTaskRq(thread, origin, EnqueueKind::kFork);
  assert(thread->CanRunOn(cpu));
  thread->set_cpu(cpu);
  thread->set_state(ThreadState::kRunnable);
  thread->runnable_since = now();
  scheduler_->EnqueueTask(cpu, thread, EnqueueKind::kFork);
  scheduler_->CheckPreemptWakeup(cpu, thread);
  if (sink_ != nullptr) {
    sink_->Fork(now(), thread->id(), cpu);
  }
  if (!observers_.empty()) {
    observers_.OnFork(now(), *thread, cpu);
  }
  if (cores_[cpu]->idle()) {
    SetNeedResched(cpu);
  }
  ReevaluateTick(cpu);
}

SimThread* Machine::Spawn(ThreadSpec spec, SimThread* parent) {
  SimThread* t = CreateThread(std::move(spec));
  StartThread(t, parent);
  return t;
}

bool Machine::Wake(SimThread* thread, CoreId waker_core) {
  if (thread->state() != ThreadState::kBlocked) {
    return false;
  }
  CatchUpTicks();
  ++counters().wakeups;
  thread->last_sleep_duration = now() - thread->block_start;
  thread->total_sleep += thread->last_sleep_duration;
  CoreId origin = waker_core;
  if (origin == kInvalidCore) {
    origin = thread->last_ran_cpu() != kInvalidCore ? thread->last_ran_cpu() : CoreId{0};
  }
  const CoreId cpu = scheduler_->SelectTaskRq(thread, origin, EnqueueKind::kWakeup);
  assert(thread->CanRunOn(cpu));
  thread->set_cpu(cpu);
  thread->set_state(ThreadState::kRunnable);
  thread->runnable_since = now();
  scheduler_->EnqueueTask(cpu, thread, EnqueueKind::kWakeup);
  scheduler_->CheckPreemptWakeup(cpu, thread);
  if (sink_ != nullptr) {
    sink_->Wake(now(), thread->id(), cpu);
  }
  if (!observers_.empty()) {
    observers_.OnWake(now(), *thread, cpu);
  }
  if (cores_[cpu]->idle()) {
    SetNeedResched(cpu);
  }
  ReevaluateTick(cpu);
  return true;
}

void Machine::SetAffinity(SimThread* thread, const CpuMask& mask) {
  assert(!mask.Empty());
  CatchUpTicks();
  thread->set_affinity(mask);
  switch (thread->state()) {
    case ThreadState::kRunnable: {
      const CoreId cur = thread->cpu();
      if (!mask.Test(cur)) {
        scheduler_->DequeueTask(cur, thread);
        const CoreId cpu = scheduler_->SelectTaskRq(thread, cur, EnqueueKind::kMigrate);
        scheduler_->EnqueueTask(cpu, thread, EnqueueKind::kMigrate);
        NoteMigration(thread, cur, cpu);
      }
      break;
    }
    case ThreadState::kRunning:
      // ReschedCore migrates it after put_prev if the core is now disallowed.
      SetNeedResched(thread->cpu());
      break;
    default:
      break;  // blocked/created threads are placed at their next wake/start
  }
}

void Machine::SetNice(SimThread* thread, Nice nice) {
  assert(nice >= kNiceMin && nice <= kNiceMax);
  if (thread->nice() == nice) {
    return;
  }
  CatchUpTicks();
  thread->set_nice(nice);
  if (thread->state() == ThreadState::kDead || thread->state() == ThreadState::kCreated) {
    return;
  }
  scheduler_->ReniceTask(thread);
  if (thread->state() == ThreadState::kRunning || thread->state() == ThreadState::kRunnable) {
    SetNeedResched(thread->cpu());
    ReevaluateTick(thread->cpu());
  }
}

void Machine::SetNeedResched(CoreId core) {
  Core* c = cores_[core].get();
  if (c->resched_pending) {
    return;
  }
  c->resched_pending = true;
  if (engine_->current_shard() >= 0) {
    // Inside a window the only resched source is tick preemption, which is
    // core-local by construction (the gate excludes idle cores, so no
    // steal/migrate handler can be the requester) — shard lane.
    c->resched_event = engine_->AtCore(core, now(), [this, core] { ReschedCore(core); });
  } else {
    // Serial-context requests (wake, fork, affinity, renice) may run handlers
    // that migrate or steal across shards — global lane, as today.
    c->resched_event = engine_->At(now(), [this, core] { ReschedCore(core); });
  }
}

void Machine::ChargeOverhead(CoreId core, SimDuration d, OverheadKind kind) {
  if (d <= 0) {
    return;
  }
  counters().overhead_ns[static_cast<int>(kind)] += d;
  Core* c = cores_[core].get();
  c->sched_overhead_ns += d;
  SimThread* cur = c->current();
  if (cur != nullptr) {
    cur->work_started += d;
    if (c->completion_event.valid()) {
      if (engine_->current_shard() < 0 || c->completion_local) {
        engine_->Cancel(c->completion_event);
      }
      c->completion_event.Reset();
      ArmCompletion(core, cur);
    }
  }
}

void Machine::ArmCompletion(CoreId core, SimThread* thread) {
  Core* c = cores_[core].get();
  const SimTime when = thread->work_started + thread->remaining_work;
  // Each arm invalidates any orphaned prior completion (see Core::
  // completion_epoch): the callback carries the epoch and no-ops if stale.
  const uint64_t epoch = ++c->completion_epoch;
  SimThread* t = thread;
  auto cb = [this, core, t, epoch] { OnComputeDone(core, t, epoch); };
  if (thread->body()->NextStepIsPureCompute()) {
    // The post-completion body step provably stays on this core (another
    // compute segment) — the event is shard-safe.
    c->completion_local = true;
    c->completion_event = engine_->AtCore(core, when, std::move(cb));
  } else {
    // The body may block, yield, exit, or spawn — all of which can touch
    // other shards' state. Route through the global lane; from inside a
    // window that means staging at the barrier (and stopping this shard's
    // drain, so nothing runs past the uncommitted completion).
    c->completion_local = false;
    if (engine_->current_shard() >= 0) {
      engine_->StageCrossAt(when, std::move(cb), &c->completion_event);
    } else {
      c->completion_event = engine_->At(when, std::move(cb));
    }
  }
}

void Machine::NoteMigration(SimThread* thread, CoreId from, CoreId to) {
  if (from == to) {
    return;
  }
  ++counters().migrations;
  ++thread->migrations;
  thread->set_cpu(to);
  if (sink_ != nullptr) {
    sink_->Migrate(now(), thread->id(), from, to);
  }
  if (!observers_.empty()) {
    observers_.OnMigrate(now(), *thread, from, to);
  }
  if (cores_[to]->idle()) {
    SetNeedResched(to);
  }
  ReevaluateTick(from);
  ReevaluateTick(to);
}

SimThread* Machine::FindThread(ThreadId id) const {
  for (const auto& t : threads_) {
    if (t->id() == id) {
      return t.get();
    }
  }
  return nullptr;
}

SimDuration Machine::TotalBusyTime() const {
  // Pending elided ticks may still owe overhead charges (ULE's idle steal
  // scans); settle them so derived fractions match the always-ticking mode.
  const_cast<Machine*>(this)->CatchUpTicks();
  SimDuration busy = 0;
  const SimTime t = now();
  for (const auto& core : cores_) {
    SimDuration idle = core->idle_ns;
    if (core->idle() && core->idle_since >= 0) {
      idle += t - core->idle_since;
    }
    busy += t - idle;
  }
  return busy;
}

double Machine::OverheadFraction() const {
  const SimDuration busy = TotalBusyTime();
  if (busy <= 0) {
    return 0.0;
  }
  return static_cast<double>(counters().total_overhead()) / static_cast<double>(busy);
}

double Machine::SchedulerWorkFraction() const {
  const SimDuration busy = TotalBusyTime();
  if (busy <= 0) {
    return 0.0;
  }
  const SimDuration work =
      counters().total_overhead() -
      counters().overhead_ns[static_cast<int>(OverheadKind::kContextSwitch)];
  return static_cast<double>(work) / static_cast<double>(busy);
}

// ---- internal dispatch machinery ----

SimThread* Machine::StopCurrent(CoreId core) {
  Core* c = cores_[core].get();
  SimThread* t = c->current();
  if (t == nullptr) {
    return nullptr;
  }
  // Logical cancellation first: the epoch bump alone makes any in-flight
  // completion a no-op. Physical Cancel is an optimization (frees the node)
  // and is only safe when the event's lane belongs to this context — a
  // shard thread must not touch the global lane's node pool.
  ++c->completion_epoch;
  if (engine_->current_shard() < 0 || c->completion_local) {
    engine_->Cancel(c->completion_event);
  }
  c->completion_event.Reset();
  const SimTime t_now = now();
  t->total_runtime += t_now - t->last_dispatch;
  const SimDuration useful = t_now - t->work_started;
  if (useful > 0) {
    t->remaining_work = std::max<SimDuration>(0, t->remaining_work - useful);
  }
  t->set_last_ran_cpu(core);
  t->last_descheduled = t_now;
  c->set_current(nullptr);
  idle_mask_.Set(core);
  return t;
}

void Machine::ReschedCore(CoreId core) {
  CatchUpTicks();
  Core* c = cores_[core].get();
  c->resched_pending = false;
  c->resched_event.Reset();
  SimThread* prev = StopCurrent(core);
  if (prev != nullptr) {
    prev->set_state(ThreadState::kRunnable);
    prev->runnable_since = now();
    ++prev->preemptions;
    ++c->preemptions;
    if (sink_ != nullptr) {
      sink_->Deschedule(now(), prev->id(), core, 'P');
    }
    if (!observers_.empty()) {
      observers_.OnDeschedule(now(), core, *prev, 'P');
    }
    scheduler_->PutPrevTask(core, prev);
    if (!prev->CanRunOn(core)) {
      scheduler_->DequeueTask(core, prev);
      const CoreId cpu = scheduler_->SelectTaskRq(prev, core, EnqueueKind::kMigrate);
      scheduler_->EnqueueTask(cpu, prev, EnqueueKind::kMigrate);
      NoteMigration(prev, core, cpu);
    }
  }

  SimThread* next = scheduler_->PickNextTask(core);
  if (next == nullptr) {
    // Going idle means leaving the parallel regime (the gate requires no
    // idle cores); a shard-lane resched only exists for tick preemption,
    // which always has the preempted thread to re-pick.
    assert(engine_->current_shard() < 0 && "a shard-lane reschedule found an empty runqueue");
    scheduler_->OnCoreIdle(core);
    next = scheduler_->PickNextTask(core);
  }
  if (next == nullptr) {
    if (c->idle_since < 0) {
      c->idle_since = now();
    }
    ReevaluateTick(core);
    return;
  }
  if (prev != nullptr && next != prev && prev->remaining_work > 0) {
    // Involuntary preemption mid-computation: the preempted thread will have
    // to refill its working set when it resumes.
    prev->remaining_work += params_.preemption_cache_penalty;
  }
  Dispatch(core, next, /*switched=*/next != prev);
}

void Machine::Dispatch(CoreId core, SimThread* thread, bool switched) {
  Core* c = cores_[core].get();
  assert(c->current() == nullptr);
  if (c->idle_since >= 0) {
    const SimDuration idled = now() - c->idle_since;
    c->idle_ns += idled;
    c->avg_idle += (idled - c->avg_idle) / 8;  // kernel: update_avg()
    c->idle_since = -1;
  }
  thread->set_state(ThreadState::kRunning);
  thread->set_cpu(core);
  thread->total_wait += now() - thread->runnable_since;
  thread->last_dispatch = now();
  ++thread->dispatches;
  if (thread->first_dispatch < 0) {
    thread->first_dispatch = now();
  }
  SimDuration cost = 0;
  if (switched) {
    cost = params_.context_switch_cost;
    MachineCounters& ctr = counters();
    ++ctr.context_switches;
    ++c->context_switches;
    ctr.overhead_ns[static_cast<int>(OverheadKind::kContextSwitch)] += cost;
    c->sched_overhead_ns += cost;
  }
  thread->work_started = now() + cost;
  c->set_current(thread);
  idle_mask_.Clear(core);
  if (sink_ != nullptr) {
    sink_->Dispatch(now(), thread->id(), core);
  }
  if (!observers_.empty()) {
    observers_.OnDispatch(now(), core, *thread);
  }
  if (thread->remaining_work > 0) {
    ArmCompletion(core, thread);
  } else if (engine_->current_shard() >= 0 && !thread->body()->NextStepIsPureCompute()) {
    // Dispatched with no residual work but an uncertified next step (it may
    // block/yield/exit): defer the body to the barrier at this same instant.
    SimThread* t = thread;
    engine_->StageCrossAt(now(), [this, core, t] { RunBody(core, t); }, nullptr);
  } else {
    RunBody(core, thread);
  }
  ReevaluateTick(core);
}

void Machine::OnComputeDone(CoreId core, SimThread* thread, uint64_t epoch) {
  Core* c = cores_[core].get();
  if (epoch != c->completion_epoch) {
    return;  // logically cancelled (see Core::completion_epoch)
  }
  CatchUpTicks();
  assert(c->current() == thread);
  c->completion_event.Reset();
  thread->remaining_work = 0;
  thread->work_started = now();
  RunBody(core, thread);
}

void Machine::RunBody(CoreId core, SimThread* thread) {
  Core* c = cores_[core].get();
  ThreadContext ctx(this, thread);
  // A body may perform many instantaneous operations (lock handoffs, pipe
  // writes) before its next compute/block; cap the loop to catch bodies that
  // never consume time.
  for (int spins = 0; spins < 100000; ++spins) {
    const Step step = thread->body()->OnRun(ctx);
    // A body running inside a window was certified pure-compute; anything
    // else here means the certification (NextStepIsPureCompute) lied.
    assert(engine_->current_shard() < 0 || step.kind == Step::Kind::kCompute);
    switch (step.kind) {
      case Step::Kind::kCompute: {
        if (step.duration <= 0) {
          continue;
        }
        thread->remaining_work = step.duration;
        ArmCompletion(core, thread);
        return;
      }
      case Step::Kind::kBlock:
        BlockCurrent(core, thread);
        return;
      case Step::Kind::kYield: {
        StopCurrent(core);
        thread->set_state(ThreadState::kRunnable);
        thread->runnable_since = now();
        if (sink_ != nullptr) {
          sink_->Deschedule(now(), thread->id(), core, 'Y');
        }
        if (!observers_.empty()) {
          observers_.OnDeschedule(now(), core, *thread, 'Y');
        }
        scheduler_->YieldTask(core, thread);
        SimThread* next = scheduler_->PickNextTask(core);
        if (next == nullptr) {
          scheduler_->OnCoreIdle(core);
          next = scheduler_->PickNextTask(core);
        }
        if (next == nullptr) {
          if (c->idle_since < 0) {
            c->idle_since = now();
          }
          ReevaluateTick(core);
          return;
        }
        Dispatch(core, next, /*switched=*/next != thread);
        return;
      }
      case Step::Kind::kExit:
        ExitCurrent(core, thread);
        return;
    }
  }
  assert(false && "thread body made 100000 instantaneous steps without consuming time");
}

void Machine::BlockCurrent(CoreId core, SimThread* thread) {
  StopCurrent(core);
  thread->set_state(ThreadState::kBlocked);
  thread->block_start = now();
  if (sink_ != nullptr) {
    sink_->Deschedule(now(), thread->id(), core, 'B');
  }
  if (!observers_.empty()) {
    observers_.OnDeschedule(now(), core, *thread, 'B');
  }
  scheduler_->OnTaskBlock(core, thread, /*voluntary=*/true);

  SimThread* next = scheduler_->PickNextTask(core);
  if (next == nullptr) {
    scheduler_->OnCoreIdle(core);
    next = scheduler_->PickNextTask(core);
  }
  if (next == nullptr) {
    Core* c = cores_[core].get();
    if (c->idle_since < 0) {
      c->idle_since = now();
    }
    ReevaluateTick(core);
    return;
  }
  Dispatch(core, next, /*switched=*/true);
}

void Machine::ExitCurrent(CoreId core, SimThread* thread) {
  StopCurrent(core);
  thread->set_state(ThreadState::kDead);
  thread->exit_time = now();
  if (sink_ != nullptr) {
    sink_->Deschedule(now(), thread->id(), core, 'X');
  }
  if (!observers_.empty()) {
    observers_.OnDeschedule(now(), core, *thread, 'X');
  }
  --alive_threads_;
  ++counters().exits;
  scheduler_->TaskExit(thread);
  if (on_thread_exit) {
    on_thread_exit(thread);
  }

  SimThread* next = scheduler_->PickNextTask(core);
  if (next == nullptr) {
    scheduler_->OnCoreIdle(core);
    next = scheduler_->PickNextTask(core);
  }
  if (next == nullptr) {
    Core* c = cores_[core].get();
    if (c->idle_since < 0) {
      c->idle_since = now();
    }
    ReevaluateTick(core);
    return;
  }
  Dispatch(core, next, /*switched=*/true);
}

}  // namespace schedbattle
