#include "src/sched/observer.h"

#include <algorithm>

namespace schedbattle {

const char* PickReasonName(PickReason reason) {
  switch (reason) {
    case PickReason::kPinned:
      return "pinned";
    case PickReason::kPrevAffine:
      return "prev_affine";
    case PickReason::kWakerPull:
      return "waker_pull";
    case PickReason::kIdleSibling:
      return "idle_sibling";
    case PickReason::kWakeWideSpread:
      return "wake_wide_spread";
    case PickReason::kIdlest:
      return "idlest";
    case PickReason::kPriorityFit:
      return "priority_fit";
    case PickReason::kLowestLoad:
      return "lowest_load";
  }
  return "unknown";
}

const char* BalanceKindName(BalancePassRecord::Kind kind) {
  switch (kind) {
    case BalancePassRecord::Kind::kPeriodic:
      return "periodic";
    case BalancePassRecord::Kind::kIdlePull:
      return "idle_pull";
    case BalancePassRecord::Kind::kIdleSteal:
      return "idle_steal";
  }
  return "unknown";
}

void ObserverBus::Add(MachineObserver* observer) {
  if (observer == nullptr || Contains(observer)) {
    return;
  }
  observers_.push_back(observer);
}

void ObserverBus::Remove(MachineObserver* observer) {
  observers_.erase(std::remove(observers_.begin(), observers_.end(), observer),
                   observers_.end());
}

bool ObserverBus::Contains(const MachineObserver* observer) const {
  return std::find(observers_.begin(), observers_.end(), observer) != observers_.end();
}

}  // namespace schedbattle
