#include "src/sched/sched_class.h"

namespace schedbattle {

int Scheduler::InteractivityPenaltyOf(const SimThread* /*thread*/) const { return -1; }

int64_t Scheduler::MinVruntimeOf(CoreId /*core*/) const { return kNoMinVruntime; }

}  // namespace schedbattle
