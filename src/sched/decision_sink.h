// DecisionSink: the zero-virtual-dispatch capture path for the schedscope
// decision-record stream.
//
// The ObserverBus costs roughly one indirect call per observer per event,
// which is fine for stats and tracing but is most of the budget for a
// consumer that wants *every* event: the bench-baseline observer-overhead
// gate requires an attached decision log to cost < 5% events/sec, and the
// virtual fan-out alone measures ~3% on the bench workload. The sink is
// therefore not a MachineObserver: the Machine holds a typed `DecisionSink*`
// slot next to the bus and calls the inline appenders below directly, so an
// attached-sink emission compiles down to a null check, a length check and a
// handful of stores.
//
// Storage is built for the same budget, informed by measurement on the bench
// workload (~2.3 records per engine event, ~24 bytes per record):
//
//  - Records are encoded compactly — an 8-byte header word (type tag folded
//    into the timestamp's top byte) and a packed, narrowed per-type payload
//    (9 bytes for the five high-frequency lifecycle events, 35 for pick
//    decisions). The old array-of-80-byte-union layout cost 3.3x the bytes.
//  - Appends write records *directly* into 16 MiB slabs: one bounds check
//    against the slab end, the record stores, one pointer bump. Earlier
//    designs staged records in a 4 KiB buffer and bulk-flushed with
//    non-temporal stores; both the flush bookkeeping and the second copy
//    measured as most of the attached cost (a per-flush sfence alone was
//    ~8% events/sec), while writing every byte exactly once with plain
//    stores sits near the raw store floor (~1 ns/record). Written lines
//    retire through the cache hierarchy like any other store stream; at
//    ~55 bytes per engine event the capture stream is a small fraction of
//    the simulation's own traffic.
//  - A fresh slab is prefaulted (memset) when allocated — one page fault per
//    page up front instead of a fault storm spread across the measured run —
//    and retired slabs go to a process-wide freelist, so every log after the
//    first appends into already-faulted memory with no allocation at all.
//    (Slab contents are never read beyond the fill point, so reuse cannot
//    leak state between runs.) Growing 327 KiB malloc chunks on the hot path
//    — the original design — cost ~20% events/sec in page faults and mmap
//    churn alone.
//
// Records never straddle a slab boundary (a record that does not fit closes
// the slab and opens a new one), so readers walk contiguous segments — one
// per slab. The sink is storage only; decoding, export formats and the
// header live in src/metrics/decision_log.*.
#ifndef SRC_SCHED_DECISION_SINK_H_
#define SRC_SCHED_DECISION_SINK_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/sched/observer.h"
#include "src/sched/types.h"
#include "src/sim/time.h"

namespace schedbattle {

// Record type tags, shared with the decoded DecisionRecord representation
// (DecisionRecord::Type aliases this enum).
enum class DecisionType : uint8_t {
  kDispatch = 0,
  kDeschedule = 1,
  kWake = 2,
  kMigrate = 3,
  kFork = 4,
  kPick = 5,
  kBalance = 6,
  kPreempt = 7,
};
inline constexpr int kNumDecisionTypes = 8;

// On-the-wire record layout: an 8-byte header word — the type tag in the top
// byte, the timestamp in the low 56 bits (2^56 ns is 833 simulated days) —
// followed by a packed per-type payload. The narrowed fields below are what
// make attached logging cheap: they cut the stream from ~36 to ~24 bytes per
// record (~84 to ~55 bytes per engine event). Ranges are debug-asserted at
// the append sites: thread ids fit 32 bits, cores fit 16 (CpuMask caps
// machines at 64 cores), scan counts and runqueue depths fit 16.
// kInvalidThread and kInvalidCore (-1) survive the round-trip.
inline constexpr int kDecisionTimeBits = 56;
inline constexpr uint64_t kDecisionTimeMask = (uint64_t{1} << kDecisionTimeBits) - 1;

#pragma pack(push, 1)
// Payload of the five lifecycle record types.
struct DecisionLifePayload {
  int32_t thread;
  int16_t core;       // dispatch/deschedule/wake/fork target, migrate dest
  int16_t from_core;  // migrate only; kInvalidCore otherwise
  uint8_t reason;     // deschedule only: P/B/X/Y
};
// PickCpuDecision, narrowed (the struct itself is 64 padded bytes).
struct DecisionPickPayload {
  int32_t thread;
  int16_t origin;
  int16_t prev;
  int16_t chosen;
  uint8_t kind;
  uint8_t reason;
  uint16_t cores_scanned;
  uint8_t affine_hit;
  int16_t chosen_rq;
  int16_t prev_rq;
  int64_t sched_key;
  uint64_t idle_mask;
};
// PreemptDecision, narrowed (the struct itself is 32 padded bytes).
struct DecisionPreemptPayload {
  int32_t preemptor;
  int32_t victim;
  int16_t core;
  uint8_t fired;
  int64_t margin;
};
#pragma pack(pop)
static_assert(sizeof(DecisionLifePayload) == 9, "packed lifecycle payload");
static_assert(sizeof(DecisionPickPayload) == 35, "packed pick payload");
static_assert(sizeof(DecisionPreemptPayload) == 19, "packed preempt payload");

// Payload byte count per record type; a record on the wire is
// [t|tag<<56 : u64][payload]. Balance passes are rare (~0.1% of records on
// the bench workload), so BalancePassRecord is stored verbatim.
constexpr size_t DecisionPayloadSize(DecisionType type) {
  switch (type) {
    case DecisionType::kPick:
      return sizeof(DecisionPickPayload);
    case DecisionType::kBalance:
      return sizeof(BalancePassRecord);
    case DecisionType::kPreempt:
      return sizeof(DecisionPreemptPayload);
    default:
      return sizeof(DecisionLifePayload);
  }
}
inline constexpr size_t kDecisionRecordOverhead = sizeof(uint64_t);

// Records are packed back-to-back with no padding: the capture cost is
// dominated by cache-line traffic (ownership misses on fresh slab lines plus
// eviction of the simulation's working set), so fewer bytes beat aligned
// stores — x86 handles the occasional line-splitting store far cheaper than
// an extra line's worth of misses. Exports re-encode per record, so the wire
// layout is internal.
constexpr size_t DecisionWireSize(DecisionType type) {
  return kDecisionRecordOverhead + DecisionPayloadSize(type);
}

class DecisionSink final {
 public:
  DecisionSink();
  ~DecisionSink();  // returns slabs to the process-wide freelist
  DecisionSink(const DecisionSink&) = delete;
  DecisionSink& operator=(const DecisionSink&) = delete;

  // ---- hot-path appenders (called by Machine's emission sites) ----
  void Dispatch(SimTime now, ThreadId thread, CoreId core) {
    Life(now, DecisionType::kDispatch, thread, core, kInvalidCore, 0);
  }
  void Deschedule(SimTime now, ThreadId thread, CoreId core, char reason) {
    Life(now, DecisionType::kDeschedule, thread, core, kInvalidCore,
         static_cast<uint8_t>(reason));
  }
  void Wake(SimTime now, ThreadId thread, CoreId target) {
    Life(now, DecisionType::kWake, thread, target, kInvalidCore, 0);
  }
  void Migrate(SimTime now, ThreadId thread, CoreId from, CoreId to) {
    Life(now, DecisionType::kMigrate, thread, to, from, 0);
  }
  void Fork(SimTime now, ThreadId thread, CoreId target) {
    Life(now, DecisionType::kFork, thread, target, kInvalidCore, 0);
  }
  void Pick(SimTime now, const PickCpuDecision& d) {
    assert(d.thread >= INT32_MIN && d.thread <= INT32_MAX);
    assert(d.cores_scanned >= 0 && d.cores_scanned <= UINT16_MAX);
    assert(d.chosen_rq >= INT16_MIN && d.chosen_rq <= INT16_MAX);
    assert(d.prev_rq >= INT16_MIN && d.prev_rq <= INT16_MAX);
    const DecisionPickPayload p{static_cast<int32_t>(d.thread),
                                static_cast<int16_t>(d.origin),
                                static_cast<int16_t>(d.prev),
                                static_cast<int16_t>(d.chosen),
                                static_cast<uint8_t>(d.kind),
                                static_cast<uint8_t>(d.reason),
                                static_cast<uint16_t>(d.cores_scanned),
                                static_cast<uint8_t>(d.affine_hit),
                                static_cast<int16_t>(d.chosen_rq),
                                static_cast<int16_t>(d.prev_rq),
                                d.sched_key,
                                d.idle_mask};
    Put(now, DecisionType::kPick, &p, sizeof(p));
  }
  void Balance(SimTime now, const BalancePassRecord& r) {
    Put(now, DecisionType::kBalance, &r, sizeof(r));
  }
  void Preempt(SimTime now, const PreemptDecision& d) {
    assert(d.preemptor >= INT32_MIN && d.preemptor <= INT32_MAX);
    assert(d.victim >= INT32_MIN && d.victim <= INT32_MAX);
    const DecisionPreemptPayload p{static_cast<int32_t>(d.preemptor),
                                   static_cast<int32_t>(d.victim),
                                   static_cast<int16_t>(d.core),
                                   static_cast<uint8_t>(d.fired), d.margin};
    Put(now, DecisionType::kPreempt, &p, sizeof(p));
  }

  // Record count: recounted lazily by a segment scan (cached, keyed on the
  // byte total) so the append path carries no per-record counter.
  size_t size() const;

  // Pre-fills the process-wide slab freelist with `min_slabs` prefaulted
  // 16 MiB slabs (clamped to the pool cap). Benchmarks call this before a
  // measured window so no slab allocation or first-touch fault lands inside
  // it; ordinary runs never need it.
  static void WarmSlabPool(size_t min_slabs);

  // A raw record in the encoded stream. `payload` points at
  // DecisionPayloadSize(type) valid bytes.
  struct RawRecord {
    DecisionType type;
    SimTime t;
    const uint8_t* payload;
  };

  // Sequential reader over the encoded stream, in emission order. Valid
  // while the sink is alive and not appended to.
  class Reader {
   public:
    explicit Reader(const DecisionSink& sink) : sink_(&sink) {}
    bool Next(RawRecord* out);

   private:
    const DecisionSink* sink_;
    size_t segment_ = 0;  // == slab index
    size_t offset_ = 0;
  };

  // Start offsets of every record (segment index << 32 | byte offset),
  // built on first use; O(1) random access for at(i)-style consumers.
  const std::vector<uint64_t>& Index() const;
  RawRecord RecordAt(size_t i) const;

 private:
  friend class Reader;
  static constexpr size_t kSlabBytes = size_t{16} << 20;

  struct Slab {
    std::vector<uint8_t> bytes;  // kSlabBytes; prefaulted or freelist-reused
    size_t used = 0;             // finalized when the slab is closed
  };

  // Pops a slab off the process-wide freelist (already faulted, no memset),
  // or allocates and prefaults a fresh one.
  static std::vector<uint8_t> AcquireSlabBytes();

  void Life(SimTime now, DecisionType type, ThreadId thread, CoreId core, CoreId from,
            uint8_t reason) {
    assert(thread >= INT32_MIN && thread <= INT32_MAX);
    const DecisionLifePayload p{static_cast<int32_t>(thread), static_cast<int16_t>(core),
                                static_cast<int16_t>(from), reason};
    Put(now, type, &p, sizeof(p));
  }

  // The append path is deliberately minimal — one pointer load, a bounds
  // check against the end of the current slab, the record stores, one
  // pointer store. Every byte is written exactly once, straight into slab
  // memory. There is no per-record counter: bookkeeping memory round-trips
  // on every Put measure ~5x the cost of the stores themselves.
  void Put(SimTime now, DecisionType type, const void* payload, size_t n) {
    assert(now >= 0 && (static_cast<uint64_t>(now) & ~kDecisionTimeMask) == 0);
    const size_t wire = kDecisionRecordOverhead + n;
    uint8_t* p = write_ptr_;
    if (p + wire > slab_end_) {
      p = NextSlab();
    }
    // Prefetch-for-write a few lines ahead: appends march linearly through
    // the slab, and issuing the ownership request early hides the store miss
    // the first record landing on each fresh 64-byte line would otherwise
    // take (slabs are page-resident but cache-cold when pool-reused).
    __builtin_prefetch(p + 4 * 64, 1, 3);
    const uint64_t header =
        static_cast<uint64_t>(now) | static_cast<uint64_t>(type) << kDecisionTimeBits;
    std::memcpy(p, &header, sizeof(header));
    std::memcpy(p + kDecisionRecordOverhead, payload, n);
    write_ptr_ = p + wire;
  }

  // Cold path: finalizes the current slab's fill and opens a prefaulted new
  // one. Returns the new write position.
  uint8_t* NextSlab();

  // Segment view for readers: one segment per slab. The last slab's fill is
  // tracked by write_ptr_ (its `used` is finalized only when it closes).
  size_t NumSegments() const { return slabs_.size(); }
  const uint8_t* SegmentData(size_t i) const { return slabs_[i].bytes.data(); }
  size_t SegmentSize(size_t i) const {
    return i + 1 < slabs_.size()
               ? slabs_[i].used
               : static_cast<size_t>(write_ptr_ - slabs_.back().bytes.data());
  }

  size_t TotalBytes() const;

  uint8_t* write_ptr_ = nullptr;  // next append position in the last slab
  uint8_t* slab_end_ = nullptr;   // end of the last slab's storage
  std::vector<Slab> slabs_;       // never empty after construction
  // Lazy read-side caches, keyed on the byte total at build time.
  mutable size_t counted_records_ = 0;
  mutable size_t counted_bytes_ = SIZE_MAX;
  mutable std::vector<uint64_t> index_;  // built by Index()
  mutable size_t index_bytes_ = SIZE_MAX;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_DECISION_SINK_H_
