#include "src/sched/thread.h"

namespace schedbattle {

SimThread::SimThread(ThreadId id, ThreadSpec spec)
    : id_(id),
      name_(std::move(spec.name)),
      nice_(spec.nice),
      group_(spec.group),
      affinity_(spec.affinity),
      body_(std::move(spec.body)),
      parent_runtime_hint_(spec.parent_runtime_hint),
      parent_sleep_hint_(spec.parent_sleep_hint) {}

SimDuration SimThread::RuntimeAt(SimTime now) const {
  SimDuration total = total_runtime;
  if (state_ == ThreadState::kRunning && now > last_dispatch) {
    total += now - last_dispatch;
  }
  return total;
}

}  // namespace schedbattle
