// SimThread: the simulated thread (FreeBSD's struct thread / Linux's
// task_struct, reduced to what schedulers observe).
#ifndef SRC_SCHED_THREAD_H_
#define SRC_SCHED_THREAD_H_

#include <memory>
#include <string>

#include "src/sched/behavior.h"
#include "src/sched/types.h"
#include "src/sim/time.h"

namespace schedbattle {

// Per-scheduler thread state (CFS sched_entity, ULE td_sched). Allocated by
// the active scheduler in TaskNew and owned by the thread.
struct ThreadSchedData {
  virtual ~ThreadSchedData() = default;
};

// Specification for creating a thread.
struct ThreadSpec {
  std::string name;
  Nice nice = 0;
  GroupId group = kRootGroup;
  CpuMask affinity;  // empty means "all cores"
  std::unique_ptr<ThreadBody> body;
  // Synthetic parent history for threads without a simulated parent: how the
  // launching process behaved. ULE uses this for fork inheritance (the
  // paper's sysbench master inherits an interactive score from bash).
  SimDuration parent_runtime_hint = 0;
  SimDuration parent_sleep_hint = 0;
};

class SimThread {
 public:
  SimThread(ThreadId id, ThreadSpec spec);
  SimThread(const SimThread&) = delete;
  SimThread& operator=(const SimThread&) = delete;

  ThreadId id() const { return id_; }
  const std::string& name() const { return name_; }
  Nice nice() const { return nice_; }
  void set_nice(Nice n) { nice_ = n; }
  GroupId group() const { return group_; }

  ThreadState state() const { return state_; }
  void set_state(ThreadState s) { state_ = s; }

  CoreId cpu() const { return cpu_; }
  void set_cpu(CoreId c) { cpu_ = c; }
  // Core the thread last ran on (for cache-affinity heuristics).
  CoreId last_ran_cpu() const { return last_ran_cpu_; }
  void set_last_ran_cpu(CoreId c) { last_ran_cpu_ = c; }

  const CpuMask& affinity() const { return affinity_; }
  void set_affinity(const CpuMask& m) { affinity_ = m; }
  bool CanRunOn(CoreId core) const { return affinity_.Test(core); }

  ThreadBody* body() const { return body_.get(); }
  ThreadSchedData* sched_data() const { return sched_data_.get(); }
  void set_sched_data(std::unique_ptr<ThreadSchedData> d) { sched_data_ = std::move(d); }
  template <typename T>
  T& sched() const {
    return *static_cast<T*>(sched_data_.get());
  }

  // ---- work-segment execution state (managed by Machine) ----
  SimDuration remaining_work = 0;   // unfinished part of the current compute segment
  SimTime last_dispatch = 0;        // when the thread last started running
  SimTime work_started = 0;         // last_dispatch + switch/overhead charges
  SimTime block_start = 0;          // when the thread last blocked
  SimTime runnable_since = 0;       // when the thread last became runnable
  SimDuration last_sleep_duration = 0;  // duration of the most recent voluntary sleep
  SimTime last_descheduled = 0;         // when the thread last stopped running (cache hotness)

  // ---- accounting ----
  SimDuration total_runtime = 0;  // CPU time consumed so far (updated on deschedule)
  SimDuration total_wait = 0;     // time spent runnable but not running
  SimDuration total_sleep = 0;    // time spent blocked
  uint64_t dispatches = 0;
  SimTime first_dispatch = -1;    // first time the thread ran (-1 = never)
  uint64_t preemptions = 0;       // times this thread was involuntarily descheduled
  uint64_t migrations = 0;
  SimTime exit_time = -1;

  // Cumulative runtime as of `now`, including the in-progress run segment.
  SimDuration RuntimeAt(SimTime now) const;

  // Synthetic parent history hints (see ThreadSpec).
  SimDuration parent_runtime_hint() const { return parent_runtime_hint_; }
  SimDuration parent_sleep_hint() const { return parent_sleep_hint_; }

 private:
  ThreadId id_;
  std::string name_;
  Nice nice_;
  GroupId group_;
  ThreadState state_ = ThreadState::kCreated;
  CoreId cpu_ = kInvalidCore;
  CoreId last_ran_cpu_ = kInvalidCore;
  CpuMask affinity_;
  std::unique_ptr<ThreadBody> body_;
  std::unique_ptr<ThreadSchedData> sched_data_;
  SimDuration parent_runtime_hint_;
  SimDuration parent_sleep_hint_;
};

}  // namespace schedbattle

#endif  // SRC_SCHED_THREAD_H_
