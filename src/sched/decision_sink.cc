#include "src/sched/decision_sink.h"

#include <cassert>
#include <mutex>

namespace schedbattle {

// Process-wide slab freelist. Capture runs are frequent and short-lived
// (campaign pools, the fuzzer, the bench gate), and a measurable attached
// cost is first-touch page faults on fresh slab memory — so retired slabs
// are recycled. Slab contents are never read beyond the fill point, so reuse
// cannot leak records between runs, and pool order cannot affect any output.
// Guarded by a mutex: campaign pools run one machine (and thus one sink) per
// worker thread.
namespace {
std::mutex g_slab_pool_mu;
std::vector<std::vector<uint8_t>> g_slab_pool;
constexpr size_t kSlabPoolMax = 24;  // cap resident spare memory at 384 MiB
}  // namespace

void DecisionSink::WarmSlabPool(size_t min_slabs) {
  std::lock_guard<std::mutex> lock(g_slab_pool_mu);
  while (g_slab_pool.size() < min_slabs && g_slab_pool.size() < kSlabPoolMax) {
    std::vector<uint8_t> bytes;
    bytes.resize(kSlabBytes);  // zero-fill = prefault every page now
    g_slab_pool.push_back(std::move(bytes));
  }
}

std::vector<uint8_t> DecisionSink::AcquireSlabBytes() {
  {
    std::lock_guard<std::mutex> lock(g_slab_pool_mu);
    if (!g_slab_pool.empty()) {
      std::vector<uint8_t> bytes = std::move(g_slab_pool.back());
      g_slab_pool.pop_back();
      return bytes;
    }
  }
  std::vector<uint8_t> bytes;
  bytes.resize(kSlabBytes);  // zero-fill = prefault every page now
  return bytes;
}

DecisionSink::DecisionSink() {
  // Acquire (and, if fresh, prefault) the first slab at attach time — before
  // any measured window starts — so the hot path appends into resident pages.
  slabs_.emplace_back();
  slabs_.back().bytes = AcquireSlabBytes();
  write_ptr_ = slabs_.back().bytes.data();
  slab_end_ = write_ptr_ + kSlabBytes;
}

DecisionSink::~DecisionSink() {
  std::lock_guard<std::mutex> lock(g_slab_pool_mu);
  for (Slab& slab : slabs_) {
    if (g_slab_pool.size() >= kSlabPoolMax) {
      break;
    }
    g_slab_pool.push_back(std::move(slab.bytes));
  }
}

uint8_t* DecisionSink::NextSlab() {
  // Close the current slab at the fill point; records never straddle slab
  // boundaries, so readers can walk each slab as a contiguous segment.
  slabs_.back().used = static_cast<size_t>(write_ptr_ - slabs_.back().bytes.data());
  slabs_.emplace_back();
  slabs_.back().bytes = AcquireSlabBytes();
  write_ptr_ = slabs_.back().bytes.data();
  slab_end_ = write_ptr_ + kSlabBytes;
  return write_ptr_;
}

size_t DecisionSink::TotalBytes() const {
  size_t total = 0;
  for (size_t seg = 0; seg < NumSegments(); ++seg) {
    total += SegmentSize(seg);
  }
  return total;
}

size_t DecisionSink::size() const {
  const size_t total = TotalBytes();
  if (counted_bytes_ != total) {
    size_t count = 0;
    for (size_t seg = 0; seg < NumSegments(); ++seg) {
      const uint8_t* data = SegmentData(seg);
      const size_t fill = SegmentSize(seg);
      size_t off = 0;
      while (off < fill) {
        ++count;
        const DecisionType type = static_cast<DecisionType>(data[off + 7]);  // header top byte
        off += DecisionWireSize(type);
      }
      assert(off == fill);
    }
    counted_records_ = count;
    counted_bytes_ = total;
  }
  return counted_records_;
}

bool DecisionSink::Reader::Next(RawRecord* out) {
  while (segment_ < sink_->NumSegments() && offset_ >= sink_->SegmentSize(segment_)) {
    ++segment_;
    offset_ = 0;
  }
  if (segment_ >= sink_->NumSegments()) {
    return false;
  }
  const uint8_t* p = sink_->SegmentData(segment_) + offset_;
  uint64_t header;
  std::memcpy(&header, p, sizeof(header));
  out->type = static_cast<DecisionType>(header >> kDecisionTimeBits);
  out->t = static_cast<SimTime>(header & kDecisionTimeMask);
  out->payload = p + kDecisionRecordOverhead;
  offset_ += DecisionWireSize(out->type);
  assert(offset_ <= sink_->SegmentSize(segment_));
  return true;
}

const std::vector<uint64_t>& DecisionSink::Index() const {
  const size_t total = TotalBytes();
  if (index_bytes_ != total) {
    index_.clear();
    index_.reserve(size());
    for (size_t seg = 0; seg < NumSegments(); ++seg) {
      const uint8_t* data = SegmentData(seg);
      const size_t fill = SegmentSize(seg);
      size_t off = 0;
      while (off < fill) {
        index_.push_back(static_cast<uint64_t>(seg) << 32 | off);
        const DecisionType type = static_cast<DecisionType>(data[off + 7]);  // header top byte
        off += DecisionWireSize(type);
      }
    }
    assert(index_.size() == size());
    index_bytes_ = total;
  }
  return index_;
}

DecisionSink::RawRecord DecisionSink::RecordAt(size_t i) const {
  const uint64_t entry = Index()[i];
  const uint8_t* p = SegmentData(entry >> 32) + static_cast<uint32_t>(entry);
  RawRecord out;
  uint64_t header;
  std::memcpy(&header, p, sizeof(header));
  out.type = static_cast<DecisionType>(header >> kDecisionTimeBits);
  out.t = static_cast<SimTime>(header & kDecisionTimeMask);
  out.payload = p + kDecisionRecordOverhead;
  return out;
}

}  // namespace schedbattle
