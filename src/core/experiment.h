// Experiment configuration: one machine + one scheduler + tunables.
//
// The harness realizes the paper's methodology in simulator form: build two
// otherwise identical machines — one scheduled by CFS, one by ULE — run the
// same workload on both, and attribute every difference to the scheduler.
#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/cfs/cfs_sched.h"
#include "src/sched/machine.h"
#include "src/topo/topology.h"
#include "src/ule/ule_sched.h"

namespace schedbattle {

enum class SchedKind { kCfs, kUle };

std::string_view SchedName(SchedKind kind);

struct ExperimentConfig {
  SchedKind sched = SchedKind::kCfs;
  TopologyConfig topology = CpuTopology::Opteron6172().config();
  MachineParams machine;
  CfsTunables cfs;
  UleTunables ule;
  SimTime horizon = Seconds(600);
  // Per-core background kernel threads, as on the paper's real testbed; on
  // by default for multicore runs (scenarios set it).
  bool system_noise = false;
  // Engine shards: the simulation is partitioned into this many per-core-
  // group event queues advanced under conservative time-window sync (see
  // src/sim/engine.h). Results are byte-identical for any shard count; >1
  // only buys wall-clock on multi-core hosts. 1 = the classic single queue.
  int shards = 1;

  // Optional scheduler-construction override. When set, it replaces the
  // default CFS/ULE construction — used by the checking subsystem to wrap
  // the real scheduler in a fault-injecting decorator (FaultySched).
  std::function<std::unique_ptr<Scheduler>(const ExperimentConfig&)> scheduler_factory;

  static ExperimentConfig SingleCore(SchedKind kind, uint64_t seed = 42);
  static ExperimentConfig Multicore(SchedKind kind, uint64_t seed = 42);
};

std::unique_ptr<Scheduler> MakeSchedulerFor(const ExperimentConfig& config);

}  // namespace schedbattle

#endif  // SRC_CORE_EXPERIMENT_H_
