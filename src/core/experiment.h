// Experiment configuration: one machine + one scheduler + tunables.
//
// The harness realizes the paper's methodology in simulator form: build N
// otherwise identical machines — one per scheduling class under test — run
// the same workload on each, and attribute every difference to the
// scheduler. The classes themselves live in the SchedulerRegistry
// (src/sched/registry.h); this layer owns the per-class tunable structs and
// the machine/topology/horizon around them.
#ifndef SRC_CORE_EXPERIMENT_H_
#define SRC_CORE_EXPERIMENT_H_

#include <functional>
#include <memory>
#include <string>

#include "src/cfs/cfs_sched.h"
#include "src/eevdf/eevdf_sched.h"
#include "src/mlfq/mlfq_sched.h"
#include "src/sched/machine.h"
#include "src/sched/registry.h"
#include "src/topo/topology.h"
#include "src/ule/ule_sched.h"

namespace schedbattle {

struct ExperimentConfig {
  SchedKind sched = SchedKind::kCfs;
  TopologyConfig topology = CpuTopology::Opteron6172().config();
  MachineParams machine;
  CfsTunables cfs;
  UleTunables ule;
  MlfqTunables mlfq;
  EevdfTunables eevdf;
  SimTime horizon = Seconds(600);
  // Per-core background kernel threads, as on the paper's real testbed; on
  // by default for multicore runs (scenarios set it).
  bool system_noise = false;
  // Engine shards: the simulation is partitioned into this many per-core-
  // group event queues advanced under conservative time-window sync (see
  // src/sim/engine.h). Results are byte-identical for any shard count; >1
  // only buys wall-clock on multi-core hosts. 1 = the classic single queue.
  int shards = 1;
  // Event-queue backend for every engine lane (see src/sim/event_queue.h):
  // kHeap, kWheel, or kDefault to follow SCHEDBATTLE_QUEUE / the process
  // default. Pop order is byte-identical across backends by contract, so
  // this is purely a performance knob (the wheel wins on deep serving
  // queues, the heap on shallow ones).
  QueueKind queue = QueueKind::kDefault;

  // Optional scheduler-construction override. When set, it replaces the
  // registry factory — used by the checking subsystem to wrap the real
  // scheduler in a fault-injecting decorator (FaultySched).
  std::function<std::unique_ptr<Scheduler>(const ExperimentConfig&)> scheduler_factory;

  static ExperimentConfig SingleCore(SchedKind kind, uint64_t seed = 42);
  static ExperimentConfig Multicore(SchedKind kind, uint64_t seed = 42);
};

std::unique_ptr<Scheduler> MakeSchedulerFor(const ExperimentConfig& config);

}  // namespace schedbattle

#endif  // SRC_CORE_EXPERIMENT_H_
