#include "src/core/spec.h"

#include <utility>

#include "src/apps/registry.h"
#include "src/metrics/decision_log.h"
#include "src/metrics/schedstats.h"

namespace schedbattle {

AppSpec RegistryApp(std::string name, double scale_mult, SimTime start_at) {
  AppSpec app;
  app.name = std::move(name);
  app.scale_mult = scale_mult;
  app.start_at = start_at;
  return app;
}

ExperimentSpec& ExperimentSpec::Named(std::string name) {
  label = name;
  group = std::move(name);
  return *this;
}
ExperimentSpec& ExperimentSpec::WithSeed(uint64_t s) {
  machine.seed = s;
  return *this;
}
ExperimentSpec& ExperimentSpec::WithSched(SchedKind kind) {
  sched = kind;
  return *this;
}
ExperimentSpec& ExperimentSpec::WithScale(double s) {
  scale = s;
  return *this;
}
ExperimentSpec& ExperimentSpec::WithHorizon(SimTime h) {
  horizon = h;
  return *this;
}
ExperimentSpec& ExperimentSpec::Add(AppSpec app) {
  apps.push_back(std::move(app));
  return *this;
}

ExperimentConfig ExperimentSpec::ToConfig() const {
  ExperimentConfig cfg;
  cfg.sched = sched;
  cfg.topology = topology;
  cfg.machine = machine;
  cfg.cfs = cfs;
  cfg.ule = ule;
  cfg.mlfq = mlfq;
  cfg.eevdf = eevdf;
  cfg.horizon = horizon;
  cfg.system_noise = system_noise;
  cfg.shards = shards;
  cfg.queue = queue;
  cfg.scheduler_factory = scheduler_factory;
  return cfg;
}

ExperimentSpec ExperimentSpec::SingleCore(SchedKind kind, uint64_t seed) {
  ExperimentSpec spec;
  spec.sched = kind;
  spec.topology = CpuTopology::Flat(1).config();
  spec.machine.seed = seed;
  spec.system_noise = false;
  return spec;
}

ExperimentSpec ExperimentSpec::Multicore(SchedKind kind, uint64_t seed) {
  ExperimentSpec spec;
  spec.sched = kind;
  spec.topology = CpuTopology::Opteron6172().config();
  spec.machine.seed = seed;
  spec.system_noise = true;
  return spec;
}

const AppResult* RunResult::App(const std::string& name) const {
  for (const AppResult& a : apps) {
    if (a.name == name) {
      return &a;
    }
  }
  return nullptr;
}

RunResult ExecuteSpec(const ExperimentSpec& spec) {
  ExperimentRun run(spec.ToConfig());
  const int cores = run.machine().num_cores();

  std::vector<Application*> apps;
  std::vector<MetricKind> metrics;
  apps.reserve(spec.apps.size());
  for (const AppSpec& as : spec.apps) {
    const double eff_scale = spec.scale * as.scale_mult;
    std::unique_ptr<Application> app;
    MetricKind metric = as.metric;
    if (as.make) {
      app = as.make(cores, spec.seed(), eff_scale);
    } else {
      const AppEntry* entry = FindApp(as.name);
      if (entry == nullptr) {
        // Unknown registry name: record an empty result slot so callers see
        // spec.apps-parallel output instead of silently shifted indexes.
        apps.push_back(nullptr);
        metrics.push_back(metric);
        continue;
      }
      app = entry->make(cores, spec.seed(), eff_scale);
      if (!as.has_metric) {
        metric = entry->metric;
      }
    }
    apps.push_back(run.Add(std::move(app), as.start_at));
    metrics.push_back(metric);
  }

  std::unique_ptr<MonitorSuite> monitors;
  if (spec.check_invariants) {
    monitors = std::make_unique<MonitorSuite>(&run.machine(), spec.monitor_options);
  }
  std::unique_ptr<SchedStats> stats;
  if (spec.collect_schedstats || !spec.slo.empty()) {
    stats = std::make_unique<SchedStats>(&run.machine());
  }
  std::unique_ptr<DecisionLog> decision_log;
  if (spec.collect_decision_log) {
    decision_log = std::make_unique<DecisionLog>(&run.machine());
  }

  RunResult result;
  result.label = spec.label;
  result.group = spec.group.empty() ? spec.label : spec.group;
  result.sched = spec.sched;
  result.seed = spec.seed();

  SpecRunContext ctx{run, spec, apps};
  if (spec.hooks.on_start) {
    spec.hooks.on_start(ctx);
  }

  result.finish_time = run.Run();

  if (spec.hooks.on_finish) {
    spec.hooks.on_finish(ctx, result);
  }
  if (monitors != nullptr) {
    // Finish-checks run before the stats snapshot (and before the monitors
    // leave the bus) so the per-monitor counts in the schedstats JSON
    // include end-of-run violations.
    monitors->FinishChecks();
  }
  if (stats != nullptr) {
    stats->Detach();
    if (!spec.slo.empty()) {
      // request_* objectives measure the primary app's per-operation latency
      // (arrival-to-completion for serving apps).
      const LatencyHistogram* request_latency = nullptr;
      for (Application* a : apps) {
        if (a != nullptr) {
          request_latency = &a->stats().latency;
          break;
        }
      }
      result.slo_verdicts = EvaluateSlos(spec.slo, *stats, request_latency);
      result.slo_pass = AllSlosPass(result.slo_verdicts);
    }
    if (spec.collect_schedstats) {
      result.schedstats_json =
          stats->ToJson(spec.slo.empty() ? nullptr : &result.slo_verdicts);
    }
  }
  if (decision_log != nullptr) {
    decision_log->Detach();
    result.decision_log = decision_log->ToJsonl();
  }
  if (monitors != nullptr) {
    monitors->Detach();
    result.violations = monitors->total_violations();
    if (const InvariantMonitor* m = monitors->first_violating()) {
      result.first_violation_monitor = m->name();
    }
    result.violation_report = monitors->Report();
  }

  for (size_t i = 0; i < apps.size(); ++i) {
    AppResult ar;
    ar.name = spec.apps[i].name;
    if (apps[i] != nullptr) {
      const AppStats& s = apps[i]->stats();
      ar.metric = run.MetricFor(*apps[i], metrics[i]);
      ar.ops_per_sec = s.OpsPerSecond(run.engine().now());
      ar.ops = s.ops;
      ar.finished = s.finished >= 0;
      ar.finish_time = s.finished;
    }
    result.apps.push_back(std::move(ar));
  }
  result.sched_work_fraction = run.machine().SchedulerWorkFraction();
  result.counters = run.machine().counters();
  return result;
}

}  // namespace schedbattle
