#include "src/core/report.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace schedbattle {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::Render() const {
  std::vector<size_t> widths(header_.size());
  for (size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << row[i];
      for (size_t pad = row[i].size(); pad < widths[i]; ++pad) {
        os << ' ';
      }
    }
    os << "\n";
  };
  emit_row(header_);
  std::string rule;
  for (size_t i = 0; i < header_.size(); ++i) {
    rule += std::string(widths[i], '-') + (i + 1 < header_.size() ? "  " : "");
  }
  os << rule << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

std::string TextTable::Num(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string TextTable::Pct(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.*f%%", decimals, v);
  return buf;
}

std::string BannerLine(const std::string& title) {
  std::string line(78, '=');
  return line + "\n" + title + "\n" + line + "\n";
}

}  // namespace schedbattle
