// Checked command-line parsing shared by the bench binaries and the CLI.
//
// Every experiment entry point used to hand-roll atof/strtoull loops that
// silently accepted garbage ("--scale=abc" -> 0.0). This module provides
// strict parsers (the whole token must be a valid, finite number) and a
// small declarative flag table so the bench binaries and schedbattle_cli
// share one implementation and one error style.
#ifndef SRC_CORE_FLAGS_H_
#define SRC_CORE_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace schedbattle {

// Strict numeric parsing: the entire string must be a valid finite number in
// range; returns false on empty input, garbage, trailing junk or overflow.
bool ParseDouble(const std::string& s, double* out);
bool ParseInt(const std::string& s, int* out);
bool ParseInt64(const std::string& s, int64_t* out);
bool ParseUint64(const std::string& s, uint64_t* out);

// A declarative table of "--name=value" flags (booleans take no value). Bind
// each flag to a typed target, then Parse() an argv range; values are only
// written through on successful parsing, and errors name the offending flag.
class FlagSet {
 public:
  FlagSet& Double(std::string name, double* target, std::string help);
  FlagSet& Int(std::string name, int* target, std::string help);
  FlagSet& Int64(std::string name, int64_t* target, std::string help);
  FlagSet& Uint64(std::string name, uint64_t* target, std::string help);
  FlagSet& String(std::string name, std::string* target, std::string help);
  // Repeatable: every occurrence appends.
  FlagSet& StringList(std::string name, std::vector<std::string>* target, std::string help);
  // "--name" with no value; sets the target to true.
  FlagSet& Bool(std::string name, bool* target, std::string help);

  // Parses argv[first..argc). On failure fills *error with a one-line
  // message (unknown flag, missing value, or what failed to parse) and
  // returns false; targets already parsed keep their new values.
  bool Parse(int argc, char** argv, int first, std::string* error) const;

  // "  --name=<num>   help" lines, in registration order.
  std::string Help() const;

 private:
  enum class Kind { kDouble, kInt, kInt64, kUint64, kString, kStringList, kBool };
  struct Flag {
    Kind kind;
    std::string name;  // without the leading "--"
    void* target;
    std::string help;
  };

  std::string KnownFlags() const;

  std::vector<Flag> flags_;
};

}  // namespace schedbattle

#endif  // SRC_CORE_FLAGS_H_
