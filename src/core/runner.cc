#include "src/core/runner.h"

#include <cstdlib>

namespace schedbattle {

namespace {
// Process-wide default shard count, from SCHEDBATTLE_SHARDS. A config that
// asks for >1 shards explicitly wins; the variable exists so CI can run the
// entire test suite at shards=2 and shards=4 and prove shard-count
// invisibility end to end, the same way SCHEDBATTLE_TICKLESS re-runs it with
// eager ticks.
int DefaultShards() {
  static const int v = [] {
    const char* e = std::getenv("SCHEDBATTLE_SHARDS");
    const int n = e == nullptr ? 1 : std::atoi(e);
    return n >= 1 ? n : 1;
  }();
  return v;
}
}  // namespace

ExperimentRun::ExperimentRun(ExperimentConfig config) : config_(std::move(config)) {
  // Pick the event-queue backend before anything is scheduled. An explicit
  // config wins; kDefault lets each lane resolve SCHEDBATTLE_QUEUE / the
  // process default itself (mirrors the shards logic below).
  if (config_.queue != QueueKind::kDefault) {
    engine_.SetQueueKind(config_.queue);
  }
  // Shard the engine before the machine exists: the Machine sizes its
  // per-shard state slabs off engine.num_shards() at construction.
  const int shards = config_.shards > 1 ? config_.shards : DefaultShards();
  if (shards > 1) {
    CpuTopology topo(config_.topology);
    engine_.ConfigureShards(ShardPlan::Contiguous(topo.num_cores(), shards));
  }
  machine_ = std::make_unique<Machine>(&engine_, CpuTopology(config_.topology),
                                       MakeSchedulerFor(config_), config_.machine);
  workload_ = std::make_unique<Workload>(machine_.get());
  if (config_.system_noise) {
    SystemNoiseParams noise;
    noise.num_cores = machine_->num_cores();
    noise.seed = config_.machine.seed ^ 0x6e6f697365ULL;
    auto app = MakeSystemNoise(noise);
    app->set_background(true);
    workload_->Add(std::move(app), 0);
  }
}

SimTime ExperimentRun::Run() {
  const SimTime finish = workload_->Run(config_.horizon);
  // Settle any still-pending elided ticks so post-run metric reads (PELT
  // loads, interactivity scores, elision counters) see final state.
  machine_->CatchUpTicks();
  return finish;
}

double ExperimentRun::MetricFor(const Application& app, MetricKind kind) const {
  const AppStats& s = app.stats();
  if (kind == MetricKind::kOpsPerSec) {
    return s.OpsPerSecond(engine_.now());
  }
  if (s.started < 0 || s.finished < 0 || s.finished <= s.started) {
    return 0.0;
  }
  return 1.0 / ToSeconds(s.finished - s.started);
}

}  // namespace schedbattle
