#include "src/core/runner.h"

namespace schedbattle {

ExperimentRun::ExperimentRun(ExperimentConfig config) : config_(std::move(config)) {
  machine_ = std::make_unique<Machine>(&engine_, CpuTopology(config_.topology),
                                       MakeSchedulerFor(config_), config_.machine);
  workload_ = std::make_unique<Workload>(machine_.get());
  if (config_.system_noise) {
    SystemNoiseParams noise;
    noise.num_cores = machine_->num_cores();
    noise.seed = config_.machine.seed ^ 0x6e6f697365ULL;
    auto app = MakeSystemNoise(noise);
    app->set_background(true);
    workload_->Add(std::move(app), 0);
  }
}

SimTime ExperimentRun::Run() {
  const SimTime finish = workload_->Run(config_.horizon);
  // Settle any still-pending elided ticks so post-run metric reads (PELT
  // loads, interactivity scores, elision counters) see final state.
  machine_->CatchUpTicks();
  return finish;
}

double ExperimentRun::MetricFor(const Application& app, MetricKind kind) const {
  const AppStats& s = app.stats();
  if (kind == MetricKind::kOpsPerSec) {
    return s.OpsPerSecond(engine_.now());
  }
  if (s.started < 0 || s.finished < 0 || s.finished <= s.started) {
    return 0.0;
  }
  return 1.0 / ToSeconds(s.finished - s.started);
}

}  // namespace schedbattle
