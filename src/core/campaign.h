// Campaigns: lists of ExperimentSpecs built by combinators and executed on
// a worker-thread pool.
//
// The paper's methodology is replication at scale — every figure averages 10
// runs of the same workload under both schedulers. A Campaign makes that
// first-class: start from one spec, apply combinators
// (BothSchedulers x SeedSweep x WithVariants), hand the resulting list to a
// CampaignRunner, and aggregate per-group statistics from the results.
//
// Each ExperimentRun owns its engine, machine and workload and shares no
// mutable state with any other run, so specs execute on independent threads
// with bit-identical results to a serial execution (see determinism_test).
#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <functional>
#include <string>
#include <vector>

#include "src/core/spec.h"

namespace schedbattle {

// ---- combinators ----
// All combinators preserve input order and produce deterministic labels:
// differentiating combinators (scheduler, variants) extend both label and
// group; replicating combinators (seed sweep) extend only the label, so
// results aggregate by group.

// One spec -> one per given scheduling class, suffixed with the class's
// canonical id ("/cfs", "/mlfq", ...), in the order given.
std::vector<ExperimentSpec> SchedulerSet(const ExperimentSpec& spec,
                                         const std::vector<SchedKind>& kinds);
std::vector<ExperimentSpec> SchedulerSet(const std::vector<ExperimentSpec>& specs,
                                         const std::vector<SchedKind>& kinds);

// One spec -> every class in the SchedulerRegistry — the N-way tournament.
std::vector<ExperimentSpec> AllSchedulers(const ExperimentSpec& spec);
std::vector<ExperimentSpec> AllSchedulers(const std::vector<ExperimentSpec>& specs);

// One spec -> {CFS, ULE} pair with "/cfs" and "/ule" suffixes (the paper's
// original two-way battle; SchedulerSet({kCfs, kUle})).
std::vector<ExperimentSpec> BothSchedulers(const ExperimentSpec& spec);
std::vector<ExperimentSpec> BothSchedulers(const std::vector<ExperimentSpec>& specs);

// One spec -> `runs` replicas seeded seed, seed+1, ..., labelled "/s0"...
// The group is left untouched: replicas aggregate together.
std::vector<ExperimentSpec> SeedSweep(const ExperimentSpec& spec, int runs);
std::vector<ExperimentSpec> SeedSweep(const std::vector<ExperimentSpec>& specs, int runs);

// Named spec mutations, for ablations ("preempt-on", "period-2s", ...).
struct SpecVariant {
  std::string name;
  std::function<void(ExperimentSpec&)> apply;
};
std::vector<ExperimentSpec> WithVariants(const ExperimentSpec& spec,
                                         const std::vector<SpecVariant>& variants);
std::vector<ExperimentSpec> WithVariants(const std::vector<ExperimentSpec>& specs,
                                         const std::vector<SpecVariant>& variants);

struct Campaign {
  std::string name;
  std::vector<ExperimentSpec> specs;
};

// ---- execution ----

class CampaignRunner {
 public:
  // jobs <= 0 selects std::thread::hardware_concurrency().
  explicit CampaignRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  // Executes every spec and returns results in spec order. jobs=1 runs
  // inline on the calling thread; jobs>1 uses a pool of worker threads that
  // pull specs from a shared index. Results are identical either way.
  std::vector<RunResult> Run(const std::vector<ExperimentSpec>& specs) const;
  std::vector<RunResult> Run(const Campaign& campaign) const { return Run(campaign.specs); }

 private:
  int jobs_;
};

// ---- aggregation ----

// Paper-style replication statistics (sample stddev, n-1 denominator).
struct AggregateStat {
  int n = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double max = 0;

  static AggregateStat Of(const std::vector<double>& values);
  // "mean ± stddev" with the given precision.
  std::string Format(int decimals = 2) const;
};

// Results sharing a group, in first-appearance order.
struct ResultGroup {
  std::string group;
  std::vector<const RunResult*> runs;

  // Aggregates `extract(run)` across the group's runs.
  AggregateStat Aggregate(const std::function<double(const RunResult&)>& extract) const;
  // Shorthand: metric of the app at `app_index` in each run.
  AggregateStat AggregateAppMetric(size_t app_index = 0) const;
};

std::vector<ResultGroup> GroupResults(const std::vector<RunResult>& results);

}  // namespace schedbattle

#endif  // SRC_CORE_CAMPAIGN_H_
