// Plain-text table rendering for experiment reports.
#ifndef SRC_CORE_REPORT_H_
#define SRC_CORE_REPORT_H_

#include <string>
#include <vector>

namespace schedbattle {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  std::string Render() const;

  // Formatting helpers.
  static std::string Num(double v, int decimals = 1);
  static std::string Pct(double v, int decimals = 1);  // "+12.3%"

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// A standard header line for experiment outputs.
std::string BannerLine(const std::string& title);

}  // namespace schedbattle

#endif  // SRC_CORE_REPORT_H_
