// Canned scenarios for every table and figure in the paper's evaluation.
// The bench binaries are thin wrappers over these functions.
#ifndef SRC_CORE_SCENARIOS_H_
#define SRC_CORE_SCENARIOS_H_

#include <string>
#include <vector>

#include "src/core/runner.h"
#include "src/metrics/heatmap.h"
#include "src/metrics/timeseries.h"

namespace schedbattle {

// ---- Table 2 / Figures 1 and 2: fibo + sysbench on one core ----
struct FiboSysbenchResult {
  SchedKind sched;
  SimDuration fibo_runtime;      // CPU time fibo accumulated (should be ~160s)
  SimTime fibo_finish;           // wall-clock completion
  double sysbench_tps;           // transactions per second
  SimDuration sysbench_avg_latency;
  SimTime sysbench_finish;
  TimeSeries fibo_runtime_series;       // Figure 1: cumulative runtime over time
  TimeSeries sysbench_runtime_series;   //
  TimeSeries fibo_penalty_series;       // Figure 2: interactivity penalty (ULE)
  TimeSeries sysbench_penalty_series;   //
};
FiboSysbenchResult RunFiboSysbench(SchedKind kind, uint64_t seed, double scale = 1.0);

// ---- Figures 3 and 4: sysbench's own threads under ULE ----
struct SysbenchThreadsResult {
  // One series per thread class, as in the figures.
  TimeSeries master_runtime;
  TimeSeries interactive_runtime;   // average of interactive workers
  TimeSeries background_runtime;    // average of starving workers
  TimeSeries interactive_penalty;
  TimeSeries background_penalty;
  int interactive_count = 0;
  int background_count = 0;
  int starved_count = 0;  // workers with (almost) zero runtime at the end
};
SysbenchThreadsResult RunSysbenchThreads(SchedKind kind, uint64_t seed, double scale = 1.0);

// ---- Figures 5 and 8: the application suite ----
struct SuiteRow {
  std::string name;
  double cfs_metric = 0;
  double ule_metric = 0;
  // Percentage difference of ULE vs CFS ("higher = ULE faster").
  double diff_pct = 0;
  double cfs_overhead_pct = 0;  // scheduler cycles / busy cycles
  double ule_overhead_pct = 0;
  uint64_t cfs_wakeup_preemptions = 0;
  uint64_t ule_wakeup_preemptions = 0;
};
// Runs one app under both schedulers. cores==1 reproduces Figure 5 rows,
// cores==32 Figure 8 rows.
SuiteRow RunSuiteApp(const std::string& name, int cores, uint64_t seed, double scale);

// ---- Figure 6: 512 pinned spinners unpinned at t=14.5s ----
struct LoadBalanceResult {
  SchedKind sched;
  std::unique_ptr<CoreLoadHeatmap> heatmap;
  SimTime unpin_time;
  SimTime balanced_time;  // first time max-min <= tolerance (-1 if never)
  int final_max = 0;
  int final_min = 0;
  uint64_t migrations = 0;
  uint64_t balance_invocations = 0;
};
LoadBalanceResult RunLoadBalance512(SchedKind kind, uint64_t seed, SimTime run_for,
                                    int tolerance);

// ---- Figure 7: c-ray thread placement ----
struct CrayResult {
  SchedKind sched;
  std::unique_ptr<CoreLoadHeatmap> heatmap;
  SimTime all_runnable_time;  // when all render threads have started running
  SimTime finish_time;
};
CrayResult RunCrayPlacement(SchedKind kind, uint64_t seed, double scale = 1.0);

// ---- Figure 9: multi-application workloads ----
struct MultiAppRow {
  std::string pair_name;
  std::string app_name;
  double alone_cfs = 0;   // metric running alone on CFS (the figure's baseline)
  double multi_cfs = 0;   // co-scheduled on CFS
  double alone_ule = 0;
  double multi_ule = 0;
};
std::vector<MultiAppRow> RunMultiAppPairs(uint64_t seed, double scale = 1.0);

}  // namespace schedbattle

#endif  // SRC_CORE_SCENARIOS_H_
