// Canned scenarios for every table and figure in the paper's evaluation,
// expressed as ExperimentSpecs so the bench binaries can replicate them
// across seeds and execute them in parallel through a CampaignRunner.
//
// Two API layers:
//   - *Spec() builders return a self-contained ExperimentSpec whose hooks
//     write the scenario's rich result (time series, heatmaps) into the
//     caller-provided shared_ptr. Each spec needs its own output object; do
//     not replicate these specs with SeedSweep — build one per seed.
//   - Run*() functions execute the corresponding campaign (serially for the
//     single-run back-compat wrappers) and aggregate across seeds.
#ifndef SRC_CORE_SCENARIOS_H_
#define SRC_CORE_SCENARIOS_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/campaign.h"
#include "src/core/spec.h"
#include "src/metrics/heatmap.h"
#include "src/metrics/timeseries.h"

namespace schedbattle {

// ---- Table 2 / Figures 1 and 2: fibo + sysbench on one core ----
struct FiboSysbenchResult {
  SchedKind sched;
  SimDuration fibo_runtime;      // CPU time fibo accumulated (should be ~160s)
  SimTime fibo_finish;           // wall-clock completion
  double sysbench_tps;           // transactions per second
  SimDuration sysbench_avg_latency;
  SimTime sysbench_finish;
  TimeSeries fibo_runtime_series;       // Figure 1: cumulative runtime over time
  TimeSeries sysbench_runtime_series;   //
  TimeSeries fibo_penalty_series;       // Figure 2: interactivity penalty (ULE)
  TimeSeries sysbench_penalty_series;   //
};
ExperimentSpec FiboSysbenchSpec(SchedKind kind, uint64_t seed, double scale,
                                std::shared_ptr<FiboSysbenchResult> out);
FiboSysbenchResult RunFiboSysbench(SchedKind kind, uint64_t seed, double scale = 1.0);

// Multi-seed replication of the scenario (the paper averages 10 runs).
struct FiboSysbenchAggregate {
  FiboSysbenchResult first;  // base-seed run; source of the figures' series
  AggregateStat tps;
  AggregateStat latency_ms;
  AggregateStat fibo_runtime_s;
  AggregateStat sysbench_finish_s;
};
FiboSysbenchAggregate RunFiboSysbenchCampaign(SchedKind kind, uint64_t seed, double scale,
                                              int runs, int jobs);
// Both schedulers' sweeps executed as one campaign (2 x runs specs).
struct FiboSysbenchCampaign {
  FiboSysbenchAggregate cfs;
  FiboSysbenchAggregate ule;
};
FiboSysbenchCampaign RunFiboSysbenchBoth(uint64_t seed, double scale, int runs, int jobs);

// ---- Figures 3 and 4: sysbench's own threads under ULE ----
struct SysbenchThreadsResult {
  // One series per thread class, as in the figures.
  TimeSeries master_runtime;
  TimeSeries interactive_runtime;   // average of interactive workers
  TimeSeries background_runtime;    // average of starving workers
  TimeSeries interactive_penalty;
  TimeSeries background_penalty;
  int interactive_count = 0;
  int background_count = 0;
  int starved_count = 0;  // workers with (almost) zero runtime at the end
};
ExperimentSpec SysbenchThreadsSpec(SchedKind kind, uint64_t seed, double scale,
                                   std::shared_ptr<SysbenchThreadsResult> out);
SysbenchThreadsResult RunSysbenchThreads(SchedKind kind, uint64_t seed, double scale = 1.0);

// ---- Figures 5 and 8: the application suite ----
struct SuiteRow {
  std::string name;
  int runs = 1;
  double cfs_metric = 0;  // mean across seeds
  double ule_metric = 0;
  double cfs_stddev = 0;
  double ule_stddev = 0;
  // Percentage difference of ULE vs CFS means ("higher = ULE faster").
  double diff_pct = 0;
  double cfs_overhead_pct = 0;  // scheduler cycles / busy cycles (mean)
  double ule_overhead_pct = 0;
  uint64_t cfs_wakeup_preemptions = 0;  // base-seed run
  uint64_t ule_wakeup_preemptions = 0;
  // Tail-latency aggregation, filled only when SuiteOptions::slo is
  // non-empty (means across seeds of the per-run SLO observations).
  double cfs_wakeup_p99_ns = 0;
  double ule_wakeup_p99_ns = 0;
  double cfs_wakeup_p999_ns = 0;
  double ule_wakeup_p999_ns = 0;
  bool cfs_slo_pass = true;  // AND across seeds
  bool ule_slo_pass = true;
};

struct SuiteOptions {
  TopologyConfig topology = CpuTopology::Opteron6172().config();
  bool system_noise = true;
  uint64_t seed = 42;
  double scale = 1.0;
  int runs = 1;  // seeds per (app, scheduler) cell
  int jobs = 1;  // campaign worker threads (0 = hardware concurrency)
  // Latency objectives applied to every run; non-empty attaches a SchedStats
  // observer per run and fills the SuiteRow tail-latency fields.
  std::vector<SloObjective> slo;
};

// Runs every app under both schedulers for `runs` seeds as ONE campaign
// (apps x {CFS, ULE} x seeds specs, executed on `jobs` workers); returns one
// aggregated row per app, in input order.
std::vector<SuiteRow> RunSuite(const std::vector<AppSpec>& apps, const SuiteOptions& options);

// Single-run convenience used by tests: one app under both schedulers.
// cores==1 reproduces Figure 5 rows, cores!=1 Figure 8 rows.
SuiteRow RunSuiteApp(const std::string& name, int cores, uint64_t seed, double scale);

// ---- Figure 6: 512 pinned spinners unpinned at t=14.5s ----
struct LoadBalanceResult {
  SchedKind sched;
  std::unique_ptr<CoreLoadHeatmap> heatmap;
  SimTime unpin_time;
  SimTime balanced_time;  // first time max-min <= tolerance (-1 if never)
  int final_max = 0;
  int final_min = 0;
  uint64_t migrations = 0;
  uint64_t balance_invocations = 0;
};
ExperimentSpec LoadBalanceSpec(SchedKind kind, uint64_t seed, SimTime run_for, int tolerance,
                               std::shared_ptr<LoadBalanceResult> out);
LoadBalanceResult RunLoadBalance512(SchedKind kind, uint64_t seed, SimTime run_for,
                                    int tolerance);

// Datacenter-scale variant of Figure 6: 4096 pinned spinners over the
// 1024-core NUMA serving box (Numa1024), unpinned at t=14.5s. Same shape and
// metrics as loadbalance-512, 32x the cores the balancer must fill — the
// stress scenario for the sharded engine (`shards` on the spec) and for
// >64-core CpuSet paths. CFS group scheduling is left off so runs are
// parallel-window eligible.
ExperimentSpec LoadBalance4096Spec(SchedKind kind, uint64_t seed, SimTime run_for,
                                   int tolerance, std::shared_ptr<LoadBalanceResult> out,
                                   int shards = 1);
LoadBalanceResult RunLoadBalance4096(SchedKind kind, uint64_t seed, SimTime run_for,
                                     int tolerance, int shards = 1);

// ---- Figure 7: c-ray thread placement ----
struct CrayResult {
  SchedKind sched;
  std::unique_ptr<CoreLoadHeatmap> heatmap;
  SimTime all_runnable_time;  // when all render threads have started running
  SimTime finish_time;
};
ExperimentSpec CraySpec(SchedKind kind, uint64_t seed, double scale,
                        std::shared_ptr<CrayResult> out);
CrayResult RunCrayPlacement(SchedKind kind, uint64_t seed, double scale = 1.0);

// ---- Serving fleet: open-loop arrivals, oversubscription, tail SLOs ----
//
// The ROADMAP's "millions of users" scenario family. Requests arrive on
// their own clock (Poisson / diurnal / spike traces, src/workload/arrivals),
// wake parked workers of a serving adapter (src/apps/serving) and land their
// arrival-to-completion latency in per-run histograms, a WindowedTailSeries
// and request_* SLO verdicts. Presets:
//   serve-smoke            16 cores, apache model at ~80% util (tests/CI)
//   serve-smoke-sysbench   16 cores, MySQL OLTP model (compute + disk wait)
//   serve-smoke-rocksdb    16 cores, read/write-mix model (WAL stalls)
//   serve1024              1024-core NUMA box, 3072 workers, 95% utilization
//   serve1024-spike        70% baseline with a 2.2x spike mid-run (the
//                          "which scheduler holds p99" tournament)
//   serve1024-colo         60% serving co-located with 2048 batch spinners
//                          (oversubscription: runnable threads >> cores)
// `scale` stretches the arrival window (request volume), not the rates.
struct ServeResult {
  SchedKind sched = SchedKind::kCfs;
  int64_t admitted = 0;
  int64_t completed = 0;
  int64_t good = 0;           // completed within the preset's deadline
  double goodput_fraction = 0;  // good / admitted
  SimDuration request_p50 = 0;
  SimDuration request_p99 = 0;
  SimDuration request_p999 = 0;
  SimDuration request_max = 0;
  std::string tail_series_json;  // WindowedTailSeries of request latency
};
// All preset names, in documentation order.
const std::vector<std::string>& ServePresets();
bool IsServePreset(const std::string& preset);
// Number of cores in the preset's topology (for banners/JSON).
int ServePresetCores(const std::string& preset);
ExperimentSpec ServeSpec(const std::string& preset, SchedKind kind, uint64_t seed,
                         double scale, std::shared_ptr<ServeResult> out = nullptr);
ServeResult RunServe(const std::string& preset, SchedKind kind, uint64_t seed,
                     double scale = 1.0);

// ---- Figure 9: multi-application workloads ----
struct MultiAppRow {
  std::string pair_name;
  std::string app_name;
  int runs = 1;
  double alone_cfs = 0;   // metric running alone on CFS (the figure's baseline)
  double multi_cfs = 0;   // co-scheduled on CFS
  double alone_ule = 0;
  double multi_ule = 0;
  double alone_cfs_sd = 0;
  double multi_cfs_sd = 0;
  double alone_ule_sd = 0;
  double multi_ule_sd = 0;
};
// Runs all pairs (alone + co-scheduled, both schedulers, `runs` seeds) as
// one campaign on `jobs` workers.
std::vector<MultiAppRow> RunMultiAppPairs(uint64_t seed, double scale = 1.0, int runs = 1,
                                          int jobs = 1);

}  // namespace schedbattle

#endif  // SRC_CORE_SCENARIOS_H_
