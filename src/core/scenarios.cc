#include "src/core/scenarios.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/apps/apache.h"
#include "src/apps/fibo.h"
#include "src/apps/nas.h"
#include "src/apps/parsec.h"
#include "src/apps/phoronix.h"
#include "src/apps/registry.h"
#include "src/apps/sysbench.h"

namespace schedbattle {

namespace {

// Average interactivity penalty over a set of threads (ULE; -1 under CFS).
double AvgPenalty(const Machine& machine, const std::vector<SimThread*>& threads) {
  if (threads.empty()) {
    return -1;
  }
  double sum = 0;
  for (const SimThread* t : threads) {
    sum += machine.scheduler().InteractivityPenaltyOf(t);
  }
  return sum / static_cast<double>(threads.size());
}

bool IsWorker(const SimThread* t) { return t->name().find("/worker-") != std::string::npos; }

}  // namespace

FiboSysbenchResult RunFiboSysbench(SchedKind kind, uint64_t seed, double scale) {
  ExperimentRun run(ExperimentConfig::SingleCore(kind, seed));
  FiboParams fp;
  fp.total_work = SecondsF(160.0 * scale);
  fp.seed = seed;
  Application* fibo = run.Add(MakeFibo(fp), /*start_at=*/0);
  SysbenchParams sp = SysbenchTable2();
  sp.seed = seed + 1;
  sp.total_transactions = static_cast<int64_t>(sp.total_transactions * scale);
  Application* sys = run.Add(MakeSysbench(sp), /*start_at=*/Seconds(7));

  FiboSysbenchResult result;
  result.sched = kind;
  result.fibo_runtime_series = TimeSeries("fibo_runtime_s");
  result.sysbench_runtime_series = TimeSeries("sysbench_runtime_s");
  result.fibo_penalty_series = TimeSeries("fibo_penalty");
  result.sysbench_penalty_series = TimeSeries("sysbench_penalty");

  Machine& m = run.machine();
  PeriodicSampler sampler(&m, Milliseconds(500), [&](SimTime t) {
    if (!fibo->threads().empty()) {
      SimThread* ft = fibo->threads().front();
      result.fibo_runtime_series.Push(t, ToSeconds(ft->RuntimeAt(t)));
      result.fibo_penalty_series.Push(t, m.scheduler().InteractivityPenaltyOf(ft));
    }
    SimDuration sys_runtime = 0;
    std::vector<SimThread*> workers;
    for (SimThread* st : sys->threads()) {
      sys_runtime += st->RuntimeAt(t);
      if (IsWorker(st)) {
        workers.push_back(st);
      }
    }
    result.sysbench_runtime_series.Push(t, ToSeconds(sys_runtime));
    result.sysbench_penalty_series.Push(t, AvgPenalty(m, workers));
  });

  run.Run();
  sampler.Stop();

  if (!fibo->threads().empty()) {
    result.fibo_runtime = fibo->threads().front()->total_runtime;
  }
  result.fibo_finish = fibo->stats().finished;
  result.sysbench_tps = sys->stats().OpsPerSecond(run.engine().now());
  result.sysbench_avg_latency = static_cast<SimDuration>(sys->stats().latency.Mean());
  result.sysbench_finish = sys->stats().finished;
  return result;
}

SysbenchThreadsResult RunSysbenchThreads(SchedKind kind, uint64_t seed, double scale) {
  ExperimentRun run(ExperimentConfig::SingleCore(kind, seed));
  SysbenchParams sp = SysbenchFig3();
  sp.seed = seed;
  sp.total_transactions = static_cast<int64_t>(sp.total_transactions * scale);
  Application* sys = run.Add(MakeSysbench(sp), 0);

  // Per-thread sample log; classified into the figure's bands afterwards.
  struct Sample {
    SimTime t;
    std::vector<std::pair<const SimThread*, std::pair<double, int>>> threads;  // (runtime_s, penalty)
  };
  std::vector<Sample> samples;
  Machine& m = run.machine();
  PeriodicSampler sampler(&m, Milliseconds(500), [&](SimTime t) {
    Sample s;
    s.t = t;
    for (SimThread* st : sys->threads()) {
      s.threads.push_back(
          {st, {ToSeconds(st->RuntimeAt(t)), m.scheduler().InteractivityPenaltyOf(st)}});
    }
    samples.push_back(std::move(s));
  });
  run.Run();
  sampler.Stop();

  SysbenchThreadsResult result;
  result.master_runtime = TimeSeries("master_runtime_s");
  result.interactive_runtime = TimeSeries("interactive_avg_runtime_s");
  result.background_runtime = TimeSeries("background_avg_runtime_s");
  result.interactive_penalty = TimeSeries("interactive_avg_penalty");
  result.background_penalty = TimeSeries("background_avg_penalty");

  // Classify workers by final runtime: the paper's "background" band is the
  // starved set (near-zero runtime).
  const SimTime end = run.engine().now();
  std::vector<const SimThread*> interactive;
  std::vector<const SimThread*> background;
  double max_runtime = 0;
  for (SimThread* st : sys->threads()) {
    if (IsWorker(st)) {
      max_runtime = std::max(max_runtime, ToSeconds(st->RuntimeAt(end)));
    }
  }
  for (SimThread* st : sys->threads()) {
    if (!IsWorker(st)) {
      continue;
    }
    if (ToSeconds(st->RuntimeAt(end)) < 0.05 * max_runtime) {
      background.push_back(st);
    } else {
      interactive.push_back(st);
    }
  }
  result.interactive_count = static_cast<int>(interactive.size());
  result.background_count = static_cast<int>(background.size());
  for (const SimThread* st : background) {
    if (ToSeconds(st->RuntimeAt(end)) < 0.01 * max_runtime) {
      ++result.starved_count;
    }
  }

  auto in_set = [](const std::vector<const SimThread*>& set, const SimThread* t) {
    return std::find(set.begin(), set.end(), t) != set.end();
  };
  for (const Sample& s : samples) {
    double master_rt = 0;
    double int_rt = 0, bg_rt = 0, int_pen = 0, bg_pen = 0;
    int int_n = 0, bg_n = 0;
    for (const auto& [t, vals] : s.threads) {
      if (!IsWorker(t)) {
        master_rt = vals.first;
      } else if (in_set(interactive, t)) {
        int_rt += vals.first;
        int_pen += vals.second;
        ++int_n;
      } else if (in_set(background, t)) {
        bg_rt += vals.first;
        bg_pen += vals.second;
        ++bg_n;
      }
    }
    result.master_runtime.Push(s.t, master_rt);
    if (int_n > 0) {
      result.interactive_runtime.Push(s.t, int_rt / int_n);
      result.interactive_penalty.Push(s.t, int_pen / int_n);
    }
    if (bg_n > 0) {
      result.background_runtime.Push(s.t, bg_rt / bg_n);
      result.background_penalty.Push(s.t, bg_pen / bg_n);
    }
  }
  return result;
}

SuiteRow RunSuiteApp(const std::string& name, int cores, uint64_t seed, double scale) {
  const AppEntry* entry = FindApp(name);
  SuiteRow row;
  row.name = name;
  if (entry == nullptr) {
    return row;
  }
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    ExperimentConfig cfg = cores == 1 ? ExperimentConfig::SingleCore(kind, seed)
                                      : ExperimentConfig::Multicore(kind, seed);
    ExperimentRun run(cfg);
    Application* app = run.Add(entry->make(cores, seed, scale), 0);
    run.Run();
    const double metric = run.MetricFor(*app, entry->metric);
    const double overhead = 100.0 * run.machine().SchedulerWorkFraction();
    if (kind == SchedKind::kCfs) {
      row.cfs_metric = metric;
      row.cfs_overhead_pct = overhead;
      row.cfs_wakeup_preemptions = run.machine().counters().wakeup_preemptions;
    } else {
      row.ule_metric = metric;
      row.ule_overhead_pct = overhead;
      row.ule_wakeup_preemptions = run.machine().counters().wakeup_preemptions;
    }
  }
  if (row.cfs_metric > 0) {
    row.diff_pct = 100.0 * (row.ule_metric - row.cfs_metric) / row.cfs_metric;
  }
  return row;
}

LoadBalanceResult RunLoadBalance512(SchedKind kind, uint64_t seed, SimTime run_for,
                                    int tolerance) {
  ExperimentConfig cfg = ExperimentConfig::Multicore(kind, seed);
  cfg.system_noise = false;  // the paper's experiment uses only the spinners
  cfg.horizon = run_for;
  ExperimentRun run(cfg);

  auto spinners = std::make_unique<ScriptedApp>("spinners", seed);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "spin";
  tmpl.count = 512;
  tmpl.affinity = CpuMask::Single(0);
  tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
  spinners->AddThreads(std::move(tmpl));
  spinners->set_background(true);
  Application* app = run.Add(std::move(spinners), 0);

  LoadBalanceResult result;
  result.sched = kind;
  result.unpin_time = SecondsF(14.5);
  result.heatmap = std::make_unique<CoreLoadHeatmap>(&run.machine(), Milliseconds(100));

  Machine& m = run.machine();
  run.engine().At(result.unpin_time, [&m, app] {
    const CpuMask all = CpuMask::AllOf(m.num_cores());
    for (SimThread* t : app->threads()) {
      m.SetAffinity(t, all);
    }
  });

  run.Run();
  result.heatmap->Stop();
  result.balanced_time = result.heatmap->TimeToBalance(tolerance);
  const auto final_counts = result.heatmap->CountsAt(run.engine().now());
  if (!final_counts.empty()) {
    result.final_max = *std::max_element(final_counts.begin(), final_counts.end());
    result.final_min = *std::min_element(final_counts.begin(), final_counts.end());
  }
  result.migrations = m.counters().migrations;
  result.balance_invocations = m.counters().balance_invocations;
  return result;
}

CrayResult RunCrayPlacement(SchedKind kind, uint64_t seed, double scale) {
  ExperimentConfig cfg = ExperimentConfig::Multicore(kind, seed);
  cfg.system_noise = false;
  ExperimentRun run(cfg);
  CrayParams cp;
  cp.seed = seed;
  cp.work_per_thread = static_cast<SimDuration>(cp.work_per_thread * scale);
  Application* app = run.Add(MakeCray(cp), 0);

  CrayResult result;
  result.sched = kind;
  result.heatmap = std::make_unique<CoreLoadHeatmap>(&run.machine(), Milliseconds(100));
  run.Run();
  result.heatmap->Stop();
  result.finish_time = app->stats().finished;
  SimTime all_runnable = 0;
  for (SimThread* t : app->threads()) {
    all_runnable = std::max(all_runnable, t->first_dispatch);
  }
  result.all_runnable_time = all_runnable;
  return result;
}

std::vector<MultiAppRow> RunMultiAppPairs(uint64_t seed, double scale) {
  struct PairDef {
    std::string pair;
    std::string a;
    std::string b;
  };
  const std::vector<PairDef> pairs = {
      {"c-ray + EP", "c-ray", "EP"},
      {"fibo + sysbench", "fibo", "sysbench"},
      {"blackscholes + ferret", "blackscholes", "ferret"},
      {"apache + sysbench", "apache", "sysbench"},
  };
  const int cores = 32;

  auto make_app = [&](const std::string& name) -> std::unique_ptr<Application> {
    if (name == "fibo") {
      FiboParams p;
      p.total_work = SecondsF(60.0 * scale);
      p.seed = seed;
      return MakeFibo(p);
    }
    const AppEntry* e = FindApp(name);
    // The server-style apps are open-ended in the paper's pairs; run them
    // long enough to overlap their partner for most of the measurement.
    const bool open_ended = name == "sysbench" || name == "ferret" || name == "apache";
    return e->make(cores, seed, open_ended ? 3.0 * scale : scale);
  };
  auto metric_kind = [&](const std::string& name) {
    if (name == "fibo") {
      return MetricKind::kInvTime;
    }
    return FindApp(name)->metric;
  };

  std::vector<MultiAppRow> rows;
  for (const PairDef& pd : pairs) {
    MultiAppRow ra, rb;
    ra.pair_name = rb.pair_name = pd.pair;
    ra.app_name = pd.a;
    rb.app_name = pd.b;
    for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
      // Alone runs.
      for (const std::string* name : {&pd.a, &pd.b}) {
        ExperimentRun run(ExperimentConfig::Multicore(kind, seed));
        Application* app = run.Add(make_app(*name), 0);
        run.Run();
        const double v = run.MetricFor(*app, metric_kind(*name));
        MultiAppRow& r = (name == &pd.a) ? ra : rb;
        (kind == SchedKind::kCfs ? r.alone_cfs : r.alone_ule) = v;
      }
      // Co-scheduled run.
      ExperimentRun run(ExperimentConfig::Multicore(kind, seed));
      Application* a = run.Add(make_app(pd.a), 0);
      Application* b = run.Add(make_app(pd.b), 0);
      run.Run();
      (kind == SchedKind::kCfs ? ra.multi_cfs : ra.multi_ule) =
          run.MetricFor(*a, metric_kind(pd.a));
      (kind == SchedKind::kCfs ? rb.multi_cfs : rb.multi_ule) =
          run.MetricFor(*b, metric_kind(pd.b));
    }
    rows.push_back(ra);
    rows.push_back(rb);
  }
  return rows;
}

}  // namespace schedbattle
