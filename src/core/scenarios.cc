#include "src/core/scenarios.h"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <utility>

#include "src/apps/apache.h"
#include "src/apps/fibo.h"
#include "src/apps/nas.h"
#include "src/apps/parsec.h"
#include "src/apps/phoronix.h"
#include "src/apps/registry.h"
#include "src/apps/serving.h"
#include "src/apps/sysbench.h"
#include "src/workload/app.h"
#include "src/workload/script.h"

namespace schedbattle {

namespace {

// Average interactivity penalty over a set of threads (ULE; -1 under CFS).
double AvgPenalty(const Machine& machine, const std::vector<SimThread*>& threads) {
  if (threads.empty()) {
    return -1;
  }
  double sum = 0;
  for (const SimThread* t : threads) {
    sum += machine.scheduler().InteractivityPenaltyOf(t);
  }
  return sum / static_cast<double>(threads.size());
}

bool IsWorker(const SimThread* t) { return t->name().find("/worker-") != std::string::npos; }

// Default tail-latency objectives attached to the paper-figure scenarios so
// their RunResults (and schedstats JSON) carry SLO verdicts out of the box.
// Thresholds are deliberately loose — they document the expected order of
// magnitude and flag regressions, not tuning targets.
std::vector<SloObjective> DefaultSlo(SimDuration p99, SimDuration p999) {
  SloObjective o99;
  o99.metric = SloMetric::kWakeupP99;
  o99.threshold = p99;
  SloObjective o999;
  o999.metric = SloMetric::kWakeupP999;
  o999.threshold = p999;
  return {o99, o999};
}

}  // namespace

// ---- Table 2 / Figures 1 and 2 ----

ExperimentSpec FiboSysbenchSpec(SchedKind kind, uint64_t seed, double scale,
                                std::shared_ptr<FiboSysbenchResult> out) {
  ExperimentSpec spec = ExperimentSpec::SingleCore(kind, seed);
  spec.scale = scale;
  spec.Named("fibo+sysbench/" + std::string(SchedName(kind)));
  // One core shared with a CPU hog: wakeups can wait out whole timeslices.
  spec.slo = DefaultSlo(Seconds(1), Seconds(5));

  AppSpec fibo;
  fibo.name = "fibo";
  fibo.has_metric = true;
  fibo.metric = MetricKind::kInvTime;
  fibo.make = [](int, uint64_t s, double sc) {
    FiboParams fp;
    fp.total_work = SecondsF(160.0 * sc);
    fp.seed = s;
    return MakeFibo(fp);
  };
  spec.Add(fibo);

  AppSpec sys;
  sys.name = "sysbench";
  sys.start_at = Seconds(7);
  sys.has_metric = true;
  sys.metric = MetricKind::kOpsPerSec;
  sys.make = [](int, uint64_t s, double sc) {
    SysbenchParams sp = SysbenchTable2();
    sp.seed = s + 1;
    sp.total_transactions = static_cast<int64_t>(sp.total_transactions * sc);
    return MakeSysbench(sp);
  };
  spec.Add(sys);

  // The sampler lives across Run(); hooks share it through the spec copy.
  auto sampler = std::make_shared<std::unique_ptr<PeriodicSampler>>();
  spec.hooks.on_start = [out, sampler, kind](SpecRunContext& ctx) {
    out->sched = kind;
    out->fibo_runtime_series = TimeSeries("fibo_runtime_s");
    out->sysbench_runtime_series = TimeSeries("sysbench_runtime_s");
    out->fibo_penalty_series = TimeSeries("fibo_penalty");
    out->sysbench_penalty_series = TimeSeries("sysbench_penalty");
    Application* fibo_app = ctx.apps[0];
    Application* sys_app = ctx.apps[1];
    Machine* m = &ctx.run.machine();
    *sampler = std::make_unique<PeriodicSampler>(
        m, Milliseconds(500), [out, fibo_app, sys_app, m](SimTime t) {
          if (!fibo_app->threads().empty()) {
            SimThread* ft = fibo_app->threads().front();
            out->fibo_runtime_series.Push(t, ToSeconds(ft->RuntimeAt(t)));
            out->fibo_penalty_series.Push(t, m->scheduler().InteractivityPenaltyOf(ft));
          }
          SimDuration sys_runtime = 0;
          std::vector<SimThread*> workers;
          for (SimThread* st : sys_app->threads()) {
            sys_runtime += st->RuntimeAt(t);
            if (IsWorker(st)) {
              workers.push_back(st);
            }
          }
          out->sysbench_runtime_series.Push(t, ToSeconds(sys_runtime));
          out->sysbench_penalty_series.Push(t, AvgPenalty(*m, workers));
        });
  };
  spec.hooks.on_finish = [out, sampler](SpecRunContext& ctx, RunResult&) {
    if (*sampler) {
      (*sampler)->Stop();
      sampler->reset();
    }
    Application* fibo_app = ctx.apps[0];
    Application* sys_app = ctx.apps[1];
    if (!fibo_app->threads().empty()) {
      out->fibo_runtime = fibo_app->threads().front()->total_runtime;
    }
    out->fibo_finish = fibo_app->stats().finished;
    out->sysbench_tps = sys_app->stats().OpsPerSecond(ctx.run.engine().now());
    out->sysbench_avg_latency = static_cast<SimDuration>(sys_app->stats().latency.Mean());
    out->sysbench_finish = sys_app->stats().finished;
  };
  return spec;
}

FiboSysbenchResult RunFiboSysbench(SchedKind kind, uint64_t seed, double scale) {
  auto out = std::make_shared<FiboSysbenchResult>();
  ExecuteSpec(FiboSysbenchSpec(kind, seed, scale, out));
  return std::move(*out);
}

namespace {

FiboSysbenchAggregate AggregateFiboRuns(std::vector<std::shared_ptr<FiboSysbenchResult>> outs) {
  FiboSysbenchAggregate agg;
  std::vector<double> tps, lat, frt, sfin;
  for (const auto& o : outs) {
    tps.push_back(o->sysbench_tps);
    lat.push_back(ToSeconds(o->sysbench_avg_latency) * 1e3);
    frt.push_back(ToSeconds(o->fibo_runtime));
    sfin.push_back(ToSeconds(o->sysbench_finish));
  }
  agg.tps = AggregateStat::Of(tps);
  agg.latency_ms = AggregateStat::Of(lat);
  agg.fibo_runtime_s = AggregateStat::Of(frt);
  agg.sysbench_finish_s = AggregateStat::Of(sfin);
  agg.first = std::move(*outs.front());
  return agg;
}

void AppendFiboSweep(SchedKind kind, uint64_t seed, double scale, int runs,
                     std::vector<ExperimentSpec>* specs,
                     std::vector<std::shared_ptr<FiboSysbenchResult>>* outs) {
  for (int k = 0; k < runs; ++k) {
    auto out = std::make_shared<FiboSysbenchResult>();
    ExperimentSpec s = FiboSysbenchSpec(kind, seed + static_cast<uint64_t>(k), scale, out);
    s.label += "/s" + std::to_string(k);
    specs->push_back(std::move(s));
    outs->push_back(std::move(out));
  }
}

}  // namespace

FiboSysbenchAggregate RunFiboSysbenchCampaign(SchedKind kind, uint64_t seed, double scale,
                                              int runs, int jobs) {
  runs = std::max(1, runs);
  std::vector<ExperimentSpec> specs;
  std::vector<std::shared_ptr<FiboSysbenchResult>> outs;
  AppendFiboSweep(kind, seed, scale, runs, &specs, &outs);
  CampaignRunner(jobs).Run(specs);
  return AggregateFiboRuns(std::move(outs));
}

FiboSysbenchCampaign RunFiboSysbenchBoth(uint64_t seed, double scale, int runs, int jobs) {
  runs = std::max(1, runs);
  std::vector<ExperimentSpec> specs;
  std::vector<std::shared_ptr<FiboSysbenchResult>> outs;
  AppendFiboSweep(SchedKind::kCfs, seed, scale, runs, &specs, &outs);
  AppendFiboSweep(SchedKind::kUle, seed, scale, runs, &specs, &outs);
  CampaignRunner(jobs).Run(specs);
  FiboSysbenchCampaign c;
  c.cfs = AggregateFiboRuns({outs.begin(), outs.begin() + runs});
  c.ule = AggregateFiboRuns({outs.begin() + runs, outs.end()});
  return c;
}

// ---- Figures 3 and 4 ----

namespace {

struct SysbenchThreadsState {
  // Per-thread sample log; classified into the figure's bands afterwards.
  struct Sample {
    SimTime t;
    std::vector<std::pair<const SimThread*, std::pair<double, int>>> threads;  // (runtime_s, penalty)
  };
  std::vector<Sample> samples;
  std::unique_ptr<PeriodicSampler> sampler;
};

}  // namespace

ExperimentSpec SysbenchThreadsSpec(SchedKind kind, uint64_t seed, double scale,
                                   std::shared_ptr<SysbenchThreadsResult> out) {
  ExperimentSpec spec = ExperimentSpec::SingleCore(kind, seed);
  spec.scale = scale;
  spec.Named("sysbench-threads/" + std::string(SchedName(kind)));

  AppSpec sys;
  sys.name = "sysbench";
  sys.has_metric = true;
  sys.metric = MetricKind::kOpsPerSec;
  sys.make = [](int, uint64_t s, double sc) {
    SysbenchParams sp = SysbenchFig3();
    sp.seed = s;
    sp.total_transactions = static_cast<int64_t>(sp.total_transactions * sc);
    return MakeSysbench(sp);
  };
  spec.Add(sys);

  auto state = std::make_shared<SysbenchThreadsState>();
  spec.hooks.on_start = [state](SpecRunContext& ctx) {
    state->samples.clear();
    Application* sys_app = ctx.apps[0];
    Machine* m = &ctx.run.machine();
    state->sampler = std::make_unique<PeriodicSampler>(
        m, Milliseconds(500), [state, sys_app, m](SimTime t) {
          SysbenchThreadsState::Sample s;
          s.t = t;
          for (SimThread* st : sys_app->threads()) {
            s.threads.push_back(
                {st, {ToSeconds(st->RuntimeAt(t)),
                      static_cast<int>(m->scheduler().InteractivityPenaltyOf(st))}});
          }
          state->samples.push_back(std::move(s));
        });
  };
  spec.hooks.on_finish = [out, state](SpecRunContext& ctx, RunResult&) {
    if (state->sampler) {
      state->sampler->Stop();
      state->sampler.reset();
    }
    Application* sys_app = ctx.apps[0];
    out->master_runtime = TimeSeries("master_runtime_s");
    out->interactive_runtime = TimeSeries("interactive_avg_runtime_s");
    out->background_runtime = TimeSeries("background_avg_runtime_s");
    out->interactive_penalty = TimeSeries("interactive_avg_penalty");
    out->background_penalty = TimeSeries("background_avg_penalty");

    // Classify workers by final runtime: the paper's "background" band is the
    // starved set (near-zero runtime).
    const SimTime end = ctx.run.engine().now();
    std::vector<const SimThread*> interactive;
    std::vector<const SimThread*> background;
    double max_runtime = 0;
    for (SimThread* st : sys_app->threads()) {
      if (IsWorker(st)) {
        max_runtime = std::max(max_runtime, ToSeconds(st->RuntimeAt(end)));
      }
    }
    for (SimThread* st : sys_app->threads()) {
      if (!IsWorker(st)) {
        continue;
      }
      if (ToSeconds(st->RuntimeAt(end)) < 0.05 * max_runtime) {
        background.push_back(st);
      } else {
        interactive.push_back(st);
      }
    }
    out->interactive_count = static_cast<int>(interactive.size());
    out->background_count = static_cast<int>(background.size());
    out->starved_count = 0;
    for (const SimThread* st : background) {
      if (ToSeconds(st->RuntimeAt(end)) < 0.01 * max_runtime) {
        ++out->starved_count;
      }
    }

    auto in_set = [](const std::vector<const SimThread*>& set, const SimThread* t) {
      return std::find(set.begin(), set.end(), t) != set.end();
    };
    for (const SysbenchThreadsState::Sample& s : state->samples) {
      double master_rt = 0;
      double int_rt = 0, bg_rt = 0, int_pen = 0, bg_pen = 0;
      int int_n = 0, bg_n = 0;
      for (const auto& [t, vals] : s.threads) {
        if (!IsWorker(t)) {
          master_rt = vals.first;
        } else if (in_set(interactive, t)) {
          int_rt += vals.first;
          int_pen += vals.second;
          ++int_n;
        } else if (in_set(background, t)) {
          bg_rt += vals.first;
          bg_pen += vals.second;
          ++bg_n;
        }
      }
      out->master_runtime.Push(s.t, master_rt);
      if (int_n > 0) {
        out->interactive_runtime.Push(s.t, int_rt / int_n);
        out->interactive_penalty.Push(s.t, int_pen / int_n);
      }
      if (bg_n > 0) {
        out->background_runtime.Push(s.t, bg_rt / bg_n);
        out->background_penalty.Push(s.t, bg_pen / bg_n);
      }
    }
    state->samples.clear();
  };
  return spec;
}

SysbenchThreadsResult RunSysbenchThreads(SchedKind kind, uint64_t seed, double scale) {
  auto out = std::make_shared<SysbenchThreadsResult>();
  ExecuteSpec(SysbenchThreadsSpec(kind, seed, scale, out));
  return std::move(*out);
}

// ---- Figures 5 and 8 ----

std::vector<SuiteRow> RunSuite(const std::vector<AppSpec>& apps, const SuiteOptions& options) {
  const int runs = std::max(1, options.runs);
  std::vector<ExperimentSpec> bases;
  bases.reserve(apps.size());
  for (const AppSpec& app : apps) {
    ExperimentSpec spec;
    spec.topology = options.topology;
    spec.system_noise = options.system_noise;
    spec.machine.seed = options.seed;
    spec.scale = options.scale;
    spec.Named(app.name);
    spec.slo = options.slo;
    spec.Add(app);
    bases.push_back(std::move(spec));
  }
  const std::vector<ExperimentSpec> specs = SeedSweep(BothSchedulers(bases), runs);
  const std::vector<RunResult> results = CampaignRunner(options.jobs).Run(specs);
  const std::vector<ResultGroup> groups = GroupResults(results);

  // Groups appear in spec order: app0/cfs, app0/ule, app1/cfs, ...
  std::vector<SuiteRow> rows;
  rows.reserve(apps.size());
  for (size_t i = 0; i < apps.size(); ++i) {
    const ResultGroup& gc = groups[2 * i];
    const ResultGroup& gu = groups[2 * i + 1];
    SuiteRow row;
    row.name = apps[i].name;
    row.runs = runs;
    const AggregateStat mc = gc.AggregateAppMetric(0);
    const AggregateStat mu = gu.AggregateAppMetric(0);
    row.cfs_metric = mc.mean;
    row.cfs_stddev = mc.stddev;
    row.ule_metric = mu.mean;
    row.ule_stddev = mu.stddev;
    const auto overhead = [](const RunResult& r) { return 100.0 * r.sched_work_fraction; };
    row.cfs_overhead_pct = gc.Aggregate(overhead).mean;
    row.ule_overhead_pct = gu.Aggregate(overhead).mean;
    row.cfs_wakeup_preemptions = gc.runs.front()->counters.wakeup_preemptions;
    row.ule_wakeup_preemptions = gu.runs.front()->counters.wakeup_preemptions;
    if (!options.slo.empty()) {
      const auto observed = [](SloMetric metric) {
        return [metric](const RunResult& r) -> double {
          for (const SloVerdict& v : r.slo_verdicts) {
            if (v.objective.metric == metric) {
              return static_cast<double>(v.observed);
            }
          }
          return 0;
        };
      };
      row.cfs_wakeup_p99_ns = gc.Aggregate(observed(SloMetric::kWakeupP99)).mean;
      row.ule_wakeup_p99_ns = gu.Aggregate(observed(SloMetric::kWakeupP99)).mean;
      row.cfs_wakeup_p999_ns = gc.Aggregate(observed(SloMetric::kWakeupP999)).mean;
      row.ule_wakeup_p999_ns = gu.Aggregate(observed(SloMetric::kWakeupP999)).mean;
      for (const RunResult* r : gc.runs) {
        row.cfs_slo_pass = row.cfs_slo_pass && r->slo_pass;
      }
      for (const RunResult* r : gu.runs) {
        row.ule_slo_pass = row.ule_slo_pass && r->slo_pass;
      }
    }
    if (row.cfs_metric > 0) {
      row.diff_pct = 100.0 * (row.ule_metric - row.cfs_metric) / row.cfs_metric;
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

SuiteRow RunSuiteApp(const std::string& name, int cores, uint64_t seed, double scale) {
  if (FindApp(name) == nullptr) {
    SuiteRow row;
    row.name = name;
    return row;
  }
  SuiteOptions options;
  if (cores == 1) {
    options.topology = CpuTopology::Flat(1).config();
    options.system_noise = false;
  }
  options.seed = seed;
  options.scale = scale;
  return RunSuite({RegistryApp(name)}, options)[0];
}

// ---- Figure 6 ----

ExperimentSpec LoadBalanceSpec(SchedKind kind, uint64_t seed, SimTime run_for, int tolerance,
                               std::shared_ptr<LoadBalanceResult> out) {
  ExperimentSpec spec = ExperimentSpec::Multicore(kind, seed);
  spec.system_noise = false;  // the paper's experiment uses only the spinners
  spec.horizon = run_for;
  spec.Named("loadbalance-512/" + std::string(SchedName(kind)));
  // 512 spinners over 32 cores: ~16-deep queues of 5ms slices.
  spec.slo = DefaultSlo(Seconds(2), Seconds(10));

  AppSpec spinners;
  spinners.name = "spinners";
  spinners.has_metric = true;  // metric unused; avoids a registry lookup
  spinners.make = [](int, uint64_t s, double) -> std::unique_ptr<Application> {
    auto app = std::make_unique<ScriptedApp>("spinners", s);
    ScriptedApp::ThreadTemplate tmpl;
    tmpl.name = "spin";
    tmpl.count = 512;
    tmpl.affinity = CpuMask::Single(0);
    tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
    app->AddThreads(std::move(tmpl));
    app->set_background(true);
    return app;
  };
  spec.Add(spinners);

  spec.hooks.on_start = [out, kind](SpecRunContext& ctx) {
    out->sched = kind;
    out->unpin_time = SecondsF(14.5);
    Machine* m = &ctx.run.machine();
    out->heatmap = std::make_unique<CoreLoadHeatmap>(m, Milliseconds(100));
    Application* app = ctx.apps[0];
    ctx.run.engine().PostAt(out->unpin_time, [m, app] {
      const CpuMask all = CpuMask::AllOf(m->num_cores());
      for (SimThread* t : app->threads()) {
        m->SetAffinity(t, all);
      }
    });
  };
  spec.hooks.on_finish = [out, tolerance](SpecRunContext& ctx, RunResult&) {
    out->heatmap->Stop();
    out->balanced_time = out->heatmap->TimeToBalance(tolerance);
    const auto final_counts = out->heatmap->CountsAt(ctx.run.engine().now());
    if (!final_counts.empty()) {
      out->final_max = *std::max_element(final_counts.begin(), final_counts.end());
      out->final_min = *std::min_element(final_counts.begin(), final_counts.end());
    }
    out->migrations = ctx.run.machine().counters().migrations;
    out->balance_invocations = ctx.run.machine().counters().balance_invocations;
  };
  return spec;
}

LoadBalanceResult RunLoadBalance512(SchedKind kind, uint64_t seed, SimTime run_for,
                                    int tolerance) {
  auto out = std::make_shared<LoadBalanceResult>();
  ExecuteSpec(LoadBalanceSpec(kind, seed, run_for, tolerance, out));
  return std::move(*out);
}

ExperimentSpec LoadBalance4096Spec(SchedKind kind, uint64_t seed, SimTime run_for,
                                   int tolerance, std::shared_ptr<LoadBalanceResult> out,
                                   int shards) {
  ExperimentSpec spec = LoadBalanceSpec(kind, seed, run_for, tolerance, out);
  spec.topology = CpuTopology::Numa1024().config();
  spec.shards = shards;
  spec.cfs.group_scheduling = false;  // keep runs parallel-window eligible
  // No SLOs: they would attach a SchedStats observer, and observers force
  // the engine onto the serialized merge (the heatmap is a plain periodic
  // sampler and does not).
  spec.slo.clear();
  spec.Named("loadbalance-4096/" + std::string(SchedName(kind)));
  // Rebuild the spinner app at 4096 threads (LoadBalanceSpec pinned 512 to
  // core 0); everything else — unpin hook, heatmap, SLOs — carries over.
  spec.apps.clear();
  AppSpec spinners;
  spinners.name = "spinners";
  spinners.has_metric = true;
  spinners.make = [](int, uint64_t s, double) -> std::unique_ptr<Application> {
    auto app = std::make_unique<ScriptedApp>("spinners", s);
    ScriptedApp::ThreadTemplate tmpl;
    tmpl.name = "spin";
    tmpl.count = 4096;
    tmpl.affinity = CpuMask::Single(0);
    tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
    app->AddThreads(std::move(tmpl));
    app->set_background(true);
    return app;
  };
  spec.Add(spinners);
  return spec;
}

LoadBalanceResult RunLoadBalance4096(SchedKind kind, uint64_t seed, SimTime run_for,
                                     int tolerance, int shards) {
  auto out = std::make_shared<LoadBalanceResult>();
  ExecuteSpec(LoadBalance4096Spec(kind, seed, run_for, tolerance, out, shards));
  return std::move(*out);
}

// ---- Figure 7 ----

ExperimentSpec CraySpec(SchedKind kind, uint64_t seed, double scale,
                        std::shared_ptr<CrayResult> out) {
  ExperimentSpec spec = ExperimentSpec::Multicore(kind, seed);
  spec.system_noise = false;
  spec.scale = scale;
  spec.Named("c-ray-placement/" + std::string(SchedName(kind)));

  AppSpec cray;
  cray.name = "c-ray";
  cray.has_metric = true;
  cray.metric = MetricKind::kInvTime;
  cray.make = [](int, uint64_t s, double sc) {
    CrayParams cp;
    cp.seed = s;
    cp.work_per_thread = static_cast<SimDuration>(cp.work_per_thread * sc);
    return MakeCray(cp);
  };
  spec.Add(cray);

  spec.hooks.on_start = [out, kind](SpecRunContext& ctx) {
    out->sched = kind;
    out->heatmap = std::make_unique<CoreLoadHeatmap>(&ctx.run.machine(), Milliseconds(100));
  };
  spec.hooks.on_finish = [out](SpecRunContext& ctx, RunResult&) {
    out->heatmap->Stop();
    Application* app = ctx.apps[0];
    out->finish_time = app->stats().finished;
    SimTime all_runnable = 0;
    for (SimThread* t : app->threads()) {
      all_runnable = std::max(all_runnable, t->first_dispatch);
    }
    out->all_runnable_time = all_runnable;
  };
  return spec;
}

CrayResult RunCrayPlacement(SchedKind kind, uint64_t seed, double scale) {
  auto out = std::make_shared<CrayResult>();
  ExecuteSpec(CraySpec(kind, seed, scale, out));
  return std::move(*out);
}

// ---- Serving fleet ----

namespace {

struct ServePresetDef {
  TopologyConfig topology;
  int cores = 0;
  ServingParams params;  // arrivals_until already scaled
  int colo_spinners = 0;
  std::vector<SloObjective> slo;
};

SloObjective RequestSlo(SloMetric metric, SimDuration threshold) {
  SloObjective o;
  o.metric = metric;
  o.threshold = threshold;
  return o;
}

// Scales the arrival window (request volume) while holding rates fixed, so
// utilization — the thing each preset is calibrated for — is scale-invariant.
SimTime ScaledWindow(double seconds, double scale) {
  return std::max<SimTime>(Milliseconds(20), SecondsF(seconds * scale));
}

bool BuildServePreset(const std::string& preset, double scale, ServePresetDef* def) {
  // Rates are calibrated as util = rate * mean_compute / cores against each
  // model's default service shape (see src/apps/serving.cc).
  if (preset == "serve-smoke") {
    def->topology = CpuTopology::Flat(16).config();
    def->cores = 16;
    def->params = ApacheServeDefaults();  // 4ms compute
    def->params.workers = 64;
    def->params.arrivals.rate_per_sec = 3200;  // ~80% of 16 cores
    def->params.arrivals_until = ScaledWindow(0.5, scale);
    def->params.deadline = Milliseconds(50);
    def->slo = {RequestSlo(SloMetric::kRequestP99, Milliseconds(250)),
                RequestSlo(SloMetric::kRequestP999, Milliseconds(500))};
    return true;
  }
  if (preset == "serve-smoke-sysbench") {
    def->topology = CpuTopology::Flat(16).config();
    def->cores = 16;
    def->params = SysbenchServeDefaults();  // 2ms compute + 3ms disk wait
    def->params.workers = 64;
    def->params.arrivals.rate_per_sec = 6400;  // ~80% of 16 cores
    def->params.arrivals_until = ScaledWindow(0.25, scale);
    def->params.deadline = Milliseconds(50);
    def->slo = {RequestSlo(SloMetric::kRequestP99, Milliseconds(250)),
                RequestSlo(SloMetric::kRequestP999, Milliseconds(500))};
    return true;
  }
  if (preset == "serve-smoke-rocksdb") {
    def->topology = CpuTopology::Flat(16).config();
    def->cores = 16;
    def->params = RocksdbServeDefaults();  // 0.45ms mean compute, WAL stalls
    def->params.workers = 64;
    def->params.arrivals.rate_per_sec = 16000;  // ~45% of 16 cores
    def->params.arrivals_until = ScaledWindow(0.1, scale);
    def->params.deadline = Milliseconds(20);
    def->slo = {RequestSlo(SloMetric::kRequestP99, Milliseconds(100)),
                RequestSlo(SloMetric::kRequestP999, Milliseconds(250))};
    return true;
  }
  if (preset == "serve1024") {
    def->topology = CpuTopology::Numa1024().config();
    def->cores = 1024;
    def->params = ApacheServeDefaults();
    def->params.service_compute = Milliseconds(10);
    def->params.workers = 3072;  // 3 runnable-capable threads per core
    def->params.arrivals.rate_per_sec = 97280;  // 95% of 1024 cores at 10ms
    def->params.arrivals_until = ScaledWindow(1.0, scale);
    def->params.deadline = Milliseconds(100);
    def->slo = {RequestSlo(SloMetric::kRequestP50, Milliseconds(100)),
                RequestSlo(SloMetric::kRequestP99, Milliseconds(500)),
                RequestSlo(SloMetric::kRequestP999, Seconds(2))};
    return true;
  }
  if (preset == "serve1024-spike") {
    def->topology = CpuTopology::Numa1024().config();
    def->cores = 1024;
    def->params = ApacheServeDefaults();
    def->params.service_compute = Milliseconds(10);
    def->params.workers = 3072;
    def->params.arrivals.kind = ArrivalKind::kSpike;
    def->params.arrivals.rate_per_sec = 71680;  // 70% baseline...
    def->params.arrivals.spike_multiplier = 2.2;  // ...154% during the spike
    def->params.arrivals_until = ScaledWindow(1.0, scale);
    def->params.arrivals.spike_start =
        static_cast<SimTime>(0.35 * static_cast<double>(def->params.arrivals_until));
    def->params.arrivals.spike_duration =
        static_cast<SimDuration>(0.30 * static_cast<double>(def->params.arrivals_until));
    def->params.deadline = Milliseconds(100);
    def->slo = {RequestSlo(SloMetric::kRequestP50, Milliseconds(250)),
                RequestSlo(SloMetric::kRequestP99, Seconds(2)),
                RequestSlo(SloMetric::kRequestP999, Seconds(5))};
    return true;
  }
  if (preset == "serve1024-colo") {
    def->topology = CpuTopology::Numa1024().config();
    def->cores = 1024;
    def->params = ApacheServeDefaults();
    def->params.service_compute = Milliseconds(10);
    def->params.workers = 3072;
    def->params.arrivals.rate_per_sec = 61440;  // 60% serving...
    def->params.arrivals_until = ScaledWindow(1.0, scale);
    def->params.deadline = Milliseconds(100);
    def->colo_spinners = 2048;  // ...co-located with a batch runtime
    def->slo = {RequestSlo(SloMetric::kRequestP50, Milliseconds(500)),
                RequestSlo(SloMetric::kRequestP99, Seconds(3)),
                RequestSlo(SloMetric::kRequestP999, Seconds(10))};
    return true;
  }
  return false;
}

}  // namespace

const std::vector<std::string>& ServePresets() {
  static const std::vector<std::string> kPresets = {
      "serve-smoke",  "serve-smoke-sysbench", "serve-smoke-rocksdb",
      "serve1024",    "serve1024-spike",      "serve1024-colo",
  };
  return kPresets;
}

bool IsServePreset(const std::string& preset) {
  for (const std::string& p : ServePresets()) {
    if (p == preset) {
      return true;
    }
  }
  return false;
}

int ServePresetCores(const std::string& preset) {
  ServePresetDef def;
  return BuildServePreset(preset, 1.0, &def) ? def.cores : 0;
}

ExperimentSpec ServeSpec(const std::string& preset, SchedKind kind, uint64_t seed,
                         double scale, std::shared_ptr<ServeResult> out) {
  ServePresetDef def;
  if (!BuildServePreset(preset, scale, &def)) {
    std::fprintf(stderr, "ServeSpec: unknown serve preset '%s'\n", preset.c_str());
    std::exit(2);
  }
  ExperimentSpec spec;
  spec.sched = kind;
  spec.topology = def.topology;
  spec.machine.seed = seed;
  spec.system_noise = false;
  // Serving runs are horizon-bounded (workers park forever, like httpd): the
  // horizon leaves a drain window after the last admission; requests still
  // unserved there count against goodput.
  spec.horizon = def.params.arrivals_until + Milliseconds(500);
  spec.Named(preset + "/" + std::string(SchedName(kind)));
  spec.slo = def.slo;

  AppSpec serve;
  serve.name = def.params.name;
  serve.has_metric = true;
  serve.metric = MetricKind::kOpsPerSec;
  const ServingParams params = def.params;
  serve.make = [params](int, uint64_t s, double) {
    ServingParams p = params;
    p.seed = s;
    p.arrivals.seed = s * 31 + 7;  // arrival stream independent of workers
    return MakeServing(p);
  };
  spec.Add(serve);

  if (def.colo_spinners > 0) {
    AppSpec batch;
    batch.name = "batch";
    batch.has_metric = true;  // metric unused; avoids a registry lookup
    const int spinners = def.colo_spinners;
    batch.make = [spinners](int, uint64_t s, double) -> std::unique_ptr<Application> {
      auto app = std::make_unique<ScriptedApp>("batch", s);
      ScriptedApp::ThreadTemplate tmpl;
      tmpl.name = "batch";
      tmpl.count = spinners;
      tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
      app->AddThreads(std::move(tmpl));
      app->set_background(true);
      return app;
    };
    spec.Add(batch);
  }

  if (out != nullptr) {
    spec.hooks.on_finish = [out, kind](SpecRunContext& ctx, RunResult&) {
      const auto* app = dynamic_cast<const ServingApp*>(ctx.apps[0]);
      if (app == nullptr) {
        return;
      }
      out->sched = kind;
      out->admitted = app->admitted();
      out->completed = app->completed();
      out->good = app->good();
      out->goodput_fraction = app->GoodputFraction();
      const LatencyHistogram& lat = app->stats().latency;
      out->request_p50 = lat.Percentile(50);
      out->request_p99 = lat.Percentile(99);
      out->request_p999 = lat.Percentile(99.9);
      out->request_max = lat.max();
      out->tail_series_json = app->tail().ToJson();
    };
  }
  return spec;
}

ServeResult RunServe(const std::string& preset, SchedKind kind, uint64_t seed, double scale) {
  auto out = std::make_shared<ServeResult>();
  ExecuteSpec(ServeSpec(preset, kind, seed, scale, out));
  return std::move(*out);
}

// ---- Figure 9 ----

namespace {

AppSpec MultiAppSpecFor(const std::string& name) {
  if (name == "fibo") {
    AppSpec a;
    a.name = "fibo";
    a.has_metric = true;
    a.metric = MetricKind::kInvTime;
    a.make = [](int, uint64_t s, double sc) {
      FiboParams p;
      p.total_work = SecondsF(60.0 * sc);
      p.seed = s;
      return MakeFibo(p);
    };
    return a;
  }
  // The server-style apps are open-ended in the paper's pairs; run them long
  // enough to overlap their partner for most of the measurement.
  const bool open_ended = name == "sysbench" || name == "ferret" || name == "apache";
  return RegistryApp(name, open_ended ? 3.0 : 1.0);
}

}  // namespace

std::vector<MultiAppRow> RunMultiAppPairs(uint64_t seed, double scale, int runs, int jobs) {
  struct PairDef {
    std::string pair;
    std::string a;
    std::string b;
  };
  const std::vector<PairDef> pairs = {
      {"c-ray + EP", "c-ray", "EP"},
      {"fibo + sysbench", "fibo", "sysbench"},
      {"blackscholes + ferret", "blackscholes", "ferret"},
      {"apache + sysbench", "apache", "sysbench"},
  };
  runs = std::max(1, runs);

  std::vector<ExperimentSpec> bases;
  bases.reserve(pairs.size() * 3);
  for (const PairDef& pd : pairs) {
    ExperimentSpec alone_a = ExperimentSpec::Multicore(SchedKind::kCfs, seed);
    alone_a.scale = scale;
    alone_a.Named(pd.pair + "/" + pd.a + "-alone");
    alone_a.Add(MultiAppSpecFor(pd.a));
    bases.push_back(std::move(alone_a));

    ExperimentSpec alone_b = ExperimentSpec::Multicore(SchedKind::kCfs, seed);
    alone_b.scale = scale;
    alone_b.Named(pd.pair + "/" + pd.b + "-alone");
    alone_b.Add(MultiAppSpecFor(pd.b));
    bases.push_back(std::move(alone_b));

    ExperimentSpec together = ExperimentSpec::Multicore(SchedKind::kCfs, seed);
    together.scale = scale;
    together.Named(pd.pair + "/together");
    together.Add(MultiAppSpecFor(pd.a));
    together.Add(MultiAppSpecFor(pd.b));
    bases.push_back(std::move(together));
  }
  // Co-scheduled multicore runs: tails dominated by background-noise bursts.
  for (ExperimentSpec& b : bases) {
    b.slo = DefaultSlo(Seconds(1), Seconds(5));
  }

  const std::vector<ExperimentSpec> specs = SeedSweep(BothSchedulers(bases), runs);
  const std::vector<RunResult> results = CampaignRunner(jobs).Run(specs);
  const std::vector<ResultGroup> groups = GroupResults(results);

  // Six groups per pair, in spec order:
  // a-alone/{cfs,ule}, b-alone/{cfs,ule}, together/{cfs,ule}.
  std::vector<MultiAppRow> rows;
  rows.reserve(pairs.size() * 2);
  for (size_t p = 0; p < pairs.size(); ++p) {
    const size_t g = 6 * p;
    MultiAppRow ra, rb;
    ra.pair_name = rb.pair_name = pairs[p].pair;
    ra.app_name = pairs[p].a;
    rb.app_name = pairs[p].b;
    ra.runs = rb.runs = runs;

    AggregateStat s = groups[g].AggregateAppMetric(0);
    ra.alone_cfs = s.mean;
    ra.alone_cfs_sd = s.stddev;
    s = groups[g + 1].AggregateAppMetric(0);
    ra.alone_ule = s.mean;
    ra.alone_ule_sd = s.stddev;
    s = groups[g + 2].AggregateAppMetric(0);
    rb.alone_cfs = s.mean;
    rb.alone_cfs_sd = s.stddev;
    s = groups[g + 3].AggregateAppMetric(0);
    rb.alone_ule = s.mean;
    rb.alone_ule_sd = s.stddev;
    s = groups[g + 4].AggregateAppMetric(0);
    ra.multi_cfs = s.mean;
    ra.multi_cfs_sd = s.stddev;
    s = groups[g + 4].AggregateAppMetric(1);
    rb.multi_cfs = s.mean;
    rb.multi_cfs_sd = s.stddev;
    s = groups[g + 5].AggregateAppMetric(0);
    ra.multi_ule = s.mean;
    ra.multi_ule_sd = s.stddev;
    s = groups[g + 5].AggregateAppMetric(1);
    rb.multi_ule = s.mean;
    rb.multi_ule_sd = s.stddev;

    rows.push_back(std::move(ra));
    rows.push_back(std::move(rb));
  }
  return rows;
}

}  // namespace schedbattle
