// Declarative experiment specifications.
//
// An ExperimentSpec captures everything one simulator run needs *as data*:
// scheduler, topology, tunables, applications, seed, scale and horizon —
// the paper's "same machine, same workload, swap the scheduler" methodology
// expressed as a value that can be copied, labelled, swept over seeds and
// executed on a worker thread. ExecuteSpec() turns one spec into one
// ExperimentRun and returns a RunResult (per-app metrics, machine counters,
// optionally a schedstats JSON snapshot).
//
// Campaign combinators (src/core/campaign.h) build lists of specs; the
// CampaignRunner executes them in parallel. Scenario-specific
// instrumentation (periodic samplers, mid-run affinity flips, heatmaps)
// attaches through the spec's hooks, which run on the executing thread with
// full access to the live ExperimentRun.
#ifndef SRC_CORE_SPEC_H_
#define SRC_CORE_SPEC_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/check/invariant.h"
#include "src/core/runner.h"
#include "src/metrics/slo.h"

namespace schedbattle {

struct RunResult;
class ExperimentRun;

// One application inside a spec. Apps resolve against the benchmark-suite
// registry by name; `make` overrides the registry for custom workloads
// (scripted spinners, parameterized fibo/hackbench, ...).
struct AppSpec {
  std::string name;      // registry name, or a label for custom factories
  SimTime start_at = 0;  // simulated launch time
  double scale_mult = 1.0;  // multiplied with the spec-wide scale

  // Metric used for AppResult::metric. When `has_metric` is false it is
  // resolved from the registry entry (kInvTime for custom factories).
  MetricKind metric = MetricKind::kInvTime;
  bool has_metric = false;

  // Optional custom factory: (cores, seed, effective_scale) -> app. When
  // unset, the registry entry named `name` is used.
  std::function<std::unique_ptr<Application>(int, uint64_t, double)> make;
};

// Registry-backed app spec ("gzip", "MG", "sysbench", ...).
AppSpec RegistryApp(std::string name, double scale_mult = 1.0, SimTime start_at = 0);

// Scenario instrumentation run on the executing thread. `apps` is parallel
// to spec.apps (background system noise is not included).
struct SpecRunContext {
  ExperimentRun& run;
  const struct ExperimentSpec& spec;
  const std::vector<Application*>& apps;
};

struct RunHooks {
  // After apps are added and stats collection attached, before Run().
  std::function<void(SpecRunContext&)> on_start;
  // After Run(), before counters are harvested into the RunResult.
  std::function<void(SpecRunContext&, RunResult&)> on_finish;
};

struct ExperimentSpec {
  // `label` identifies one run; `group` is the aggregation key shared by all
  // seeds of the same configuration (SeedSweep varies label, not group).
  std::string label;
  std::string group;

  SchedKind sched = SchedKind::kCfs;
  TopologyConfig topology = CpuTopology::Opteron6172().config();
  MachineParams machine;
  CfsTunables cfs;
  UleTunables ule;
  MlfqTunables mlfq;
  EevdfTunables eevdf;
  SimTime horizon = Seconds(600);
  bool system_noise = false;
  double scale = 1.0;
  // Engine shards (see ExperimentConfig::shards); byte-identical for any
  // value, so specs and their results stay comparable across shard counts.
  int shards = 1;
  // Event-queue backend (see ExperimentConfig::queue); byte-identical across
  // backends, so results stay comparable. kDefault follows SCHEDBATTLE_QUEUE.
  QueueKind queue = QueueKind::kDefault;
  // Attach a SchedStats observer and store its JSON snapshot in the result.
  bool collect_schedstats = false;
  // Attach a DecisionLog and store its JSONL export in the result
  // (the schedscope decision-record dataset).
  bool collect_decision_log = false;
  // Declarative latency objectives ("wakeup_p99 < 5ms"). A non-empty list
  // forces stats collection for the evaluation; verdicts land in
  // RunResult::slo_verdicts and, when collect_schedstats is also set, in an
  // "slo" section of the schedstats JSON.
  std::vector<SloObjective> slo;
  // Arm the full invariant MonitorSuite (src/check) for the run; violation
  // counts and the report land in the RunResult. The suite attaches before
  // SchedStats so stats snapshots can include per-monitor counts.
  bool check_invariants = false;
  MonitorOptions monitor_options;
  // Optional scheduler-construction override (fault injection); forwarded
  // into ExperimentConfig::scheduler_factory.
  std::function<std::unique_ptr<Scheduler>(const ExperimentConfig&)> scheduler_factory;

  std::vector<AppSpec> apps;
  RunHooks hooks;

  uint64_t seed() const { return machine.seed; }

  // Builder-style helpers (all return *this for chaining).
  ExperimentSpec& Named(std::string name);
  ExperimentSpec& WithSeed(uint64_t seed);
  ExperimentSpec& WithSched(SchedKind kind);
  ExperimentSpec& WithScale(double s);
  ExperimentSpec& WithHorizon(SimTime h);
  ExperimentSpec& Add(AppSpec app);

  // The machine configuration part, for ExperimentRun.
  ExperimentConfig ToConfig() const;

  // Single flat core (the paper's Figures 1-5 setup).
  static ExperimentSpec SingleCore(SchedKind kind, uint64_t seed = 42);
  // The paper's 32-core NUMA machine, with background system noise.
  static ExperimentSpec Multicore(SchedKind kind, uint64_t seed = 42);
};

// Per-app outcome of one run, in spec.apps order.
struct AppResult {
  std::string name;
  double metric = 0;      // the paper's metric (ops/s or 1/time)
  double ops_per_sec = 0;
  uint64_t ops = 0;
  bool finished = false;
  SimTime finish_time = -1;
};

struct RunResult {
  std::string label;
  std::string group;
  SchedKind sched = SchedKind::kCfs;
  uint64_t seed = 0;
  SimTime finish_time = 0;  // workload finish (or horizon)
  double sched_work_fraction = 0;
  MachineCounters counters;
  std::vector<AppResult> apps;
  std::string schedstats_json;  // only when spec.collect_schedstats
  std::string decision_log;     // JSONL; only when spec.collect_decision_log

  // SLO evaluation (only when spec.slo is non-empty). slo_pass is vacuously
  // true for specs with no objectives.
  std::vector<SloVerdict> slo_verdicts;
  bool slo_pass = true;

  // Invariant-monitoring outcome (only when spec.check_invariants).
  uint64_t violations = 0;
  std::string first_violation_monitor;  // empty when the run was clean
  std::string violation_report;         // MonitorSuite::Report()

  // First app result with the given name; nullptr if absent.
  const AppResult* App(const std::string& name) const;
};

// Executes one spec to completion on the calling thread. Fully
// deterministic: identical specs produce identical results (and identical
// schedstats snapshots) regardless of what other specs run concurrently.
RunResult ExecuteSpec(const ExperimentSpec& spec);

}  // namespace schedbattle

#endif  // SRC_CORE_SPEC_H_
