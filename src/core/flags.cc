#include "src/core/flags.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace schedbattle {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE || !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseInt(const std::string& s, int* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      v < std::numeric_limits<int>::min() || v > std::numeric_limits<int>::max()) {
    return false;
  }
  *out = static_cast<int>(v);
  return true;
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64(const std::string& s, uint64_t* out) {
  if (s.empty() || s[0] == '-' || s[0] == '+' || std::isspace(static_cast<unsigned char>(s[0]))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

FlagSet& FlagSet::Double(std::string name, double* target, std::string help) {
  flags_.push_back({Kind::kDouble, std::move(name), target, std::move(help)});
  return *this;
}
FlagSet& FlagSet::Int(std::string name, int* target, std::string help) {
  flags_.push_back({Kind::kInt, std::move(name), target, std::move(help)});
  return *this;
}
FlagSet& FlagSet::Int64(std::string name, int64_t* target, std::string help) {
  flags_.push_back({Kind::kInt64, std::move(name), target, std::move(help)});
  return *this;
}
FlagSet& FlagSet::Uint64(std::string name, uint64_t* target, std::string help) {
  flags_.push_back({Kind::kUint64, std::move(name), target, std::move(help)});
  return *this;
}
FlagSet& FlagSet::String(std::string name, std::string* target, std::string help) {
  flags_.push_back({Kind::kString, std::move(name), target, std::move(help)});
  return *this;
}
FlagSet& FlagSet::StringList(std::string name, std::vector<std::string>* target,
                             std::string help) {
  flags_.push_back({Kind::kStringList, std::move(name), target, std::move(help)});
  return *this;
}
FlagSet& FlagSet::Bool(std::string name, bool* target, std::string help) {
  flags_.push_back({Kind::kBool, std::move(name), target, std::move(help)});
  return *this;
}

std::string FlagSet::KnownFlags() const {
  std::string s;
  for (const Flag& f : flags_) {
    if (!s.empty()) {
      s += " ";
    }
    s += "--" + f.name;
  }
  return s;
}

bool FlagSet::Parse(int argc, char** argv, int first, std::string* error) const {
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.size() < 3 || arg[0] != '-' || arg[1] != '-') {
      *error = "unexpected argument '" + arg + "' (known flags: " + KnownFlags() + ")";
      return false;
    }
    const size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos ? arg.npos : eq - 2);
    const Flag* flag = nullptr;
    for (const Flag& f : flags_) {
      if (f.name == name) {
        flag = &f;
        break;
      }
    }
    if (flag == nullptr) {
      *error = "unknown flag --" + name + " (known flags: " + KnownFlags() + ")";
      return false;
    }
    if (flag->kind == Kind::kBool) {
      if (eq != std::string::npos) {
        *error = "--" + name + " takes no value";
        return false;
      }
      *static_cast<bool*>(flag->target) = true;
      continue;
    }
    if (eq == std::string::npos) {
      *error = "--" + name + " requires a value (--" + name + "=...)";
      return false;
    }
    const std::string value = arg.substr(eq + 1);
    bool ok = true;
    switch (flag->kind) {
      case Kind::kDouble:
        ok = ParseDouble(value, static_cast<double*>(flag->target));
        break;
      case Kind::kInt:
        ok = ParseInt(value, static_cast<int*>(flag->target));
        break;
      case Kind::kInt64:
        ok = ParseInt64(value, static_cast<int64_t*>(flag->target));
        break;
      case Kind::kUint64:
        ok = ParseUint64(value, static_cast<uint64_t*>(flag->target));
        break;
      case Kind::kString:
        *static_cast<std::string*>(flag->target) = value;
        break;
      case Kind::kStringList:
        static_cast<std::vector<std::string>*>(flag->target)->push_back(value);
        break;
      case Kind::kBool:
        break;  // handled above
    }
    if (!ok) {
      *error = "--" + name + ": '" + value + "' is not a valid " +
               (flag->kind == Kind::kDouble ? "number" : "integer");
      return false;
    }
  }
  return true;
}

std::string FlagSet::Help() const {
  std::string s;
  size_t width = 0;
  std::vector<std::string> lhs;
  for (const Flag& f : flags_) {
    std::string l = "  --" + f.name;
    switch (f.kind) {
      case Kind::kDouble:
        l += "=<float>";
        break;
      case Kind::kInt:
      case Kind::kInt64:
        l += "=<int>";
        break;
      case Kind::kUint64:
        l += "=<uint>";
        break;
      case Kind::kString:
      case Kind::kStringList:
        l += "=<str>";
        break;
      case Kind::kBool:
        break;
    }
    width = std::max(width, l.size());
    lhs.push_back(std::move(l));
  }
  for (size_t i = 0; i < flags_.size(); ++i) {
    s += lhs[i] + std::string(width - lhs[i].size() + 2, ' ') + flags_[i].help + "\n";
  }
  return s;
}

}  // namespace schedbattle
