#include "src/core/experiment.h"

namespace schedbattle {

ExperimentConfig ExperimentConfig::SingleCore(SchedKind kind, uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sched = kind;
  cfg.topology = CpuTopology::Flat(1).config();
  cfg.machine.seed = seed;
  return cfg;
}

ExperimentConfig ExperimentConfig::Multicore(SchedKind kind, uint64_t seed) {
  ExperimentConfig cfg;
  cfg.sched = kind;
  cfg.topology = CpuTopology::Opteron6172().config();
  cfg.machine.seed = seed;
  cfg.system_noise = true;
  return cfg;
}

std::unique_ptr<Scheduler> MakeSchedulerFor(const ExperimentConfig& config) {
  if (config.scheduler_factory) {
    return config.scheduler_factory(config);
  }
  return SchedulerRegistry::Instance().Of(config.sched).make(config);
}

}  // namespace schedbattle
