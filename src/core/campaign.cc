#include "src/core/campaign.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>

namespace schedbattle {

namespace {

void AppendTag(ExperimentSpec& spec, const std::string& tag, bool to_group) {
  spec.label += (spec.label.empty() ? "" : "/") + tag;
  if (to_group) {
    spec.group += (spec.group.empty() ? "" : "/") + tag;
  }
}

// A sweep over zero seeds is always caller error (the old behavior returned
// an empty campaign that aggregated to all-zero rows downstream); reject it
// in the flags layer's exit-2 validation style.
void ValidateSweepRuns(int runs) {
  if (runs <= 0) {
    std::fprintf(stderr, "SeedSweep: runs must be >= 1 (got %d)\n", runs);
    std::exit(2);
  }
}

}  // namespace

std::vector<ExperimentSpec> SchedulerSet(const ExperimentSpec& spec,
                                         const std::vector<SchedKind>& kinds) {
  std::vector<ExperimentSpec> out;
  out.reserve(kinds.size());
  for (SchedKind kind : kinds) {
    ExperimentSpec s = spec;
    s.sched = kind;
    AppendTag(s, std::string(SchedId(kind)), /*to_group=*/true);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ExperimentSpec> SchedulerSet(const std::vector<ExperimentSpec>& specs,
                                         const std::vector<SchedKind>& kinds) {
  std::vector<ExperimentSpec> out;
  out.reserve(specs.size() * kinds.size());
  for (const ExperimentSpec& spec : specs) {
    for (ExperimentSpec& s : SchedulerSet(spec, kinds)) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<ExperimentSpec> AllSchedulers(const ExperimentSpec& spec) {
  return SchedulerSet(spec, SchedulerRegistry::Instance().AllKinds());
}

std::vector<ExperimentSpec> AllSchedulers(const std::vector<ExperimentSpec>& specs) {
  return SchedulerSet(specs, SchedulerRegistry::Instance().AllKinds());
}

std::vector<ExperimentSpec> BothSchedulers(const ExperimentSpec& spec) {
  return SchedulerSet(spec, {SchedKind::kCfs, SchedKind::kUle});
}

std::vector<ExperimentSpec> BothSchedulers(const std::vector<ExperimentSpec>& specs) {
  return SchedulerSet(specs, {SchedKind::kCfs, SchedKind::kUle});
}

std::vector<ExperimentSpec> SeedSweep(const ExperimentSpec& spec, int runs) {
  ValidateSweepRuns(runs);
  std::vector<ExperimentSpec> out;
  out.reserve(static_cast<size_t>(runs));
  for (int k = 0; k < runs; ++k) {
    ExperimentSpec s = spec;
    s.machine.seed = spec.machine.seed + static_cast<uint64_t>(k);
    AppendTag(s, "s" + std::to_string(k), /*to_group=*/false);
    // Replicas aggregate under the pre-sweep identity.
    if (s.group.empty()) {
      s.group = spec.label;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ExperimentSpec> SeedSweep(const std::vector<ExperimentSpec>& specs, int runs) {
  ValidateSweepRuns(runs);
  std::vector<ExperimentSpec> out;
  out.reserve(specs.size() * static_cast<size_t>(runs));
  for (const ExperimentSpec& spec : specs) {
    for (ExperimentSpec& s : SeedSweep(spec, runs)) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

std::vector<ExperimentSpec> WithVariants(const ExperimentSpec& spec,
                                         const std::vector<SpecVariant>& variants) {
  std::vector<ExperimentSpec> out;
  out.reserve(variants.size());
  for (const SpecVariant& v : variants) {
    ExperimentSpec s = spec;
    if (v.apply) {
      v.apply(s);
    }
    AppendTag(s, v.name, /*to_group=*/true);
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<ExperimentSpec> WithVariants(const std::vector<ExperimentSpec>& specs,
                                         const std::vector<SpecVariant>& variants) {
  std::vector<ExperimentSpec> out;
  out.reserve(specs.size() * variants.size());
  for (const ExperimentSpec& spec : specs) {
    for (ExperimentSpec& s : WithVariants(spec, variants)) {
      out.push_back(std::move(s));
    }
  }
  return out;
}

CampaignRunner::CampaignRunner(int jobs) {
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
    if (jobs <= 0) {
      jobs = 1;
    }
  }
  jobs_ = jobs;
}

std::vector<RunResult> CampaignRunner::Run(const std::vector<ExperimentSpec>& specs) const {
  std::vector<RunResult> results(specs.size());
  const int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs_), specs.size()));
  if (workers <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      results[i] = ExecuteSpec(specs[i]);
    }
    return results;
  }
  // Each ExperimentRun is self-contained (own engine/machine/workload, no
  // globals), so workers only share the claim index and disjoint result
  // slots.
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&specs, &results, &next] {
      for (size_t i; (i = next.fetch_add(1, std::memory_order_relaxed)) < specs.size();) {
        results[i] = ExecuteSpec(specs[i]);
      }
    });
  }
  for (std::thread& t : pool) {
    t.join();
  }
  return results;
}

AggregateStat AggregateStat::Of(const std::vector<double>& values) {
  AggregateStat s;
  s.n = static_cast<int>(values.size());
  if (s.n == 0) {
    return s;
  }
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / s.n;
  if (s.n > 1) {
    double sq = 0;
    for (double v : values) {
      sq += (v - s.mean) * (v - s.mean);
    }
    s.stddev = std::sqrt(sq / (s.n - 1));
  }
  return s;
}

std::string AggregateStat::Format(int decimals) const {
  char buf[64];
  if (n <= 1) {
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, mean);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", decimals, mean, decimals, stddev);
  }
  return buf;
}

AggregateStat ResultGroup::Aggregate(
    const std::function<double(const RunResult&)>& extract) const {
  std::vector<double> values;
  values.reserve(runs.size());
  for (const RunResult* r : runs) {
    values.push_back(extract(*r));
  }
  return AggregateStat::Of(values);
}

AggregateStat ResultGroup::AggregateAppMetric(size_t app_index) const {
  return Aggregate([app_index](const RunResult& r) {
    return app_index < r.apps.size() ? r.apps[app_index].metric : 0.0;
  });
}

std::vector<ResultGroup> GroupResults(const std::vector<RunResult>& results) {
  std::vector<ResultGroup> groups;
  for (const RunResult& r : results) {
    ResultGroup* g = nullptr;
    for (ResultGroup& existing : groups) {
      if (existing.group == r.group) {
        g = &existing;
        break;
      }
    }
    if (g == nullptr) {
      groups.push_back({r.group, {}});
      g = &groups.back();
    }
    g->runs.push_back(&r);
  }
  return groups;
}

}  // namespace schedbattle
