// ExperimentRun: engine + machine + workload with correct lifetimes, plus
// metric extraction.
#ifndef SRC_CORE_RUNNER_H_
#define SRC_CORE_RUNNER_H_

#include <memory>

#include "src/apps/archetypes.h"
#include "src/core/experiment.h"
#include "src/workload/workload.h"

namespace schedbattle {

class ExperimentRun {
 public:
  explicit ExperimentRun(ExperimentConfig config);

  SimEngine& engine() { return engine_; }
  Machine& machine() { return *machine_; }
  Workload& workload() { return *workload_; }
  const ExperimentConfig& config() const { return config_; }

  Application* Add(std::unique_ptr<Application> app, SimTime start_at = 0) {
    return workload_->Add(std::move(app), start_at);
  }

  // Runs to completion (or the configured horizon); returns the finish time.
  SimTime Run();

  // The paper's performance metric for an application: ops/s for databases
  // and NAS, 1/execution-time otherwise (Section 5.3).
  double MetricFor(const Application& app, MetricKind kind) const;

 private:
  ExperimentConfig config_;
  SimEngine engine_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Workload> workload_;
};

}  // namespace schedbattle

#endif  // SRC_CORE_RUNNER_H_
