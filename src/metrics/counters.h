// Pretty-printing of machine counters and scheduler overhead accounting.
#ifndef SRC_METRICS_COUNTERS_H_
#define SRC_METRICS_COUNTERS_H_

#include <string>

#include "src/sched/machine.h"

namespace schedbattle {

// Multi-line human-readable dump of the machine's counters (context
// switches, preemptions, migrations, pickcpu scans, overhead fractions).
std::string FormatCounters(const Machine& machine);

}  // namespace schedbattle

#endif  // SRC_METRICS_COUNTERS_H_
