// Time series recording and periodic sampling.
#ifndef SRC_METRICS_TIMESERIES_H_
#define SRC_METRICS_TIMESERIES_H_

#include <functional>
#include <string>
#include <vector>

#include "src/sched/machine.h"
#include "src/sim/time.h"

namespace schedbattle {

struct TimePoint {
  SimTime t;
  double value;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string label = "") : label_(std::move(label)) {}

  void Push(SimTime t, double value) { points_.push_back({t, value}); }
  const std::vector<TimePoint>& points() const { return points_; }
  const std::string& label() const { return label_; }
  bool empty() const { return points_.empty(); }

  // Last value at or before `t` (0.0 if none).
  double ValueAt(SimTime t) const;

 private:
  std::string label_;
  std::vector<TimePoint> points_;
};

// Runs `fn` every `period` of simulated time until the engine stops.
class PeriodicSampler {
 public:
  PeriodicSampler(Machine* machine, SimDuration period, std::function<void(SimTime)> fn);
  ~PeriodicSampler();

  void Stop();

 private:
  void Arm();

  Machine* machine_;
  SimDuration period_;
  std::function<void(SimTime)> fn_;
  EventHandle event_;
  bool stopped_ = false;
};

}  // namespace schedbattle

#endif  // SRC_METRICS_TIMESERIES_H_
