// SchedTrace: records scheduling events (dispatch, deschedule, wake,
// migrate, fork) through the MachineObserver interface and exports them as
//   - a human-readable text log, and
//   - Chrome trace_event JSON (open in chrome://tracing or Perfetto), with
//     one lane per core showing which thread ran when, counter tracks for
//     per-core runqueue depth and per-NUMA-node runnable count, and flow
//     arrows linking each wakeup to the dispatch that serviced it.
#ifndef SRC_METRICS_TRACE_H_
#define SRC_METRICS_TRACE_H_

#include <string>
#include <vector>

#include "src/sched/machine.h"

namespace schedbattle {

struct TraceEvent {
  enum class Kind : uint8_t { kDispatch, kDeschedule, kWake, kMigrate, kFork };
  Kind kind;
  SimTime t;
  ThreadId thread;
  CoreId core;       // dispatch/deschedule/wake/fork: the core; migrate: destination
  CoreId from_core;  // migrate only
  char reason;       // deschedule only: P/B/X/Y
  // Counter samples taken when the event was recorded (Perfetto "C" tracks).
  int rq_depth = -1;       // runnable count of `core`
  int node = -1;           // NUMA node of `core`
  int node_runnable = -1;  // summed runnable count of that node's cores
};

// One tickless-accounting sample, taken whenever the machine's tick-elision
// counters changed between two recorded events. Exported as Perfetto "C"
// counter tracks (ticks fired / ticks elided / batch catch-ups).
struct TickElisionSample {
  SimTime t = 0;
  uint64_t ticks_fired = 0;
  uint64_t ticks_elided = 0;
  uint64_t batch_updates = 0;
};

class SchedTrace : public MachineObserver {
 public:
  // Attaches to the machine's observer bus. `capacity` bounds memory: when
  // full, the oldest events are dropped (ring buffer).
  explicit SchedTrace(Machine* machine, size_t capacity = 1 << 20);
  ~SchedTrace() override;

  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override;
  void OnDeschedule(SimTime now, CoreId core, const SimThread& thread, char reason) override;
  void OnWake(SimTime now, const SimThread& thread, CoreId target) override;
  void OnMigrate(SimTime now, const SimThread& thread, CoreId from, CoreId to) override;
  void OnFork(SimTime now, const SimThread& thread, CoreId target) override;

  // Stops recording (detaches from the machine's observer bus).
  void Detach();

  size_t size() const { return events_.size(); }
  size_t dropped() const { return dropped_; }
  // Events in chronological order (ring-buffer order resolved).
  std::vector<TraceEvent> Events() const;
  // Tick-elision counter samples, in chronological order (bounded by the
  // event capacity; sampling stops when full).
  const std::vector<TickElisionSample>& tick_elision_samples() const { return tick_samples_; }

  // One line per event: "12.345678 c03 DISPATCH  tid=7 name".
  std::string ToText(size_t max_events = 10000) const;

  // Chrome trace_event JSON: complete ("X") slices per dispatch interval on
  // per-core tracks, instant events for wakes/migrations, "C" counter tracks
  // (per-core runqueue depth, per-node runnable count) and "s"/"f" flow
  // events linking each wake to the dispatch that serviced it.
  std::string ToChromeJson() const;

 private:
  void Push(TraceEvent e);
  std::string NameOf(ThreadId id) const;

  Machine* machine_;
  size_t capacity_;
  std::vector<TickElisionSample> tick_samples_;
  std::vector<TraceEvent> events_;  // ring buffer
  size_t head_ = 0;                 // next write position once wrapped
  bool wrapped_ = false;
  size_t dropped_ = 0;
  bool attached_ = false;
};

}  // namespace schedbattle

#endif  // SRC_METRICS_TRACE_H_
