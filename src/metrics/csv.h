// Minimal CSV writing for experiment outputs.
#ifndef SRC_METRICS_CSV_H_
#define SRC_METRICS_CSV_H_

#include <string>
#include <vector>

#include "src/metrics/timeseries.h"

namespace schedbattle {

// Merges several time series into "t,series1,series2,..." rows (step-hold
// interpolation at the union of sample times).
std::string SeriesToCsv(const std::vector<const TimeSeries*>& series);

// Writes `content` to `path`; returns false on I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace schedbattle

#endif  // SRC_METRICS_CSV_H_
