// Threads-per-core heatmap (the paper's Figures 6 and 7).
#ifndef SRC_METRICS_HEATMAP_H_
#define SRC_METRICS_HEATMAP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/metrics/timeseries.h"
#include "src/sched/machine.h"

namespace schedbattle {

// Samples the scheduler's runnable count per core every `period` and renders
// the result as text/CSV.
class CoreLoadHeatmap {
 public:
  CoreLoadHeatmap(Machine* machine, SimDuration period);

  // Stop sampling (e.g. when the workload finished).
  void Stop() { sampler_->Stop(); }

  int num_samples() const { return static_cast<int>(samples_.size()); }
  // samples()[i] = (time, per-core runnable counts).
  const std::vector<std::pair<SimTime, std::vector<int>>>& samples() const { return samples_; }

  // First time at which max-min <= tolerance across cores held (and kept
  // holding until the end of sampling); -1 if never.
  SimTime TimeToBalance(int tolerance) const;

  // Per-core counts at the sample nearest to `t`.
  std::vector<int> CountsAt(SimTime t) const;

  // Compact ASCII rendering: one row per core, one column per sample bucket.
  std::string RenderAscii(int max_cols = 100) const;

  // CSV: time,core0,core1,...
  std::string ToCsv() const;

 private:
  Machine* machine_;
  std::vector<std::pair<SimTime, std::vector<int>>> samples_;
  std::unique_ptr<PeriodicSampler> sampler_;
};

}  // namespace schedbattle

#endif  // SRC_METRICS_HEATMAP_H_
