#include "src/metrics/slo.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/metrics/schedstats.h"

namespace schedbattle {

// ---- WindowedTailSeries ----

void WindowedTailSeries::Record(SimTime t, SimDuration value) {
  const int64_t idx = t / window_;
  // Fast path: simulated time is monotone in the common case, so samples land
  // in the newest window (or open the next one).
  if (indices_.empty() || indices_.back() < idx) {
    indices_.push_back(idx);
    histograms_.emplace_back();
    histograms_.back().Record(value);
    return;
  }
  if (indices_.back() == idx) {
    histograms_.back().Record(value);
    return;
  }
  // Out-of-order sample (shard slabs folding at a window barrier can replay
  // boundary records behind the newest window): route it into the right
  // window, inserting one if the series skipped it, keeping indices_ sorted.
  const auto it = std::lower_bound(indices_.begin(), indices_.end(), idx);
  const size_t pos = static_cast<size_t>(it - indices_.begin());
  if (it == indices_.end() || *it != idx) {
    indices_.insert(it, idx);
    histograms_.emplace(histograms_.begin() + static_cast<ptrdiff_t>(pos));
  }
  histograms_[pos].Record(value);
}

std::vector<TailWindow> WindowedTailSeries::Rows() const {
  std::vector<TailWindow> rows;
  rows.reserve(indices_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    TailWindow w;
    w.start = indices_[i] * window_;
    w.count = histograms_[i].count();
    w.p50 = histograms_[i].Percentile(50);
    w.p99 = histograms_[i].Percentile(99);
    w.p999 = histograms_[i].Percentile(99.9);
    rows.push_back(w);
  }
  return rows;
}

std::string WindowedTailSeries::ToJson() const {
  std::ostringstream os;
  os << "[";
  const std::vector<TailWindow> rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "{\"start_ns\":" << rows[i].start << ",\"count\":" << rows[i].count
       << ",\"p50_ns\":" << rows[i].p50 << ",\"p99_ns\":" << rows[i].p99
       << ",\"p999_ns\":" << rows[i].p999 << "}";
  }
  os << "]";
  return os.str();
}

// ---- SLO objectives ----

const char* SloMetricName(SloMetric metric) {
  switch (metric) {
    case SloMetric::kWakeupP50:
      return "wakeup_p50";
    case SloMetric::kWakeupP90:
      return "wakeup_p90";
    case SloMetric::kWakeupP99:
      return "wakeup_p99";
    case SloMetric::kWakeupP999:
      return "wakeup_p999";
    case SloMetric::kWakeupMax:
      return "wakeup_max";
    case SloMetric::kWakeupMean:
      return "wakeup_mean";
    case SloMetric::kForkP99:
      return "fork_p99";
    case SloMetric::kForkP999:
      return "fork_p999";
    case SloMetric::kRequestP50:
      return "request_p50";
    case SloMetric::kRequestP99:
      return "request_p99";
    case SloMetric::kRequestP999:
      return "request_p999";
    case SloMetric::kRequestMax:
      return "request_max";
    case SloMetric::kRequestMean:
      return "request_mean";
  }
  return "unknown";
}

bool IsRequestMetric(SloMetric metric) {
  switch (metric) {
    case SloMetric::kRequestP50:
    case SloMetric::kRequestP99:
    case SloMetric::kRequestP999:
    case SloMetric::kRequestMax:
    case SloMetric::kRequestMean:
      return true;
    default:
      return false;
  }
}

std::string SloObjective::Describe() const {
  char buf[64];
  const double ms = static_cast<double>(threshold) / 1e6;
  if (ms >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%s < %gms", SloMetricName(metric), ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%s < %gus", SloMetricName(metric),
                  static_cast<double>(threshold) / 1e3);
  }
  return buf;
}

bool ParseSloObjective(const std::string& text, SloObjective* out, std::string* error) {
  const size_t lt = text.find('<');
  if (lt == std::string::npos) {
    if (error != nullptr) {
      *error = "expected '<' in SLO objective '" + text + "' (e.g. wakeup_p99<5ms)";
    }
    return false;
  }
  const std::string metric = text.substr(0, lt);
  const std::string value = text.substr(lt + 1);
  static const struct {
    const char* name;
    SloMetric metric;
  } kMetrics[] = {
      {"wakeup_p50", SloMetric::kWakeupP50},   {"wakeup_p90", SloMetric::kWakeupP90},
      {"wakeup_p99", SloMetric::kWakeupP99},   {"wakeup_p999", SloMetric::kWakeupP999},
      {"wakeup_max", SloMetric::kWakeupMax},   {"wakeup_mean", SloMetric::kWakeupMean},
      {"fork_p99", SloMetric::kForkP99},       {"fork_p999", SloMetric::kForkP999},
      {"request_p50", SloMetric::kRequestP50}, {"request_p99", SloMetric::kRequestP99},
      {"request_p999", SloMetric::kRequestP999}, {"request_max", SloMetric::kRequestMax},
      {"request_mean", SloMetric::kRequestMean},
  };
  bool found = false;
  for (const auto& m : kMetrics) {
    if (metric == m.name) {
      out->metric = m.metric;
      found = true;
      break;
    }
  }
  if (!found) {
    if (error != nullptr) {
      *error = "unknown SLO metric '" + metric + "'";
    }
    return false;
  }
  char* end = nullptr;
  const double num = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || num < 0) {
    if (error != nullptr) {
      *error = "bad SLO threshold '" + value + "'";
    }
    return false;
  }
  const std::string unit = end;
  double scale;
  if (unit == "ns" || unit.empty()) {
    scale = 1;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    if (error != nullptr) {
      *error = "bad SLO unit '" + unit + "' (want ns/us/ms/s)";
    }
    return false;
  }
  out->threshold = static_cast<SimDuration>(num * scale);
  out->name = text.substr(0, lt);
  return true;
}

std::vector<SloVerdict> EvaluateSlos(const std::vector<SloObjective>& objectives,
                                     const SchedStats& stats,
                                     const LatencyHistogram* request_latency) {
  std::vector<SloVerdict> verdicts;
  verdicts.reserve(objectives.size());
  for (const SloObjective& obj : objectives) {
    SloVerdict v;
    v.objective = obj;
    if (v.objective.name.empty()) {
      v.objective.name = SloMetricName(obj.metric);
    }
    const LatencyHistogram& wake = stats.wakeup_latency();
    const LatencyHistogram& fork = stats.fork_latency();
    if (IsRequestMetric(obj.metric) && request_latency == nullptr) {
      // No request histogram in this run: nothing to measure, vacuous pass.
      v.observed = 0;
      v.pass = true;
      verdicts.push_back(std::move(v));
      continue;
    }
    switch (obj.metric) {
      case SloMetric::kWakeupP50:
        v.observed = wake.Percentile(50);
        break;
      case SloMetric::kWakeupP90:
        v.observed = wake.Percentile(90);
        break;
      case SloMetric::kWakeupP99:
        v.observed = wake.Percentile(99);
        break;
      case SloMetric::kWakeupP999:
        v.observed = wake.Percentile(99.9);
        break;
      case SloMetric::kWakeupMax:
        v.observed = wake.max();
        break;
      case SloMetric::kWakeupMean:
        v.observed = static_cast<SimDuration>(wake.Mean());
        break;
      case SloMetric::kForkP99:
        v.observed = fork.Percentile(99);
        break;
      case SloMetric::kForkP999:
        v.observed = fork.Percentile(99.9);
        break;
      case SloMetric::kRequestP50:
        v.observed = request_latency->Percentile(50);
        break;
      case SloMetric::kRequestP99:
        v.observed = request_latency->Percentile(99);
        break;
      case SloMetric::kRequestP999:
        v.observed = request_latency->Percentile(99.9);
        break;
      case SloMetric::kRequestMax:
        v.observed = request_latency->max();
        break;
      case SloMetric::kRequestMean:
        v.observed = static_cast<SimDuration>(request_latency->Mean());
        break;
    }
    v.pass = v.observed < obj.threshold;
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

bool AllSlosPass(const std::vector<SloVerdict>& verdicts) {
  for (const SloVerdict& v : verdicts) {
    if (!v.pass) {
      return false;
    }
  }
  return true;
}

std::string SloVerdictsJson(const std::vector<SloVerdict>& verdicts) {
  std::ostringstream os;
  os << "{\"pass\":" << (AllSlosPass(verdicts) ? "true" : "false") << ",\"objectives\":[";
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const SloVerdict& v = verdicts[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"name\":\"" << v.objective.name << "\",\"metric\":\""
       << SloMetricName(v.objective.metric) << "\",\"threshold_ns\":" << v.objective.threshold
       << ",\"observed_ns\":" << v.observed << ",\"pass\":" << (v.pass ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace schedbattle
