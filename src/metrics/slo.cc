#include "src/metrics/slo.h"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/metrics/schedstats.h"

namespace schedbattle {

// ---- LogHistogram ----

int LogHistogram::BucketOf(SimDuration value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);  // exact buckets below one octave of sub-buckets
  }
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - 5;  // log2(kSubBuckets)
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return (msb - 4) * kSubBuckets + sub;
}

SimDuration LogHistogram::BucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) {
    return bucket;
  }
  const int msb = bucket / kSubBuckets + 4;
  const int sub = bucket % kSubBuckets;
  const int shift = msb - 5;
  return ((static_cast<int64_t>(1) << 5 | sub)) << shift;
}

void LogHistogram::Record(SimDuration value) {
  if (buckets_.empty()) {
    buckets_.assign(kNumBuckets, 0);
  }
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketOf(value)];
}

double LogHistogram::Mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

SimDuration LogHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (!(p > 0.0)) {
    return min();
  }
  if (p >= 100.0) {
    return max();
  }
  // Nearest-rank over buckets: find the bucket holding the ceil(p/100*n)-th
  // sample, report its lower bound (clamped into [min, max]).
  const double frank = p / 100.0 * static_cast<double>(count_);
  uint64_t rank = static_cast<uint64_t>(frank);
  if (static_cast<double>(rank) != frank) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      const SimDuration lo = BucketLowerBound(b);
      if (lo < min_) {
        return min_;
      }
      return lo < max_ ? lo : max_;
    }
  }
  return max_;
}

void LogHistogram::Clear() {
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
  buckets_.clear();
}

// ---- WindowedTailSeries ----

void WindowedTailSeries::Record(SimTime t, SimDuration value) {
  const int64_t idx = t / window_;
  // Simulated time is monotone, so the window index only grows; appending
  // keeps indices_ sorted.
  if (indices_.empty() || indices_.back() != idx) {
    indices_.push_back(idx);
    histograms_.emplace_back();
  }
  histograms_.back().Record(value);
}

std::vector<TailWindow> WindowedTailSeries::Rows() const {
  std::vector<TailWindow> rows;
  rows.reserve(indices_.size());
  for (size_t i = 0; i < indices_.size(); ++i) {
    TailWindow w;
    w.start = indices_[i] * window_;
    w.count = histograms_[i].count();
    w.p50 = histograms_[i].Percentile(50);
    w.p99 = histograms_[i].Percentile(99);
    w.p999 = histograms_[i].Percentile(99.9);
    rows.push_back(w);
  }
  return rows;
}

std::string WindowedTailSeries::ToJson() const {
  std::ostringstream os;
  os << "[";
  const std::vector<TailWindow> rows = Rows();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "{\"start_ns\":" << rows[i].start << ",\"count\":" << rows[i].count
       << ",\"p50_ns\":" << rows[i].p50 << ",\"p99_ns\":" << rows[i].p99
       << ",\"p999_ns\":" << rows[i].p999 << "}";
  }
  os << "]";
  return os.str();
}

// ---- SLO objectives ----

const char* SloMetricName(SloMetric metric) {
  switch (metric) {
    case SloMetric::kWakeupP50:
      return "wakeup_p50";
    case SloMetric::kWakeupP90:
      return "wakeup_p90";
    case SloMetric::kWakeupP99:
      return "wakeup_p99";
    case SloMetric::kWakeupP999:
      return "wakeup_p999";
    case SloMetric::kWakeupMax:
      return "wakeup_max";
    case SloMetric::kWakeupMean:
      return "wakeup_mean";
    case SloMetric::kForkP99:
      return "fork_p99";
    case SloMetric::kForkP999:
      return "fork_p999";
  }
  return "unknown";
}

std::string SloObjective::Describe() const {
  char buf[64];
  const double ms = static_cast<double>(threshold) / 1e6;
  if (ms >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%s < %gms", SloMetricName(metric), ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%s < %gus", SloMetricName(metric),
                  static_cast<double>(threshold) / 1e3);
  }
  return buf;
}

bool ParseSloObjective(const std::string& text, SloObjective* out, std::string* error) {
  const size_t lt = text.find('<');
  if (lt == std::string::npos) {
    if (error != nullptr) {
      *error = "expected '<' in SLO objective '" + text + "' (e.g. wakeup_p99<5ms)";
    }
    return false;
  }
  const std::string metric = text.substr(0, lt);
  const std::string value = text.substr(lt + 1);
  static const struct {
    const char* name;
    SloMetric metric;
  } kMetrics[] = {
      {"wakeup_p50", SloMetric::kWakeupP50},   {"wakeup_p90", SloMetric::kWakeupP90},
      {"wakeup_p99", SloMetric::kWakeupP99},   {"wakeup_p999", SloMetric::kWakeupP999},
      {"wakeup_max", SloMetric::kWakeupMax},   {"wakeup_mean", SloMetric::kWakeupMean},
      {"fork_p99", SloMetric::kForkP99},       {"fork_p999", SloMetric::kForkP999},
  };
  bool found = false;
  for (const auto& m : kMetrics) {
    if (metric == m.name) {
      out->metric = m.metric;
      found = true;
      break;
    }
  }
  if (!found) {
    if (error != nullptr) {
      *error = "unknown SLO metric '" + metric + "'";
    }
    return false;
  }
  char* end = nullptr;
  const double num = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || num < 0) {
    if (error != nullptr) {
      *error = "bad SLO threshold '" + value + "'";
    }
    return false;
  }
  const std::string unit = end;
  double scale;
  if (unit == "ns" || unit.empty()) {
    scale = 1;
  } else if (unit == "us") {
    scale = 1e3;
  } else if (unit == "ms") {
    scale = 1e6;
  } else if (unit == "s") {
    scale = 1e9;
  } else {
    if (error != nullptr) {
      *error = "bad SLO unit '" + unit + "' (want ns/us/ms/s)";
    }
    return false;
  }
  out->threshold = static_cast<SimDuration>(num * scale);
  out->name = text.substr(0, lt);
  return true;
}

std::vector<SloVerdict> EvaluateSlos(const std::vector<SloObjective>& objectives,
                                     const SchedStats& stats) {
  std::vector<SloVerdict> verdicts;
  verdicts.reserve(objectives.size());
  for (const SloObjective& obj : objectives) {
    SloVerdict v;
    v.objective = obj;
    if (v.objective.name.empty()) {
      v.objective.name = SloMetricName(obj.metric);
    }
    const LatencyHistogram& wake = stats.wakeup_latency();
    const LatencyHistogram& fork = stats.fork_latency();
    switch (obj.metric) {
      case SloMetric::kWakeupP50:
        v.observed = wake.Percentile(50);
        break;
      case SloMetric::kWakeupP90:
        v.observed = wake.Percentile(90);
        break;
      case SloMetric::kWakeupP99:
        v.observed = wake.Percentile(99);
        break;
      case SloMetric::kWakeupP999:
        v.observed = wake.Percentile(99.9);
        break;
      case SloMetric::kWakeupMax:
        v.observed = wake.max();
        break;
      case SloMetric::kWakeupMean:
        v.observed = static_cast<SimDuration>(wake.Mean());
        break;
      case SloMetric::kForkP99:
        v.observed = fork.Percentile(99);
        break;
      case SloMetric::kForkP999:
        v.observed = fork.Percentile(99.9);
        break;
    }
    v.pass = v.observed < obj.threshold;
    verdicts.push_back(std::move(v));
  }
  return verdicts;
}

bool AllSlosPass(const std::vector<SloVerdict>& verdicts) {
  for (const SloVerdict& v : verdicts) {
    if (!v.pass) {
      return false;
    }
  }
  return true;
}

std::string SloVerdictsJson(const std::vector<SloVerdict>& verdicts) {
  std::ostringstream os;
  os << "{\"pass\":" << (AllSlosPass(verdicts) ? "true" : "false") << ",\"objectives\":[";
  for (size_t i = 0; i < verdicts.size(); ++i) {
    const SloVerdict& v = verdicts[i];
    if (i > 0) {
      os << ",";
    }
    os << "{\"name\":\"" << v.objective.name << "\",\"metric\":\""
       << SloMetricName(v.objective.metric) << "\",\"threshold_ns\":" << v.objective.threshold
       << ",\"observed_ns\":" << v.observed << ",\"pass\":" << (v.pass ? "true" : "false") << "}";
  }
  os << "]}";
  return os.str();
}

}  // namespace schedbattle
