#include "src/metrics/csv.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

namespace schedbattle {

std::string SeriesToCsv(const std::vector<const TimeSeries*>& series) {
  std::ostringstream os;
  os << "time_s";
  for (const TimeSeries* s : series) {
    os << "," << s->label();
  }
  os << "\n";
  std::set<SimTime> times;
  for (const TimeSeries* s : series) {
    for (const TimePoint& p : s->points()) {
      times.insert(p.t);
    }
  }
  for (SimTime t : times) {
    os << ToSeconds(t);
    for (const TimeSeries* s : series) {
      os << "," << s->ValueAt(t);
    }
    os << "\n";
  }
  return os.str();
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << content;
  return static_cast<bool>(out);
}

}  // namespace schedbattle
