// Latency histogram with exact percentiles (samples are retained; simulation
// volumes are small enough that exactness beats bucketing).
#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace schedbattle {

class LatencyHistogram {
 public:
  void Record(SimDuration value);

  uint64_t count() const { return samples_.size(); }
  SimDuration min() const;
  SimDuration max() const;
  double Mean() const;
  SimDuration Sum() const;
  // Exact nearest-rank order statistic: the smallest sample s such that at
  // least p% of samples are <= s (idx = ceil(p/100 * n) - 1). p is clamped
  // to [0, 100]; NaN behaves as 0. Empty histograms return 0 for every p.
  SimDuration Percentile(double p) const;

  void Clear();

 private:
  void SortIfNeeded() const;

  mutable std::vector<SimDuration> samples_;
  mutable bool sorted_ = true;
};

}  // namespace schedbattle

#endif  // SRC_METRICS_HISTOGRAM_H_
