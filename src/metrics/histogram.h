// Latency histograms.
//
// LatencyHistogram is the per-operation / per-event histogram used across the
// simulator. It is exact (retained samples, nearest-rank order statistics) up
// to kExactSampleCap samples; past the cap it folds into log-bucketed storage
// so memory and read cost stay bounded at serving scale (open-loop arrival
// scenarios record millions of request latencies). count/min/max/Sum/Mean are
// exact at any volume; percentiles beyond the cap carry the LogHistogram
// error bound (one sub-bucket, <= 1/32 ~ 3.2% of the value, never
// over-reporting).
//
// LogHistogram is the fixed-memory building block: 32 sub-buckets per power
// of two over the whole non-negative int64 range.
#ifndef SRC_METRICS_HISTOGRAM_H_
#define SRC_METRICS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace schedbattle {

// Log-bucketed latency histogram: 32 sub-buckets per power of two, giving a
// worst-case quantile error of ~3% of the value while holding memory at a
// fixed ~2000 buckets regardless of sample count. Percentile() returns the
// lower bound of the selected bucket (deterministic, never over-reports).
class LogHistogram {
 public:
  void Record(SimDuration value);
  uint64_t count() const { return count_; }
  SimDuration min() const { return count_ > 0 ? min_ : 0; }
  SimDuration max() const { return count_ > 0 ? max_ : 0; }
  double Mean() const;
  SimDuration Percentile(double p) const;
  void Clear();
  // Sub-buckets per octave; exposed for the resolution test.
  static constexpr int kSubBuckets = 32;

 private:
  static int BucketOf(SimDuration value);
  static SimDuration BucketLowerBound(int bucket);
  // 64 octaves x 32 sub-buckets covers the whole non-negative int64 range.
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  uint64_t count_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
  double sum_ = 0;
  std::vector<uint32_t> buckets_;  // allocated lazily on first Record
};

class LatencyHistogram {
 public:
  // Exact-mode capacity: up to this many samples percentiles are exact
  // nearest-rank order statistics; recording past it spills every retained
  // sample into log buckets and frees the sample vector.
  static constexpr uint64_t kExactSampleCap = 8192;

  void Record(SimDuration value);

  uint64_t count() const { return count_; }
  SimDuration min() const { return count_ > 0 ? min_ : 0; }
  SimDuration max() const { return count_ > 0 ? max_ : 0; }
  double Mean() const;
  SimDuration Sum() const { return sum_; }
  // Exact nearest-rank order statistic while in exact mode: the smallest
  // sample s such that at least p% of samples are <= s
  // (idx = ceil(p/100 * n) - 1). p is clamped to [0, 100]; NaN behaves as 0.
  // Empty histograms return 0 for every p. Past kExactSampleCap the log
  // buckets answer instead (bucket lower bound clamped into [min, max]).
  SimDuration Percentile(double p) const;

  // True while percentiles are still exact (count <= kExactSampleCap).
  bool exact() const { return spill_.count() == 0; }

  void Clear();

 private:
  void SortIfNeeded() const;

  uint64_t count_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
  SimDuration sum_ = 0;
  mutable std::vector<SimDuration> samples_;  // exact mode only
  mutable bool sorted_ = true;
  LogHistogram spill_;  // takes over once count_ exceeds kExactSampleCap
};

}  // namespace schedbattle

#endif  // SRC_METRICS_HISTOGRAM_H_
