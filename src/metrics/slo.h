// SLO engine: windowed tail-percentile time series and declarative latency
// objectives with pass/fail verdicts.
//
// The ROADMAP's serving-fleet north star is a tail-latency story: which
// scheduler holds p99/p999 under load. This module supplies the pieces: a
// WindowedTailSeries that tracks how the tail evolves over simulated time
// (built on the fixed-memory LogHistogram from src/metrics/histogram.h), and
// SloObjective/SloVerdict — objectives declared on an ExperimentSpec
// ("wakeup_p99 < 5ms", "request_p999 < 100ms"), evaluated against the run's
// latency histograms, with verdicts landing in the RunResult and the
// schedstats JSON.
//
// Two metric families:
//   wakeup_* / fork_*  — scheduler-pipeline latencies from SchedStats.
//   request_*          — end-to-end per-operation latency (arrival/submit to
//                        completion) of the spec's primary application, the
//                        serving-scenario objective. Evaluated against the
//                        first app's AppStats latency histogram.
#ifndef SRC_METRICS_SLO_H_
#define SRC_METRICS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/sim/time.h"

namespace schedbattle {

class SchedStats;

// Tail percentiles of one fixed window of simulated time.
struct TailWindow {
  SimTime start = 0;  // window start (window index * period)
  uint64_t count = 0;
  SimDuration p50 = 0;
  SimDuration p99 = 0;
  SimDuration p999 = 0;
};

// Windowed time series of tail percentiles: samples are routed into fixed
// simulated-time windows (LogHistogram per window); Rows() reports how the
// tail evolved over the run. Empty windows are skipped (not zero-filled).
// Records need not arrive in time order: when per-shard slabs fold at window
// barriers, boundary samples can land behind the newest window — Record
// routes them into the right (possibly interior) window and keeps the series
// sorted by window index.
class WindowedTailSeries {
 public:
  explicit WindowedTailSeries(SimDuration window = Milliseconds(100)) : window_(window) {}
  void Record(SimTime t, SimDuration value);
  SimDuration window() const { return window_; }
  size_t num_windows() const { return histograms_.size(); }
  std::vector<TailWindow> Rows() const;
  // Deterministic JSON array: [{"start_ns":..,"count":..,"p50_ns":..,
  // "p99_ns":..,"p999_ns":..},...].
  std::string ToJson() const;

 private:
  SimDuration window_;
  std::vector<int64_t> indices_;  // sorted window indices, parallel to histograms_
  std::vector<LogHistogram> histograms_;
};

// The measurable quantities an objective can constrain.
enum class SloMetric : uint8_t {
  kWakeupP50,
  kWakeupP90,
  kWakeupP99,
  kWakeupP999,
  kWakeupMax,
  kWakeupMean,
  kForkP99,
  kForkP999,
  kRequestP50,
  kRequestP99,
  kRequestP999,
  kRequestMax,
  kRequestMean,
};
const char* SloMetricName(SloMetric metric);
// True for the request_* family (evaluated against app latency, not
// SchedStats).
bool IsRequestMetric(SloMetric metric);

// One declarative objective: metric < threshold.
struct SloObjective {
  SloMetric metric = SloMetric::kWakeupP99;
  SimDuration threshold = 0;
  std::string name;  // optional label; defaults to SloMetricName

  std::string Describe() const;  // "wakeup_p99 < 5ms"
};

// Parses "wakeup_p99<5ms" / "fork_p999<1.5s" / "request_p99<100ms" (also
// accepts a bare nanosecond count). Returns false with *error set on
// malformed input.
bool ParseSloObjective(const std::string& text, SloObjective* out, std::string* error);

struct SloVerdict {
  SloObjective objective;
  SimDuration observed = 0;
  bool pass = false;
};

// Evaluates objectives against the run's latency histograms. wakeup_*/fork_*
// metrics read the exact SchedStats histograms; request_* metrics read
// `request_latency` (the primary app's per-operation histogram). A request_*
// objective with no histogram supplied observes 0 and passes vacuously.
std::vector<SloVerdict> EvaluateSlos(const std::vector<SloObjective>& objectives,
                                     const SchedStats& stats,
                                     const LatencyHistogram* request_latency = nullptr);
// True iff every verdict passed (vacuously true when empty).
bool AllSlosPass(const std::vector<SloVerdict>& verdicts);

// Deterministic JSON: {"pass":true,"objectives":[{"name":..,"metric":..,
// "threshold_ns":..,"observed_ns":..,"pass":..},...]}.
std::string SloVerdictsJson(const std::vector<SloVerdict>& verdicts);

}  // namespace schedbattle

#endif  // SRC_METRICS_SLO_H_
