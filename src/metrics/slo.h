// SLO engine: log-bucketed latency histograms, windowed tail-percentile
// time series, and declarative latency objectives with pass/fail verdicts.
//
// The ROADMAP's serving-fleet north star is a tail-latency story: which
// scheduler holds p99/p999 under load. This module supplies the three
// pieces: a LogHistogram whose memory is O(buckets) rather than O(samples)
// (for windowed series over long runs), a WindowedTailSeries that tracks
// how the tail evolves over simulated time, and SloObjective/SloVerdict —
// objectives declared on an ExperimentSpec ("wakeup_p99 < 5ms"), evaluated
// against the exact SchedStats histograms, with verdicts landing in the
// RunResult and the schedstats JSON.
#ifndef SRC_METRICS_SLO_H_
#define SRC_METRICS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace schedbattle {

class SchedStats;

// Log-bucketed latency histogram: 32 sub-buckets per power of two, giving a
// worst-case quantile error of ~3% of the value while holding memory at a
// fixed ~2000 buckets regardless of sample count. Percentile() returns the
// lower bound of the selected bucket (deterministic, never over-reports).
class LogHistogram {
 public:
  void Record(SimDuration value);
  uint64_t count() const { return count_; }
  SimDuration min() const { return count_ > 0 ? min_ : 0; }
  SimDuration max() const { return count_ > 0 ? max_ : 0; }
  double Mean() const;
  SimDuration Percentile(double p) const;
  void Clear();
  // Sub-buckets per octave; exposed for the resolution test.
  static constexpr int kSubBuckets = 32;

 private:
  static int BucketOf(SimDuration value);
  static SimDuration BucketLowerBound(int bucket);
  // 64 octaves x 32 sub-buckets covers the whole non-negative int64 range.
  static constexpr int kNumBuckets = 64 * kSubBuckets;

  uint64_t count_ = 0;
  SimDuration min_ = 0;
  SimDuration max_ = 0;
  double sum_ = 0;
  std::vector<uint32_t> buckets_;  // allocated lazily on first Record
};

// Tail percentiles of one fixed window of simulated time.
struct TailWindow {
  SimTime start = 0;  // window start (window index * period)
  uint64_t count = 0;
  SimDuration p50 = 0;
  SimDuration p99 = 0;
  SimDuration p999 = 0;
};

// Windowed time series of tail percentiles: samples are routed into fixed
// simulated-time windows (LogHistogram per window); Rows() reports how the
// tail evolved over the run. Empty windows are skipped (not zero-filled).
class WindowedTailSeries {
 public:
  explicit WindowedTailSeries(SimDuration window = Milliseconds(100)) : window_(window) {}
  void Record(SimTime t, SimDuration value);
  SimDuration window() const { return window_; }
  size_t num_windows() const { return histograms_.size(); }
  std::vector<TailWindow> Rows() const;
  // Deterministic JSON array: [{"start_ns":..,"count":..,"p50_ns":..,
  // "p99_ns":..,"p999_ns":..},...].
  std::string ToJson() const;

 private:
  SimDuration window_;
  std::vector<int64_t> indices_;  // sorted window indices, parallel to histograms_
  std::vector<LogHistogram> histograms_;
};

// The measurable quantities an objective can constrain.
enum class SloMetric : uint8_t {
  kWakeupP50,
  kWakeupP90,
  kWakeupP99,
  kWakeupP999,
  kWakeupMax,
  kWakeupMean,
  kForkP99,
  kForkP999,
};
const char* SloMetricName(SloMetric metric);

// One declarative objective: metric < threshold.
struct SloObjective {
  SloMetric metric = SloMetric::kWakeupP99;
  SimDuration threshold = 0;
  std::string name;  // optional label; defaults to SloMetricName

  std::string Describe() const;  // "wakeup_p99 < 5ms"
};

// Parses "wakeup_p99<5ms" / "fork_p999<1.5s" / "wakeup_max<800us" (also
// accepts a bare nanosecond count). Returns false with *error set on
// malformed input.
bool ParseSloObjective(const std::string& text, SloObjective* out, std::string* error);

struct SloVerdict {
  SloObjective objective;
  SimDuration observed = 0;
  bool pass = false;
};

// Evaluates objectives against the run's exact latency histograms.
std::vector<SloVerdict> EvaluateSlos(const std::vector<SloObjective>& objectives,
                                     const SchedStats& stats);
// True iff every verdict passed (vacuously true when empty).
bool AllSlosPass(const std::vector<SloVerdict>& verdicts);

// Deterministic JSON: {"pass":true,"objectives":[{"name":..,"metric":..,
// "threshold_ns":..,"observed_ns":..,"pass":..},...]}.
std::string SloVerdictsJson(const std::vector<SloVerdict>& verdicts);

}  // namespace schedbattle

#endif  // SRC_METRICS_SLO_H_
