#include "src/metrics/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace schedbattle {

SchedTrace::SchedTrace(Machine* machine, size_t capacity)
    : machine_(machine), capacity_(std::max<size_t>(capacity, 16)) {
  machine_->AddObserver(this);
  attached_ = true;
}

SchedTrace::~SchedTrace() { Detach(); }

void SchedTrace::Detach() {
  if (attached_) {
    machine_->RemoveObserver(this);
  }
  attached_ = false;
}

void SchedTrace::Push(TraceEvent e) {
  // Tickless accounting rides along at event granularity: one sample per
  // change of the machine's tick-elision counters, bounded by the same
  // capacity as the event buffer.
  const TickElisionCounters& te = machine_->tick_elision();
  if (tick_samples_.size() < capacity_ &&
      (tick_samples_.empty() || tick_samples_.back().ticks_fired != te.ticks_fired ||
       tick_samples_.back().ticks_elided != te.ticks_elided ||
       tick_samples_.back().batch_updates != te.batch_updates)) {
    tick_samples_.push_back({e.t, te.ticks_fired, te.ticks_elided, te.batch_updates});
  }
  // Sample the counter tracks at event granularity: runnable count on the
  // event's core and its NUMA node. RunnableCountOf is O(1)-ish for both
  // schedulers, so this stays cheap even for dense traces.
  if (e.core != kInvalidCore) {
    const Scheduler& sched = machine_->scheduler();
    e.rq_depth = sched.RunnableCountOf(e.core);
    const CpuTopology& topo = machine_->topology();
    e.node = topo.NodeOf(e.core);
    int node_runnable = 0;
    for (CoreId c : topo.GroupOf(e.core, TopoLevel::kNode)) {
      node_runnable += sched.RunnableCountOf(c);
    }
    e.node_runnable = node_runnable;
  }
  if (events_.size() < capacity_) {
    events_.push_back(e);
    return;
  }
  events_[head_] = e;
  head_ = (head_ + 1) % capacity_;
  wrapped_ = true;
  ++dropped_;
}

void SchedTrace::OnDispatch(SimTime now, CoreId core, const SimThread& thread) {
  Push({TraceEvent::Kind::kDispatch, now, thread.id(), core, kInvalidCore, 0});
}
void SchedTrace::OnDeschedule(SimTime now, CoreId core, const SimThread& thread, char reason) {
  Push({TraceEvent::Kind::kDeschedule, now, thread.id(), core, kInvalidCore, reason});
}
void SchedTrace::OnWake(SimTime now, const SimThread& thread, CoreId target) {
  Push({TraceEvent::Kind::kWake, now, thread.id(), target, kInvalidCore, 0});
}
void SchedTrace::OnMigrate(SimTime now, const SimThread& thread, CoreId from, CoreId to) {
  Push({TraceEvent::Kind::kMigrate, now, thread.id(), to, from, 0});
}
void SchedTrace::OnFork(SimTime now, const SimThread& thread, CoreId target) {
  Push({TraceEvent::Kind::kFork, now, thread.id(), target, kInvalidCore, 0});
}

std::vector<TraceEvent> SchedTrace::Events() const {
  if (!wrapped_) {
    return events_;
  }
  std::vector<TraceEvent> out;
  out.reserve(events_.size());
  for (size_t i = 0; i < events_.size(); ++i) {
    out.push_back(events_[(head_ + i) % events_.size()]);
  }
  return out;
}

std::string SchedTrace::NameOf(ThreadId id) const {
  const SimThread* t = machine_->FindThread(id);
  return t != nullptr ? t->name() : ("tid" + std::to_string(id));
}

std::string SchedTrace::ToText(size_t max_events) const {
  static const char* kNames[] = {"DISPATCH", "DESCHED ", "WAKE    ", "MIGRATE ", "FORK    "};
  std::ostringstream os;
  const auto events = Events();
  const size_t start = events.size() > max_events ? events.size() - max_events : 0;
  for (size_t i = start; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    char line[160];
    if (e.kind == TraceEvent::Kind::kMigrate) {
      std::snprintf(line, sizeof(line), "%12.6f c%02d %s tid=%lld %s (from c%02d)\n",
                    ToSeconds(e.t), e.core, kNames[static_cast<int>(e.kind)],
                    static_cast<long long>(e.thread), NameOf(e.thread).c_str(), e.from_core);
    } else if (e.kind == TraceEvent::Kind::kDeschedule) {
      std::snprintf(line, sizeof(line), "%12.6f c%02d %s tid=%lld %s [%c]\n", ToSeconds(e.t),
                    e.core, kNames[static_cast<int>(e.kind)], static_cast<long long>(e.thread),
                    NameOf(e.thread).c_str(), e.reason);
    } else {
      std::snprintf(line, sizeof(line), "%12.6f c%02d %s tid=%lld %s\n", ToSeconds(e.t), e.core,
                    kNames[static_cast<int>(e.kind)], static_cast<long long>(e.thread),
                    NameOf(e.thread).c_str());
    }
    os << line;
  }
  return os.str();
}

std::string SchedTrace::ToChromeJson() const {
  // trace_event format: pid 0 carries one lane per core ("X" complete events
  // for run intervals, "i" instants for wakes/migrations/forks, "s"/"f" flow
  // arrows from each wake to the dispatch that serviced it); pid 1 carries
  // the "C" counter tracks (per-core runqueue depth, per-node runnable).
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& json) {
    if (!first) {
      os << ",\n";
    }
    first = false;
    os << json;
  };
  // Name the per-core tracks and the counter process.
  emit("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"cores\"}}");
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"counters\"}}");
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\","
                  "\"args\":{\"name\":\"core %d\"}}",
                  c, c);
    emit(buf);
  }
  // Tickless accounting as three counter tracks (PR-5's NOHZ-style tick
  // elision: fired vs elided ticks, and batched catch-up invocations).
  for (const TickElisionSample& s : tick_samples_) {
    char buf[256];
    const double us = static_cast<double>(s.t) / 1000.0;
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,"
                  "\"name\":\"ticks fired\",\"args\":{\"count\":%llu}}",
                  us, static_cast<unsigned long long>(s.ticks_fired));
    emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,"
                  "\"name\":\"ticks elided\",\"args\":{\"count\":%llu}}",
                  us, static_cast<unsigned long long>(s.ticks_elided));
    emit(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,"
                  "\"name\":\"tick batch updates\",\"args\":{\"count\":%llu}}",
                  us, static_cast<unsigned long long>(s.batch_updates));
    emit(buf);
  }
  // Pair dispatch/deschedule per core into slices; link wake->dispatch per
  // thread into flow arrows.
  std::map<CoreId, TraceEvent> open;
  std::map<ThreadId, uint64_t> pending_flow;
  uint64_t next_flow_id = 1;
  for (const TraceEvent& e : Events()) {
    char buf[256];
    const double us = static_cast<double>(e.t) / 1000.0;
    // Counter samples ride on every event that has them.
    if (e.rq_depth >= 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,"
                    "\"name\":\"runqueue core %d\",\"args\":{\"runnable\":%d}}",
                    us, e.core, e.rq_depth);
      emit(buf);
    }
    if (e.node >= 0) {
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":%.3f,"
                    "\"name\":\"node %d runnable\",\"args\":{\"runnable\":%d}}",
                    us, e.node, e.node_runnable);
      emit(buf);
    }
    switch (e.kind) {
      case TraceEvent::Kind::kDispatch: {
        open[e.core] = e;
        if (auto it = pending_flow.find(e.thread); it != pending_flow.end()) {
          std::snprintf(buf, sizeof(buf),
                        "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"wakeup\",\"id\":%llu,"
                        "\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"name\":\"wake-to-dispatch\"}",
                        static_cast<unsigned long long>(it->second), e.core, us);
          emit(buf);
          pending_flow.erase(it);
        }
        break;
      }
      case TraceEvent::Kind::kDeschedule: {
        auto it = open.find(e.core);
        if (it != open.end() && it->second.thread == e.thread) {
          const double us_start = static_cast<double>(it->second.t) / 1000.0;
          const double us_dur = static_cast<double>(e.t - it->second.t) / 1000.0;
          std::snprintf(buf, sizeof(buf),
                        "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,"
                        "\"name\":\"%s\",\"args\":{\"end\":\"%c\"}}",
                        e.core, us_start, us_dur, NameOf(e.thread).c_str(), e.reason);
          emit(buf);
          open.erase(it);
        }
        break;
      }
      case TraceEvent::Kind::kWake:
      case TraceEvent::Kind::kMigrate:
      case TraceEvent::Kind::kFork: {
        const char* name = e.kind == TraceEvent::Kind::kWake
                               ? "wake"
                               : (e.kind == TraceEvent::Kind::kMigrate ? "migrate" : "fork");
        std::snprintf(buf, sizeof(buf),
                      "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s %s\","
                      "\"s\":\"t\"}",
                      e.core, us, name, NameOf(e.thread).c_str());
        emit(buf);
        if (e.kind == TraceEvent::Kind::kWake) {
          const uint64_t id = next_flow_id++;
          pending_flow[e.thread] = id;
          std::snprintf(buf, sizeof(buf),
                        "{\"ph\":\"s\",\"cat\":\"wakeup\",\"id\":%llu,\"pid\":0,"
                        "\"tid\":%d,\"ts\":%.3f,\"name\":\"wake-to-dispatch\"}",
                        static_cast<unsigned long long>(id), e.core, us);
          emit(buf);
        }
        break;
      }
    }
  }
  os << "\n]}\n";
  return os.str();
}

}  // namespace schedbattle
