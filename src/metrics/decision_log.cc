#include "src/metrics/decision_log.h"

#include <cassert>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace schedbattle {

namespace {

constexpr char kMagic[4] = {'S', 'B', 'D', 'L'};

// Little-endian fixed-width writers/readers for the binary framing. The
// simulator only targets little-endian hosts, but going through memcpy of
// explicitly-sized integers keeps the format well-defined.
template <typename T>
void PutInt(std::vector<uint8_t>* out, T v) {
  uint8_t buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->insert(out->end(), buf, buf + sizeof(T));
}

template <typename T>
bool GetInt(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutDouble(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutInt(out, bits);
}

bool GetDouble(const std::vector<uint8_t>& in, size_t* pos, double* v) {
  uint64_t bits = 0;
  if (!GetInt(in, pos, &bits)) {
    return false;
  }
  std::memcpy(v, &bits, sizeof(bits));
  return true;
}

// Fixed-precision double formatting shared by every JSONL field, so the
// stream is byte-deterministic.
void AppendDouble(std::ostringstream& os, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  os << buf;
}

}  // namespace

const char* DecisionRecordTypeName(DecisionRecord::Type type) {
  switch (type) {
    case DecisionRecord::Type::kDispatch:
      return "dispatch";
    case DecisionRecord::Type::kDeschedule:
      return "desched";
    case DecisionRecord::Type::kWake:
      return "wake";
    case DecisionRecord::Type::kMigrate:
      return "migrate";
    case DecisionRecord::Type::kFork:
      return "fork";
    case DecisionRecord::Type::kPick:
      return "pick";
    case DecisionRecord::Type::kBalance:
      return "balance";
    case DecisionRecord::Type::kPreempt:
      return "preempt";
  }
  return "unknown";
}

const char* EnqueueKindName(EnqueueKind kind) {
  switch (kind) {
    case EnqueueKind::kFork:
      return "fork";
    case EnqueueKind::kWakeup:
      return "wakeup";
    case EnqueueKind::kRequeue:
      return "requeue";
    case EnqueueKind::kMigrate:
      return "migrate";
  }
  return "unknown";
}

DecisionLog::DecisionLog(Machine* machine) : machine_(machine) {
  machine_->AttachDecisionSink(&sink_);
  attached_ = true;
}

DecisionLog::~DecisionLog() { Detach(); }

void DecisionLog::Detach() {
  if (attached_) {
    machine_->DetachDecisionSink(&sink_);
    attached_ = false;
  }
}

DecisionRecord DecisionLog::Decode(const DecisionSink::RawRecord& raw) {
  DecisionRecord r;
  r.t = raw.t;
  r.type = raw.type;
  switch (raw.type) {
    case DecisionType::kPick: {
      DecisionPickPayload p;
      std::memcpy(&p, raw.payload, sizeof(p));
      r.pick.thread = p.thread;
      r.pick.origin = p.origin;
      r.pick.prev = p.prev;
      r.pick.chosen = p.chosen;
      r.pick.kind = static_cast<EnqueueKind>(p.kind);
      r.pick.reason = static_cast<PickReason>(p.reason);
      r.pick.cores_scanned = p.cores_scanned;
      r.pick.affine_hit = p.affine_hit != 0;
      r.pick.chosen_rq = p.chosen_rq;
      r.pick.prev_rq = p.prev_rq;
      r.pick.sched_key = p.sched_key;
      r.pick.idle_mask = p.idle_mask;
      break;
    }
    case DecisionType::kBalance:
      std::memcpy(&r.balance, raw.payload, sizeof(r.balance));
      break;
    case DecisionType::kPreempt: {
      DecisionPreemptPayload p;
      std::memcpy(&p, raw.payload, sizeof(p));
      r.preempt.preemptor = p.preemptor;
      r.preempt.victim = p.victim;
      r.preempt.core = p.core;
      r.preempt.fired = p.fired != 0;
      r.preempt.margin = p.margin;
      break;
    }
    default: {
      DecisionLifePayload p;
      std::memcpy(&p, raw.payload, sizeof(p));
      r.life.thread = p.thread;
      r.life.core = p.core;
      r.life.from_core = p.from_core;
      r.life.reason = static_cast<char>(p.reason);
      break;
    }
  }
  return r;
}

DecisionRecord DecisionLog::at(size_t i) const {
  assert(i < size());
  return Decode(sink_.RecordAt(i));
}

DecisionLogHeader DecisionLog::Header() const {
  DecisionLogHeader h;
  h.scheduler = machine_->scheduler().name();
  h.num_cores = machine_->num_cores();
  h.tickless = machine_->tickless();
  h.seed = machine_->params().seed;
  return h;
}

std::string DecisionLog::ToJsonl(size_t max_records) const {
  const DecisionLogHeader h = Header();
  std::ostringstream os;
  os << "{\"type\":\"header\",\"schema\":" << h.schema << ",\"scheduler\":\"" << h.scheduler
     << "\",\"num_cores\":" << h.num_cores << ",\"tickless\":" << (h.tickless ? 1 : 0)
     << ",\"seed\":" << h.seed << ",\"records\":" << size() << "}\n";
  const size_t n = size() < max_records ? size() : max_records;
  DecisionSink::Reader reader(sink_);
  DecisionSink::RawRecord raw;
  for (size_t i = 0; i < n && reader.Next(&raw); ++i) {
    const DecisionRecord r = Decode(raw);
    os << "{\"t\":" << r.t << ",\"type\":\"" << DecisionRecordTypeName(r.type) << "\"";
    switch (r.type) {
      case DecisionRecord::Type::kDispatch:
      case DecisionRecord::Type::kWake:
      case DecisionRecord::Type::kFork:
        os << ",\"tid\":" << r.life.thread << ",\"core\":" << r.life.core;
        break;
      case DecisionRecord::Type::kDeschedule:
        os << ",\"tid\":" << r.life.thread << ",\"core\":" << r.life.core << ",\"reason\":\""
           << r.life.reason << "\"";
        break;
      case DecisionRecord::Type::kMigrate:
        os << ",\"tid\":" << r.life.thread << ",\"from\":" << r.life.from_core
           << ",\"to\":" << r.life.core;
        break;
      case DecisionRecord::Type::kPick:
        os << ",\"tid\":" << r.pick.thread << ",\"origin\":" << r.pick.origin
           << ",\"prev\":" << r.pick.prev << ",\"chosen\":" << r.pick.chosen << ",\"kind\":\""
           << EnqueueKindName(r.pick.kind) << "\",\"reason\":\"" << PickReasonName(r.pick.reason)
           << "\",\"scanned\":" << r.pick.cores_scanned
           << ",\"affine\":" << (r.pick.affine_hit ? 1 : 0)
           << ",\"chosen_rq\":" << r.pick.chosen_rq << ",\"prev_rq\":" << r.pick.prev_rq
           << ",\"sched_key\":" << r.pick.sched_key << ",\"idle_mask\":" << r.pick.idle_mask;
        break;
      case DecisionRecord::Type::kBalance:
        os << ",\"kind\":\"" << BalanceKindName(r.balance.kind)
           << "\",\"level\":" << r.balance.level << ",\"src\":" << r.balance.src
           << ",\"dst\":" << r.balance.dst << ",\"src_load\":";
        AppendDouble(os, r.balance.src_load);
        os << ",\"dst_load\":";
        AppendDouble(os, r.balance.dst_load);
        os << ",\"imbalance_pct\":";
        AppendDouble(os, r.balance.imbalance_pct);
        os << ",\"moved\":" << r.balance.threads_moved;
        break;
      case DecisionRecord::Type::kPreempt:
        os << ",\"preemptor\":" << r.preempt.preemptor << ",\"victim\":" << r.preempt.victim
           << ",\"core\":" << r.preempt.core << ",\"fired\":" << (r.preempt.fired ? 1 : 0)
           << ",\"margin\":" << r.preempt.margin;
        break;
    }
    os << "}\n";
  }
  return os.str();
}

bool DecisionLog::WriteFile(const std::string& path, bool binary) const {
  std::FILE* f = std::fopen(path.c_str(), binary ? "wb" : "w");
  if (f == nullptr) {
    return false;
  }
  bool ok;
  if (binary) {
    const std::vector<uint8_t> bytes = ToBinary();
    ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  } else {
    const std::string text = ToJsonl();
    ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  }
  return std::fclose(f) == 0 && ok;
}

std::vector<uint8_t> DecisionLog::ToBinary() const {
  const DecisionLogHeader h = Header();
  std::vector<uint8_t> out;
  out.reserve(64 + size() * 32);
  out.insert(out.end(), kMagic, kMagic + 4);
  PutInt<uint32_t>(&out, h.schema);
  PutInt<uint32_t>(&out, static_cast<uint32_t>(h.scheduler.size()));
  out.insert(out.end(), h.scheduler.begin(), h.scheduler.end());
  PutInt<int32_t>(&out, h.num_cores);
  PutInt<uint8_t>(&out, h.tickless ? 1 : 0);
  PutInt<uint64_t>(&out, h.seed);
  PutInt<uint64_t>(&out, size());
  DecisionSink::Reader reader(sink_);
  DecisionSink::RawRecord raw;
  while (reader.Next(&raw)) {
    const DecisionRecord r = Decode(raw);
    PutInt<uint8_t>(&out, static_cast<uint8_t>(r.type));
    PutInt<int64_t>(&out, r.t);
    switch (r.type) {
      case DecisionRecord::Type::kDispatch:
      case DecisionRecord::Type::kDeschedule:
      case DecisionRecord::Type::kWake:
      case DecisionRecord::Type::kMigrate:
      case DecisionRecord::Type::kFork:
        PutInt<int64_t>(&out, r.life.thread);
        PutInt<int32_t>(&out, r.life.core);
        PutInt<int32_t>(&out, r.life.from_core);
        PutInt<uint8_t>(&out, static_cast<uint8_t>(r.life.reason));
        break;
      case DecisionRecord::Type::kPick:
        PutInt<int64_t>(&out, r.pick.thread);
        PutInt<int32_t>(&out, r.pick.origin);
        PutInt<int32_t>(&out, r.pick.prev);
        PutInt<int32_t>(&out, r.pick.chosen);
        PutInt<uint8_t>(&out, static_cast<uint8_t>(r.pick.kind));
        PutInt<uint8_t>(&out, static_cast<uint8_t>(r.pick.reason));
        PutInt<int32_t>(&out, r.pick.cores_scanned);
        PutInt<uint8_t>(&out, r.pick.affine_hit ? 1 : 0);
        PutInt<int32_t>(&out, r.pick.chosen_rq);
        PutInt<int32_t>(&out, r.pick.prev_rq);
        PutInt<int64_t>(&out, r.pick.sched_key);
        PutInt<uint64_t>(&out, r.pick.idle_mask);
        break;
      case DecisionRecord::Type::kBalance:
        PutInt<uint8_t>(&out, static_cast<uint8_t>(r.balance.kind));
        PutInt<int32_t>(&out, r.balance.level);
        PutInt<int32_t>(&out, r.balance.src);
        PutInt<int32_t>(&out, r.balance.dst);
        PutDouble(&out, r.balance.src_load);
        PutDouble(&out, r.balance.dst_load);
        PutDouble(&out, r.balance.imbalance_pct);
        PutInt<int32_t>(&out, r.balance.threads_moved);
        break;
      case DecisionRecord::Type::kPreempt:
        PutInt<int64_t>(&out, r.preempt.preemptor);
        PutInt<int64_t>(&out, r.preempt.victim);
        PutInt<int32_t>(&out, r.preempt.core);
        PutInt<uint8_t>(&out, r.preempt.fired ? 1 : 0);
        PutInt<int64_t>(&out, r.preempt.margin);
        break;
    }
  }
  return out;
}

bool DecisionLog::ParseBinary(const std::vector<uint8_t>& bytes, ParsedDecisionLog* out) {
  size_t pos = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return false;
  }
  pos = 4;
  DecisionLogHeader h;
  uint32_t name_len = 0;
  if (!GetInt(bytes, &pos, &h.schema) || !GetInt(bytes, &pos, &name_len) ||
      pos + name_len > bytes.size()) {
    return false;
  }
  h.scheduler.assign(reinterpret_cast<const char*>(bytes.data() + pos), name_len);
  pos += name_len;
  int32_t cores = 0;
  uint8_t tickless = 0;
  uint64_t count = 0;
  if (!GetInt(bytes, &pos, &cores) || !GetInt(bytes, &pos, &tickless) ||
      !GetInt(bytes, &pos, &h.seed) || !GetInt(bytes, &pos, &count)) {
    return false;
  }
  h.num_cores = cores;
  h.tickless = tickless != 0;
  out->header = h;
  out->records.clear();
  out->records.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint8_t type = 0;
    DecisionRecord r;
    if (!GetInt(bytes, &pos, &type) || type > static_cast<uint8_t>(DecisionRecord::Type::kPreempt) ||
        !GetInt(bytes, &pos, &r.t)) {
      return false;
    }
    r.type = static_cast<DecisionRecord::Type>(type);
    bool ok = true;
    switch (r.type) {
      case DecisionRecord::Type::kDispatch:
      case DecisionRecord::Type::kDeschedule:
      case DecisionRecord::Type::kWake:
      case DecisionRecord::Type::kMigrate:
      case DecisionRecord::Type::kFork: {
        uint8_t reason = 0;
        ok = GetInt(bytes, &pos, &r.life.thread) && GetInt(bytes, &pos, &r.life.core) &&
             GetInt(bytes, &pos, &r.life.from_core) && GetInt(bytes, &pos, &reason);
        r.life.reason = static_cast<char>(reason);
        break;
      }
      case DecisionRecord::Type::kPick: {
        r.pick = PickCpuDecision{};
        uint8_t kind = 0, reason = 0, affine = 0;
        ok = GetInt(bytes, &pos, &r.pick.thread) && GetInt(bytes, &pos, &r.pick.origin) &&
             GetInt(bytes, &pos, &r.pick.prev) && GetInt(bytes, &pos, &r.pick.chosen) &&
             GetInt(bytes, &pos, &kind) && GetInt(bytes, &pos, &reason) &&
             GetInt(bytes, &pos, &r.pick.cores_scanned) && GetInt(bytes, &pos, &affine) &&
             GetInt(bytes, &pos, &r.pick.chosen_rq) && GetInt(bytes, &pos, &r.pick.prev_rq) &&
             GetInt(bytes, &pos, &r.pick.sched_key) && GetInt(bytes, &pos, &r.pick.idle_mask);
        r.pick.kind = static_cast<EnqueueKind>(kind);
        r.pick.reason = static_cast<PickReason>(reason);
        r.pick.affine_hit = affine != 0;
        break;
      }
      case DecisionRecord::Type::kBalance: {
        r.balance = BalancePassRecord{};
        uint8_t kind = 0;
        ok = GetInt(bytes, &pos, &kind) && GetInt(bytes, &pos, &r.balance.level) &&
             GetInt(bytes, &pos, &r.balance.src) && GetInt(bytes, &pos, &r.balance.dst) &&
             GetDouble(bytes, &pos, &r.balance.src_load) &&
             GetDouble(bytes, &pos, &r.balance.dst_load) &&
             GetDouble(bytes, &pos, &r.balance.imbalance_pct) &&
             GetInt(bytes, &pos, &r.balance.threads_moved);
        r.balance.kind = static_cast<BalancePassRecord::Kind>(kind);
        break;
      }
      case DecisionRecord::Type::kPreempt: {
        r.preempt = PreemptDecision{};
        uint8_t fired = 0;
        ok = GetInt(bytes, &pos, &r.preempt.preemptor) && GetInt(bytes, &pos, &r.preempt.victim) &&
             GetInt(bytes, &pos, &r.preempt.core) && GetInt(bytes, &pos, &fired) &&
             GetInt(bytes, &pos, &r.preempt.margin);
        r.preempt.fired = fired != 0;
        break;
      }
    }
    if (!ok) {
      return false;
    }
    out->records.push_back(r);
  }
  return pos == bytes.size();
}

}  // namespace schedbattle
