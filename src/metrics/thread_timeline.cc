#include "src/metrics/thread_timeline.h"

#include <cstdio>
#include <sstream>

namespace schedbattle {

namespace {

void AppendTime(std::ostringstream& os, SimTime t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%12.6f", static_cast<double>(t) / 1e9);
  os << buf;
}

std::string HumanDuration(SimDuration d) {
  char buf[40];
  if (d >= Seconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(d) / 1e9);
  } else if (d >= Milliseconds(1)) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(d) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(d) / 1e3);
  }
  return buf;
}

}  // namespace

const char* TimelineStateName(TimelineSegment::State state) {
  switch (state) {
    case TimelineSegment::State::kRunnable:
      return "runnable";
    case TimelineSegment::State::kRunning:
      return "running";
    case TimelineSegment::State::kBlocked:
      return "blocked";
  }
  return "unknown";
}

TimelineSet::TimelineSet(const DecisionLog& log, SimTime end_time) : end_time_(end_time) {
  Fold(log);
}

void TimelineSet::OpenSegment(ThreadTimeline* tl, TimelineSegment::State state, SimTime t,
                              CoreId core) {
  TimelineSegment seg;
  seg.state = state;
  seg.start = t;
  seg.end = t;  // patched by CloseSegment (or finalization)
  seg.core = core;
  tl->segments.push_back(seg);
}

void TimelineSet::CloseSegment(ThreadTimeline* tl, SimTime t) {
  if (tl->segments.empty()) {
    return;
  }
  TimelineSegment& seg = tl->segments.back();
  seg.end = t;
  switch (seg.state) {
    case TimelineSegment::State::kRunnable:
      tl->total_runnable += seg.duration();
      break;
    case TimelineSegment::State::kRunning:
      tl->total_running += seg.duration();
      break;
    case TimelineSegment::State::kBlocked:
      tl->total_blocked += seg.duration();
      break;
  }
}

void TimelineSet::Fold(const DecisionLog& log) {
  for (size_t i = 0; i < log.size(); ++i) {
    const DecisionRecord& r = log.at(i);
    switch (r.type) {
      case DecisionRecord::Type::kFork: {
        ThreadTimeline& tl = timelines_[r.life.thread];
        tl.id = r.life.thread;
        tl.born = r.t;
        pending_wake_[r.life.thread] = r.t;  // fork-to-first-dispatch wait
        OpenSegment(&tl, TimelineSegment::State::kRunnable, r.t, r.life.core);
        break;
      }
      case DecisionRecord::Type::kWake: {
        ThreadTimeline& tl = timelines_[r.life.thread];
        tl.id = r.life.thread;
        pending_wake_[r.life.thread] = r.t;
        CloseSegment(&tl, r.t);  // ends the blocked segment
        OpenSegment(&tl, TimelineSegment::State::kRunnable, r.t, r.life.core);
        break;
      }
      case DecisionRecord::Type::kDispatch: {
        ThreadTimeline& tl = timelines_[r.life.thread];
        tl.id = r.life.thread;
        ++tl.dispatches;
        if (auto it = pending_wake_.find(r.life.thread); it != pending_wake_.end()) {
          // Fork waits are tracked by SchedStats in the fork histogram, not
          // the wakeup one; mirror that split so totals stay comparable.
          if (tl.dispatches > 1 || tl.born < 0 || it->second != tl.born) {
            tl.wake_latency_sum += r.t - it->second;
            ++tl.wake_latency_count;
          }
          pending_wake_.erase(it);
        }
        CloseSegment(&tl, r.t);  // ends the runnable segment
        OpenSegment(&tl, TimelineSegment::State::kRunning, r.t, r.life.core);
        break;
      }
      case DecisionRecord::Type::kDeschedule: {
        ThreadTimeline& tl = timelines_[r.life.thread];
        tl.id = r.life.thread;
        CloseSegment(&tl, r.t);  // ends the running segment
        switch (r.life.reason) {
          case 'P':
            ++tl.preemptions;
            [[fallthrough]];
          case 'Y':
            OpenSegment(&tl, TimelineSegment::State::kRunnable, r.t, r.life.core);
            break;
          case 'B':
            OpenSegment(&tl, TimelineSegment::State::kBlocked, r.t, kInvalidCore);
            break;
          case 'X':
            tl.exited = r.t;
            break;
          default:
            break;
        }
        break;
      }
      case DecisionRecord::Type::kMigrate: {
        ThreadTimeline& tl = timelines_[r.life.thread];
        tl.id = r.life.thread;
        tl.migrations.push_back({r.t, r.life.from_core, r.life.core});
        // A migrated thread stays runnable; note the queue move by splitting
        // the runnable segment at the hop.
        if (!tl.segments.empty() &&
            tl.segments.back().state == TimelineSegment::State::kRunnable) {
          CloseSegment(&tl, r.t);
          OpenSegment(&tl, TimelineSegment::State::kRunnable, r.t, r.life.core);
        }
        break;
      }
      case DecisionRecord::Type::kPick:
      case DecisionRecord::Type::kBalance:
      case DecisionRecord::Type::kPreempt:
        break;  // decision probes carry no lifecycle transition
    }
  }
  // Close segments still open when the log ends (threads alive at horizon).
  for (auto& [id, tl] : timelines_) {
    if (!tl.segments.empty() && tl.segments.back().end == tl.segments.back().start &&
        tl.exited < 0) {
      CloseSegment(&tl, end_time_);
    }
  }
}

const ThreadTimeline* TimelineSet::Find(ThreadId id) const {
  auto it = timelines_.find(id);
  return it != timelines_.end() ? &it->second : nullptr;
}

SimDuration TimelineSet::TotalRunning() const {
  SimDuration sum = 0;
  for (const auto& [id, tl] : timelines_) {
    sum += tl.total_running;
  }
  return sum;
}

SimDuration TimelineSet::TotalWakeLatency() const {
  SimDuration sum = 0;
  for (const auto& [id, tl] : timelines_) {
    sum += tl.wake_latency_sum;
  }
  return sum;
}

uint64_t TimelineSet::TotalWakeCount() const {
  uint64_t sum = 0;
  for (const auto& [id, tl] : timelines_) {
    sum += tl.wake_latency_count;
  }
  return sum;
}

std::string TimelineSet::RenderThread(ThreadId id, size_t max_segments) const {
  const ThreadTimeline* tl = Find(id);
  if (tl == nullptr) {
    return "thread " + std::to_string(id) + ": not in log\n";
  }
  std::ostringstream os;
  os << "thread " << id << ": " << tl->segments.size() << " segments, " << tl->dispatches
     << " dispatches, " << tl->migrations.size() << " migrations, " << tl->preemptions
     << " preemptions\n";
  os << "  on-cpu " << HumanDuration(tl->total_running) << ", runqueue-wait "
     << HumanDuration(tl->total_runnable) << ", blocked " << HumanDuration(tl->total_blocked);
  if (tl->wake_latency_count > 0) {
    os << ", avg wake latency "
       << HumanDuration(tl->wake_latency_sum / static_cast<SimDuration>(tl->wake_latency_count));
  }
  os << "\n";
  const size_t n = tl->segments.size() < max_segments ? tl->segments.size() : max_segments;
  for (size_t i = 0; i < n; ++i) {
    const TimelineSegment& s = tl->segments[i];
    os << "  ";
    AppendTime(os, s.start);
    os << "  ";
    AppendTime(os, s.end);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "  %-8s", TimelineStateName(s.state));
    os << buf;
    if (s.core != kInvalidCore) {
      std::snprintf(buf, sizeof(buf), " c%02d", s.core);
      os << buf;
    } else {
      os << "    ";
    }
    os << "  (" << HumanDuration(s.duration()) << ")\n";
  }
  if (tl->segments.size() > n) {
    os << "  ... " << tl->segments.size() - n << " more segments\n";
  }
  if (!tl->migrations.empty()) {
    os << "  migration chain:";
    for (const MigrationHop& hop : tl->migrations) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), " c%d->c%d@%.6f", hop.from, hop.to,
                    static_cast<double>(hop.t) / 1e9);
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string TimelineSet::RenderSummary(size_t max_threads) const {
  std::ostringstream os;
  os << "  tid   on-cpu        rq-wait       blocked       disp   migr  preempt\n";
  size_t shown = 0;
  for (const auto& [id, tl] : timelines_) {
    if (shown++ >= max_threads) {
      os << "  ... " << timelines_.size() - max_threads << " more threads\n";
      break;
    }
    char buf[160];
    std::snprintf(buf, sizeof(buf), "  %-5lld %-13s %-13s %-13s %-6llu %-5zu %llu\n",
                  static_cast<long long>(id), HumanDuration(tl.total_running).c_str(),
                  HumanDuration(tl.total_runnable).c_str(),
                  HumanDuration(tl.total_blocked).c_str(),
                  static_cast<unsigned long long>(tl.dispatches), tl.migrations.size(),
                  static_cast<unsigned long long>(tl.preemptions));
    os << buf;
  }
  return os.str();
}

}  // namespace schedbattle
