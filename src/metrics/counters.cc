#include "src/metrics/counters.h"

#include <sstream>

namespace schedbattle {

std::string FormatCounters(const Machine& machine) {
  const MachineCounters& c = machine.counters();
  std::ostringstream os;
  os << "  context switches:    " << c.context_switches << "\n"
     << "  wakeup preemptions:  " << c.wakeup_preemptions << "\n"
     << "  tick preemptions:    " << c.tick_preemptions << "\n"
     << "  migrations:          " << c.migrations << "\n"
     << "  wakeups:             " << c.wakeups << "\n"
     << "  forks/exits:         " << c.forks << "/" << c.exits << "\n"
     << "  pickcpu cores scanned: " << c.pickcpu_scans << "\n"
     << "  balancer invocations:  " << c.balance_invocations << "\n";
  const double busy = static_cast<double>(machine.TotalBusyTime());
  auto pct = [busy](SimDuration d) {
    return busy > 0 ? 100.0 * static_cast<double>(d) / busy : 0.0;
  };
  os << "  sched overhead: total " << 100.0 * machine.OverheadFraction() << "% of busy cycles ("
     << "ctxsw " << pct(c.overhead_ns[0]) << "%, "
     << "pickcpu " << pct(c.overhead_ns[1]) << "%, "
     << "balance " << pct(c.overhead_ns[2]) << "%, "
     << "wakeplace " << pct(c.overhead_ns[3]) << "%)\n";
  return os.str();
}

}  // namespace schedbattle
