// ThreadTimeline: per-thread lifecycle reconstruction from a DecisionLog.
//
// Folds the flat decision-record stream back into what each thread actually
// experienced: alternating runnable (waiting in a runqueue), running
// (on-CPU) and blocked (sleeping) segments, the wake->dispatch latency of
// every serviced wakeup, and the chain of migrations. The reconstruction is
// exact — segments partition each thread's lifetime with no gaps or
// overlaps, and the summed wake->dispatch waits equal the SchedStats
// wakeup-latency histogram total for the same run (asserted in tests).
#ifndef SRC_METRICS_THREAD_TIMELINE_H_
#define SRC_METRICS_THREAD_TIMELINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/metrics/decision_log.h"

namespace schedbattle {

// One contiguous span of a thread's life in a single state.
struct TimelineSegment {
  enum class State : uint8_t { kRunnable, kRunning, kBlocked };
  State state = State::kRunnable;
  SimTime start = 0;
  SimTime end = 0;  // == start of the next segment; horizon for the last one
  CoreId core = kInvalidCore;  // running: the core; runnable: the queue's core
  SimDuration duration() const { return end - start; }
};
const char* TimelineStateName(TimelineSegment::State state);

// One balancer-driven move in a thread's migration chain.
struct MigrationHop {
  SimTime t = 0;
  CoreId from = kInvalidCore;
  CoreId to = kInvalidCore;
};

struct ThreadTimeline {
  ThreadId id = kInvalidThread;
  SimTime born = -1;    // fork record time (-1 if the log starts mid-life)
  SimTime exited = -1;  // deschedule-'X' time (-1 if still alive at log end)
  std::vector<TimelineSegment> segments;
  std::vector<MigrationHop> migrations;

  // Off-CPU wait breakdown and on-CPU totals, summed over segments.
  SimDuration total_running = 0;
  SimDuration total_runnable = 0;  // runqueue wait (incl. preempted time)
  SimDuration total_blocked = 0;
  // Wake->dispatch pairs (the SchedStats wakeup-latency pairing): sum and
  // count of serviced wakeups.
  SimDuration wake_latency_sum = 0;
  uint64_t wake_latency_count = 0;
  uint64_t dispatches = 0;
  uint64_t preemptions = 0;  // deschedules with reason 'P'
};

// The full reconstruction: one timeline per thread that appears in the log,
// keyed (and ordered) by thread id.
class TimelineSet {
 public:
  // Folds `log` into per-thread timelines. Open segments (threads alive when
  // the log ends) are closed at `end_time` (typically machine.now()).
  TimelineSet(const DecisionLog& log, SimTime end_time);

  const std::map<ThreadId, ThreadTimeline>& timelines() const { return timelines_; }
  const ThreadTimeline* Find(ThreadId id) const;

  // Totals across every thread (for schedstats cross-checks).
  SimDuration TotalRunning() const;
  SimDuration TotalWakeLatency() const;
  uint64_t TotalWakeCount() const;

  // Human-readable segment listing for one thread:
  //   "  12.000345  12.001200  runnable  c02  (855us)"
  std::string RenderThread(ThreadId id, size_t max_segments = 64) const;
  // One summary row per thread: totals, dispatch/migration counts.
  std::string RenderSummary(size_t max_threads = 64) const;

 private:
  void Fold(const DecisionLog& log);
  void OpenSegment(ThreadTimeline* tl, TimelineSegment::State state, SimTime t, CoreId core);
  void CloseSegment(ThreadTimeline* tl, SimTime t);

  SimTime end_time_;
  std::map<ThreadId, ThreadTimeline> timelines_;
  std::map<ThreadId, SimTime> pending_wake_;  // wake not yet dispatched
};

}  // namespace schedbattle

#endif  // SRC_METRICS_THREAD_TIMELINE_H_
