#include "src/metrics/schedstats.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string_view>

#include "src/check/invariant.h"

namespace schedbattle {

namespace {

// Escapes a string for embedding in a JSON string literal. Thread names are
// plain ASCII in practice, but the exporter should never emit invalid JSON.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendHistogramJson(std::ostringstream& os, const LatencyHistogram& h) {
  os << "{\"count\":" << h.count();
  if (h.count() > 0) {
    os << ",\"min_ns\":" << h.min() << ",\"max_ns\":" << h.max()
       << ",\"mean_ns\":" << h.Mean() << ",\"p50_ns\":" << h.Percentile(50)
       << ",\"p90_ns\":" << h.Percentile(90) << ",\"p99_ns\":" << h.Percentile(99)
       << ",\"p999_ns\":" << h.Percentile(99.9);
  }
  os << "}";
}

}  // namespace

SchedStats::SchedStats(Machine* machine, Options options)
    : machine_(machine), options_(options), wakeup_tail_(options.tail_window) {
  rq_depth_.reserve(machine_->num_cores());
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    rq_depth_.emplace_back("rq_depth_core" + std::to_string(c));
  }
  recent_balance_.reserve(options_.recent_balance_cap);
  recent_moves_.reserve(options_.recent_balance_cap);
  machine_->AddObserver(this);
  attached_ = true;
  sampler_ = std::make_unique<PeriodicSampler>(
      machine_, options_.rq_sample_period, [this](SimTime now) { SampleRunqueues(now); });
}

SchedStats::~SchedStats() { Detach(); }

void SchedStats::Detach() {
  if (attached_) {
    machine_->RemoveObserver(this);
    attached_ = false;
  }
  if (sampler_ != nullptr) {
    sampler_->Stop();
  }
}

void SchedStats::SampleRunqueues(SimTime now) {
  const Scheduler& sched = machine_->scheduler();
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    rq_depth_[c].Push(now, sched.RunnableCountOf(c));
  }
}

void SchedStats::OnWake(SimTime now, const SimThread& thread, CoreId /*target*/) {
  pending_wake_[thread.id()] = now;
}

void SchedStats::OnFork(SimTime now, const SimThread& thread, CoreId /*target*/) {
  pending_fork_[thread.id()] = now;
}

void SchedStats::OnDispatch(SimTime now, CoreId /*core*/, const SimThread& thread) {
  if (auto it = pending_wake_.find(thread.id()); it != pending_wake_.end()) {
    const SimDuration latency = now - it->second;
    wakeup_latency_.Record(latency);
    wakeup_tail_.Record(now, latency);
    per_thread_wakeup_[thread.id()].Record(latency);
    pending_wake_.erase(it);
  }
  if (auto it = pending_fork_.find(thread.id()); it != pending_fork_.end()) {
    fork_latency_.Record(now - it->second);
    pending_fork_.erase(it);
  }
}

void SchedStats::OnPickCpu(SimTime /*now*/, const PickCpuDecision& decision) {
  ++decisions_.pickcpu_total;
  ++decisions_.pickcpu_by_reason[static_cast<int>(decision.reason)];
  if (decision.affine_hit) {
    ++decisions_.pickcpu_affine_hits;
  }
  decisions_.pickcpu_cores_scanned += static_cast<uint64_t>(decision.cores_scanned);
}

void SchedStats::OnBalancePass(SimTime now, const BalancePassRecord& pass) {
  ++decisions_.balance_passes;
  decisions_.balance_moved += static_cast<uint64_t>(pass.threads_moved);
  if (pass.threads_moved > 0) {
    ++decisions_.balance_success;
  } else {
    ++decisions_.balance_failed;
  }
  if (pass.kind == BalancePassRecord::Kind::kIdleSteal) {
    ++decisions_.steal_attempts;
    if (pass.threads_moved > 0) {
      ++decisions_.steal_success;
    }
  }
  PushRecent(&recent_balance_, now, pass);
  if (pass.threads_moved > 0) {
    PushRecent(&recent_moves_, now, pass);
  }
}

void SchedStats::OnPreempt(SimTime /*now*/, const PreemptDecision& decision) {
  ++decisions_.preempt_checks;
  if (decision.fired) {
    ++decisions_.preempt_fired;
  }
}

void SchedStats::PushRecent(std::vector<TimedBalanceRecord>* ring, SimTime now,
                            const BalancePassRecord& rec) {
  size_t& head = ring == &recent_balance_ ? recent_balance_head_ : recent_moves_head_;
  if (ring->size() < options_.recent_balance_cap) {
    ring->push_back({now, rec});
    return;
  }
  (*ring)[head] = {now, rec};
  head = (head + 1) % options_.recent_balance_cap;
}

const LatencyHistogram* SchedStats::wakeup_latency_of(ThreadId id) const {
  auto it = per_thread_wakeup_.find(id);
  return it != per_thread_wakeup_.end() ? &it->second : nullptr;
}

std::string SchedStats::ToJson(const std::vector<SloVerdict>* slo_verdicts) const {
  machine_->CatchUpTicks();  // settle pending elided ticks into the counters
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\n";
  os << "\"scheduler\":\"" << JsonEscape(machine_->scheduler().name()) << "\",\n";
  os << "\"num_cores\":" << machine_->num_cores() << ",\n";
  os << "\"sim_time_ns\":" << machine_->now() << ",\n";
  // Tick-elision telemetry. This is the one line that legitimately differs
  // between tickless on and off; equivalence checks strip it (one full line)
  // before comparing snapshots byte-for-byte.
  const TickElisionCounters& te = machine_->tick_elision();
  os << "\"tick_elision\":{\"ticks_fired\":" << te.ticks_fired
     << ",\"ticks_elided\":" << te.ticks_elided
     << ",\"batch_updates\":" << te.batch_updates << "},\n";

  const MachineCounters& mc = machine_->counters();
  os << "\"machine_counters\":{"
     << "\"context_switches\":" << mc.context_switches
     << ",\"wakeup_preemptions\":" << mc.wakeup_preemptions
     << ",\"tick_preemptions\":" << mc.tick_preemptions
     << ",\"migrations\":" << mc.migrations << ",\"wakeups\":" << mc.wakeups
     << ",\"forks\":" << mc.forks << ",\"exits\":" << mc.exits
     << ",\"pickcpu_scans\":" << mc.pickcpu_scans
     << ",\"balance_invocations\":" << mc.balance_invocations << "},\n";

  os << "\"wakeup_latency\":";
  AppendHistogramJson(os, wakeup_latency_);
  os << ",\n\"fork_latency\":";
  AppendHistogramJson(os, fork_latency_);
  os << ",\n";

  // Windowed tail percentiles of the wakeup latency over simulated time.
  os << "\"wakeup_tail_series\":" << wakeup_tail_.ToJson() << ",\n";

  // Declarative SLO verdicts, present only when the spec declared
  // objectives (ExperimentSpec::slo).
  if (slo_verdicts != nullptr) {
    os << "\"slo\":" << SloVerdictsJson(*slo_verdicts) << ",\n";
  }

  // Per-thread latency summaries, sorted by thread id for diffability.
  std::vector<ThreadId> tids;
  tids.reserve(per_thread_wakeup_.size());
  for (const auto& [tid, hist] : per_thread_wakeup_) {
    tids.push_back(tid);
  }
  std::sort(tids.begin(), tids.end());
  os << "\"per_thread_wakeup_latency\":{";
  for (size_t i = 0; i < tids.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    os << "\n\"" << tids[i] << "\":";
    AppendHistogramJson(os, per_thread_wakeup_.at(tids[i]));
  }
  os << "\n},\n";

  os << "\"decisions\":{"
     << "\"pickcpu_total\":" << decisions_.pickcpu_total << ",\"pickcpu_by_reason\":{";
  for (int r = 0; r < kNumPickReasons; ++r) {
    if (r > 0) {
      os << ",";
    }
    os << "\"" << PickReasonName(static_cast<PickReason>(r))
       << "\":" << decisions_.pickcpu_by_reason[r];
  }
  os << "},\"pickcpu_affine_hits\":" << decisions_.pickcpu_affine_hits
     << ",\"pickcpu_cores_scanned\":" << decisions_.pickcpu_cores_scanned
     << ",\"balance_passes\":" << decisions_.balance_passes
     << ",\"balance_moved\":" << decisions_.balance_moved
     << ",\"balance_success\":" << decisions_.balance_success
     << ",\"balance_failed\":" << decisions_.balance_failed
     << ",\"steal_attempts\":" << decisions_.steal_attempts
     << ",\"steal_success\":" << decisions_.steal_success
     << ",\"preempt_checks\":" << decisions_.preempt_checks
     << ",\"preempt_fired\":" << decisions_.preempt_fired << "},\n";

  // Recent balance records: successful moves first (they are the interesting
  // ones and survive long quiet tails), then all recent attempts.
  auto append_records = [&os](const std::vector<TimedBalanceRecord>& ring, size_t head,
                              size_t cap) {
    os << "[";
    const size_t n = ring.size();
    for (size_t i = 0; i < n; ++i) {
      const TimedBalanceRecord& r =
          n < cap ? ring[i] : ring[(head + i) % n];  // chronological order
      if (i > 0) {
        os << ",";
      }
      os << "\n{\"t_ns\":" << r.t << ",\"kind\":\"" << BalanceKindName(r.rec.kind)
         << "\",\"level\":" << r.rec.level << ",\"src\":" << r.rec.src
         << ",\"dst\":" << r.rec.dst << ",\"src_load\":" << r.rec.src_load
         << ",\"dst_load\":" << r.rec.dst_load
         << ",\"imbalance_pct\":" << r.rec.imbalance_pct
         << ",\"threads_moved\":" << r.rec.threads_moved << "}";
    }
    os << "\n]";
  };
  os << "\"recent_balance_moves\":";
  append_records(recent_moves_, recent_moves_head_, options_.recent_balance_cap);
  os << ",\n\"recent_balance_passes\":";
  append_records(recent_balance_, recent_balance_head_, options_.recent_balance_cap);
  os << ",\n";

  // Per-monitor violation counts, present only when invariant monitors are
  // on the bus (src/check). Attach order is deterministic (MonitorSuite
  // constructs the monitors in a fixed order), so the JSON stays diffable.
  bool any_monitor = false;
  for (MachineObserver* o : machine_->observers().items()) {
    if (const auto* m = dynamic_cast<const InvariantMonitor*>(o)) {
      os << (any_monitor ? "," : "\"invariant_violations\":{") << "\n\"" << m->name()
         << "\":" << m->violation_count();
      any_monitor = true;
    }
  }
  if (any_monitor) {
    os << "\n},\n";
  }

  os << "\"runqueue_depth\":{";
  for (CoreId c = 0; c < machine_->num_cores(); ++c) {
    if (c > 0) {
      os << ",";
    }
    os << "\n\"core" << c << "\":[";
    const auto& pts = rq_depth_[c].points();
    for (size_t i = 0; i < pts.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << "[" << pts[i].t << "," << static_cast<int64_t>(pts[i].value) << "]";
    }
    os << "]";
  }
  os << "\n}\n}\n";
  return os.str();
}

}  // namespace schedbattle
