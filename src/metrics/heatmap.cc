#include "src/metrics/heatmap.h"

#include <algorithm>
#include <sstream>

namespace schedbattle {

CoreLoadHeatmap::CoreLoadHeatmap(Machine* machine, SimDuration period) : machine_(machine) {
  sampler_ = std::make_unique<PeriodicSampler>(machine, period, [this](SimTime t) {
    std::vector<int> counts(machine_->num_cores());
    for (CoreId c = 0; c < machine_->num_cores(); ++c) {
      counts[c] = machine_->scheduler().RunnableCountOf(c);
    }
    samples_.emplace_back(t, std::move(counts));
  });
}

SimTime CoreLoadHeatmap::TimeToBalance(int tolerance) const {
  SimTime balanced_since = -1;
  for (const auto& [t, counts] : samples_) {
    const auto [mn, mx] = std::minmax_element(counts.begin(), counts.end());
    if (*mx - *mn <= tolerance) {
      if (balanced_since < 0) {
        balanced_since = t;
      }
    } else {
      balanced_since = -1;
    }
  }
  return balanced_since;
}

std::vector<int> CoreLoadHeatmap::CountsAt(SimTime t) const {
  if (samples_.empty()) {
    return {};
  }
  const auto* best = &samples_.front();
  for (const auto& s : samples_) {
    if (std::abs(s.first - t) < std::abs(best->first - t)) {
      best = &s;
    }
  }
  return best->second;
}

std::string CoreLoadHeatmap::RenderAscii(int max_cols) const {
  if (samples_.empty()) {
    return "(no samples)\n";
  }
  const int cores = static_cast<int>(samples_.front().second.size());
  const int n = static_cast<int>(samples_.size());
  const int stride = std::max(1, n / max_cols);
  static const char kShades[] = " .:-=+*#%@";
  int maxv = 1;
  for (const auto& [t, counts] : samples_) {
    for (int v : counts) {
      maxv = std::max(maxv, v);
    }
  }
  std::ostringstream os;
  os << "threads-per-core over time (rows: cores, cols: time; scale max=" << maxv << ")\n";
  for (int c = 0; c < cores; ++c) {
    os << (c < 10 ? " " : "") << c << " |";
    for (int i = 0; i < n; i += stride) {
      const int v = samples_[i].second[c];
      const int shade = v == 0 ? 0 : 1 + std::min(8, v * 9 / (maxv + 1));
      os << kShades[shade];
    }
    os << "|\n";
  }
  return os.str();
}

std::string CoreLoadHeatmap::ToCsv() const {
  std::ostringstream os;
  os << "time_s";
  if (!samples_.empty()) {
    for (size_t c = 0; c < samples_.front().second.size(); ++c) {
      os << ",core" << c;
    }
  }
  os << "\n";
  for (const auto& [t, counts] : samples_) {
    os << ToSeconds(t);
    for (int v : counts) {
      os << "," << v;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace schedbattle
