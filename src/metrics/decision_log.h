// DecisionLog: the schedscope decision-record stream.
//
// Attaches to a Machine and captures *every* scheduling event — the five
// lifecycle events (dispatch, deschedule, wake, migrate, fork) and the three
// decision probes (pick-CPU, balance pass, preemption check) — with the
// per-decision feature vectors the probes carry (runqueue depths, placement
// keys, idle masks). The result is a KernelOracle-style dataset: the full
// provenance of a schedule, exportable as JSONL (one record per line, fixed
// key order) or a framed binary stream, both byte-deterministic for a given
// spec + seed.
//
// Capture goes through the Machine's dedicated DecisionSink slot, not the
// observer bus: compact variable-length records appended directly into
// prefaulted slabs (see decision_sink.h for the measurements). The
// bench-baseline observer-overhead gate holds the attached cost under 5%
// events/sec. This class is the dataset view over that raw
// storage: decoding, the run header, and the export formats.
#ifndef SRC_METRICS_DECISION_LOG_H_
#define SRC_METRICS_DECISION_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sched/decision_sink.h"
#include "src/sched/machine.h"

namespace schedbattle {

// One decoded decision-log record. `type` selects the active union member.
struct DecisionRecord {
  using Type = DecisionType;

  struct Lifecycle {
    ThreadId thread = kInvalidThread;
    CoreId core = kInvalidCore;       // dispatch/deschedule/wake/fork target
    CoreId from_core = kInvalidCore;  // migrate only
    char reason = 0;                  // deschedule only: P/B/X/Y
  };

  SimTime t = 0;
  Type type = Type::kDispatch;
  union {
    Lifecycle life;
    PickCpuDecision pick;
    BalancePassRecord balance;
    PreemptDecision preempt;
  };

  DecisionRecord() : life() {}
};
const char* DecisionRecordTypeName(DecisionRecord::Type type);
const char* EnqueueKindName(EnqueueKind kind);

// Run-level metadata, emitted as the first JSONL line and the binary
// header. `tickless` describes the delivery mode only — record payloads are
// modeled machine state, identical with elision on and off.
struct DecisionLogHeader {
  uint32_t schema = 1;
  std::string scheduler;
  int num_cores = 0;
  bool tickless = false;
  uint64_t seed = 0;
};

// A log parsed back from the binary framing (round-trip testing and offline
// analysis of a written dataset).
struct ParsedDecisionLog {
  DecisionLogHeader header;
  std::vector<DecisionRecord> records;
};

class DecisionLog {
 public:
  // Attaches to the machine's decision-sink slot immediately.
  explicit DecisionLog(Machine* machine);
  ~DecisionLog();
  DecisionLog(const DecisionLog&) = delete;
  DecisionLog& operator=(const DecisionLog&) = delete;

  // Stops recording (releases the machine's sink slot). Idempotent.
  void Detach();

  size_t size() const { return sink_.size(); }
  // Decodes record `i` (emission order). O(1) after a lazily-built index.
  DecisionRecord at(size_t i) const;
  DecisionLogHeader Header() const;

  // Calls `fn(const DecisionRecord&)` for every record in emission order —
  // the cheap sequential path (no index).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    DecisionSink::Reader reader(sink_);
    DecisionSink::RawRecord raw;
    while (reader.Next(&raw)) {
      fn(Decode(raw));
    }
  }

  // One JSON object per line: a header line, then every record in emission
  // order. Deterministic key order and number formatting (doubles at fixed
  // precision 6), so identical runs produce byte-identical output.
  std::string ToJsonl(size_t max_records = SIZE_MAX) const;
  // Writes ToJsonl (or the binary framing with binary=true) to `path`.
  bool WriteFile(const std::string& path, bool binary = false) const;

  // Framed little-endian binary: magic "SBDL", header, then fixed-width
  // records. Round-trips exactly through ParseBinary.
  std::vector<uint8_t> ToBinary() const;
  static bool ParseBinary(const std::vector<uint8_t>& bytes, ParsedDecisionLog* out);

 private:
  static DecisionRecord Decode(const DecisionSink::RawRecord& raw);

  Machine* machine_;
  bool attached_ = false;
  DecisionSink sink_;
};

}  // namespace schedbattle

#endif  // SRC_METRICS_DECISION_LOG_H_
