#include "src/metrics/timeseries.h"

namespace schedbattle {

double TimeSeries::ValueAt(SimTime t) const {
  double last = 0.0;
  for (const TimePoint& p : points_) {
    if (p.t > t) {
      break;
    }
    last = p.value;
  }
  return last;
}

PeriodicSampler::PeriodicSampler(Machine* machine, SimDuration period,
                                 std::function<void(SimTime)> fn)
    : machine_(machine), period_(period), fn_(std::move(fn)) {
  Arm();
}

PeriodicSampler::~PeriodicSampler() { Stop(); }

void PeriodicSampler::Stop() {
  if (!stopped_) {
    stopped_ = true;
    machine_->engine().Cancel(event_);
  }
}

void PeriodicSampler::Arm() {
  event_ = machine_->engine().After(period_, [this] {
    if (stopped_) {
      return;
    }
    machine_->CatchUpTicks();  // samples must see settled tick accounting
    fn_(machine_->now());
    Arm();
  });
}

}  // namespace schedbattle
