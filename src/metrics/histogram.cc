#include "src/metrics/histogram.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace schedbattle {

// ---- LogHistogram ----

int LogHistogram::BucketOf(SimDuration value) {
  if (value < 0) {
    value = 0;
  }
  const uint64_t v = static_cast<uint64_t>(value);
  if (v < kSubBuckets) {
    return static_cast<int>(v);  // exact buckets below one octave of sub-buckets
  }
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - 5;  // log2(kSubBuckets)
  const int sub = static_cast<int>((v >> shift) & (kSubBuckets - 1));
  return (msb - 4) * kSubBuckets + sub;
}

SimDuration LogHistogram::BucketLowerBound(int bucket) {
  if (bucket < kSubBuckets) {
    return bucket;
  }
  const int msb = bucket / kSubBuckets + 4;
  const int sub = bucket % kSubBuckets;
  const int shift = msb - 5;
  return ((static_cast<int64_t>(1) << 5 | sub)) << shift;
}

void LogHistogram::Record(SimDuration value) {
  if (buckets_.empty()) {
    buckets_.assign(kNumBuckets, 0);
  }
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += static_cast<double>(value);
  ++buckets_[BucketOf(value)];
}

double LogHistogram::Mean() const { return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0; }

SimDuration LogHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (!(p > 0.0)) {
    return min();
  }
  if (p >= 100.0) {
    return max();
  }
  // Nearest-rank over buckets: find the bucket holding the ceil(p/100*n)-th
  // sample, report its lower bound (clamped into [min, max]).
  const double frank = p / 100.0 * static_cast<double>(count_);
  uint64_t rank = static_cast<uint64_t>(frank);
  if (static_cast<double>(rank) != frank) {
    ++rank;
  }
  if (rank == 0) {
    rank = 1;
  }
  uint64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      const SimDuration lo = BucketLowerBound(b);
      if (lo < min_) {
        return min_;
      }
      return lo < max_ ? lo : max_;
    }
  }
  return max_;
}

void LogHistogram::Clear() {
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
  buckets_.clear();
}

// ---- LatencyHistogram ----

void LatencyHistogram::Record(SimDuration value) {
  if (count_ == 0 || value < min_) {
    min_ = value;
  }
  if (count_ == 0 || value > max_) {
    max_ = value;
  }
  ++count_;
  sum_ += value;
  if (count_ <= kExactSampleCap) {
    samples_.push_back(value);
    sorted_ = false;
    return;
  }
  if (!samples_.empty()) {
    // First record past the cap: fold every retained sample into the log
    // buckets and release the vector (bounded memory from here on).
    for (SimDuration s : samples_) {
      spill_.Record(s);
    }
    samples_.clear();
    samples_.shrink_to_fit();
    sorted_ = true;
  }
  spill_.Record(value);
}

void LatencyHistogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

SimDuration LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0;
  }
  if (!exact()) {
    return spill_.Percentile(p);
  }
  SortIfNeeded();
  // Clamp before any arithmetic: casting a NaN or negative double to size_t
  // is undefined behavior (the previous implementation did exactly that for
  // out-of-range p).
  if (!(p > 0.0)) {  // NaN compares false, mapping NaN -> min()
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  // Nearest-rank: smallest index idx with (idx + 1) / n >= p / 100.
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  size_t idx = static_cast<size_t>(rank);
  if (static_cast<double>(idx) != rank) {
    ++idx;  // ceil for fractional ranks
  }
  idx = idx > 0 ? idx - 1 : 0;
  return samples_[std::min(idx, samples_.size() - 1)];
}

void LatencyHistogram::Clear() {
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0;
  samples_.clear();
  samples_.shrink_to_fit();
  sorted_ = true;
  spill_.Clear();
}

}  // namespace schedbattle
