#include "src/metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace schedbattle {

void LatencyHistogram::Record(SimDuration value) {
  samples_.push_back(value);
  sorted_ = false;
}

void LatencyHistogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

SimDuration LatencyHistogram::min() const {
  if (samples_.empty()) {
    return 0;
  }
  SortIfNeeded();
  return samples_.front();
}

SimDuration LatencyHistogram::max() const {
  if (samples_.empty()) {
    return 0;
  }
  SortIfNeeded();
  return samples_.back();
}

double LatencyHistogram::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

SimDuration LatencyHistogram::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), SimDuration{0});
}

SimDuration LatencyHistogram::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  SortIfNeeded();
  // Clamp before any arithmetic: casting a NaN or negative double to size_t
  // is undefined behavior (the previous implementation did exactly that for
  // out-of-range p).
  if (!(p > 0.0)) {  // NaN compares false, mapping NaN -> min()
    return samples_.front();
  }
  if (p >= 100.0) {
    return samples_.back();
  }
  // Nearest-rank: smallest index idx with (idx + 1) / n >= p / 100.
  const double rank = p / 100.0 * static_cast<double>(samples_.size());
  size_t idx = static_cast<size_t>(rank);
  if (static_cast<double>(idx) != rank) {
    ++idx;  // ceil for fractional ranks
  }
  idx = idx > 0 ? idx - 1 : 0;
  return samples_[std::min(idx, samples_.size() - 1)];
}

void LatencyHistogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

}  // namespace schedbattle
