#include "src/metrics/histogram.h"

#include <algorithm>
#include <cassert>
#include <numeric>

namespace schedbattle {

void LatencyHistogram::Record(SimDuration value) {
  samples_.push_back(value);
  sorted_ = false;
}

void LatencyHistogram::SortIfNeeded() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

SimDuration LatencyHistogram::min() const {
  if (samples_.empty()) {
    return 0;
  }
  SortIfNeeded();
  return samples_.front();
}

SimDuration LatencyHistogram::max() const {
  if (samples_.empty()) {
    return 0;
  }
  SortIfNeeded();
  return samples_.back();
}

double LatencyHistogram::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  const double sum = std::accumulate(samples_.begin(), samples_.end(), 0.0);
  return sum / static_cast<double>(samples_.size());
}

SimDuration LatencyHistogram::Percentile(double p) const {
  if (samples_.empty()) {
    return 0;
  }
  SortIfNeeded();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t idx = static_cast<size_t>(rank + 0.5);
  return samples_[std::min(idx, samples_.size() - 1)];
}

void LatencyHistogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

}  // namespace schedbattle
