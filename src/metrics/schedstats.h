// SchedStats: the scheduler-decision statistics registry (the simulator's
// answer to Linux's /proc/schedstat + tracepoints).
//
// Attaches to a Machine through the observer bus and aggregates, per run:
//   - wakeup-to-dispatch latency histograms (global and per thread) and a
//     fork-to-first-dispatch histogram,
//   - a per-core runqueue-depth timeseries (periodically sampled),
//   - decision counters fed by the provenance probes: placement decisions by
//     reason, balance passes/moves/steal successes, preemption checks fired,
//   - bounded rings of recent balance-pass records (all attempts, and
//     successful moves separately so they survive long quiet tails).
//
// The whole registry exports as one deterministic JSON snapshot (ToJson)
// that is diffable across runs and consumable by bench/* and external tools.
#ifndef SRC_METRICS_SCHEDSTATS_H_
#define SRC_METRICS_SCHEDSTATS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/metrics/slo.h"
#include "src/metrics/timeseries.h"
#include "src/sched/machine.h"

namespace schedbattle {

// Aggregate counts of the decision probes.
struct DecisionCounters {
  uint64_t pickcpu_total = 0;
  uint64_t pickcpu_by_reason[kNumPickReasons] = {};
  uint64_t pickcpu_affine_hits = 0;
  uint64_t pickcpu_cores_scanned = 0;
  uint64_t balance_passes = 0;   // pull/steal attempts (a source was chosen)
  uint64_t balance_moved = 0;    // threads moved in total
  uint64_t balance_success = 0;  // passes that moved >= 1 thread
  uint64_t balance_failed = 0;   // passes that moved nothing
  uint64_t steal_attempts = 0;   // idle-steal subset of the above
  uint64_t steal_success = 0;
  uint64_t preempt_checks = 0;
  uint64_t preempt_fired = 0;
};

class SchedStats : public MachineObserver {
 public:
  struct Options {
    // Sampling period of the per-core runqueue-depth timeseries.
    SimDuration rq_sample_period = Milliseconds(10);
    // Capacity of each recent-balance-record ring.
    size_t recent_balance_cap = 128;
    // Window of the wakeup-latency tail time series (p50/p99/p999 per
    // window of simulated time).
    SimDuration tail_window = Milliseconds(100);
  };

  // Attaches to the machine's observer bus and starts the periodic
  // runqueue-depth sampler.
  explicit SchedStats(Machine* machine) : SchedStats(machine, Options()) {}
  SchedStats(Machine* machine, Options options);
  ~SchedStats() override;
  SchedStats(const SchedStats&) = delete;
  SchedStats& operator=(const SchedStats&) = delete;

  // Stops recording: detaches from the bus and stops the sampler.
  void Detach();

  // ---- MachineObserver ----
  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override;
  void OnWake(SimTime now, const SimThread& thread, CoreId target) override;
  void OnFork(SimTime now, const SimThread& thread, CoreId target) override;
  void OnPickCpu(SimTime now, const PickCpuDecision& decision) override;
  void OnBalancePass(SimTime now, const BalancePassRecord& pass) override;
  void OnPreempt(SimTime now, const PreemptDecision& decision) override;

  // ---- accessors (for tests and benches) ----
  const LatencyHistogram& wakeup_latency() const { return wakeup_latency_; }
  const LatencyHistogram& fork_latency() const { return fork_latency_; }
  // Per-thread wakeup latency; nullptr if the thread never completed a
  // wake->dispatch pair.
  const LatencyHistogram* wakeup_latency_of(ThreadId id) const;
  // Windowed wakeup-latency tail percentiles over simulated time.
  const WindowedTailSeries& wakeup_tail() const { return wakeup_tail_; }
  const TimeSeries& runqueue_depth(CoreId core) const { return rq_depth_[core]; }
  const DecisionCounters& decisions() const { return decisions_; }
  struct TimedBalanceRecord {
    SimTime t;
    BalancePassRecord rec;
  };
  const std::vector<TimedBalanceRecord>& recent_balance() const { return recent_balance_; }
  const std::vector<TimedBalanceRecord>& recent_moves() const { return recent_moves_; }

  // One JSON snapshot of everything above. Deterministic key order; all
  // durations in nanoseconds. The overload taking SLO verdicts additionally
  // emits an "slo" section with per-objective pass/fail.
  std::string ToJson() const { return ToJson(nullptr); }
  std::string ToJson(const std::vector<SloVerdict>* slo_verdicts) const;

 private:
  void SampleRunqueues(SimTime now);
  void PushRecent(std::vector<TimedBalanceRecord>* ring, SimTime now,
                  const BalancePassRecord& rec);

  Machine* machine_;
  Options options_;
  bool attached_ = false;
  std::unique_ptr<PeriodicSampler> sampler_;

  LatencyHistogram wakeup_latency_;
  LatencyHistogram fork_latency_;
  WindowedTailSeries wakeup_tail_;
  std::unordered_map<ThreadId, LatencyHistogram> per_thread_wakeup_;
  // Threads with a wake (or fork) not yet followed by a dispatch.
  std::unordered_map<ThreadId, SimTime> pending_wake_;
  std::unordered_map<ThreadId, SimTime> pending_fork_;

  std::vector<TimeSeries> rq_depth_;  // one per core

  DecisionCounters decisions_;
  std::vector<TimedBalanceRecord> recent_balance_;  // ring, oldest dropped
  std::vector<TimedBalanceRecord> recent_moves_;    // ring of moved>0 records
  size_t recent_balance_head_ = 0;
  size_t recent_moves_head_ = 0;
};

}  // namespace schedbattle

#endif  // SRC_METRICS_SCHEDSTATS_H_
