#include "src/topo/topology.h"

#include <cassert>
#include <sstream>

namespace schedbattle {

CpuTopology::CpuTopology(const TopologyConfig& config)
    : config_(config), num_cores_(config.total_cores()) {
  assert(num_cores_ > 0);
  node_of_.resize(num_cores_);
  llc_of_.resize(num_cores_);
  smt_of_.resize(num_cores_);

  const int cores_per_node = config.llcs_per_node * config.cores_per_llc * config.smt_per_core;
  const int cores_per_llc_group = config.cores_per_llc * config.smt_per_core;
  for (CoreId c = 0; c < num_cores_; ++c) {
    node_of_[c] = c / cores_per_node;
    llc_of_[c] = c / cores_per_llc_group;
    smt_of_[c] = c / config.smt_per_core;
  }

  const int num_levels = static_cast<int>(TopoLevel::kMachine) + 1;
  groups_.resize(num_levels);
  group_index_.resize(num_levels);
  for (int level = 0; level < num_levels; ++level) {
    group_index_[level].resize(num_cores_);
  }

  auto build_level = [&](TopoLevel level, const std::vector<int>& group_of) {
    const int li = static_cast<int>(level);
    int max_group = 0;
    for (CoreId c = 0; c < num_cores_; ++c) {
      max_group = std::max(max_group, group_of[c]);
    }
    groups_[li].resize(max_group + 1);
    for (CoreId c = 0; c < num_cores_; ++c) {
      groups_[li][group_of[c]].push_back(c);
      group_index_[li][c] = group_of[c];
    }
  };

  std::vector<int> self(num_cores_);
  std::vector<int> all(num_cores_, 0);
  for (CoreId c = 0; c < num_cores_; ++c) {
    self[c] = c;
  }
  build_level(TopoLevel::kCore, self);
  build_level(TopoLevel::kSmt, smt_of_);
  build_level(TopoLevel::kLlc, llc_of_);
  build_level(TopoLevel::kNode, node_of_);
  build_level(TopoLevel::kMachine, all);

  assert(num_cores_ <= CpuSet::kMaxCpus && "topology exceeds CpuSet::kMaxCpus");
  group_mask_.resize(num_levels);
  for (int level = 0; level < num_levels; ++level) {
    group_mask_[level].assign(num_cores_, CpuSet());
    for (const auto& group : groups_[level]) {
      CpuSet mask;
      for (CoreId c : group) {
        mask.Set(c);
      }
      for (CoreId c : group) {
        group_mask_[level][c] = mask;
      }
    }
  }
}

CpuTopology CpuTopology::Opteron6172() {
  TopologyConfig config;
  config.numa_nodes = 4;
  config.llcs_per_node = 1;
  config.cores_per_llc = 8;
  config.smt_per_core = 1;
  return CpuTopology(config);
}

CpuTopology CpuTopology::I7_3770() {
  TopologyConfig config;
  config.numa_nodes = 1;
  config.llcs_per_node = 1;
  config.cores_per_llc = 4;
  config.smt_per_core = 2;
  return CpuTopology(config);
}

CpuTopology CpuTopology::Numa1024() {
  // The datacenter-scale serving box: 1024 cores as 8 NUMA nodes of 128
  // cores, two 64-core LLC groups per node (large chiplet-style LLCs keep
  // wake placement's LLC scans wide, as in the oversubscription scenarios).
  TopologyConfig config;
  config.numa_nodes = 8;
  config.llcs_per_node = 2;
  config.cores_per_llc = 64;
  config.smt_per_core = 1;
  return CpuTopology(config);
}

CpuTopology CpuTopology::Flat(int cores) {
  TopologyConfig config;
  config.numa_nodes = 1;
  config.llcs_per_node = 1;
  config.cores_per_llc = cores;
  config.smt_per_core = 1;
  return CpuTopology(config);
}

const std::vector<CoreId>& CpuTopology::GroupOf(CoreId core, TopoLevel level) const {
  const int li = static_cast<int>(level);
  return groups_[li][group_index_[li][core]];
}

const std::vector<std::vector<CoreId>>& CpuTopology::GroupsAt(TopoLevel level) const {
  return groups_[static_cast<int>(level)];
}

TopoLevel CpuTopology::CommonLevel(CoreId a, CoreId b) const {
  if (a == b) {
    return TopoLevel::kCore;
  }
  if (smt_of_[a] == smt_of_[b]) {
    return TopoLevel::kSmt;
  }
  if (llc_of_[a] == llc_of_[b]) {
    return TopoLevel::kLlc;
  }
  if (node_of_[a] == node_of_[b]) {
    return TopoLevel::kNode;
  }
  return TopoLevel::kMachine;
}

std::string CpuTopology::Describe() const {
  std::ostringstream os;
  os << num_cores_ << " cores: " << config_.numa_nodes << " NUMA node(s) x "
     << config_.llcs_per_node << " LLC(s) x " << config_.cores_per_llc << " core(s) x "
     << config_.smt_per_core << " SMT";
  return os.str();
}

}  // namespace schedbattle
