// Hardware topology model.
//
// Both schedulers under study consult the machine topology:
//   - CFS builds a hierarchy of scheduling domains (SMT -> LLC -> NUMA) and
//     balances more aggressively between "close" cores than "remote" ones.
//   - ULE walks a cpu_topo-style tree in sched_pickcpu and in idle stealing,
//     climbing from the most-affine group outwards.
//
// We model a machine as a three-level tree: NUMA nodes, LLC groups inside a
// node, and SMT siblings inside an LLC group (SMT width 1 by default; the
// paper's AMD Opteron 6172 has no SMT). The default configuration matches the
// paper's evaluation machine: 32 cores in 4 NUMA nodes of 8 cores each, one
// LLC per node.
#ifndef SRC_TOPO_TOPOLOGY_H_
#define SRC_TOPO_TOPOLOGY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/topo/cpuset.h"

namespace schedbattle {

using CoreId = int32_t;
inline constexpr CoreId kInvalidCore = -1;

// Topology levels, innermost (most affine) first.
enum class TopoLevel : int {
  kCore = 0,  // the core itself
  kSmt = 1,   // SMT siblings (same physical core)
  kLlc = 2,   // cores sharing a last-level cache
  kNode = 3,  // cores in the same NUMA node
  kMachine = 4,
};

struct TopologyConfig {
  int numa_nodes = 4;
  int llcs_per_node = 1;
  int cores_per_llc = 8;
  int smt_per_core = 1;  // hardware threads per physical core

  int total_cores() const { return numa_nodes * llcs_per_node * cores_per_llc * smt_per_core; }
};

class CpuTopology {
 public:
  explicit CpuTopology(const TopologyConfig& config);

  // The paper's evaluation machine: AMD Opteron 6172, 32 cores, 4 NUMA nodes.
  static CpuTopology Opteron6172();
  // The paper's secondary machine: 8-core Intel i7-3770 desktop (4 cores x 2 SMT).
  static CpuTopology I7_3770();
  // Datacenter-scale serving box: 1024 cores, 8 NUMA nodes x 2 LLCs x 64.
  static CpuTopology Numa1024();
  // A flat machine: n cores, one node, one LLC. Handy for unit tests.
  static CpuTopology Flat(int cores);

  int num_cores() const { return num_cores_; }
  const TopologyConfig& config() const { return config_; }

  int NodeOf(CoreId core) const { return node_of_[core]; }
  int LlcOf(CoreId core) const { return llc_of_[core]; }
  int SmtGroupOf(CoreId core) const { return smt_of_[core]; }

  bool SameNode(CoreId a, CoreId b) const { return node_of_[a] == node_of_[b]; }
  bool SharesLlc(CoreId a, CoreId b) const { return llc_of_[a] == llc_of_[b]; }
  bool SmtSiblings(CoreId a, CoreId b) const { return smt_of_[a] == smt_of_[b]; }

  // Cores in the group containing `core` at `level` (includes `core` itself).
  const std::vector<CoreId>& GroupOf(CoreId core, TopoLevel level) const;

  // All groups at a level (each group is a list of cores).
  const std::vector<std::vector<CoreId>>& GroupsAt(TopoLevel level) const;

  // Bitmask of GroupOf(core, level) — bit c set iff core c is in the group.
  // Precomputed for any machine size up to CpuSet::kMaxCpus. Fast-path
  // placement code combines these with the machine's idle/load masks so
  // "first idle core in my LLC" is a ctz, not a scan.
  const CpuSet& GroupMask(CoreId core, TopoLevel level) const {
    return group_mask_[static_cast<int>(level)][core];
  }

  // The innermost level strictly above kCore at which `a` and `b` share a
  // group (kSmt, kLlc, kNode or kMachine). a == b returns kCore.
  TopoLevel CommonLevel(CoreId a, CoreId b) const;

  // Number of cores sharing an LLC with `core` (including itself); CFS uses
  // this as the fan-out factor in its wake_wide heuristic.
  int LlcSize(CoreId core) const { return static_cast<int>(GroupOf(core, TopoLevel::kLlc).size()); }

  std::string Describe() const;

 private:
  TopologyConfig config_;
  int num_cores_;
  std::vector<int> node_of_;
  std::vector<int> llc_of_;
  std::vector<int> smt_of_;
  // groups_[level] = list of groups, each a sorted core list.
  std::vector<std::vector<std::vector<CoreId>>> groups_;
  // group_index_[level][core] = index of the core's group at that level.
  std::vector<std::vector<int>> group_index_;
  // group_mask_[level][core] = bitmask of the core's group.
  std::vector<std::vector<CpuSet>> group_mask_;
};

}  // namespace schedbattle

#endif  // SRC_TOPO_TOPOLOGY_H_
