// CpuSet: fixed-size CPU bitmask for machines of up to kMaxCpus cores.
//
// Replaces the bare uint64_t masks (Machine::idle_mask_, ULE's
// zero_load/queued/steal_source masks, CpuTopology::GroupMask) that silently
// capped the simulator at 64 cores: on a >64-core topology, bits for cores
// 64+ aliased into the low word and placement/steal decisions were wrong.
// The datacenter-scale scenarios (1024-core NUMA, loadbalance-4096) need the
// full width, and the sharded engine needs word-aligned per-shard ownership
// of mask regions (each shard only writes the words covering its own cores,
// so parallel window drains never race on a shared word).
//
// Design notes:
//   - Plain value type, 16 x uint64_t words. All hot operations (&, |,
//     FirstSet, Count) are straight word loops the compiler unrolls; the
//     O(1) placement fast paths keep their shape (mask AND mask, then ctz).
//   - FirstSet/NextSet give the ctz idiom; CountThrough gives the "rank of
//     core c inside this mask" popcount idiom used for modeled scan costs.
//   - low64() exists only for the decision-record wire format, which keeps
//     its uint64_t idle-mask field (documented as truncated to cores 0-63).
#ifndef SRC_TOPO_CPUSET_H_
#define SRC_TOPO_CPUSET_H_

#include <bit>
#include <cstdint>

namespace schedbattle {

class CpuSet {
 public:
  static constexpr int kMaxCpus = 1024;
  static constexpr int kWords = kMaxCpus / 64;

  constexpr CpuSet() : w_{} {}
  // Low-word constructor (cores 0-63), for compatibility with the old
  // uint64_t CpuMask and for tests that spell masks as literals.
  explicit constexpr CpuSet(uint64_t low_bits) : w_{} { w_[0] = low_bits; }

  static constexpr CpuSet AllOf(int num_cores) {
    CpuSet s;
    int full = num_cores / 64;
    for (int i = 0; i < full; ++i) {
      s.w_[i] = ~0ULL;
    }
    if (full < kWords && (num_cores % 64) != 0) {
      s.w_[full] = (1ULL << (num_cores % 64)) - 1;
    }
    return s;
  }
  static constexpr CpuSet Single(int core) {
    CpuSet s;
    s.w_[core >> 6] = 1ULL << (core & 63);
    return s;
  }

  constexpr bool Test(int core) const { return (w_[core >> 6] >> (core & 63)) & 1; }
  constexpr void Set(int core) { w_[core >> 6] |= 1ULL << (core & 63); }
  constexpr void Clear(int core) { w_[core >> 6] &= ~(1ULL << (core & 63)); }

  constexpr bool Empty() const {
    uint64_t acc = 0;
    for (int i = 0; i < kWords; ++i) {
      acc |= w_[i];
    }
    return acc == 0;
  }

  constexpr int Count() const {
    int n = 0;
    for (int i = 0; i < kWords; ++i) {
      n += std::popcount(w_[i]);
    }
    return n;
  }

  // Index of the lowest set bit, or -1 if empty (the ctz fast-path idiom).
  constexpr int FirstSet() const {
    for (int i = 0; i < kWords; ++i) {
      if (w_[i] != 0) {
        return i * 64 + std::countr_zero(w_[i]);
      }
    }
    return -1;
  }

  // Lowest set bit with index > from, or -1 (iteration: for (c = FirstSet();
  // c >= 0; c = NextSet(c))).
  constexpr int NextSet(int from) const {
    int i = (from + 1) >> 6;
    if (i >= kWords) {
      return -1;
    }
    uint64_t word = w_[i] & (~0ULL << ((from + 1) & 63));
    while (true) {
      if (word != 0) {
        return i * 64 + std::countr_zero(word);
      }
      if (++i >= kWords) {
        return -1;
      }
      word = w_[i];
    }
  }

  // Number of set bits with index <= core — the "how many candidates a
  // literal scan would have examined up to and including this hit" rank used
  // to charge modeled scan costs.
  constexpr int CountThrough(int core) const {
    const int word = core >> 6;
    int n = 0;
    for (int i = 0; i < word; ++i) {
      n += std::popcount(w_[i]);
    }
    const int off = core & 63;
    const uint64_t below = off == 63 ? ~0ULL : ((2ULL << off) - 1);
    return n + std::popcount(w_[word] & below);
  }

  constexpr CpuSet& operator&=(const CpuSet& o) {
    for (int i = 0; i < kWords; ++i) {
      w_[i] &= o.w_[i];
    }
    return *this;
  }
  constexpr CpuSet& operator|=(const CpuSet& o) {
    for (int i = 0; i < kWords; ++i) {
      w_[i] |= o.w_[i];
    }
    return *this;
  }
  friend constexpr CpuSet operator&(CpuSet a, const CpuSet& b) { return a &= b; }
  friend constexpr CpuSet operator|(CpuSet a, const CpuSet& b) { return a |= b; }

  // this AND NOT other (there is no operator~: complements of a fixed-width
  // set are almost always a bug — they include cores the machine lacks).
  constexpr CpuSet AndNot(const CpuSet& o) const {
    CpuSet r;
    for (int i = 0; i < kWords; ++i) {
      r.w_[i] = w_[i] & ~o.w_[i];
    }
    return r;
  }
  constexpr CpuSet Without(int core) const {
    CpuSet r = *this;
    r.Clear(core);
    return r;
  }

  constexpr bool Intersects(const CpuSet& o) const {
    uint64_t acc = 0;
    for (int i = 0; i < kWords; ++i) {
      acc |= w_[i] & o.w_[i];
    }
    return acc != 0;
  }

  constexpr bool operator==(const CpuSet& o) const = default;

  // Cores 0-63 only; used by the decision-record wire format, whose
  // idle-mask field stays a uint64_t (documented truncation on big boxes).
  constexpr uint64_t low64() const { return w_[0]; }
  constexpr uint64_t word(int i) const { return w_[i]; }
  constexpr void set_word(int i, uint64_t v) { w_[i] = v; }

 private:
  uint64_t w_[kWords];
};

}  // namespace schedbattle

#endif  // SRC_TOPO_CPUSET_H_
