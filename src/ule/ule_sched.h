// UleScheduler: the FreeBSD 11.1 ULE scheduler (paper Section 2.2), as
// ported in the paper: the running thread is left conceptually "on" the core
// rather than in the runqueue, and the load balancer never migrates a
// running thread.
//
//  - Per-core scheduling: interactive vs batch classification by the
//    interactivity penalty (< 30 interactive), interactive threads have
//    absolute priority (and batch threads may starve unboundedly);
//    timeslice = 10 stathz ticks (78ms) divided by the core's load, floor
//    one tick; full preemption disabled.
//  - Load: the runnable thread count, nothing else.
//  - Load balancing: affinity-aware wake placement (sched_pickcpu) that may
//    scan all cores up to three times; a periodic balancer run by core 0
//    every 0.5-1.5s moving one thread per donor/receiver pair; idle cores
//    steal at most one thread, climbing the topology.
#ifndef SRC_ULE_ULE_SCHED_H_
#define SRC_ULE_ULE_SCHED_H_

#include <vector>

#include "src/sched/machine.h"
#include "src/sched/sched_class.h"
#include "src/ule/tdq.h"

namespace schedbattle {

struct UleTunables {
  // Timeslice in stathz ticks when a single thread runs (paper: 10 ticks =
  // 78ms); divided by the core's load, floor 1 tick.
  int slice_ticks = 10;
  // The stathz tick (paper: 1/127th of a second).
  SimDuration tick = kSecond / 127;

  // Periodic balancer period bounds (paper: 500-1500ms, chosen randomly).
  SimDuration balance_min = Milliseconds(500);
  SimDuration balance_max = Milliseconds(1500);
  bool balance_enabled = true;  // the FreeBSD bug [1] left this effectively off;
                                // the paper (and we) run with the fix applied
  bool steal_enabled = true;    // idle stealing (tdq_idled)
  int steal_thresh = 2;         // minimum load to steal from

  // Cache-affinity window per topology level (sched_affinity ticks); a
  // thread is considered affine to a core at level L if it last ran there
  // within (level+1) * this.
  SimDuration affinity_window = Milliseconds(1);

  // Full preemption is disabled in ULE (paper: "only kernel threads can
  // preempt others"); the ablation_preemption bench enables it.
  bool wakeup_preemption = false;

  // Ablation from paper Section 6.3: replace sched_pickcpu by "return the
  // CPU the thread previously ran on".
  bool pickcpu_return_prev = false;

  // Simulated cost per core examined by sched_pickcpu (the source of the
  // paper's "13% of all CPU cycles spent on scanning cores" for sysbench).
  SimDuration pickcpu_scan_cost_local = Nanoseconds(90);
  SimDuration pickcpu_scan_cost_remote = Nanoseconds(850);
  SimDuration balance_cost_per_core = Nanoseconds(150);

  // Use incrementally maintained zero-load/queued bitmasks to answer
  // sched_pickcpu and idle-steal candidate queries in O(1) where possible.
  // Pure implementation accelerator: decisions and modeled scan costs are
  // identical either way (the determinism tests assert it); off switches
  // back to the literal scan loops for differential checking.
  bool placement_fast_path = true;
};

class UleScheduler : public Scheduler {
 public:
  explicit UleScheduler(UleTunables tunables = {});
  ~UleScheduler() override;

  std::string_view name() const override { return "ule"; }
  void Attach(Machine* machine) override;
  void Start() override;

  void TaskNew(SimThread* thread, SimThread* parent) override;
  void TaskExit(SimThread* thread) override;
  void ReniceTask(SimThread* thread) override;
  CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) override;
  void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) override;
  void DequeueTask(CoreId core, SimThread* thread) override;
  SimThread* PickNextTask(CoreId core) override;
  void PutPrevTask(CoreId core, SimThread* thread) override;
  void OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) override;
  void YieldTask(CoreId core, SimThread* thread) override;
  void TaskTick(CoreId core, SimThread* current) override;
  void CheckPreemptWakeup(CoreId core, SimThread* woken) override;
  void OnCoreIdle(CoreId core) override;
  SimDuration TickPeriod() const override { return tun_.tick; }
  // ULE idle ticks are NOT no-ops: tdq_idled polls for stealable work and
  // charges the modeled scan cost every stathz tick, so elided idle ticks
  // must be replayed, not fast-forwarded.
  SimTime TickBoundary(CoreId core, const SimThread* current,
                       SimTime next_tick) const override;

  // ULE's busy-core tick is core-local (interactivity/%cpu bookkeeping, slice
  // expiry against the core's own tdq); every thread is independent, so
  // windows are always safe. Idle ticks run the steal path (cross-core), so
  // they are routed to the global lane via TickMayCross.
  bool ShardParallelSafe() const override { return true; }
  bool TickMayCross(CoreId core) const override;

  double LoadOf(CoreId core) const override { return tdqs_[core].load; }
  int RunnableCountOf(CoreId core) const override { return tdqs_[core].load; }
  int InteractivityPenaltyOf(const SimThread* thread) const override;

  const UleTunables& tunables() const { return tun_; }
  const Tdq& tdq(CoreId core) const { return tdqs_[core]; }

 private:
  // Refreshes a thread's ULE priority from its current history.
  void RecomputePriority(SimThread* t);

  int RunningPriOf(CoreId core) const;

  // ---- pickcpu.cc ----
  // `reason` receives the placement rationale (OnPickCpu provenance).
  CoreId PickCpu(SimThread* t, CoreId origin, PickReason* reason);
  CoreId SelectTaskRqImpl(SimThread* thread, CoreId origin, EnqueueKind kind,
                          PickReason* reason);
  bool AffineAt(const SimThread* t, CoreId core, TopoLevel level) const;
  // Lowest-load allowed core in `cores` whose lowpri is worse (numerically
  // higher) than `pri`; kInvalidCore if none. Adds to *scanned. `group_mask`
  // is the bitmask of `cores` (CpuTopology::GroupMask), used by the O(1)
  // zero-load shortcut: an idle-load core is always the scan's answer.
  CoreId LowestLoadWhereRunnable(const std::vector<CoreId>& cores, const CpuSet& group_mask,
                                 const SimThread* t, int pri, int* scanned) const;
  CoreId LowestLoad(const std::vector<CoreId>& cores, const CpuSet& group_mask,
                    const SimThread* t, int* scanned) const;

  // ---- ule_balance.cc ----
  void PeriodicBalance();
  void ArmBalance();
  // Moves one stealable thread from src to dst; returns it or nullptr.
  SimThread* StealOne(CoreId src, CoreId dst);
  bool TryIdleSteal(CoreId core);

  // Re-derives core's bits in the zero-load/queued/steal-source masks after
  // any tdq load or runqueue mutation. A bit *appearing* in the queued or
  // steal-source masks can move another core's tick boundary earlier (a busy
  // core now has a slice-expiry competitor; an idle core now has a steal
  // candidate), so those transitions re-arm any elided ticks.
  void SyncLoadMask(CoreId core) {
    const Tdq& tdq = tdqs_[core];
    if (tdq.load == 0) {
      zero_load_mask_.Set(core);
    } else {
      zero_load_mask_.Clear(core);
    }
    const bool had_queued = queued_mask_.Test(core);
    const bool has_queued = tdq.queued_count() > 0;
    if (has_queued) {
      queued_mask_.Set(core);
    } else {
      queued_mask_.Clear(core);
    }
    const bool was_source = steal_source_mask_.Test(core);
    const bool is_source = tdq.load >= tun_.steal_thresh && tdq.transferable() > 0;
    if (is_source) {
      steal_source_mask_.Set(core);
    } else {
      steal_source_mask_.Clear(core);
    }
    if (machine_ != nullptr &&
        ((is_source && !was_source) || (has_queued && !had_queued))) {
      machine_->RearmElidedTicks();
    }
  }

  Machine* machine_ = nullptr;
  UleTunables tun_;
  std::vector<Tdq> tdqs_;
  // Incremental aggregates over tdqs_: bit c set iff tdqs_[c].load == 0 /
  // tdqs_[c] has queued (stealable) threads. See UleTunables::placement_fast_path.
  CpuSet zero_load_mask_;
  CpuSet queued_mask_;
  // Bit c set iff core c satisfies the idle-steal candidate condition
  // (load >= steal_thresh with something transferable); mirrors the scan in
  // TryIdleSteal so TickBoundary can tell when an idle core's tick is inert.
  CpuSet steal_source_mask_;
  EventHandle balance_event_;
};

}  // namespace schedbattle

#endif  // SRC_ULE_ULE_SCHED_H_
