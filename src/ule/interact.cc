#include "src/ule/interact.h"

#include <algorithm>

namespace schedbattle {

int UleInteractScore(const UleInteract& hist) {
  if (hist.runtime > hist.slptime) {
    const SimDuration div = std::max<SimDuration>(1, hist.runtime / kInteractHalf);
    return kInteractHalf +
           (kInteractHalf - static_cast<int>(std::min<SimDuration>(hist.slptime / div,
                                                                   kInteractHalf)));
  }
  if (hist.slptime > hist.runtime) {
    const SimDuration div = std::max<SimDuration>(1, hist.slptime / kInteractHalf);
    return static_cast<int>(std::min<SimDuration>(hist.runtime / div, kInteractHalf));
  }
  // Equal (and possibly zero) run and sleep time.
  return hist.runtime != 0 ? kInteractHalf : 0;
}

void UleInteractUpdate(UleInteract* hist) {
  const SimDuration sum = hist->runtime + hist->slptime;
  if (sum < kSlpRunMax) {
    return;
  }
  if (sum > kSlpRunMax * 2) {
    // An unusual amount of history arrived at once (fork give-back or a very
    // long sleep): clamp hard, preserving which side dominates.
    if (hist->runtime > hist->slptime) {
      hist->runtime = kSlpRunMax;
      hist->slptime = 1;
    } else {
      hist->slptime = kSlpRunMax;
      hist->runtime = 1;
    }
    return;
  }
  if (sum > (kSlpRunMax / 5) * 6) {
    hist->runtime /= 2;
    hist->slptime /= 2;
    return;
  }
  hist->runtime = (hist->runtime / 5) * 4;
  hist->slptime = (hist->slptime / 5) * 4;
}

void UleInteractFork(UleInteract* child) {
  const SimDuration sum = child->runtime + child->slptime;
  if (sum > kSlpRunFork) {
    const SimDuration ratio = sum / kSlpRunFork;
    if (ratio > 0) {
      child->runtime /= ratio;
      child->slptime /= ratio;
    }
  }
}

int UleScoreWithNice(const UleInteract& hist, Nice nice) {
  return std::max(0, UleInteractScore(hist) + nice);
}

bool UleIsInteractive(const UleInteract& hist, Nice nice) {
  return UleScoreWithNice(hist, nice) < kInteractThresh;
}

}  // namespace schedbattle
