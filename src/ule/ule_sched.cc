#include "src/ule/ule_sched.h"

#include <algorithm>
#include <cassert>

namespace schedbattle {

UleScheduler::UleScheduler(UleTunables tunables) : tun_(tunables) {}

UleScheduler::~UleScheduler() {
  // The engine may outlive this scheduler; a queued balance event would
  // otherwise fire into a destroyed object.
  if (machine_ != nullptr) {
    machine_->engine().Cancel(balance_event_);
  }
}

void UleScheduler::Attach(Machine* machine) {
  machine_ = machine;
  tdqs_.resize(machine->num_cores());
  for (CoreId c = 0; c < machine->num_cores(); ++c) {
    SyncLoadMask(c);  // all cores start with load 0, nothing queued
  }
}

void UleScheduler::Start() {
  if (tun_.balance_enabled) {
    ArmBalance();
  }
}

void UleScheduler::TaskNew(SimThread* thread, SimThread* parent) {
  auto data = std::make_unique<UleTaskData>();
  // Fork inheritance (paper: "When a thread is created, it inherits the
  // runtime and sleeptime (and thus the interactivity) of its parent").
  if (parent != nullptr) {
    data->interact = UleOf(parent).interact;
    data->parent = parent;
  } else {
    data->interact.runtime = thread->parent_runtime_hint();
    data->interact.slptime = thread->parent_sleep_hint();
  }
  UleInteractFork(&data->interact);
  data->ftick = machine_->now();
  data->ltick = machine_->now();
  thread->set_sched_data(std::move(data));
  RecomputePriority(thread);
}

void UleScheduler::ReniceTask(SimThread* thread) {
  UleTaskData& data = UleOf(thread);
  if (data.queued) {
    // Reposition in the runqueues under the new priority (sched_nice).
    Tdq& tdq = tdqs_[data.tdq_cpu];
    TdqRunqRem(&tdq, thread);
    RecomputePriority(thread);
    TdqRunqAdd(&tdq, thread, /*requeue_head=*/false);
    TdqUpdateLowpri(&tdq, RunningPriOf(data.tdq_cpu));
    SyncLoadMask(data.tdq_cpu);
  } else {
    RecomputePriority(thread);
  }
}

void UleScheduler::TaskExit(SimThread* thread) {
  UleTaskData& data = UleOf(thread);
  Tdq& tdq = tdqs_[thread->cpu()];
  tdq.load -= 1;
  assert(tdq.load >= 0);
  TdqUpdateLowpri(&tdq, kPriIdle);  // the exiting thread was running
  SyncLoadMask(thread->cpu());
  // "When a thread dies, its runtime in the last 5 seconds is returned to
  // its parent. This penalizes parents that spawn batch children while being
  // interactive."
  if (data.parent != nullptr) {
    UleTaskData& parent = UleOf(data.parent);
    parent.interact.runtime += data.interact.runtime;
    UleInteractUpdate(&parent.interact);
    if (data.parent->state() != ThreadState::kDead) {
      RecomputePriority(data.parent);
    }
  }
}

void UleScheduler::RecomputePriority(SimThread* t) {
  UleTaskData& data = UleOf(t);
  data.pri = UleComputePriority(data, t->nice(), machine_->now());
}

int UleScheduler::RunningPriOf(CoreId core) const {
  SimThread* curr = machine_->CurrentOn(core);
  return curr == nullptr ? kPriIdle : UleOf(curr).pri;
}

int UleScheduler::InteractivityPenaltyOf(const SimThread* thread) const {
  // No tick catch-up here, deliberately. This hook is only called for the
  // thread being *placed* (wake/fork/requeue), never for a running one, and
  // ticks mutate only the running thread's interact accounting; the placed
  // thread's history was finalized at its own last lifecycle edge, which
  // tick-elision certification already syncs. Forcing a global CatchUpTicks
  // per observed pick replayed ticks the elision would otherwise skip —
  // measured as most of ULE's attached decision-log cost — and the
  // differential log-equivalence oracle holds without it.
  return UleInteractScore(UleOf(thread).interact);
}

SimTime UleScheduler::TickBoundary(CoreId core, const SimThread* current,
                                   SimTime next_tick) const {
  if (current == nullptr) {
    // Idle ticks only poll tdq_idled. With stealing off, or with no core
    // currently satisfying the steal candidate condition, the poll cannot
    // move a thread — it only charges the modeled scan cost, which the
    // catch-up replay reproduces exactly.
    if (!tun_.steal_enabled || steal_source_mask_.Without(core).Empty()) {
      return kTickNever;
    }
    return next_tick;
  }
  // A busy tick can act (tick_preemptions + SetNeedResched) only when slice
  // expiry finds a queued competitor; with nothing queued the expiry silently
  // refreshes the slice. Everything else the tick does (calendar advance,
  // interactivity/%CPU accounting, priority refresh) is replayable as-is.
  return tdqs_[core].queued_count() == 0 ? kTickNever : next_tick;
}

bool UleScheduler::TickMayCross(CoreId core) const {
  // Only idle ticks leave the core (tdq_idled steals from peers); the
  // busy-core tick acts purely on the core's own tdq and running thread.
  // Stealing disabled makes even idle ticks local (scan-cost charge only).
  return machine_->CurrentOn(core) == nullptr && tun_.steal_enabled;
}

void UleScheduler::EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) {
  UleTaskData& data = UleOf(thread);
  if (kind == EnqueueKind::kWakeup) {
    // sched_wakeup: credit the voluntary sleep that just ended.
    data.interact.slptime += thread->last_sleep_duration;
    UleInteractUpdate(&data.interact);
    UlePctcpuUpdate(&data, machine_->now(), 0);
  }
  RecomputePriority(thread);
  if (data.slice_remaining <= 0) {
    data.slice_remaining = std::max(1, tun_.slice_ticks / std::max(1, tdqs_[core].load + 1));
  }
  Tdq& tdq = tdqs_[core];
  TdqRunqAdd(&tdq, thread, /*requeue_head=*/false);
  tdq.load += 1;
  data.tdq_cpu = core;
  SyncLoadMask(core);
}

void UleScheduler::DequeueTask(CoreId core, SimThread* thread) {
  Tdq& tdq = tdqs_[core];
  TdqRunqRem(&tdq, thread);
  tdq.load -= 1;
  assert(tdq.load >= 0);
  TdqUpdateLowpri(&tdq, RunningPriOf(core));
  SyncLoadMask(core);
}

SimThread* UleScheduler::PickNextTask(CoreId core) {
  Tdq& tdq = tdqs_[core];
  SimThread* t = TdqChoose(&tdq);
  if (t == nullptr) {
    return nullptr;
  }
  TdqRunqRem(&tdq, t);
  UleTaskData& data = UleOf(t);
  if (data.slice_remaining <= 0) {
    data.slice_remaining = std::max(1, tun_.slice_ticks / std::max(1, tdq.load));
  }
  data.last_ran = machine_->now();
  TdqUpdateLowpri(&tdq, data.pri);
  SyncLoadMask(core);
  return t;
}

void UleScheduler::PutPrevTask(CoreId core, SimThread* thread) {
  // Preempted or slice expired: back to the tail of its FIFO (sched_switch).
  UleTaskData& data = UleOf(thread);
  data.last_ran = machine_->now();
  RecomputePriority(thread);
  Tdq& tdq = tdqs_[core];
  TdqRunqAdd(&tdq, thread, /*requeue_head=*/false);
  // load unchanged: the thread was already counted while running.
  TdqUpdateLowpri(&tdq, kPriIdle);
  data.tdq_cpu = core;
  SyncLoadMask(core);
}

void UleScheduler::OnTaskBlock(CoreId core, SimThread* thread, bool /*voluntary*/) {
  UleTaskData& data = UleOf(thread);
  data.last_ran = machine_->now();
  Tdq& tdq = tdqs_[core];
  tdq.load -= 1;
  assert(tdq.load >= 0);
  TdqUpdateLowpri(&tdq, kPriIdle);
  SyncLoadMask(core);
  (void)data;
}

void UleScheduler::YieldTask(CoreId core, SimThread* thread) {
  // sched_relinquish: requeue at the tail with a fresh slice decision later.
  UleOf(thread).slice_remaining = 0;
  PutPrevTask(core, thread);
}

void UleScheduler::TaskTick(CoreId core, SimThread* current) {
  Tdq& tdq = tdqs_[core];
  TdqCalendarTick(&tdq);
  if (current == nullptr) {
    // The idle thread keeps polling tdq_idled (sched_idletd); a successful
    // steal kicks the core through the enqueue path.
    if (tun_.steal_enabled) {
      TryIdleSteal(core);
    }
    return;
  }
  UleTaskData& data = UleOf(current);
  // sched_clock: tick-granularity runtime accounting. A thread that always
  // blocks between ticks accrues no runtime — this is why mostly-sleeping
  // database threads stay maximally interactive under ULE.
  data.interact.runtime += tun_.tick;
  UleInteractUpdate(&data.interact);
  UlePctcpuUpdate(&data, machine_->now(), tun_.tick);
  RecomputePriority(current);
  TdqUpdateLowpri(&tdq, data.pri);

  if (--data.slice_remaining <= 0) {
    // Slice end: force a reschedule; the thread goes to the back of its FIFO
    // and the best queued thread (interactive first) runs.
    if (tdq.queued_count() > 0) {
      ++machine_->counters().tick_preemptions;
      machine_->SetNeedResched(core);
    } else {
      data.slice_remaining = std::max(1, tun_.slice_ticks / std::max(1, tdq.load));
    }
  }
}

void UleScheduler::CheckPreemptWakeup(CoreId core, SimThread* woken) {
  SimThread* curr = machine_->CurrentOn(core);
  if (curr == nullptr || curr == woken) {
    return;
  }
  // Margin: how much better (numerically lower) the woken thread's priority
  // is than the running one's. Positive passes the check — but full
  // preemption is disabled in stock ULE, so `fired` also needs the tunable.
  const int64_t margin = UleOf(curr).pri - UleOf(woken).pri;
  const bool fired = tun_.wakeup_preemption && margin > 0;
  if (machine_->observing_decisions()) {
    PreemptDecision d;
    d.preemptor = woken->id();
    d.victim = curr->id();
    d.core = core;
    d.fired = fired;
    d.margin = margin;
    machine_->EmitPreempt(d);
  }
  if (fired) {
    ++machine_->counters().wakeup_preemptions;
    machine_->SetNeedResched(core);
  }
}

void UleScheduler::OnCoreIdle(CoreId core) {
  if (tun_.steal_enabled) {
    TryIdleSteal(core);
  }
}

}  // namespace schedbattle
