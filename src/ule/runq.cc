#include "src/ule/runq.h"

#include <algorithm>
#include <cassert>

namespace schedbattle {

void UleRunq::Add(SimThread* t, int idx, bool head) {
  assert(idx >= 0 && idx < kRqNqs);
  if (head) {
    queues_[idx].push_front(t);
  } else {
    queues_[idx].push_back(t);
  }
  status_ |= (1ULL << idx);
  ++size_;
}

void UleRunq::Remove(SimThread* t, int idx) {
  assert(idx >= 0 && idx < kRqNqs);
  auto& q = queues_[idx];
  auto it = std::find(q.begin(), q.end(), t);
  assert(it != q.end() && "thread not in the runq it claims");
  q.erase(it);
  if (q.empty()) {
    status_ &= ~(1ULL << idx);
  }
  --size_;
}

SimThread* UleRunq::Choose() const {
  if (status_ == 0) {
    return nullptr;
  }
  const int q = __builtin_ctzll(status_);
  return queues_[q].front();
}

SimThread* UleRunq::ChooseFrom(int start, int* idx) const {
  if (status_ == 0) {
    return nullptr;
  }
  // Rotate the bitmap so `start` becomes bit 0, then find the first set bit.
  const uint64_t rotated =
      start == 0 ? status_ : (status_ >> start) | (status_ << (kRqNqs - start));
  const int off = __builtin_ctzll(rotated);
  const int q = (start + off) % kRqNqs;
  *idx = q;
  return queues_[q].front();
}

int UleRunq::FirstSetIndex() const {
  return status_ == 0 ? kRqNqs : __builtin_ctzll(status_);
}

}  // namespace schedbattle
