// FreeBSD-style runq: 64 FIFO queues indexed by priority with a status
// bitmap (kern/kern_switch.c's struct runq).
//
// Paper, Section 2.2: "Inside the interactive and batch runqueues, threads
// are further sorted by priority. ... there is one FIFO per priority. To add
// a thread to a runqueue, the scheduler inserts the thread at the end of the
// FIFO indexed by the thread's priority. Picking a thread ... is simply done
// by taking the first thread in the highest-priority non-empty FIFO."
#ifndef SRC_ULE_RUNQ_H_
#define SRC_ULE_RUNQ_H_

#include <cstdint>
#include <deque>

#include "src/sched/thread.h"

namespace schedbattle {

inline constexpr int kRqNqs = 64;  // RQ_NQS
inline constexpr int kRqPpq = 4;   // RQ_PPQ: priorities per queue

class UleRunq {
 public:
  UleRunq() = default;

  bool empty() const { return status_ == 0; }
  int size() const { return size_; }

  // Adds to the FIFO at `idx` (tail unless head=true).
  void Add(SimThread* t, int idx, bool head = false);

  // Removes `t` from the FIFO at `idx` (it must be there).
  void Remove(SimThread* t, int idx);

  // First thread of the highest-priority (lowest index) non-empty FIFO;
  // nullptr if empty. Does not remove.
  SimThread* Choose() const;

  // Circular variant for the timeshare calendar queue: first thread at or
  // after `start` (wrapping); nullptr if empty. Sets *idx to its queue.
  SimThread* ChooseFrom(int start, int* idx) const;

  // First thread (in Choose() order) satisfying pred; for work stealing.
  template <typename Pred>
  SimThread* FindFirst(Pred pred) const {
    uint64_t bits = status_;
    while (bits != 0) {
      const int q = __builtin_ctzll(bits);
      for (SimThread* t : queues_[q]) {
        if (pred(t)) {
          return t;
        }
      }
      bits &= bits - 1;
    }
    return nullptr;
  }

  // Lowest non-empty queue index, or kRqNqs if empty.
  int FirstSetIndex() const;

 private:
  std::deque<SimThread*> queues_[kRqNqs];
  uint64_t status_ = 0;
  int size_ = 0;
};

}  // namespace schedbattle

#endif  // SRC_ULE_RUNQ_H_
