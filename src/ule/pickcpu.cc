// ULE thread placement (FreeBSD: sched_pickcpu).
//
// Paper, Section 2.2: "If the thread is considered cache affine on the last
// core it ran on, then it is placed on this core. Otherwise, ULE finds the
// highest level in the topology that is considered affine, or the entire
// machine if none is available. From there, ULE first tries to find a core
// on which the minimum priority is higher than that of this thread. If that
// fails, ULE tries again, but now on all cores of the machine. If this also
// fails, ULE simply picks the core with the lowest number of running
// threads." — and Section 6.3: "at worst, [it] may scan all cores three
// times", the source of the 13%-of-cycles overhead on sysbench.
#include <bit>
#include <cassert>
#include <limits>

#include "src/ule/ule_sched.h"

namespace schedbattle {

bool UleScheduler::AffineAt(const SimThread* t, CoreId core, TopoLevel level) const {
  const UleTaskData& data = UleOf(t);
  const CoreId last = t->last_ran_cpu();
  if (last == kInvalidCore) {
    return false;
  }
  if (machine_->topology().CommonLevel(core, last) > level) {
    return false;
  }
  // The window scales with the cache level: bigger caches stay warm longer.
  const SimDuration window = (static_cast<int>(level) + 1) * tun_.affinity_window;
  return machine_->now() - data.last_ran < window;
}

CoreId UleScheduler::LowestLoadWhereRunnable(const std::vector<CoreId>& cores,
                                             const CpuSet& group_mask, const SimThread* t,
                                             int pri, int* scanned) const {
  // O(1) shortcut: a zero-load allowed core always wins the scan below — its
  // load is the global minimum, the first such core beats every earlier
  // (load >= 1) core on the strict-< tie-break, and zero load implies
  // lowpri == kPriIdle, which passes the priority filter for any thread.
  // `*scanned` is still advanced by the full group so the modeled scan cost
  // the caller charges is unchanged (the loop never breaks early).
  if (tun_.placement_fast_path) {
    const CpuSet zero = zero_load_mask_ & group_mask & t->affinity();
    const int first = zero.FirstSet();
    if (first >= 0) {
      *scanned += static_cast<int>(cores.size());
      return static_cast<CoreId>(first);
    }
  }
  CoreId best = kInvalidCore;
  int best_load = std::numeric_limits<int>::max();
  for (CoreId c : cores) {
    ++*scanned;
    if (!t->CanRunOn(c)) {
      continue;
    }
    const Tdq& tdq = tdqs_[c];
    if (tdq.lowpri <= pri) {
      continue;  // the thread would have to wait behind a better thread
    }
    if (tdq.load < best_load) {
      best_load = tdq.load;
      best = c;
    }
  }
  return best;
}

CoreId UleScheduler::LowestLoad(const std::vector<CoreId>& cores, const CpuSet& group_mask,
                                const SimThread* t, int* scanned) const {
  // Same zero-load shortcut as LowestLoadWhereRunnable, minus the priority
  // filter (which a zero-load core passes anyway).
  if (tun_.placement_fast_path) {
    const CpuSet zero = zero_load_mask_ & group_mask & t->affinity();
    const int first = zero.FirstSet();
    if (first >= 0) {
      *scanned += static_cast<int>(cores.size());
      return static_cast<CoreId>(first);
    }
  }
  CoreId best = kInvalidCore;
  int best_load = std::numeric_limits<int>::max();
  for (CoreId c : cores) {
    ++*scanned;
    if (!t->CanRunOn(c)) {
      continue;
    }
    if (tdqs_[c].load < best_load) {
      best_load = tdqs_[c].load;
      best = c;
    }
  }
  return best;
}

namespace {
// Splits a scan count into local (same LLC as `home`) and remote reads.
SimDuration ScanCost(const CpuTopology& topo, CoreId home, const std::vector<CoreId>& cores,
                     SimDuration local_cost, SimDuration remote_cost) {
  SimDuration cost = 0;
  for (CoreId c : cores) {
    cost += topo.SharesLlc(home, c) ? local_cost : remote_cost;
  }
  return cost;
}
}  // namespace

CoreId UleScheduler::PickCpu(SimThread* t, CoreId origin, PickReason* reason) {
  const CpuTopology& topo = machine_->topology();
  const UleTaskData& data = UleOf(t);
  const int pri = data.pri;
  CoreId prev = t->last_ran_cpu() != kInvalidCore ? t->last_ran_cpu() : origin;
  if (prev == kInvalidCore) {
    prev = 0;
  }

  // Section 6.3 ablation: "we replaced the ULE wakeup function by a simple
  // one that returns the CPU on which the thread was previously running".
  if (tun_.pickcpu_return_prev) {
    if (t->CanRunOn(prev)) {
      *reason = PickReason::kPrevAffine;
      return prev;
    }
    int scanned = 0;
    const auto& all = topo.GroupOf(0, TopoLevel::kMachine);
    const CoreId c = LowestLoad(all, topo.GroupMask(0, TopoLevel::kMachine), t, &scanned);
    machine_->counters().pickcpu_scans += scanned;
    assert(c != kInvalidCore);
    *reason = PickReason::kLowestLoad;
    return c;
  }

  int scanned = 0;
  SimDuration cost = 0;
  CoreId choice = kInvalidCore;

  // 1. Cache-affine on the previous core and would run immediately there.
  if (t->CanRunOn(prev) && AffineAt(t, prev, TopoLevel::kSmt) && tdqs_[prev].lowpri > pri) {
    ++scanned;
    cost += tun_.pickcpu_scan_cost_local;
    choice = prev;
    *reason = PickReason::kPrevAffine;
  }

  // 2. Search the highest affine topology group (or the whole machine) for a
  // core where this thread would be the best priority, lowest load first.
  if (choice == kInvalidCore) {
    TopoLevel level = TopoLevel::kMachine;
    for (TopoLevel l : {TopoLevel::kSmt, TopoLevel::kLlc}) {
      if (AffineAt(t, prev, l)) {
        level = l;
        break;
      }
    }
    const auto& group = topo.GroupOf(prev, level);
    choice = LowestLoadWhereRunnable(group, topo.GroupMask(prev, level), t, pri, &scanned);
    cost += ScanCost(topo, prev, group, tun_.pickcpu_scan_cost_local,
                     tun_.pickcpu_scan_cost_remote);
    if (choice != kInvalidCore) {
      *reason = PickReason::kPriorityFit;
    }
  }

  // 3. Same search over all cores.
  if (choice == kInvalidCore) {
    const auto& all = topo.GroupOf(0, TopoLevel::kMachine);
    choice = LowestLoadWhereRunnable(all, topo.GroupMask(0, TopoLevel::kMachine), t, pri,
                                     &scanned);
    cost +=
        ScanCost(topo, prev, all, tun_.pickcpu_scan_cost_local, tun_.pickcpu_scan_cost_remote);
    if (choice != kInvalidCore) {
      *reason = PickReason::kPriorityFit;
    }
  }

  // 4. Fall back to the least loaded core.
  if (choice == kInvalidCore) {
    const auto& all = topo.GroupOf(0, TopoLevel::kMachine);
    choice = LowestLoad(all, topo.GroupMask(0, TopoLevel::kMachine), t, &scanned);
    cost +=
        ScanCost(topo, prev, all, tun_.pickcpu_scan_cost_local, tun_.pickcpu_scan_cost_remote);
    *reason = PickReason::kLowestLoad;
  }
  assert(choice != kInvalidCore);

  machine_->counters().pickcpu_scans += scanned;
  const CoreId charge_to = origin != kInvalidCore ? origin : prev;
  machine_->ChargeOverhead(charge_to, cost, OverheadKind::kPickCpuScan);
  return choice;
}

CoreId UleScheduler::SelectTaskRqImpl(SimThread* thread, CoreId origin, EnqueueKind kind,
                                      PickReason* reason) {
  if (thread->affinity().Count() == 1) {
    if (tun_.placement_fast_path) {
      *reason = PickReason::kPinned;
      return static_cast<CoreId>(thread->affinity().FirstSet());
    }
    for (CoreId c = 0; c < machine_->num_cores(); ++c) {
      if (thread->CanRunOn(c)) {
        *reason = PickReason::kPinned;
        return c;
      }
    }
  }
  if (kind == EnqueueKind::kFork) {
    // Paper, Section 6.2: "ULE always forks threads on the core with the
    // lowest number of threads".
    int scanned = 0;
    const CpuTopology& topo = machine_->topology();
    const auto& all = topo.GroupOf(0, TopoLevel::kMachine);
    const CoreId c = LowestLoad(all, topo.GroupMask(0, TopoLevel::kMachine), thread, &scanned);
    machine_->counters().pickcpu_scans += scanned;
    if (origin != kInvalidCore) {
      machine_->ChargeOverhead(origin,
                               ScanCost(machine_->topology(), origin, all,
                                        tun_.pickcpu_scan_cost_local,
                                        tun_.pickcpu_scan_cost_remote),
                               OverheadKind::kPickCpuScan);
    }
    assert(c != kInvalidCore);
    *reason = PickReason::kLowestLoad;
    return c;
  }
  return PickCpu(thread, origin, reason);
}

CoreId UleScheduler::SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) {
  PickCpuDecision d;
  d.thread = thread->id();
  d.origin = origin;
  d.prev = thread->last_ran_cpu();
  d.kind = kind;
  const uint64_t scans_before = machine_->counters().pickcpu_scans;
  const CoreId chosen = SelectTaskRqImpl(thread, origin, kind, &d.reason);
  d.chosen = chosen;
  d.cores_scanned = static_cast<int>(machine_->counters().pickcpu_scans - scans_before);
  d.affine_hit = d.prev != kInvalidCore && chosen == d.prev;
  if (machine_->observing_decisions()) {
    // Feature snapshot for the decision-record dataset; skipped entirely on
    // the detached hot path.
    d.chosen_rq = chosen != kInvalidCore ? RunnableCountOf(chosen) : -1;
    d.prev_rq = d.prev != kInvalidCore ? RunnableCountOf(d.prev) : -1;
    d.sched_key = InteractivityPenaltyOf(thread);
    d.idle_mask = machine_->idle_mask().low64();
  }
  machine_->EmitPickCpu(d);
  return chosen;
}

}  // namespace schedbattle
