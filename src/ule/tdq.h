// ULE per-core state: the tdq (three runqueues) and per-thread td_sched data.
//
// Paper, Section 2.2: "ULE uses two runqueues to schedule threads: one
// runqueue contains interactive threads, and the other contains batch
// threads. A third runqueue called idle is used when a core is idle."
// Priorities follow FreeBSD 11.1's timeshare layout.
#ifndef SRC_ULE_TDQ_H_
#define SRC_ULE_TDQ_H_

#include "src/sched/thread.h"
#include "src/sim/time.h"
#include "src/ule/interact.h"
#include "src/ule/runq.h"

namespace schedbattle {

// FreeBSD 11.1 priority ranges (kern/sched_ule.c, sys/priority.h).
inline constexpr int kPriMinTimeshare = 120;
inline constexpr int kPriMaxTimeshare = 223;
// Interactive third of the timeshare range.
inline constexpr int kPriInteractRange = (kPriMaxTimeshare - kPriMinTimeshare + 1) / 3;  // 34
inline constexpr int kPriMinInteract = kPriMinTimeshare;                                 // 120
inline constexpr int kPriMaxInteract = kPriMinTimeshare + kPriInteractRange - 1;         // 153
inline constexpr int kPriMinBatch = kPriMaxInteract + 1;                                 // 154
inline constexpr int kPriMaxBatch = kPriMaxTimeshare;                                    // 223
inline constexpr int kPriBatchRange = kPriMaxBatch - kPriMinBatch + 1;                   // 70
// Nice spans 40 priorities; the rest of the batch range encodes recent %CPU.
inline constexpr int kPriNresv = 40;
inline constexpr int kPriTicksRange = kPriBatchRange - kPriNresv;  // 30
inline constexpr int kPriIdle = 255;

// %CPU estimation window (FreeBSD: SCHED_TICK_SECS = 10).
inline constexpr SimDuration kPctcpuWindow = Seconds(10);

// Per-thread ULE state (FreeBSD's td_sched).
struct UleTaskData : ThreadSchedData {
  UleInteract interact;
  int pri = kPriMinBatch;   // current ULE priority
  int slice_remaining = 0;  // remaining timeslice, in stathz ticks
  SimTime last_ran = -Seconds(1000);  // ts_rltick analogue, for cache affinity

  // %CPU window (sched_pctcpu_update): runtime accumulated in [ftick, ltick].
  SimTime ftick = 0;
  SimTime ltick = 0;
  SimDuration window_run = 0;

  // Where the thread is queued (for O(1) removal).
  bool queued = false;
  bool on_realtime_q = false;  // else timeshare
  int rq_idx = -1;
  CoreId tdq_cpu = kInvalidCore;

  SimThread* parent = nullptr;  // runtime is given back to the parent on exit
};

inline UleTaskData& UleOf(SimThread* t) { return t->sched<UleTaskData>(); }
inline const UleTaskData& UleOf(const SimThread* t) {
  return *static_cast<const UleTaskData*>(t->sched_data());
}

// Per-core queues (FreeBSD's struct tdq).
struct Tdq {
  UleRunq realtime;   // interactive threads
  UleRunq timeshare;  // batch threads (calendar queue)

  int load = 0;       // runnable thread count, including the running thread
  int idx = 0;        // calendar insertion index
  int ridx = 0;       // calendar removal index
  int lowpri = kPriIdle;  // numerically lowest (best) priority present

  int queued_count() const { return realtime.size() + timeshare.size(); }
  // Threads available for stealing (everything queued; the running thread is
  // not in the queues).
  int transferable() const { return queued_count(); }
};

// Computes the ULE priority of a thread from its interactivity history,
// niceness, and recent %CPU (FreeBSD: sched_priority()).
int UleComputePriority(const UleTaskData& data, Nice nice, SimTime now);

// Advances the %CPU window and optionally accrues `run` of runtime
// (sched_pctcpu_update).
void UlePctcpuUpdate(UleTaskData* data, SimTime now, SimDuration run);

// Maps recent %CPU into [0, kPriTicksRange) (SCHED_PRI_TICKS).
int UlePriTicks(const UleTaskData& data);

// tdq queue maintenance (tdq_runq_add / tdq_runq_rem / tdq_choose).
void TdqRunqAdd(Tdq* tdq, SimThread* t, bool requeue_head);
void TdqRunqRem(Tdq* tdq, SimThread* t);
SimThread* TdqChoose(Tdq* tdq);

// Advances the timeshare calendar by one tick (the tdq_idx/tdq_ridx dance in
// sched_clock, which keeps batch threads round-robining fairly).
void TdqCalendarTick(Tdq* tdq);

// Recomputes tdq->lowpri from the queues and the running thread's priority
// (kPriIdle if the core is idle).
void TdqUpdateLowpri(Tdq* tdq, int running_pri);

}  // namespace schedbattle

#endif  // SRC_ULE_TDQ_H_
