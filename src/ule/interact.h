// ULE interactivity scoring (FreeBSD kern/sched_ule.c).
//
// Paper, Section 2.2: "ULE keeps track of the interactivity of a thread
// using an interactivity penalty metric between 0 and 100 ... defined as a
// function of the time r a thread has spent running and the time s a thread
// has spent voluntarily sleeping." With m = 50:
//
//   penalty(r, s) = 50 * r / s          if s > r
//   penalty(r, s) = 100 - 50 * s / r    otherwise
//
// (this is FreeBSD's sched_interact_score(); the paper's typeset formula is
// a rendering of the same function). History is capped at ~5 seconds
// (sched_interact_update). A thread is interactive when
// penalty + niceness < 30 (sched_interact_thresh).
#ifndef SRC_ULE_INTERACT_H_
#define SRC_ULE_INTERACT_H_

#include "src/sched/types.h"
#include "src/sim/time.h"

namespace schedbattle {

inline constexpr int kInteractMax = 100;   // SCHED_INTERACT_MAX
inline constexpr int kInteractHalf = 50;   // SCHED_INTERACT_HALF (the paper's m)
inline constexpr int kInteractThresh = 30; // SCHED_INTERACT_THRESH

// History caps (FreeBSD: SCHED_SLP_RUN_MAX = 5s, SCHED_SLP_RUN_FORK = 2.5s).
inline constexpr SimDuration kSlpRunMax = Seconds(5);
inline constexpr SimDuration kSlpRunFork = Seconds(5) / 2;

struct UleInteract {
  SimDuration runtime = 0;  // ts_runtime
  SimDuration slptime = 0;  // ts_slptime
};

// The interactivity penalty in [0, 100] (sched_interact_score).
int UleInteractScore(const UleInteract& hist);

// Enforces the 5s history window (sched_interact_update).
void UleInteractUpdate(UleInteract* hist);

// Fork inheritance: the child has copied the parent's history; scale it down
// to the fork cap (sched_interact_fork).
void UleInteractFork(UleInteract* child);

// Full score including niceness, clamped at >= 0.
int UleScoreWithNice(const UleInteract& hist, Nice nice);

// Is a thread with this history/nice classified interactive?
bool UleIsInteractive(const UleInteract& hist, Nice nice);

}  // namespace schedbattle

#endif  // SRC_ULE_INTERACT_H_
