// ULE load balancing (FreeBSD: sched_balance / tdq_idled).
//
// Paper, Section 2.2: "ULE also balances threads periodically, every
// 500-1500ms (the duration of the period is chosen randomly). ... the
// periodic load balancing is performed only by core 0. Core 0 simply tries
// to even out the number of threads amongst the cores: a thread from the
// most loaded core (the donor) is migrated to the less loaded core (the
// receiver). A core can only be a donor or a receiver once, and the load
// balancer iterates until no donor or receiver is found. ... ULE also
// balances threads when the interactive and batch runqueues of a core are
// empty. ULE tries to steal from the most loaded core with which the idle
// core shares a cache [then climbs the topology]. ... the idle stealing
// mechanism steals at most one thread."
//
// Note [1]: in stock FreeBSD 11 a bug prevented the periodic balancer from
// ever re-arming; like the authors, we run with the fix applied
// (tun_.balance_enabled, on by default).
#include <cassert>
#include <limits>
#include <vector>

#include "src/ule/ule_sched.h"

namespace schedbattle {

void UleScheduler::ArmBalance() {
  const SimDuration span = tun_.balance_max - tun_.balance_min;
  const SimDuration delay =
      tun_.balance_min + static_cast<SimDuration>(machine_->rng().NextBelow(
                             static_cast<uint64_t>(std::max<SimDuration>(span, 1))));
  balance_event_ = machine_->engine().After(delay, [this] { PeriodicBalance(); });
}

SimThread* UleScheduler::StealOne(CoreId src, CoreId dst) {
  Tdq& tdq = tdqs_[src];
  auto can_move = [&](SimThread* t) { return t->CanRunOn(dst); };
  // runq_steal: realtime queue first, then the timeshare calendar.
  SimThread* t = tdq.realtime.FindFirst(can_move);
  if (t == nullptr) {
    t = tdq.timeshare.FindFirst(can_move);
  }
  if (t == nullptr) {
    return nullptr;
  }
  DequeueTask(src, t);
  EnqueueTask(dst, t, EnqueueKind::kMigrate);
  machine_->NoteMigration(t, src, dst);
  return t;
}

void UleScheduler::PeriodicBalance() {
  machine_->CatchUpTicks();  // balance decisions must see settled tick state
  ++machine_->counters().balance_invocations;
  const int n = machine_->num_cores();
  machine_->ChargeOverhead(0, n * tun_.balance_cost_per_core, OverheadKind::kLoadBalance);

  std::vector<bool> used(n, false);
  while (true) {
    CoreId donor = kInvalidCore;
    CoreId receiver = kInvalidCore;
    int max_load = -1;
    int min_load = std::numeric_limits<int>::max();
    for (CoreId c = 0; c < n; ++c) {
      if (used[c]) {
        continue;
      }
      const int load = tdqs_[c].load;
      if (load > max_load) {
        max_load = load;
        donor = c;
      }
    }
    for (CoreId c = 0; c < n; ++c) {
      if (used[c] || c == donor) {
        continue;
      }
      const int load = tdqs_[c].load;
      if (load < min_load) {
        min_load = load;
        receiver = c;
      }
    }
    if (donor == kInvalidCore || receiver == kInvalidCore) {
      break;
    }
    // Moving one thread only helps if the gap is at least 2.
    if (max_load - min_load < 2) {
      break;
    }
    // The running thread cannot be migrated, so the donor needs something
    // queued. If it has nothing transferable, retire just this donor and keep
    // iterating — the paper's balancer runs "until no donor or receiver is
    // found", so a pinned/running-only hot core must not end the whole pass.
    if (tdqs_[donor].transferable() == 0) {
      used[donor] = true;
      continue;
    }
    const bool moved = StealOne(donor, receiver) != nullptr;
    if (machine_->observing_decisions()) {
      BalancePassRecord rec;
      rec.kind = BalancePassRecord::Kind::kPeriodic;
      rec.level = -1;  // ULE's periodic balancer is flat/global
      rec.src = donor;
      rec.dst = receiver;
      rec.src_load = max_load;
      rec.dst_load = min_load;
      rec.imbalance_pct = max_load > 0 ? 100.0 * (max_load - min_load) / max_load : 0.0;
      rec.threads_moved = moved ? 1 : 0;
      machine_->EmitBalancePass(rec);
    }
    if (!moved) {
      // Everything queued on this donor is pinned away from the receiver.
      // Retire the donor only; the receiver may still accept from another.
      used[donor] = true;
      continue;
    }
    used[donor] = true;
    used[receiver] = true;
  }
  ArmBalance();
}

bool UleScheduler::TryIdleSteal(CoreId core) {
  // tdq_idled: climb the topology; at each level steal one thread from the
  // most loaded core with enough load.
  const CpuTopology& topo = machine_->topology();
  for (TopoLevel level : {TopoLevel::kSmt, TopoLevel::kLlc, TopoLevel::kNode,
                          TopoLevel::kMachine}) {
    const auto& group = topo.GroupOf(core, level);
    if (group.size() <= 1) {
      continue;
    }
    if (tun_.placement_fast_path &&
        (queued_mask_ & topo.GroupMask(core, level)).Without(core).Empty()) {
      // No core in this group has anything stealable (transferable() == 0
      // everywhere), so the scan below cannot find a candidate. Skip it but
      // charge the modeled cost of the scan ULE would have performed — idle
      // cores poll this path every stathz tick, making it the hottest
      // balancing query in the simulator.
      machine_->ChargeOverhead(core, group.size() * tun_.balance_cost_per_core,
                               OverheadKind::kLoadBalance);
      continue;
    }
    CoreId busiest = kInvalidCore;
    int max_load = tun_.steal_thresh - 1;
    for (CoreId c : group) {
      if (c == core) {
        continue;
      }
      if (tdqs_[c].load > max_load && tdqs_[c].transferable() > 0) {
        max_load = tdqs_[c].load;
        busiest = c;
      }
    }
    machine_->ChargeOverhead(core, group.size() * tun_.balance_cost_per_core,
                             OverheadKind::kLoadBalance);
    if (busiest != kInvalidCore) {
      const int src_load = tdqs_[busiest].load;
      const int dst_load = tdqs_[core].load;
      const bool moved = StealOne(busiest, core) != nullptr;
      if (machine_->observing_decisions()) {
        BalancePassRecord rec;
        rec.kind = BalancePassRecord::Kind::kIdleSteal;
        rec.level = static_cast<int>(level);
        rec.src = busiest;
        rec.dst = core;
        rec.src_load = src_load;
        rec.dst_load = dst_load;
        rec.imbalance_pct = src_load > 0 ? 100.0 * (src_load - dst_load) / src_load : 0.0;
        rec.threads_moved = moved ? 1 : 0;
        machine_->EmitBalancePass(rec);
      }
      if (moved) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace schedbattle
