#include "src/ule/tdq.h"

#include <algorithm>
#include <cassert>

namespace schedbattle {

void UlePctcpuUpdate(UleTaskData* data, SimTime now, SimDuration run) {
  // Sliding ~10s window over runtime (FreeBSD sched_pctcpu_update, with real
  // durations instead of tick counts).
  if (now - data->ltick >= kPctcpuWindow) {
    data->window_run = 0;
    data->ftick = now - kPctcpuWindow;
  } else if (data->ltick > data->ftick && now - data->ftick >= kPctcpuWindow + kPctcpuWindow / 10) {
    // Shrink the window proportionally so it keeps covering ~10s.
    const SimDuration span = data->ltick - data->ftick;
    const SimDuration keep = std::max<SimDuration>(data->ltick - (now - kPctcpuWindow), 0);
    data->window_run = static_cast<SimDuration>(
        static_cast<__int128>(data->window_run) * keep / span);
    data->ftick = now - kPctcpuWindow;
  }
  data->window_run += run;
  data->ltick = now;
}

int UlePriTicks(const UleTaskData& data) {
  const SimDuration span = std::max<SimDuration>(data.ltick - data.ftick, 1);
  const SimDuration run = std::min(data.window_run, span);
  // Map %CPU within the window onto [0, kPriTicksRange).
  int ticks = static_cast<int>(run * kPriTicksRange / span);
  return std::clamp(ticks, 0, kPriTicksRange - 1);
}

int UleComputePriority(const UleTaskData& data, Nice nice, SimTime now) {
  (void)now;
  const int score = UleScoreWithNice(data.interact, nice);
  if (score < kInteractThresh) {
    // Linear interpolation of the score across the interactive range
    // (paper: "priority of interactive threads is a linear interpolation of
    // their score").
    int pri = kPriMinInteract + (kPriInteractRange * score) / kInteractThresh;
    return std::clamp(pri, kPriMinInteract, kPriMaxInteract);
  }
  // Batch: "the more a thread runs, the lower its priority. The niceness is
  // added to get a linear effect on the priority."
  int pri = kPriMinBatch + UlePriTicks(data) + nice + kPriNresv / 2;
  return std::clamp(pri, kPriMinBatch, kPriMaxBatch);
}

void TdqRunqAdd(Tdq* tdq, SimThread* t, bool requeue_head) {
  UleTaskData& data = UleOf(t);
  assert(!data.queued);
  const int pri = data.pri;
  if (pri <= kPriMaxInteract) {
    data.on_realtime_q = true;
    // Real ULE maps 4 priorities per FIFO (RQ_PPQ); the resulting coarseness
    // is what lets interactive threads of nearby scores round-robin instead
    // of strictly starving each other.
    data.rq_idx = (pri - kPriMinInteract) / kRqPpq;
    tdq->realtime.Add(t, data.rq_idx, requeue_head);
  } else {
    data.on_realtime_q = false;
    // Calendar insertion: offset by the batch priority so threads that ran
    // more land further from the removal index (FreeBSD tdq_runq_add).
    int idx = kRqNqs * (pri - kPriMinBatch) / kPriBatchRange;
    idx = (idx + tdq->idx) % kRqNqs;
    // Keep one slot of slack between idx and ridx while queues drain.
    if (tdq->ridx != tdq->idx && idx == tdq->ridx) {
      idx = (idx + kRqNqs - 1) % kRqNqs;
    }
    data.rq_idx = idx;
    tdq->timeshare.Add(t, idx, requeue_head);
  }
  data.queued = true;
  tdq->lowpri = std::min(tdq->lowpri, pri);
}

void TdqRunqRem(Tdq* tdq, SimThread* t) {
  UleTaskData& data = UleOf(t);
  assert(data.queued);
  if (data.on_realtime_q) {
    tdq->realtime.Remove(t, data.rq_idx);
  } else {
    // Removal drags the calendar's removal index to this thread's slot
    // (FreeBSD tdq_runq_rem).
    if (tdq->idx != tdq->ridx) {
      tdq->ridx = data.rq_idx;
    }
    tdq->timeshare.Remove(t, data.rq_idx);
  }
  data.queued = false;
  data.rq_idx = -1;
}

SimThread* TdqChoose(Tdq* tdq) {
  // Interactive threads have absolute priority over batch threads; this is
  // the source of the paper's starvation results (Section 5).
  SimThread* t = tdq->realtime.Choose();
  if (t != nullptr) {
    return t;
  }
  int idx = 0;
  t = tdq->timeshare.ChooseFrom(tdq->ridx, &idx);
  return t;
}

void TdqCalendarTick(Tdq* tdq) {
  if (tdq->idx == tdq->ridx) {
    tdq->idx = (tdq->idx + 1) % kRqNqs;
    int probe = 0;
    if (tdq->timeshare.ChooseFrom(tdq->ridx, &probe) == nullptr || probe != tdq->ridx) {
      tdq->ridx = tdq->idx;
    }
  }
}

void TdqUpdateLowpri(Tdq* tdq, int running_pri) {
  int low = running_pri;
  const int rt = tdq->realtime.FirstSetIndex();
  if (rt < kRqNqs) {
    low = std::min(low, kPriMinInteract + rt * kRqPpq);
  }
  if (!tdq->timeshare.empty()) {
    low = std::min(low, kPriMinBatch);
  }
  tdq->lowpri = low;
}

}  // namespace schedbattle
