#include "src/check/invariant.h"

#include <sstream>
#include <utility>

#include "src/check/monitors.h"
#include "src/metrics/timeseries.h"
#include "src/sched/machine.h"

namespace schedbattle {

InvariantMonitor::InvariantMonitor(std::string name, MonitorOptions options)
    : name_(std::move(name)), options_(options) {
  pick_ring_.reserve(options_.provenance_depth);
  balance_ring_.reserve(options_.provenance_depth);
}

InvariantMonitor::~InvariantMonitor() { Detach(); }

void InvariantMonitor::Attach(Machine* machine) {
  machine_ = machine;
  machine_->AddObserver(this);
  attached_ = true;
}

void InvariantMonitor::Detach() {
  if (attached_) {
    machine_->RemoveObserver(this);
    attached_ = false;
  }
}

void InvariantMonitor::OnPickCpu(SimTime /*now*/, const PickCpuDecision& decision) {
  if (options_.provenance_depth == 0) {
    return;
  }
  if (pick_ring_.size() < options_.provenance_depth) {
    pick_ring_.push_back(decision);
    return;
  }
  pick_ring_[pick_head_] = decision;
  pick_head_ = (pick_head_ + 1) % options_.provenance_depth;
}

void InvariantMonitor::OnBalancePass(SimTime /*now*/, const BalancePassRecord& pass) {
  if (options_.provenance_depth == 0) {
    return;
  }
  if (balance_ring_.size() < options_.provenance_depth) {
    balance_ring_.push_back(pass);
    return;
  }
  balance_ring_[balance_head_] = pass;
  balance_head_ = (balance_head_ + 1) % options_.provenance_depth;
}

void InvariantMonitor::Record(SimTime now, std::string message, CoreId core, ThreadId thread) {
  ++violation_count_;
  if (violations_.size() >= options_.max_recorded) {
    return;
  }
  Violation v;
  v.time = now;
  v.monitor = name_;
  v.message = std::move(message);
  v.core = core;
  v.thread = thread;
  // Unroll the rings oldest-first so the provenance reads chronologically.
  for (size_t i = 0; i < pick_ring_.size(); ++i) {
    v.recent_picks.push_back(pick_ring_[(pick_head_ + i) % pick_ring_.size()]);
  }
  for (size_t i = 0; i < balance_ring_.size(); ++i) {
    v.recent_balance.push_back(balance_ring_[(balance_head_ + i) % balance_ring_.size()]);
  }
  violations_.push_back(std::move(v));
}

MonitorSuite::MonitorSuite(Machine* machine, MonitorOptions options)
    : machine_(machine), options_(options) {
  monitors_.push_back(std::make_unique<WorkConservationMonitor>(options_));
  monitors_.push_back(std::make_unique<LostWakeupMonitor>(options_));
  monitors_.push_back(std::make_unique<VruntimeMonotonicMonitor>(options_));
  monitors_.push_back(std::make_unique<UleScoreMonitor>(options_));
  monitors_.push_back(std::make_unique<RunqueueAccountingMonitor>(options_));
  monitors_.push_back(std::make_unique<NumaImbalanceMonitor>(options_));
  for (auto& m : monitors_) {
    m->Attach(machine_);
  }
  sampler_ = std::make_unique<PeriodicSampler>(machine_, options_.poll_period,
                                               [this](SimTime now) {
                                                 for (auto& m : monitors_) {
                                                   m->Poll(now);
                                                 }
                                               });
}

MonitorSuite::~MonitorSuite() { Detach(); }

void MonitorSuite::FinishChecks() {
  if (finished_) {
    return;
  }
  finished_ = true;
  for (auto& m : monitors_) {
    m->Finish(machine_->now());
  }
}

void MonitorSuite::Detach() {
  if (detached_) {
    return;
  }
  detached_ = true;
  FinishChecks();
  for (auto& m : monitors_) {
    m->Detach();
  }
  sampler_->Stop();
}

uint64_t MonitorSuite::total_violations() const {
  uint64_t total = 0;
  for (const auto& m : monitors_) {
    total += m->violation_count();
  }
  return total;
}

const InvariantMonitor* MonitorSuite::first_violating() const {
  for (const auto& m : monitors_) {
    if (m->violation_count() > 0) {
      return m.get();
    }
  }
  return nullptr;
}

std::string FormatViolation(const Violation& v) {
  std::ostringstream os;
  os << "[" << FormatTime(v.time) << "] " << v.monitor << ": " << v.message;
  if (v.core != kInvalidCore) {
    os << " (core " << v.core << ")";
  }
  if (v.thread != kInvalidThread) {
    os << " (thread " << v.thread << ")";
  }
  for (const PickCpuDecision& p : v.recent_picks) {
    os << "\n    pick: thread " << p.thread << " origin " << p.origin << " prev " << p.prev
       << " -> core " << p.chosen << " [" << PickReasonName(p.reason) << ", scanned "
       << p.cores_scanned << "]";
  }
  for (const BalancePassRecord& b : v.recent_balance) {
    os << "\n    balance: " << BalanceKindName(b.kind) << " level " << b.level << " core "
       << b.src << " -> " << b.dst << " moved " << b.threads_moved;
  }
  return os.str();
}

std::string MonitorSuite::Report() const {
  if (total_violations() == 0) {
    return "";
  }
  std::ostringstream os;
  for (const auto& m : monitors_) {
    if (m->violation_count() == 0) {
      continue;
    }
    os << m->name() << ": " << m->violation_count() << " violation(s)";
    if (m->violation_count() > m->violations().size()) {
      os << " (first " << m->violations().size() << " recorded)";
    }
    os << "\n";
    for (const Violation& v : m->violations()) {
      os << "  " << FormatViolation(v) << "\n";
    }
  }
  return os.str();
}

}  // namespace schedbattle
