#include "src/check/faulty_sched.h"

#include <utility>

namespace schedbattle {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDropWakeup:
      return "drop_wakeup";
    case FaultKind::kNoBalance:
      return "no_balance";
    case FaultKind::kCorruptVruntime:
      return "corrupt_vruntime";
    case FaultKind::kCorruptScore:
      return "corrupt_score";
    case FaultKind::kMiscountLoad:
      return "miscount_load";
  }
  return "none";
}

bool ParseFaultKind(std::string_view name, FaultKind* out) {
  for (FaultKind kind : {FaultKind::kNone, FaultKind::kDropWakeup, FaultKind::kNoBalance,
                         FaultKind::kCorruptVruntime, FaultKind::kCorruptScore,
                         FaultKind::kMiscountLoad}) {
    if (name == FaultKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool FaultApplicable(FaultKind fault, SchedKind sched, std::string* why) {
  const SchedulerRegistry& reg = SchedulerRegistry::Instance();
  const SchedulerClass& sc = reg.Of(sched);
  bool ok = true;
  std::string capability;
  switch (fault) {
    case FaultKind::kCorruptVruntime:
      ok = sc.has_vruntime;
      capability = "a vruntime clock";
      break;
    case FaultKind::kCorruptScore:
      ok = sc.has_interactivity;
      capability = "an interactivity score";
      break;
    default:
      break;  // drop_wakeup / no_balance / miscount_load are universal
  }
  if (ok || why == nullptr) {
    return ok;
  }
  std::string supported;
  for (const SchedulerClass& other : reg.classes()) {
    const bool has = fault == FaultKind::kCorruptVruntime ? other.has_vruntime
                                                          : other.has_interactivity;
    if (has) {
      supported += (supported.empty() ? "" : ", ") + other.id;
    }
  }
  *why = "fault '" + std::string(FaultKindName(fault)) + "' needs " + capability +
         ", which scheduler '" + sc.id + "' does not keep (supported by: " +
         (supported.empty() ? "none" : supported) + ")";
  return false;
}

FaultySched::FaultySched(std::unique_ptr<Scheduler> inner, FaultConfig fault)
    : inner_(std::move(inner)), fault_(fault) {}

FaultySched::~FaultySched() = default;

void FaultySched::Attach(Machine* machine) { inner_->Attach(machine); }

void FaultySched::Start() {
  if (fault_.kind == FaultKind::kNoBalance) {
    return;  // never arm the periodic balancer
  }
  inner_->Start();
}

void FaultySched::DeclareGroup(GroupId id, GroupId parent) { inner_->DeclareGroup(id, parent); }

void FaultySched::TaskNew(SimThread* thread, SimThread* parent) {
  inner_->TaskNew(thread, parent);
}

void FaultySched::TaskExit(SimThread* thread) { inner_->TaskExit(thread); }

CoreId FaultySched::SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) {
  return inner_->SelectTaskRq(thread, origin, kind);
}

void FaultySched::EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) {
  if (fault_.kind == FaultKind::kDropWakeup && kind == EnqueueKind::kWakeup &&
      dropped_ == nullptr && ++wakeups_seen_ == fault_.arg) {
    dropped_ = thread;  // the wakeup vanishes between pickcpu and the runqueue
    return;
  }
  inner_->EnqueueTask(core, thread, kind);
}

void FaultySched::DequeueTask(CoreId core, SimThread* thread) {
  if (thread == dropped_) {
    return;  // never made it into a queue
  }
  inner_->DequeueTask(core, thread);
}

SimThread* FaultySched::PickNextTask(CoreId core) { return inner_->PickNextTask(core); }

void FaultySched::PutPrevTask(CoreId core, SimThread* thread) {
  inner_->PutPrevTask(core, thread);
}

void FaultySched::OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) {
  inner_->OnTaskBlock(core, thread, voluntary);
}

void FaultySched::YieldTask(CoreId core, SimThread* thread) { inner_->YieldTask(core, thread); }

void FaultySched::TaskTick(CoreId core, SimThread* current) {
  if (fault_.kind == FaultKind::kNoBalance && current == nullptr) {
    return;  // suppress the idle tick's steal polling (ULE sched_idletd)
  }
  inner_->TaskTick(core, current);
}

void FaultySched::ReniceTask(SimThread* thread) { inner_->ReniceTask(thread); }

void FaultySched::CheckPreemptWakeup(CoreId core, SimThread* woken) {
  if (woken == dropped_) {
    return;  // the inner scheduler never saw this wakeup
  }
  inner_->CheckPreemptWakeup(core, woken);
}

void FaultySched::OnCoreIdle(CoreId core) {
  if (fault_.kind == FaultKind::kNoBalance) {
    return;  // no newidle pull / idle steal
  }
  inner_->OnCoreIdle(core);
}

SimDuration FaultySched::TickPeriod() const { return inner_->TickPeriod(); }

double FaultySched::LoadOf(CoreId core) const { return inner_->LoadOf(core); }

int FaultySched::RunnableCountOf(CoreId core) const {
  int count = inner_->RunnableCountOf(core);
  if (fault_.kind == FaultKind::kMiscountLoad && core == 0) {
    count += fault_.arg;
  }
  return count;
}

int FaultySched::InteractivityPenaltyOf(const SimThread* thread) const {
  const int penalty = inner_->InteractivityPenaltyOf(thread);
  if (fault_.kind == FaultKind::kCorruptScore && penalty >= 0) {
    return penalty + fault_.arg;
  }
  return penalty;
}

int64_t FaultySched::MinVruntimeOf(CoreId core) const {
  if (fault_.kind == FaultKind::kCorruptVruntime) {
    const int64_t inner = inner_->MinVruntimeOf(core);
    if (inner == kNoMinVruntime) {
      return inner;
    }
    return -(++vruntime_calls_) * 1000;  // strictly decreasing: never legal
  }
  return inner_->MinVruntimeOf(core);
}

}  // namespace schedbattle
