// Schedule fuzzing: randomized workload specs, a serializable reproducer
// format, and delta-debugging shrinking.
//
// A FuzzSpec is a compact, fully-serializable description of one randomized
// workload (thread groups of hogs / sleepers / lockers / pipers /
// barrierers) plus the machine it runs on and an optional injected fault.
// Every FuzzSpec is structurally terminating — pipes are message-balanced,
// barriers have all parties looping equally — so a thread that never exits
// is always a scheduler bug, never a workload artifact.
//
// RunFuzzSpec executes one spec with the full MonitorSuite armed;
// ShrinkFuzzSpec greedily delta-debugs a violating spec (drop groups, halve
// counts/loops/durations, shrink the machine) while an oracle confirms the
// same monitor still fires. tools/schedfuzz.cc drives campaigns of these
// across both schedulers and emits minimal reproducers as JSON that
// `schedbattle_cli replay` re-executes byte-identically.
#ifndef SRC_CHECK_FUZZ_H_
#define SRC_CHECK_FUZZ_H_

#include <functional>
#include <string>
#include <vector>

#include "src/check/faulty_sched.h"
#include "src/core/spec.h"
#include "src/sim/rng.h"

namespace schedbattle {

// One homogeneous group of threads in a fuzzed workload.
struct FuzzThreadGroup {
  enum class Kind {
    kHog,       // loops of pure compute
    kSleeper,   // compute / sleep cycles (interactive under ULE)
    kLocker,    // contend on one shared mutex
    kPiper,     // 1 writer streaming to count-1 blocking readers
    kBarrierer  // lock-step barrier rounds
  };
  Kind kind = Kind::kHog;
  int count = 1;                        // threads in the group (pipers: >= 2)
  SimDuration work = Milliseconds(1);   // compute burst per loop iteration
  SimDuration sleep = Milliseconds(1);  // sleep per iteration (sleepers only)
  int loops = 10;
};

const char* FuzzGroupKindName(FuzzThreadGroup::Kind kind);
bool ParseFuzzGroupKind(std::string_view name, FuzzThreadGroup::Kind* out);

struct FuzzSpec {
  uint64_t seed = 1;
  SchedKind sched = SchedKind::kCfs;
  int cores = 4;
  int numa_nodes = 1;  // must divide cores when > 1
  SimTime horizon = Seconds(60);
  std::vector<FuzzThreadGroup> groups;
  // kNone for real fuzzing; set by the monitor tests and the shrinker tests.
  FaultConfig fault;

  int TotalThreads() const;

  // Label like "fuzz-cfs-seed42". Deterministic for a given spec.
  std::string Label() const;

  // The replayable reproducer format. Round-trips exactly: Parse(ToJson()).
  std::string ToJson() const;
  static bool Parse(const std::string& json, FuzzSpec* out, std::string* error);

  // Full ExperimentSpec: machine + apps + armed MonitorSuite (+ FaultySched
  // wrapping when fault.kind != kNone).
  ExperimentSpec ToExperimentSpec() const;
};

// Draws a random terminating workload spec. `scale` multiplies loop counts
// (CI smoke runs use 0.1); the machine shape and group mix come from `rng`.
FuzzSpec GenerateFuzzSpec(Rng* rng, SchedKind sched, double scale);

// Outcome of one monitored run.
struct FuzzOutcome {
  uint64_t violations = 0;
  std::string monitor;  // first violating monitor; empty when clean
  std::string report;   // MonitorSuite::Report()
  bool all_finished = false;  // every app completed before the horizon
  uint64_t forks = 0;
  uint64_t exits = 0;
};

FuzzOutcome RunFuzzSpec(const FuzzSpec& spec);

// Harvests a FuzzOutcome from a RunResult produced by executing
// FuzzSpec::ToExperimentSpec() (e.g. through a CampaignRunner).
FuzzOutcome OutcomeFromResult(const RunResult& result);

// Returns true when `spec` still exhibits the failure being minimized.
using FuzzOracle = std::function<bool(const FuzzSpec&)>;

// Oracle for "monitor `name` fires on this spec".
FuzzOracle MonitorFiresOracle(std::string monitor);

struct ShrinkResult {
  FuzzSpec minimal;
  int attempts = 0;  // oracle invocations spent
};

// Greedy delta-debugging: repeatedly tries to drop whole groups, halve
// counts / loops / durations and shrink the machine, keeping each change
// only if the oracle still returns true. Runs to a fixpoint or until
// `max_attempts` oracle calls. `failing` must satisfy the oracle.
ShrinkResult ShrinkFuzzSpec(const FuzzSpec& failing, const FuzzOracle& oracle,
                            int max_attempts = 400);

}  // namespace schedbattle

#endif  // SRC_CHECK_FUZZ_H_
