#include "src/check/fuzz.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <utility>

#include "src/workload/app.h"
#include "src/workload/script.h"
#include "src/workload/sync.h"

namespace schedbattle {

namespace {

// Bounded per-iteration jitter: [d/2, 3d/2), drawn from the thread's own RNG
// stream so every replay of the spec sees identical durations.
DurationFn Jitter(SimDuration d) {
  const SimDuration base = std::max<SimDuration>(d, 2);
  return [base](ScriptEnv& env) {
    return base / 2 + static_cast<SimDuration>(env.rng.NextBelow(static_cast<uint64_t>(base)));
  };
}

std::unique_ptr<Application> BuildFuzzApp(const FuzzSpec& spec, uint64_t seed) {
  auto app = std::make_unique<ScriptedApp>("fuzzmix", seed);
  int index = 0;
  for (const FuzzThreadGroup& g : spec.groups) {
    const std::string gname = std::string(FuzzGroupKindName(g.kind)) + std::to_string(index++);
    ScriptedApp::ThreadTemplate tmpl;
    tmpl.name = gname;
    tmpl.count = g.count;
    switch (g.kind) {
      case FuzzThreadGroup::Kind::kHog:
        tmpl.script =
            ScriptBuilder().Loop(g.loops).ComputeFn(Jitter(g.work)).EndLoop().Build();
        break;
      case FuzzThreadGroup::Kind::kSleeper:
        tmpl.script = ScriptBuilder()
                          .Loop(g.loops)
                          .ComputeFn(Jitter(g.work))
                          .SleepFn(Jitter(g.sleep))
                          .EndLoop()
                          .Build();
        break;
      case FuzzThreadGroup::Kind::kLocker: {
        SimMutex* mu = app->KeepAlive(std::make_shared<SimMutex>());
        tmpl.script = ScriptBuilder()
                          .Loop(g.loops)
                          .Lock(mu)
                          .Compute(g.work)
                          .Unlock(mu)
                          .ComputeFn(Jitter(g.work))
                          .EndLoop()
                          .Build();
        break;
      }
      case FuzzThreadGroup::Kind::kPiper: {
        // One writer streams to count-1 blocking readers. Message-balanced:
        // loops * (count-1) written == (count-1) * loops read, so every
        // reader terminates.
        SimPipe* pipe = app->KeepAlive(std::make_shared<SimPipe>());
        const int readers = g.count - 1;
        ScriptedApp::ThreadTemplate writer;
        writer.name = gname + "-w";
        writer.count = 1;
        writer.script = ScriptBuilder()
                            .Loop(g.loops)
                            .ComputeFn(Jitter(g.work))
                            .PipeWrite(pipe, readers)
                            .EndLoop()
                            .Build();
        app->AddThreads(std::move(writer));
        tmpl.name = gname + "-r";
        tmpl.count = readers;
        tmpl.script = ScriptBuilder()
                          .Loop(g.loops)
                          .PipeRead(pipe)
                          .ComputeFn(Jitter(g.work))
                          .EndLoop()
                          .Build();
        break;
      }
      case FuzzThreadGroup::Kind::kBarrierer: {
        // All parties run the same loop count, so every round completes.
        SimBarrier* bar = app->KeepAlive(std::make_shared<SimBarrier>(g.count));
        tmpl.script = ScriptBuilder()
                          .Loop(g.loops)
                          .ComputeFn(Jitter(g.work))
                          .Barrier(bar)
                          .EndLoop()
                          .Build();
        break;
      }
    }
    app->AddThreads(std::move(tmpl));
  }
  return app;
}

// ------------------------------- minimal JSON reader for the reproducer format

// A strict cursor over the FuzzSpec reproducer JSON. Not a general JSON
// parser: objects/arrays/strings/integers only, which is the whole format.
class JsonCursor {
 public:
  JsonCursor(const std::string& text, std::string* error)
      : p_(text.data()), end_(text.data() + text.size()), error_(error) {}

  bool Fail(const std::string& what) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = what;
    }
    return false;
  }

  void SkipWs() {
    while (p_ < end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' || *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool Peek(char c) {
    SkipWs();
    return p_ < end_ && *p_ == c;
  }

  bool AtEnd() {
    SkipWs();
    return p_ == end_;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) {
      return false;
    }
    out->clear();
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        return Fail("escapes not supported in reproducer strings");
      }
      out->push_back(*p_++);
    }
    if (p_ == end_) {
      return Fail("unterminated string");
    }
    ++p_;
    return true;
  }

  bool ParseInt(int64_t* out) {
    SkipWs();
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') {
      ++p_;
    }
    while (p_ < end_ && *p_ >= '0' && *p_ <= '9') {
      ++p_;
    }
    if (p_ == start || (*start == '-' && p_ == start + 1)) {
      return Fail("expected integer");
    }
    *out = std::strtoll(std::string(start, p_).c_str(), nullptr, 10);
    return true;
  }

  // uint64 values (seeds) are serialized as strings so they survive any
  // double-precision JSON tooling unharmed.
  bool ParseU64String(uint64_t* out) {
    std::string s;
    if (!ParseString(&s) || s.empty()) {
      return false;
    }
    char* endp = nullptr;
    *out = std::strtoull(s.c_str(), &endp, 10);
    if (endp == nullptr || *endp != '\0') {
      return Fail("malformed uint64 string: " + s);
    }
    return true;
  }

  // Iterates "key": <value> pairs of an object, calling `field(key)` to
  // parse each value in place.
  bool ParseObject(const std::function<bool(const std::string&)>& field) {
    if (!Consume('{')) {
      return false;
    }
    if (Peek('}')) {
      return Consume('}');
    }
    while (true) {
      std::string key;
      if (!ParseString(&key) || !Consume(':') || !field(key)) {
        return false;
      }
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(const std::function<bool()>& element) {
    if (!Consume('[')) {
      return false;
    }
    if (Peek(']')) {
      return Consume(']');
    }
    while (true) {
      if (!element()) {
        return false;
      }
      if (Peek(',')) {
        Consume(',');
        continue;
      }
      return Consume(']');
    }
  }

 private:
  const char* p_;
  const char* end_;
  std::string* error_;
};

}  // namespace

const char* FuzzGroupKindName(FuzzThreadGroup::Kind kind) {
  switch (kind) {
    case FuzzThreadGroup::Kind::kHog:
      return "hog";
    case FuzzThreadGroup::Kind::kSleeper:
      return "sleeper";
    case FuzzThreadGroup::Kind::kLocker:
      return "locker";
    case FuzzThreadGroup::Kind::kPiper:
      return "piper";
    case FuzzThreadGroup::Kind::kBarrierer:
      return "barrierer";
  }
  return "hog";
}

bool ParseFuzzGroupKind(std::string_view name, FuzzThreadGroup::Kind* out) {
  for (FuzzThreadGroup::Kind kind :
       {FuzzThreadGroup::Kind::kHog, FuzzThreadGroup::Kind::kSleeper,
        FuzzThreadGroup::Kind::kLocker, FuzzThreadGroup::Kind::kPiper,
        FuzzThreadGroup::Kind::kBarrierer}) {
    if (name == FuzzGroupKindName(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

int FuzzSpec::TotalThreads() const {
  int total = 0;
  for (const FuzzThreadGroup& g : groups) {
    total += g.count;
  }
  return total;
}

std::string FuzzSpec::Label() const {
  std::ostringstream os;
  os << "fuzz-" << SchedName(sched) << "-seed" << seed;
  std::string label = os.str();
  for (char& c : label) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return label;
}

std::string FuzzSpec::ToJson() const {
  std::ostringstream os;
  os << "{\n";
  os << "\"fuzz_spec\":1,\n";
  os << "\"sched\":\"" << SchedId(sched) << "\",\n";
  os << "\"seed\":\"" << seed << "\",\n";
  os << "\"cores\":" << cores << ",\n";
  os << "\"numa_nodes\":" << numa_nodes << ",\n";
  os << "\"horizon_ns\":" << horizon << ",\n";
  os << "\"fault\":\"" << FaultKindName(fault.kind) << "\",\n";
  os << "\"fault_arg\":" << fault.arg << ",\n";
  os << "\"groups\":[";
  for (size_t i = 0; i < groups.size(); ++i) {
    const FuzzThreadGroup& g = groups[i];
    os << (i > 0 ? "," : "") << "\n{\"kind\":\"" << FuzzGroupKindName(g.kind)
       << "\",\"count\":" << g.count << ",\"work_ns\":" << g.work << ",\"sleep_ns\":" << g.sleep
       << ",\"loops\":" << g.loops << "}";
  }
  os << "\n]\n}\n";
  return os.str();
}

bool FuzzSpec::Parse(const std::string& json, FuzzSpec* out, std::string* error) {
  if (error != nullptr) {
    error->clear();
  }
  *out = FuzzSpec();
  out->groups.clear();
  JsonCursor cur(json, error);
  bool saw_version = false;
  const bool ok = cur.ParseObject([&](const std::string& key) {
    int64_t n = 0;
    std::string s;
    if (key == "fuzz_spec") {
      saw_version = true;
      return cur.ParseInt(&n) && (n == 1 || cur.Fail("unsupported fuzz_spec version"));
    }
    if (key == "sched") {
      if (!cur.ParseString(&s)) {
        return false;
      }
      if (!ParseSchedKind(s, &out->sched)) {
        return cur.Fail("unknown sched: " + s + " (registered: " +
                        SchedulerRegistry::Instance().IdList() + ")");
      }
      return true;
    }
    if (key == "seed") {
      return cur.ParseU64String(&out->seed);
    }
    if (key == "cores") {
      if (!cur.ParseInt(&n) || n < 1 || n > 64) {
        return cur.Fail("cores out of range");
      }
      out->cores = static_cast<int>(n);
      return true;
    }
    if (key == "numa_nodes") {
      if (!cur.ParseInt(&n) || n < 1) {
        return cur.Fail("numa_nodes out of range");
      }
      out->numa_nodes = static_cast<int>(n);
      return true;
    }
    if (key == "horizon_ns") {
      if (!cur.ParseInt(&n) || n <= 0) {
        return cur.Fail("horizon_ns out of range");
      }
      out->horizon = n;
      return true;
    }
    if (key == "fault") {
      if (!cur.ParseString(&s)) {
        return false;
      }
      return ParseFaultKind(s, &out->fault.kind) || cur.Fail("unknown fault: " + s);
    }
    if (key == "fault_arg") {
      if (!cur.ParseInt(&n)) {
        return false;
      }
      out->fault.arg = static_cast<int>(n);
      return true;
    }
    if (key == "groups") {
      return cur.ParseArray([&]() {
        FuzzThreadGroup g;
        const bool gok = cur.ParseObject([&](const std::string& gkey) {
          int64_t gn = 0;
          std::string gs;
          if (gkey == "kind") {
            return cur.ParseString(&gs) &&
                   (ParseFuzzGroupKind(gs, &g.kind) || cur.Fail("unknown group kind: " + gs));
          }
          if (gkey == "count") {
            if (!cur.ParseInt(&gn) || gn < 1 || gn > 1024) {
              return cur.Fail("group count out of range");
            }
            g.count = static_cast<int>(gn);
            return true;
          }
          if (gkey == "work_ns") {
            if (!cur.ParseInt(&gn) || gn < 0) {
              return cur.Fail("work_ns out of range");
            }
            g.work = gn;
            return true;
          }
          if (gkey == "sleep_ns") {
            if (!cur.ParseInt(&gn) || gn < 0) {
              return cur.Fail("sleep_ns out of range");
            }
            g.sleep = gn;
            return true;
          }
          if (gkey == "loops") {
            if (!cur.ParseInt(&gn) || gn < 1) {
              return cur.Fail("loops out of range");
            }
            g.loops = static_cast<int>(gn);
            return true;
          }
          return cur.Fail("unknown group key: " + gkey);
        });
        if (!gok) {
          return false;
        }
        if (g.kind == FuzzThreadGroup::Kind::kPiper && g.count < 2) {
          return cur.Fail("piper groups need count >= 2");
        }
        out->groups.push_back(g);
        return true;
      });
    }
    return cur.Fail("unknown key: " + key);
  });
  if (!ok) {
    return false;
  }
  if (!cur.AtEnd()) {
    return cur.Fail("trailing content after spec");
  }
  if (!saw_version) {
    return cur.Fail("missing fuzz_spec version");
  }
  if (out->numa_nodes > 1 && out->cores % out->numa_nodes != 0) {
    return cur.Fail("numa_nodes must divide cores");
  }
  // A fault the wrapped class cannot express would silently no-op at
  // runtime; reject the combination while the spec is still just data.
  std::string why;
  if (!FaultApplicable(out->fault.kind, out->sched, &why)) {
    return cur.Fail(why);
  }
  return true;
}

ExperimentSpec FuzzSpec::ToExperimentSpec() const {
  ExperimentSpec es;
  es.Named(Label());
  es.sched = sched;
  if (numa_nodes > 1) {
    TopologyConfig topo;
    topo.numa_nodes = numa_nodes;
    topo.llcs_per_node = 1;
    topo.cores_per_llc = cores / numa_nodes;
    topo.smt_per_core = 1;
    es.topology = topo;
  } else {
    es.topology = CpuTopology::Flat(cores).config();
  }
  es.machine.seed = seed;
  es.horizon = horizon;
  es.system_noise = false;  // keep fork counts structural for the oracle
  es.check_invariants = true;
  if (fault.kind != FaultKind::kNone) {
    const FaultConfig f = fault;
    es.scheduler_factory = [f](const ExperimentConfig& cfg) -> std::unique_ptr<Scheduler> {
      ExperimentConfig inner = cfg;
      inner.scheduler_factory = nullptr;
      return std::make_unique<FaultySched>(MakeSchedulerFor(inner), f);
    };
  }
  AppSpec app;
  app.name = "fuzzmix";
  const FuzzSpec self = *this;
  app.make = [self](int /*cores*/, uint64_t seed, double /*scale*/) {
    return BuildFuzzApp(self, seed);
  };
  es.apps.push_back(std::move(app));
  return es;
}

FuzzSpec GenerateFuzzSpec(Rng* rng, SchedKind sched, double scale) {
  FuzzSpec spec;
  spec.seed = rng->Next();
  spec.sched = sched;
  static constexpr int kCoreChoices[] = {1, 2, 4, 8};
  spec.cores = kCoreChoices[rng->NextBelow(4)];
  spec.numa_nodes = (spec.cores >= 4 && rng->NextBelow(2) == 0) ? 2 : 1;
  spec.horizon = Seconds(60);
  const int ngroups = 1 + static_cast<int>(rng->NextBelow(4));
  for (int i = 0; i < ngroups; ++i) {
    FuzzThreadGroup g;
    g.kind = static_cast<FuzzThreadGroup::Kind>(rng->NextBelow(5));
    g.count = 1 + static_cast<int>(rng->NextBelow(6));
    if (g.kind == FuzzThreadGroup::Kind::kPiper) {
      g.count = std::max(g.count, 2);
    }
    g.work = Microseconds(100 + static_cast<int64_t>(rng->NextBelow(4900)));
    g.sleep = Microseconds(200 + static_cast<int64_t>(rng->NextBelow(9800)));
    g.loops = std::max(1, static_cast<int>(static_cast<double>(5 + rng->NextBelow(25)) * scale));
    spec.groups.push_back(g);
  }
  return spec;
}

FuzzOutcome OutcomeFromResult(const RunResult& r) {
  FuzzOutcome out;
  out.violations = r.violations;
  out.monitor = r.first_violation_monitor;
  out.report = r.violation_report;
  out.all_finished = !r.apps.empty();
  for (const AppResult& a : r.apps) {
    out.all_finished = out.all_finished && a.finished;
  }
  out.forks = r.counters.forks;
  out.exits = r.counters.exits;
  return out;
}

FuzzOutcome RunFuzzSpec(const FuzzSpec& spec) {
  return OutcomeFromResult(ExecuteSpec(spec.ToExperimentSpec()));
}

FuzzOracle MonitorFiresOracle(std::string monitor) {
  return [monitor = std::move(monitor)](const FuzzSpec& spec) {
    return RunFuzzSpec(spec).monitor == monitor;
  };
}

ShrinkResult ShrinkFuzzSpec(const FuzzSpec& failing, const FuzzOracle& oracle,
                            int max_attempts) {
  ShrinkResult result;
  result.minimal = failing;
  FuzzSpec& cur = result.minimal;

  auto try_candidate = [&](const FuzzSpec& candidate) {
    if (result.attempts >= max_attempts) {
      return false;
    }
    ++result.attempts;
    if (!oracle(candidate)) {
      return false;
    }
    cur = candidate;
    return true;
  };

  bool progress = true;
  while (progress && result.attempts < max_attempts) {
    progress = false;

    // 1. Drop whole groups (largest first: removing more threads per oracle
    // call converges faster).
    for (size_t i = 0; i < cur.groups.size() && cur.groups.size() > 1;) {
      FuzzSpec candidate = cur;
      candidate.groups.erase(candidate.groups.begin() + static_cast<long>(i));
      if (try_candidate(candidate)) {
        progress = true;  // same index now names the next group
      } else {
        ++i;
      }
    }

    // 2. Shrink group counts: halve, then decrement.
    for (size_t i = 0; i < cur.groups.size(); ++i) {
      const int floor = cur.groups[i].kind == FuzzThreadGroup::Kind::kPiper ? 2 : 1;
      while (cur.groups[i].count > floor) {
        FuzzSpec candidate = cur;
        const int half = std::max(floor, candidate.groups[i].count / 2);
        candidate.groups[i].count =
            half < candidate.groups[i].count ? half : candidate.groups[i].count - 1;
        if (!try_candidate(candidate)) {
          break;
        }
        progress = true;
      }
    }

    // 3. Shrink loop counts and durations.
    for (size_t i = 0; i < cur.groups.size(); ++i) {
      while (cur.groups[i].loops > 1) {
        FuzzSpec candidate = cur;
        candidate.groups[i].loops = std::max(1, candidate.groups[i].loops / 2);
        if (!try_candidate(candidate)) {
          break;
        }
        progress = true;
      }
      FuzzSpec candidate = cur;
      candidate.groups[i].work = std::max<SimDuration>(Microseconds(10), cur.groups[i].work / 2);
      candidate.groups[i].sleep =
          std::max<SimDuration>(Microseconds(10), cur.groups[i].sleep / 2);
      if ((candidate.groups[i].work != cur.groups[i].work ||
           candidate.groups[i].sleep != cur.groups[i].sleep) &&
          try_candidate(candidate)) {
        progress = true;
      }
    }

    // 4. Shrink the machine.
    while (cur.cores > 1) {
      FuzzSpec candidate = cur;
      candidate.cores /= 2;
      if (candidate.numa_nodes > 1 &&
          (candidate.cores % candidate.numa_nodes != 0 ||
           candidate.cores == candidate.numa_nodes)) {
        candidate.numa_nodes = 1;
      }
      if (!try_candidate(candidate)) {
        break;
      }
      progress = true;
    }
    if (cur.numa_nodes > 1) {
      FuzzSpec candidate = cur;
      candidate.numa_nodes = 1;
      if (try_candidate(candidate)) {
        progress = true;
      }
    }
  }
  return result;
}

}  // namespace schedbattle
