#include "src/check/monitors.h"

#include <cmath>
#include <sstream>

#include "src/sched/machine.h"

namespace schedbattle {

namespace {

// Stable key for one (core, thread) pair.
uint64_t PairKey(CoreId core, ThreadId thread) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(core)) << 32) |
         static_cast<uint32_t>(thread);
}

bool RunnableOrRunning(ThreadState s) {
  return s == ThreadState::kRunnable || s == ThreadState::kRunning;
}

}  // namespace

// ---------------------------------------------------------------- work conservation

WorkConservationMonitor::WorkConservationMonitor(MonitorOptions options)
    : InvariantMonitor("work_conservation", options) {}

void WorkConservationMonitor::Poll(SimTime now) {
  const SimDuration grace = options().conservation_grace;
  for (CoreId c = 0; c < machine()->num_cores(); ++c) {
    const Core& core = machine()->core(c);
    if (!core.idle() || core.idle_since < 0 || now - core.idle_since <= grace) {
      continue;
    }
    for (const auto& t : machine()->threads()) {
      if (t->state() != ThreadState::kRunnable || !t->CanRunOn(c) ||
          now - t->runnable_since <= grace) {
        continue;
      }
      // One report per starvation episode, not one per poll.
      const uint64_t key = PairKey(c, t->id());
      auto [it, inserted] = reported_.try_emplace(key, t->runnable_since);
      if (!inserted && it->second == t->runnable_since) {
        continue;
      }
      it->second = t->runnable_since;
      std::ostringstream msg;
      msg << "core " << c << " idle for " << FormatTime(now - core.idle_since)
          << " while thread " << t->id() << " (" << t->name() << ") has waited runnable for "
          << FormatTime(now - t->runnable_since);
      Record(now, msg.str(), c, t->id());
    }
  }
}

// -------------------------------------------------------------------- lost wakeups

LostWakeupMonitor::LostWakeupMonitor(MonitorOptions options)
    : InvariantMonitor("lost_wakeup", options) {}

void LostWakeupMonitor::OnWake(SimTime now, const SimThread& thread, CoreId /*target*/) {
  pending_[thread.id()] = PendingWake{now, false};
}

void LostWakeupMonitor::OnFork(SimTime now, const SimThread& thread, CoreId /*target*/) {
  pending_[thread.id()] = PendingWake{now, false};
}

void LostWakeupMonitor::OnDispatch(SimTime /*now*/, CoreId /*core*/, const SimThread& thread) {
  pending_.erase(thread.id());
}

void LostWakeupMonitor::OnDeschedule(SimTime /*now*/, CoreId /*core*/, const SimThread& thread,
                                     char /*reason*/) {
  // A thread cannot be descheduled without having been dispatched, but be
  // defensive against wake-erase orderings around exit.
  pending_.erase(thread.id());
}

void LostWakeupMonitor::Poll(SimTime now) { CheckPending(now, /*finishing=*/false); }

void LostWakeupMonitor::Finish(SimTime now) { CheckPending(now, /*finishing=*/true); }

void LostWakeupMonitor::CheckPending(SimTime now, bool finishing) {
  const SimDuration bound = options().wakeup_stall_bound;
  for (const auto& t : machine()->threads()) {
    auto it = pending_.find(t->id());
    if (it == pending_.end() || it->second.reported) {
      continue;
    }
    if (t->state() != ThreadState::kRunnable || now - it->second.woken_at <= bound) {
      continue;
    }
    // A long-waiting runnable thread is legal while its core is busy (ULE
    // batch threads can starve unboundedly). An *idle* assigned core means
    // the wakeup never reached a runqueue any pick could see.
    const CoreId cpu = t->cpu();
    if (cpu == kInvalidCore || !machine()->core(cpu).idle()) {
      continue;
    }
    it->second.reported = true;
    std::ostringstream msg;
    msg << "thread " << t->id() << " (" << t->name() << ") woken at "
        << FormatTime(it->second.woken_at) << " still undispatched after "
        << FormatTime(now - it->second.woken_at) << " with its core " << cpu << " idle";
    if (finishing) {
      msg << " at end of run";
    }
    Record(now, msg.str(), cpu, t->id());
  }
}

// ---------------------------------------------------------- vruntime monotonicity

VruntimeMonotonicMonitor::VruntimeMonotonicMonitor(MonitorOptions options)
    : InvariantMonitor("vruntime_monotonic", options) {}

void VruntimeMonotonicMonitor::Attach(Machine* machine) {
  InvariantMonitor::Attach(machine);
  last_seen_.assign(machine->num_cores(), kNoMinVruntime);
}

void VruntimeMonotonicMonitor::OnDispatch(SimTime now, CoreId core, const SimThread& /*thread*/) {
  CheckCore(now, core);
}

void VruntimeMonotonicMonitor::Poll(SimTime now) {
  for (CoreId c = 0; c < machine()->num_cores(); ++c) {
    CheckCore(now, c);
  }
}

void VruntimeMonotonicMonitor::CheckCore(SimTime now, CoreId core) {
  const int64_t v = machine()->scheduler().MinVruntimeOf(core);
  if (v == kNoMinVruntime) {
    return;  // not a vruntime scheduler
  }
  if (last_seen_[core] != kNoMinVruntime && v < last_seen_[core]) {
    std::ostringstream msg;
    msg << "core " << core << " min_vruntime moved backwards: " << last_seen_[core] << " -> "
        << v;
    Record(now, msg.str(), core);
  }
  last_seen_[core] = v;
}

// -------------------------------------------------------------- interactivity score

UleScoreMonitor::UleScoreMonitor(MonitorOptions options)
    : InvariantMonitor("ule_score_range", options) {}

void UleScoreMonitor::OnDispatch(SimTime now, CoreId core, const SimThread& thread) {
  CheckThread(now, thread, core);
}

void UleScoreMonitor::OnWake(SimTime now, const SimThread& thread, CoreId target) {
  CheckThread(now, thread, target);
}

void UleScoreMonitor::CheckThread(SimTime now, const SimThread& thread, CoreId core) {
  const int penalty = machine()->scheduler().InteractivityPenaltyOf(&thread);
  if (penalty == -1) {
    return;  // not applicable (CFS)
  }
  if (penalty < 0 || penalty > 100) {
    std::ostringstream msg;
    msg << "thread " << thread.id() << " (" << thread.name() << ") interactivity penalty "
        << penalty << " outside [0, 100]";
    Record(now, msg.str(), core, thread.id());
  }
}

// -------------------------------------------------------------- runqueue accounting

RunqueueAccountingMonitor::RunqueueAccountingMonitor(MonitorOptions options)
    : InvariantMonitor("runqueue_accounting", options) {}

void RunqueueAccountingMonitor::OnDispatch(SimTime now, CoreId core, const SimThread& /*thread*/) {
  CheckAccounting(now, core);
}

void RunqueueAccountingMonitor::Poll(SimTime now) { CheckAccounting(now, kInvalidCore); }

void RunqueueAccountingMonitor::CheckAccounting(SimTime now, CoreId core) {
  const Scheduler& sched = machine()->scheduler();
  int scheduler_count = 0;
  for (CoreId c = 0; c < machine()->num_cores(); ++c) {
    const int count = sched.RunnableCountOf(c);
    const double load = sched.LoadOf(c);
    if (count < 0 || load < 0.0) {
      std::ostringstream msg;
      msg << "core " << c << " has negative accounting: runnable " << count << ", load " << load;
      Record(now, msg.str(), c);
    }
    scheduler_count += count;
  }
  int machine_count = 0;
  for (const auto& t : machine()->threads()) {
    if (RunnableOrRunning(t->state())) {
      ++machine_count;
    }
  }
  if (scheduler_count != machine_count) {
    std::ostringstream msg;
    msg << "scheduler accounts for " << scheduler_count
        << " runnable-or-running threads but the machine has " << machine_count;
    Record(now, msg.str(), core);
  }
}

// ------------------------------------------------------------------ NUMA imbalance

NumaImbalanceMonitor::NumaImbalanceMonitor(MonitorOptions options)
    : InvariantMonitor("numa_imbalance", options) {}

void NumaImbalanceMonitor::Attach(Machine* machine) {
  InvariantMonitor::Attach(machine);
  // The 25% tolerance is CFS's NUMA-level balancing rule; ULE's balancer
  // makes no such promise, and a single node has nothing to balance across.
  active_ = machine->topology().GroupsAt(TopoLevel::kNode).size() > 1 &&
            machine->scheduler().name() == "cfs";
  excess_since_ = -1;
  reported_episode_ = false;
}

void NumaImbalanceMonitor::Poll(SimTime now) {
  if (!active_) {
    return;
  }
  const CpuTopology& topo = machine()->topology();
  const auto& nodes = topo.GroupsAt(TopoLevel::kNode);
  // Per-node counts of fully-migratable threads. Pinned threads are the
  // workload's choice, not the balancer's, so they do not enter the ratio.
  std::vector<int> total(nodes.size(), 0);    // runnable + running
  std::vector<int> waiting(nodes.size(), 0);  // runnable, not running
  const CpuMask all = CpuMask::AllOf(machine()->num_cores());
  for (const auto& t : machine()->threads()) {
    if (!RunnableOrRunning(t->state()) || t->affinity().Count() != all.Count() ||
        t->cpu() == kInvalidCore) {
      continue;
    }
    const int node = topo.NodeOf(t->cpu());
    ++total[node];
    if (t->state() == ThreadState::kRunnable) {
      ++waiting[node];
    }
  }
  int max_node = 0;
  double max_avg = -1.0, min_avg = 1e30;
  for (size_t n = 0; n < nodes.size(); ++n) {
    const double avg = static_cast<double>(total[n]) / static_cast<double>(nodes[n].size());
    if (avg > max_avg) {
      max_avg = avg;
      max_node = static_cast<int>(n);
    }
    min_avg = std::min(min_avg, avg);
  }
  // The violation needs three things at once: the busiest node has threads
  // *waiting* (something a balancer could move), the least-loaded node is
  // genuinely busy (idle-core cases belong to the work-conservation
  // monitor), and the per-core ratio exceeds threshold * slack.
  const double limit = options().numa_imbalance_threshold * options().numa_imbalance_slack;
  const bool bad = waiting[max_node] >= 2 && min_avg > 0.5 && max_avg > limit * min_avg;
  if (!bad) {
    excess_since_ = -1;
    reported_episode_ = false;
    return;
  }
  if (excess_since_ < 0) {
    excess_since_ = now;
  }
  if (reported_episode_ || now - excess_since_ <= options().numa_grace) {
    return;
  }
  reported_episode_ = true;
  std::ostringstream msg;
  msg << "node " << max_node << " per-core load " << max_avg << " exceeds " << limit
      << "x the least-loaded node (" << min_avg << ") with " << waiting[max_node]
      << " waiting threads, persisting " << FormatTime(now - excess_since_);
  Record(now, msg.str());
}

}  // namespace schedbattle
