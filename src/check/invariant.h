// Online invariant monitoring: always-on correctness checks for the
// scheduling laws both ULE and CFS must uphold.
//
// An InvariantMonitor is a MachineObserver that watches one scheduling law
// (work conservation, no lost wakeups, vruntime monotonicity, ...) while a
// simulation runs, and records a Violation — with the decision provenance
// that led up to it — the moment the law is broken. Monitors attach through
// the ObserverBus like any other observer, so they compose with SchedStats
// and SchedTrace and cost nothing when not attached.
//
// The MonitorSuite bundles every monitor applicable to a machine, drives the
// periodically-polled ones from a single sampler, and renders one
// deterministic violation report. ExperimentSpec::check_invariants arms a
// suite inside ExecuteSpec, which is how the schedule fuzzer
// (tools/schedfuzz.cc) checks whole campaigns.
#ifndef SRC_CHECK_INVARIANT_H_
#define SRC_CHECK_INVARIANT_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sched/observer.h"
#include "src/sim/time.h"

namespace schedbattle {

class Machine;
class PeriodicSampler;

// One recorded invariant violation. `recent_picks`/`recent_balance` carry
// the last few placement and balance decisions the monitor observed before
// the violation — the provenance trail for diagnosing *why* the scheduler
// ended up in the illegal state.
struct Violation {
  SimTime time = 0;
  std::string monitor;
  std::string message;
  CoreId core = kInvalidCore;
  ThreadId thread = kInvalidThread;
  std::vector<PickCpuDecision> recent_picks;
  std::vector<BalancePassRecord> recent_balance;
};

// Tunables shared by the monitors. Defaults are conservative enough that a
// correct CFS or ULE never trips them (see check_monitors_test's clean-run
// cases and the schedfuzz CI smoke job).
struct MonitorOptions {
  // Period of the shared poll driving the sampled monitors.
  SimDuration poll_period = Milliseconds(25);
  // Work conservation: a core idling this long while a compatible thread
  // waits runnable is a violation. Must exceed the slowest balancing
  // machinery of either scheduler (ULE's periodic balancer: <= 1.5s).
  SimDuration conservation_grace = Seconds(2);
  // Lost wakeup: a woken thread still undispatched after this long while its
  // assigned core sits idle was dropped by the scheduler.
  SimDuration wakeup_stall_bound = Milliseconds(100);
  // NUMA compliance: tolerated per-core load ratio between the busiest and
  // the least-loaded node is threshold * slack (slack absorbs the legitimate
  // just-under-the-threshold steady states, e.g. the paper's 9-vs-7 case).
  double numa_imbalance_threshold = 1.25;
  double numa_imbalance_slack = 1.3;
  // ... and the excess ratio must persist this long before it counts.
  SimDuration numa_grace = Seconds(2);
  // Per-monitor cap on stored Violation records (counts keep incrementing).
  size_t max_recorded = 32;
  // How many recent decisions each violation carries as provenance.
  size_t provenance_depth = 4;
};

// Base class: violation recording plus a provenance ring of recent
// decisions. Subclasses overriding OnPickCpu/OnBalancePass must call the
// base implementation to keep the provenance trail intact.
class InvariantMonitor : public MachineObserver {
 public:
  InvariantMonitor(std::string name, MonitorOptions options);
  ~InvariantMonitor() override;
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  const std::string& name() const { return name_; }
  const MonitorOptions& options() const { return options_; }

  // Attaches to the machine's observer bus. Detach is idempotent and safe
  // after the machine outlived its engine events.
  virtual void Attach(Machine* machine);
  virtual void Detach();

  // Called by the suite's shared sampler; default no-op.
  virtual void Poll(SimTime /*now*/) {}
  // End-of-run quiescence checks; default no-op.
  virtual void Finish(SimTime /*now*/) {}

  // Total violations seen (keeps counting past the storage cap).
  uint64_t violation_count() const { return violation_count_; }
  const std::vector<Violation>& violations() const { return violations_; }

  // ---- MachineObserver (provenance recording) ----
  void OnPickCpu(SimTime now, const PickCpuDecision& decision) override;
  void OnBalancePass(SimTime now, const BalancePassRecord& pass) override;

 protected:
  Machine* machine() const { return machine_; }

  // Records one violation (stamped with provenance).
  void Record(SimTime now, std::string message, CoreId core = kInvalidCore,
              ThreadId thread = kInvalidThread);

 private:
  std::string name_;
  MonitorOptions options_;
  Machine* machine_ = nullptr;
  bool attached_ = false;
  uint64_t violation_count_ = 0;
  std::vector<Violation> violations_;
  // Provenance rings, oldest overwritten.
  std::vector<PickCpuDecision> pick_ring_;
  std::vector<BalancePassRecord> balance_ring_;
  size_t pick_head_ = 0;
  size_t balance_head_ = 0;
};

// Owns one of every monitor applicable to the machine's scheduler, drives
// Poll() from a single periodic sampler, and aggregates the results.
class MonitorSuite {
 public:
  explicit MonitorSuite(Machine* machine) : MonitorSuite(machine, MonitorOptions()) {}
  MonitorSuite(Machine* machine, MonitorOptions options);
  ~MonitorSuite();
  MonitorSuite(const MonitorSuite&) = delete;
  MonitorSuite& operator=(const MonitorSuite&) = delete;

  // Runs every monitor's end-of-run Finish() check (once; idempotent).
  // Separate from Detach so a SchedStats snapshot taken while the monitors
  // are still on the bus can include the final counts.
  void FinishChecks();

  // FinishChecks + detach every monitor from the bus. Idempotent; called by
  // the destructor if not called explicitly.
  void Detach();

  uint64_t total_violations() const;
  const std::vector<std::unique_ptr<InvariantMonitor>>& monitors() const { return monitors_; }
  // First monitor with violations, or nullptr if the run was clean.
  const InvariantMonitor* first_violating() const;

  // Deterministic human-readable report: one line per monitor with counts,
  // then each stored violation with its provenance. Empty string when clean.
  std::string Report() const;

 private:
  Machine* machine_;
  MonitorOptions options_;
  bool finished_ = false;
  bool detached_ = false;
  std::vector<std::unique_ptr<InvariantMonitor>> monitors_;
  std::unique_ptr<PeriodicSampler> sampler_;
};

// Formats one violation (used by MonitorSuite::Report and tests).
std::string FormatViolation(const Violation& v);

}  // namespace schedbattle

#endif  // SRC_CHECK_INVARIANT_H_
