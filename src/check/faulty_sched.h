// FaultySched: a deliberately-broken scheduler for validating the monitors.
//
// Wraps a real scheduler (CFS or ULE) and forwards every hook, except for
// one injected fault chosen by FaultConfig. Each fault breaks exactly one
// scheduling law, so check_monitors_test can prove that every
// InvariantMonitor actually fires — a monitor that never fires is
// indistinguishable from a monitor that checks nothing.
//
// The decorator masquerades as the inner scheduler (name() forwards), so
// monitors that specialize on the scheduler kind (vruntime, NUMA) see the
// machine exactly as they would in a real run.
#ifndef SRC_CHECK_FAULTY_SCHED_H_
#define SRC_CHECK_FAULTY_SCHED_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/sched/registry.h"
#include "src/sched/sched_class.h"

namespace schedbattle {

enum class FaultKind {
  kNone,
  // Silently drop the arg-th wakeup enqueue (1-based). The woken thread
  // stays kRunnable but is in no runqueue: lost_wakeup and
  // work_conservation fire, and (under ULE) the load accounting desyncs.
  kDropWakeup,
  // Suppress all balancing: no periodic balancer, no newidle pull, no idle
  // steal. Placement skew then persists: numa_imbalance (CFS) and
  // work_conservation fire.
  kNoBalance,
  // MinVruntimeOf returns a strictly decreasing counter: vruntime_monotonic
  // fires on its second observation.
  kCorruptVruntime,
  // InteractivityPenaltyOf returns the real penalty plus `arg`:
  // ule_score_range fires (use arg > 100 - max legal score).
  kCorruptScore,
  // RunnableCountOf over-reports core 0 by `arg`: runqueue_accounting fires
  // at the next dispatch.
  kMiscountLoad,
};

const char* FaultKindName(FaultKind kind);
// Parses the FaultKindName spelling; returns false on unknown names.
bool ParseFaultKind(std::string_view name, FaultKind* out);

struct FaultConfig {
  FaultKind kind = FaultKind::kNone;
  int arg = 1;  // fault-specific parameter, see FaultKind
};

// True iff scheduling class `sched` can express `fault`. Corrupting a clock
// the class does not keep (corrupt_vruntime without a vruntime,
// corrupt_score without an interactivity score) silently no-ops — the
// sentinel return already disarms the corresponding monitor — so spec
// parsing rejects such combinations up front. When inapplicable and `why`
// is non-null, *why receives a one-line explanation naming the classes that
// do support the fault.
bool FaultApplicable(FaultKind fault, SchedKind sched, std::string* why = nullptr);

class FaultySched : public Scheduler {
 public:
  FaultySched(std::unique_ptr<Scheduler> inner, FaultConfig fault);
  ~FaultySched() override;

  std::string_view name() const override { return inner_->name(); }
  const FaultConfig& fault() const { return fault_; }
  // True once the configured one-shot fault (kDropWakeup) has triggered.
  bool fault_triggered() const { return dropped_ != nullptr; }

  void Attach(Machine* machine) override;
  void Start() override;
  void DeclareGroup(GroupId id, GroupId parent) override;
  void TaskNew(SimThread* thread, SimThread* parent) override;
  void TaskExit(SimThread* thread) override;
  CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) override;
  void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) override;
  void DequeueTask(CoreId core, SimThread* thread) override;
  SimThread* PickNextTask(CoreId core) override;
  void PutPrevTask(CoreId core, SimThread* thread) override;
  void OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) override;
  void YieldTask(CoreId core, SimThread* thread) override;
  void TaskTick(CoreId core, SimThread* current) override;
  void ReniceTask(SimThread* thread) override;
  void CheckPreemptWakeup(CoreId core, SimThread* woken) override;
  void OnCoreIdle(CoreId core) override;
  SimDuration TickPeriod() const override;
  double LoadOf(CoreId core) const override;
  int RunnableCountOf(CoreId core) const override;
  int InteractivityPenaltyOf(const SimThread* thread) const override;
  int64_t MinVruntimeOf(CoreId core) const override;

 private:
  std::unique_ptr<Scheduler> inner_;
  FaultConfig fault_;
  int wakeups_seen_ = 0;
  SimThread* dropped_ = nullptr;        // the thread whose wakeup was dropped
  mutable int64_t vruntime_calls_ = 0;  // kCorruptVruntime counter
};

}  // namespace schedbattle

#endif  // SRC_CHECK_FAULTY_SCHED_H_
