// The invariant-monitor family: one class per scheduling law.
//
// Each monitor checks a property the paper's results implicitly rely on:
//
//   WorkConservationMonitor   no core idles beyond a balance period while a
//                             compatible thread waits runnable (paper Fig. 6:
//                             both balancers exist to prevent exactly this)
//   LostWakeupMonitor         every wakeup leads to a dispatch; a woken
//                             thread whose assigned core sits idle was
//                             dropped between SelectTaskRq and the runqueue
//   VruntimeMonotonicMonitor  CFS per-runqueue min_vruntime never moves
//                             backwards (the fairness clock only advances)
//   UleScoreMonitor           ULE interactivity penalty stays in [0, 100]
//   RunqueueAccountingMonitor scheduler load/runnable accounting matches the
//                             machine's thread states at every dispatch
//   NumaImbalanceMonitor      CFS's 25% NUMA imbalance tolerance is not
//                             exceeded persistently (paper Section 2.1)
//
// Every monitor is proven live by check_monitors_test: a FaultySched fault
// makes each one fire, and clean CFS/ULE runs keep all of them silent.
#ifndef SRC_CHECK_MONITORS_H_
#define SRC_CHECK_MONITORS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/check/invariant.h"

namespace schedbattle {

// No core may idle for more than `conservation_grace` while a thread that
// could run on it has been waiting runnable at least as long.
class WorkConservationMonitor : public InvariantMonitor {
 public:
  explicit WorkConservationMonitor(MonitorOptions options);
  void Poll(SimTime now) override;

 private:
  // One report per (core, thread) starvation episode, not one per poll.
  std::unordered_map<uint64_t, SimTime> reported_;
};

// Wake-to-dispatch pipeline: a thread that was woken (or forked) must reach
// a core. If it is still waiting after `wakeup_stall_bound` while the core
// the scheduler assigned it to sits idle, the wakeup was lost.
class LostWakeupMonitor : public InvariantMonitor {
 public:
  explicit LostWakeupMonitor(MonitorOptions options);
  void OnWake(SimTime now, const SimThread& thread, CoreId target) override;
  void OnFork(SimTime now, const SimThread& thread, CoreId target) override;
  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override;
  void OnDeschedule(SimTime now, CoreId core, const SimThread& thread, char reason) override;
  void Poll(SimTime now) override;
  void Finish(SimTime now) override;

 private:
  void CheckPending(SimTime now, bool finishing);

  struct PendingWake {
    SimTime woken_at = 0;
    bool reported = false;
  };
  std::unordered_map<ThreadId, PendingWake> pending_;
};

// CFS's fairness clock: each runqueue's min_vruntime is a ratchet. Reads the
// scheduler through Scheduler::MinVruntimeOf, so it also sees through
// decorators (FaultySched); inactive for schedulers that return the
// kNoMinVruntime sentinel (ULE).
class VruntimeMonotonicMonitor : public InvariantMonitor {
 public:
  explicit VruntimeMonotonicMonitor(MonitorOptions options);
  void Attach(Machine* machine) override;
  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override;
  void Poll(SimTime now) override;

 private:
  void CheckCore(SimTime now, CoreId core);

  std::vector<int64_t> last_seen_;  // per core; kNoMinVruntime = not yet seen
};

// ULE's interactivity penalty is defined on [0, 100]; anything outside the
// range breaks the interactive classification (paper Section 2.2). Inactive
// for schedulers whose InteractivityPenaltyOf returns -1 (CFS).
class UleScoreMonitor : public InvariantMonitor {
 public:
  explicit UleScoreMonitor(MonitorOptions options);
  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override;
  void OnWake(SimTime now, const SimThread& thread, CoreId target) override;

 private:
  void CheckThread(SimTime now, const SimThread& thread, CoreId core);
};

// The scheduler's own accounting must agree with the machine: summed over
// all cores, RunnableCountOf() equals the number of runnable-or-running
// threads, and per-core loads are never negative. Checked at every dispatch
// (the instant the issue text names: all transitions are settled there).
class RunqueueAccountingMonitor : public InvariantMonitor {
 public:
  explicit RunqueueAccountingMonitor(MonitorOptions options);
  void OnDispatch(SimTime now, CoreId core, const SimThread& thread) override;
  // Also checked on the shared poll: the accounting must hold during long
  // dispatch-free stretches too — exactly where tick elision batches work and
  // where a mid-period idle transition would surface a double-charged tick.
  void Poll(SimTime now) override;

 private:
  void CheckAccounting(SimTime now, CoreId core);
};

// CFS tolerates up to `numa_imbalance_threshold` (25%) per-core load
// imbalance between NUMA nodes but must correct anything persistently
// beyond it. Counts only fully-migratable (unpinned) runnable threads and
// requires the excess to persist for `numa_grace` before reporting.
// Inactive on single-node machines and non-CFS schedulers.
class NumaImbalanceMonitor : public InvariantMonitor {
 public:
  explicit NumaImbalanceMonitor(MonitorOptions options);
  void Attach(Machine* machine) override;
  void Poll(SimTime now) override;

 private:
  bool active_ = false;
  SimTime excess_since_ = -1;  // start of the current over-threshold episode
  bool reported_episode_ = false;
};

}  // namespace schedbattle

#endif  // SRC_CHECK_MONITORS_H_
