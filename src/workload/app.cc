#include "src/workload/app.h"

namespace schedbattle {

double AppStats::OpsPerSecond(SimTime now) const {
  const SimTime end = finished >= 0 ? finished : now;
  if (started < 0 || end <= started || ops == 0) {
    return 0.0;
  }
  return static_cast<double>(ops) / ToSeconds(end - started);
}

SimThread* Application::SpawnThread(Machine& machine, ThreadSpec spec, SimThread* parent) {
  spec.group = group_;
  SimThread* t = machine.Spawn(std::move(spec), parent);
  threads_.push_back(t);
  ++live_threads_;
  launched_ = true;
  return t;
}

void Application::NoteThreadExited(SimThread* thread, SimTime now) {
  (void)thread;
  --live_threads_;
  if (finished() && stats_.finished < 0) {
    stats_.finished = now;
  }
}

void ScriptedApp::Launch(Machine& machine) {
  Rng rng(seed_);
  for (const ThreadTemplate& tmpl : templates_) {
    for (int i = 0; i < tmpl.count; ++i) {
      ThreadSpec spec;
      spec.name = name() + "/" + tmpl.name + "-" + std::to_string(i);
      spec.nice = tmpl.nice;
      spec.affinity = tmpl.affinity;
      spec.body = MakeScriptBody(tmpl.script, rng.Split());
      spec.parent_runtime_hint = tmpl.parent_runtime_hint;
      spec.parent_sleep_hint = tmpl.parent_sleep_hint;
      SpawnThread(machine, std::move(spec), /*parent=*/nullptr);
    }
  }
  MarkLaunched();
}

}  // namespace schedbattle
