// Simulated blocking synchronization primitives.
//
// All primitives follow a try/grant protocol that matches the ThreadBody
// contract: an acquire attempt either succeeds immediately or enqueues the
// thread and returns false — the body then returns Step::Block(). When the
// resource becomes available, the primitive records a grant for the chosen
// waiter and wakes it through Machine::Wake; the re-run attempt consumes the
// grant and succeeds. Waking goes through the scheduler's full wake path
// (SelectTaskRq, enqueue, preemption check), so lock handoffs and pipe
// writes exercise exactly the scheduler behaviours the paper studies.
#ifndef SRC_WORKLOAD_SYNC_H_
#define SRC_WORKLOAD_SYNC_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "src/sched/machine.h"
#include "src/sched/thread.h"

namespace schedbattle {

// A blocking mutex with FIFO handoff (ownership passes directly to the first
// waiter on release, like a kernel sleep lock).
class SimMutex {
 public:
  // True if acquired (or already held by `t`). False: `t` was enqueued and
  // must block.
  bool TryAcquire(Machine& m, SimThread* t);
  void Release(Machine& m, SimThread* t);

  bool held() const { return owner_ != kInvalidThread; }
  ThreadId owner() const { return owner_; }
  size_t waiters() const { return waiters_.size(); }

 private:
  ThreadId owner_ = kInvalidThread;
  std::deque<SimThread*> waiters_;
};

// Counting semaphore.
class SimSemaphore {
 public:
  explicit SimSemaphore(int initial = 0) : count_(initial) {}

  // True if a unit was consumed; false: enqueued, must block.
  bool TryWait(Machine& m, SimThread* t);
  void Post(Machine& m, SimThread* waker);

  int count() const { return count_; }
  size_t waiters() const { return waiters_.size(); }

 private:
  int count_;
  std::deque<SimThread*> waiters_;
  std::unordered_set<ThreadId> granted_;
};

// A cyclic barrier over `parties` threads. The last arriver wakes everyone
// (the all-at-once wake pattern of pthread_barrier / OpenMP).
class SimBarrier {
 public:
  explicit SimBarrier(int parties) : parties_(parties) {}

  // True if the barrier opened for `t` (last arriver, or re-run after the
  // barrier opened); false: must block.
  bool TryWait(Machine& m, SimThread* t);

  int arrived() const { return arrived_; }

 private:
  int parties_;
  int arrived_ = 0;
  std::deque<SimThread*> waiters_;
  std::unordered_set<ThreadId> granted_;
};

// A spin-then-sleep barrier (OpenMP-style, the paper's NAS "spin-barrier ...
// for 100ms and then sleeps"). Arrivers poll in short compute bursts; a
// thread that exhausts its spin budget blocks and is woken by the last
// arriver. Threads that pass the barrier while spinning never enter the
// scheduler at all — the behaviour behind the paper's MG result.
class SimSpinBarrier {
 public:
  explicit SimSpinBarrier(int parties) : parties_(parties) {}

  // Registers arrival (first call per generation) or polls. Returns true
  // when the barrier has opened for this thread's arrival generation.
  bool Poll(Machine& m, SimThread* t);

  // The thread gives up spinning; it will be woken at release.
  void SleepUntilRelease(SimThread* t);

  uint64_t generation() const { return generation_; }

 private:
  int parties_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
  std::deque<SimThread*> sleepers_;
  std::unordered_map<ThreadId, uint64_t> arrival_gen_;
};

// A byte/message-counting pipe with blocking readers (unbounded capacity,
// like a socket buffer large enough for the workload). Each Write wakes one
// reader; used by hackbench and the apache model.
class SimPipe {
 public:
  // True if one message was consumed; false: enqueued as reader, must block.
  bool TryRead(Machine& m, SimThread* t);
  void Write(Machine& m, SimThread* writer, int messages = 1);

  int available() const { return available_; }
  size_t readers_waiting() const { return readers_.size(); }

 private:
  int available_ = 0;
  std::deque<SimThread*> readers_;
  std::unordered_set<ThreadId> granted_;
};

}  // namespace schedbattle

#endif  // SRC_WORKLOAD_SYNC_H_
