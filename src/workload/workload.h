// Workload: a set of applications with start times, run on one machine.
#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <map>
#include <memory>
#include <vector>

#include "src/workload/app.h"

namespace schedbattle {

class Workload {
 public:
  explicit Workload(Machine* machine);

  // Adds an application starting at `start_at` (simulated time). Returns a
  // borrowed pointer (the workload owns the app). `parent_group` nests the
  // app's cgroup under a user group from MakeUserGroup (paper Section 2.1:
  // fairness between users, then between a user's applications).
  Application* Add(std::unique_ptr<Application> app, SimTime start_at = 0,
                   GroupId parent_group = kRootGroup);

  // Allocates a user-level cgroup; pass it as Add()'s parent_group.
  GroupId MakeUserGroup();

  // Boots the machine (if needed), schedules launches, and runs until all
  // apps finish or `horizon` elapses. Returns the finish time of the last
  // app, or `horizon` if some never finished.
  SimTime Run(SimTime horizon);

  bool AllFinished() const;
  const std::vector<std::unique_ptr<Application>>& apps() const { return apps_; }
  Application* app(size_t i) const { return apps_[i].get(); }

 private:
  Machine* machine_;
  std::vector<std::unique_ptr<Application>> apps_;
  std::vector<SimTime> start_times_;
  std::map<GroupId, Application*> app_by_group_;
  GroupId next_group_ = 1;
};

}  // namespace schedbattle

#endif  // SRC_WORKLOAD_WORKLOAD_H_
