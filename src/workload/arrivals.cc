#include "src/workload/arrivals.h"

#include <algorithm>
#include <cmath>

namespace schedbattle {

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kSpike:
      return "spike";
  }
  return "unknown";
}

double ArrivalSpec::RateAt(SimTime t) const {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return rate_per_sec;
    case ArrivalKind::kDiurnal: {
      if (diurnal_period <= 0) {
        return rate_per_sec;
      }
      // Raised cosine: 1 at phase 0, trough_fraction at phase pi.
      const double phase =
          2.0 * M_PI * static_cast<double>(t % diurnal_period) / static_cast<double>(diurnal_period);
      const double lo = std::clamp(trough_fraction, 0.0, 1.0);
      const double mod = lo + (1.0 - lo) * 0.5 * (1.0 + std::cos(phase));
      return rate_per_sec * mod;
    }
    case ArrivalKind::kSpike: {
      const bool in_spike = t >= spike_start && t < spike_start + spike_duration;
      return in_spike ? rate_per_sec * std::max(spike_multiplier, 0.0) : rate_per_sec;
    }
  }
  return rate_per_sec;
}

double ArrivalSpec::PeakRate() const {
  switch (kind) {
    case ArrivalKind::kPoisson:
    case ArrivalKind::kDiurnal:
      return rate_per_sec;
    case ArrivalKind::kSpike:
      return rate_per_sec * std::max(spike_multiplier, 1.0);
  }
  return rate_per_sec;
}

ArrivalProcess::ArrivalProcess(ArrivalSpec spec)
    : spec_(spec), rng_(spec.seed * 0x9e3779b97f4a7c15ULL + 0xa5a5a5a5ULL), peak_(spec.PeakRate()) {}

SimTime ArrivalProcess::Next(SimTime now) {
  if (peak_ <= 0) {
    return SimTime{1} << 62;  // effectively never
  }
  // Thinning (Lewis & Shedler): candidate arrivals at the peak rate, each
  // accepted with probability rate(t)/peak. Both draws happen for every
  // candidate, so RNG consumption is a pure function of the spec.
  const double mean_gap_ns = 1e9 / peak_;
  SimTime t = now;
  for (;;) {
    const double gap = rng_.NextExponential(mean_gap_ns);
    const double accept = rng_.NextDouble();
    // Never stall: an inter-arrival rounds to at least 1ns.
    t += std::max<SimDuration>(1, static_cast<SimDuration>(gap));
    if (accept * peak_ <= spec_.RateAt(t)) {
      return t;
    }
  }
}

}  // namespace schedbattle
