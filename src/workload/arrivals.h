// Deterministic open-loop arrival processes.
//
// Closed-loop app models (everything in src/apps before the serving fleet)
// tie offered load to completion: a worker only issues its next operation
// after the previous one finished, so an overloaded scheduler silently sheds
// load. Serving a fleet of users is the opposite regime — requests arrive on
// their own clock whether or not the machine keeps up, and the interesting
// question is how far the tail stretches when it doesn't.
//
// ArrivalProcess generates one seeded, reproducible arrival sequence:
//   kPoisson  - constant-rate Poisson (exponential inter-arrivals).
//   kDiurnal  - Poisson with a raised-cosine rate curve between
//               trough_fraction*rate and rate (a compressed day/night cycle).
//   kSpike    - baseline Poisson with the rate multiplied by
//               spike_multiplier inside [spike_start, spike_start+duration)
//               — the "load spike lands on a saturated box" trace.
//
// Time-varying rates are sampled by thinning against the peak rate, so the
// RNG consumption depends only on the seed and the spec — the sequence is
// identical across shard counts, tick modes and host machines. Arrival
// events themselves are injected into the engine's global lane
// (SimEngine::PostAt), which both shard regimes order identically.
#ifndef SRC_WORKLOAD_ARRIVALS_H_
#define SRC_WORKLOAD_ARRIVALS_H_

#include <cstdint>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace schedbattle {

enum class ArrivalKind : uint8_t {
  kPoisson,
  kDiurnal,
  kSpike,
};
const char* ArrivalKindName(ArrivalKind kind);

struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  double rate_per_sec = 1000.0;  // baseline (= peak) arrival rate

  // kDiurnal: raised cosine with this period; the instantaneous rate swings
  // between trough_fraction * rate_per_sec (at t = period/2) and
  // rate_per_sec (at t = 0 mod period).
  SimDuration diurnal_period = Seconds(10);
  double trough_fraction = 0.25;

  // kSpike: rate_per_sec * spike_multiplier inside the spike window.
  SimTime spike_start = Seconds(1);
  SimDuration spike_duration = Milliseconds(500);
  double spike_multiplier = 4.0;

  uint64_t seed = 1;

  // Instantaneous rate at simulated time t (requests/sec).
  double RateAt(SimTime t) const;
  // Maximum of RateAt over all t — the thinning envelope.
  double PeakRate() const;
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(ArrivalSpec spec);

  // The next arrival strictly after `now`. Strictly increasing when called
  // with its own return values; the full sequence is a pure function of the
  // spec (thinning consumes RNG draws deterministically).
  SimTime Next(SimTime now);

  const ArrivalSpec& spec() const { return spec_; }

 private:
  ArrivalSpec spec_;
  Rng rng_;
  double peak_;
};

}  // namespace schedbattle

#endif  // SRC_WORKLOAD_ARRIVALS_H_
