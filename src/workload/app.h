// Application: a named group of threads with shared statistics.
//
// Each application gets its own GroupId; under CFS (with group scheduling
// on, the default) this reproduces the systemd/autogroup setup of the
// paper's testbed, where CFS is fair *between applications*.
#ifndef SRC_WORKLOAD_APP_H_
#define SRC_WORKLOAD_APP_H_

#include <memory>
#include <string>
#include <vector>

#include "src/metrics/histogram.h"
#include "src/sched/machine.h"
#include "src/workload/script.h"

namespace schedbattle {

struct AppStats {
  uint64_t ops = 0;                // completed operations (transactions/requests)
  LatencyHistogram latency;        // per-operation latency
  SimTime started = -1;
  SimTime finished = -1;

  void RecordOp(SimTime start, SimTime end) {
    ++ops;
    latency.Record(end - start);
  }

  // Operations per second over the app's lifetime (until `now` if running).
  double OpsPerSecond(SimTime now) const;
};

class Application {
 public:
  explicit Application(std::string name) : name_(std::move(name)) {}
  virtual ~Application() = default;

  // Spawns the application's initial threads. `group()` is already assigned.
  virtual void Launch(Machine& machine) = 0;

  const std::string& name() const { return name_; }
  GroupId group() const { return group_; }
  void set_group(GroupId g) { group_ = g; }

  AppStats& stats() { return stats_; }
  const AppStats& stats() const { return stats_; }

  int live_threads() const { return live_threads_; }
  const std::vector<SimThread*>& threads() const { return threads_; }
  bool launched() const { return launched_; }

  // Complete when all threads exited; server-style apps override this (e.g.
  // "the load injector exited", with worker threads parked forever).
  virtual bool finished() const { return launched_ && live_threads_ == 0; }

  // Background apps (system noise) run until the horizon and are ignored by
  // Workload completion tracking.
  bool is_background() const { return background_; }
  void set_background(bool b) { background_ = b; }

  // Creates and starts a thread belonging to this app (sets the group and
  // registers it for completion tracking). Usable from Launch and from
  // script hooks (for apps whose master forks workers dynamically).
  SimThread* SpawnThread(Machine& machine, ThreadSpec spec, SimThread* parent);

  // Called by the Workload exit router. Overrides must call the base.
  virtual void NoteThreadExited(SimThread* thread, SimTime now);

  // Keeps a shared resource (pipe, mutex, barrier...) alive for the app's
  // lifetime. Scripts store raw pointers to sync objects; whoever creates
  // them must anchor them here.
  template <typename T>
  T* KeepAlive(std::shared_ptr<T> resource) {
    T* raw = resource.get();
    resources_.push_back(std::move(resource));
    return raw;
  }

 protected:
  void MarkLaunched() { launched_ = true; }

 private:
  std::string name_;
  GroupId group_ = kRootGroup;
  AppStats stats_;
  std::vector<SimThread*> threads_;
  std::vector<std::shared_ptr<void>> resources_;
  int live_threads_ = 0;
  bool launched_ = false;
  bool background_ = false;
};

// An application defined by a fixed set of (script, count) thread templates —
// sufficient for most of the 37 models.
class ScriptedApp : public Application {
 public:
  struct ThreadTemplate {
    std::string name;
    std::shared_ptr<const Script> script;
    int count = 1;
    Nice nice = 0;
    CpuMask affinity;  // empty = all cores
    SimDuration parent_runtime_hint = 0;
    SimDuration parent_sleep_hint = Seconds(4);  // launched from an idle shell
  };

  ScriptedApp(std::string name, uint64_t seed) : Application(std::move(name)), seed_(seed) {}

  void AddThreads(ThreadTemplate tmpl) { templates_.push_back(std::move(tmpl)); }
  void Launch(Machine& machine) override;

 private:
  uint64_t seed_;
  std::vector<ThreadTemplate> templates_;
};

}  // namespace schedbattle

#endif  // SRC_WORKLOAD_APP_H_
