#include "src/workload/workload.h"

#include <cassert>

namespace schedbattle {

Workload::Workload(Machine* machine) : machine_(machine) {
  machine_->on_thread_exit = [this](SimThread* t) {
    auto it = app_by_group_.find(t->group());
    if (it == app_by_group_.end()) {
      return;
    }
    it->second->NoteThreadExited(t, machine_->now());
    if (AllFinished()) {
      machine_->engine().RequestStop();
    }
  };
}

Application* Workload::Add(std::unique_ptr<Application> app, SimTime start_at,
                           GroupId parent_group) {
  app->set_group(next_group_++);
  if (parent_group != kRootGroup) {
    machine_->scheduler().DeclareGroup(app->group(), parent_group);
  }
  app_by_group_[app->group()] = app.get();
  apps_.push_back(std::move(app));
  start_times_.push_back(start_at);
  return apps_.back().get();
}

GroupId Workload::MakeUserGroup() { return next_group_++; }

bool Workload::AllFinished() const {
  bool any_foreground = false;
  for (const auto& app : apps_) {
    if (app->is_background()) {
      continue;
    }
    any_foreground = true;
    if (!app->finished()) {
      return false;
    }
  }
  return any_foreground;
}

SimTime Workload::Run(SimTime horizon) {
  if (!machine_->booted()) {
    machine_->Boot();
  }
  for (size_t i = 0; i < apps_.size(); ++i) {
    Application* app = apps_[i].get();
    machine_->engine().PostAt(start_times_[i], [this, app] {
      app->stats().started = machine_->now();
      app->Launch(*machine_);
    });
  }
  machine_->engine().RunUntil(horizon);
  SimTime last = 0;
  for (const auto& app : apps_) {
    if (app->is_background()) {
      continue;
    }
    if (app->stats().finished >= 0) {
      last = std::max(last, app->stats().finished);
    } else {
      last = horizon;
    }
  }
  return last;
}

}  // namespace schedbattle
