#include "src/workload/script.h"

#include <cassert>

namespace schedbattle {

ScriptBuilder& ScriptBuilder::Compute(SimDuration d) {
  instrs_.push_back({.op = ScriptInstr::Op::kCompute, .duration = d});
  return *this;
}
ScriptBuilder& ScriptBuilder::ComputeFn(DurationFn fn) {
  instrs_.push_back({.op = ScriptInstr::Op::kCompute, .duration_fn = std::move(fn)});
  return *this;
}
ScriptBuilder& ScriptBuilder::Sleep(SimDuration d) {
  instrs_.push_back({.op = ScriptInstr::Op::kSleep, .duration = d});
  return *this;
}
ScriptBuilder& ScriptBuilder::SleepFn(DurationFn fn) {
  instrs_.push_back({.op = ScriptInstr::Op::kSleep, .duration_fn = std::move(fn)});
  return *this;
}
ScriptBuilder& ScriptBuilder::Lock(SimMutex* m) {
  instrs_.push_back({.op = ScriptInstr::Op::kLock, .mutex = m});
  return *this;
}
ScriptBuilder& ScriptBuilder::Unlock(SimMutex* m) {
  instrs_.push_back({.op = ScriptInstr::Op::kUnlock, .mutex = m});
  return *this;
}
ScriptBuilder& ScriptBuilder::SemWait(SimSemaphore* s) {
  instrs_.push_back({.op = ScriptInstr::Op::kSemWait, .sem = s});
  return *this;
}
ScriptBuilder& ScriptBuilder::SemPost(SimSemaphore* s) {
  instrs_.push_back({.op = ScriptInstr::Op::kSemPost, .sem = s});
  return *this;
}
ScriptBuilder& ScriptBuilder::Barrier(SimBarrier* b) {
  instrs_.push_back({.op = ScriptInstr::Op::kBarrier, .barrier = b});
  return *this;
}
ScriptBuilder& ScriptBuilder::SpinBarrier(SimSpinBarrier* b, SimDuration poll,
                                          SimDuration spin_limit) {
  instrs_.push_back({.op = ScriptInstr::Op::kSpinBarrier,
                     .duration = poll,
                     .spin_barrier = b,
                     .limit = spin_limit});
  return *this;
}
ScriptBuilder& ScriptBuilder::PipeRead(SimPipe* p) {
  instrs_.push_back({.op = ScriptInstr::Op::kPipeRead, .pipe = p});
  return *this;
}
ScriptBuilder& ScriptBuilder::PipeWrite(SimPipe* p, int messages) {
  instrs_.push_back({.op = ScriptInstr::Op::kPipeWrite, .pipe = p, .count = messages});
  return *this;
}
ScriptBuilder& ScriptBuilder::Call(HookFn fn) {
  instrs_.push_back({.op = ScriptInstr::Op::kCall, .hook = std::move(fn)});
  return *this;
}
ScriptBuilder& ScriptBuilder::Yield() {
  instrs_.push_back({.op = ScriptInstr::Op::kYield});
  return *this;
}
ScriptBuilder& ScriptBuilder::Loop(int count) {
  loop_stack_.push_back(static_cast<int>(instrs_.size()));
  instrs_.push_back({.op = ScriptInstr::Op::kLoopBegin, .count = count});
  return *this;
}
ScriptBuilder& ScriptBuilder::LoopWhile(PredicateFn pred) {
  loop_stack_.push_back(static_cast<int>(instrs_.size()));
  instrs_.push_back({.op = ScriptInstr::Op::kLoopBegin, .count = -1, .predicate = std::move(pred)});
  return *this;
}
ScriptBuilder& ScriptBuilder::EndLoop() {
  assert(!loop_stack_.empty() && "EndLoop without Loop");
  const int begin = loop_stack_.back();
  loop_stack_.pop_back();
  instrs_.push_back({.op = ScriptInstr::Op::kLoopEnd, .jump = begin});
  instrs_[begin].jump = static_cast<int>(instrs_.size());
  return *this;
}

std::shared_ptr<const Script> ScriptBuilder::Build() {
  assert(loop_stack_.empty() && "unclosed Loop");
  auto script = std::make_shared<Script>();
  script->instrs = std::move(instrs_);
  instrs_.clear();
  return script;
}

ScriptBody::ScriptBody(std::shared_ptr<const Script> script, Rng rng)
    : script_(std::move(script)),
      rng_(rng),
      loop_remaining_(script_->instrs.size(), 0),
      spin_elapsed_(script_->instrs.size(), 0) {}

Step ScriptBody::OnRun(ThreadContext& ctx) {
  ScriptEnv env{ctx, rng_};
  Machine& m = ctx.machine();
  SimThread* self = &ctx.thread();
  while (true) {
    if (pc_ >= script_->instrs.size()) {
      return Step::Exit();
    }
    const ScriptInstr& in = script_->instrs[pc_];
    switch (in.op) {
      case ScriptInstr::Op::kCompute: {
        const SimDuration d = in.duration_fn ? in.duration_fn(env) : in.duration;
        ++pc_;
        if (d > 0) {
          return Step::Compute(d);
        }
        break;
      }
      case ScriptInstr::Op::kSleep: {
        if (resuming_sleep_) {
          resuming_sleep_ = false;
          ++pc_;
          break;
        }
        const SimDuration d = in.duration_fn ? in.duration_fn(env) : in.duration;
        if (d <= 0) {
          ++pc_;
          break;
        }
        resuming_sleep_ = true;
        m.engine().PostAfter(d, [&m, self] { m.Wake(self, kInvalidCore); });
        return Step::Block();
      }
      case ScriptInstr::Op::kLock:
        if (!in.mutex->TryAcquire(m, self)) {
          return Step::Block();
        }
        ++pc_;
        break;
      case ScriptInstr::Op::kUnlock:
        in.mutex->Release(m, self);
        ++pc_;
        break;
      case ScriptInstr::Op::kSemWait:
        if (!in.sem->TryWait(m, self)) {
          return Step::Block();
        }
        ++pc_;
        break;
      case ScriptInstr::Op::kSemPost:
        in.sem->Post(m, self);
        ++pc_;
        break;
      case ScriptInstr::Op::kBarrier:
        if (!in.barrier->TryWait(m, self)) {
          return Step::Block();
        }
        ++pc_;
        break;
      case ScriptInstr::Op::kSpinBarrier: {
        SimDuration& spun = spin_elapsed_[pc_];
        if (in.spin_barrier->Poll(m, self)) {
          spun = 0;
          ++pc_;
          break;
        }
        if (spun < in.limit) {
          spun += in.duration;
          return Step::Compute(in.duration);  // busy-wait burst, then re-poll
        }
        spun = 0;
        in.spin_barrier->SleepUntilRelease(self);
        return Step::Block();
      }
      case ScriptInstr::Op::kPipeRead:
        if (!in.pipe->TryRead(m, self)) {
          return Step::Block();
        }
        ++pc_;
        break;
      case ScriptInstr::Op::kPipeWrite:
        in.pipe->Write(m, self, in.count);
        ++pc_;
        break;
      case ScriptInstr::Op::kCall:
        in.hook(env);
        ++pc_;
        break;
      case ScriptInstr::Op::kYield:
        ++pc_;
        return Step::Yield();
      case ScriptInstr::Op::kLoopBegin: {
        const int idx = static_cast<int>(pc_);
        if (in.predicate) {
          if (in.predicate(env)) {
            ++pc_;
          } else {
            pc_ = static_cast<size_t>(in.jump);
          }
          break;
        }
        loop_remaining_[idx] = in.count;
        if (in.count == 0) {
          pc_ = static_cast<size_t>(in.jump);
        } else {
          ++pc_;
        }
        break;
      }
      case ScriptInstr::Op::kLoopEnd: {
        const int begin = in.jump;
        const ScriptInstr& b = script_->instrs[begin];
        if (b.predicate) {
          pc_ = static_cast<size_t>(begin);  // re-evaluate the predicate
          break;
        }
        int& remaining = loop_remaining_[begin];
        if (remaining > 0) {
          --remaining;
        }
        if (b.count < 0 || remaining > 0) {
          pc_ = static_cast<size_t>(begin) + 1;
        } else {
          ++pc_;
        }
        break;
      }
      case ScriptInstr::Op::kExit:
        return Step::Exit();
    }
  }
}

bool ScriptBody::NextStepIsPureCompute() const {
  // Simulated loop counters for the walk: OnRun will mutate loop_remaining_
  // as it executes the same instructions, so the walk shadows the entries it
  // passes in a small local array instead of touching the real state.
  struct SimLoop {
    int idx;
    int remaining;
  };
  SimLoop sim[8];
  int sim_n = 0;
  const auto find = [&](int idx) -> int* {
    for (int i = 0; i < sim_n; ++i) {
      if (sim[i].idx == idx) {
        return &sim[i].remaining;
      }
    }
    return nullptr;
  };
  size_t pc = pc_;
  bool resuming = resuming_sleep_;
  for (int steps = 0; steps < 64; ++steps) {
    if (pc >= script_->instrs.size()) {
      return false;  // next step is kExit
    }
    const ScriptInstr& in = script_->instrs[pc];
    switch (in.op) {
      case ScriptInstr::Op::kCompute:
        if (in.duration_fn) {
          return false;  // draws from the RNG / user state
        }
        if (in.duration > 0) {
          return true;
        }
        ++pc;
        break;
      case ScriptInstr::Op::kSleep:
        if (!resuming) {
          return false;  // would post a wakeup and block
        }
        resuming = false;  // the resume path just advances pc
        ++pc;
        break;
      case ScriptInstr::Op::kLoopBegin: {
        if (in.predicate) {
          return false;
        }
        if (in.count == 0) {
          pc = static_cast<size_t>(in.jump);
          break;
        }
        if (int* r = find(static_cast<int>(pc)); r != nullptr) {
          *r = in.count;
        } else {
          if (sim_n == 8) {
            return false;  // walk too deep; bail conservative
          }
          sim[sim_n++] = SimLoop{static_cast<int>(pc), in.count};
        }
        ++pc;
        break;
      }
      case ScriptInstr::Op::kLoopEnd: {
        const int begin = in.jump;
        const ScriptInstr& b = script_->instrs[begin];
        if (b.predicate) {
          return false;
        }
        int* r = find(begin);
        int remaining = r != nullptr ? *r : loop_remaining_[begin];
        if (remaining > 0) {
          --remaining;
        }
        if (r != nullptr) {
          *r = remaining;
        } else {
          if (sim_n == 8) {
            return false;
          }
          sim[sim_n++] = SimLoop{begin, remaining};
        }
        pc = (b.count < 0 || remaining > 0) ? static_cast<size_t>(begin) + 1 : pc + 1;
        break;
      }
      default:
        return false;  // sync primitives, hooks, yields: not pure compute
    }
  }
  return false;
}

std::unique_ptr<ThreadBody> MakeScriptBody(std::shared_ptr<const Script> script, Rng rng) {
  return std::make_unique<ScriptBody>(std::move(script), rng);
}

}  // namespace schedbattle
