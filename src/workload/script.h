// Script: a small instruction-list "VM" for expressing thread behaviours.
//
// Application models (src/apps) describe each thread as a sequential program
// over compute bursts, sleeps, locks, pipes, barriers and hooks:
//
//   auto s = ScriptBuilder()
//       .Loop(1000)
//         .ComputeFn([](ScriptEnv& env) { return env.rng.NextExponential(...); })
//         .Lock(&mu).Compute(Microseconds(50)).Unlock(&mu)
//         .Sleep(Milliseconds(2))
//         .Call([stats](ScriptEnv& env) { stats->RecordOp(env.ctx.now()); })
//       .EndLoop()
//       .Build();
//
// Blocking instructions follow the try/grant protocol of src/workload/sync.h:
// a failed attempt blocks the thread without advancing the program counter,
// and the retry after wakeup succeeds.
#ifndef SRC_WORKLOAD_SCRIPT_H_
#define SRC_WORKLOAD_SCRIPT_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/sched/behavior.h"
#include "src/sim/rng.h"
#include "src/workload/sync.h"

namespace schedbattle {

struct ScriptEnv {
  ThreadContext& ctx;
  Rng& rng;
};

using DurationFn = std::function<SimDuration(ScriptEnv&)>;
using HookFn = std::function<void(ScriptEnv&)>;
using PredicateFn = std::function<bool(ScriptEnv&)>;

struct ScriptInstr {
  enum class Op {
    kCompute,      // duration or duration_fn
    kSleep,        // duration or duration_fn
    kLock,         // mutex
    kUnlock,       // mutex
    kSemWait,      // semaphore
    kSemPost,      // semaphore
    kBarrier,      // barrier
    kSpinBarrier,  // spin_barrier; duration = poll burst, limit = spin budget
    kPipeRead,     // pipe
    kPipeWrite,    // pipe (count = messages)
    kCall,         // hook
    kYield,        //
    kLoopBegin,    // count (-1 = forever) or predicate; end = matching EndLoop
    kLoopEnd,      // begin = matching LoopBegin
    kExit,         //
  };

  Op op;
  SimDuration duration = 0;
  DurationFn duration_fn;
  SimMutex* mutex = nullptr;
  SimSemaphore* sem = nullptr;
  SimBarrier* barrier = nullptr;
  SimSpinBarrier* spin_barrier = nullptr;
  SimPipe* pipe = nullptr;
  SimDuration limit = 0;
  int count = 1;
  HookFn hook;
  PredicateFn predicate;
  int jump = -1;  // kLoopBegin: index past EndLoop; kLoopEnd: index of Begin
};

// An immutable program, shared between the threads that execute it.
struct Script {
  std::vector<ScriptInstr> instrs;
};

class ScriptBuilder {
 public:
  ScriptBuilder& Compute(SimDuration d);
  ScriptBuilder& ComputeFn(DurationFn fn);
  ScriptBuilder& Sleep(SimDuration d);
  ScriptBuilder& SleepFn(DurationFn fn);
  ScriptBuilder& Lock(SimMutex* m);
  ScriptBuilder& Unlock(SimMutex* m);
  ScriptBuilder& SemWait(SimSemaphore* s);
  ScriptBuilder& SemPost(SimSemaphore* s);
  ScriptBuilder& Barrier(SimBarrier* b);
  // Spin-then-sleep barrier: poll in `poll` compute bursts for up to
  // `spin_limit`, then sleep until release.
  ScriptBuilder& SpinBarrier(SimSpinBarrier* b, SimDuration poll, SimDuration spin_limit);
  ScriptBuilder& PipeRead(SimPipe* p);
  ScriptBuilder& PipeWrite(SimPipe* p, int messages = 1);
  ScriptBuilder& Call(HookFn fn);
  ScriptBuilder& Yield();
  ScriptBuilder& Loop(int count);  // -1 = forever
  ScriptBuilder& LoopWhile(PredicateFn pred);
  ScriptBuilder& EndLoop();
  std::shared_ptr<const Script> Build();

 private:
  std::vector<ScriptInstr> instrs_;
  std::vector<int> loop_stack_;
};

// The ThreadBody executing a Script. Each thread gets its own ScriptBody
// (own program counter, loop counters and RNG stream).
class ScriptBody : public ThreadBody {
 public:
  ScriptBody(std::shared_ptr<const Script> script, Rng rng);

  Step OnRun(ThreadContext& ctx) override;

  // Walks the program from the current VM state (without mutating it) and
  // certifies whether the next OnRun returns a positive-literal kCompute
  // reachable through loop bookkeeping alone — the spinner shape the sharded
  // engine's parallel windows feed on. Anything data-dependent (duration_fn,
  // loop predicates, sync primitives, hooks, sleeps) fails the walk.
  bool NextStepIsPureCompute() const override;

 private:
  std::shared_ptr<const Script> script_;
  Rng rng_;
  size_t pc_ = 0;
  std::vector<int> loop_remaining_;
  std::vector<SimDuration> spin_elapsed_;  // per spin-barrier instruction
  bool resuming_sleep_ = false;  // sleep advanced pc before blocking
};

// Convenience: a ThreadSpec body running `script`.
std::unique_ptr<ThreadBody> MakeScriptBody(std::shared_ptr<const Script> script, Rng rng);

}  // namespace schedbattle

#endif  // SRC_WORKLOAD_SCRIPT_H_
