#include "src/workload/sync.h"

#include <cassert>

namespace schedbattle {

namespace {
CoreId WakerCore(SimThread* waker) {
  // Only a thread that is actually running can meaningfully be "the waker";
  // timer-driven wakes pass kInvalidCore.
  if (waker != nullptr && waker->state() == ThreadState::kRunning) {
    return waker->cpu();
  }
  return kInvalidCore;
}
}  // namespace

bool SimMutex::TryAcquire(Machine& m, SimThread* t) {
  (void)m;
  if (owner_ == kInvalidThread) {
    owner_ = t->id();
    return true;
  }
  if (owner_ == t->id()) {
    return true;  // granted by a previous Release handoff
  }
  waiters_.push_back(t);
  return false;
}

void SimMutex::Release(Machine& m, SimThread* t) {
  assert(owner_ == t->id() && "releasing a mutex not held");
  if (waiters_.empty()) {
    owner_ = kInvalidThread;
    return;
  }
  SimThread* next = waiters_.front();
  waiters_.pop_front();
  owner_ = next->id();
  m.Wake(next, WakerCore(t));
}

bool SimSemaphore::TryWait(Machine& m, SimThread* t) {
  (void)m;
  if (granted_.erase(t->id()) > 0) {
    return true;
  }
  if (count_ > 0) {
    --count_;
    return true;
  }
  waiters_.push_back(t);
  return false;
}

void SimSemaphore::Post(Machine& m, SimThread* waker) {
  if (waiters_.empty()) {
    ++count_;
    return;
  }
  SimThread* next = waiters_.front();
  waiters_.pop_front();
  granted_.insert(next->id());
  m.Wake(next, WakerCore(waker));
}

bool SimBarrier::TryWait(Machine& m, SimThread* t) {
  if (granted_.erase(t->id()) > 0) {
    return true;
  }
  ++arrived_;
  if (arrived_ == parties_) {
    // Last arriver: open the barrier and wake everyone.
    arrived_ = 0;
    for (SimThread* w : waiters_) {
      granted_.insert(w->id());
    }
    auto waiters = std::move(waiters_);
    waiters_.clear();
    for (SimThread* w : waiters) {
      m.Wake(w, WakerCore(t));
    }
    return true;
  }
  waiters_.push_back(t);
  return false;
}

bool SimSpinBarrier::Poll(Machine& m, SimThread* t) {
  auto it = arrival_gen_.find(t->id());
  if (it != arrival_gen_.end()) {
    if (generation_ > it->second) {
      arrival_gen_.erase(it);  // released while spinning (or after waking)
      return true;
    }
    return false;
  }
  // New arrival for the current generation.
  ++arrived_;
  if (arrived_ == parties_) {
    arrived_ = 0;
    ++generation_;
    auto sleepers = std::move(sleepers_);
    sleepers_.clear();
    for (SimThread* s : sleepers) {
      m.Wake(s, WakerCore(t));
    }
    return true;  // the last arriver passes immediately
  }
  arrival_gen_[t->id()] = generation_;
  return false;
}

void SimSpinBarrier::SleepUntilRelease(SimThread* t) { sleepers_.push_back(t); }

bool SimPipe::TryRead(Machine& m, SimThread* t) {
  (void)m;
  if (granted_.erase(t->id()) > 0) {
    return true;
  }
  if (available_ > 0) {
    --available_;
    return true;
  }
  readers_.push_back(t);
  return false;
}

void SimPipe::Write(Machine& m, SimThread* writer, int messages) {
  for (int i = 0; i < messages; ++i) {
    if (readers_.empty()) {
      ++available_;
      continue;
    }
    SimThread* next = readers_.front();
    readers_.pop_front();
    granted_.insert(next->id());
    m.Wake(next, WakerCore(writer));
  }
}

}  // namespace schedbattle
