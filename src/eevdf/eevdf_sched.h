// EevdfScheduler: an EEVDF (Earliest Eligible Virtual Deadline First)
// scheduler, modeled on the policy that replaced CFS in Linux 6.6
// (kernel/sched/fair.c after commit "sched/fair: Implement an EEVDF-like
// scheduling policy", itself after Stoica & Abdel-Wahab's 1995 paper).
//
//  - Each thread keeps a vruntime (weight-scaled service clock, same
//    nice-to-weight table as CFS) and a virtual deadline
//    vd = vruntime + slice/weight.
//  - A thread is *eligible* when its vruntime is at or behind the queue's
//    weighted-average vruntime V — i.e. its lag = V - vruntime is >= 0: it
//    has received no more than its weighted fair share.
//  - Pick = the eligible thread with the earliest virtual deadline. The
//    deadline term bounds latency (a short-slice thread gets service soon);
//    the eligibility term bounds unfairness (nobody runs ahead of its
//    entitlement). The thread with minimum vruntime is always eligible, so
//    the pick never comes up empty while threads are queued.
//  - Lag is preserved across migrations: DequeueTask captures V - vruntime
//    and EnqueueTask(kMigrate) re-establishes it against the destination
//    queue's V, so a thread owed service is still owed after moving.
//
// Per-core runqueues with idle-first wake placement and ULE-style idle
// stealing; no cgroup hierarchy (flat, like ULE).
#ifndef SRC_EEVDF_EEVDF_SCHED_H_
#define SRC_EEVDF_EEVDF_SCHED_H_

#include <cstdint>
#include <vector>

#include "src/cfs/weights.h"
#include "src/sched/machine.h"
#include "src/sched/sched_class.h"

namespace schedbattle {

struct EevdfTunables {
  // Tick period (Linux: 1ms at HZ=1000).
  SimDuration tick = Milliseconds(1);
  // Base slice: the request size whose weight-scaled form sets the virtual
  // deadline (Linux sysctl_sched_base_slice).
  SimDuration base_slice = Milliseconds(3);

  // A woken eligible thread with an earlier virtual deadline preempts the
  // running one (Linux wakeup_preempt -> pick_eevdf beats curr).
  bool wakeup_preemption = true;

  // Idle cores steal one queued thread from the most loaded core.
  bool steal_enabled = true;
  int steal_thresh = 2;  // minimum donor load
  SimDuration steal_cost_per_core = Nanoseconds(150);
  SimDuration pickcpu_scan_cost = Nanoseconds(90);
};

// Per-thread EEVDF state.
struct EevdfTaskData : ThreadSchedData {
  uint64_t weight = kNice0Load;
  int64_t vruntime = 0;   // weight-scaled service clock (virtual ns)
  int64_t vdeadline = 0;  // vruntime + base_slice/weight at last refresh
  int64_t lag = 0;        // V - vruntime captured at dequeue (virtual ns)
  SimTime last_account = 0;  // start of the current on-CPU stretch
  bool queued = false;
  CoreId rq_cpu = kInvalidCore;
};

inline EevdfTaskData& EevdfOf(SimThread* t) { return t->sched<EevdfTaskData>(); }
inline const EevdfTaskData& EevdfOf(const SimThread* t) {
  return *static_cast<const EevdfTaskData*>(t->sched_data());
}

// Per-core runqueue: a flat set scanned at pick time (the eligibility test
// needs the weighted aggregates anyway, so a scan costs nothing extra).
struct EevdfRq {
  std::vector<SimThread*> queued;
  int load = 0;  // runnable thread count, including the running thread
  // Monotonic ratchet over the minimum queued vruntime, advanced at pick
  // time; the base for fork placement on an empty queue and the value
  // MinVruntimeOf reports (the vruntime_monotonic monitor polls it).
  int64_t min_vruntime = 0;

  int queued_count() const { return static_cast<int>(queued.size()); }
  int transferable() const { return static_cast<int>(queued.size()); }
};

class EevdfScheduler : public Scheduler {
 public:
  explicit EevdfScheduler(EevdfTunables tunables = {});
  ~EevdfScheduler() override;

  std::string_view name() const override { return "eevdf"; }
  void Attach(Machine* machine) override;

  void TaskNew(SimThread* thread, SimThread* parent) override;
  void TaskExit(SimThread* thread) override;
  void ReniceTask(SimThread* thread) override;
  CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) override;
  void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) override;
  void DequeueTask(CoreId core, SimThread* thread) override;
  SimThread* PickNextTask(CoreId core) override;
  void PutPrevTask(CoreId core, SimThread* thread) override;
  void OnTaskBlock(CoreId core, SimThread* thread, bool voluntary) override;
  void YieldTask(CoreId core, SimThread* thread) override;
  void TaskTick(CoreId core, SimThread* current) override;
  void CheckPreemptWakeup(CoreId core, SimThread* woken) override;
  void OnCoreIdle(CoreId core) override;
  SimDuration TickPeriod() const override { return tun_.tick; }

  // Idle ticks poll the steal path; busy ticks can only act (deadline-expiry
  // preemption) with a queued competitor. Same boundary discipline as ULE;
  // elided ticks replay vruntime advances byte-identically via CatchUpTicks.
  SimTime TickBoundary(CoreId core, const SimThread* current,
                       SimTime next_tick) const override;
  bool TickMayCross(CoreId core) const override;
  // Busy-core hooks touch only the core's own queue and running thread;
  // wake placement, stealing and migration run in the global lane.
  bool ShardParallelSafe() const override { return true; }

  double LoadOf(CoreId core) const override { return rqs_[core].load; }
  int RunnableCountOf(CoreId core) const override { return rqs_[core].load; }
  int64_t MinVruntimeOf(CoreId core) const override { return rqs_[core].min_vruntime; }

  const EevdfTunables& tunables() const { return tun_; }
  const EevdfRq& rq(CoreId core) const { return rqs_[core]; }

 private:
  // Weighted-vruntime aggregates over a core's queued threads (optionally
  // plus the running thread), in __int128 so no product can overflow.
  struct VAgg {
    __int128 sum_wv = 0;
    uint64_t sum_w = 0;
  };
  VAgg AggOf(CoreId core, bool include_curr) const;
  // Eligibility without division: v * sum_w <= sum_wv.
  static bool EligibleIn(const VAgg& agg, int64_t v) {
    return static_cast<__int128>(v) * agg.sum_w <= agg.sum_wv;
  }
  // The queue's weighted-average vruntime V (placement base); min_vruntime
  // ratchet when the aggregate is empty.
  int64_t PlacementV(CoreId core, const VAgg& agg) const;

  // base_slice scaled by the thread's weight, in virtual ns.
  int64_t VSlice(uint64_t weight) const {
    return static_cast<int64_t>(CalcDeltaFair(tun_.base_slice, weight));
  }
  // Advances the running thread's vruntime by its on-CPU time since
  // last_account (exact, not tick-granular).
  void AdvanceCurr(SimThread* t);

  SimThread* StealOne(CoreId src, CoreId dst);
  bool TryIdleSteal(CoreId core);
  void SyncMasks(CoreId core);

  Machine* machine_ = nullptr;
  EevdfTunables tun_;
  std::vector<EevdfRq> rqs_;
  CpuSet queued_mask_;
  CpuSet steal_source_mask_;
};

}  // namespace schedbattle

#endif  // SRC_EEVDF_EEVDF_SCHED_H_
