#include "src/eevdf/eevdf_sched.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace schedbattle {

EevdfScheduler::EevdfScheduler(EevdfTunables tunables) : tun_(tunables) {}

EevdfScheduler::~EevdfScheduler() = default;

void EevdfScheduler::Attach(Machine* machine) {
  machine_ = machine;
  rqs_.resize(machine->num_cores());
  for (CoreId c = 0; c < machine->num_cores(); ++c) {
    SyncMasks(c);
  }
}

void EevdfScheduler::SyncMasks(CoreId core) {
  const EevdfRq& rq = rqs_[core];
  const bool had_queued = queued_mask_.Test(core);
  const bool has_queued = !rq.queued.empty();
  if (has_queued) {
    queued_mask_.Set(core);
  } else {
    queued_mask_.Clear(core);
  }
  const bool was_source = steal_source_mask_.Test(core);
  const bool is_source = rq.load >= tun_.steal_thresh && !rq.queued.empty();
  if (is_source) {
    steal_source_mask_.Set(core);
  } else {
    steal_source_mask_.Clear(core);
  }
  if (machine_ != nullptr &&
      ((is_source && !was_source) || (has_queued && !had_queued))) {
    machine_->RearmElidedTicks();
  }
}

EevdfScheduler::VAgg EevdfScheduler::AggOf(CoreId core, bool include_curr) const {
  VAgg agg;
  for (const SimThread* t : rqs_[core].queued) {
    const EevdfTaskData& d = EevdfOf(t);
    agg.sum_wv += static_cast<__int128>(d.vruntime) * d.weight;
    agg.sum_w += d.weight;
  }
  if (include_curr) {
    const SimThread* curr = machine_->CurrentOn(core);
    if (curr != nullptr && curr->sched_data() != nullptr) {
      const EevdfTaskData& d = EevdfOf(curr);
      agg.sum_wv += static_cast<__int128>(d.vruntime) * d.weight;
      agg.sum_w += d.weight;
    }
  }
  return agg;
}

int64_t EevdfScheduler::PlacementV(CoreId core, const VAgg& agg) const {
  if (agg.sum_w == 0) {
    return rqs_[core].min_vruntime;
  }
  return static_cast<int64_t>(agg.sum_wv / static_cast<__int128>(agg.sum_w));
}

void EevdfScheduler::AdvanceCurr(SimThread* t) {
  EevdfTaskData& d = EevdfOf(t);
  const SimTime now = machine_->now();
  const SimDuration delta = now - d.last_account;
  if (delta <= 0) {
    return;
  }
  d.last_account = now;
  d.vruntime += static_cast<int64_t>(CalcDeltaFair(delta, d.weight));
}

void EevdfScheduler::TaskNew(SimThread* thread, SimThread* /*parent*/) {
  auto data = std::make_unique<EevdfTaskData>();
  data->weight = CfsWeightOf(thread->nice());
  thread->set_sched_data(std::move(data));
}

void EevdfScheduler::TaskExit(SimThread* thread) {
  AdvanceCurr(thread);  // the exiting thread was running
  EevdfRq& rq = rqs_[thread->cpu()];
  rq.load -= 1;
  assert(rq.load >= 0);
  SyncMasks(thread->cpu());
}

void EevdfScheduler::ReniceTask(SimThread* thread) {
  EevdfTaskData& d = EevdfOf(thread);
  if (thread->state() == ThreadState::kRunning) {
    AdvanceCurr(thread);  // close the old-weight accounting stretch
  }
  d.weight = CfsWeightOf(thread->nice());
  // The deadline encodes slice/weight; re-derive it under the new weight.
  d.vdeadline = d.vruntime + VSlice(d.weight);
}

CoreId EevdfScheduler::SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind kind) {
  PickCpuDecision d;
  d.thread = thread->id();
  d.origin = origin;
  d.prev = thread->last_ran_cpu();
  d.kind = kind;
  const uint64_t scans_before = machine_->counters().pickcpu_scans;

  CoreId chosen = kInvalidCore;
  if (thread->affinity().Count() == 1) {
    d.reason = PickReason::kPinned;
    chosen = static_cast<CoreId>(thread->affinity().FirstSet());
  } else {
    // Idle-first placement, same shape as MLFQ's: previous core if idle
    // (warm caches), else the first idle allowed core, else least-loaded.
    const CpuSet idle_allowed = machine_->idle_mask() & thread->affinity();
    int scanned = 0;
    const CoreId prev = thread->last_ran_cpu();
    if (prev != kInvalidCore && idle_allowed.Test(prev)) {
      d.reason = PickReason::kPrevAffine;
      chosen = prev;
      scanned = 1;
    } else {
      const int first_idle = idle_allowed.FirstSet();
      if (first_idle >= 0) {
        d.reason = PickReason::kIdleSibling;
        chosen = static_cast<CoreId>(first_idle);
        scanned = first_idle + 1;
      } else {
        int min_load = std::numeric_limits<int>::max();
        for (CoreId c = 0; c < machine_->num_cores(); ++c) {
          if (!thread->CanRunOn(c)) {
            continue;
          }
          ++scanned;
          if (rqs_[c].load < min_load) {
            min_load = rqs_[c].load;
            chosen = c;
          }
        }
        d.reason = PickReason::kLowestLoad;
      }
    }
    machine_->counters().pickcpu_scans += scanned;
    const CoreId charge_to = origin != kInvalidCore ? origin : chosen;
    machine_->ChargeOverhead(charge_to, scanned * tun_.pickcpu_scan_cost,
                             OverheadKind::kPickCpuScan);
  }
  assert(chosen != kInvalidCore);

  d.chosen = chosen;
  d.cores_scanned = static_cast<int>(machine_->counters().pickcpu_scans - scans_before);
  d.affine_hit = d.prev != kInvalidCore && chosen == d.prev;
  if (machine_->observing_decisions()) {
    d.chosen_rq = RunnableCountOf(chosen);
    d.prev_rq = d.prev != kInvalidCore ? RunnableCountOf(d.prev) : -1;
    if (thread->sched_data() != nullptr) {
      d.sched_key = EevdfOf(thread).vruntime;
    }
    d.idle_mask = machine_->idle_mask().low64();
  }
  machine_->EmitPickCpu(d);
  return chosen;
}

void EevdfScheduler::EnqueueTask(CoreId core, SimThread* thread, EnqueueKind kind) {
  EevdfTaskData& d = EevdfOf(thread);
  EevdfRq& rq = rqs_[core];
  // Place against the queue's current weighted-average vruntime (the running
  // thread included: it is part of the competition the newcomer joins).
  const VAgg agg = AggOf(core, /*include_curr=*/true);
  const int64_t v_queue = PlacementV(core, agg);
  switch (kind) {
    case EnqueueKind::kFork:
      // A forked thread starts exactly at par — zero lag, full slice ahead.
      d.vruntime = v_queue;
      d.vdeadline = d.vruntime + VSlice(d.weight);
      break;
    case EnqueueKind::kWakeup:
      // A waking thread keeps any positive lag it is owed but never banks
      // service from its sleep: it rejoins no further back than par.
      d.vruntime = std::max(d.vruntime, v_queue);
      d.vdeadline = d.vruntime + VSlice(d.weight);
      break;
    case EnqueueKind::kMigrate:
      // Lag preservation: re-establish the lag captured at DequeueTask
      // against the destination queue's V.
      d.vruntime = v_queue - d.lag;
      d.vdeadline = d.vruntime + VSlice(d.weight);
      break;
    case EnqueueKind::kRequeue:
      break;  // keep clock and deadline
  }
  rq.queued.push_back(thread);
  rq.load += 1;
  d.queued = true;
  d.rq_cpu = core;
  SyncMasks(core);
}

void EevdfScheduler::DequeueTask(CoreId core, SimThread* thread) {
  EevdfTaskData& d = EevdfOf(thread);
  EevdfRq& rq = rqs_[core];
  // Capture lag = V - vruntime (with the thread still counted) so a migrate
  // re-enqueue can preserve how far ahead/behind par the thread was. Clamped
  // to one slice either way, as Linux clamps lag.
  const VAgg agg = AggOf(core, /*include_curr=*/true);
  const int64_t vslice = VSlice(d.weight);
  d.lag = std::clamp(PlacementV(core, agg) - d.vruntime, -vslice, vslice);
  auto it = std::find(rq.queued.begin(), rq.queued.end(), thread);
  assert(it != rq.queued.end());
  rq.queued.erase(it);
  rq.load -= 1;
  assert(rq.load >= 0);
  d.queued = false;
  SyncMasks(core);
}

SimThread* EevdfScheduler::PickNextTask(CoreId core) {
  EevdfRq& rq = rqs_[core];
  if (rq.queued.empty()) {
    return nullptr;
  }
  // Ratchet min_vruntime forward to the minimum queued service clock.
  int64_t min_v = std::numeric_limits<int64_t>::max();
  VAgg agg;
  for (const SimThread* t : rq.queued) {
    const EevdfTaskData& d = EevdfOf(t);
    min_v = std::min(min_v, d.vruntime);
    agg.sum_wv += static_cast<__int128>(d.vruntime) * d.weight;
    agg.sum_w += d.weight;
  }
  rq.min_vruntime = std::max(rq.min_vruntime, min_v);

  // Earliest eligible virtual deadline; ties broken by thread id so the pick
  // is deterministic. The min-vruntime thread is always eligible, so best
  // cannot stay null.
  SimThread* best = nullptr;
  for (SimThread* t : rq.queued) {
    const EevdfTaskData& d = EevdfOf(t);
    if (!EligibleIn(agg, d.vruntime)) {
      continue;
    }
    if (best == nullptr || d.vdeadline < EevdfOf(best).vdeadline ||
        (d.vdeadline == EevdfOf(best).vdeadline && t->id() < best->id())) {
      best = t;
    }
  }
  assert(best != nullptr);
  auto it = std::find(rq.queued.begin(), rq.queued.end(), best);
  rq.queued.erase(it);
  EevdfTaskData& d = EevdfOf(best);
  d.queued = false;
  if (d.vruntime >= d.vdeadline) {
    // The previous request is fully served; open the next one.
    d.vdeadline = d.vruntime + VSlice(d.weight);
  }
  d.last_account = machine_->now();
  SyncMasks(core);
  return best;
}

void EevdfScheduler::PutPrevTask(CoreId core, SimThread* thread) {
  AdvanceCurr(thread);
  EevdfTaskData& d = EevdfOf(thread);
  EevdfRq& rq = rqs_[core];
  rq.queued.push_back(thread);
  // load unchanged: the thread was already counted while running.
  d.queued = true;
  d.rq_cpu = core;
  SyncMasks(core);
}

void EevdfScheduler::OnTaskBlock(CoreId core, SimThread* thread, bool /*voluntary*/) {
  AdvanceCurr(thread);
  EevdfRq& rq = rqs_[core];
  rq.load -= 1;
  assert(rq.load >= 0);
  SyncMasks(core);
}

void EevdfScheduler::YieldTask(CoreId core, SimThread* thread) {
  AdvanceCurr(thread);
  // Yield forfeits the rest of the current request: push the deadline a full
  // slice out so everyone else's request is served first.
  EevdfTaskData& d = EevdfOf(thread);
  d.vdeadline = d.vruntime + VSlice(d.weight);
  PutPrevTask(core, thread);
}

void EevdfScheduler::TaskTick(CoreId core, SimThread* current) {
  if (current == nullptr) {
    if (tun_.steal_enabled) {
      TryIdleSteal(core);
    }
    return;
  }
  AdvanceCurr(current);
  const EevdfTaskData& d = EevdfOf(current);
  // Deadline expiry: the current request is served; if anyone is waiting,
  // reschedule so pick can run the next earliest eligible deadline.
  if (!rqs_[core].queued.empty() && d.vruntime >= d.vdeadline) {
    ++machine_->counters().tick_preemptions;
    machine_->SetNeedResched(core);
  }
}

void EevdfScheduler::CheckPreemptWakeup(CoreId core, SimThread* woken) {
  SimThread* curr = machine_->CurrentOn(core);
  if (curr == nullptr || curr == woken) {
    return;
  }
  AdvanceCurr(curr);  // compare against up-to-date clocks
  const EevdfTaskData& wd = EevdfOf(woken);
  const EevdfTaskData& cd = EevdfOf(curr);
  const VAgg agg = AggOf(core, /*include_curr=*/true);
  // Positive margin = the woken thread's virtual deadline is earlier.
  const int64_t margin = cd.vdeadline - wd.vdeadline;
  const bool fired =
      tun_.wakeup_preemption && EligibleIn(agg, wd.vruntime) && margin > 0;
  if (machine_->observing_decisions()) {
    PreemptDecision d;
    d.preemptor = woken->id();
    d.victim = curr->id();
    d.core = core;
    d.fired = fired;
    d.margin = margin;
    machine_->EmitPreempt(d);
  }
  if (fired) {
    ++machine_->counters().wakeup_preemptions;
    machine_->SetNeedResched(core);
  }
}

void EevdfScheduler::OnCoreIdle(CoreId core) {
  if (tun_.steal_enabled) {
    TryIdleSteal(core);
  }
}

SimTime EevdfScheduler::TickBoundary(CoreId core, const SimThread* current,
                                     SimTime next_tick) const {
  if (current == nullptr) {
    // Idle ticks only poll the steal path; without a steal source the poll
    // cannot move a thread, only charge the modeled (replayable) scan cost.
    if (!tun_.steal_enabled || steal_source_mask_.Without(core).Empty()) {
      return kTickNever;
    }
    return next_tick;
  }
  // A busy tick can act (deadline-expiry preemption) only with a queued
  // competitor; the vruntime advance itself is replayable accounting.
  return rqs_[core].queued.empty() ? kTickNever : next_tick;
}

bool EevdfScheduler::TickMayCross(CoreId core) const {
  return machine_->CurrentOn(core) == nullptr && tun_.steal_enabled;
}

SimThread* EevdfScheduler::StealOne(CoreId src, CoreId dst) {
  EevdfRq& rq = rqs_[src];
  // Steal the movable thread with the earliest virtual deadline: the most
  // service-starved request gets the idle core.
  SimThread* pick = nullptr;
  for (SimThread* t : rq.queued) {
    if (!t->CanRunOn(dst)) {
      continue;
    }
    if (pick == nullptr || EevdfOf(t).vdeadline < EevdfOf(pick).vdeadline ||
        (EevdfOf(t).vdeadline == EevdfOf(pick).vdeadline && t->id() < pick->id())) {
      pick = t;
    }
  }
  if (pick == nullptr) {
    return nullptr;
  }
  DequeueTask(src, pick);
  EnqueueTask(dst, pick, EnqueueKind::kMigrate);
  machine_->NoteMigration(pick, src, dst);
  return pick;
}

bool EevdfScheduler::TryIdleSteal(CoreId core) {
  const int n = machine_->num_cores();
  // Flat scan, one visit per peer charged whether or not the mask
  // short-circuits, so the modeled cost is scan-shape independent.
  machine_->ChargeOverhead(core, n * tun_.steal_cost_per_core,
                           OverheadKind::kLoadBalance);
  if (steal_source_mask_.Without(core).Empty()) {
    return false;
  }
  CoreId busiest = kInvalidCore;
  int max_load = tun_.steal_thresh - 1;
  for (CoreId c = 0; c < n; ++c) {
    if (c == core) {
      continue;
    }
    if (rqs_[c].load > max_load && !rqs_[c].queued.empty()) {
      max_load = rqs_[c].load;
      busiest = c;
    }
  }
  if (busiest == kInvalidCore) {
    return false;
  }
  const int src_load = rqs_[busiest].load;
  const int dst_load = rqs_[core].load;
  const bool moved = StealOne(busiest, core) != nullptr;
  if (machine_->observing_decisions()) {
    BalancePassRecord rec;
    rec.kind = BalancePassRecord::Kind::kIdleSteal;
    rec.level = -1;  // flat scan, no topology level
    rec.src = busiest;
    rec.dst = core;
    rec.src_load = src_load;
    rec.dst_load = dst_load;
    rec.imbalance_pct = src_load > 0 ? 100.0 * (src_load - dst_load) / src_load : 0.0;
    rec.threads_moved = moved ? 1 : 0;
    machine_->EmitBalancePass(rec);
  }
  return moved;
}

}  // namespace schedbattle
