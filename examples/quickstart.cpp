// Quickstart: build a machine, run the same workload under CFS and ULE, and
// compare what each scheduler did.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart
//
// The pattern below is the library's core loop:
//   1. pick a topology            (CpuTopology)
//   2. pick a scheduler           (CfsScheduler / UleScheduler, tunables)
//   3. describe applications      (scripts of compute/sleep/lock/pipe steps)
//   4. run                        (Workload::Run)
//   5. inspect                    (AppStats, MachineCounters, per-thread data)
#include <cstdio>

#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/metrics/counters.h"
#include "src/workload/workload.h"

using namespace schedbattle;

int main() {
  for (SchedKind kind : {SchedKind::kCfs, SchedKind::kUle}) {
    // A 4-core machine for a quick demonstration.
    ExperimentConfig cfg;
    cfg.sched = kind;
    cfg.topology = CpuTopology::Flat(4).config();
    ExperimentRun run(cfg);

    // Application 1: a CPU-bound "batch" job with 4 threads.
    auto batch = std::make_unique<ScriptedApp>("batch", /*seed=*/1);
    ScriptedApp::ThreadTemplate hog;
    hog.name = "hog";
    hog.count = 4;
    hog.script = ScriptBuilder().Loop(200).Compute(Milliseconds(10)).EndLoop().Build();
    batch->AddThreads(std::move(hog));
    Application* batch_app = run.Add(std::move(batch));

    // Application 2: an interactive request handler that mostly sleeps.
    auto server = std::make_unique<ScriptedApp>("server", /*seed=*/2);
    AppStats* stats = &server->stats();
    ScriptedApp::ThreadTemplate handler;
    handler.name = "handler";
    handler.count = 8;
    auto op_start = std::make_shared<SimTime>(0);
    handler.script = ScriptBuilder()
                         .Loop(400)
                         .Call([op_start](ScriptEnv& env) { *op_start = env.ctx.now(); })
                         .SleepFn([](ScriptEnv& env) {
                           return static_cast<SimDuration>(env.rng.NextExponential(4.0e6));
                         })
                         .Compute(Microseconds(500))
                         .Call([stats, op_start](ScriptEnv& env) {
                           stats->RecordOp(*op_start, env.ctx.now());
                         })
                         .EndLoop()
                         .Build();
    server->AddThreads(std::move(handler));
    Application* server_app = run.Add(std::move(server));

    const SimTime finish = run.Run();

    std::printf("=== %s ===\n", SchedName(kind).data());
    std::printf("workload finished at %s\n", FormatTime(finish).c_str());
    std::printf("batch finished at %s\n", FormatTime(batch_app->stats().finished).c_str());
    std::printf("server: %llu requests, mean latency %.2fms, p99 %.2fms\n",
                static_cast<unsigned long long>(server_app->stats().ops),
                ToMilliseconds(static_cast<SimDuration>(server_app->stats().latency.Mean())),
                ToMilliseconds(server_app->stats().latency.Percentile(99)));
    std::printf("%s\n", FormatCounters(run.machine()).c_str());
  }
  std::printf("Note how ULE's interactivity classification gives the server far lower\n"
              "latency, while CFS shares the cores fairly between the two applications.\n");
  return 0;
}
