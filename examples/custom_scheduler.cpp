// Custom scheduler example: implement a minimal round-robin scheduler
// against the same scheduling-class API (paper Table 1) that CFS and ULE
// implement, and run a workload under it.
//
// This demonstrates that the library's Scheduler interface is a real
// extension point, not just an internal detail of the two built-ins.
#include <cstdio>
#include <deque>
#include <map>
#include <vector>

#include "src/metrics/counters.h"
#include "src/sched/machine.h"
#include "src/sched/sched_class.h"
#include "src/workload/workload.h"

using namespace schedbattle;

namespace {

// A global-queue round-robin scheduler with a fixed 20ms timeslice. No load
// balancing, no priorities, no interactivity — the simplest possible
// implementation of the API.
class RoundRobinScheduler : public Scheduler {
 public:
  std::string_view name() const override { return "rr"; }
  void Attach(Machine* machine) override {
    machine_ = machine;
    slice_left_.resize(machine->num_cores(), kSlice);
  }

  void TaskNew(SimThread*, SimThread*) override {}
  void TaskExit(SimThread*) override {}
  void ReniceTask(SimThread*) override {}  // round robin ignores priorities

  CoreId SelectTaskRq(SimThread* thread, CoreId origin, EnqueueKind) override {
    // Round-robin placement over allowed cores.
    for (int i = 0; i < machine_->num_cores(); ++i) {
      const CoreId c = (origin + i + 1) % machine_->num_cores();
      if (thread->CanRunOn(c)) {
        return c;
      }
    }
    return origin;
  }

  void EnqueueTask(CoreId core, SimThread* thread, EnqueueKind) override {
    queues_[core].push_back(thread);
  }
  void DequeueTask(CoreId core, SimThread* thread) override {
    auto& q = queues_[core];
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == thread) {
        q.erase(it);
        return;
      }
    }
  }
  SimThread* PickNextTask(CoreId core) override {
    auto& q = queues_[core];
    if (q.empty()) {
      return nullptr;
    }
    SimThread* t = q.front();
    q.pop_front();
    slice_left_[core] = kSlice;
    return t;
  }
  void PutPrevTask(CoreId core, SimThread* thread) override {
    queues_[core].push_back(thread);  // back of the queue: round robin
  }
  void OnTaskBlock(CoreId, SimThread*, bool) override {}
  void YieldTask(CoreId core, SimThread* thread) override { queues_[core].push_back(thread); }
  void TaskTick(CoreId core, SimThread* current) override {
    if (current == nullptr) {
      return;
    }
    slice_left_[core] -= TickPeriod();
    if (slice_left_[core] <= 0 && !queues_[core].empty()) {
      machine_->SetNeedResched(core);
    }
  }
  void CheckPreemptWakeup(CoreId, SimThread*) override {}
  void OnCoreIdle(CoreId core) override {
    // Steal one thread from the longest queue.
    CoreId busiest = kInvalidCore;
    size_t best = 0;
    for (auto& [c, q] : queues_) {
      if (c != core && q.size() > best) {
        best = q.size();
        busiest = c;
      }
    }
    if (busiest == kInvalidCore) {
      return;
    }
    for (auto it = queues_[busiest].begin(); it != queues_[busiest].end(); ++it) {
      if ((*it)->CanRunOn(core)) {
        SimThread* t = *it;
        queues_[busiest].erase(it);
        queues_[core].push_back(t);
        machine_->NoteMigration(t, busiest, core);
        return;
      }
    }
  }
  SimDuration TickPeriod() const override { return Milliseconds(1); }
  double LoadOf(CoreId core) const override {
    auto it = queues_.find(core);
    return it == queues_.end() ? 0.0 : static_cast<double>(it->second.size());
  }
  int RunnableCountOf(CoreId core) const override {
    auto it = queues_.find(core);
    const int queued = it == queues_.end() ? 0 : static_cast<int>(it->second.size());
    return queued + (machine_->CurrentOn(core) != nullptr ? 1 : 0);
  }

 private:
  static constexpr SimDuration kSlice = Milliseconds(20);
  Machine* machine_ = nullptr;
  std::map<CoreId, std::deque<SimThread*>> queues_;
  std::vector<SimDuration> slice_left_;
};

}  // namespace

int main() {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(4), std::make_unique<RoundRobinScheduler>());
  Workload workload(&machine);

  auto app = std::make_unique<ScriptedApp>("mixed", 3);
  ScriptedApp::ThreadTemplate hogs;
  hogs.name = "hog";
  hogs.count = 6;
  hogs.script = ScriptBuilder().Loop(100).Compute(Milliseconds(10)).EndLoop().Build();
  app->AddThreads(std::move(hogs));
  ScriptedApp::ThreadTemplate sleepers;
  sleepers.name = "sleeper";
  sleepers.count = 6;
  sleepers.script = ScriptBuilder()
                        .Loop(100)
                        .Compute(Milliseconds(2))
                        .Sleep(Milliseconds(5))
                        .EndLoop()
                        .Build();
  app->AddThreads(std::move(sleepers));
  Application* mixed = workload.Add(std::move(app));

  const SimTime finish = workload.Run(Seconds(60));
  std::printf("round-robin scheduler finished the workload at %s\n",
              FormatTime(finish).c_str());
  for (SimThread* t : mixed->threads()) {
    std::printf("  %-14s runtime %6.2fs  wait %6.2fs  migrations %llu\n", t->name().c_str(),
                ToSeconds(t->total_runtime), ToSeconds(t->total_wait),
                static_cast<unsigned long long>(t->migrations));
  }
  std::printf("%s", FormatCounters(machine).c_str());
  std::printf("\nThe same Scheduler API hosts CFS, ULE and this 120-line round robin.\n");
  return 0;
}
