// Starvation demo: watch ULE starve a batch thread in real (simulated) time.
//
// Reproduces the paper's Section 5.1 dynamic on a single core with a minimal
// workload: one spinner plus a handful of mostly-sleeping request handlers,
// printing the interactivity penalty and cumulative runtime every second.
//
//   ./build/examples/example_starvation_demo [cfs|ule]
#include <cstdio>
#include <cstring>

#include "src/core/experiment.h"
#include "src/core/runner.h"
#include "src/metrics/timeseries.h"
#include "src/workload/workload.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const SchedKind kind =
      (argc > 1 && std::strcmp(argv[1], "cfs") == 0) ? SchedKind::kCfs : SchedKind::kUle;
  ExperimentRun run(ExperimentConfig::SingleCore(kind, /*seed=*/7));

  // The victim: one thread that never sleeps.
  auto spinner = std::make_unique<ScriptedApp>("spinner", 1);
  ScriptedApp::ThreadTemplate spin;
  spin.name = "spin";
  spin.script = ScriptBuilder().Loop(3000).Compute(Milliseconds(10)).EndLoop().Build();
  spinner->AddThreads(std::move(spin));
  Application* spinner_app = run.Add(std::move(spinner));

  // The aggressors: 12 interactive handlers that together saturate the core
  // but individually sleep most of the time.
  auto server = std::make_unique<ScriptedApp>("handlers", 2);
  ScriptedApp::ThreadTemplate handler;
  handler.name = "h";
  handler.count = 12;
  handler.script = ScriptBuilder()
                       .Loop(-1)
                       .SleepFn([](ScriptEnv& env) {
                         return static_cast<SimDuration>(env.rng.NextExponential(3.0e6));
                       })
                       .ComputeFn([](ScriptEnv& env) {
                         return static_cast<SimDuration>(env.rng.NextExponential(2.0e6));
                       })
                       .EndLoop()
                       .Build();
  server->AddThreads(std::move(handler));
  Application* server_app = run.Add(std::move(server), /*start_at=*/Seconds(5));
  server_app->set_background(true);

  std::printf("scheduler: %s (pass 'cfs' or 'ule' as argv[1])\n\n", SchedName(kind).data());
  std::printf("%8s  %16s  %16s  %14s\n", "time", "spinner-runtime", "spinner-penalty",
              "handlers-cpu");

  Machine& m = run.machine();
  PeriodicSampler sampler(&m, Seconds(2), [&](SimTime t) {
    SimThread* spin_thread = spinner_app->threads().empty() ? nullptr
                                                            : spinner_app->threads().front();
    SimDuration handlers_cpu = 0;
    for (SimThread* h : server_app->threads()) {
      handlers_cpu += h->RuntimeAt(t);
    }
    std::printf("%7.0fs  %15.1fs  %16d  %13.1fs\n", ToSeconds(t),
                spin_thread != nullptr ? ToSeconds(spin_thread->RuntimeAt(t)) : 0.0,
                spin_thread != nullptr ? m.scheduler().InteractivityPenaltyOf(spin_thread) : -1,
                ToSeconds(handlers_cpu));
  });

  run.workload().Run(Seconds(60));
  sampler.Stop();

  std::printf("\nUnder ULE the spinner's penalty maxes out and its runtime flatlines as soon\n"
              "as the handlers arrive at t=5s (they are classified interactive and get\n"
              "absolute priority); under CFS the spinner keeps its fair share.\n");
  return 0;
}
