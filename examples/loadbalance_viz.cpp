// Load-balancer visualization: an ASCII rendition of the paper's Figure 6
// experiment — 512 threads pinned to core 0, unpinned mid-run — for either
// scheduler, with a configurable horizon.
//
//   ./build/examples/example_loadbalance_viz ule 120
//   ./build/examples/example_loadbalance_viz cfs 30
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const SchedKind kind =
      (argc > 1 && std::strcmp(argv[1], "cfs") == 0) ? SchedKind::kCfs : SchedKind::kUle;
  const double horizon_s = argc > 2 ? std::atof(argv[2]) : (kind == SchedKind::kUle ? 120 : 30);

  std::printf("512 spinning threads pinned to core 0, unpinned at t=14.5s, on %s\n\n",
              SchedName(kind).data());
  LoadBalanceResult r = RunLoadBalance512(kind, /*seed=*/42, SecondsF(horizon_s),
                                          /*tolerance=*/1);
  std::printf("%s\n", r.heatmap->RenderAscii(100).c_str());
  if (r.balanced_time >= 0) {
    std::printf("balanced %.1fs after the unpin\n", ToSeconds(r.balanced_time - r.unpin_time));
  } else {
    std::printf("not balanced within the horizon; final spread %d..%d threads/core\n",
                r.final_min, r.final_max);
  }
  std::printf("migrations: %llu, balancer invocations: %llu\n",
              static_cast<unsigned long long>(r.migrations),
              static_cast<unsigned long long>(r.balance_invocations));
  return 0;
}
