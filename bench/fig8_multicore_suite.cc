// Figure 8: performance of ULE relative to CFS for the application suite on
// the 32-core machine (positive = faster on ULE), plus hackbench.
//
// Shape to reproduce (Section 6.3): small average difference (paper: +2.75%
// for ULE); barrier-coupled HPC codes (MG, and to a lesser degree FT/UA)
// much faster on ULE because it places one thread per core and never moves
// them, while CFS reacts to micro load changes and sometimes doubles up two
// threads on one core; sysbench slower on ULE because sched_pickcpu scans
// cores on most wakeups (paper: 13% of all cycles, the highest scheduler
// time observed; CFS's highest is 2.6%).
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/hackbench.h"
#include "src/apps/registry.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

namespace {

// The two hackbench configurations as suite entries (the paper's Hackb-800
// with 32,000 threads is scaled to groups*40 threads here; the structure is
// identical).
AppSpec HackbenchApp(const std::string& label, int groups) {
  AppSpec app;
  app.name = label;
  app.has_metric = true;
  app.metric = MetricKind::kInvTime;
  app.make = [label, groups](int, uint64_t seed, double scale) {
    HackbenchParams p;
    p.name = label;
    p.groups = groups;
    p.messages = std::max(1, static_cast<int>(20 * scale));
    p.seed = seed;
    return MakeHackbench(p);
  };
  return app;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.2);
  std::printf("%s",
              BannerLine("Figure 8: ULE vs CFS, 32 cores (positive = ULE faster)").c_str());
  std::printf("(scale=%.2f seed=%llu runs=%d jobs=%d)\n\n", args.scale,
              static_cast<unsigned long long>(args.seed), args.runs, args.jobs);

  std::vector<AppSpec> apps;
  for (const AppEntry& e : BenchmarkSuite()) {
    apps.push_back(RegistryApp(e.name));
  }
  const size_t suite_count = apps.size();
  apps.push_back(HackbenchApp("Hackb-800", 40));
  apps.push_back(HackbenchApp("Hackb-10", 10));

  SuiteOptions options;
  options.seed = args.seed;
  options.scale = args.scale;
  options.runs = args.runs;
  options.jobs = args.jobs;
  const std::vector<SuiteRow> rows = RunSuite(apps, options);

  const auto cell = [&](double mean, double sd, int digits) {
    char buf[64];
    if (args.runs > 1) {
      std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", digits, mean, digits, sd);
    } else {
      std::snprintf(buf, sizeof(buf), "%.*f", digits, mean);
    }
    return std::string(buf);
  };

  TextTable table({"application", "CFS metric", "ULE metric", "ULE vs CFS", "CFS sched%",
                   "ULE sched%"});
  double sum_diff = 0;
  int n = 0;
  double mg_diff = 0, sysbench_diff = 0, sysbench_ule_overhead = 0;
  double max_cfs_overhead = 0, max_ule_overhead = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    const SuiteRow& row = rows[i];
    table.AddRow({row.name, cell(row.cfs_metric, row.cfs_stddev, 4),
                  cell(row.ule_metric, row.ule_stddev, 4), TextTable::Pct(row.diff_pct),
                  TextTable::Num(row.cfs_overhead_pct, 2),
                  TextTable::Num(row.ule_overhead_pct, 2)});
    if (i >= suite_count) {
      continue;  // hackbench rows are extra, not part of the suite average
    }
    sum_diff += row.diff_pct;
    ++n;
    max_cfs_overhead = std::max(max_cfs_overhead, row.cfs_overhead_pct);
    max_ule_overhead = std::max(max_ule_overhead, row.ule_overhead_pct);
    if (row.name == "MG") {
      mg_diff = row.diff_pct;
    }
    if (row.name == "sysbench") {
      sysbench_diff = row.diff_pct;
      sysbench_ule_overhead = row.ule_overhead_pct;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("average difference (suite): %+.1f%% (paper: +2.75%% in favour of ULE)\n",
              sum_diff / n);
  std::printf("MG: %+.1f%% (paper: +73%%), sysbench: %+.1f%% (paper: negative)\n", mg_diff,
              sysbench_diff);
  std::printf("highest scheduler time: ULE %.1f%% on sysbench (paper: 13%%), CFS max %.1f%% "
              "(paper: 2.6%%)\n",
              sysbench_ule_overhead, max_cfs_overhead);

  const bool avg_small = sum_diff / n > -8 && sum_diff / n < 15;
  const bool mg_wins = mg_diff > 5;
  const bool sysbench_loses = sysbench_diff < -2;
  const bool ule_overhead_high = sysbench_ule_overhead > 5 && max_cfs_overhead < 5;
  std::printf("shape check: average difference small: %s\n",
              avg_small ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: MG much faster on ULE (placement): %s\n",
              mg_wins ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: sysbench slower on ULE (pickcpu scans): %s\n",
              sysbench_loses ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: ULE's scheduler time highest on sysbench, far above CFS's: %s\n",
              ule_overhead_high ? "REPRODUCED" : "NOT reproduced");
  BenchJson("fig8_multicore_suite", args)
      .Metric("avg_diff_pct", sum_diff / n)
      .Metric("mg_diff_pct", mg_diff)
      .Metric("sysbench_diff_pct", sysbench_diff)
      .Metric("sysbench_ule_sched_pct", sysbench_ule_overhead)
      .Metric("max_cfs_sched_pct", max_cfs_overhead)
      .Check("avg_small", avg_small)
      .Check("mg_wins", mg_wins)
      .Check("sysbench_loses", sysbench_loses)
      .Check("ule_overhead_high", ule_overhead_high)
      .MaybeWrite();
  return (avg_small && mg_wins && sysbench_loses && ule_overhead_high) ? 0 : 1;
}
