// Micro-benchmarks (google-benchmark) for the scheduler substrates: the CFS
// red-black timeline, PELT updates, ULE's bitmap runqueue and interactivity
// scoring, and full enqueue/pick/put cycles through both schedulers.
//
// Structured output: google-benchmark's own --benchmark_format=json (or
// --benchmark_out=<path> --benchmark_out_format=json) is this binary's
// machine-readable path; the persisted simulator-wide baseline lives in
// BENCH_schedsim.json, maintained by tools/bench_baseline.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "src/cfs/cfs_sched.h"
#include "src/cfs/pelt.h"
#include "src/cfs/rbtree.h"
#include "src/sched/machine.h"
#include "src/sim/rng.h"
#include "src/ule/interact.h"
#include "src/ule/runq.h"
#include "src/ule/ule_sched.h"
#include "src/workload/script.h"

namespace schedbattle {
namespace {

struct BenchItem {
  int64_t key;
  uint64_t seq;
  RbNode node;
};

bool BenchLess(const RbNode* a, const RbNode* b) {
  const auto* ia = static_cast<const BenchItem*>(a->owner);
  const auto* ib = static_cast<const BenchItem*>(b->owner);
  if (ia->key != ib->key) {
    return ia->key < ib->key;
  }
  return ia->seq < ib->seq;
}

void BM_RbTreeInsertEraseFirst(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<BenchItem> items(n);
  Rng rng(7);
  for (int i = 0; i < n; ++i) {
    items[i].key = static_cast<int64_t>(rng.NextBelow(1 << 20));
    items[i].seq = static_cast<uint64_t>(i);
    items[i].node.owner = &items[i];
  }
  for (auto _ : state) {
    RbTree tree(BenchLess);
    for (auto& it : items) {
      tree.Insert(&it.node);
    }
    while (!tree.empty()) {
      tree.Erase(tree.First());
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_RbTreeInsertEraseFirst)->Arg(16)->Arg(128)->Arg(1024);

// EventQueue scheduling cost with the cancellable-handle path: every event
// allocates a shared_ptr control block even if the caller discards it.
void BM_EventQueueScheduleHandle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  int sink = 0;
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.Schedule(i, [&sink] { ++sink; });
    }
    SimTime when = 0;
    while (!q.empty()) {
      q.PopNext(&when)();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleHandle)->Arg(1024)->Arg(16384);

// The no-handle Post path: same ordering semantics, no control block. The
// delta against BM_EventQueueScheduleHandle is the per-event allocation cost
// saved on the fire-and-forget majority (resched requests, sleep wakeups,
// periodic ticks).
void BM_EventQueuePostNoHandle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  int sink = 0;
  for (auto _ : state) {
    EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.Post(i, [&sink] { ++sink; });
    }
    SimTime when = 0;
    while (!q.empty()) {
      q.PopNext(&when)();
    }
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueuePostNoHandle)->Arg(1024)->Arg(16384);

// Steady-state pop+post at a held depth, per backend: the queue is prefilled
// with `pending` events spread over ~10ms of virtual time, then each
// iteration pops the minimum and posts a replacement at a random future
// offset — the regime the serve1024 presets live in, where the binary heap
// pays O(log n) sift costs per op and the timing wheel stays O(1) amortized.
// Args: {pending depth, backend (0 = heap, 1 = wheel)}.
void BM_EventQueueSteadyState(benchmark::State& state) {
  const int pending = static_cast<int>(state.range(0));
  const QueueKind kind = state.range(1) == 0 ? QueueKind::kHeap : QueueKind::kWheel;
  EventQueue q(kind);
  Rng rng(7);
  uint64_t sink = 0;
  const auto offset = [&rng]() -> SimDuration {
    return 1 + static_cast<SimDuration>(rng.NextBelow(Milliseconds(10)));
  };
  for (int i = 0; i < pending; ++i) {
    q.Post(offset(), [&sink] { ++sink; });
  }
  SimTime when = 0;
  for (auto _ : state) {
    q.PopNext(&when)();
    q.Post(when + offset(), [&sink] { ++sink; });
  }
  benchmark::DoNotOptimize(sink);
  q.Clear();
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(kind == QueueKind::kHeap ? "heap" : "wheel");
}
BENCHMARK(BM_EventQueueSteadyState)
    ->Args({1024, 0})
    ->Args({1024, 1})
    ->Args({16384, 0})
    ->Args({16384, 1})
    ->Args({262144, 0})
    ->Args({262144, 1});

void BM_PeltUpdate(benchmark::State& state) {
  PeltAvg avg;
  SimTime now = 0;
  for (auto _ : state) {
    now += Microseconds(500);
    avg.Update(now, 1024, true, true);
  }
  benchmark::DoNotOptimize(avg.load_avg);
}
BENCHMARK(BM_PeltUpdate);

void BM_UleRunqAddRemoveChoose(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::unique_ptr<SimThread>> threads;
  for (int i = 0; i < n; ++i) {
    ThreadSpec spec;
    spec.name = "t";
    spec.body = MakeScriptBody(ScriptBuilder().Compute(1).Build(), Rng(i));
    threads.push_back(std::make_unique<SimThread>(i, std::move(spec)));
    threads.back()->set_sched_data(std::make_unique<UleTaskData>());
  }
  UleRunq runq;
  for (auto _ : state) {
    for (int i = 0; i < n; ++i) {
      runq.Add(threads[i].get(), i % kRqNqs);
    }
    for (int i = 0; i < n; ++i) {
      SimThread* t = runq.Choose();
      benchmark::DoNotOptimize(t);
      runq.Remove(threads[i].get(), i % kRqNqs);
    }
  }
  state.SetItemsProcessed(state.iterations() * n * 2);
}
BENCHMARK(BM_UleRunqAddRemoveChoose)->Arg(16)->Arg(128);

void BM_UleInteractScore(benchmark::State& state) {
  UleInteract hist;
  hist.runtime = Milliseconds(137);
  hist.slptime = Milliseconds(731);
  int64_t sink = 0;
  for (auto _ : state) {
    hist.runtime += 1001;
    sink += UleInteractScore(hist);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_UleInteractScore);

// Counts every observer callback, decision probes included — the cheapest
// possible observer, isolating the bus fan-out + probe assembly cost.
struct CountingObserver final : MachineObserver {
  uint64_t events = 0;
  void OnDispatch(SimTime, CoreId, const SimThread&) override { ++events; }
  void OnDeschedule(SimTime, CoreId, const SimThread&, char) override { ++events; }
  void OnWake(SimTime, const SimThread&, CoreId) override { ++events; }
  void OnMigrate(SimTime, const SimThread&, CoreId, CoreId) override { ++events; }
  void OnFork(SimTime, const SimThread&, CoreId) override { ++events; }
  void OnPickCpu(SimTime, const PickCpuDecision&) override { ++events; }
  void OnBalancePass(SimTime, const BalancePassRecord&) override { ++events; }
  void OnPreempt(SimTime, const PreemptDecision&) override { ++events; }
};

// Shared simulation body for the throughput benchmarks: 64 mixed
// sleep/compute threads on 8 cores for 5 simulated seconds.
template <typename SchedulerT>
void RunThroughputSim(benchmark::State& state, bool observe) {
  SimEngine engine;
  Machine machine(&engine, CpuTopology::Flat(8), std::make_unique<SchedulerT>());
  machine.Boot();
  CountingObserver observer;
  if (observe) {
    machine.AddObserver(&observer);
  }
  auto script = ScriptBuilder()
                    .Loop(50)
                    .ComputeFn([](ScriptEnv& env) {
                      return static_cast<SimDuration>(env.rng.NextExponential(200000.0));
                    })
                    .SleepFn([](ScriptEnv& env) {
                      return static_cast<SimDuration>(env.rng.NextExponential(300000.0));
                    })
                    .EndLoop()
                    .Build();
  for (int i = 0; i < 64; ++i) {
    ThreadSpec spec;
    spec.name = "w";
    spec.body = MakeScriptBody(script, Rng(i + 1));
    machine.Spawn(std::move(spec), nullptr);
  }
  engine.RunUntil(Seconds(5));
  state.counters["sim_events"] = static_cast<double>(engine.events_executed());
  if (observe) {
    state.counters["observed"] = static_cast<double>(observer.events);
  }
}

// End-to-end simulation throughput: events per second processed by the full
// machine with the given scheduler and a mixed sleep/compute workload.
template <typename SchedulerT>
void BM_SimulationThroughput(benchmark::State& state) {
  for (auto _ : state) {
    RunThroughputSim<SchedulerT>(state, /*observe=*/false);
  }
}
BENCHMARK_TEMPLATE(BM_SimulationThroughput, CfsScheduler)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimulationThroughput, UleScheduler)->Unit(benchmark::kMillisecond);

// The same simulation with an observer attached to the bus: the delta vs
// BM_SimulationThroughput is the full observability overhead (bus dispatch,
// probe struct assembly, balance-load snapshots). Kept as a separate
// benchmark so `--benchmark_filter=SimulationThroughput` prints both rows
// side by side for comparison; the target is <5% slowdown.
template <typename SchedulerT>
void BM_SimulationThroughputObserved(benchmark::State& state) {
  for (auto _ : state) {
    RunThroughputSim<SchedulerT>(state, /*observe=*/true);
  }
}
BENCHMARK_TEMPLATE(BM_SimulationThroughputObserved, CfsScheduler)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimulationThroughputObserved, UleScheduler)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace schedbattle

BENCHMARK_MAIN();
