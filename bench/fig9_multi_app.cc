// Figure 9: multi-application workloads on 32 cores, relative to each
// application running alone on CFS.
//
// Shape to reproduce (Section 6.4):
//  - c-ray + EP (batch + batch): both schedulers behave similarly.
//  - fibo + sysbench (batch + interactive): sysbench wins on both, but is
//    *worse* on ULE than CFS despite its priority — lock holders are not
//    preempted-for under ULE, so MySQL lock handoffs stall behind fibo.
//  - blackscholes + ferret (batch + interactive): ULE protects ferret
//    completely and starves blackscholes (>80% loss); CFS splits the pain.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.35);
  std::printf("%s", BannerLine("Figure 9: multi-application workloads (32 cores)").c_str());
  std::printf("(scale=%.2f seed=%llu runs=%d jobs=%d; bars are %% vs running alone on CFS)\n\n",
              args.scale, static_cast<unsigned long long>(args.seed), args.runs, args.jobs);

  const std::vector<MultiAppRow> rows =
      RunMultiAppPairs(args.seed, args.scale, args.runs, args.jobs);

  TextTable table({"pair", "application", "CFS multiapp", "ULE alone", "ULE multiapp"});
  auto rel = [](double v, double base) {
    return base > 0 ? 100.0 * (v - base) / base : 0.0;
  };
  for (const MultiAppRow& r : rows) {
    table.AddRow({r.pair_name, r.app_name, TextTable::Pct(rel(r.multi_cfs, r.alone_cfs)),
                  TextTable::Pct(rel(r.alone_ule, r.alone_cfs)),
                  TextTable::Pct(rel(r.multi_ule, r.alone_cfs))});
  }
  std::printf("%s\n", table.Render().c_str());
  if (args.runs > 1) {
    std::printf("(cells are means over %d seeds; e.g. %s multiapp-ULE stddev %.4f)\n\n",
                args.runs, rows.front().app_name.c_str(), rows.front().multi_ule_sd);
  }

  // Locate the rows we assert on.
  auto find = [&rows](const std::string& pair, const std::string& app) -> const MultiAppRow* {
    for (const MultiAppRow& r : rows) {
      if (r.pair_name == pair && r.app_name == app) {
        return &r;
      }
    }
    return nullptr;
  };
  const MultiAppRow* ferret = find("blackscholes + ferret", "ferret");
  const MultiAppRow* black = find("blackscholes + ferret", "blackscholes");
  const MultiAppRow* sysb = find("fibo + sysbench", "sysbench");
  const MultiAppRow* cray = find("c-ray + EP", "c-ray");
  const MultiAppRow* ep = find("c-ray + EP", "EP");

  // ULE shields the interactive app: ferret multiapp ~= ferret alone.
  const double ferret_ule_impact = rel(ferret->multi_ule, ferret->alone_ule);
  const double ferret_cfs_impact = rel(ferret->multi_cfs, ferret->alone_cfs);
  // ...at blackscholes' expense.
  const double black_ule_impact = rel(black->multi_ule, black->alone_ule);
  const double black_cfs_impact = rel(black->multi_cfs, black->alone_cfs);
  // sysbench co-run with fibo: worse on ULE than on CFS (no preemption after
  // lock releases).
  const double sysb_cfs = rel(sysb->multi_cfs, sysb->alone_cfs);
  const double sysb_ule = rel(sysb->multi_ule, sysb->alone_cfs);
  // batch+batch: both degrade comparably.
  const double cray_gap =
      std::abs(rel(cray->multi_ule, cray->alone_cfs) - rel(cray->multi_cfs, cray->alone_cfs));
  const double ep_gap =
      std::abs(rel(ep->multi_ule, ep->alone_cfs) - rel(ep->multi_cfs, ep->alone_cfs));

  std::printf("ferret impact of co-scheduling:       CFS %+.1f%%, ULE %+.1f%% (paper: ULE ~0)\n",
              ferret_cfs_impact, ferret_ule_impact);
  std::printf("blackscholes impact of co-scheduling: CFS %+.1f%%, ULE %+.1f%% "
              "(paper: ULE < -80%%)\n",
              black_cfs_impact, black_ule_impact);
  std::printf("sysbench vs alone-on-CFS:             CFS %+.1f%%, ULE %+.1f%% "
              "(paper: ULE worse than CFS)\n",
              sysb_cfs, sysb_ule);
  std::printf("batch+batch gap |ULE-CFS|: c-ray %.1f pts, EP %.1f pts (paper: small)\n\n",
              cray_gap, ep_gap);

  const bool ule_shields = ferret_ule_impact > ferret_cfs_impact + 8;
  const bool black_starves = black_ule_impact < -40 && black_ule_impact < black_cfs_impact;
  const bool sysb_worse_on_ule = sysb_ule < sysb_cfs;
  const bool batch_similar = cray_gap < 25 && ep_gap < 25;
  std::printf("shape check: ULE shields ferret (interactive) far better than CFS: %s\n",
              ule_shields ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: blackscholes pays for it, more under ULE: %s\n",
              black_starves ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: sysbench does worse on ULE when co-run with fibo: %s\n",
              sysb_worse_on_ule
                  ? "REPRODUCED"
                  : "NOT reproduced (known magnitude gap, see EXPERIMENTS.md: our MySQL "
                    "lock-handoff convoys are milder than the real system's)");
  std::printf("shape check: batch+batch pair behaves alike on both: %s\n",
              batch_similar ? "REPRODUCED" : "NOT reproduced");
  // The sysbench direction is documented as a known gap and does not gate.
  BenchJson("fig9_multi_app", args)
      .Metric("ferret_cfs_impact_pct", ferret_cfs_impact)
      .Metric("ferret_ule_impact_pct", ferret_ule_impact)
      .Metric("blackscholes_cfs_impact_pct", black_cfs_impact)
      .Metric("blackscholes_ule_impact_pct", black_ule_impact)
      .Metric("sysbench_cfs_pct", sysb_cfs)
      .Metric("sysbench_ule_pct", sysb_ule)
      .Check("ule_shields", ule_shields)
      .Check("black_starves", black_starves)
      .Check("sysb_worse_on_ule", sysb_worse_on_ule)
      .Check("batch_similar", batch_similar)
      .MaybeWrite();
  return (ule_shields && black_starves && batch_similar) ? 0 : 1;
}
