// Shared helpers for the bench binaries: flag parsing and output headers.
//
// Every binary accepts:
//   --scale=<f>   shrink workload sizes (default 1.0; CI smoke runs use less)
//   --seed=<n>    base RNG seed (default 42)
//   --runs=<n>    seeds per configuration; results report mean ± stddev
//   --jobs=<n>    campaign worker threads (0 = hardware concurrency)
//   --csv=<path>  also write machine-readable series/rows to a CSV file
//
// Parsing is strict (src/core/flags.h): "--scale=abc" is an error, not 0.0.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/core/flags.h"

namespace schedbattle {

struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  int runs = 1;
  int jobs = 0;  // 0 = hardware concurrency
  std::string csv_path;
};

// Flag table shared with schedbattle_cli's experiment subcommands; extra
// binary-specific flags can be registered on top before parsing.
inline FlagSet BenchFlagSet(BenchArgs* args) {
  FlagSet flags;
  flags.Double("scale", &args->scale, "workload scale factor")
      .Uint64("seed", &args->seed, "base RNG seed")
      .Int("runs", &args->runs, "seeds per configuration (mean ± stddev)")
      .Int("jobs", &args->jobs, "worker threads (0 = hardware concurrency)")
      .String("csv", &args->csv_path, "also write results to this CSV file");
  return flags;
}

inline BenchArgs ParseBenchArgs(int argc, char** argv, double default_scale = 1.0) {
  BenchArgs args;
  args.scale = default_scale;
  const FlagSet flags = BenchFlagSet(&args);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [options]\n%s", argv[0], flags.Help().c_str());
      std::exit(0);
    }
  }
  std::string error;
  if (!flags.Parse(argc, argv, 1, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    std::exit(2);
  }
  if (args.runs < 1) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    std::exit(2);
  }
  return args;
}

}  // namespace schedbattle

#endif  // BENCH_BENCH_UTIL_H_
