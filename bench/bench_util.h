// Shared helpers for the bench binaries: flag parsing and output headers.
//
// Every binary accepts:
//   --scale=<f>   shrink workload sizes (default 1.0; CI smoke runs use less)
//   --seed=<n>    base RNG seed (default 42)
//   --runs=<n>    seeds per configuration; results report mean ± stddev
//   --jobs=<n>    campaign worker threads (0 = hardware concurrency)
//   --csv=<path>  also write machine-readable series/rows to a CSV file
//   --json=<path> also write headline metrics + shape checks as JSON
//                 ("-" = stdout); what tools/bench_baseline and CI consume
//
// Parsing is strict (src/core/flags.h): "--scale=abc" is an error, not 0.0.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "src/core/flags.h"
#include "src/sched/machine.h"

namespace schedbattle {

struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  int runs = 1;
  int jobs = 0;  // 0 = hardware concurrency
  std::string csv_path;
  std::string json_path;  // "-" = stdout
  std::string tickless = "on";  // tick elision: "on" or "off"
  std::string queue;  // event-queue backend: "heap"/"wheel"; "" = env default
};

// Flag table shared with schedbattle_cli's experiment subcommands; extra
// binary-specific flags can be registered on top before parsing.
inline FlagSet BenchFlagSet(BenchArgs* args) {
  FlagSet flags;
  flags.Double("scale", &args->scale, "workload scale factor")
      .Uint64("seed", &args->seed, "base RNG seed")
      .Int("runs", &args->runs, "seeds per configuration (mean ± stddev)")
      .Int("jobs", &args->jobs, "worker threads (0 = hardware concurrency)")
      .String("csv", &args->csv_path, "also write results to this CSV file")
      .String("json", &args->json_path, "also write metrics as JSON ('-' = stdout)")
      .String("tickless", &args->tickless, "tick elision: on (default) or off")
      .String("queue", &args->queue,
              "event-queue backend: heap or wheel (default: SCHEDBATTLE_QUEUE)");
  return flags;
}

// Collects a bench binary's headline numbers and pass/fail shape checks into
// a flat JSON document:
//   {"bench": "...", "scale": ..., "seed": ..., "runs": ...,
//    "metrics": {...}, "checks": {...}}
// Values are doubles; checks are booleans. Insertion order is preserved, so
// documents diff cleanly between runs.
class BenchJson {
 public:
  BenchJson(std::string name, const BenchArgs& args) : name_(std::move(name)), args_(args) {}

  BenchJson& Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
    return *this;
  }

  BenchJson& Check(const std::string& key, bool ok) {
    checks_.emplace_back(key, ok);
    return *this;
  }

  std::string Render() const {
    std::string out = "{\n";
    out += "  \"bench\": \"" + name_ + "\",\n";
    out += "  \"scale\": " + Num(args_.scale) + ",\n";
    out += "  \"seed\": " + std::to_string(args_.seed) + ",\n";
    out += "  \"runs\": " + std::to_string(args_.runs) + ",\n";
    out += "  \"metrics\": {";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    \"" + metrics_[i].first + "\": " + Num(metrics_[i].second);
    }
    out += metrics_.empty() ? "},\n" : "\n  },\n";
    out += "  \"checks\": {";
    for (size_t i = 0; i < checks_.size(); ++i) {
      out += i == 0 ? "\n" : ",\n";
      out += "    \"" + checks_[i].first + "\": " + (checks_[i].second ? "true" : "false");
    }
    out += checks_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
  }

  // Writes to --json if given. Returns false (with a message) on I/O failure.
  bool MaybeWrite() const {
    if (args_.json_path.empty()) {
      return true;
    }
    const std::string doc = Render();
    if (args_.json_path == "-") {
      std::fwrite(doc.data(), 1, doc.size(), stdout);
      return true;
    }
    std::FILE* f = std::fopen(args_.json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args_.json_path.c_str());
      return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  static std::string Num(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
  }

  std::string name_;
  BenchArgs args_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<std::pair<std::string, bool>> checks_;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv, double default_scale = 1.0) {
  BenchArgs args;
  args.scale = default_scale;
  const FlagSet flags = BenchFlagSet(&args);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      std::printf("usage: %s [options]\n%s", argv[0], flags.Help().c_str());
      std::exit(0);
    }
  }
  std::string error;
  if (!flags.Parse(argc, argv, 1, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    std::exit(2);
  }
  if (args.runs < 1) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    std::exit(2);
  }
  if (args.tickless != "on" && args.tickless != "off") {
    std::fprintf(stderr, "--tickless must be on or off (got '%s')\n", args.tickless.c_str());
    std::exit(2);
  }
  SetTicklessEnabled(args.tickless == "on");
  if (!args.queue.empty()) {
    QueueKind kind;
    if (!ParseQueueKind(args.queue, &kind)) {
      std::fprintf(stderr, "--queue must be heap or wheel (got '%s')\n", args.queue.c_str());
      std::exit(2);
    }
    SetDefaultQueueKind(kind);
  }
  return args;
}

}  // namespace schedbattle

#endif  // BENCH_BENCH_UTIL_H_
