// Shared helpers for the bench binaries: flag parsing and output headers.
//
// Every binary accepts:
//   --scale=<f>   shrink workload sizes (default 1.0; CI smoke runs use less)
//   --seed=<n>    RNG seed (default 42)
//   --csv=<path>  also write machine-readable series/rows to a CSV file
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace schedbattle {

struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
  std::string csv_path;
};

inline BenchArgs ParseBenchArgs(int argc, char** argv, double default_scale = 1.0) {
  BenchArgs args;
  args.scale = default_scale;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = std::strtoull(a + 7, nullptr, 10);
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      args.csv_path = a + 6;
    } else {
      std::fprintf(stderr, "unknown flag: %s (known: --scale= --seed= --csv=)\n", a);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace schedbattle

#endif  // BENCH_BENCH_UTIL_H_
