// The paper's secondary machine (Section 4.1): "We also ran experiments on a
// smaller desktop machine (8-core Intel i7-3770), reaching similar
// conclusions. Due to space limitations, we omit these results."
//
// This bench runs a representative slice of the suite on the i7 topology
// (4 cores x 2 SMT, one LLC, one node) and checks that the headline
// conclusions carry over: small average difference, the barrier-coupled
// kernel still favours ULE, apache still favours ULE on one core.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/registry.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.15);
  std::printf("%s",
              BannerLine("Desktop machine (i7-3770, 4c/8t): representative suite slice")
                  .c_str());

  const char* names[] = {"gzip", "7zip",   "c-ray",    "MG",      "EP",
                         "FT",   "apache", "sysbench", "rocksdb", "streamcluster"};
  std::vector<AppSpec> apps;
  for (const char* name : names) {
    apps.push_back(RegistryApp(name));
  }
  SuiteOptions options;
  options.topology = CpuTopology::I7_3770().config();
  options.system_noise = true;
  options.seed = args.seed;
  options.scale = args.scale;
  options.runs = args.runs;
  options.jobs = args.jobs;
  const std::vector<SuiteRow> rows = RunSuite(apps, options);

  TextTable table({"application", "CFS metric", "ULE metric", "ULE vs CFS"});
  double sum = 0;
  int n = 0;
  double mg_diff = 0;
  for (const SuiteRow& row : rows) {
    table.AddRow({row.name, TextTable::Num(row.cfs_metric, 4),
                  TextTable::Num(row.ule_metric, 4), TextTable::Pct(row.diff_pct)});
    sum += row.diff_pct;
    ++n;
    if (row.name == "MG") {
      mg_diff = row.diff_pct;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("average difference: %+.1f%% (paper: 'similar conclusions' to the 32-core "
              "machine)\n",
              sum / n);
  const bool similar = sum / n > -8 && sum / n < 12 && mg_diff > -5;
  std::printf("shape check: conclusions carry over to the desktop machine: %s\n",
              similar ? "REPRODUCED" : "NOT reproduced");
  BenchJson("desktop_machine_suite", args)
      .Metric("avg_diff_pct", sum / n)
      .Metric("mg_diff_pct", mg_diff)
      .Check("similar", similar)
      .MaybeWrite();
  return similar ? 0 : 1;
}
