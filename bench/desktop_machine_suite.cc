// The paper's secondary machine (Section 4.1): "We also ran experiments on a
// smaller desktop machine (8-core Intel i7-3770), reaching similar
// conclusions. Due to space limitations, we omit these results."
//
// This bench runs a representative slice of the suite on the i7 topology
// (4 cores x 2 SMT, one LLC, one node) and checks that the headline
// conclusions carry over: small average difference, the barrier-coupled
// kernel still favours ULE, apache still favours ULE on one core.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/registry.h"
#include "src/core/report.h"
#include "src/core/runner.h"

using namespace schedbattle;

namespace {

double RunOne(const std::string& name, SchedKind kind, uint64_t seed, double scale) {
  const AppEntry* entry = FindApp(name);
  ExperimentConfig cfg;
  cfg.sched = kind;
  cfg.topology = CpuTopology::I7_3770().config();
  cfg.machine.seed = seed;
  cfg.system_noise = true;
  ExperimentRun run(cfg);
  Application* app = run.Add(entry->make(8, seed, scale), 0);
  run.Run();
  return run.MetricFor(*app, entry->metric);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.15);
  std::printf("%s",
              BannerLine("Desktop machine (i7-3770, 4c/8t): representative suite slice")
                  .c_str());

  const char* apps[] = {"gzip", "7zip",   "c-ray",   "MG",      "EP",
                        "FT",   "apache", "sysbench", "rocksdb", "streamcluster"};
  TextTable table({"application", "CFS metric", "ULE metric", "ULE vs CFS"});
  double sum = 0;
  int n = 0;
  double mg_diff = 0;
  for (const char* name : apps) {
    const double cfs = RunOne(name, SchedKind::kCfs, args.seed, args.scale);
    const double ule = RunOne(name, SchedKind::kUle, args.seed, args.scale);
    const double diff = cfs > 0 ? 100.0 * (ule - cfs) / cfs : 0;
    table.AddRow({name, TextTable::Num(cfs, 4), TextTable::Num(ule, 4), TextTable::Pct(diff)});
    sum += diff;
    ++n;
    if (std::string(name) == "MG") {
      mg_diff = diff;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("average difference: %+.1f%% (paper: 'similar conclusions' to the 32-core "
              "machine)\n",
              sum / n);
  const bool similar = sum / n > -8 && sum / n < 12 && mg_diff > -5;
  std::printf("shape check: conclusions carry over to the desktop machine: %s\n",
              similar ? "REPRODUCED" : "NOT reproduced");
  return similar ? 0 : 1;
}
