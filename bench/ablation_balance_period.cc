// Ablation: ULE periodic-balancer period vs time-to-balance on the Figure 6
// workload (512 pinned spinners unpinned at t=14.5s).
//
// The paper (Section 6.1) ties ULE's ~minutes-long convergence to two design
// choices: the 0.5-1.5s balancing period and the one-thread-per-donor rule.
// Sweeping the period shows convergence time scaling with it, bounded below
// by the one-thread-at-a-time rule.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/campaign.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s",
              BannerLine("Ablation: ULE balancer period vs time to balance (Fig 6 workload)")
                  .c_str());

  struct Sweep {
    const char* label;
    SimDuration min;
    SimDuration max;
  };
  const Sweep sweeps[] = {
      {"0.1s fixed", Milliseconds(100), Milliseconds(100)},
      {"0.25-0.75s", Milliseconds(250), Milliseconds(750)},
      {"0.5-1.5s (stock)", Milliseconds(500), Milliseconds(1500)},
      {"2-4s", Seconds(2), Seconds(4)},
  };

  // One Figure 6 spec per period; all legs run as one campaign.
  std::vector<ExperimentSpec> specs;
  std::vector<std::shared_ptr<LoadBalanceResult>> outs;
  for (const Sweep& s : sweeps) {
    auto out = std::make_shared<LoadBalanceResult>();
    ExperimentSpec spec = LoadBalanceSpec(SchedKind::kUle, args.seed, Seconds(700), 1, out);
    spec.ule.balance_min = s.min;
    spec.ule.balance_max = s.max;
    spec.label += std::string("/") + s.label;
    specs.push_back(std::move(spec));
    outs.push_back(std::move(out));
  }
  CampaignRunner(args.jobs).Run(specs);

  TextTable table({"balancer period", "time to balance (s)"});
  std::vector<double> times;
  for (size_t i = 0; i < outs.size(); ++i) {
    const LoadBalanceResult& r = *outs[i];
    const SimTime t = r.balanced_time < 0 ? -1 : r.balanced_time - r.unpin_time;
    times.push_back(t < 0 ? -1 : ToSeconds(t));
    table.AddRow({sweeps[i].label, t < 0 ? "never (within 700s)" : TextTable::Num(ToSeconds(t))});
  }
  std::printf("%s\n", table.Render().c_str());

  const bool monotone = times[0] > 0 && times[2] > 0 && times[0] < times[2] &&
                        (times[3] < 0 || times[2] < times[3]);
  std::printf("shape check: convergence time scales with the balancing period: %s\n",
              monotone ? "REPRODUCED" : "NOT reproduced");
  BenchJson json("ablation_balance_period", args);
  for (size_t i = 0; i < times.size(); ++i) {
    json.Metric(std::string("balance_secs_") + sweeps[i].label, times[i]);
  }
  json.Check("monotone", monotone).MaybeWrite();
  return monotone ? 0 : 1;
}
