// Ablation: ULE periodic-balancer period vs time-to-balance on the Figure 6
// workload (512 pinned spinners unpinned at t=14.5s).
//
// The paper (Section 6.1) ties ULE's ~minutes-long convergence to two design
// choices: the 0.5-1.5s balancing period and the one-thread-per-donor rule.
// Sweeping the period shows convergence time scaling with it, bounded below
// by the one-thread-at-a-time rule.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

namespace {

SimTime RunWithPeriod(SimDuration min_period, SimDuration max_period, uint64_t seed) {
  ExperimentConfig cfg = ExperimentConfig::Multicore(SchedKind::kUle, seed);
  cfg.system_noise = false;
  cfg.ule.balance_min = min_period;
  cfg.ule.balance_max = max_period;
  // Reuse the canned scenario machinery by inlining a reduced variant: 512
  // spinners pinned to core 0, unpinned at 14.5s.
  cfg.horizon = Seconds(700);
  ExperimentRun run(cfg);
  auto spinners = std::make_unique<ScriptedApp>("spinners", seed);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "spin";
  tmpl.count = 512;
  tmpl.affinity = CpuMask::Single(0);
  tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
  spinners->AddThreads(std::move(tmpl));
  spinners->set_background(true);
  Application* app = run.Add(std::move(spinners), 0);
  CoreLoadHeatmap heatmap(&run.machine(), Milliseconds(100));
  Machine& m = run.machine();
  run.engine().At(SecondsF(14.5), [&m, app] {
    const CpuMask all = CpuMask::AllOf(m.num_cores());
    for (SimThread* t : app->threads()) {
      m.SetAffinity(t, all);
    }
  });
  run.Run();
  heatmap.Stop();
  const SimTime balanced = heatmap.TimeToBalance(1);
  return balanced < 0 ? -1 : balanced - SecondsF(14.5);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s",
              BannerLine("Ablation: ULE balancer period vs time to balance (Fig 6 workload)")
                  .c_str());

  struct Sweep {
    const char* label;
    SimDuration min;
    SimDuration max;
  };
  const Sweep sweeps[] = {
      {"0.1s fixed", Milliseconds(100), Milliseconds(100)},
      {"0.25-0.75s", Milliseconds(250), Milliseconds(750)},
      {"0.5-1.5s (stock)", Milliseconds(500), Milliseconds(1500)},
      {"2-4s", Seconds(2), Seconds(4)},
  };
  TextTable table({"balancer period", "time to balance (s)"});
  std::vector<double> times;
  for (const Sweep& s : sweeps) {
    const SimTime t = RunWithPeriod(s.min, s.max, args.seed);
    times.push_back(t < 0 ? -1 : ToSeconds(t));
    table.AddRow({s.label, t < 0 ? "never (within 700s)" : TextTable::Num(ToSeconds(t))});
  }
  std::printf("%s\n", table.Render().c_str());

  const bool monotone = times[0] > 0 && times[2] > 0 && times[0] < times[2] &&
                        (times[3] < 0 || times[2] < times[3]);
  std::printf("shape check: convergence time scales with the balancing period: %s\n",
              monotone ? "REPRODUCED" : "NOT reproduced");
  return monotone ? 0 : 1;
}
