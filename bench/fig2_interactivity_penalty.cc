// Figure 2: interactivity penalty of fibo and of the sysbench threads over
// time under ULE.
//
// Shape to reproduce: fibo's penalty quickly rises to the maximum (100) and
// stays there; the sysbench workers' penalty drops to ~0 and stays below the
// interactivity threshold (30) for the whole run.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"
#include "src/metrics/csv.h"
#include "src/ule/interact.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s", BannerLine("Figure 2: interactivity penalty over time (ULE)").c_str());

  const FiboSysbenchAggregate agg =
      RunFiboSysbenchCampaign(SchedKind::kUle, args.seed, args.scale, args.runs, args.jobs);
  const FiboSysbenchResult& ule = agg.first;

  std::printf("%10s  %14s  %18s\n", "time(s)", "fibo-penalty", "sysbench-penalty");
  const auto& fp = ule.fibo_penalty_series.points();
  for (size_t i = 0; i < fp.size(); i += 10) {
    const SimTime t = fp[i].t;
    std::printf("%10.1f  %14.0f  %18.0f\n", ToSeconds(t), fp[i].value,
                ule.sysbench_penalty_series.ValueAt(t));
  }
  std::printf("\n");
  if (args.runs > 1) {
    std::printf("across %d seeds: sysbench finish %s s\n", args.runs,
                agg.sysbench_finish_s.Format(1).c_str());
  }

  // Evaluate over the window where sysbench runs.
  const double t_probe = 7.0 + (ToSeconds(ule.sysbench_finish) - 7.0) / 2;
  const double fibo_pen = ule.fibo_penalty_series.ValueAt(SecondsF(t_probe));
  const double sys_pen = ule.sysbench_penalty_series.ValueAt(SecondsF(t_probe));
  const double fibo_final = ule.fibo_penalty_series.points().back().value;
  std::printf("mid-run penalties: fibo %.0f (paper: ~100), sysbench workers %.0f (paper: ~0); "
              "fibo final %.0f\n",
              fibo_pen, sys_pen, fibo_final);
  // While starved, fibo's penalty is frozen wherever it was (well above the
  // threshold); it tops out at 100 once it runs again.
  const bool ok = fibo_pen >= 2 * kInteractThresh && fibo_final >= 95 &&
                  sys_pen < kInteractThresh;
  std::printf("shape check: fibo far above the threshold (max once running), sysbench "
              "stays interactive: %s\n",
              ok ? "REPRODUCED" : "NOT reproduced");

  if (!args.csv_path.empty()) {
    WriteFile(args.csv_path,
              SeriesToCsv({&ule.fibo_penalty_series, &ule.sysbench_penalty_series}));
  }
  BenchJson("fig2_interactivity_penalty", args)
      .Metric("fibo_penalty_mid", fibo_pen)
      .Metric("sysbench_penalty_mid", sys_pen)
      .Metric("fibo_penalty_final", fibo_final)
      .Check("penalty_shape", ok)
      .MaybeWrite();
  return ok ? 0 : 1;
}
