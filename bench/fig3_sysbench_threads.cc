// Figures 3 and 4: starvation *within* a single application (sysbench with
// 128 threads under ULE).
//
// Shape to reproduce: the master forks 128 workers while its own penalty
// rises through the interactivity threshold, so early-forked workers inherit
// interactive scores (their penalty then drops toward 0 and they run), while
// late-forked workers inherit batch scores and starve — near-zero cumulative
// runtime and a persistently high penalty band.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"
#include "src/metrics/csv.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s",
              BannerLine("Figures 3+4: sysbench threads under ULE (128 threads, one core)")
                  .c_str());

  // One spec per seed, executed as a campaign; the figure's series come from
  // the base seed, the class counts are averaged across seeds.
  std::vector<ExperimentSpec> specs;
  std::vector<std::shared_ptr<SysbenchThreadsResult>> outs;
  for (int k = 0; k < args.runs; ++k) {
    auto out = std::make_shared<SysbenchThreadsResult>();
    ExperimentSpec s =
        SysbenchThreadsSpec(SchedKind::kUle, args.seed + static_cast<uint64_t>(k), args.scale, out);
    s.label += "/s" + std::to_string(k);
    specs.push_back(std::move(s));
    outs.push_back(std::move(out));
  }
  CampaignRunner(args.jobs).Run(specs);
  const SysbenchThreadsResult& r = *outs.front();

  std::printf("%8s  %10s  %12s  %10s  %12s  %10s\n", "time(s)", "master(s)", "interact(s)",
              "backgr(s)", "interact-pen", "backgr-pen");
  const auto& mp = r.master_runtime.points();
  for (size_t i = 0; i < mp.size(); i += 10) {
    const SimTime t = mp[i].t;
    std::printf("%8.1f  %10.2f  %12.2f  %10.2f  %12.0f  %10.0f\n", ToSeconds(t), mp[i].value,
                r.interactive_runtime.ValueAt(t), r.background_runtime.ValueAt(t),
                r.interactive_penalty.ValueAt(t), r.background_penalty.ValueAt(t));
  }
  std::printf("\n");
  std::printf("worker classes: %d interactive (ran), %d background, of which %d starved\n",
              r.interactive_count, r.background_count, r.starved_count);
  std::printf("(paper: 80 interactive, 48 background/starving)\n");
  if (args.runs > 1) {
    std::vector<double> interactive, background;
    for (const auto& o : outs) {
      interactive.push_back(o->interactive_count);
      background.push_back(o->background_count);
    }
    std::printf("across %d seeds: interactive %s, background %s\n", args.runs,
                AggregateStat::Of(interactive).Format(1).c_str(),
                AggregateStat::Of(background).Format(1).c_str());
  }

  const bool two_bands = r.interactive_count >= 40 && r.background_count >= 20;
  // The paper's claim (Figure 4): the running band stays below the
  // interactivity threshold (30), the starved band above it.
  const auto& ip = r.interactive_penalty.points();
  const auto& bp = r.background_penalty.points();
  const bool penalties_split =
      !ip.empty() && !bp.empty() && ip.back().value < 30 && bp.back().value > 30;
  std::printf("shape check: interactive band runs, background band starves: %s\n",
              two_bands ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: penalty bands split (low for runners, high for starved): %s\n",
              penalties_split ? "REPRODUCED" : "NOT reproduced");

  if (!args.csv_path.empty()) {
    WriteFile(args.csv_path,
              SeriesToCsv({&r.master_runtime, &r.interactive_runtime, &r.background_runtime,
                           &r.interactive_penalty, &r.background_penalty}));
  }
  BenchJson("fig3_sysbench_threads", args)
      .Metric("interactive_count", r.interactive_count)
      .Metric("background_count", r.background_count)
      .Metric("starved_count", r.starved_count)
      .Check("two_bands", two_bands)
      .Check("penalties_split", penalties_split)
      .MaybeWrite();
  return two_bands && penalties_split ? 0 : 1;
}
