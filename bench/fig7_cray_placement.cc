// Figure 7: thread placement for c-ray (512 threads, cascading startup).
//
// Shape to reproduce (Section 6.2):
//  - ULE keeps the load balanced at every instant (forks go to the least
//    loaded core), but the cascading wakeup stalls behind starving
//    batch-classified threads: it takes on the order of 10 seconds before
//    all threads have run, vs ~2 seconds under CFS.
//  - Both schedulers finish c-ray in about the same time (more threads than
//    cores; all cores stay busy).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"
#include "src/metrics/csv.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s", BannerLine("Figure 7: c-ray thread placement (512 threads)").c_str());

  // Both legs as one campaign, run concurrently with --jobs>=2.
  auto ule_out = std::make_shared<CrayResult>();
  auto cfs_out = std::make_shared<CrayResult>();
  CampaignRunner(args.jobs).Run({
      CraySpec(SchedKind::kUle, args.seed, args.scale, ule_out),
      CraySpec(SchedKind::kCfs, args.seed, args.scale, cfs_out),
  });
  CrayResult& ule = *ule_out;
  CrayResult& cfs = *cfs_out;

  for (const CrayResult* r : {&ule, &cfs}) {
    std::printf("--- %s ---\n", SchedName(r->sched).data());
    std::printf("%s", r->heatmap->RenderAscii(96).c_str());
    std::printf("all threads have run by: %.1fs; completion: %.1fs\n\n",
                ToSeconds(r->all_runnable_time), ToSeconds(r->finish_time));
  }

  const double ule_wake = ToSeconds(ule.all_runnable_time);
  const double cfs_wake = ToSeconds(cfs.all_runnable_time);
  std::printf("time until all threads have run: ULE %.1fs vs CFS %.1fs (paper: ~11s vs ~2s)\n",
              ule_wake, cfs_wake);
  const bool ule_slow_start = ule_wake > 2.0 * cfs_wake;
  const double finish_ratio = ToSeconds(ule.finish_time) / ToSeconds(cfs.finish_time);
  const bool similar_finish = finish_ratio > 0.85 && finish_ratio < 1.18;
  std::printf("shape check: ULE's cascading start is much slower (starvation): %s\n",
              ule_slow_start ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: completion times similar (both keep cores busy): %s "
              "(ULE/CFS = %.2f)\n",
              similar_finish ? "REPRODUCED" : "NOT reproduced", finish_ratio);

  if (!args.csv_path.empty()) {
    WriteFile(args.csv_path,
              "## ULE\n" + ule.heatmap->ToCsv() + "## CFS\n" + cfs.heatmap->ToCsv());
  }
  BenchJson("fig7_cray_placement", args)
      .Metric("ule_all_runnable_s", ule_wake)
      .Metric("cfs_all_runnable_s", cfs_wake)
      .Metric("finish_ratio_ule_over_cfs", finish_ratio)
      .Check("ule_slow_start", ule_slow_start)
      .Check("similar_finish", similar_finish)
      .MaybeWrite();
  return (ule_slow_start && similar_finish) ? 0 : 1;
}
