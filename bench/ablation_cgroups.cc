// Ablation: CFS with and without per-application group scheduling on the
// Table 2 workload (fibo + sysbench-80 on one core).
//
// The paper's Figure 1(a) shows fibo receiving ~50% of the core against 80
// sysbench threads — only possible with application-level fairness
// (systemd/autogroup cgroups, Section 2.1). With groups disabled, per-thread
// fairness gives fibo ~1/81 of the core.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/fibo.h"
#include "src/apps/sysbench.h"
#include "src/core/campaign.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

namespace {

// Spec for the Table 2 workload that measures fibo's CPU share over a window
// where sysbench is saturating, via mid-run probe events.
ExperimentSpec FiboShareSpec(bool group_scheduling, uint64_t seed, double scale,
                             std::shared_ptr<double> share_out) {
  ExperimentSpec spec = ExperimentSpec::SingleCore(SchedKind::kCfs, seed);
  spec.scale = scale;
  spec.Named(group_scheduling ? "cgroups-on" : "cgroups-off");
  spec.cfs.group_scheduling = group_scheduling;

  AppSpec fibo;
  fibo.name = "fibo";
  fibo.has_metric = true;
  fibo.metric = MetricKind::kInvTime;
  fibo.make = [](int, uint64_t s, double sc) {
    FiboParams fp;
    fp.total_work = SecondsF(160.0 * sc);
    fp.seed = s;
    return MakeFibo(fp);
  };
  spec.Add(fibo);

  AppSpec sys;
  sys.name = "sysbench";
  sys.start_at = Seconds(7);
  sys.has_metric = true;
  sys.metric = MetricKind::kOpsPerSec;
  sys.make = [](int, uint64_t s, double sc) {
    SysbenchParams sp = SysbenchTable2();
    sp.seed = s + 1;
    sp.total_transactions = static_cast<int64_t>(sp.total_transactions * sc);
    return MakeSysbench(sp);
  };
  spec.Add(sys);

  struct Probe {
    SimTime t1 = 0, t2 = 0;
    SimDuration r1 = 0, r2 = 0;
  };
  auto probe = std::make_shared<Probe>();
  spec.hooks.on_start = [probe, scale](SpecRunContext& ctx) {
    Application* fibo_app = ctx.apps[0];
    probe->t1 = SecondsF(7.0 + 160.0 * scale * 0.1);
    probe->t2 = SecondsF(7.0 + 160.0 * scale * 0.5);
    ctx.run.engine().PostAt(probe->t1, [probe, fibo_app] {
      probe->r1 = fibo_app->threads().front()->RuntimeAt(probe->t1);
    });
    ctx.run.engine().PostAt(probe->t2, [probe, fibo_app] {
      probe->r2 = fibo_app->threads().front()->RuntimeAt(probe->t2);
    });
  };
  spec.hooks.on_finish = [probe, share_out](SpecRunContext&, RunResult&) {
    *share_out = static_cast<double>(probe->r2 - probe->r1) /
                 static_cast<double>(probe->t2 - probe->t1);
  };
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.5);
  std::printf("%s",
              BannerLine("Ablation: CFS group scheduling on/off (fibo + sysbench-80, one core)")
                  .c_str());

  auto with_out = std::make_shared<double>(0.0);
  auto without_out = std::make_shared<double>(0.0);
  CampaignRunner(args.jobs).Run({
      FiboShareSpec(true, args.seed, args.scale, with_out),
      FiboShareSpec(false, args.seed, args.scale, without_out),
  });
  const double with_groups = *with_out;
  const double without_groups = *without_out;

  TextTable table({"configuration", "fibo CPU share while sysbench runs"});
  table.AddRow({"group scheduling (autogroup, stock)", TextTable::Num(100 * with_groups) + "%"});
  table.AddRow({"no groups (per-thread fairness)", TextTable::Num(100 * without_groups) + "%"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("(paper Figure 1a: ~50%% with application-level fairness; 1/81 = 1.2%% "
              "per-thread)\n\n");

  const bool groups_give_half = with_groups > 0.40 && with_groups < 0.60;
  const bool threads_give_sliver = without_groups < 0.08;
  std::printf("shape check: groups give fibo ~half the core: %s\n",
              groups_give_half ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: per-thread fairness gives fibo ~1/81: %s\n",
              threads_give_sliver ? "REPRODUCED" : "NOT reproduced");
  BenchJson("ablation_cgroups", args)
      .Metric("fibo_share_with_groups", with_groups)
      .Metric("fibo_share_without_groups", without_groups)
      .Check("groups_give_half", groups_give_half)
      .Check("threads_give_sliver", threads_give_sliver)
      .MaybeWrite();
  return (groups_give_half && threads_give_sliver) ? 0 : 1;
}
