// Ablation: CFS with and without per-application group scheduling on the
// Table 2 workload (fibo + sysbench-80 on one core).
//
// The paper's Figure 1(a) shows fibo receiving ~50% of the core against 80
// sysbench threads — only possible with application-level fairness
// (systemd/autogroup cgroups, Section 2.1). With groups disabled, per-thread
// fairness gives fibo ~1/81 of the core.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/fibo.h"
#include "src/apps/sysbench.h"
#include "src/core/report.h"
#include "src/core/runner.h"

using namespace schedbattle;

namespace {

double FiboShare(bool group_scheduling, uint64_t seed, double scale) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kCfs, seed);
  cfg.cfs.group_scheduling = group_scheduling;
  ExperimentRun run(cfg);
  FiboParams fp;
  fp.total_work = SecondsF(160.0 * scale);
  fp.seed = seed;
  Application* fibo = run.Add(MakeFibo(fp), 0);
  SysbenchParams sp = SysbenchTable2();
  sp.seed = seed + 1;
  sp.total_transactions = static_cast<int64_t>(sp.total_transactions * scale);
  Application* sys = run.Add(MakeSysbench(sp), Seconds(7));
  // Measure fibo's CPU share over a window where sysbench is saturating.
  const SimTime t1 = SecondsF(7.0 + 160.0 * scale * 0.1);
  const SimTime t2 = SecondsF(7.0 + 160.0 * scale * 0.5);
  SimDuration r1 = 0, r2 = 0;
  run.engine().At(t1, [&] { r1 = fibo->threads().front()->RuntimeAt(t1); });
  run.engine().At(t2, [&] { r2 = fibo->threads().front()->RuntimeAt(t2); });
  run.Run();
  (void)sys;
  return static_cast<double>(r2 - r1) / static_cast<double>(t2 - t1);
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.5);
  std::printf("%s",
              BannerLine("Ablation: CFS group scheduling on/off (fibo + sysbench-80, one core)")
                  .c_str());

  const double with_groups = FiboShare(true, args.seed, args.scale);
  const double without_groups = FiboShare(false, args.seed, args.scale);

  TextTable table({"configuration", "fibo CPU share while sysbench runs"});
  table.AddRow({"group scheduling (autogroup, stock)", TextTable::Num(100 * with_groups) + "%"});
  table.AddRow({"no groups (per-thread fairness)", TextTable::Num(100 * without_groups) + "%"});
  std::printf("%s\n", table.Render().c_str());
  std::printf("(paper Figure 1a: ~50%% with application-level fairness; 1/81 = 1.2%% "
              "per-thread)\n\n");

  const bool groups_give_half = with_groups > 0.40 && with_groups < 0.60;
  const bool threads_give_sliver = without_groups < 0.08;
  std::printf("shape check: groups give fibo ~half the core: %s\n",
              groups_give_half ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: per-thread fairness gives fibo ~1/81: %s\n",
              threads_give_sliver ? "REPRODUCED" : "NOT reproduced");
  return (groups_give_half && threads_give_sliver) ? 0 : 1;
}
