// Figure 6: 512 spinning threads pinned to core 0, unpinned at t=14.5s.
//
// Shape to reproduce (Section 6.1):
//  - ULE: on unpin each idle core steals exactly one thread (core 0 keeps
//    481); afterwards only core 0's periodic balancer moves one thread per
//    invocation (~0.5-1.5s apart), so full balance takes hundreds of
//    invocations / on the order of minutes.
//  - CFS: moves hundreds of threads within fractions of a second, but never
//    reaches a perfect balance (the 25% NUMA-level imbalance rule leaves
//    e.g. 15-vs-18 splits).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"
#include "src/metrics/csv.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s",
              BannerLine("Figure 6: threads per core over time (512 spinners unpinned)").c_str());

  // Both legs as one campaign, run concurrently with --jobs>=2.
  // ULE needs minutes of simulated time to converge; tolerance 1 thread.
  // CFS converges fast but imperfectly, so its leg is much shorter.
  auto ule_out = std::make_shared<LoadBalanceResult>();
  auto cfs_out = std::make_shared<LoadBalanceResult>();
  CampaignRunner(args.jobs).Run({
      LoadBalanceSpec(SchedKind::kUle, args.seed, Seconds(700), 1, ule_out),
      LoadBalanceSpec(SchedKind::kCfs, args.seed, Seconds(60), 1, cfs_out),
  });
  LoadBalanceResult& ule = *ule_out;
  LoadBalanceResult& cfs = *cfs_out;

  for (const LoadBalanceResult* r : {&ule, &cfs}) {
    std::printf("--- %s ---\n", SchedName(r->sched).data());
    std::printf("%s", r->heatmap->RenderAscii(96).c_str());
    const auto just_after = r->heatmap->CountsAt(r->unpin_time + Milliseconds(400));
    int mx = 0, mn = 1 << 30;
    for (int v : just_after) {
      mx = std::max(mx, v);
      mn = std::min(mn, v);
    }
    std::printf("0.4s after unpin: max/core %d, min/core %d\n", mx, mn);
    if (r->balanced_time >= 0) {
      std::printf("balanced (max-min<=1) after %.1fs (at t=%.1fs)\n",
                  ToSeconds(r->balanced_time - r->unpin_time), ToSeconds(r->balanced_time));
    } else {
      std::printf("never balanced to max-min<=1; final spread %d..%d\n", r->final_min,
                  r->final_max);
    }
    std::printf("migrations: %llu, balancer invocations: %llu\n\n",
                static_cast<unsigned long long>(r->migrations),
                static_cast<unsigned long long>(r->balance_invocations));
  }

  // Shape checks.
  const auto ule_after = ule.heatmap->CountsAt(ule.unpin_time + Milliseconds(400));
  const bool ule_steal_one =
      !ule_after.empty() && ule_after[0] > 450;  // core 0 kept ~481 after idle steals
  const double ule_balance_secs =
      ule.balanced_time >= 0 ? ToSeconds(ule.balanced_time - ule.unpin_time) : 1e9;
  const bool ule_slow = ule_balance_secs > 60.0;  // paper: ~240s
  const auto cfs_after = cfs.heatmap->CountsAt(cfs.unpin_time + Milliseconds(400));
  int cfs_max_after = 0;
  for (int v : cfs_after) {
    cfs_max_after = std::max(cfs_max_after, v);
  }
  const bool cfs_fast = cfs_max_after < 200;  // paper: >380 threads moved in 0.2s
  const bool cfs_imperfect = cfs.balanced_time < 0 && cfs.final_max - cfs.final_min >= 2;

  std::printf("shape check: ULE idle cores steal one thread each (core 0 keeps ~481): %s\n",
              ule_steal_one ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: ULE takes minutes to balance: %s\n",
              ule_slow ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: CFS balances most load within ~0.4s: %s\n",
              cfs_fast ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: CFS never reaches perfect balance (25%% NUMA rule): %s\n",
              cfs_imperfect ? "REPRODUCED" : "NOT reproduced");

  if (!args.csv_path.empty()) {
    WriteFile(args.csv_path, "## ULE\n" + ule.heatmap->ToCsv() + "## CFS\n" +
                                 cfs.heatmap->ToCsv());
  }
  BenchJson("fig6_load_balance_512", args)
      .Metric("ule_balance_secs", ule_balance_secs)
      .Metric("cfs_max_per_core_after_0.4s", cfs_max_after)
      .Metric("ule_migrations", static_cast<double>(ule.migrations))
      .Metric("cfs_migrations", static_cast<double>(cfs.migrations))
      .Check("ule_steal_one", ule_steal_one)
      .Check("ule_slow", ule_slow)
      .Check("cfs_fast", cfs_fast)
      .Check("cfs_imperfect", cfs_imperfect)
      .MaybeWrite();
  return (ule_steal_one && ule_slow && cfs_fast && cfs_imperfect) ? 0 : 1;
}
