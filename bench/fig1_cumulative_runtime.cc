// Figure 1: cumulative runtime of fibo and sysbench over time, on CFS (a)
// and ULE (b).
//
// Shape to reproduce: on CFS fibo keeps accumulating runtime (at ~half
// speed) while sysbench executes; on ULE fibo's curve is flat (starved)
// until sysbench completes.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"
#include "src/metrics/csv.h"

using namespace schedbattle;

namespace {

void PrintSeries(const FiboSysbenchResult& r) {
  std::printf("--- %s ---\n", SchedName(r.sched).data());
  std::printf("%10s  %14s  %18s\n", "time(s)", "fibo-runtime(s)", "sysbench-runtime(s)");
  const auto& fp = r.fibo_runtime_series.points();
  for (size_t i = 0; i < fp.size(); i += 20) {  // every 10s of sim time
    const SimTime t = fp[i].t;
    std::printf("%10.1f  %14.1f  %18.1f\n", ToSeconds(t), fp[i].value,
                r.sysbench_runtime_series.ValueAt(t));
  }
  std::printf("\n");
}

// Fibo's runtime gain over [t1, t2].
double FiboGain(const FiboSysbenchResult& r, double t1, double t2) {
  return r.fibo_runtime_series.ValueAt(SecondsF(t2)) -
         r.fibo_runtime_series.ValueAt(SecondsF(t1));
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s", BannerLine("Figure 1: cumulative runtime of fibo and sysbench").c_str());

  const FiboSysbenchCampaign c = RunFiboSysbenchBoth(args.seed, args.scale, args.runs, args.jobs);
  const FiboSysbenchResult& cfs = c.cfs.first;
  const FiboSysbenchResult& ule = c.ule.first;
  PrintSeries(cfs);
  PrintSeries(ule);
  if (args.runs > 1) {
    std::printf("across %d seeds: sysbench tps CFS %s, ULE %s\n\n", args.runs,
                c.cfs.tps.Format(0).c_str(), c.ule.tps.Format(0).c_str());
  }

  // Shape checks over a window where sysbench is active on both schedulers:
  // from shortly after the sysbench launch to ULE's sysbench finish.
  const double t1 = 15.0 * args.scale + 7.0;
  const double t2 = ToSeconds(ule.sysbench_finish) * 0.9;
  const double cfs_rate = FiboGain(cfs, t1, t2) / (t2 - t1);
  const double ule_rate = FiboGain(ule, t1, t2) / (t2 - t1);
  std::printf("fibo progress rate while sysbench active: CFS %.2f s/s, ULE %.2f s/s\n", cfs_rate,
              ule_rate);
  const bool cfs_shares = cfs_rate > 0.25 && cfs_rate < 0.75;
  const bool ule_starves = ule_rate < 0.02;
  std::printf("shape check: CFS shares the core (~50%% to fibo): %s\n",
              cfs_shares ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: ULE starves fibo (flat curve): %s\n",
              ule_starves ? "REPRODUCED" : "NOT reproduced");

  if (!args.csv_path.empty()) {
    WriteFile(args.csv_path,
              SeriesToCsv({&cfs.fibo_runtime_series, &cfs.sysbench_runtime_series,
                           &ule.fibo_runtime_series, &ule.sysbench_runtime_series}));
  }
  BenchJson("fig1_cumulative_runtime", args)
      .Metric("cfs_fibo_rate", cfs_rate)
      .Metric("ule_fibo_rate", ule_rate)
      .Metric("cfs_sysbench_finish_s", ToSeconds(cfs.sysbench_finish))
      .Metric("ule_sysbench_finish_s", ToSeconds(ule.sysbench_finish))
      .Check("cfs_shares_core", cfs_shares)
      .Check("ule_starves_fibo", ule_starves)
      .MaybeWrite();
  return cfs_shares && ule_starves ? 0 : 1;
}
