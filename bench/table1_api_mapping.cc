// Table 1: the Linux scheduling-class API and its FreeBSD equivalents, as
// realized by this library's Scheduler interface (src/sched/sched_class.h).
//
// This is the paper's port surface: both CfsScheduler and UleScheduler
// implement exactly this set of hooks, which is what makes the comparison
// apples-to-apples.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cfs/cfs_sched.h"
#include "src/core/report.h"
#include "src/ule/ule_sched.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s", BannerLine("Table 1: Linux scheduler API and FreeBSD equivalents").c_str());
  TextTable table({"Linux", "FreeBSD equivalent", "schedbattle hook", "Usage"});
  table.AddRow({"enqueue_task", "sched_add / sched_wakeup", "Scheduler::EnqueueTask",
                "Enqueue a thread in a runqueue (EnqueueKind distinguishes fork/wakeup)"});
  table.AddRow({"dequeue_task", "sched_rem", "Scheduler::DequeueTask",
                "Remove a thread from a runqueue"});
  table.AddRow({"yield_task", "sched_relinquish", "Scheduler::YieldTask",
                "Yield the CPU back to the scheduler"});
  table.AddRow({"pick_next_task", "sched_choose", "Scheduler::PickNextTask",
                "Select the next task to be scheduled"});
  table.AddRow({"put_prev_task", "sched_switch", "Scheduler::PutPrevTask",
                "Update statistics about the task that just ran"});
  table.AddRow({"select_task_rq", "sched_pickcpu", "Scheduler::SelectTaskRq",
                "Choose the CPU for a new or waking thread"});
  table.AddRow({"task_tick", "sched_clock", "Scheduler::TaskTick",
                "Periodic per-core accounting tick"});
  table.AddRow({"task_fork", "sched_fork", "Scheduler::TaskNew",
                "Initialize per-thread scheduler state / inheritance"});
  table.AddRow({"task_dead", "sched_exit", "Scheduler::TaskExit",
                "Tear down state; ULE returns runtime to the parent"});
  table.AddRow({"check_preempt_curr", "sched_shouldpreempt", "Scheduler::CheckPreemptWakeup",
                "Decide whether a wakeup preempts the running thread"});
  std::printf("%s\n", table.Render().c_str());

  // Demonstrate that both schedulers implement the interface: instantiate
  // them polymorphically and print their identities and tick periods.
  std::unique_ptr<Scheduler> scheds[] = {std::make_unique<CfsScheduler>(),
                                         std::make_unique<UleScheduler>()};
  for (const auto& s : scheds) {
    std::printf("scheduler '%s': tick period %.3fms\n", s->name().data(),
                ToMilliseconds(s->TickPeriod()));
  }
  std::printf("\nshape check: both schedulers implement the full Table 1 surface: "
              "REPRODUCED (compile-time)\n");
  BenchJson("table1_api_mapping", args)
      .Metric("cfs_tick_ms", ToMilliseconds(scheds[0]->TickPeriod()))
      .Metric("ule_tick_ms", ToMilliseconds(scheds[1]->TickPeriod()))
      .Check("api_surface_complete", true)
      .MaybeWrite();
  return 0;
}
