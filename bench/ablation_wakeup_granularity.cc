// Ablation: CFS wakeup-preemption granularity, swept on the apache workload.
//
// Paper Section 2.1/5.3: CFS preempts on wakeup only when the woken thread's
// vruntime deficit exceeds ~1ms — "CFS sacrifices latency to avoid frequent
// thread preemption, which may negatively impact caches" — and apache's +40%
// on ULE comes precisely from ab being preempted on every request under CFS.
// Sweeping the granularity shows the effect smoothly: a large granularity
// makes CFS behave like ULE on this workload (few preemptions, high
// throughput), a tiny one makes it worse.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/apache.h"
#include "src/core/campaign.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s",
              BannerLine("Ablation: CFS wakeup granularity on apache (one core)").c_str());

  ExperimentSpec base = ExperimentSpec::SingleCore(SchedKind::kCfs, args.seed);
  base.scale = args.scale;
  base.Named("wakeup-granularity");
  AppSpec apache;
  apache.name = "apache";
  apache.has_metric = true;
  apache.metric = MetricKind::kOpsPerSec;
  apache.make = [](int, uint64_t seed, double scale) {
    ApacheParams p;
    p.seed = seed;
    p.total_requests = static_cast<int64_t>(500000 * scale);
    return MakeApache(p);
  };
  base.Add(apache);

  const SimDuration grans[] = {Microseconds(100), Milliseconds(1), Milliseconds(4),
                               Milliseconds(20), Milliseconds(100)};
  std::vector<SpecVariant> variants;
  for (SimDuration g : grans) {
    variants.push_back({"gran-" + std::to_string(static_cast<long long>(ToMilliseconds(g) * 1000)) + "us",
                        [g](ExperimentSpec& s) { s.cfs.wakeup_granularity = g; }});
  }
  variants.push_back({"ule", [](ExperimentSpec& s) { s.sched = SchedKind::kUle; }});

  const std::vector<RunResult> all =
      CampaignRunner(args.jobs).Run(SeedSweep(WithVariants(base, variants), args.runs));
  const std::vector<ResultGroup> groups = GroupResults(all);

  struct Result {
    double rps;
    uint64_t preemptions;
  };
  std::vector<Result> results;
  TextTable table({"wakeup granularity", "requests/s", "wakeup preemptions"});
  for (size_t i = 0; i < std::size(grans); ++i) {
    const Result r = {
        groups[i].Aggregate([](const RunResult& rr) { return rr.apps[0].ops_per_sec; }).mean,
        groups[i].runs.front()->counters.wakeup_preemptions};
    results.push_back(r);
    table.AddRow({TextTable::Num(ToMilliseconds(grans[i]), 1) + "ms" +
                      (grans[i] == Milliseconds(1) ? " (stock)" : ""),
                  TextTable::Num(r.rps, 0), std::to_string(r.preemptions)});
  }
  const double ule_rps =
      groups.back().Aggregate([](const RunResult& rr) { return rr.apps[0].ops_per_sec; }).mean;
  table.AddRow({"(ULE, no preemption)", TextTable::Num(ule_rps, 0), "0"});
  std::printf("%s\n", table.Render().c_str());

  const bool monotone_preempt = results.front().preemptions > results.back().preemptions * 10;
  const bool throughput_rises = results.back().rps > 1.1 * results[1].rps;
  const bool converges_to_ule = results.back().rps > 0.9 * ule_rps;
  std::printf("shape check: higher granularity => fewer preemptions: %s\n",
              monotone_preempt ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: apache throughput rises as preemption is suppressed: %s\n",
              throughput_rises ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: at large granularity CFS approaches ULE on this workload: %s\n",
              converges_to_ule ? "REPRODUCED" : "NOT reproduced");
  BenchJson("ablation_wakeup_granularity", args)
      .Metric("cfs_min_granularity_rps", results.front().rps)
      .Metric("cfs_max_granularity_rps", results.back().rps)
      .Metric("ule_rps", ule_rps)
      .Check("monotone_preempt", monotone_preempt)
      .Check("throughput_rises", throughput_rises)
      .Check("converges_to_ule", converges_to_ule)
      .MaybeWrite();
  return (monotone_preempt && throughput_rises && converges_to_ule) ? 0 : 1;
}
