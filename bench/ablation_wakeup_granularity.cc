// Ablation: CFS wakeup-preemption granularity, swept on the apache workload.
//
// Paper Section 2.1/5.3: CFS preempts on wakeup only when the woken thread's
// vruntime deficit exceeds ~1ms — "CFS sacrifices latency to avoid frequent
// thread preemption, which may negatively impact caches" — and apache's +40%
// on ULE comes precisely from ab being preempted on every request under CFS.
// Sweeping the granularity shows the effect smoothly: a large granularity
// makes CFS behave like ULE on this workload (few preemptions, high
// throughput), a tiny one makes it worse.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/apache.h"
#include "src/core/report.h"
#include "src/core/runner.h"

using namespace schedbattle;

namespace {

struct Result {
  double rps;
  uint64_t preemptions;
};

Result RunOne(SimDuration gran, uint64_t seed, double scale) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kCfs, seed);
  cfg.cfs.wakeup_granularity = gran;
  ExperimentRun run(cfg);
  ApacheParams p;
  p.seed = seed;
  p.total_requests = static_cast<int64_t>(500000 * scale);
  Application* app = run.Add(MakeApache(p), 0);
  run.Run();
  return {app->stats().OpsPerSecond(run.engine().now()),
          run.machine().counters().wakeup_preemptions};
}

double RunUle(uint64_t seed, double scale) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(SchedKind::kUle, seed);
  ExperimentRun run(cfg);
  ApacheParams p;
  p.seed = seed;
  p.total_requests = static_cast<int64_t>(500000 * scale);
  Application* app = run.Add(MakeApache(p), 0);
  run.Run();
  return app->stats().OpsPerSecond(run.engine().now());
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s",
              BannerLine("Ablation: CFS wakeup granularity on apache (one core)").c_str());

  const SimDuration grans[] = {Microseconds(100), Milliseconds(1), Milliseconds(4),
                               Milliseconds(20), Milliseconds(100)};
  TextTable table({"wakeup granularity", "requests/s", "wakeup preemptions"});
  std::vector<Result> results;
  for (SimDuration g : grans) {
    const Result r = RunOne(g, args.seed, args.scale);
    results.push_back(r);
    table.AddRow({TextTable::Num(ToMilliseconds(g), 1) + "ms" + (g == Milliseconds(1) ? " (stock)" : ""),
                  TextTable::Num(r.rps, 0), std::to_string(r.preemptions)});
  }
  const double ule_rps = RunUle(args.seed, args.scale);
  table.AddRow({"(ULE, no preemption)", TextTable::Num(ule_rps, 0), "0"});
  std::printf("%s\n", table.Render().c_str());

  const bool monotone_preempt = results.front().preemptions > results.back().preemptions * 10;
  const bool throughput_rises = results.back().rps > 1.1 * results[1].rps;
  const bool converges_to_ule = results.back().rps > 0.9 * ule_rps;
  std::printf("shape check: higher granularity => fewer preemptions: %s\n",
              monotone_preempt ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: apache throughput rises as preemption is suppressed: %s\n",
              throughput_rises ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: at large granularity CFS approaches ULE on this workload: %s\n",
              converges_to_ule ? "REPRODUCED" : "NOT reproduced");
  return (monotone_preempt && throughput_rises && converges_to_ule) ? 0 : 1;
}
