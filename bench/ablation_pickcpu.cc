// Ablation (paper Section 6.3): replace ULE's sched_pickcpu with "return the
// CPU the thread previously ran on".
//
// "To validate this assumption, we replaced the ULE wakeup function by a
// simple one that returns the CPU on which the thread was previously
// running, and then observed no difference between ULE and CFS."
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/sysbench.h"
#include "src/core/report.h"
#include "src/core/runner.h"

using namespace schedbattle;

namespace {

struct Result {
  double tps;
  double sched_pct;
  uint64_t scans;
};

Result RunOne(SchedKind kind, bool return_prev, uint64_t seed, double scale) {
  ExperimentConfig cfg = ExperimentConfig::Multicore(kind, seed);
  cfg.ule.pickcpu_return_prev = return_prev;
  ExperimentRun run(cfg);
  SysbenchParams p = SysbenchMulticore();
  p.seed = seed;
  p.total_transactions = static_cast<int64_t>(p.total_transactions * scale);
  Application* app = run.Add(MakeSysbench(p), 0);
  run.Run();
  return {app->stats().OpsPerSecond(run.engine().now()),
          100.0 * run.machine().SchedulerWorkFraction(),
          run.machine().counters().pickcpu_scans};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s",
              BannerLine("Ablation: ULE sched_pickcpu vs 'return previous CPU' (sysbench, 32 "
                         "cores)")
                  .c_str());

  const Result cfs = RunOne(SchedKind::kCfs, false, args.seed, args.scale);
  const Result ule = RunOne(SchedKind::kUle, false, args.seed, args.scale);
  const Result ule_prev = RunOne(SchedKind::kUle, true, args.seed, args.scale);

  TextTable table({"configuration", "transactions/s", "sched time %", "cores scanned"});
  table.AddRow({"CFS", TextTable::Num(cfs.tps, 0), TextTable::Num(cfs.sched_pct, 2),
                std::to_string(cfs.scans)});
  table.AddRow({"ULE (sched_pickcpu)", TextTable::Num(ule.tps, 0),
                TextTable::Num(ule.sched_pct, 2), std::to_string(ule.scans)});
  table.AddRow({"ULE (return prev cpu)", TextTable::Num(ule_prev.tps, 0),
                TextTable::Num(ule_prev.sched_pct, 2), std::to_string(ule_prev.scans)});
  std::printf("%s\n", table.Render().c_str());

  const double gap_full = 100.0 * (ule.tps - cfs.tps) / cfs.tps;
  const double gap_prev = 100.0 * (ule_prev.tps - cfs.tps) / cfs.tps;
  std::printf("ULE vs CFS: %+.1f%% with sched_pickcpu, %+.1f%% with return-prev\n", gap_full,
              gap_prev);
  const bool overhead_gone = ule_prev.sched_pct < 0.3 * ule.sched_pct;
  const bool gap_closes = std::abs(gap_prev) < std::abs(gap_full) || gap_prev >= -0.5;
  std::printf("shape check: scanning overhead disappears with return-prev: %s\n",
              overhead_gone ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: the ULE-vs-CFS gap closes (paper: 'no difference'): %s\n",
              gap_closes ? "REPRODUCED" : "NOT reproduced");
  return (overhead_gone && gap_closes) ? 0 : 1;
}
