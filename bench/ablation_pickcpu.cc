// Ablation (paper Section 6.3): replace ULE's sched_pickcpu with "return the
// CPU the thread previously ran on".
//
// "To validate this assumption, we replaced the ULE wakeup function by a
// simple one that returns the CPU on which the thread was previously
// running, and then observed no difference between ULE and CFS."
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/sysbench.h"
#include "src/core/campaign.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s",
              BannerLine("Ablation: ULE sched_pickcpu vs 'return previous CPU' (sysbench, 32 "
                         "cores)")
                  .c_str());

  ExperimentSpec base = ExperimentSpec::Multicore(SchedKind::kCfs, args.seed);
  base.scale = args.scale;
  base.Named("pickcpu");
  AppSpec sys;
  sys.name = "sysbench";
  sys.has_metric = true;
  sys.metric = MetricKind::kOpsPerSec;
  sys.make = [](int, uint64_t seed, double scale) {
    SysbenchParams p = SysbenchMulticore();
    p.seed = seed;
    p.total_transactions = static_cast<int64_t>(p.total_transactions * scale);
    return MakeSysbench(p);
  };
  base.Add(sys);

  const std::vector<SpecVariant> variants = {
      {"cfs", [](ExperimentSpec& s) { s.sched = SchedKind::kCfs; }},
      {"ule", [](ExperimentSpec& s) { s.sched = SchedKind::kUle; }},
      {"ule-return-prev",
       [](ExperimentSpec& s) {
         s.sched = SchedKind::kUle;
         s.ule.pickcpu_return_prev = true;
       }},
  };
  const std::vector<RunResult> results =
      CampaignRunner(args.jobs).Run(SeedSweep(WithVariants(base, variants), args.runs));
  const std::vector<ResultGroup> groups = GroupResults(results);

  struct Row {
    const char* label;
    AggregateStat tps;
    double sched_pct;
    uint64_t scans;
  };
  std::vector<Row> rows;
  const char* labels[] = {"CFS", "ULE (sched_pickcpu)", "ULE (return prev cpu)"};
  for (size_t i = 0; i < groups.size(); ++i) {
    Row row;
    row.label = labels[i];
    row.tps = groups[i].Aggregate([](const RunResult& r) { return r.apps[0].ops_per_sec; });
    row.sched_pct =
        groups[i].Aggregate([](const RunResult& r) { return 100.0 * r.sched_work_fraction; })
            .mean;
    row.scans = groups[i].runs.front()->counters.pickcpu_scans;
    rows.push_back(row);
  }

  TextTable table({"configuration", "transactions/s", "sched time %", "cores scanned"});
  for (const Row& row : rows) {
    table.AddRow({row.label, row.tps.Format(0), TextTable::Num(row.sched_pct, 2),
                  std::to_string(row.scans)});
  }
  std::printf("%s\n", table.Render().c_str());

  const Row& cfs = rows[0];
  const Row& ule = rows[1];
  const Row& ule_prev = rows[2];
  const double gap_full = 100.0 * (ule.tps.mean - cfs.tps.mean) / cfs.tps.mean;
  const double gap_prev = 100.0 * (ule_prev.tps.mean - cfs.tps.mean) / cfs.tps.mean;
  std::printf("ULE vs CFS: %+.1f%% with sched_pickcpu, %+.1f%% with return-prev\n", gap_full,
              gap_prev);
  const bool overhead_gone = ule_prev.sched_pct < 0.3 * ule.sched_pct;
  const bool gap_closes = std::abs(gap_prev) < std::abs(gap_full) || gap_prev >= -0.5;
  std::printf("shape check: scanning overhead disappears with return-prev: %s\n",
              overhead_gone ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: the ULE-vs-CFS gap closes (paper: 'no difference'): %s\n",
              gap_closes ? "REPRODUCED" : "NOT reproduced");
  BenchJson("ablation_pickcpu", args)
      .Metric("gap_full_pct", gap_full)
      .Metric("gap_prev_pct", gap_prev)
      .Metric("ule_sched_pct", ule.sched_pct)
      .Metric("ule_prev_sched_pct", ule_prev.sched_pct)
      .Check("overhead_gone", overhead_gone)
      .Check("gap_closes", gap_closes)
      .MaybeWrite();
  return (overhead_gone && gap_closes) ? 0 : 1;
}
