// Ablation: force-enable wakeup preemption in ULE.
//
// The paper attributes two results to ULE's lack of full preemption:
// apache's +40% on a single core (ab is never preempted) and sysbench's
// added latency when co-run with fibo. This ablation flips the design knob
// and shows the apache advantage collapsing toward CFS behaviour.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/apps/apache.h"
#include "src/core/report.h"
#include "src/core/runner.h"

using namespace schedbattle;

namespace {

struct Result {
  double rps;
  uint64_t wakeup_preemptions;
};

Result RunOne(SchedKind kind, bool ule_preempt, uint64_t seed, double scale) {
  ExperimentConfig cfg = ExperimentConfig::SingleCore(kind, seed);
  cfg.ule.wakeup_preemption = ule_preempt;
  ExperimentRun run(cfg);
  ApacheParams p;
  p.seed = seed;
  p.total_requests = static_cast<int64_t>(500000 * scale);
  Application* app = run.Add(MakeApache(p), 0);
  run.Run();
  return {app->stats().OpsPerSecond(run.engine().now()),
          run.machine().counters().wakeup_preemptions};
}

}  // namespace

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s",
              BannerLine("Ablation: ULE with wakeup preemption enabled (apache, one core)")
                  .c_str());

  const Result cfs = RunOne(SchedKind::kCfs, false, args.seed, args.scale);
  const Result ule = RunOne(SchedKind::kUle, false, args.seed, args.scale);
  const Result ule_preempt = RunOne(SchedKind::kUle, true, args.seed, args.scale);

  TextTable table({"configuration", "requests/s", "wakeup preemptions"});
  table.AddRow({"CFS", TextTable::Num(cfs.rps, 0), std::to_string(cfs.wakeup_preemptions)});
  table.AddRow({"ULE (no preemption, stock)", TextTable::Num(ule.rps, 0),
                std::to_string(ule.wakeup_preemptions)});
  table.AddRow({"ULE (wakeup preemption on)", TextTable::Num(ule_preempt.rps, 0),
                std::to_string(ule_preempt.wakeup_preemptions)});
  std::printf("%s\n", table.Render().c_str());

  const double stock_gain = 100.0 * (ule.rps - cfs.rps) / cfs.rps;
  const double preempt_gain = 100.0 * (ule_preempt.rps - cfs.rps) / cfs.rps;
  std::printf("ULE vs CFS: %+.1f%% stock, %+.1f%% with preemption enabled\n", stock_gain,
              preempt_gain);
  const bool advantage_from_no_preemption =
      stock_gain > 15 && preempt_gain < 0.5 * stock_gain &&
      ule_preempt.wakeup_preemptions > 100 * (ule.wakeup_preemptions + 1);
  std::printf("shape check: apache's ULE advantage comes from the lack of preemption: %s\n",
              advantage_from_no_preemption ? "REPRODUCED" : "NOT reproduced");
  return advantage_from_no_preemption ? 0 : 1;
}
