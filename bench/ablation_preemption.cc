// Ablation: force-enable wakeup preemption in ULE.
//
// The paper attributes two results to ULE's lack of full preemption:
// apache's +40% on a single core (ab is never preempted) and sysbench's
// added latency when co-run with fibo. This ablation flips the design knob
// and shows the apache advantage collapsing toward CFS behaviour.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/apache.h"
#include "src/core/campaign.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s",
              BannerLine("Ablation: ULE with wakeup preemption enabled (apache, one core)")
                  .c_str());

  ExperimentSpec base = ExperimentSpec::SingleCore(SchedKind::kCfs, args.seed);
  base.scale = args.scale;
  base.Named("preemption");
  AppSpec apache;
  apache.name = "apache";
  apache.has_metric = true;
  apache.metric = MetricKind::kOpsPerSec;
  apache.make = [](int, uint64_t seed, double scale) {
    ApacheParams p;
    p.seed = seed;
    p.total_requests = static_cast<int64_t>(500000 * scale);
    return MakeApache(p);
  };
  base.Add(apache);

  const std::vector<SpecVariant> variants = {
      {"cfs", [](ExperimentSpec& s) { s.sched = SchedKind::kCfs; }},
      {"ule-stock", [](ExperimentSpec& s) { s.sched = SchedKind::kUle; }},
      {"ule-preempt",
       [](ExperimentSpec& s) {
         s.sched = SchedKind::kUle;
         s.ule.wakeup_preemption = true;
       }},
  };
  const std::vector<RunResult> results =
      CampaignRunner(args.jobs).Run(SeedSweep(WithVariants(base, variants), args.runs));
  const std::vector<ResultGroup> groups = GroupResults(results);

  struct Row {
    AggregateStat rps;
    uint64_t wakeup_preemptions;
  };
  std::vector<Row> rows;
  for (const ResultGroup& g : groups) {
    rows.push_back({g.Aggregate([](const RunResult& r) { return r.apps[0].ops_per_sec; }),
                    g.runs.front()->counters.wakeup_preemptions});
  }
  const Row& cfs = rows[0];
  const Row& ule = rows[1];
  const Row& ule_preempt = rows[2];

  TextTable table({"configuration", "requests/s", "wakeup preemptions"});
  table.AddRow({"CFS", cfs.rps.Format(0), std::to_string(cfs.wakeup_preemptions)});
  table.AddRow({"ULE (no preemption, stock)", ule.rps.Format(0),
                std::to_string(ule.wakeup_preemptions)});
  table.AddRow({"ULE (wakeup preemption on)", ule_preempt.rps.Format(0),
                std::to_string(ule_preempt.wakeup_preemptions)});
  std::printf("%s\n", table.Render().c_str());

  const double stock_gain = 100.0 * (ule.rps.mean - cfs.rps.mean) / cfs.rps.mean;
  const double preempt_gain = 100.0 * (ule_preempt.rps.mean - cfs.rps.mean) / cfs.rps.mean;
  std::printf("ULE vs CFS: %+.1f%% stock, %+.1f%% with preemption enabled\n", stock_gain,
              preempt_gain);
  const bool advantage_from_no_preemption =
      stock_gain > 15 && preempt_gain < 0.5 * stock_gain &&
      ule_preempt.wakeup_preemptions > 100 * (ule.wakeup_preemptions + 1);
  std::printf("shape check: apache's ULE advantage comes from the lack of preemption: %s\n",
              advantage_from_no_preemption ? "REPRODUCED" : "NOT reproduced");
  BenchJson("ablation_preemption", args)
      .Metric("stock_gain_pct", stock_gain)
      .Metric("preempt_gain_pct", preempt_gain)
      .Metric("ule_wakeup_preemptions", static_cast<double>(ule.wakeup_preemptions))
      .Metric("ule_preempt_wakeup_preemptions",
              static_cast<double>(ule_preempt.wakeup_preemptions))
      .Check("advantage_from_no_preemption", advantage_from_no_preemption)
      .MaybeWrite();
  return advantage_from_no_preemption ? 0 : 1;
}
