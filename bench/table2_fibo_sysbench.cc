// Table 2: fibo + sysbench (80 threads) sharing one core.
//
// Paper values:                 CFS      ULE
//   fibo runtime                160s     158s
//   sysbench transactions/s     290      532
//   sysbench average latency    441ms    125ms
//
// The shape to reproduce: under CFS both applications share the core (fibo
// ~50% through application-level fairness), under ULE sysbench's interactive
// threads starve fibo completely until sysbench finishes — roughly doubling
// sysbench's throughput and slashing its latency.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s", BannerLine("Table 2: fibo + sysbench on a single core").c_str());
  std::printf("(scale=%.2f seed=%llu; paper values: fibo 160/158s, tps 290/532, "
              "latency 441/125ms)\n\n",
              args.scale, static_cast<unsigned long long>(args.seed));

  FiboSysbenchResult cfs = RunFiboSysbench(SchedKind::kCfs, args.seed, args.scale);
  FiboSysbenchResult ule = RunFiboSysbench(SchedKind::kUle, args.seed, args.scale);

  TextTable table({"metric", "paper CFS", "CFS", "paper ULE", "ULE"});
  table.AddRow({"fibo runtime (s)", "160", TextTable::Num(ToSeconds(cfs.fibo_runtime)), "158",
                TextTable::Num(ToSeconds(ule.fibo_runtime))});
  table.AddRow({"sysbench transactions/s", "290", TextTable::Num(cfs.sysbench_tps, 0), "532",
                TextTable::Num(ule.sysbench_tps, 0)});
  table.AddRow({"sysbench avg latency (ms)", "441",
                TextTable::Num(ToMilliseconds(cfs.sysbench_avg_latency), 0), "125",
                TextTable::Num(ToMilliseconds(ule.sysbench_avg_latency), 0)});
  table.AddRow({"sysbench finish (s)", "~242", TextTable::Num(ToSeconds(cfs.sysbench_finish)),
                "~150", TextTable::Num(ToSeconds(ule.sysbench_finish))});
  std::printf("%s\n", table.Render().c_str());

  const bool ule_starves_fibo =
      ule.sysbench_tps > 1.6 * cfs.sysbench_tps &&
      ToMilliseconds(ule.sysbench_avg_latency) < 0.6 * ToMilliseconds(cfs.sysbench_avg_latency);
  std::printf("shape check: ULE starves fibo while sysbench runs, roughly doubling "
              "sysbench throughput: %s\n",
              ule_starves_fibo ? "REPRODUCED" : "NOT reproduced");
  return ule_starves_fibo ? 0 : 1;
}
