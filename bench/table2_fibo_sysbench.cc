// Table 2: fibo + sysbench (80 threads) sharing one core.
//
// Paper values:                 CFS      ULE
//   fibo runtime                160s     158s
//   sysbench transactions/s     290      532
//   sysbench average latency    441ms    125ms
//
// The shape to reproduce: under CFS both applications share the core (fibo
// ~50% through application-level fairness), under ULE sysbench's interactive
// threads starve fibo completely until sysbench finishes — roughly doubling
// sysbench's throughput and slashing its latency.
//
// With --runs=N every cell reports mean ± stddev across N seeds, matching the
// paper's 10-run averaging.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv);
  std::printf("%s", BannerLine("Table 2: fibo + sysbench on a single core").c_str());
  std::printf("(scale=%.2f seed=%llu runs=%d; paper values: fibo 160/158s, tps 290/532, "
              "latency 441/125ms)\n\n",
              args.scale, static_cast<unsigned long long>(args.seed), args.runs);

  const FiboSysbenchCampaign c = RunFiboSysbenchBoth(args.seed, args.scale, args.runs, args.jobs);

  TextTable table({"metric", "paper CFS", "CFS", "paper ULE", "ULE"});
  table.AddRow({"fibo runtime (s)", "160", c.cfs.fibo_runtime_s.Format(1), "158",
                c.ule.fibo_runtime_s.Format(1)});
  table.AddRow({"sysbench transactions/s", "290", c.cfs.tps.Format(0), "532",
                c.ule.tps.Format(0)});
  table.AddRow({"sysbench avg latency (ms)", "441", c.cfs.latency_ms.Format(0), "125",
                c.ule.latency_ms.Format(0)});
  table.AddRow({"sysbench finish (s)", "~242", c.cfs.sysbench_finish_s.Format(1), "~150",
                c.ule.sysbench_finish_s.Format(1)});
  std::printf("%s\n", table.Render().c_str());

  const bool ule_starves_fibo = c.ule.tps.mean > 1.6 * c.cfs.tps.mean &&
                                c.ule.latency_ms.mean < 0.6 * c.cfs.latency_ms.mean;
  std::printf("shape check: ULE starves fibo while sysbench runs, roughly doubling "
              "sysbench throughput: %s\n",
              ule_starves_fibo ? "REPRODUCED" : "NOT reproduced");
  BenchJson("table2_fibo_sysbench", args)
      .Metric("cfs_fibo_runtime_s", c.cfs.fibo_runtime_s.mean)
      .Metric("ule_fibo_runtime_s", c.ule.fibo_runtime_s.mean)
      .Metric("cfs_tps", c.cfs.tps.mean)
      .Metric("ule_tps", c.ule.tps.mean)
      .Metric("cfs_latency_ms", c.cfs.latency_ms.mean)
      .Metric("ule_latency_ms", c.ule.latency_ms.mean)
      .Check("ule_starves_fibo", ule_starves_fibo)
      .MaybeWrite();
  return ule_starves_fibo ? 0 : 1;
}
