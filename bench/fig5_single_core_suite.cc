// Figure 5: performance of ULE relative to CFS for the application suite on
// a single core (positive = faster on ULE).
//
// Shape to reproduce (Section 5.3): most applications within a few percent
// of each other; scimark (the GC-heavy variant) ~-36% on ULE because JVM
// background threads get absolute priority; apache ~+40% on ULE because ab
// is never wakeup-preempted (the paper counts ~2M preemptions of ab under
// CFS and none under ULE).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/registry.h"
#include "src/core/report.h"
#include "src/core/scenarios.h"

using namespace schedbattle;

int main(int argc, char** argv) {
  const BenchArgs args = ParseBenchArgs(argc, argv, /*default_scale=*/0.3);
  std::printf("%s", BannerLine("Figure 5: ULE vs CFS, single core (positive = ULE faster)")
                        .c_str());
  std::printf("(scale=%.2f seed=%llu runs=%d jobs=%d)\n\n", args.scale,
              static_cast<unsigned long long>(args.seed), args.runs, args.jobs);

  std::vector<AppSpec> apps;
  for (const AppEntry& e : BenchmarkSuite()) {
    apps.push_back(RegistryApp(e.name));
  }
  SuiteOptions options;
  options.topology = CpuTopology::Flat(1).config();
  options.system_noise = false;
  options.seed = args.seed;
  options.scale = args.scale;
  options.runs = args.runs;
  options.jobs = args.jobs;
  const std::vector<SuiteRow> rows = RunSuite(apps, options);

  const auto cell = [&](double mean, double sd, int digits) {
    char buf[64];
    if (args.runs > 1) {
      std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", digits, mean, digits, sd);
    } else {
      std::snprintf(buf, sizeof(buf), "%.*f", digits, mean);
    }
    return std::string(buf);
  };

  TextTable table({"application", "CFS metric", "ULE metric", "ULE vs CFS",
                   "CFS wakeup-preempt", "ULE wakeup-preempt"});
  double sum_diff = 0;
  int n = 0;
  double scimark_heavy = 0, apache_diff = 0;
  uint64_t apache_cfs_preempt = 0, apache_ule_preempt = 0;
  for (const SuiteRow& row : rows) {
    table.AddRow({row.name, cell(row.cfs_metric, row.cfs_stddev, 4),
                  cell(row.ule_metric, row.ule_stddev, 4), TextTable::Pct(row.diff_pct),
                  std::to_string(row.cfs_wakeup_preemptions),
                  std::to_string(row.ule_wakeup_preemptions)});
    sum_diff += row.diff_pct;
    ++n;
    if (row.name == "scimark2-(2)") {
      scimark_heavy = row.diff_pct;
    }
    if (row.name == "apache") {
      apache_diff = row.diff_pct;
      apache_cfs_preempt = row.cfs_wakeup_preemptions;
      apache_ule_preempt = row.ule_wakeup_preemptions;
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("average difference: %+.1f%% (paper: +1.5%% in favour of ULE)\n", sum_diff / n);
  std::printf("scimark2-(2): %+.1f%% (paper: -36%%), apache: %+.1f%% (paper: +40%%)\n",
              scimark_heavy, apache_diff);
  std::printf("apache wakeup preemptions: CFS %llu vs ULE %llu (paper: ~2M vs 0)\n",
              static_cast<unsigned long long>(apache_cfs_preempt),
              static_cast<unsigned long long>(apache_ule_preempt));

  const bool avg_small = sum_diff / n > -8 && sum_diff / n < 12;
  const bool scimark_loses = scimark_heavy < -15;
  const bool apache_wins = apache_diff > 15;
  const bool preempt_gap = apache_cfs_preempt > 100 * (apache_ule_preempt + 1);
  std::printf("shape check: average difference small: %s\n",
              avg_small ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: scimark GC variant much slower on ULE: %s\n",
              scimark_loses ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: apache much faster on ULE: %s\n",
              apache_wins ? "REPRODUCED" : "NOT reproduced");
  std::printf("shape check: ab preempted under CFS, never under ULE: %s\n",
              preempt_gap ? "REPRODUCED" : "NOT reproduced");
  BenchJson("fig5_single_core_suite", args)
      .Metric("avg_diff_pct", sum_diff / n)
      .Metric("scimark_heavy_diff_pct", scimark_heavy)
      .Metric("apache_diff_pct", apache_diff)
      .Metric("apache_cfs_preemptions", static_cast<double>(apache_cfs_preempt))
      .Metric("apache_ule_preemptions", static_cast<double>(apache_ule_preempt))
      .Check("avg_small", avg_small)
      .Check("scimark_loses", scimark_loses)
      .Check("apache_wins", apache_wins)
      .Check("preempt_gap", preempt_gap)
      .MaybeWrite();
  return (avg_small && scimark_loses && apache_wins && preempt_gap) ? 0 : 1;
}
