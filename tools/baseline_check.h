// Verdict helpers for bench_baseline --check: one committed-vs-measured
// comparison per metric key, factored out so the gate's skip/regress rules
// are unit-testable (tests/baseline_check_test.cc) without running benches.
#ifndef TOOLS_BASELINE_CHECK_H_
#define TOOLS_BASELINE_CHECK_H_

namespace schedbattle {

enum class BaselineVerdict {
  kOk,
  kRegressed,
  // The committed value is 0: the key was added to the schema but has not
  // been measured into the committed baseline yet (the placeholder state
  // between adding a metric and its first refresh). Comparing against it
  // would pass vacuously (floor 0), so the gate reports it as skipped and
  // neither passes nor fails on it.
  kSkippedZeroBaseline,
};

// Floor check for a higher-is-better metric (throughput per calibration op):
// regressed when `measured` drops more than `tolerance` below `committed`.
inline BaselineVerdict CheckBaselineFloor(double committed, double measured,
                                          double tolerance) {
  if (committed == 0) {
    return BaselineVerdict::kSkippedZeroBaseline;
  }
  return measured >= committed * (1.0 - tolerance) ? BaselineVerdict::kOk
                                                   : BaselineVerdict::kRegressed;
}

// Ceiling check for a lower-is-better metric (allocations per event):
// regressed when `measured` exceeds committed * (1 + tolerance) + slack.
// No zero skip here — a committed 0 is a real, meaningful ceiling for
// allocation counts (the additive `slack` keeps it non-degenerate), not a
// placeholder.
inline BaselineVerdict CheckBaselineCeiling(double committed, double measured,
                                            double tolerance, double slack) {
  return measured <= committed * (1.0 + tolerance) + slack
             ? BaselineVerdict::kOk
             : BaselineVerdict::kRegressed;
}

inline const char* BaselineVerdictLabel(BaselineVerdict v) {
  switch (v) {
    case BaselineVerdict::kOk:
      return "ok";
    case BaselineVerdict::kRegressed:
      return "REGRESSED";
    case BaselineVerdict::kSkippedZeroBaseline:
      return "skipped (no committed value yet)";
  }
  return "?";
}

}  // namespace schedbattle

#endif  // TOOLS_BASELINE_CHECK_H_
