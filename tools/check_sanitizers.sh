#!/bin/sh
# Builds the full tree with AddressSanitizer + UndefinedBehaviorSanitizer in
# a separate build directory and runs the whole test suite under it, then
# does the same with ThreadSanitizer — with the engine's shard worker
# threads forced ON (SCHEDBATTLE_SHARD_THREADS=on), so the parallel-window
# drains in the sharding tests run on real OS threads even on single-CPU
# hosts. TSan is a separate build because it cannot be combined with ASan.
#
#   tools/check_sanitizers.sh [build-dir] [tsan-build-dir]
#     (defaults: build-asan, build-tsan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}
tsan_dir=${2:-"$repo_root/build-tsan"}

san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$san_flags" \
  -DCMAKE_EXE_LINKER_FLAGS="$san_flags"
cmake --build "$build_dir" -j "$(nproc)"

# abort_on_error makes ASan failures fail the ctest run loudly; UBSan halts
# on the first report thanks to -fno-sanitize-recover.
ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

tsan_flags="-fsanitize=thread -fno-omit-frame-pointer"

cmake -B "$tsan_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$tsan_flags" \
  -DCMAKE_EXE_LINKER_FLAGS="$tsan_flags"
cmake --build "$tsan_dir" -j "$(nproc)"

SCHEDBATTLE_SHARD_THREADS=on \
TSAN_OPTIONS="halt_on_error=1" \
  ctest --test-dir "$tsan_dir" --output-on-failure -j "$(nproc)"

echo "sanitizer check: PASSED"
