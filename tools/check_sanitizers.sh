#!/bin/sh
# Builds the full tree with AddressSanitizer + UndefinedBehaviorSanitizer in
# a separate build directory and runs the whole test suite under it.
#
#   tools/check_sanitizers.sh [build-dir]   (default: build-asan)
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-asan"}

san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"

cmake -B "$build_dir" -S "$repo_root" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="$san_flags" \
  -DCMAKE_EXE_LINKER_FLAGS="$san_flags"
cmake --build "$build_dir" -j "$(nproc)"

# abort_on_error makes ASan failures fail the ctest run loudly; UBSan halts
# on the first report thanks to -fno-sanitize-recover.
ASAN_OPTIONS="abort_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="print_stacktrace=1" \
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

echo "sanitizer check: PASSED"
