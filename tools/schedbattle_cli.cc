// schedbattle CLI: run any benchmark-suite application (or several) under
// either scheduler on a configurable machine, and inspect the result —
// counters, per-app stats, a per-core heatmap, a schedstats JSON snapshot
// (latency histograms, runqueue-depth series, decision provenance), and
// optionally a Chrome/Perfetto trace of every scheduling event.
//
//   schedbattle_cli --sched=ule --app=sysbench --cores=32 --scale=0.2
//   schedbattle_cli --sched=cfs --app=MG --app=EP --noise --heatmap
//   schedbattle_cli --sched=ule --app=apache --cores=1 --trace-json=/tmp/t.json
//   schedbattle_cli --sched=cfs --scenario=fig6 --stats-json=/tmp/stats.json
//   schedbattle_cli stats --sched=ule --app=sysbench       # JSON to stdout
//   schedbattle_cli campaign --suite=fig8 --runs=10 --jobs=8   # aggregated JSON
//   schedbattle_cli --list
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <sstream>

#include "src/apps/registry.h"
#include "src/check/fuzz.h"
#include "src/core/campaign.h"
#include "src/core/flags.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/core/scenarios.h"
#include "src/core/spec.h"
#include "src/metrics/counters.h"
#include "src/metrics/csv.h"
#include "src/metrics/decision_log.h"
#include "src/metrics/heatmap.h"
#include "src/metrics/schedstats.h"
#include "src/metrics/slo.h"
#include "src/metrics/thread_timeline.h"
#include "src/metrics/trace.h"
#include "src/sched/machine.h"
#include "src/sched/registry.h"
#include "src/workload/script.h"

using namespace schedbattle;

namespace {

void Usage() {
  std::printf(
      "usage: schedbattle_cli [stats|campaign|replay|scope|list-schedulers] [options]\n"
      "subcommands:\n"
      "  stats                  run and print the schedstats JSON snapshot to\n"
      "                         stdout (suppresses the human-readable report)\n"
      "  campaign               run every suite app under both schedulers for\n"
      "                         --runs seeds on --jobs worker threads and emit\n"
      "                         aggregated JSON (mean/stddev/min/max per app\n"
      "                         and scheduler, plus wakeup p99/p999 and SLO\n"
      "                         verdicts); --scenario=fig1 runs the fibo +\n"
      "                         sysbench tournament across every registered\n"
      "                         scheduler class instead\n"
      "  list-schedulers        print every registered scheduler class with\n"
      "                         its tunables and defaults, then exit\n"
      "  replay                 re-execute a schedfuzz reproducer spec\n"
      "                         (--spec=<file.json>) with all invariant\n"
      "                         monitors armed; deterministic output\n"
      "  scope                  schedscope: run with the decision-record log\n"
      "                         attached, export the dataset (JSONL/binary),\n"
      "                         reconstruct per-thread timelines and answer\n"
      "                         placement queries (--explain=<tid> --at=<s>)\n"
      "  (any subcommand accepts --help for its own flag listing)\n"
      "options:\n"
      "  --list                 list available applications and exit\n"
      "  --sched=<class>        scheduler class id (default cfs; see\n"
      "                         list-schedulers for the registered set)\n"
      "  --app=<name>           application to run (repeatable)\n"
      "  --scenario=fig6        run the paper's Figure 6 load-balancing\n"
      "                         scenario (512 spinners pinned to core 0,\n"
      "                         unpinned at t=14.5s; default horizon 30s)\n"
      "  --scenario=loadbalance-4096  the datacenter-scale variant: 4096\n"
      "                         spinners over the 1024-core NUMA box (pairs\n"
      "                         well with --shards)\n"
      "  --cores=<n>            core count; 32 uses the paper's NUMA topology\n"
      "                         (default 32)\n"
      "  --shards=<n>           engine shards: per-core-group event queues\n"
      "                         advanced under conservative time-window sync;\n"
      "                         results are byte-identical for any value\n"
      "                         (default 1)\n"
      "  --scale=<f>            workload scale factor (default 0.2)\n"
      "  --seed=<n>             RNG seed (default 42)\n"
      "  --horizon=<seconds>    simulation horizon (default 600)\n"
      "  --tickless=on|off      NOHZ-style tick elision (default on); the\n"
      "                         stats snapshot reports ticks fired/elided\n"
      "  --queue=heap|wheel     event-queue backend (default heap, or\n"
      "                         SCHEDBATTLE_QUEUE); byte-identical results,\n"
      "                         the wheel wins on deep serving queues\n"
      "  --noise                add the background kernel-thread app\n"
      "  --heatmap              print the threads-per-core heatmap\n"
      "  --stats-json=<file>    write the schedstats JSON snapshot ('-' for\n"
      "                         stdout): wakeup latency histograms, per-core\n"
      "                         runqueue-depth series, decision counters\n"
      "  --trace-json=<file>    write a Chrome/Perfetto trace (counter tracks\n"
      "                         and wake->dispatch flow arrows included)\n"
      "  --trace=<file.json>    alias for --trace-json\n"
      "  --trace-text=<file>    write a plain-text event log\n"
      "campaign options:\n"
      "  --suite=fig5|fig8|desktop  machine/topology preset (default fig8)\n"
      "  --scenario=fig1        N-way tournament: the paper's fibo + sysbench\n"
      "                         run under every registered scheduler class\n"
      "                         (schedstats + SLO verdicts per class)\n"
      "  --scenario=serve*      open-loop serving tournament: arrival-rate\n"
      "                         traffic against a worker fleet, goodput and\n"
      "                         request p50/p99/p999 + SLO verdicts per class\n"
      "                         (serve-smoke, serve-smoke-sysbench,\n"
      "                         serve-smoke-rocksdb, serve1024,\n"
      "                         serve1024-spike, serve1024-colo;\n"
      "                         see docs/SERVING.md)\n"
      "  --sched=<class>        with --scenario: restrict the tournament to\n"
      "                         these classes (repeatable; default all)\n"
      "  --app=<name>           restrict to these suite apps (repeatable)\n"
      "  --runs=<n>             seeds per (app, scheduler) cell (default 3)\n"
      "  --jobs=<n>             worker threads (default 0 = hardware concurrency)\n"
      "  --json=<file>          output path, '-' for stdout (default '-')\n");
}

// The paper's Figure 6 workload: `count` infinite spinners pinned to core 0,
// unpinned at t=14.5s — the canonical stress test for each scheduler's load
// balancer (and for the OnBalancePass provenance probes). 512 is the paper's
// figure; loadbalance-4096 runs the same shape at datacenter scale.
Application* AddFig6Scenario(ExperimentRun& run, uint64_t seed, int count = 512) {
  auto spinners = std::make_unique<ScriptedApp>("spinners", seed);
  ScriptedApp::ThreadTemplate tmpl;
  tmpl.name = "spin";
  tmpl.count = count;
  tmpl.affinity = CpuMask::Single(0);
  tmpl.script = ScriptBuilder().Loop(-1).Compute(Milliseconds(5)).EndLoop().Build();
  spinners->AddThreads(std::move(tmpl));
  // One periodically-waking monitor thread (~1% of one core) rides along so
  // the wakeup-to-dispatch latency pipeline has events to measure; its load
  // is negligible against 512 spinners.
  ScriptedApp::ThreadTemplate monitor;
  monitor.name = "monitor";
  monitor.count = 1;
  monitor.script = ScriptBuilder()
                       .Loop(-1)
                       .Compute(Microseconds(100))
                       .Sleep(Milliseconds(10))
                       .EndLoop()
                       .Build();
  spinners->AddThreads(std::move(monitor));
  spinners->set_background(true);
  Application* app = run.Add(std::move(spinners), 0);

  Machine& m = run.machine();
  m.engine().PostAt(SecondsF(14.5), [&m, app] {
    const CpuMask all = CpuMask::AllOf(m.num_cores());
    for (SimThread* t : app->threads()) {
      m.SetAffinity(t, all);
    }
  });
  return app;
}

// True if argv contains --help/-h (after the subcommand); subcommands print
// their own FlagSet::Help() and exit 0 instead of the unknown-flag error.
bool WantsHelp(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      return true;
    }
  }
  return false;
}

// Applies a --queue=<backend> flag ("" = leave the SCHEDBATTLE_QUEUE / heap
// default in place); prints a message and returns false on a bad value.
bool ApplyQueueFlag(const std::string& queue) {
  if (queue.empty()) {
    return true;
  }
  QueueKind kind;
  if (!ParseQueueKind(queue, &kind)) {
    std::fprintf(stderr, "--queue must be heap or wheel (got '%s')\n", queue.c_str());
    return false;
  }
  SetDefaultQueueKind(kind);
  return true;
}

// Parses repeatable --slo=<objective> flags; exits with a message on error.
bool ParseSloFlags(const std::vector<std::string>& texts, std::vector<SloObjective>* out) {
  for (const std::string& text : texts) {
    SloObjective obj;
    std::string error;
    if (!ParseSloObjective(text, &obj, &error)) {
      std::fprintf(stderr, "bad --slo: %s\n", error.c_str());
      return false;
    }
    out->push_back(std::move(obj));
  }
  return true;
}

void PrintSloVerdicts(const std::vector<SloVerdict>& verdicts) {
  if (verdicts.empty()) {
    return;
  }
  std::printf("\nSLO verdicts:\n");
  for (const SloVerdict& v : verdicts) {
    std::printf("  %-4s %s (observed %.3fms)\n", v.pass ? "PASS" : "FAIL",
                v.objective.Describe().c_str(), static_cast<double>(v.observed) / 1e6);
  }
}

// `list-schedulers` subcommand: the registry as a reference card — every
// class with its capabilities and its tunables (name, compiled-in default,
// one-line description).
int RunListSchedulersCommand() {
  const SchedulerRegistry& reg = SchedulerRegistry::Instance();
  for (const SchedulerClass& sc : reg.classes()) {
    std::printf("%s (%s)\n", sc.id.c_str(), sc.display.c_str());
    std::printf("  %s\n", sc.summary.c_str());
    std::string caps;
    if (sc.has_vruntime) {
      caps += "vruntime clock";
    }
    if (sc.has_interactivity) {
      caps += (caps.empty() ? "" : ", ") + std::string("interactivity score");
    }
    std::printf("  introspection: %s\n", caps.empty() ? "(none)" : caps.c_str());
    std::printf("  tunables:\n");
    for (const SchedTunableDesc& t : sc.tunables) {
      std::printf("    %-22s %-14s %s\n", t.name.c_str(), t.def.c_str(), t.what.c_str());
    }
    std::printf("\n");
  }
  std::printf("%d classes registered; select one with --sched=<id>\n",
              static_cast<int>(reg.classes().size()));
  return 0;
}

// `scope` subcommand: run a workload with the schedscope decision-record log
// attached; export the dataset, reconstruct per-thread timelines, print the
// per-scenario latency breakdown, and answer "why was thread T placed on
// core C at time t" from the captured pick records.
int RunScopeCommand(int argc, char** argv) {
  std::string sched = "cfs";
  std::vector<std::string> apps;
  std::string scenario;
  int cores = 32;
  double scale = 0.2;
  uint64_t seed = 42;
  double horizon_s = -1;
  bool noise = false;
  std::string tickless = "on";
  std::string queue;
  std::string log_path;
  std::string log_binary_path;
  bool timelines_flag = false;
  int64_t thread_tid = -1;
  int64_t explain_tid = -1;
  double at_s = -1;
  std::vector<std::string> slo_texts;

  FlagSet flags;
  flags.String("sched", &sched, "scheduler class id (see list-schedulers)")
      .StringList("app", &apps, "application to run (repeatable)")
      .String("scenario", &scenario, "canned scenario (fig6)")
      .Int("cores", &cores, "core count (32 = the paper's NUMA machine)")
      .Double("scale", &scale, "workload scale factor")
      .Uint64("seed", &seed, "RNG seed")
      .Double("horizon", &horizon_s, "simulation horizon in seconds")
      .Bool("noise", &noise, "add the background kernel-thread app")
      .String("tickless", &tickless, "tick elision: on (default) or off")
      .String("queue", &queue,
              "event-queue backend: heap or wheel (default: SCHEDBATTLE_QUEUE)")
      .String("log", &log_path, "write the decision-record log as JSONL")
      .String("log-binary", &log_binary_path, "write the decision-record log as framed binary")
      .Bool("timelines", &timelines_flag, "print the per-thread timeline summary table")
      .Int64("thread", &thread_tid, "print the full segment timeline of one thread id")
      .Int64("explain", &explain_tid, "explain the placement decisions of one thread id")
      .Double("at", &at_s, "with --explain: the decision nearest this time (seconds)")
      .StringList("slo", &slo_texts, "latency objective, e.g. wakeup_p99<5ms (repeatable)");
  if (WantsHelp(argc, argv)) {
    std::printf("usage: schedbattle_cli scope [options]\n%s", flags.Help().c_str());
    return 0;
  }
  std::string error;
  if (!flags.Parse(argc, argv, 2, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    return 2;
  }
  if (!scenario.empty() && scenario != "fig6") {
    std::fprintf(stderr, "unknown scenario '%s' (only fig6 is available)\n", scenario.c_str());
    return 2;
  }
  if (apps.empty() && scenario.empty()) {
    std::fprintf(stderr, "scope needs --app or --scenario\n");
    return 2;
  }
  SchedKind sched_kind = SchedKind::kCfs;
  if (!ParseSchedKind(sched, &sched_kind)) {
    std::fprintf(stderr, "unknown scheduler '%s' (registered: %s)\n", sched.c_str(),
                 SchedulerRegistry::Instance().IdList().c_str());
    return 2;
  }
  if (tickless != "on" && tickless != "off") {
    std::fprintf(stderr, "--tickless must be on or off (got '%s')\n", tickless.c_str());
    return 2;
  }
  SetTicklessEnabled(tickless == "on");
  if (!ApplyQueueFlag(queue)) {
    return 2;
  }
  std::vector<SloObjective> objectives;
  if (!ParseSloFlags(slo_texts, &objectives)) {
    return 2;
  }
  if (horizon_s < 0) {
    horizon_s = scenario == "fig6" ? 30 : 600;
  }

  ExperimentConfig cfg;
  cfg.sched = sched_kind;
  cfg.topology =
      cores == 32 ? CpuTopology::Opteron6172().config() : CpuTopology::Flat(cores).config();
  cfg.machine.seed = seed;
  cfg.horizon = SecondsF(horizon_s);
  cfg.system_noise = noise;
  ExperimentRun run(cfg);

  for (const std::string& name : apps) {
    const AppEntry* entry = FindApp(name);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown app '%s' (use --list)\n", name.c_str());
      return 2;
    }
    run.Add(entry->make(cores, seed, scale), 0);
  }
  if (scenario == "fig6") {
    AddFig6Scenario(run, seed);
  }

  DecisionLog log(&run.machine());
  SchedStats stats(&run.machine());
  run.Run();
  log.Detach();
  stats.Detach();

  Machine& m = run.machine();
  std::printf("%s", BannerLine("schedscope: " + sched + " on " + m.topology().Describe()).c_str());
  std::printf("%zu decision records (%s)\n", log.size(), FormatTime(m.now()).c_str());

  if (!log_path.empty()) {
    if (log.WriteFile(log_path, /*binary=*/false)) {
      std::printf("wrote decision log (JSONL) to %s\n", log_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", log_path.c_str());
      return 1;
    }
  }
  if (!log_binary_path.empty()) {
    if (log.WriteFile(log_binary_path, /*binary=*/true)) {
      std::printf("wrote decision log (binary) to %s\n", log_binary_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write %s\n", log_binary_path.c_str());
      return 1;
    }
  }

  TimelineSet timelines(log, m.now());

  // Per-scenario latency breakdown: the wakeup pipeline end to end.
  const LatencyHistogram& wl = stats.wakeup_latency();
  std::printf("\nwakeup latency breakdown:\n");
  TextTable lat({"metric", "count", "mean", "p50", "p99", "p999", "max"});
  const auto ms = [](double ns) { return TextTable::Num(ns / 1e6, 3) + "ms"; };
  lat.AddRow({"wake->dispatch", std::to_string(wl.count()), ms(wl.Mean()),
              ms(static_cast<double>(wl.Percentile(50))),
              ms(static_cast<double>(wl.Percentile(99))),
              ms(static_cast<double>(wl.Percentile(99.9))), ms(static_cast<double>(wl.max()))});
  const LatencyHistogram& fl = stats.fork_latency();
  lat.AddRow({"fork->dispatch", std::to_string(fl.count()), ms(fl.Mean()),
              ms(static_cast<double>(fl.Percentile(50))),
              ms(static_cast<double>(fl.Percentile(99))),
              ms(static_cast<double>(fl.Percentile(99.9))), ms(static_cast<double>(fl.max()))});
  std::printf("%s", lat.Render().c_str());

  if (!objectives.empty()) {
    PrintSloVerdicts(EvaluateSlos(objectives, stats));
  }

  if (timelines_flag || (thread_tid < 0 && explain_tid < 0)) {
    std::printf("\nper-thread timelines:\n%s", timelines.RenderSummary().c_str());
  }
  if (thread_tid >= 0) {
    std::printf("\n%s", timelines.RenderThread(thread_tid).c_str());
  }
  if (explain_tid >= 0) {
    const SimTime at = at_s >= 0 ? SecondsF(at_s) : -1;
    // Find the pick records of this thread; with --at, the nearest one.
    size_t best = SIZE_MAX;
    int printed = 0;
    for (size_t i = 0; i < log.size(); ++i) {
      const DecisionRecord& r = log.at(i);
      if (r.type != DecisionRecord::Type::kPick || r.pick.thread != explain_tid) {
        continue;
      }
      if (at >= 0) {
        if (best == SIZE_MAX ||
            std::llabs(r.t - at) < std::llabs(log.at(best).t - at)) {
          best = i;
        }
        continue;
      }
      if (printed == 0) {
        std::printf("\nplacement decisions for thread %lld:\n",
                    static_cast<long long>(explain_tid));
      }
      if (printed++ >= 32) {
        continue;
      }
      const PickCpuDecision& d = r.pick;
      std::printf(
          "  %.6fs  %s -> c%02d  because %s  (origin c%d, prev c%d, scanned %d,"
          " chosen_rq %d, prev_rq %d, sched_key %lld, idle 0x%llx)\n",
          static_cast<double>(r.t) / 1e9, EnqueueKindName(d.kind), d.chosen,
          PickReasonName(d.reason), d.origin, d.prev, d.cores_scanned, d.chosen_rq, d.prev_rq,
          static_cast<long long>(d.sched_key), static_cast<unsigned long long>(d.idle_mask));
    }
    if (at >= 0 && best != SIZE_MAX) {
      const DecisionRecord& r = log.at(best);
      const PickCpuDecision& d = r.pick;
      std::printf("\nwhy was thread %lld placed on core %d at t=%.6fs?\n",
                  static_cast<long long>(explain_tid), d.chosen,
                  static_cast<double>(r.t) / 1e9);
      std::printf("  decision: %s placement chose c%02d (%s)\n", EnqueueKindName(d.kind),
                  d.chosen, PickReasonName(d.reason));
      std::printf("  inputs:   origin c%d, prev c%d (rq %d), chosen rq %d, %d cores scanned,"
                  " sched_key %lld, idle mask 0x%llx\n",
                  d.origin, d.prev, d.prev_rq, d.chosen_rq, d.cores_scanned,
                  static_cast<long long>(d.sched_key), static_cast<unsigned long long>(d.idle_mask));
      std::printf("  outcome:  affine %s\n", d.affine_hit ? "hit (cache-warm)" : "miss");
    } else if (at >= 0) {
      std::printf("\nno placement decisions recorded for thread %lld\n",
                  static_cast<long long>(explain_tid));
    } else if (printed == 0) {
      std::printf("\nno placement decisions recorded for thread %lld\n",
                  static_cast<long long>(explain_tid));
    } else if (printed > 32) {
      std::printf("  ... %d more decisions\n", printed - 32);
    }
  }
  return 0;
}

std::string JsonStat(const AggregateStat& s) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "{\"n\": %d, \"mean\": %.6g, \"stddev\": %.6g}", s.n, s.mean,
                s.stddev);
  return buf;
}

// `campaign --scenario=fig1`: the paper's Table 2 workload (fibo + sysbench
// on one core) run as an N-way tournament over the registered scheduler
// classes — one campaign of (class x seed) specs, schedstats collection and
// SLO evaluation per run, one aggregated verdict row per class.
int RunFig1Tournament(const std::vector<SchedKind>& kinds, int runs, int jobs, double scale,
                      uint64_t seed, const std::vector<SloObjective>& slo,
                      const std::string& json_path) {
  std::vector<ExperimentSpec> specs;
  std::vector<std::shared_ptr<FiboSysbenchResult>> outs;
  for (SchedKind kind : kinds) {
    for (int k = 0; k < runs; ++k) {
      auto out = std::make_shared<FiboSysbenchResult>();
      ExperimentSpec spec = FiboSysbenchSpec(kind, seed + static_cast<uint64_t>(k), scale, out);
      spec.label += "/s" + std::to_string(k);
      spec.collect_schedstats = true;
      if (!slo.empty()) {
        spec.slo = slo;  // override the scenario's built-in objectives
      }
      specs.push_back(std::move(spec));
      outs.push_back(std::move(out));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RunResult> results = CampaignRunner(jobs).Run(specs);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::printf("%s", BannerLine("fig1 tournament: fibo + sysbench, " +
                               std::to_string(kinds.size()) + " classes x " +
                               std::to_string(runs) + " seeds")
                        .c_str());
  TextTable table(
      {"class", "fibo runtime", "sysbench tps", "avg latency", "wakeup p99", "SLO"});
  std::string json = "{\n";
  char head[192];
  std::snprintf(head, sizeof(head),
                "  \"scenario\": \"fig1\",\n  \"seed\": %llu,\n  \"scale\": %.6g,\n"
                "  \"runs\": %d,\n  \"wall_clock_ms\": %lld,\n  \"classes\": [\n",
                static_cast<unsigned long long>(seed), scale, runs,
                static_cast<long long>(wall_ms));
  json += head;

  bool all_pass = true;
  for (size_t c = 0; c < kinds.size(); ++c) {
    const SchedKind kind = kinds[c];
    std::vector<double> fibo_s, tps, lat_ms;
    bool slo_pass = true;
    const RunResult* base = nullptr;  // base-seed run: source of the verdict listing
    for (int k = 0; k < runs; ++k) {
      const size_t i = c * static_cast<size_t>(runs) + static_cast<size_t>(k);
      const FiboSysbenchResult& r = *outs[i];
      fibo_s.push_back(ToSeconds(r.fibo_runtime));
      tps.push_back(r.sysbench_tps);
      lat_ms.push_back(ToMilliseconds(r.sysbench_avg_latency));
      slo_pass = slo_pass && results[i].slo_pass;
      if (k == 0) {
        base = &results[i];
      }
    }
    const AggregateStat fibo_stat = AggregateStat::Of(fibo_s);
    const AggregateStat tps_stat = AggregateStat::Of(tps);
    const AggregateStat lat_stat = AggregateStat::Of(lat_ms);
    double p99_ms = 0;
    for (const SloVerdict& v : base->slo_verdicts) {
      if (v.objective.metric == SloMetric::kWakeupP99) {
        p99_ms = static_cast<double>(v.observed) / 1e6;
      }
    }
    table.AddRow({std::string(SchedName(kind)), fibo_stat.Format(1) + "s",
                  tps_stat.Format(1), lat_stat.Format(2) + "ms",
                  TextTable::Num(p99_ms, 3) + "ms", slo_pass ? "PASS" : "FAIL"});
    all_pass = all_pass && slo_pass;

    char line[512];
    std::snprintf(line, sizeof(line),
                  "    {\"sched\": \"%s\", \"fibo_runtime_s\": %s, \"sysbench_tps\": %s,\n"
                  "     \"sysbench_latency_ms\": %s, \"wakeup_p99_ms\": %.4g,"
                  " \"slo_pass\": %s}%s\n",
                  std::string(SchedId(kind)).c_str(), JsonStat(fibo_stat).c_str(),
                  JsonStat(tps_stat).c_str(), JsonStat(lat_stat).c_str(), p99_ms,
                  slo_pass ? "true" : "false", c + 1 < kinds.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::printf("%s", table.Render().c_str());
  for (size_t c = 0; c < kinds.size(); ++c) {
    const RunResult& base = results[c * static_cast<size_t>(runs)];
    if (base.slo_verdicts.empty()) {
      continue;
    }
    std::printf("\n%s:\n", std::string(SchedName(kinds[c])).c_str());
    for (const SloVerdict& v : base.slo_verdicts) {
      std::printf("  %-4s %s (observed %.3fms)\n", v.pass ? "PASS" : "FAIL",
                  v.objective.Describe().c_str(), static_cast<double>(v.observed) / 1e6);
    }
  }

  if (json_path.empty() || json_path == "-") {
    std::printf("\n%s", json.c_str());
  } else if (WriteFile(json_path, json)) {
    std::printf("\nwrote tournament JSON (%zu classes, %d runs, %lld ms) to %s\n",
                kinds.size(), runs, static_cast<long long>(wall_ms), json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return all_pass ? 0 : 4;
}

// `campaign --scenario=serve*`: an open-loop serving tournament. Every
// scheduler class serves the same arrival trace (same seeds, same topology);
// rows compare goodput and request-latency percentiles, the per-run request_*
// SLO verdicts decide PASS/FAIL.
int RunServeTournament(const std::string& preset, const std::vector<SchedKind>& kinds, int runs,
                       int jobs, double scale, uint64_t seed,
                       const std::vector<SloObjective>& slo, const std::string& json_path) {
  std::vector<ExperimentSpec> specs;
  std::vector<std::shared_ptr<ServeResult>> outs;
  for (SchedKind kind : kinds) {
    for (int k = 0; k < runs; ++k) {
      auto out = std::make_shared<ServeResult>();
      ExperimentSpec spec = ServeSpec(preset, kind, seed + static_cast<uint64_t>(k), scale, out);
      spec.label += "/s" + std::to_string(k);
      if (!slo.empty()) {
        spec.slo = slo;  // override the preset's built-in objectives
      }
      specs.push_back(std::move(spec));
      outs.push_back(std::move(out));
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<RunResult> results = CampaignRunner(jobs).Run(specs);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::printf("%s", BannerLine(preset + " tournament: " +
                               std::to_string(ServePresetCores(preset)) + " cores, " +
                               std::to_string(kinds.size()) + " classes x " +
                               std::to_string(runs) + " seeds")
                        .c_str());
  TextTable table({"class", "requests", "goodput", "p50", "p99", "p999", "SLO"});
  std::string json = "{\n";
  char head[224];
  std::snprintf(head, sizeof(head),
                "  \"scenario\": \"%s\",\n  \"cores\": %d,\n  \"seed\": %llu,\n"
                "  \"scale\": %.6g,\n  \"runs\": %d,\n  \"wall_clock_ms\": %lld,\n"
                "  \"classes\": [\n",
                preset.c_str(), ServePresetCores(preset),
                static_cast<unsigned long long>(seed), scale, runs,
                static_cast<long long>(wall_ms));
  json += head;

  bool all_pass = true;
  for (size_t c = 0; c < kinds.size(); ++c) {
    const SchedKind kind = kinds[c];
    std::vector<double> goodput, p50_ms, p99_ms, p999_ms;
    int64_t admitted = 0;
    bool slo_pass = true;
    for (int k = 0; k < runs; ++k) {
      const size_t i = c * static_cast<size_t>(runs) + static_cast<size_t>(k);
      const ServeResult& r = *outs[i];
      goodput.push_back(100.0 * r.goodput_fraction);
      p50_ms.push_back(ToMilliseconds(r.request_p50));
      p99_ms.push_back(ToMilliseconds(r.request_p99));
      p999_ms.push_back(ToMilliseconds(r.request_p999));
      slo_pass = slo_pass && results[i].slo_pass;
      if (k == 0) {
        admitted = r.admitted;
      }
    }
    const AggregateStat goodput_stat = AggregateStat::Of(goodput);
    const AggregateStat p50_stat = AggregateStat::Of(p50_ms);
    const AggregateStat p99_stat = AggregateStat::Of(p99_ms);
    const AggregateStat p999_stat = AggregateStat::Of(p999_ms);
    table.AddRow({std::string(SchedName(kind)), std::to_string(admitted),
                  goodput_stat.Format(1) + "%", p50_stat.Format(1) + "ms",
                  p99_stat.Format(1) + "ms", p999_stat.Format(1) + "ms",
                  slo_pass ? "PASS" : "FAIL"});
    all_pass = all_pass && slo_pass;

    char line[640];
    std::snprintf(line, sizeof(line),
                  "    {\"sched\": \"%s\", \"admitted\": %lld, \"goodput_pct\": %s,\n"
                  "     \"request_p50_ms\": %s, \"request_p99_ms\": %s,"
                  " \"request_p999_ms\": %s, \"slo_pass\": %s}%s\n",
                  std::string(SchedId(kind)).c_str(), static_cast<long long>(admitted),
                  JsonStat(goodput_stat).c_str(), JsonStat(p50_stat).c_str(),
                  JsonStat(p99_stat).c_str(), JsonStat(p999_stat).c_str(),
                  slo_pass ? "true" : "false", c + 1 < kinds.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::printf("%s", table.Render().c_str());
  for (size_t c = 0; c < kinds.size(); ++c) {
    const RunResult& base = results[c * static_cast<size_t>(runs)];
    if (base.slo_verdicts.empty()) {
      continue;
    }
    std::printf("\n%s:\n", std::string(SchedName(kinds[c])).c_str());
    for (const SloVerdict& v : base.slo_verdicts) {
      std::printf("  %-4s %s (observed %.3fms)\n", v.pass ? "PASS" : "FAIL",
                  v.objective.Describe().c_str(), static_cast<double>(v.observed) / 1e6);
    }
  }

  if (json_path.empty() || json_path == "-") {
    std::printf("\n%s", json.c_str());
  } else if (WriteFile(json_path, json)) {
    std::printf("\nwrote tournament JSON (%zu classes, %d runs, %lld ms) to %s\n",
                kinds.size(), runs, static_cast<long long>(wall_ms), json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return all_pass ? 0 : 4;
}

// `campaign` subcommand: the Figure 5/8/desktop suite as one parallel
// campaign, emitting aggregated JSON.
int RunCampaignCommand(int argc, char** argv) {
  std::string suite = "fig8";
  std::string scenario;
  std::vector<std::string> scheds;
  std::vector<std::string> only;
  int runs = 3;
  int jobs = 0;
  double scale = 0.2;
  uint64_t seed = 42;
  std::string json_path = "-";
  std::string tickless = "on";
  std::string queue;
  std::vector<std::string> slo_texts;

  FlagSet flags;
  flags.String("suite", &suite, "fig5|fig8|desktop machine preset")
      .String("scenario", &scenario, "fig1 or a serve preset (N-way tournament)")
      .StringList("sched", &scheds,
                  "with --scenario: tournament classes (repeatable; default all)")
      .StringList("app", &only, "restrict to these suite apps (repeatable)")
      .Int("runs", &runs, "seeds per (app, scheduler) cell")
      .Int("jobs", &jobs, "worker threads (0 = hardware concurrency)")
      .Double("scale", &scale, "workload scale factor")
      .Uint64("seed", &seed, "base RNG seed")
      .String("json", &json_path, "output path, '-' for stdout")
      .String("tickless", &tickless, "tick elision: on (default) or off")
      .String("queue", &queue,
              "event-queue backend: heap or wheel (default: SCHEDBATTLE_QUEUE)")
      .StringList("slo", &slo_texts,
                  "latency objective per run (repeatable; default"
                  " wakeup_p99<1s + wakeup_p999<5s)");
  if (WantsHelp(argc, argv)) {
    std::printf("usage: schedbattle_cli campaign [options]\n%s", flags.Help().c_str());
    return 0;
  }
  std::string error;
  if (!flags.Parse(argc, argv, 2, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    return 2;
  }
  if (runs < 1) {
    std::fprintf(stderr, "--runs must be >= 1\n");
    return 2;
  }
  if (tickless != "on" && tickless != "off") {
    std::fprintf(stderr, "--tickless must be on or off (got '%s')\n", tickless.c_str());
    return 2;
  }
  SetTicklessEnabled(tickless == "on");
  if (!ApplyQueueFlag(queue)) {
    return 2;
  }

  if (!scenario.empty()) {
    const bool is_serve = IsServePreset(scenario);
    if (scenario != "fig1" && !is_serve) {
      std::string presets;
      for (const std::string& p : ServePresets()) {
        presets += ", " + p;
      }
      std::fprintf(stderr, "unknown campaign scenario '%s' (available: fig1%s)\n",
                   scenario.c_str(), presets.c_str());
      return 2;
    }
    std::vector<SchedKind> kinds;
    for (const std::string& s : scheds) {
      SchedKind kind;
      if (!ParseSchedKind(s, &kind)) {
        std::fprintf(stderr, "unknown scheduler '%s' (registered: %s)\n", s.c_str(),
                     SchedulerRegistry::Instance().IdList().c_str());
        return 2;
      }
      kinds.push_back(kind);
    }
    if (kinds.empty()) {
      kinds = SchedulerRegistry::Instance().AllKinds();
    }
    std::vector<SloObjective> slo;
    if (!ParseSloFlags(slo_texts, &slo)) {
      return 2;
    }
    if (is_serve) {
      return RunServeTournament(scenario, kinds, runs, jobs, scale, seed, slo, json_path);
    }
    return RunFig1Tournament(kinds, runs, jobs, scale, seed, slo, json_path);
  }
  if (!scheds.empty()) {
    std::fprintf(stderr, "--sched is only meaningful with --scenario\n");
    return 2;
  }

  SuiteOptions options;
  if (suite == "fig5") {
    options.topology = CpuTopology::Flat(1).config();
    options.system_noise = false;
  } else if (suite == "desktop") {
    options.topology = CpuTopology::I7_3770().config();
  } else if (suite != "fig8") {
    std::fprintf(stderr, "--suite must be fig5, fig8 or desktop\n");
    return 2;
  }
  options.seed = seed;
  options.scale = scale;
  options.runs = runs;
  options.jobs = jobs;
  if (slo_texts.empty()) {
    slo_texts = {"wakeup_p99<1s", "wakeup_p999<5s"};
  }
  if (!ParseSloFlags(slo_texts, &options.slo)) {
    return 2;
  }

  std::vector<AppSpec> apps;
  for (const AppEntry& e : BenchmarkSuite()) {
    if (only.empty()) {
      apps.push_back(RegistryApp(e.name));
      continue;
    }
    for (const std::string& name : only) {
      if (e.name == name) {
        apps.push_back(RegistryApp(e.name));
        break;
      }
    }
  }
  if (apps.empty()) {
    std::fprintf(stderr, "no matching apps (use --list)\n");
    return 2;
  }

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<SuiteRow> rows = RunSuite(apps, options);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();

  std::string json = "{\n";
  char head[256];
  std::snprintf(head, sizeof(head),
                "  \"suite\": \"%s\",\n  \"seed\": %llu,\n  \"scale\": %.6g,\n"
                "  \"runs\": %d,\n  \"jobs\": %d,\n  \"wall_clock_ms\": %lld,\n",
                suite.c_str(), static_cast<unsigned long long>(seed), scale, runs,
                CampaignRunner(jobs).jobs(), static_cast<long long>(wall_ms));
  json += head;
  json += "  \"apps\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const SuiteRow& row = rows[i];
    AggregateStat cfs;
    cfs.n = row.runs;
    cfs.mean = row.cfs_metric;
    cfs.stddev = row.cfs_stddev;
    AggregateStat ule;
    ule.n = row.runs;
    ule.mean = row.ule_metric;
    ule.stddev = row.ule_stddev;
    char line[1024];
    std::snprintf(line, sizeof(line),
                  "    {\"name\": \"%s\", \"cfs\": %s, \"ule\": %s, \"diff_pct\": %.4g,\n"
                  "     \"cfs_wakeup_p99_ns\": %.0f, \"ule_wakeup_p99_ns\": %.0f,\n"
                  "     \"cfs_wakeup_p999_ns\": %.0f, \"ule_wakeup_p999_ns\": %.0f,\n"
                  "     \"cfs_slo_pass\": %s, \"ule_slo_pass\": %s}%s\n",
                  row.name.c_str(), JsonStat(cfs).c_str(), JsonStat(ule).c_str(), row.diff_pct,
                  row.cfs_wakeup_p99_ns, row.ule_wakeup_p99_ns, row.cfs_wakeup_p999_ns,
                  row.ule_wakeup_p999_ns, row.cfs_slo_pass ? "true" : "false",
                  row.ule_slo_pass ? "true" : "false", i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  if (json_path.empty() || json_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else if (WriteFile(json_path, json)) {
    std::printf("wrote campaign JSON (%zu apps, %d runs, %lld ms) to %s\n", rows.size(), runs,
                static_cast<long long>(wall_ms), json_path.c_str());
  } else {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  return 0;
}

// `replay` subcommand: re-execute a schedfuzz reproducer spec with all
// invariant monitors armed. Output is fully deterministic — replaying the
// same spec twice produces byte-identical bytes (the determinism_test and
// the shrinker's acceptance check rely on this).
int RunReplayCommand(int argc, char** argv) {
  std::string spec_path;
  std::string json_path = "-";
  std::string decision_log_path;
  FlagSet flags;
  flags.String("spec", &spec_path, "schedfuzz reproducer JSON to replay (required)")
      .String("json", &json_path, "outcome output path, '-' for stdout")
      .String("decision-log", &decision_log_path,
              "also write the run's decision-record log (JSONL) here");
  if (WantsHelp(argc, argv)) {
    std::printf("usage: schedbattle_cli replay --spec=<file.json> [options]\n%s",
                flags.Help().c_str());
    return 0;
  }
  std::string error;
  if (!flags.Parse(argc, argv, 2, &error)) {
    std::fprintf(stderr, "%s\n%s", error.c_str(), flags.Help().c_str());
    return 2;
  }
  if (spec_path.empty()) {
    std::fprintf(stderr, "replay needs --spec=<file.json>\n%s", flags.Help().c_str());
    return 2;
  }
  std::FILE* f = std::fopen(spec_path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot read %s\n", spec_path.c_str());
    return 2;
  }
  std::string text;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);

  FuzzSpec spec;
  if (!FuzzSpec::Parse(text, &spec, &error)) {
    std::fprintf(stderr, "bad reproducer spec %s: %s\n", spec_path.c_str(), error.c_str());
    return 2;
  }
  ExperimentSpec exp = spec.ToExperimentSpec();
  exp.collect_decision_log = !decision_log_path.empty();
  const RunResult result = ExecuteSpec(exp);
  const FuzzOutcome outcome = OutcomeFromResult(result);
  if (!decision_log_path.empty()) {
    if (!WriteFile(decision_log_path, result.decision_log)) {
      std::fprintf(stderr, "failed to write %s\n", decision_log_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote decision log to %s\n", decision_log_path.c_str());
  }

  std::ostringstream os;
  os << "{\n";
  os << "\"label\":\"" << spec.Label() << "\",\n";
  os << "\"threads\":" << spec.TotalThreads() << ",\n";
  os << "\"fault\":\"" << FaultKindName(spec.fault.kind) << "\",\n";
  os << "\"violations\":" << outcome.violations << ",\n";
  os << "\"monitor\":\"" << outcome.monitor << "\",\n";
  os << "\"all_finished\":" << (outcome.all_finished ? "true" : "false") << ",\n";
  os << "\"forks\":" << outcome.forks << ",\n";
  os << "\"exits\":" << outcome.exits << "\n";
  os << "}\n";
  const std::string json = os.str();
  if (json_path.empty() || json_path == "-") {
    std::fputs(json.c_str(), stdout);
  } else if (!WriteFile(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  if (!outcome.report.empty()) {
    std::fprintf(stderr, "%s", outcome.report.c_str());
  }
  return outcome.violations > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string cmd = argc > 1 ? argv[1] : "";
  // Pre-scan for flags that exit immediately. Subcommands handle --help
  // themselves (each prints its own FlagSet::Help()).
  const bool has_subcommand = cmd == "stats" || cmd == "campaign" || cmd == "replay" ||
                              cmd == "scope" || cmd == "list-schedulers";
  for (int i = 1; i < argc; ++i) {
    if (!has_subcommand &&
        (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0)) {
      Usage();
      return 0;
    }
    if (std::strcmp(argv[i], "--list") == 0) {
      for (const AppEntry& e : BenchmarkSuite()) {
        std::printf("%s\n", e.name.c_str());
      }
      return 0;
    }
  }
  if (cmd == "list-schedulers") {
    return RunListSchedulersCommand();
  }
  if (cmd == "campaign") {
    return RunCampaignCommand(argc, argv);
  }
  if (cmd == "replay") {
    return RunReplayCommand(argc, argv);
  }
  if (cmd == "scope") {
    return RunScopeCommand(argc, argv);
  }

  std::string sched = "cfs";
  std::vector<std::string> apps;
  std::string scenario;
  int cores = 32;
  int shards = 1;
  double scale = 0.2;
  uint64_t seed = 42;
  double horizon_s = -1;  // default depends on the workload
  bool noise = false;
  bool heatmap = false;
  bool stats_mode = false;  // `stats` subcommand: JSON to stdout, no report
  std::string stats_json_path;
  std::string trace_path;
  std::string trace_text_path;
  std::string tickless = "on";
  std::string queue;
  std::vector<std::string> slo_texts;

  int first_flag = 1;
  if (argc > 1 && std::strcmp(argv[1], "stats") == 0) {
    stats_mode = true;
    first_flag = 2;
  }
  FlagSet flags;
  flags.String("sched", &sched, "scheduler class id (see list-schedulers)")
      .StringList("app", &apps, "application to run (repeatable)")
      .String("scenario", &scenario, "canned scenario (fig6, loadbalance-4096)")
      .Int("cores", &cores, "core count (32 = the paper's NUMA machine)")
      .Int("shards", &shards, "engine shards (byte-identical for any value)")
      .Double("scale", &scale, "workload scale factor")
      .Uint64("seed", &seed, "RNG seed")
      .Double("horizon", &horizon_s, "simulation horizon in seconds")
      .Bool("noise", &noise, "add the background kernel-thread app")
      .Bool("heatmap", &heatmap, "print the threads-per-core heatmap")
      .String("stats-json", &stats_json_path, "write schedstats JSON ('-' for stdout)")
      .String("trace-json", &trace_path, "write a Chrome/Perfetto trace")
      .String("trace", &trace_path, "alias for --trace-json")
      .String("trace-text", &trace_text_path, "write a plain-text event log")
      .String("tickless", &tickless, "tick elision: on (default) or off")
      .String("queue", &queue,
              "event-queue backend: heap or wheel (default: SCHEDBATTLE_QUEUE)")
      .StringList("slo", &slo_texts, "latency objective, e.g. wakeup_p99<5ms (repeatable)");
  if (stats_mode && WantsHelp(argc, argv)) {
    std::printf("usage: schedbattle_cli stats [options]\n%s", flags.Help().c_str());
    return 0;
  }
  std::string error;
  if (!flags.Parse(argc, argv, first_flag, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    Usage();
    return 2;
  }
  if (!scenario.empty() && scenario != "fig6" && scenario != "loadbalance-4096") {
    std::fprintf(stderr, "unknown scenario '%s' (fig6, loadbalance-4096)\n", scenario.c_str());
    return 2;
  }
  if (apps.empty() && scenario.empty()) {
    std::fprintf(stderr, "no --app or --scenario given\n");
    Usage();
    return 2;
  }
  SchedKind sched_kind = SchedKind::kCfs;
  if (!ParseSchedKind(sched, &sched_kind)) {
    std::fprintf(stderr, "unknown scheduler '%s' (registered: %s)\n", sched.c_str(),
                 SchedulerRegistry::Instance().IdList().c_str());
    return 2;
  }
  if (shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    return 2;
  }
  if (tickless != "on" && tickless != "off") {
    std::fprintf(stderr, "--tickless must be on or off (got '%s')\n", tickless.c_str());
    return 2;
  }
  SetTicklessEnabled(tickless == "on");
  if (!ApplyQueueFlag(queue)) {
    return 2;
  }
  std::vector<SloObjective> objectives;
  if (!ParseSloFlags(slo_texts, &objectives)) {
    return 2;
  }
  if (horizon_s < 0) {
    // The spinner scenarios run forever; they are over well before 30s.
    horizon_s = scenario.empty() ? 600 : 30;
  }

  ExperimentConfig cfg;
  cfg.sched = sched_kind;
  if (scenario == "loadbalance-4096") {
    cfg.topology = CpuTopology::Numa1024().config();
    cfg.cfs.group_scheduling = false;  // keep runs parallel-window eligible
  } else {
    cfg.topology =
        cores == 32 ? CpuTopology::Opteron6172().config() : CpuTopology::Flat(cores).config();
  }
  cfg.machine.seed = seed;
  cfg.horizon = SecondsF(horizon_s);
  cfg.system_noise = noise;
  cfg.shards = shards;
  ExperimentRun run(cfg);

  std::vector<std::pair<Application*, MetricKind>> launched;
  for (const std::string& name : apps) {
    const AppEntry* entry = FindApp(name);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown app '%s' (use --list)\n", name.c_str());
      return 2;
    }
    launched.push_back({run.Add(entry->make(cores, seed, scale), 0), entry->metric});
  }
  if (scenario == "fig6") {
    AddFig6Scenario(run, seed);
  } else if (scenario == "loadbalance-4096") {
    AddFig6Scenario(run, seed, 4096);
  }

  // Observers attach through the bus, so any combination works together.
  std::unique_ptr<SchedStats> stats;
  if (stats_mode || !stats_json_path.empty() || !objectives.empty()) {
    stats = std::make_unique<SchedStats>(&run.machine());
  }
  std::unique_ptr<SchedTrace> trace;
  if (!trace_path.empty() || !trace_text_path.empty()) {
    trace = std::make_unique<SchedTrace>(&run.machine());
  }
  std::unique_ptr<CoreLoadHeatmap> hm;
  if (heatmap) {
    hm = std::make_unique<CoreLoadHeatmap>(&run.machine(), Milliseconds(100));
  }

  const SimTime finish = run.Run();

  std::vector<SloVerdict> verdicts;
  if (stats != nullptr) {
    stats->Detach();
    if (!objectives.empty()) {
      verdicts = EvaluateSlos(objectives, *stats);
    }
    const std::string json = stats->ToJson(verdicts.empty() ? nullptr : &verdicts);
    if (!stats_json_path.empty() && stats_json_path != "-") {
      if (WriteFile(stats_json_path, json)) {
        if (!stats_mode) {
          std::printf("wrote schedstats JSON to %s\n", stats_json_path.c_str());
        }
      } else {
        std::fprintf(stderr, "failed to write %s\n", stats_json_path.c_str());
        return 1;
      }
    }
    if (stats_mode && (stats_json_path.empty() || stats_json_path == "-")) {
      std::fputs(json.c_str(), stdout);
    }
  }
  if (stats_mode) {
    // The subcommand prints machine-readable output only; SLO failures are
    // signalled through the exit code (the verdicts are in the JSON).
    return AllSlosPass(verdicts) ? 0 : 4;
  }

  std::printf("%s", BannerLine("schedbattle: " + sched + " on " +
                               run.machine().topology().Describe())
                        .c_str());
  TextTable table({"application", "finished", "ops", "ops/s", "mean latency", "p99"});
  for (const auto& [app, metric] : launched) {
    const AppStats& s = app->stats();
    table.AddRow({app->name(),
                  s.finished >= 0 ? FormatTime(s.finished) : "(horizon)",
                  std::to_string(s.ops),
                  TextTable::Num(s.OpsPerSecond(run.engine().now()), 1),
                  s.latency.count() > 0
                      ? TextTable::Num(ToMilliseconds(static_cast<SimDuration>(s.latency.Mean())),
                                       2) + "ms"
                      : "-",
                  s.latency.count() > 0
                      ? TextTable::Num(ToMilliseconds(s.latency.Percentile(99)), 2) + "ms"
                      : "-"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("workload finished at %s (horizon %s)\n", FormatTime(finish).c_str(),
              FormatTime(cfg.horizon).c_str());
  std::printf("%s", FormatCounters(run.machine()).c_str());
  PrintSloVerdicts(verdicts);

  if (hm != nullptr) {
    hm->Stop();
    std::printf("\n%s", hm->RenderAscii(100).c_str());
  }
  if (trace != nullptr) {
    trace->Detach();
    if (!trace_path.empty()) {
      if (WriteFile(trace_path, trace->ToChromeJson())) {
        std::printf("\nwrote Chrome trace (%zu events%s) to %s\n", trace->size(),
                    trace->dropped() > 0 ? ", oldest dropped" : "", trace_path.c_str());
      }
    }
    if (!trace_text_path.empty()) {
      WriteFile(trace_text_path, trace->ToText());
      std::printf("wrote event log to %s\n", trace_text_path.c_str());
    }
  }
  return AllSlosPass(verdicts) ? 0 : 4;
}
