// schedbattle CLI: run any benchmark-suite application (or several) under
// either scheduler on a configurable machine, and inspect the result —
// counters, per-app stats, a per-core heatmap, and optionally a Chrome
// trace of every scheduling event.
//
//   schedbattle_cli --sched=ule --app=sysbench --cores=32 --scale=0.2
//   schedbattle_cli --sched=cfs --app=MG --app=EP --noise --heatmap
//   schedbattle_cli --sched=ule --app=apache --cores=1 --trace=/tmp/t.json
//   schedbattle_cli --list
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/registry.h"
#include "src/core/report.h"
#include "src/core/runner.h"
#include "src/metrics/counters.h"
#include "src/metrics/csv.h"
#include "src/metrics/heatmap.h"
#include "src/metrics/trace.h"

using namespace schedbattle;

namespace {

void Usage() {
  std::printf(
      "usage: schedbattle_cli [options]\n"
      "  --list                 list available applications and exit\n"
      "  --sched=cfs|ule        scheduler (default cfs)\n"
      "  --app=<name>           application to run (repeatable)\n"
      "  --cores=<n>            core count; 32 uses the paper's NUMA topology\n"
      "                         (default 32)\n"
      "  --scale=<f>            workload scale factor (default 0.2)\n"
      "  --seed=<n>             RNG seed (default 42)\n"
      "  --horizon=<seconds>    simulation horizon (default 600)\n"
      "  --noise                add the background kernel-thread app\n"
      "  --heatmap              print the threads-per-core heatmap\n"
      "  --trace=<file.json>    write a Chrome trace (chrome://tracing)\n"
      "  --trace-text=<file>    write a plain-text event log\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string sched = "cfs";
  std::vector<std::string> apps;
  int cores = 32;
  double scale = 0.2;
  uint64_t seed = 42;
  double horizon_s = 600;
  bool noise = false;
  bool heatmap = false;
  std::string trace_path;
  std::string trace_text_path;

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto arg = [&](const char* prefix) -> const char* {
      const size_t n = std::strlen(prefix);
      return std::strncmp(a, prefix, n) == 0 ? a + n : nullptr;
    };
    if (std::strcmp(a, "--list") == 0) {
      for (const AppEntry& e : BenchmarkSuite()) {
        std::printf("%s\n", e.name.c_str());
      }
      return 0;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      Usage();
      return 0;
    } else if (const char* v = arg("--sched=")) {
      sched = v;
    } else if (const char* v = arg("--app=")) {
      apps.push_back(v);
    } else if (const char* v = arg("--cores=")) {
      cores = std::atoi(v);
    } else if (const char* v = arg("--scale=")) {
      scale = std::atof(v);
    } else if (const char* v = arg("--seed=")) {
      seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = arg("--horizon=")) {
      horizon_s = std::atof(v);
    } else if (std::strcmp(a, "--noise") == 0) {
      noise = true;
    } else if (std::strcmp(a, "--heatmap") == 0) {
      heatmap = true;
    } else if (const char* v = arg("--trace=")) {
      trace_path = v;
    } else if (const char* v = arg("--trace-text=")) {
      trace_text_path = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", a);
      Usage();
      return 2;
    }
  }
  if (apps.empty()) {
    std::fprintf(stderr, "no --app given\n");
    Usage();
    return 2;
  }
  if (sched != "cfs" && sched != "ule") {
    std::fprintf(stderr, "--sched must be cfs or ule\n");
    return 2;
  }

  ExperimentConfig cfg;
  cfg.sched = sched == "cfs" ? SchedKind::kCfs : SchedKind::kUle;
  cfg.topology =
      cores == 32 ? CpuTopology::Opteron6172().config() : CpuTopology::Flat(cores).config();
  cfg.machine.seed = seed;
  cfg.horizon = SecondsF(horizon_s);
  cfg.system_noise = noise;
  ExperimentRun run(cfg);

  std::vector<std::pair<Application*, MetricKind>> launched;
  for (const std::string& name : apps) {
    const AppEntry* entry = FindApp(name);
    if (entry == nullptr) {
      std::fprintf(stderr, "unknown app '%s' (use --list)\n", name.c_str());
      return 2;
    }
    launched.push_back({run.Add(entry->make(cores, seed, scale), 0), entry->metric});
  }

  std::unique_ptr<SchedTrace> trace;
  if (!trace_path.empty() || !trace_text_path.empty()) {
    trace = std::make_unique<SchedTrace>(&run.machine());
  }
  std::unique_ptr<CoreLoadHeatmap> hm;
  if (heatmap) {
    hm = std::make_unique<CoreLoadHeatmap>(&run.machine(), Milliseconds(100));
  }

  const SimTime finish = run.Run();

  std::printf("%s", BannerLine("schedbattle: " + sched + " on " +
                               run.machine().topology().Describe())
                        .c_str());
  TextTable table({"application", "finished", "ops", "ops/s", "mean latency", "p99"});
  for (const auto& [app, metric] : launched) {
    const AppStats& s = app->stats();
    table.AddRow({app->name(),
                  s.finished >= 0 ? FormatTime(s.finished) : "(horizon)",
                  std::to_string(s.ops),
                  TextTable::Num(s.OpsPerSecond(run.engine().now()), 1),
                  s.latency.count() > 0
                      ? TextTable::Num(ToMilliseconds(static_cast<SimDuration>(s.latency.Mean())),
                                       2) + "ms"
                      : "-",
                  s.latency.count() > 0
                      ? TextTable::Num(ToMilliseconds(s.latency.Percentile(99)), 2) + "ms"
                      : "-"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("workload finished at %s (horizon %s)\n", FormatTime(finish).c_str(),
              FormatTime(cfg.horizon).c_str());
  std::printf("%s", FormatCounters(run.machine()).c_str());

  if (hm != nullptr) {
    hm->Stop();
    std::printf("\n%s", hm->RenderAscii(100).c_str());
  }
  if (trace != nullptr) {
    trace->Detach();
    if (!trace_path.empty()) {
      if (WriteFile(trace_path, trace->ToChromeJson())) {
        std::printf("\nwrote Chrome trace (%zu events%s) to %s\n", trace->size(),
                    trace->dropped() > 0 ? ", oldest dropped" : "", trace_path.c_str());
      }
    }
    if (!trace_text_path.empty()) {
      WriteFile(trace_text_path, trace->ToText());
      std::printf("wrote event log to %s\n", trace_text_path.c_str());
    }
  }
  return 0;
}
